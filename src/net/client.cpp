#include "net/client.h"

#include <utility>

namespace cq::net {

Frame Client::call(Frame request) {
  request.request_id = next_id_++;
  send_frame(socket_, request);
  Frame reply;
  if (!recv_frame(socket_, decoder_, reply)) {
    throw NetError("net: server closed the connection before replying");
  }
  if (reply.request_id != request.request_id) {
    throw ProtocolError("net: reply id " + std::to_string(reply.request_id) +
                        " does not match request id " +
                        std::to_string(request.request_id));
  }
  return reply;
}

Client::InferResult Client::infer(const std::string& model,
                                  const tensor::Tensor& sample) {
  Frame request;
  request.type = FrameType::kInfer;
  request.model = model;
  request.tensor = sample;
  Frame reply = call(std::move(request));

  InferResult result;
  switch (reply.type) {
    case FrameType::kResult:
      result.admitted = true;
      result.logits = std::move(reply.tensor);
      return result;
    case FrameType::kBusy:
      result.admitted = false;
      result.reason = std::move(reply.message);
      return result;
    case FrameType::kError:
      throw RemoteError(reply.message);
    default:
      throw ProtocolError(std::string("net: unexpected ") +
                          frame_type_name(reply.type) + " reply to infer");
  }
}

Client::ModelInfo Client::info(const std::string& model) {
  Frame request;
  request.type = FrameType::kInfo;
  request.model = model;
  Frame reply = call(std::move(request));
  if (reply.type == FrameType::kError) throw RemoteError(reply.message);
  if (reply.type != FrameType::kInfoReply) {
    throw ProtocolError(std::string("net: unexpected ") +
                        frame_type_name(reply.type) + " reply to info");
  }
  ModelInfo info;
  info.sample_shape = std::move(reply.sample_shape);
  info.num_classes = reply.num_classes;
  info.version = reply.model_version;
  return info;
}

}  // namespace cq::net
