#include "net/protocol.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace cq::net {

namespace {

// Explicit little-endian serialization: the wire format is defined in
// bytes, not in whatever the host happens to store, and byte-wise
// loads/stores are also immune to alignment traps on strict targets.

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xffu));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xffu));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xffu));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xffu));
  }
}

void put_f32(std::vector<std::uint8_t>& out, float v) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u32(out, bits);
}

/// Bounded big-endian-free reader over one frame's bytes; every read
/// checks the remaining length so a lying header can never run past
/// the buffer.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  std::size_t remaining() const { return size_ - pos_; }

  std::uint16_t u16() {
    require(2, "u16");
    const std::uint16_t v = static_cast<std::uint16_t>(
        static_cast<std::uint16_t>(data_[pos_]) |
        static_cast<std::uint16_t>(data_[pos_ + 1]) << 8);
    pos_ += 2;
    return v;
  }

  std::uint32_t u32() {
    require(4, "u32");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    require(8, "u64");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  float f32() {
    const std::uint32_t bits = u32();
    float v = 0.0f;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string bytes(std::size_t n, const char* what) {
    require(n, what);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

 private:
  void require(std::size_t n, const char* what) const {
    if (size_ - pos_ < n) {
      throw ProtocolError(std::string("net: truncated frame body reading ") + what);
    }
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

std::string read_name(Reader& r) {
  const std::size_t len = r.u16();
  if (len == 0 || len > kMaxModelName) {
    throw ProtocolError("net: model name length " + std::to_string(len) +
                        " outside [1, " + std::to_string(kMaxModelName) + "]");
  }
  return r.bytes(len, "model name");
}

std::string read_message(Reader& r) {
  const std::size_t len = r.u16();
  if (len > kMaxMessage) {
    throw ProtocolError("net: message length " + std::to_string(len) + " exceeds " +
                        std::to_string(kMaxMessage));
  }
  return r.bytes(len, "message");
}

tensor::Shape read_shape(Reader& r) {
  const std::size_t rank = r.bytes(1, "rank")[0] & 0xffu;
  if (rank == 0 || rank > kMaxRank) {
    throw ProtocolError("net: tensor rank " + std::to_string(rank) + " outside [1, " +
                        std::to_string(kMaxRank) + "]");
  }
  tensor::Shape shape;
  shape.reserve(rank);
  for (std::size_t i = 0; i < rank; ++i) {
    const std::uint32_t dim = r.u32();
    if (dim == 0 || dim > kMaxDim) {
      throw ProtocolError("net: tensor dim " + std::to_string(dim) + " outside [1, " +
                          std::to_string(kMaxDim) + "]");
    }
    shape.push_back(static_cast<int>(dim));
  }
  return shape;
}

tensor::Tensor read_tensor(Reader& r) {
  const tensor::Shape shape = read_shape(r);
  const std::size_t numel = tensor::shape_numel(shape);
  // The frame length already passed the kMaxFrameBytes gate, so this
  // check is exact bookkeeping, not a size cap: the remaining bytes
  // must be precisely the declared payload.
  if (r.remaining() != numel * 4) {
    throw ProtocolError("net: tensor payload is " + std::to_string(r.remaining()) +
                        " bytes but shape " + tensor::shape_to_string(shape) +
                        " requires " + std::to_string(numel * 4));
  }
  std::vector<float> values(numel);
  for (float& v : values) v = r.f32();
  return {shape, std::move(values)};
}

void write_name(std::vector<std::uint8_t>& out, const std::string& name) {
  if (name.empty() || name.size() > kMaxModelName) {
    throw ProtocolError("net: model name length " + std::to_string(name.size()) +
                        " outside [1, " + std::to_string(kMaxModelName) + "]");
  }
  put_u16(out, static_cast<std::uint16_t>(name.size()));
  out.insert(out.end(), name.begin(), name.end());
}

void write_message(std::vector<std::uint8_t>& out, const std::string& message) {
  // Truncate rather than reject: a reason string is advisory, and an
  // over-long exception message must not make the reply unsendable.
  const std::size_t len = std::min(message.size(), kMaxMessage);
  put_u16(out, static_cast<std::uint16_t>(len));
  out.insert(out.end(), message.begin(), message.begin() + static_cast<long>(len));
}

void write_shape(std::vector<std::uint8_t>& out, const tensor::Shape& shape) {
  if (shape.empty() || shape.size() > kMaxRank) {
    throw ProtocolError("net: tensor rank " + std::to_string(shape.size()) +
                        " outside [1, " + std::to_string(kMaxRank) + "]");
  }
  out.push_back(static_cast<std::uint8_t>(shape.size()));
  for (const int dim : shape) {
    if (dim <= 0 || static_cast<std::uint32_t>(dim) > kMaxDim) {
      throw ProtocolError("net: tensor dim " + std::to_string(dim) + " outside [1, " +
                          std::to_string(kMaxDim) + "]");
    }
    put_u32(out, static_cast<std::uint32_t>(dim));
  }
}

void write_tensor(std::vector<std::uint8_t>& out, const tensor::Tensor& tensor) {
  write_shape(out, tensor.shape());
  for (const float v : tensor.span()) put_f32(out, v);
}

}  // namespace

bool frame_type_known(std::uint16_t value) {
  return value >= static_cast<std::uint16_t>(FrameType::kInfer) &&
         value <= static_cast<std::uint16_t>(FrameType::kInfoReply);
}

const char* frame_type_name(FrameType type) {
  switch (type) {
    case FrameType::kInfer: return "infer";
    case FrameType::kResult: return "result";
    case FrameType::kError: return "error";
    case FrameType::kBusy: return "busy";
    case FrameType::kInfo: return "info";
    case FrameType::kInfoReply: return "info_reply";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  std::vector<std::uint8_t> out;
  out.reserve(64 + frame.tensor.numel() * 4);
  put_u32(out, 0);  // length placeholder, patched below
  put_u32(out, kMagic);
  put_u16(out, kVersion);
  put_u16(out, static_cast<std::uint16_t>(frame.type));
  put_u64(out, frame.request_id);
  switch (frame.type) {
    case FrameType::kInfer:
      write_name(out, frame.model);
      write_tensor(out, frame.tensor);
      break;
    case FrameType::kResult:
      write_tensor(out, frame.tensor);
      break;
    case FrameType::kError:
    case FrameType::kBusy:
      write_message(out, frame.message);
      break;
    case FrameType::kInfo:
      write_name(out, frame.model);
      break;
    case FrameType::kInfoReply:
      write_shape(out, frame.sample_shape);
      put_u32(out, static_cast<std::uint32_t>(frame.num_classes));
      put_u32(out, static_cast<std::uint32_t>(frame.model_version));
      break;
  }
  const std::size_t length = out.size() - 4;
  if (length > kMaxFrameBytes) {
    throw ProtocolError("net: frame of " + std::to_string(length) +
                        " bytes exceeds kMaxFrameBytes");
  }
  for (int i = 0; i < 4; ++i) {
    out[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((length >> (8 * i)) & 0xffu);
  }
  return out;
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t size) {
  if (failed_) return;  // poisoned; the connection should be closing
  // Reclaim the parsed prefix before growing, so a long-lived
  // connection's buffer stays proportional to one frame, not the
  // session history.
  if (consumed_ > 0) {
    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<long>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + size);
}

bool FrameDecoder::next(Frame& out) {
  if (failed_) throw ProtocolError("net: decoder already failed");
  const std::size_t avail = buffer_.size() - consumed_;
  if (avail < 4) return false;
  const std::uint8_t* p = buffer_.data() + consumed_;
  std::uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  try {
    // The length word is validated *before* waiting for the body: an
    // oversized or undersized claim is rejected on its first 4 bytes,
    // so garbage can never make the decoder buffer unboundedly.
    if (length > kMaxFrameBytes) {
      throw ProtocolError("net: frame length " + std::to_string(length) +
                          " exceeds kMaxFrameBytes (" +
                          std::to_string(kMaxFrameBytes) + ")");
    }
    if (length < 16) {
      throw ProtocolError("net: frame length " + std::to_string(length) +
                          " shorter than the fixed header");
    }
    if (avail - 4 < length) return false;  // partial frame: wait for more bytes

    Reader r(p + 4, length);
    const std::uint32_t magic = r.u32();
    if (magic != kMagic) {
      throw ProtocolError("net: bad magic 0x" + [magic] {
        char buf[16];
        std::snprintf(buf, sizeof(buf), "%08x", magic);
        return std::string(buf);
      }());
    }
    const std::uint16_t version = r.u16();
    if (version != kVersion) {
      throw ProtocolError("net: unsupported protocol version " +
                          std::to_string(version) + " (expected " +
                          std::to_string(kVersion) + ")");
    }
    const std::uint16_t type = r.u16();
    if (!frame_type_known(type)) {
      throw ProtocolError("net: unknown frame type " + std::to_string(type));
    }

    Frame frame;
    frame.type = static_cast<FrameType>(type);
    frame.request_id = r.u64();
    switch (frame.type) {
      case FrameType::kInfer:
        frame.model = read_name(r);
        frame.tensor = read_tensor(r);
        break;
      case FrameType::kResult:
        frame.tensor = read_tensor(r);
        break;
      case FrameType::kError:
      case FrameType::kBusy:
        frame.message = read_message(r);
        break;
      case FrameType::kInfo:
        frame.model = read_name(r);
        break;
      case FrameType::kInfoReply:
        frame.sample_shape = read_shape(r);
        frame.num_classes = static_cast<std::int32_t>(r.u32());
        frame.model_version = static_cast<std::int32_t>(r.u32());
        break;
    }
    if (r.remaining() != 0) {
      throw ProtocolError("net: frame carries " + std::to_string(r.remaining()) +
                          " trailing bytes after its " +
                          std::string(frame_type_name(frame.type)) + " body");
    }
    consumed_ += 4 + static_cast<std::size_t>(length);
    out = std::move(frame);
    return true;
  } catch (const ProtocolError&) {
    failed_ = true;
    throw;
  }
}

}  // namespace cq::net
