#pragma once

#include <cstdint>
#include <string>

#include "net/socket.h"
#include "tensor/tensor.h"

namespace cq::net {

/// Server answered kError: the request can not succeed as posed
/// (unknown model, malformed request, execution failure). Distinct
/// from kBusy, which is a retryable load-shed and is reported in-band
/// through InferResult rather than thrown.
class RemoteError : public std::runtime_error {
 public:
  explicit RemoteError(const std::string& what) : std::runtime_error(what) {}
};

/// Blocking protocol client over one connection: the remote face of
/// serve::ModelRegistry. One request is in flight at a time per
/// Client; drive several Clients for concurrency (cq_serve_bench
/// --connect opens one per submitter thread). Not thread-safe.
class Client {
 public:
  Client(const std::string& host, std::uint16_t port)
      : socket_(tcp_connect(host, port)) {}

  /// Input contract of one served model, as the server reports it.
  struct ModelInfo {
    tensor::Shape sample_shape;
    int num_classes = 0;
    int version = 0;  ///< registry hot-swap version currently serving
  };

  /// Outcome of one inference round trip. `admitted` is false when the
  /// server shed the request (kBusy) — `reason` says why and the
  /// request may be retried; on admission `logits` holds the
  /// [num_classes] response row.
  struct InferResult {
    bool admitted = false;
    tensor::Tensor logits;
    std::string reason;
  };

  /// Round-trips one sample. Throws RemoteError on a kError reply,
  /// NetError/ProtocolError on transport trouble.
  InferResult infer(const std::string& model, const tensor::Tensor& sample);

  /// Asks for a model's input shape / class count / serving version.
  ModelInfo info(const std::string& model);

 private:
  /// Sends `request` (stamping a fresh id) and blocks for the matching
  /// reply; throws ProtocolError if the server echoes the wrong id.
  Frame call(Frame request);

  Socket socket_;
  FrameDecoder decoder_;
  std::uint64_t next_id_ = 1;
};

}  // namespace cq::net
