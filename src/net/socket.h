#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "net/protocol.h"

namespace cq::net {

/// Thrown for transport-level failures: connect/bind/accept errors,
/// writes to a closed peer, reads cut off mid-frame. Distinct from
/// ProtocolError (the bytes arrived fine but are not a valid frame).
class NetError : public std::runtime_error {
 public:
  explicit NetError(const std::string& what) : std::runtime_error(what) {}
};

/// Move-only RAII owner of one TCP socket fd.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void close();

  /// O_NONBLOCK on or off; throws NetError on fcntl failure.
  void set_nonblocking(bool enabled);

  /// Blocking: writes all `size` bytes or throws NetError (EPIPE /
  /// ECONNRESET surface here when the peer went away).
  void send_all(const void* data, std::size_t size);

  /// One recv: returns bytes read (0 = orderly peer shutdown). On a
  /// nonblocking socket returns kAgain when no data is ready. Throws
  /// NetError on hard errors.
  static constexpr std::size_t kAgain = static_cast<std::size_t>(-1);
  std::size_t recv_some(void* data, std::size_t size);

  /// One send (MSG_NOSIGNAL): returns bytes written, kAgain when a
  /// nonblocking socket's buffer is full. Throws NetError on hard
  /// errors (EPIPE when the peer vanished).
  std::size_t send_some(const void* data, std::size_t size);

 private:
  int fd_ = -1;
};

/// Listening TCP socket. Port 0 binds an ephemeral port; port() reports
/// the one actually bound (tests and --port=0 daemons print it).
class Listener {
 public:
  /// Binds and listens. loopback_only restricts to 127.0.0.1 (the
  /// default — serving all interfaces is an explicit choice).
  explicit Listener(std::uint16_t port, bool loopback_only = true, int backlog = 64);

  std::uint16_t port() const { return port_; }
  int fd() const { return socket_.fd(); }

  /// Accepts one pending connection; on a nonblocking listener returns
  /// an invalid Socket when none is pending.
  Socket accept();

  void set_nonblocking(bool enabled) { socket_.set_nonblocking(enabled); }

 private:
  Socket socket_;
  std::uint16_t port_ = 0;
};

/// Blocking TCP connect to host:port. `host` is a dotted-quad IPv4
/// address or "localhost". Throws NetError on failure.
Socket tcp_connect(const std::string& host, std::uint16_t port);

/// Encodes and fully writes one frame.
void send_frame(Socket& socket, const Frame& frame);

/// Blocks until one complete frame is decoded from the stream. Returns
/// false on a clean EOF at a frame boundary; throws NetError when the
/// peer disconnects mid-frame, ProtocolError on malformed bytes.
bool recv_frame(Socket& socket, FrameDecoder& decoder, Frame& out);

}  // namespace cq::net
