#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.h"
#include "obs/metrics.h"
#include "serve/model_registry.h"

namespace cq::net {

struct FrontEndConfig {
  std::uint16_t port = 0;     ///< 0 binds an ephemeral port; see port()
  bool loopback_only = true;  ///< serving all interfaces is an explicit choice
  /// Open-connection cap: while at it, the listener simply stops
  /// accepting (the kernel backlog queues or refuses the rest).
  int max_connections = 64;
  /// Global cap on admitted-but-unanswered requests across all
  /// connections and models — the front end's own overload valve,
  /// above the per-model queue-depth admission in the registry.
  /// Exceeding it answers kBusy, never blocks the event loop.
  std::size_t max_inflight = 1024;
  /// Threads that wait on admitted futures and encode replies. The
  /// event loop itself never blocks on inference.
  int responders = 2;
  /// Per-connection cap on encoded-but-unsent reply bytes; a client
  /// that stops reading long enough to exceed it is disconnected
  /// (visible as a connection drop, never a silent reply loss on a
  /// healthy connection).
  std::size_t max_outbox_bytes = std::size_t{64} << 20;
};

/// Counter snapshot for tests/ops; metrics() has the live registry.
struct FrontEndStats {
  std::size_t connections_accepted = 0;
  std::size_t connections_open = 0;
  std::size_t protocol_errors = 0;
  std::size_t replies_result = 0;
  std::size_t replies_busy = 0;
  std::size_t replies_error = 0;
};

/// Socket front end over a serve::ModelRegistry: one poll()-based event
/// loop thread owns the listener and every connection socket
/// (nonblocking reads, FrameDecoder per connection, outbox writes on
/// POLLOUT); kInfer frames are admitted through
/// ModelRegistry::submit — admission never blocks, a shed request is
/// answered kBusy from the loop itself — and admitted futures are
/// awaited by a small responder pool that encodes kResult/kError
/// replies into the connection outbox and wakes the loop via a
/// self-pipe.
///
/// Protocol errors (ProtocolError from the decoder) are answered with
/// one kError frame, then the connection is closed after the flush:
/// length-prefixed framing cannot resync past a corrupt length word.
/// Clients may pipeline: request_id is echoed per reply, and replies
/// can complete out of order.
///
/// stop() is the graceful drain (the daemon's SIGTERM path): stop
/// accepting and reading, let every admitted request finish on the
/// plan it started on, flush all outboxes, then join. Idempotent; the
/// destructor calls it.
class FrontEnd {
 public:
  explicit FrontEnd(serve::ModelRegistry& registry, FrontEndConfig config = {});
  ~FrontEnd();

  FrontEnd(const FrontEnd&) = delete;
  FrontEnd& operator=(const FrontEnd&) = delete;

  /// The port actually bound (resolves config.port == 0).
  std::uint16_t port() const { return listener_.port(); }

  void stop();

  FrontEndStats stats() const;

  /// Live front-end instruments: connections_accepted / open gauges,
  /// protocol_errors, per-type reply counters, inflight gauge.
  const obs::Registry& metrics() const { return metrics_; }

 private:
  /// Per-connection state. The event loop owns the socket and decoder
  /// exclusively; responders touch only the mutex-guarded outbox.
  struct Conn {
    Socket socket;
    FrameDecoder decoder;
    std::uint64_t id = 0;
    bool read_open = true;  ///< loop-only: still polling for requests
    /// Admitted requests whose reply is not yet in the outbox (loop
    /// increments on admission, responders decrement after enqueue).
    std::atomic<int> inflight{0};

    std::mutex mutex;  ///< guards everything below
    std::deque<std::vector<std::uint8_t>> outbox;
    std::size_t out_offset = 0;   ///< bytes of outbox.front() already sent
    std::size_t outbox_bytes = 0;
    bool close_after_flush = false;  ///< poisoned stream: flush, then close
    bool dead = false;  ///< socket gone or hopeless; drop replies, close now
  };

  struct Pending {
    std::shared_ptr<Conn> conn;
    std::uint64_t request_id = 0;
    std::future<tensor::Tensor> result;
  };

  void loop();
  void responder_loop();
  void wake();
  void accept_ready();
  /// Drains readable bytes + dispatches decoded frames; returns false
  /// when the connection should stop being read.
  bool read_ready(const std::shared_ptr<Conn>& conn);
  void dispatch(const std::shared_ptr<Conn>& conn, Frame& frame);
  /// Encodes `frame` into the outbox (drops it when the conn is dead).
  void enqueue_reply(const std::shared_ptr<Conn>& conn, const Frame& frame);
  /// Flushes as much outbox as the socket accepts; returns false when
  /// the connection died mid-write.
  bool flush_ready(const std::shared_ptr<Conn>& conn);
  bool finished(const std::shared_ptr<Conn>& conn);

  serve::ModelRegistry& registry_;
  FrontEndConfig config_;
  Listener listener_;
  int wake_rd_ = -1;
  int wake_wr_ = -1;

  std::atomic<bool> stopping_{false};    ///< stop accepting/reading
  std::atomic<bool> flush_exit_{false};  ///< flush outboxes, then exit loop

  /// Completion queue: admitted requests, in admission order.
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  bool queue_closed_ = false;
  std::size_t inflight_ = 0;  ///< admitted, reply not yet in an outbox
  std::condition_variable drained_cv_;

  /// Loop-thread-only state.
  std::vector<std::shared_ptr<Conn>> conns_;
  std::uint64_t next_conn_id_ = 1;

  obs::Registry metrics_;
  obs::Counter& accepted_;
  obs::Counter& proto_errors_;
  obs::Counter& replies_result_;
  obs::Counter& replies_busy_;
  obs::Counter& replies_error_;
  obs::Gauge& open_gauge_;
  obs::Gauge& inflight_gauge_;

  std::mutex stop_mutex_;
  bool stopped_ = false;

  std::vector<std::thread> responders_;
  std::thread loop_thread_;
};

}  // namespace cq::net
