#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace cq::net {

/// Thrown for any malformed frame: bad magic, unsupported version,
/// unknown type, oversized or inconsistent lengths, payload that does
/// not match its declared shape. A stream that raised ProtocolError
/// cannot be resynchronized (framing is length-prefixed, and a corrupt
/// length word poisons everything after it) — the connection must be
/// closed.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what) : std::runtime_error(what) {}
};

/// Frame types of the cq serving protocol, version 1.
///
/// The client sends kInfer (one sample for one named model) and kInfo
/// (ask for a model's input contract); the server answers kResult
/// (logits), kBusy (load shed — the request was *not* executed and may
/// be retried), kError (the request cannot succeed as posed: unknown
/// model, malformed frame, execution failure), or kInfoReply.
enum class FrameType : std::uint16_t {
  kInfer = 1,
  kResult = 2,
  kError = 3,
  kBusy = 4,
  kInfo = 5,
  kInfoReply = 6,
};

/// True for the six types above; decode rejects everything else.
bool frame_type_known(std::uint16_t value);
const char* frame_type_name(FrameType type);

/// One protocol frame, either direction. Wire layout (all integers
/// little-endian):
///
///   u32 length     bytes that follow this word (header + body)
///   u32 magic      0x43514E31 ("CQN1")
///   u16 version    1
///   u16 type       FrameType
///   u64 request_id echoed verbatim in the reply to the request
///   ...body        per-type, see below
///
/// Bodies:
///   kInfer:     u16 name_len, name bytes, u8 rank, u32 dim[rank], f32 data[]
///   kResult:    u8 rank, u32 dim[rank], f32 data[]
///   kError:     u16 message_len, message bytes
///   kBusy:      u16 message_len, message bytes
///   kInfo:      u16 name_len, name bytes
///   kInfoReply: u8 rank, u32 dim[rank], i32 num_classes, i32 model_version
///
/// The payload of kInfer/kResult must satisfy: rank in [1, kMaxRank],
/// every dim in [1, kMaxDim], and the float payload exactly
/// numel * 4 bytes — a frame whose length disagrees with its declared
/// shape is rejected, never partially accepted.
struct Frame {
  FrameType type = FrameType::kError;
  std::uint64_t request_id = 0;
  std::string model;           ///< kInfer / kInfo: target model name
  tensor::Tensor tensor;       ///< kInfer: sample; kResult: logits
  std::string message;         ///< kError / kBusy: reason
  tensor::Shape sample_shape;  ///< kInfoReply: per-sample input shape
  std::int32_t num_classes = 0;    ///< kInfoReply
  std::int32_t model_version = 0;  ///< kInfoReply: registry version serving
};

inline constexpr std::uint32_t kMagic = 0x43514E31;  // "CQN1"
inline constexpr std::uint16_t kVersion = 1;
/// Hard cap on one frame (length word), shared by encoder and decoder:
/// an adversarial or corrupt length can never make a peer buffer more
/// than this before the frame is rejected.
inline constexpr std::size_t kMaxFrameBytes = std::size_t{16} << 20;  // 16 MiB
inline constexpr std::size_t kMaxModelName = 256;
inline constexpr std::size_t kMaxMessage = 4096;
inline constexpr std::size_t kMaxRank = 8;
inline constexpr std::uint32_t kMaxDim = 1u << 24;

/// Serializes one frame (validating the same limits decode enforces;
/// throws ProtocolError when the frame cannot be represented).
std::vector<std::uint8_t> encode_frame(const Frame& frame);

/// Incremental frame parser over a byte stream. feed() appends raw
/// bytes in whatever chunks the transport delivered them; next() yields
/// complete frames in order and returns false while the buffered prefix
/// is still partial. Malformed input throws ProtocolError and poisons
/// the decoder (failed() stays true; next() keeps throwing) — close the
/// connection, nothing after a framing error can be trusted.
class FrameDecoder {
 public:
  void feed(const std::uint8_t* data, std::size_t size);
  bool next(Frame& out);

  bool failed() const { return failed_; }
  /// Bytes buffered but not yet consumed by next().
  std::size_t pending_bytes() const { return buffer_.size() - consumed_; }
  /// True when no partial frame is buffered — a clean stream end.
  bool at_frame_boundary() const { return pending_bytes() == 0; }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;  ///< fully parsed prefix, reclaimed lazily
  bool failed_ = false;
};

}  // namespace cq::net
