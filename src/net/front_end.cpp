#include "net/front_end.h"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "util/logging.h"

namespace cq::net {

namespace {

void set_fd_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw NetError(std::string("net: fcntl(wake pipe): ") + std::strerror(errno));
  }
}

}  // namespace

FrontEnd::FrontEnd(serve::ModelRegistry& registry, FrontEndConfig config)
    : registry_(registry),
      config_(config),
      listener_(config.port, config.loopback_only),
      accepted_(metrics_.counter("connections_accepted", "client connections accepted")),
      proto_errors_(metrics_.counter("protocol_errors",
                                     "malformed frames (connection closed after)")),
      replies_result_(metrics_.counter("replies_result", "kResult replies sent")),
      replies_busy_(metrics_.counter("replies_busy", "kBusy replies (load shed)")),
      replies_error_(metrics_.counter("replies_error", "kError replies sent")),
      open_gauge_(metrics_.gauge("connections_open", "currently open connections")),
      inflight_gauge_(metrics_.gauge("inflight", "admitted requests awaiting reply")) {
  config_.max_connections = std::max(1, config_.max_connections);
  config_.max_inflight = std::max<std::size_t>(1, config_.max_inflight);
  config_.responders = std::max(1, config_.responders);

  int fds[2];
  if (::pipe(fds) != 0) {
    throw NetError(std::string("net: pipe: ") + std::strerror(errno));
  }
  wake_rd_ = fds[0];
  wake_wr_ = fds[1];
  set_fd_nonblocking(wake_rd_);
  set_fd_nonblocking(wake_wr_);
  listener_.set_nonblocking(true);

  responders_.reserve(static_cast<std::size_t>(config_.responders));
  for (int i = 0; i < config_.responders; ++i) {
    responders_.emplace_back([this] { responder_loop(); });
  }
  loop_thread_ = std::thread([this] { loop(); });
}

FrontEnd::~FrontEnd() {
  stop();
  if (wake_rd_ >= 0) ::close(wake_rd_);
  if (wake_wr_ >= 0) ::close(wake_wr_);
}

void FrontEnd::wake() {
  const char byte = 'w';
  if (::write(wake_wr_, &byte, 1) < 0) {
    // EAGAIN: the pipe already holds an undrained wakeup — good enough.
  }
}

void FrontEnd::stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  {
    // Same critical section as dispatch()'s admission reservation, so
    // after this block no new request can slip past the drain wait.
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_.store(true, std::memory_order_release);
  }
  wake();  // the loop stops accepting and reading

  {
    // Drain: every admitted request finishes (on the plan/version it
    // started on) and its reply lands in a connection outbox.
    std::unique_lock<std::mutex> lock(queue_mutex_);
    drained_cv_.wait(lock, [this] { return inflight_ == 0; });
    queue_closed_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : responders_) t.join();

  flush_exit_.store(true, std::memory_order_release);
  wake();  // the loop flushes every outbox, closes, exits
  loop_thread_.join();
}

FrontEndStats FrontEnd::stats() const {
  FrontEndStats s;
  s.connections_accepted = static_cast<std::size_t>(accepted_.value());
  s.connections_open = static_cast<std::size_t>(open_gauge_.value());
  s.protocol_errors = static_cast<std::size_t>(proto_errors_.value());
  s.replies_result = static_cast<std::size_t>(replies_result_.value());
  s.replies_busy = static_cast<std::size_t>(replies_busy_.value());
  s.replies_error = static_cast<std::size_t>(replies_error_.value());
  return s;
}

void FrontEnd::loop() {
  std::vector<pollfd> pfds;
  std::vector<std::shared_ptr<Conn>> polled;
  bool flushing = false;
  std::chrono::steady_clock::time_point flush_deadline{};

  for (;;) {
    const bool stopping = stopping_.load(std::memory_order_acquire);

    pfds.clear();
    polled.clear();
    pollfd wakefd{};
    wakefd.fd = wake_rd_;
    wakefd.events = POLLIN;
    pfds.push_back(wakefd);
    const bool accepting =
        !stopping && static_cast<int>(conns_.size()) < config_.max_connections;
    if (accepting) {
      pollfd lfd{};
      lfd.fd = listener_.fd();
      lfd.events = POLLIN;
      pfds.push_back(lfd);
    }
    for (const std::shared_ptr<Conn>& conn : conns_) {
      short events = 0;
      if (conn->read_open && !stopping) events |= POLLIN;
      {
        std::lock_guard<std::mutex> lock(conn->mutex);
        if (!conn->outbox.empty()) events |= POLLOUT;
      }
      pollfd cfd{};
      cfd.fd = conn->socket.fd();
      cfd.events = events;
      pfds.push_back(cfd);
      polled.push_back(conn);
    }

    if (::poll(pfds.data(), pfds.size(), 200) < 0 && errno != EINTR) {
      util::log_error() << "net::FrontEnd: poll: " << std::strerror(errno);
    }

    if ((pfds[0].revents & POLLIN) != 0) {
      char buf[64];
      while (::read(wake_rd_, buf, sizeof(buf)) > 0) {
      }
    }
    std::size_t base = 1;
    if (accepting) {
      if ((pfds[1].revents & POLLIN) != 0) accept_ready();
      base = 2;
    }
    for (std::size_t i = 0; i < polled.size(); ++i) {
      const std::shared_ptr<Conn>& conn = polled[i];
      const short revents = pfds[base + i].revents;
      if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0 && conn->read_open &&
          !stopping_.load(std::memory_order_acquire)) {
        if (!read_ready(conn)) conn->read_open = false;
      }
      if ((revents & POLLOUT) != 0) flush_ready(conn);
    }

    conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                [this](const std::shared_ptr<Conn>& conn) {
                                  return finished(conn);
                                }),
                 conns_.end());
    open_gauge_.set(static_cast<double>(conns_.size()));

    if (flush_exit_.load(std::memory_order_acquire)) {
      const auto now = std::chrono::steady_clock::now();
      if (!flushing) {
        flushing = true;
        flush_deadline = now + std::chrono::seconds(5);
      }
      bool pending = false;
      for (const std::shared_ptr<Conn>& conn : conns_) {
        std::lock_guard<std::mutex> lock(conn->mutex);
        if (!conn->dead && !conn->outbox.empty()) pending = true;
      }
      if (!pending || now >= flush_deadline) break;
    }
  }

  for (const std::shared_ptr<Conn>& conn : conns_) {
    std::lock_guard<std::mutex> lock(conn->mutex);
    conn->dead = true;
    conn->socket.close();
  }
  conns_.clear();
  open_gauge_.set(0.0);
}

void FrontEnd::accept_ready() {
  while (static_cast<int>(conns_.size()) < config_.max_connections) {
    Socket socket = listener_.accept();
    if (!socket.valid()) return;
    socket.set_nonblocking(true);
    auto conn = std::make_shared<Conn>();
    conn->socket = std::move(socket);
    conn->id = next_conn_id_++;
    conns_.push_back(std::move(conn));
    accepted_.inc();
  }
}

bool FrontEnd::read_ready(const std::shared_ptr<Conn>& conn) {
  std::uint8_t chunk[16384];
  for (;;) {
    std::size_t n = 0;
    try {
      n = conn->socket.recv_some(chunk, sizeof(chunk));
    } catch (const NetError&) {
      // Hard reset: nothing can be delivered in either direction.
      std::lock_guard<std::mutex> lock(conn->mutex);
      conn->dead = true;
      return false;
    }
    if (n == Socket::kAgain) return true;
    if (n == 0) {
      // Orderly half-close: stop reading, but queued and in-flight
      // replies still flush — the peer may shutdown(SHUT_WR) and read.
      return false;
    }
    try {
      conn->decoder.feed(chunk, n);
      Frame frame;
      while (conn->decoder.next(frame)) dispatch(conn, frame);
    } catch (const ProtocolError& error) {
      // One explicit kError, then close after the flush: a corrupt
      // length word poisons everything after it, resync is impossible.
      proto_errors_.inc();
      Frame reply;
      reply.type = FrameType::kError;
      reply.request_id = 0;  // the offending frame's id is unknowable
      reply.message = error.what();
      enqueue_reply(conn, reply);
      std::lock_guard<std::mutex> lock(conn->mutex);
      conn->close_after_flush = true;
      return false;
    }
  }
}

void FrontEnd::dispatch(const std::shared_ptr<Conn>& conn, Frame& frame) {
  Frame reply;
  reply.request_id = frame.request_id;
  switch (frame.type) {
    case FrameType::kInfer: {
      {
        // Reserve an in-flight slot under the same mutex stop() uses
        // to raise stopping_: either this request is refused BUSY, or
        // the drain wait is guaranteed to see it.
        std::unique_lock<std::mutex> lock(queue_mutex_);
        if (stopping_.load(std::memory_order_acquire)) {
          lock.unlock();
          reply.type = FrameType::kBusy;
          reply.message = "server is draining";
          enqueue_reply(conn, reply);
          return;
        }
        if (inflight_ >= config_.max_inflight) {
          lock.unlock();
          reply.type = FrameType::kBusy;
          reply.message = "server at max in-flight (" +
                          std::to_string(config_.max_inflight) + ")";
          enqueue_reply(conn, reply);
          return;
        }
        ++inflight_;
        inflight_gauge_.set(static_cast<double>(inflight_));
      }
      serve::ModelRegistry::Admission admission =
          registry_.submit(frame.model, std::move(frame.tensor));
      if (admission.outcome == serve::ModelRegistry::Outcome::kAdmitted) {
        conn->inflight.fetch_add(1, std::memory_order_acq_rel);
        Pending pending;
        pending.conn = conn;
        pending.request_id = frame.request_id;
        pending.result = std::move(admission.result);
        {
          std::lock_guard<std::mutex> lock(queue_mutex_);
          queue_.push_back(std::move(pending));
        }
        queue_cv_.notify_one();
        return;
      }
      {  // release the reserved slot
        std::lock_guard<std::mutex> lock(queue_mutex_);
        --inflight_;
        inflight_gauge_.set(static_cast<double>(inflight_));
        if (inflight_ == 0) drained_cv_.notify_all();
      }
      reply.type = admission.outcome == serve::ModelRegistry::Outcome::kShed
                       ? FrameType::kBusy
                       : FrameType::kError;
      reply.message = admission.reason;
      enqueue_reply(conn, reply);
      return;
    }
    case FrameType::kInfo: {
      try {
        const serve::ModelInfo info = registry_.info(frame.model);
        reply.type = FrameType::kInfoReply;
        reply.sample_shape = info.sample_shape;
        reply.num_classes = info.num_classes;
        reply.model_version = info.version;
      } catch (const serve::RegistryError& error) {
        reply.type = FrameType::kError;
        reply.message = error.what();
      }
      enqueue_reply(conn, reply);
      return;
    }
    default: {
      // A reply-direction frame arriving at the server: confused peer.
      reply.type = FrameType::kError;
      reply.message = std::string("net: unexpected ") +
                      frame_type_name(frame.type) + " frame from client";
      enqueue_reply(conn, reply);
      conn->read_open = false;
      std::lock_guard<std::mutex> lock(conn->mutex);
      conn->close_after_flush = true;
      return;
    }
  }
}

void FrontEnd::enqueue_reply(const std::shared_ptr<Conn>& conn, const Frame& frame) {
  std::vector<std::uint8_t> bytes = encode_frame(frame);
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    if (conn->dead) return;
    conn->outbox_bytes += bytes.size();
    conn->outbox.push_back(std::move(bytes));
    if (conn->outbox_bytes > config_.max_outbox_bytes) {
      // The peer stopped reading; disconnecting is visible, a silently
      // growing buffer is not.
      conn->dead = true;
      return;
    }
  }
  switch (frame.type) {
    case FrameType::kResult:
      replies_result_.inc();
      break;
    case FrameType::kBusy:
      replies_busy_.inc();
      break;
    case FrameType::kError:
      replies_error_.inc();
      break;
    default:
      break;  // kInfoReply
  }
}

bool FrontEnd::flush_ready(const std::shared_ptr<Conn>& conn) {
  std::lock_guard<std::mutex> lock(conn->mutex);
  while (!conn->outbox.empty()) {
    const std::vector<std::uint8_t>& front = conn->outbox.front();
    std::size_t n = 0;
    try {
      n = conn->socket.send_some(front.data() + conn->out_offset,
                                 front.size() - conn->out_offset);
    } catch (const NetError&) {
      conn->dead = true;
      return false;
    }
    if (n == Socket::kAgain) return true;
    conn->out_offset += n;
    conn->outbox_bytes -= n;
    if (conn->out_offset == front.size()) {
      conn->outbox.pop_front();
      conn->out_offset = 0;
    }
  }
  return true;
}

bool FrontEnd::finished(const std::shared_ptr<Conn>& conn) {
  std::lock_guard<std::mutex> lock(conn->mutex);
  if (conn->dead) {
    conn->socket.close();
    return true;
  }
  if (!conn->outbox.empty()) return false;
  const bool drained = conn->inflight.load(std::memory_order_acquire) == 0;
  if (conn->close_after_flush || (!conn->read_open && drained)) {
    conn->dead = true;  // responders racing in drop their replies
    conn->socket.close();
    return true;
  }
  return false;
}

void FrontEnd::responder_loop() {
  for (;;) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return queue_closed_ || !queue_.empty(); });
      if (queue_.empty()) return;  // closed and drained
      pending = std::move(queue_.front());
      queue_.pop_front();
    }
    Frame reply;
    reply.request_id = pending.request_id;
    try {
      reply.type = FrameType::kResult;
      reply.tensor = pending.result.get();
    } catch (const std::exception& error) {
      reply.type = FrameType::kError;
      reply.message = error.what();
    }
    enqueue_reply(pending.conn, reply);
    pending.conn->inflight.fetch_sub(1, std::memory_order_acq_rel);
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      --inflight_;
      inflight_gauge_.set(static_cast<double>(inflight_));
      if (inflight_ == 0) drained_cv_.notify_all();
    }
    wake();  // the loop adds POLLOUT for the reply's connection
  }
}

}  // namespace cq::net
