#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace cq::net {

namespace {

std::string errno_message(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::set_nonblocking(bool enabled) {
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) throw NetError(errno_message("net: fcntl(F_GETFL)"));
  const int next = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd_, F_SETFL, next) < 0) {
    throw NetError(errno_message("net: fcntl(F_SETFL)"));
  }
}

void Socket::send_all(const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  std::size_t sent = 0;
  while (sent < size) {
    // MSG_NOSIGNAL: a vanished peer must surface as EPIPE here, not as
    // a process-killing SIGPIPE.
    const ssize_t n = ::send(fd_, p + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw NetError(errno_message("net: send"));
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::size_t Socket::send_some(const void* data, std::size_t size) {
  for (;;) {
    const ssize_t n = ::send(fd_, data, size, MSG_NOSIGNAL);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return kAgain;
    throw NetError(errno_message("net: send"));
  }
}

std::size_t Socket::recv_some(void* data, std::size_t size) {
  for (;;) {
    const ssize_t n = ::recv(fd_, data, size, 0);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return kAgain;
    throw NetError(errno_message("net: recv"));
  }
}

Listener::Listener(std::uint16_t port, bool loopback_only, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw NetError(errno_message("net: socket"));
  socket_ = Socket(fd);

  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(loopback_only ? INADDR_LOOPBACK : INADDR_ANY);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    throw NetError(errno_message("net: bind port " + std::to_string(port)));
  }
  if (::listen(fd, backlog) < 0) throw NetError(errno_message("net: listen"));

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    throw NetError(errno_message("net: getsockname"));
  }
  port_ = ntohs(bound.sin_port);
}

Socket Listener::accept() {
  for (;;) {
    const int fd = ::accept(socket_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      Socket conn(fd);
      const int one = 1;
      // Request/response framing is latency-bound; never Nagle-delay a
      // reply that fits one segment.
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return conn;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED) {
      return Socket{};
    }
    throw NetError(errno_message("net: accept"));
  }
}

Socket tcp_connect(const std::string& host, std::uint16_t port) {
  const std::string node = (host == "localhost") ? "127.0.0.1" : host;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, node.c_str(), &addr.sin_addr) != 1) {
    throw NetError("net: cannot parse IPv4 address '" + host + "'");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw NetError(errno_message("net: socket"));
  Socket conn(fd);
  for (;;) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0) {
      break;
    }
    if (errno == EINTR) continue;
    throw NetError(errno_message("net: connect " + host + ":" + std::to_string(port)));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return conn;
}

void send_frame(Socket& socket, const Frame& frame) {
  const std::vector<std::uint8_t> bytes = encode_frame(frame);
  socket.send_all(bytes.data(), bytes.size());
}

bool recv_frame(Socket& socket, FrameDecoder& decoder, Frame& out) {
  if (decoder.next(out)) return true;  // a buffered frame from a prior read
  std::uint8_t chunk[4096];
  for (;;) {
    const std::size_t n = socket.recv_some(chunk, sizeof(chunk));
    if (n == Socket::kAgain) {
      // Blocking-socket contract; a nonblocking caller uses the
      // decoder directly from its event loop instead.
      throw NetError("net: recv_frame on a nonblocking socket would block");
    }
    if (n == 0) {
      if (decoder.at_frame_boundary()) return false;  // clean EOF
      throw NetError("net: peer disconnected mid-frame (" +
                     std::to_string(decoder.pending_bytes()) + " bytes pending)");
    }
    decoder.feed(chunk, n);
    if (decoder.next(out)) return true;
  }
}

}  // namespace cq::net
