#include "tensor/ops.h"

#include <cmath>
#include <cstring>

namespace cq::tensor {

void gemm(const float* a, const float* b, float* c, int m, int k, int n, bool accumulate,
          const util::ExecContext& exec) {
  // i-k-j loop order keeps the inner loop streaming over contiguous
  // rows of B and C, which is the cache-friendly order for row-major.
  // Each chunk owns whole rows of C, so chunking never splits (or
  // reorders) the per-element accumulation.
  exec.parallel_for(0, m, [=](std::int64_t i0, std::int64_t i1) {
    if (!accumulate) {
      std::memset(c + static_cast<std::size_t>(i0) * n, 0,
                  sizeof(float) * static_cast<std::size_t>(i1 - i0) * n);
    }
    for (std::int64_t i = i0; i < i1; ++i) {
      const float* arow = a + static_cast<std::size_t>(i) * k;
      float* crow = c + static_cast<std::size_t>(i) * n;
      for (int p = 0; p < k; ++p) {
        const float av = arow[p];
        if (av == 0.0f) continue;
        const float* brow = b + static_cast<std::size_t>(p) * n;
        for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
}

void gemm_at_b(const float* a, const float* b, float* c, int k, int m, int n,
               bool accumulate, const util::ExecContext& exec) {
  // p stays the outer loop inside each chunk (B rows stream once per
  // p), so every element still accumulates its k contributions in
  // ascending-p order exactly as the serial kernel always did.
  exec.parallel_for(0, m, [=](std::int64_t i0, std::int64_t i1) {
    if (!accumulate) {
      std::memset(c + static_cast<std::size_t>(i0) * n, 0,
                  sizeof(float) * static_cast<std::size_t>(i1 - i0) * n);
    }
    for (int p = 0; p < k; ++p) {
      const float* arow = a + static_cast<std::size_t>(p) * m;
      const float* brow = b + static_cast<std::size_t>(p) * n;
      for (std::int64_t i = i0; i < i1; ++i) {
        const float av = arow[i];
        if (av == 0.0f) continue;
        float* crow = c + static_cast<std::size_t>(i) * n;
        for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
}

void gemm_a_bt(const float* a, const float* b, float* c, int m, int k, int n,
               bool accumulate, const util::ExecContext& exec) {
  exec.parallel_for(0, m, [=](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const float* arow = a + static_cast<std::size_t>(i) * k;
      float* crow = c + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) {
        const float* brow = b + static_cast<std::size_t>(j) * k;
        double acc = accumulate ? crow[j] : 0.0;
        for (int p = 0; p < k; ++p) acc += static_cast<double>(arow[p]) * brow[p];
        crow[j] = static_cast<float>(acc);
      }
    }
  });
}

void im2col(const float* input, const ConvGeometry& g, float* cols,
            const util::ExecContext& exec) {
  im2col_any(input, g, cols, exec);
}

void col2im(const float* cols, const ConvGeometry& g, float* input_grad) {
  const int oh = g.out_h();
  const int ow = g.out_w();
  const int spatial = oh * ow;
  for (int c = 0; c < g.in_c; ++c) {
    float* plane = input_grad + static_cast<std::size_t>(c) * g.in_h * g.in_w;
    for (int ky = 0; ky < g.kernel; ++ky) {
      for (int kx = 0; kx < g.kernel; ++kx) {
        const float* crow =
            cols + (static_cast<std::size_t>(c) * g.kernel * g.kernel + ky * g.kernel + kx) *
                       spatial;
        for (int y = 0; y < oh; ++y) {
          const int iy = y * g.stride - g.pad + ky;
          if (iy < 0 || iy >= g.in_h) continue;
          float* irow = plane + static_cast<std::size_t>(iy) * g.in_w;
          const float* orow = crow + static_cast<std::size_t>(y) * ow;
          for (int x = 0; x < ow; ++x) {
            const int ix = x * g.stride - g.pad + kx;
            if (ix >= 0 && ix < g.in_w) irow[ix] += orow[x];
          }
        }
      }
    }
  }
}

Tensor softmax_rows(const Tensor& logits) {
  Tensor out = logits;
  const int rows = logits.dim(0);
  const int cols = logits.dim(1);
  for (int r = 0; r < rows; ++r) {
    auto orow = out.row(r);
    float mx = orow[0];
    for (int c = 1; c < cols; ++c) mx = std::max(mx, orow[static_cast<std::size_t>(c)]);
    double denom = 0.0;
    for (int c = 0; c < cols; ++c) {
      orow[static_cast<std::size_t>(c)] = std::exp(orow[static_cast<std::size_t>(c)] - mx);
      denom += orow[static_cast<std::size_t>(c)];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (int c = 0; c < cols; ++c) orow[static_cast<std::size_t>(c)] *= inv;
  }
  return out;
}

Tensor log_softmax_rows(const Tensor& logits) {
  Tensor out = logits;
  const int rows = logits.dim(0);
  const int cols = logits.dim(1);
  for (int r = 0; r < rows; ++r) {
    auto orow = out.row(r);
    float mx = orow[0];
    for (int c = 1; c < cols; ++c) mx = std::max(mx, orow[static_cast<std::size_t>(c)]);
    double denom = 0.0;
    for (int c = 0; c < cols; ++c) denom += std::exp(orow[static_cast<std::size_t>(c)] - mx);
    const float log_denom = static_cast<float>(std::log(denom)) + mx;
    for (int c = 0; c < cols; ++c) orow[static_cast<std::size_t>(c)] -= log_denom;
  }
  return out;
}

}  // namespace cq::tensor
