#include "tensor/ops.h"

#include <cmath>
#include <cstring>

namespace cq::tensor {

void gemm(const float* a, const float* b, float* c, int m, int k, int n, bool accumulate) {
  if (!accumulate) std::memset(c, 0, sizeof(float) * static_cast<std::size_t>(m) * n);
  // i-k-j loop order keeps the inner loop streaming over contiguous
  // rows of B and C, which is the cache-friendly order for row-major.
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * k;
    float* crow = c + static_cast<std::size_t>(i) * n;
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + static_cast<std::size_t>(p) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_at_b(const float* a, const float* b, float* c, int k, int m, int n,
               bool accumulate) {
  if (!accumulate) std::memset(c, 0, sizeof(float) * static_cast<std::size_t>(m) * n);
  for (int p = 0; p < k; ++p) {
    const float* arow = a + static_cast<std::size_t>(p) * m;
    const float* brow = b + static_cast<std::size_t>(p) * n;
    for (int i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_a_bt(const float* a, const float* b, float* c, int m, int k, int n,
               bool accumulate) {
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * k;
    float* crow = c + static_cast<std::size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const float* brow = b + static_cast<std::size_t>(j) * k;
      double acc = accumulate ? crow[j] : 0.0;
      for (int p = 0; p < k; ++p) acc += static_cast<double>(arow[p]) * brow[p];
      crow[j] = static_cast<float>(acc);
    }
  }
}

void im2col(const float* input, const ConvGeometry& g, float* cols) {
  const int oh = g.out_h();
  const int ow = g.out_w();
  const int spatial = oh * ow;
  // cols layout: row = (c, ky, kx), col = (y, x) of the output.
  for (int c = 0; c < g.in_c; ++c) {
    const float* plane = input + static_cast<std::size_t>(c) * g.in_h * g.in_w;
    for (int ky = 0; ky < g.kernel; ++ky) {
      for (int kx = 0; kx < g.kernel; ++kx) {
        float* crow =
            cols + (static_cast<std::size_t>(c) * g.kernel * g.kernel + ky * g.kernel + kx) *
                       spatial;
        for (int y = 0; y < oh; ++y) {
          const int iy = y * g.stride - g.pad + ky;
          if (iy < 0 || iy >= g.in_h) {
            std::memset(crow + static_cast<std::size_t>(y) * ow, 0, sizeof(float) * ow);
            continue;
          }
          const float* irow = plane + static_cast<std::size_t>(iy) * g.in_w;
          float* orow = crow + static_cast<std::size_t>(y) * ow;
          for (int x = 0; x < ow; ++x) {
            const int ix = x * g.stride - g.pad + kx;
            orow[x] = (ix >= 0 && ix < g.in_w) ? irow[ix] : 0.0f;
          }
        }
      }
    }
  }
}

void col2im(const float* cols, const ConvGeometry& g, float* input_grad) {
  const int oh = g.out_h();
  const int ow = g.out_w();
  const int spatial = oh * ow;
  for (int c = 0; c < g.in_c; ++c) {
    float* plane = input_grad + static_cast<std::size_t>(c) * g.in_h * g.in_w;
    for (int ky = 0; ky < g.kernel; ++ky) {
      for (int kx = 0; kx < g.kernel; ++kx) {
        const float* crow =
            cols + (static_cast<std::size_t>(c) * g.kernel * g.kernel + ky * g.kernel + kx) *
                       spatial;
        for (int y = 0; y < oh; ++y) {
          const int iy = y * g.stride - g.pad + ky;
          if (iy < 0 || iy >= g.in_h) continue;
          float* irow = plane + static_cast<std::size_t>(iy) * g.in_w;
          const float* orow = crow + static_cast<std::size_t>(y) * ow;
          for (int x = 0; x < ow; ++x) {
            const int ix = x * g.stride - g.pad + kx;
            if (ix >= 0 && ix < g.in_w) irow[ix] += orow[x];
          }
        }
      }
    }
  }
}

Tensor softmax_rows(const Tensor& logits) {
  Tensor out = logits;
  const int rows = logits.dim(0);
  const int cols = logits.dim(1);
  for (int r = 0; r < rows; ++r) {
    auto orow = out.row(r);
    float mx = orow[0];
    for (int c = 1; c < cols; ++c) mx = std::max(mx, orow[static_cast<std::size_t>(c)]);
    double denom = 0.0;
    for (int c = 0; c < cols; ++c) {
      orow[static_cast<std::size_t>(c)] = std::exp(orow[static_cast<std::size_t>(c)] - mx);
      denom += orow[static_cast<std::size_t>(c)];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (int c = 0; c < cols; ++c) orow[static_cast<std::size_t>(c)] *= inv;
  }
  return out;
}

Tensor log_softmax_rows(const Tensor& logits) {
  Tensor out = logits;
  const int rows = logits.dim(0);
  const int cols = logits.dim(1);
  for (int r = 0; r < rows; ++r) {
    auto orow = out.row(r);
    float mx = orow[0];
    for (int c = 1; c < cols; ++c) mx = std::max(mx, orow[static_cast<std::size_t>(c)]);
    double denom = 0.0;
    for (int c = 0; c < cols; ++c) denom += std::exp(orow[static_cast<std::size_t>(c)] - mx);
    const float log_denom = static_cast<float>(std::log(denom)) + mx;
    for (int c = 0; c < cols; ++c) orow[static_cast<std::size_t>(c)] -= log_denom;
  }
  return out;
}

}  // namespace cq::tensor
