#include "tensor/tensor.h"

#include <cassert>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace cq::tensor {

std::size_t shape_numel(const Shape& shape) {
  std::size_t n = 1;
  for (const int d : shape) {
    if (d < 0) throw std::invalid_argument("negative dimension in shape");
    n *= static_cast<std::size_t>(d);
  }
  return n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0f) {}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
  if (data_.size() != shape_numel(shape_)) {
    throw std::invalid_argument("Tensor: value count " + std::to_string(data_.size()) +
                                " does not match shape " + shape_to_string(shape_));
  }
}

Tensor Tensor::zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::ones(Shape shape) { return full(std::move(shape), 1.0f); }

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(Shape shape, util::Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.normal(0.0, stddev));
  return t;
}

Tensor Tensor::rand_uniform(Shape shape, util::Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

float& Tensor::at(int r, int c) {
  assert(rank() == 2);
  return data_[static_cast<std::size_t>(r) * shape_[1] + c];
}

float Tensor::at(int r, int c) const {
  assert(rank() == 2);
  return data_[static_cast<std::size_t>(r) * shape_[1] + c];
}

float& Tensor::at(int n, int c, int h, int w) {
  assert(rank() == 4);
  const std::size_t idx =
      ((static_cast<std::size_t>(n) * shape_[1] + c) * shape_[2] + h) * shape_[3] + w;
  return data_[idx];
}

float Tensor::at(int n, int c, int h, int w) const {
  assert(rank() == 4);
  const std::size_t idx =
      ((static_cast<std::size_t>(n) * shape_[1] + c) * shape_[2] + h) * shape_[3] + w;
  return data_[idx];
}

Tensor Tensor::reshape(Shape new_shape) const {
  if (shape_numel(new_shape) != numel()) {
    throw std::invalid_argument("reshape: numel mismatch " + shape_to_string(shape_) +
                                " -> " + shape_to_string(new_shape));
  }
  return Tensor(std::move(new_shape), data_);
}

void Tensor::fill(float value) {
  for (auto& v : data_) v = value;
}

Tensor& Tensor::operator+=(const Tensor& rhs) {
  if (shape_ != rhs.shape_) throw std::invalid_argument("operator+=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& rhs) {
  if (shape_ != rhs.shape_) throw std::invalid_argument("operator-=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float scalar) {
  for (auto& v : data_) v *= scalar;
  return *this;
}

double Tensor::sum() const {
  double s = 0.0;
  for (const float v : data_) s += v;
  return s;
}

double Tensor::mean() const { return data_.empty() ? 0.0 : sum() / static_cast<double>(data_.size()); }

float Tensor::abs_max() const {
  float m = 0.0f;
  for (const float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

std::span<float> Tensor::row(int r) {
  assert(rank() == 2);
  return {data_.data() + static_cast<std::size_t>(r) * shape_[1],
          static_cast<std::size_t>(shape_[1])};
}

std::span<const float> Tensor::row(int r) const {
  assert(rank() == 2);
  return {data_.data() + static_cast<std::size_t>(r) * shape_[1],
          static_cast<std::size_t>(shape_[1])};
}

int Tensor::argmax_row(int r) const {
  const auto values = row(r);
  int best = 0;
  for (int c = 1; c < shape_[1]; ++c) {
    if (values[static_cast<std::size_t>(c)] > values[static_cast<std::size_t>(best)]) best = c;
  }
  return best;
}

bool Tensor::allclose(const Tensor& other, float tol) const {
  if (shape_ != other.shape_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

Tensor operator+(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out += b;
  return out;
}

Tensor operator-(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out -= b;
  return out;
}

Tensor operator*(const Tensor& a, float scalar) {
  Tensor out = a;
  out *= scalar;
  return out;
}

}  // namespace cq::tensor
