#pragma once

#include <map>
#include <string>

#include "tensor/tensor.h"

namespace cq::tensor {

/// Binary tensor checkpoint format:
///   magic "CQT1" | u32 entry count | entries
/// each entry: u32 name length | name bytes | u32 rank | u32 dims... |
/// float32 data. Little-endian (host) byte order; intended for
/// same-machine checkpointing of trained models between benches.
void save_tensors(const std::string& path, const std::map<std::string, Tensor>& tensors);

/// Loads a checkpoint written by save_tensors. Throws on format errors.
std::map<std::string, Tensor> load_tensors(const std::string& path);

}  // namespace cq::tensor
