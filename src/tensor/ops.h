#pragma once

#include "tensor/tensor.h"

namespace cq::tensor {

/// C = A * B for row-major A[M,K], B[K,N], C[M,N].
/// `accumulate` adds into C instead of overwriting it.
void gemm(const float* a, const float* b, float* c, int m, int k, int n,
          bool accumulate = false);

/// C = A^T * B for A[K,M], B[K,N], C[M,N].
void gemm_at_b(const float* a, const float* b, float* c, int k, int m, int n,
               bool accumulate = false);

/// C = A * B^T for A[M,K], B[N,K], C[M,N].
void gemm_a_bt(const float* a, const float* b, float* c, int m, int k, int n,
               bool accumulate = false);

/// Geometry of a 2-D convolution / pooling window.
struct ConvGeometry {
  int in_c = 0, in_h = 0, in_w = 0;
  int kernel = 3;
  int stride = 1;
  int pad = 1;

  int out_h() const { return (in_h + 2 * pad - kernel) / stride + 1; }
  int out_w() const { return (in_w + 2 * pad - kernel) / stride + 1; }
  /// Rows of the im2col matrix: in_c * kernel * kernel.
  int patch_size() const { return in_c * kernel * kernel; }
};

/// im2col for one image: input [C,H,W] (contiguous) is unfolded into
/// `cols` of shape [patch_size, out_h*out_w], zero padding applied.
void im2col(const float* input, const ConvGeometry& g, float* cols);

/// Inverse scatter-add of im2col: accumulates `cols` back into
/// `input_grad` (must be zeroed by the caller for a fresh gradient).
void col2im(const float* cols, const ConvGeometry& g, float* input_grad);

/// Row-wise softmax of a rank-2 tensor (numerically stable).
Tensor softmax_rows(const Tensor& logits);

/// log-softmax of a rank-2 tensor, row-wise.
Tensor log_softmax_rows(const Tensor& logits);

}  // namespace cq::tensor
