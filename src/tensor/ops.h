#pragma once

#include "tensor/tensor.h"
#include "util/exec_context.h"

namespace cq::tensor {

/// The GEMM/im2col kernels accept an optional util::ExecContext and
/// chunk their independent output rows over it. Every output element
/// is produced by exactly one chunk with its reduction order fixed by
/// the element (not the thread count), so results are bit-identical
/// between serial and any parallel execution. The default context runs
/// the historical serial loops unchanged.

/// C = A * B for row-major A[M,K], B[K,N], C[M,N].
/// `accumulate` adds into C instead of overwriting it.
/// Parallelism: row blocks of A/C.
void gemm(const float* a, const float* b, float* c, int m, int k, int n,
          bool accumulate = false, const util::ExecContext& exec = {});

/// C = A^T * B for A[K,M], B[K,N], C[M,N].
/// Parallelism: row blocks of C (columns of A).
void gemm_at_b(const float* a, const float* b, float* c, int k, int m, int n,
               bool accumulate = false, const util::ExecContext& exec = {});

/// C = A * B^T for A[M,K], B[N,K], C[M,N].
/// Parallelism: row blocks of A/C.
void gemm_a_bt(const float* a, const float* b, float* c, int m, int k, int n,
               bool accumulate = false, const util::ExecContext& exec = {});

/// Geometry of a 2-D convolution / pooling window.
struct ConvGeometry {
  int in_c = 0, in_h = 0, in_w = 0;
  int kernel = 3;
  int stride = 1;
  int pad = 1;

  int out_h() const { return (in_h + 2 * pad - kernel) / stride + 1; }
  int out_w() const { return (in_w + 2 * pad - kernel) / stride + 1; }
  /// Rows of the im2col matrix: in_c * kernel * kernel.
  int patch_size() const { return in_c * kernel * kernel; }
};

/// im2col for one image of any scalar type: input [C,H,W] (contiguous)
/// is unfolded into `cols` of shape [patch_size, out_h*out_w], zero
/// padding applied. One implementation serves the float training path
/// and the integer-engine code path so the geometry/padding logic can
/// never diverge between them. cols layout: row = (c, ky, kx), col =
/// (y, x) of the output. Rows are fully independent writes, so they
/// chunk over the context.
template <typename T>
void im2col_any(const T* input, const ConvGeometry& g, T* cols,
                const util::ExecContext& exec = {}) {
  const int oh = g.out_h();
  const int ow = g.out_w();
  const int spatial = oh * ow;
  const int kk = g.kernel * g.kernel;
  exec.parallel_for(0, static_cast<std::int64_t>(g.in_c) * kk,
                    [=](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      const int c = static_cast<int>(r / kk);
      const int rem = static_cast<int>(r % kk);
      const int ky = rem / g.kernel;
      const int kx = rem % g.kernel;
      const T* plane = input + static_cast<std::size_t>(c) * g.in_h * g.in_w;
      T* crow = cols + static_cast<std::size_t>(r) * spatial;
      for (int y = 0; y < oh; ++y) {
        const int iy = y * g.stride - g.pad + ky;
        T* orow = crow + static_cast<std::size_t>(y) * ow;
        if (iy < 0 || iy >= g.in_h) {
          std::fill(orow, orow + ow, T{0});
          continue;
        }
        const T* irow = plane + static_cast<std::size_t>(iy) * g.in_w;
        for (int x = 0; x < ow; ++x) {
          const int ix = x * g.stride - g.pad + kx;
          orow[x] = (ix >= 0 && ix < g.in_w) ? irow[ix] : T{0};
        }
      }
    }
  });
}

/// im2col for one float image (see im2col_any).
/// Parallelism: blocks of the patch_size output rows.
void im2col(const float* input, const ConvGeometry& g, float* cols,
            const util::ExecContext& exec = {});

/// Inverse scatter-add of im2col: accumulates `cols` back into
/// `input_grad` (must be zeroed by the caller for a fresh gradient).
void col2im(const float* cols, const ConvGeometry& g, float* input_grad);

/// Row-wise softmax of a rank-2 tensor (numerically stable).
Tensor softmax_rows(const Tensor& logits);

/// log-softmax of a rank-2 tensor, row-wise.
Tensor log_softmax_rows(const Tensor& logits);

}  // namespace cq::tensor
