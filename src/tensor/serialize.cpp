#include "tensor/serialize.h"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace cq::tensor {

namespace {

constexpr char kMagic[4] = {'C', 'Q', 'T', '1'};

void write_u32(std::ofstream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t read_u32(std::ifstream& in) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error("tensor checkpoint: truncated file");
  return v;
}

}  // namespace

void save_tensors(const std::string& path, const std::map<std::string, Tensor>& tensors) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_tensors: cannot open " + path);
  out.write(kMagic, sizeof(kMagic));
  write_u32(out, static_cast<std::uint32_t>(tensors.size()));
  for (const auto& [name, t] : tensors) {
    write_u32(out, static_cast<std::uint32_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    write_u32(out, static_cast<std::uint32_t>(t.rank()));
    for (std::size_t d = 0; d < t.rank(); ++d)
      write_u32(out, static_cast<std::uint32_t>(t.dim(d)));
    out.write(reinterpret_cast<const char*>(t.data()),
              static_cast<std::streamsize>(t.numel() * sizeof(float)));
  }
  if (!out) throw std::runtime_error("save_tensors: write failed for " + path);
}

std::map<std::string, Tensor> load_tensors(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_tensors: cannot open " + path);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::string(magic, 4) != std::string(kMagic, 4)) {
    throw std::runtime_error("load_tensors: bad magic in " + path);
  }
  const std::uint32_t count = read_u32(in);
  std::map<std::string, Tensor> tensors;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t name_len = read_u32(in);
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    const std::uint32_t rank = read_u32(in);
    Shape shape(rank);
    for (auto& d : shape) d = static_cast<int>(read_u32(in));
    Tensor t(shape);
    in.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(t.numel() * sizeof(float)));
    if (!in) throw std::runtime_error("load_tensors: truncated data in " + path);
    tensors.emplace(std::move(name), std::move(t));
  }
  return tensors;
}

}  // namespace cq::tensor
