#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "util/rng.h"

namespace cq::tensor {

/// Shape of a dense tensor; dimension sizes in row-major order.
using Shape = std::vector<int>;

/// Number of elements described by `shape` (empty shape -> 1 scalar).
std::size_t shape_numel(const Shape& shape);

/// Human-readable "[a, b, c]" form for diagnostics.
std::string shape_to_string(const Shape& shape);

/// Dense float32 tensor with contiguous row-major storage.
///
/// This is the only numeric container in the library. Convolutional
/// activations use NCHW layout; weight tensors use [out, in, kh, kw].
/// The class has value semantics (copy = deep copy) and never
/// allocates behind the caller's back once constructed.
class Tensor {
 public:
  /// Empty scalar-less tensor (numel() == 0).
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor wrapping a copy of `values`; size must equal shape_numel.
  Tensor(Shape shape, std::vector<float> values);

  static Tensor zeros(Shape shape);
  static Tensor ones(Shape shape);
  static Tensor full(Shape shape, float value);
  /// I.i.d. normal entries with the given stddev.
  static Tensor randn(Shape shape, util::Rng& rng, float stddev = 1.0f);
  /// I.i.d. uniform entries in [lo, hi).
  static Tensor rand_uniform(Shape shape, util::Rng& rng, float lo, float hi);

  const Shape& shape() const { return shape_; }
  int dim(std::size_t axis) const { return shape_[axis]; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t numel() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> span() { return {data_.data(), data_.size()}; }
  std::span<const float> span() const { return {data_.data(), data_.size()}; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// 2-D indexed access; requires rank() == 2.
  float& at(int r, int c);
  float at(int r, int c) const;
  /// 4-D indexed access; requires rank() == 4 (NCHW).
  float& at(int n, int c, int h, int w);
  float at(int n, int c, int h, int w) const;

  /// Returns a tensor sharing no storage with this one but holding the
  /// same data under a new shape. numel must match.
  Tensor reshape(Shape new_shape) const;

  /// Sets every element to `value`.
  void fill(float value);

  /// In-place elementwise operations; shapes must match exactly.
  Tensor& operator+=(const Tensor& rhs);
  Tensor& operator-=(const Tensor& rhs);
  Tensor& operator*=(float scalar);

  /// Sum of all elements (double accumulator).
  double sum() const;
  /// Mean of all elements; 0 for empty tensors.
  double mean() const;
  /// Maximum absolute value; 0 for empty tensors.
  float abs_max() const;

  /// Row `r` of a rank-2 tensor as a span of length dim(1).
  std::span<float> row(int r);
  std::span<const float> row(int r) const;

  /// Index of the maximum element in row `r` (rank-2).
  int argmax_row(int r) const;

  /// True when shapes are equal and elements differ by at most `tol`.
  bool allclose(const Tensor& other, float tol = 1e-5f) const;

 private:
  Shape shape_;
  std::vector<float> data_;
};

/// Elementwise out-of-place helpers; shapes must match.
Tensor operator+(const Tensor& a, const Tensor& b);
Tensor operator-(const Tensor& a, const Tensor& b);
Tensor operator*(const Tensor& a, float scalar);

}  // namespace cq::tensor
