#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace cq::quant {

/// Interface implemented by weight layers whose filters/neurons can be
/// quantized to individual bit-widths (Conv2d output channels, Linear
/// output neurons). This is the hook the CQ search drives.
class QuantizableLayer {
 public:
  virtual ~QuantizableLayer() = default;

  /// Number of filters (conv output channels) or neurons (FC rows).
  virtual int num_filters() const = 0;

  /// Weights owned by one filter/neuron (used for the average
  /// bit-width statistic of Section IV: sum(b_i)/N over weights).
  virtual std::size_t weights_per_filter() const = 0;

  /// Assigns per-filter bit-widths; size must equal num_filters().
  /// 0 bits prunes the filter (weights and bias forced to zero).
  virtual void set_filter_bits(std::vector<int> bits) = 0;

  /// Restores full-precision behaviour (no fake quantization).
  virtual void clear_filter_bits() = 0;

  /// Current per-filter bits; empty when running full precision.
  virtual const std::vector<int>& filter_bits() const = 0;

  /// Read-only view of the master weights of filter `k` (used by
  /// magnitude-based allocation baselines and diagnostics).
  virtual std::span<const float> filter_weights(int k) const = 0;

  /// Mutable view of the master weights of filter `k`. The deployment
  /// loader writes decoded quantizer codes back through this view.
  virtual std::span<float> mutable_filter_weights(int k) = 0;

  /// max|w| over the layer — the symmetric clip bound of Eq. (1).
  virtual float weight_abs_max() const = 0;

  /// Freezes the symmetric clip bound at `hi` (> 0) instead of
  /// recomputing max|w| on every forward. Needed for bit-exact
  /// artifact round-trips: once pruned filters are zeroed, max|w| of
  /// the decoded weights can shrink below the range the codes were
  /// produced with. hi <= 0 restores the dynamic per-forward range.
  virtual void set_weight_range_override(float hi) = 0;
  virtual float weight_range_override() const = 0;

  /// Low-precision accumulator simulation hook (WrapNet baseline);
  /// layers that do not support it ignore the call.
  virtual void set_accumulator_wrap(float period) { (void)period; }
};

/// Per-layer slice of a bit-width arrangement.
struct LayerBits {
  std::string layer_name;
  std::vector<int> filter_bits;        ///< bits per filter/neuron
  std::size_t weights_per_filter = 0;  ///< weight count each filter owns
};

/// A complete bit-width arrangement over the quantizable layers of a
/// model — the object the threshold search produces (Section III-C)
/// and Figure 6/7 visualize.
class BitArrangement {
 public:
  void add_layer(LayerBits layer) { layers_.push_back(std::move(layer)); }

  const std::vector<LayerBits>& layers() const { return layers_; }
  std::vector<LayerBits>& layers() { return layers_; }

  /// Weighted average bit-width: sum over weights of their bit-width
  /// divided by the total number of (quantizable) weights. Matches the
  /// paper's definition, which excludes the first and output layers
  /// simply because they never appear in the arrangement.
  double average_bits() const;

  /// Total quantizable weights described by the arrangement.
  std::size_t total_weights() const;

  /// Number of weights assigned exactly `bits` bits (Figure 7 rows).
  std::size_t weights_with_bits(int bits) const;

  /// Number of filters assigned exactly `bits` bits.
  std::size_t filters_with_bits(int bits) const;

  /// Largest bit-width present (0 for an empty arrangement).
  int max_bits() const;

  /// Weight-storage cost of the arrangement in bits. Pruned (0-bit)
  /// filters cost `pruned_bits` per weight (default 0: dense formats
  /// that skip pruned filters entirely; use 1 to model a keep-mask).
  double storage_bits(int pruned_bits = 0) const;
  double storage_bytes(int pruned_bits = 0) const {
    return storage_bits(pruned_bits) / 8.0;
  }

 private:
  std::vector<LayerBits> layers_;
};

}  // namespace cq::quant
