#pragma once

#include <cstdint>

namespace cq::quant {

/// Reduces `v` into the value a signed two's-complement accumulator of
/// `bits` bits would hold after overflow wrap-around. Because modular
/// arithmetic commutes with addition, wrapping the final sum once is
/// bit-identical to wrapping after every MAC — which is what low-
/// precision accumulator hardware (the WrapNet setting) does.
/// bits <= 0 or bits >= 64 disables wrapping.
std::int64_t wrap_accumulator(std::int64_t v, int bits);

/// Integer GEMM C[M,N] = wrap(A[M,K] * B[K,N]) with an `acc_bits`-bit
/// signed accumulator. Inputs are integer codes (e.g. centered
/// quantizer codes); output is the wrapped integer partial sum, to be
/// rescaled by the caller. This is the arithmetic core of the WrapNet
/// baseline's low-precision-accumulator inference.
void integer_gemm(const std::int32_t* a, const std::int32_t* b, std::int64_t* c, int m,
                  int k, int n, int acc_bits);

}  // namespace cq::quant
