#include "quant/integer_gemm.h"

#include <cstring>

namespace cq::quant {

std::int64_t wrap_accumulator(std::int64_t v, int bits) {
  if (bits <= 0 || bits >= 64) return v;
  const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
  std::uint64_t u = static_cast<std::uint64_t>(v) & mask;
  // Sign-extend bit (bits-1).
  const std::uint64_t sign_bit = std::uint64_t{1} << (bits - 1);
  if (u & sign_bit) u |= ~mask;
  return static_cast<std::int64_t>(u);
}

void integer_gemm(const std::int32_t* a, const std::int32_t* b, std::int64_t* c, int m,
                  int k, int n, int acc_bits) {
  std::memset(c, 0, sizeof(std::int64_t) * static_cast<std::size_t>(m) * n);
  for (int i = 0; i < m; ++i) {
    const std::int32_t* arow = a + static_cast<std::size_t>(i) * k;
    std::int64_t* crow = c + static_cast<std::size_t>(i) * n;
    for (int p = 0; p < k; ++p) {
      const std::int64_t av = arow[p];
      if (av == 0) continue;
      const std::int32_t* brow = b + static_cast<std::size_t>(p) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
    if (acc_bits > 0) {
      for (int j = 0; j < n; ++j) crow[j] = wrap_accumulator(crow[j], acc_bits);
    }
  }
}

}  // namespace cq::quant
