#pragma once

#include <span>

namespace cq::quant {

/// Clipping range [lo, hi] of a uniform quantizer (Eq. 1 of the paper).
/// Weights use a symmetric range (lo = -hi, hi = max|w| of the layer);
/// ReLU activations use lo = 0 and a calibrated hi.
struct UniformRange {
  float lo = 0.0f;
  float hi = 0.0f;

  bool valid() const { return hi > lo; }
};

/// Number of representable levels for `bits` (2^bits); bits <= 0 -> 1
/// level, i.e. everything quantizes to the lower clip bound (pruned
/// weights map to 0 via a symmetric range).
int levels_for_bits(int bits);

/// Applies Eq. (1)-(3): clip x to [r.lo, r.hi], normalize, round to
/// levels_for_bits(bits) levels, rescale. bits == 0 returns 0
/// (the paper's "0-bit means pruned" convention).
float quantize_one(float x, UniformRange r, int bits);

/// Vectorized quantize_one over a span; dst may alias src.
void quantize_span(std::span<const float> src, std::span<float> dst, UniformRange r,
                   int bits);

/// Symmetric weight range of Eq. (1): [-max|w|, max|w|] over `weights`.
/// An all-zero span yields an invalid (degenerate) range; callers treat
/// that layer as already pruned.
UniformRange symmetric_range(std::span<const float> weights);

/// Integer code of x under the quantizer (0 .. levels-1); used by the
/// integer inference engine. bits must be >= 1.
int encode(float x, UniformRange r, int bits);

/// Real value of integer code `q` (inverse of encode).
float decode(int q, UniformRange r, int bits);

/// Worst-case quantization error (half of one quantization interval).
float max_quantization_error(UniformRange r, int bits);

}  // namespace cq::quant
