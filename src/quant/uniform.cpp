#include "quant/uniform.h"

#include <algorithm>
#include <cmath>

namespace cq::quant {

int levels_for_bits(int bits) {
  if (bits <= 0) return 1;
  return 1 << bits;
}

namespace {

// Shared kernel of Eq. (1)-(3) so the scalar and span entry points are
// bit-identical: clip, normalize by `scale`, round, rescale.
inline float quantize_with_scales(float x, UniformRange r, float scale, float inv_scale) {
  const float xc = std::clamp(x, r.lo, r.hi);          // Eq. (1)
  const float q = std::round((xc - r.lo) * scale);     // Eq. (2)
  return q * inv_scale + r.lo;                         // Eq. (3)
}

}  // namespace

float quantize_one(float x, UniformRange r, int bits) {
  if (bits <= 0 || !r.valid()) return 0.0f;
  const int n = levels_for_bits(bits);
  const float scale = static_cast<float>(n - 1) / (r.hi - r.lo);
  const float inv_scale = (r.hi - r.lo) / static_cast<float>(n - 1);
  return quantize_with_scales(x, r, scale, inv_scale);
}

void quantize_span(std::span<const float> src, std::span<float> dst, UniformRange r,
                   int bits) {
  if (bits <= 0 || !r.valid()) {
    std::fill(dst.begin(), dst.end(), 0.0f);
    return;
  }
  const int n = levels_for_bits(bits);
  const float scale = static_cast<float>(n - 1) / (r.hi - r.lo);
  const float inv_scale = (r.hi - r.lo) / static_cast<float>(n - 1);
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = quantize_with_scales(src[i], r, scale, inv_scale);
  }
}

UniformRange symmetric_range(std::span<const float> weights) {
  float m = 0.0f;
  for (const float w : weights) m = std::max(m, std::fabs(w));
  return UniformRange{-m, m};
}

// encode/decode deliberately repeat the exact float operations of
// quantize_with_scales so that decode(encode(x)) == quantize_one(x)
// bit-for-bit — the property the deployment artifact round-trip test
// asserts. Do not "simplify" the arithmetic.
int encode(float x, UniformRange r, int bits) {
  const int n = levels_for_bits(bits);
  const float scale = static_cast<float>(n - 1) / (r.hi - r.lo);
  const float xc = std::clamp(x, r.lo, r.hi);
  return static_cast<int>(std::round((xc - r.lo) * scale));
}

float decode(int q, UniformRange r, int bits) {
  const int n = levels_for_bits(bits);
  const float inv_scale = (r.hi - r.lo) / static_cast<float>(n - 1);
  return static_cast<float>(q) * inv_scale + r.lo;
}

float max_quantization_error(UniformRange r, int bits) {
  if (!r.valid()) return 0.0f;
  if (bits <= 0) return std::max(std::fabs(r.lo), std::fabs(r.hi));
  return 0.5f * (r.hi - r.lo) / static_cast<float>(levels_for_bits(bits) - 1);
}

}  // namespace cq::quant
