#include "quant/bitwidth.h"

#include <algorithm>

namespace cq::quant {

double BitArrangement::average_bits() const {
  double bit_weight_sum = 0.0;
  double weight_count = 0.0;
  for (const auto& layer : layers_) {
    for (const int b : layer.filter_bits) {
      bit_weight_sum += static_cast<double>(b) * static_cast<double>(layer.weights_per_filter);
      weight_count += static_cast<double>(layer.weights_per_filter);
    }
  }
  return weight_count == 0.0 ? 0.0 : bit_weight_sum / weight_count;
}

std::size_t BitArrangement::total_weights() const {
  std::size_t n = 0;
  for (const auto& layer : layers_) n += layer.filter_bits.size() * layer.weights_per_filter;
  return n;
}

std::size_t BitArrangement::weights_with_bits(int bits) const {
  std::size_t n = 0;
  for (const auto& layer : layers_) {
    for (const int b : layer.filter_bits) {
      if (b == bits) n += layer.weights_per_filter;
    }
  }
  return n;
}

std::size_t BitArrangement::filters_with_bits(int bits) const {
  std::size_t n = 0;
  for (const auto& layer : layers_) {
    n += static_cast<std::size_t>(
        std::count(layer.filter_bits.begin(), layer.filter_bits.end(), bits));
  }
  return n;
}

double BitArrangement::storage_bits(int pruned_bits) const {
  double bits = 0.0;
  for (const auto& layer : layers_) {
    for (const int b : layer.filter_bits) {
      bits += static_cast<double>(b > 0 ? b : pruned_bits) *
              static_cast<double>(layer.weights_per_filter);
    }
  }
  return bits;
}

int BitArrangement::max_bits() const {
  int m = 0;
  for (const auto& layer : layers_) {
    for (const int b : layer.filter_bits) m = std::max(m, b);
  }
  return m;
}

}  // namespace cq::quant
