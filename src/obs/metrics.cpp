#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace cq::obs {

namespace {

/// Round-robin shard assignment: each thread keeps the shard it drew
/// first, so a steady worker set spreads across all shards without
/// hashing thread ids on every increment.
std::size_t this_thread_shard() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard = next.fetch_add(1, std::memory_order_relaxed);
  return shard;
}

std::string format_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

void Counter::inc(std::uint64_t n) {
  shards_[this_thread_shard() % kShards].value.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::reset() {
  for (Shard& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

double HistogramSnapshot::percentile(double q) const {
  if (count == 0) return 0.0;
  const double clamped = std::clamp(q, 0.0, 100.0);
  // The rank convention matches util::percentile over order statistics,
  // so snapshot percentiles converge to the exact ones as buckets
  // narrow (the obs_test agreement property pins this).
  const double rank = clamped / 100.0 * static_cast<double>(count - 1);
  std::uint64_t before = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    const std::uint64_t n = buckets[b];
    if (n == 0) continue;
    if (rank < static_cast<double>(before + n)) {
      const double lo = b == 0 ? 0.0 : LatencyHistogram::bucket_upper(b - 1);
      const double hi = LatencyHistogram::bucket_upper(b);
      const double frac =
          (rank - static_cast<double>(before) + 0.5) / static_cast<double>(n);
      return std::clamp(lo + (hi - lo) * frac, min, max);
    }
    before += n;
  }
  return max;
}

LatencyHistogram::LatencyHistogram() : buckets_(kBuckets) { reset(); }

std::size_t LatencyHistogram::bucket_index(double value) {
  if (!(value >= 1.0)) return 0;  // negatives and NaN clamp to bucket 0
  int exp = 0;
  const double mantissa = std::frexp(value, &exp);  // value = mantissa * 2^exp
  // value >= 1 so exp >= 1; octave o covers [2^o, 2^(o+1)).
  std::size_t octave = static_cast<std::size_t>(exp - 1);
  if (octave >= kOctaves) return kBuckets - 1;  // off-scale values pool at the top
  // mantissa in [0.5, 1): position within the octave is 2*mantissa - 1.
  const double within = 2.0 * mantissa - 1.0;
  const auto sub = std::min<std::size_t>(
      static_cast<std::size_t>(within * static_cast<double>(kSubBuckets)),
      kSubBuckets - 1);
  return 1 + octave * kSubBuckets + sub;
}

double LatencyHistogram::bucket_upper(std::size_t index) {
  if (index == 0) return 1.0;
  const std::size_t octave = (index - 1) / kSubBuckets;
  const std::size_t sub = (index - 1) % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub + 1) / static_cast<double>(kSubBuckets),
                    static_cast<int>(octave));
}

void LatencyHistogram::record(double value) {
  const double v = value < 0.0 ? 0.0 : value;
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + v, std::memory_order_relaxed)) {
  }
  double lo = min_.load(std::memory_order_relaxed);
  while (v < lo && !min_.compare_exchange_weak(lo, v, std::memory_order_relaxed)) {
  }
  double hi = max_.load(std::memory_order_relaxed);
  while (v > hi && !max_.compare_exchange_weak(hi, v, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot LatencyHistogram::snapshot() const {
  HistogramSnapshot s;
  s.buckets.resize(kBuckets);
  for (std::size_t b = 0; b < kBuckets; ++b) {
    s.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
    s.count += s.buckets[b];
  }
  s.sum = sum_.load(std::memory_order_relaxed);
  if (s.count > 0) {
    s.min = min_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
  }
  return s;
}

void LatencyHistogram::reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

Counter& Registry::counter(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& entry = counters_[name];
  if (entry.second == nullptr) {
    entry.first = help;
    entry.second = std::make_unique<Counter>();
  }
  return *entry.second;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& entry = gauges_[name];
  if (entry.second == nullptr) {
    entry.first = help;
    entry.second = std::make_unique<Gauge>();
  }
  return *entry.second;
}

LatencyHistogram& Registry::histogram(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& entry = histograms_[name];
  if (entry.second == nullptr) {
    entry.first = help;
    entry.second = std::make_unique<LatencyHistogram>();
  }
  return *entry.second;
}

std::string Registry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, entry] : counters_) {
    os << (first ? "" : ", ") << "\"" << name << "\": " << entry.second->value();
    first = false;
  }
  os << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, entry] : gauges_) {
    os << (first ? "" : ", ") << "\"" << name
       << "\": " << format_double(entry.second->value());
    first = false;
  }
  os << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, entry] : histograms_) {
    const HistogramSnapshot s = entry.second->snapshot();
    os << (first ? "" : ", ") << "\"" << name << "\": {\"count\": " << s.count
       << ", \"sum\": " << format_double(s.sum) << ", \"min\": " << format_double(s.min)
       << ", \"max\": " << format_double(s.max)
       << ", \"mean\": " << format_double(s.mean())
       << ", \"p50\": " << format_double(s.percentile(50.0))
       << ", \"p95\": " << format_double(s.percentile(95.0))
       << ", \"p99\": " << format_double(s.percentile(99.0)) << "}";
    first = false;
  }
  os << "}}";
  return os.str();
}

std::string Registry::to_prometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  for (const auto& [name, entry] : counters_) {
    if (!entry.first.empty()) os << "# HELP " << name << " " << entry.first << "\n";
    os << "# TYPE " << name << " counter\n";
    // Prometheus naming convention: counter samples carry _total.
    os << name << "_total " << entry.second->value() << "\n";
  }
  for (const auto& [name, entry] : gauges_) {
    if (!entry.first.empty()) os << "# HELP " << name << " " << entry.first << "\n";
    os << "# TYPE " << name << " gauge\n";
    os << name << " " << format_double(entry.second->value()) << "\n";
  }
  for (const auto& [name, entry] : histograms_) {
    if (!entry.first.empty()) os << "# HELP " << name << " " << entry.first << "\n";
    os << "# TYPE " << name << " histogram\n";
    const HistogramSnapshot s = entry.second->snapshot();
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < s.buckets.size(); ++b) {
      if (s.buckets[b] == 0) continue;  // elide empty buckets: pages stay small
      cumulative += s.buckets[b];
      os << name << "_bucket{le=\""
         << format_double(LatencyHistogram::bucket_upper(b)) << "\"} " << cumulative
         << "\n";
    }
    os << name << "_bucket{le=\"+Inf\"} " << s.count << "\n";
    os << name << "_sum " << format_double(s.sum) << "\n";
    os << name << "_count " << s.count << "\n";
  }
  return os.str();
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, entry] : counters_) entry.second->reset();
  for (auto& [name, entry] : gauges_) entry.second->reset();
  for (auto& [name, entry] : histograms_) entry.second->reset();
}

}  // namespace cq::obs
