#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "deploy/backend.h"
#include "deploy/plan.h"
#include "obs/trace.h"

namespace cq::obs {

/// One op of a profile report, in plan order.
struct OpProfileRow {
  int op = 0;
  std::string kind;      ///< deploy::op_kind_name
  std::string label;     ///< originating layer name ("-" for glue ops)
  std::string dispatch;  ///< backend implementation that ran it
  std::uint64_t calls = 0;
  std::uint64_t samples = 0;  ///< sum of batch sizes across calls
  double total_ms = 0.0;
  double mean_us = 0.0;       ///< per call
  std::uint64_t bytes = 0;    ///< arena bytes touched across all calls
  double share = 0.0;         ///< total_ms / report total
};

/// Aggregated row (per op kind, or per originating layer label).
struct ProfileAggregate {
  std::string key;
  std::uint64_t calls = 0;
  double total_ms = 0.0;
  std::uint64_t bytes = 0;
  double share = 0.0;
};

/// Snapshot of everything a PlanProfiler accumulated.
struct ProfileReport {
  std::vector<OpProfileRow> ops;        ///< plan order
  std::vector<ProfileAggregate> by_kind;   ///< first-seen order
  std::vector<ProfileAggregate> by_layer;  ///< plan order, labelled ops only
  double total_ms = 0.0;

  /// Machine-readable form for bench/CI artifacts:
  /// {"total_ms": .., "ops": [..], "by_kind": [..], "by_layer": [..]}.
  std::string to_json() const;
};

/// Per-op plan profiler: the TraceSink serve::EngineSession drives
/// when profiling is opted in. Recording is lock-free — one cache-line
/// padded cell of relaxed atomics per plan op — so any number of
/// interpreter contexts profile concurrently without serializing the
/// engine; report() folds the cells into per-op rows plus per-kind and
/// per-layer aggregates.
///
/// The profiler binds the plan (and optionally the prepared backend,
/// for the dispatch column) at construction; both must outlive it.
class PlanProfiler : public TraceSink {
 public:
  explicit PlanProfiler(const deploy::ExecutionPlan& plan,
                        const deploy::Backend* backend = nullptr);

  void on_op(const OpEvent& event) override;

  ProfileReport report() const;
  void reset();

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> calls{0};
    std::atomic<std::uint64_t> samples{0};
    std::atomic<std::uint64_t> ns{0};
  };

  const deploy::ExecutionPlan& plan_;
  std::vector<Cell> cells_;              ///< one per plan op
  std::vector<std::string> dispatch_;    ///< backend impl per op
  std::vector<std::uint64_t> op_bytes_;  ///< arena bytes per sample per op
};

}  // namespace cq::obs
