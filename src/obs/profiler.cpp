#include "obs/profiler.h"

#include <cstdio>
#include <map>
#include <sstream>

#include "util/logging.h"

namespace cq::obs {

namespace {

std::string format_ms(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", ms);
  return buf;
}

void append_aggregate(std::ostringstream& os, const std::vector<ProfileAggregate>& rows) {
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ProfileAggregate& a = rows[i];
    os << (i == 0 ? "" : ", ") << "{\"key\": \"" << a.key << "\", \"calls\": " << a.calls
       << ", \"total_ms\": " << format_ms(a.total_ms) << ", \"bytes\": " << a.bytes
       << ", \"share\": " << format_ms(a.share) << "}";
  }
}

/// Folds rows into aggregates keyed by `key`, preserving first-seen
/// order so conv stacks read top-to-bottom like the plan listing.
template <typename Key>
std::vector<ProfileAggregate> aggregate(const std::vector<OpProfileRow>& rows,
                                        double total_ms, Key key) {
  std::vector<ProfileAggregate> out;
  std::map<std::string, std::size_t> index;
  for (const OpProfileRow& row : rows) {
    const std::string k = key(row);
    if (k.empty()) continue;
    auto [it, inserted] = index.emplace(k, out.size());
    if (inserted) {
      out.push_back({});
      out.back().key = k;
    }
    ProfileAggregate& a = out[it->second];
    a.calls += row.calls;
    a.total_ms += row.total_ms;
    a.bytes += row.bytes;
  }
  for (ProfileAggregate& a : out) {
    a.share = total_ms > 0.0 ? a.total_ms / total_ms : 0.0;
  }
  return out;
}

}  // namespace

PlanProfiler::PlanProfiler(const deploy::ExecutionPlan& plan,
                           const deploy::Backend* backend)
    : plan_(plan), cells_(plan.ops().size()) {
  dispatch_.reserve(plan.ops().size());
  op_bytes_.reserve(plan.ops().size());
  for (const deploy::PlanOp& op : plan.ops()) {
    dispatch_.emplace_back(backend != nullptr ? backend->dispatch(op) : "-");
    op_bytes_.push_back(deploy::op_arena_bytes(op, plan));
  }
}

void PlanProfiler::on_op(const OpEvent& event) {
  if (event.op < 0 || static_cast<std::size_t>(event.op) >= cells_.size()) return;
  Cell& cell = cells_[static_cast<std::size_t>(event.op)];
  cell.calls.fetch_add(1, std::memory_order_relaxed);
  cell.samples.fetch_add(static_cast<std::uint64_t>(event.batch),
                         std::memory_order_relaxed);
  cell.ns.fetch_add(static_cast<std::uint64_t>(event.ns), std::memory_order_relaxed);
}

ProfileReport PlanProfiler::report() const {
  ProfileReport report;
  report.ops.reserve(cells_.size());
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const deploy::PlanOp& op = plan_.ops()[i];
    OpProfileRow row;
    row.op = static_cast<int>(i);
    row.kind = deploy::op_kind_name(op.kind);
    row.label = op.label.empty() ? "-" : op.label;
    row.dispatch = dispatch_[i];
    row.calls = cells_[i].calls.load(std::memory_order_relaxed);
    row.samples = cells_[i].samples.load(std::memory_order_relaxed);
    const auto ns = cells_[i].ns.load(std::memory_order_relaxed);
    row.total_ms = static_cast<double>(ns) / 1e6;
    row.mean_us =
        row.calls == 0 ? 0.0 : static_cast<double>(ns) / 1e3 / static_cast<double>(row.calls);
    row.bytes = op_bytes_[i] * row.samples;
    report.total_ms += row.total_ms;
    report.ops.push_back(std::move(row));
  }
  for (OpProfileRow& row : report.ops) {
    row.share = report.total_ms > 0.0 ? row.total_ms / report.total_ms : 0.0;
  }
  report.by_kind =
      aggregate(report.ops, report.total_ms, [](const OpProfileRow& r) { return r.kind; });
  report.by_layer = aggregate(report.ops, report.total_ms, [](const OpProfileRow& r) {
    return r.label == "-" ? std::string() : r.label;
  });
  util::log_debug() << "obs: profile report over " << report.ops.size() << " ops, "
                    << report.total_ms << " ms attributed";
  return report;
}

void PlanProfiler::reset() {
  for (Cell& cell : cells_) {
    cell.calls.store(0, std::memory_order_relaxed);
    cell.samples.store(0, std::memory_order_relaxed);
    cell.ns.store(0, std::memory_order_relaxed);
  }
}

std::string ProfileReport::to_json() const {
  std::ostringstream os;
  os << "{\"total_ms\": " << format_ms(total_ms) << ", \"ops\": [";
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const OpProfileRow& r = ops[i];
    os << (i == 0 ? "" : ", ") << "{\"op\": " << r.op << ", \"kind\": \"" << r.kind
       << "\", \"label\": \"" << r.label << "\", \"dispatch\": \"" << r.dispatch
       << "\", \"calls\": " << r.calls << ", \"samples\": " << r.samples
       << ", \"total_ms\": " << format_ms(r.total_ms)
       << ", \"mean_us\": " << format_ms(r.mean_us) << ", \"bytes\": " << r.bytes
       << ", \"share\": " << format_ms(r.share) << "}";
  }
  os << "], \"by_kind\": [";
  append_aggregate(os, by_kind);
  os << "], \"by_layer\": [";
  append_aggregate(os, by_layer);
  os << "]}";
  return os.str();
}

}  // namespace cq::obs
