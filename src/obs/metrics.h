#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace cq::obs {

/// Monotone event counter, sharded over cache lines so concurrent
/// writers from many serving threads do not bounce one line. inc() is
/// a relaxed atomic add on the caller's shard; value() sums the shards
/// (reads are rare — exports and stats snapshots).
class Counter {
 public:
  void inc(std::uint64_t n = 1);
  std::uint64_t value() const;
  /// Zeroes every shard. Not linearizable against concurrent inc():
  /// an increment racing the reset lands in either the old or the new
  /// window, never both and never negative. Callers that need a crisp
  /// window boundary (serve::Server) serialize reset against recording.
  void reset();

 private:
  static constexpr std::size_t kShards = 8;
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Shard, kShards> shards_;
};

/// Last-write-wins instantaneous value (queue depth, bytes resident).
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// One consistent read of a histogram: total count/sum plus the exact
/// min/max seen and the per-bucket counts. Percentiles interpolate
/// inside the hit bucket and are clamped into [min, max], so a
/// single-element sample reports that element exactly and the relative
/// error is bounded by the bucket width (kSubBuckets linear
/// subdivisions per octave: <= 1/kSubBuckets ~ 3.1%).
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::vector<std::uint64_t> buckets;  ///< LatencyHistogram bucket counts

  double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
  /// q in [0, 100]; 0 for an empty snapshot.
  double percentile(double q) const;
};

/// Log-bucketed latency histogram: fixed memory, lock-free recording,
/// percentiles over *all* recorded values since the last reset —
/// replacing sliding-window percentile math that silently forgets
/// old samples under sustained traffic.
///
/// Bucketing: values below 1.0 share bucket 0; above, each power-of-two
/// octave is split into kSubBuckets equal-width buckets, so the bucket
/// that holds a value is at most ~3.1% wide relative to the value.
/// Units are the caller's (the serving stack records microseconds).
class LatencyHistogram {
 public:
  LatencyHistogram();

  /// Records one value (negatives clamp to 0). Lock-free: one relaxed
  /// bucket increment, a relaxed add to the sum, and min/max CAS loops
  /// that almost always exit on the first load.
  void record(double value);

  HistogramSnapshot snapshot() const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// See Counter::reset on window semantics under concurrency.
  void reset();

  /// Inclusive upper edge of bucket `index` (the value a cumulative
  /// Prometheus `le` label reports).
  static double bucket_upper(std::size_t index);
  static std::size_t bucket_index(double value);

  static constexpr std::size_t kSubBuckets = 32;  ///< buckets per octave
  static constexpr std::size_t kOctaves = 40;     ///< ~1.1e12 max distinct value
  static constexpr std::size_t kBuckets = 1 + kOctaves * kSubBuckets;

 private:
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// Named home of a process/server's metrics, exportable as one JSON
/// object or a Prometheus text page. Registration returns stable
/// references (instruments never move once created); it takes a lock
/// and is meant for setup time, while the returned instruments are the
/// lock-free hot-path handles.
class Registry {
 public:
  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  LatencyHistogram& histogram(const std::string& name, const std::string& help = "");

  /// {"counters": {...}, "gauges": {...}, "histograms": {name:
  /// {count, sum, min, max, mean, p50, p95, p99}}} — one flat object
  /// per export so bench JSON can embed it verbatim.
  std::string to_json() const;

  /// Prometheus text exposition: counters as `name_total`, gauges
  /// bare, histograms as cumulative `name_bucket{le="..."}` (empty
  /// buckets elided) plus `_sum`/`_count`.
  std::string to_prometheus() const;

  /// Resets every registered instrument (see Counter::reset).
  void reset();

 private:
  mutable std::mutex mutex_;  ///< guards the maps, not the instruments
  std::map<std::string, std::pair<std::string, std::unique_ptr<Counter>>> counters_;
  std::map<std::string, std::pair<std::string, std::unique_ptr<Gauge>>> gauges_;
  std::map<std::string, std::pair<std::string, std::unique_ptr<LatencyHistogram>>>
      histograms_;
};

}  // namespace cq::obs
