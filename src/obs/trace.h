#pragma once

#include <chrono>
#include <cstdint>

namespace cq::obs {

/// One interpreted plan op, as timed by serve::EngineSession's
/// dispatch loop. Deliberately minimal — an op index, the batch it ran
/// over, and wall time — so the hot path pays two clock reads and one
/// virtual call per op when tracing is on and *nothing* when it is off;
/// sinks that want op metadata (kind, label, bytes, backend dispatch)
/// bind the ExecutionPlan themselves (see PlanProfiler).
struct OpEvent {
  int op = 0;       ///< index into ExecutionPlan::ops()
  int batch = 1;    ///< samples this execution covered
  double ns = 0.0;  ///< wall time of the op, nanoseconds
};

/// Receiver of per-op interpreter events. Implementations must be
/// thread-safe: a session serves any number of concurrent contexts and
/// they all report into the same sink.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_op(const OpEvent& event) = 0;
};

/// Lifecycle timeline of one served request: submit -> queue ->
/// batch-form -> execute -> complete, plus which worker ran it and how
/// big the coalesced batch was. All timestamps come from one
/// steady_clock, so differences are exact durations:
///   queue-wait = popped - submit, execute = exec_end - exec_begin.
struct RequestSpan {
  std::uint64_t id = 0;  ///< submit order, unique per server
  std::chrono::steady_clock::time_point submit;      ///< Server::submit entry
  std::chrono::steady_clock::time_point popped;      ///< left the scheduler queue
  std::chrono::steady_clock::time_point exec_begin;  ///< batch coalesced, engine entered
  std::chrono::steady_clock::time_point exec_end;    ///< engine returned
  std::chrono::steady_clock::time_point done;        ///< promise fulfilled
  int batch = 1;   ///< size of the micro-batch this request rode in
  int worker = 0;  ///< server worker that executed the batch
};

/// Receiver of completed request spans (one call per request, after
/// its promise is fulfilled). Must be thread-safe across workers.
class SpanSink {
 public:
  virtual ~SpanSink() = default;
  virtual void on_span(const RequestSpan& span) = 0;
};

}  // namespace cq::obs
