#include "obs/chrome_trace.h"

#include <cstdio>
#include <utility>

#include "util/logging.h"

namespace cq::obs {

ChromeTraceWriter::ChromeTraceWriter() : origin_(std::chrono::steady_clock::now()) {}

double ChromeTraceWriter::to_us(std::chrono::steady_clock::time_point tp) const {
  return std::chrono::duration<double, std::micro>(tp - origin_).count();
}

void ChromeTraceWriter::add(ChromeTraceEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

void ChromeTraceWriter::on_span(const RequestSpan& span) {
  ChromeTraceEvent queue;
  queue.name = "queue";
  queue.category = "serve";
  queue.ts_us = to_us(span.submit);
  queue.dur_us = std::chrono::duration<double, std::micro>(span.popped - span.submit)
                     .count();
  queue.pid = 1;
  queue.tid = static_cast<std::int64_t>(span.id);

  ChromeTraceEvent execute;
  execute.name = "execute";
  execute.category = "serve";
  execute.ts_us = to_us(span.exec_begin);
  execute.dur_us =
      std::chrono::duration<double, std::micro>(span.exec_end - span.exec_begin).count();
  execute.pid = 1;
  execute.tid = static_cast<std::int64_t>(span.id);
  execute.args_json = "{\"batch\": " + std::to_string(span.batch) +
                      ", \"worker\": " + std::to_string(span.worker) + "}";

  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(queue));
  events_.push_back(std::move(execute));
}

std::size_t ChromeTraceWriter::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

bool ChromeTraceWriter::write(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    util::log_error() << "obs: cannot write chrome trace to " << path;
    return false;
  }
  std::fprintf(f, "{\"traceEvents\": [\n");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < events_.size(); ++i) {
      const ChromeTraceEvent& e = events_[i];
      std::fprintf(f,
                   "  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
                   "\"ts\": %.3f, \"dur\": %.3f, \"pid\": %d, \"tid\": %lld",
                   e.name.c_str(), e.category.c_str(), e.ts_us, e.dur_us, e.pid,
                   static_cast<long long>(e.tid));
      if (!e.args_json.empty()) {
        std::fprintf(f, ", \"args\": %s", e.args_json.c_str());
      }
      std::fprintf(f, "}%s\n", i + 1 == events_.size() ? "" : ",");
    }
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
  util::log_debug() << "obs: wrote chrome trace (" << size() << " events) to " << path;
  return true;
}

}  // namespace cq::obs
