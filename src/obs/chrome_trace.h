#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace cq::obs {

/// One Chrome trace event (the `chrome://tracing` / Perfetto JSON
/// format): a complete "X" span with microsecond timestamps relative
/// to the writer's origin.
struct ChromeTraceEvent {
  std::string name;
  std::string category;
  double ts_us = 0.0;   ///< span start, us since writer origin
  double dur_us = 0.0;  ///< span duration, us
  int pid = 0;
  std::int64_t tid = 0;
  std::string args_json;  ///< raw JSON object for "args" ("" for none)
};

/// Collects spans and dumps them as a Chrome-trace JSON file that
/// loads directly in chrome://tracing or ui.perfetto.dev.
///
/// As a SpanSink it renders each served request as two spans on the
/// request's own timeline row (pid 1 "requests", tid = request id):
/// "queue" (submit -> popped) and "execute" (exec_begin -> exec_end,
/// with batch size and worker in args), making queue-wait vs execute
/// visually obvious per request. add() accepts arbitrary extra events.
/// Thread-safe; recording appends under a mutex (tracing is a
/// debugging mode, not the steady-state hot path).
class ChromeTraceWriter : public SpanSink {
 public:
  ChromeTraceWriter();

  void add(ChromeTraceEvent event);
  void on_span(const RequestSpan& span) override;

  /// Microseconds of `tp` relative to the writer's construction.
  double to_us(std::chrono::steady_clock::time_point tp) const;

  std::size_t size() const;

  /// Writes {"traceEvents": [...]} to `path`; false (with an error log
  /// line) when the file cannot be written.
  bool write(const std::string& path) const;

 private:
  std::chrono::steady_clock::time_point origin_;
  mutable std::mutex mutex_;
  std::vector<ChromeTraceEvent> events_;
};

}  // namespace cq::obs
