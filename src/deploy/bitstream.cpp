#include "deploy/bitstream.h"

#include <stdexcept>

namespace cq::deploy {

void BitWriter::append(std::uint32_t code, int bits) {
  if (bits < 0 || bits > 32) {
    throw std::invalid_argument("BitWriter::append: bits out of [0,32]");
  }
  if (bits < 32 && (code >> bits) != 0) {
    throw std::invalid_argument("BitWriter::append: code does not fit in bits");
  }
  for (int i = 0; i < bits; ++i) {
    const std::size_t byte = bit_count_ / 8;
    const int offset = static_cast<int>(bit_count_ % 8);
    if (byte == bytes_.size()) bytes_.push_back(0);
    if ((code >> i) & 1u) {
      bytes_[byte] = static_cast<std::uint8_t>(bytes_[byte] | (1u << offset));
    }
    ++bit_count_;
  }
}

void BitWriter::align_to_byte() { bit_count_ = (bit_count_ + 7) / 8 * 8; }

std::vector<std::uint8_t> BitWriter::take() && { return std::move(bytes_); }

std::uint32_t BitReader::read(int bits) {
  if (bits < 0 || bits > 32) {
    throw std::invalid_argument("BitReader::read: bits out of [0,32]");
  }
  if (bits == 0) return 0;
  if (exhausted(bits)) {
    throw std::out_of_range("BitReader::read: past end of stream");
  }
  std::uint32_t code = 0;
  for (int i = 0; i < bits; ++i) {
    const std::size_t byte = pos_ / 8;
    const int offset = static_cast<int>(pos_ % 8);
    if ((bytes_[byte] >> offset) & 1u) code |= (1u << i);
    ++pos_;
  }
  return code;
}

void BitReader::align_to_byte() { pos_ = (pos_ + 7) / 8 * 8; }

}  // namespace cq::deploy
