#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace cq::deploy {

/// Append-only writer of variable-width integer codes into a byte
/// stream, LSB-first within each byte. This is the storage codec of
/// the deployment artifact: filters quantized to k bits store each
/// weight as a k-bit code, so a 2.0-average-bit model really occupies
/// ~2 bits per weight on disk.
///
/// Codes of width 0 are legal no-ops (pruned filters contribute no
/// payload), matching the paper's "0-bit means pruned" convention.
class BitWriter {
 public:
  /// Appends the low `bits` bits of `code`. Requires 0 <= bits <= 32
  /// and code < 2^bits.
  void append(std::uint32_t code, int bits);

  /// Pads the current partial byte with zero bits (stream-level
  /// alignment between layers so each layer's payload is byte-addressable).
  void align_to_byte();

  /// Total bits appended so far (excluding alignment padding still
  /// pending in the partial byte).
  std::size_t bit_count() const { return bit_count_; }

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() &&;

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t bit_count_ = 0;  ///< bits appended (bytes_ holds ceil/8)
};

/// Sequential reader of codes written by BitWriter.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  /// Reads the next `bits`-bit code; returns 0 for bits == 0 without
  /// consuming anything. Throws std::out_of_range past the end.
  std::uint32_t read(int bits);

  /// Skips to the next byte boundary (inverse of align_to_byte).
  void align_to_byte();

  /// Bits consumed so far.
  std::size_t position() const { return pos_; }

  /// True when fewer than `bits` bits remain.
  bool exhausted(int bits = 1) const { return pos_ + static_cast<std::size_t>(bits) > bytes_.size() * 8; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;  ///< bit cursor
};

}  // namespace cq::deploy
