// Cache-blocked integer backend.
//
// The scalar conv kernel streams the whole im2col matrix (patch x
// spatial int32, often megabytes) through the cache once per output
// filter. The blocked kernels instead broadcast each code row across a
// panel of kFilterTile filters and block the output positions so the
// int64 accumulator tile stays L1-resident: code-matrix traffic drops
// by the tile width. Weight codes are packed once at prepare() time
// into int16 panels — 2-4-bit rows contiguous per tile, half the
// footprint of the scalar int32 layout — and the per-filter rescale
// state rides along so pruned filters cost nothing in the hot loop.
//
// Integer accumulation is exact, so any retiling produces the same
// int64 sums; the final float rescale uses the scalar kernel's exact
// expressions, making every output byte-identical to ScalarBackend
// (backend_test's property suite and the CI sanitizer lanes pin this).

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "deploy/backend.h"
#include "deploy/overflow.h"
#include "quant/uniform.h"
#include "tensor/ops.h"

namespace cq::deploy {
namespace blocked {

PackedCodes pack_codes(const IntegerLayer& layer) {
  PackedCodes packed;
  packed.num_filters = layer.num_filters;
  packed.weights_per_filter = layer.weights_per_filter;
  for (const std::uint8_t b : layer.filter_bits) {
    // Centered doubled codes span [-(levels-1), levels-1]; levels-1
    // overflows int16 above 15 bits. Such layers (none in the paper's
    // 0-8-bit regime) stay on the scalar kernels.
    if (b > 15) return packed;
  }
  packed.usable = true;
  // The shared overflow-bound helper (deploy/overflow.h) scans the
  // same codes the packing loop below narrows, so the int32 fast-path
  // decision here and verify_plan's certification cannot diverge.
  packed.max_abs_weight = max_abs_centered_code(layer);

  const std::size_t filters = static_cast<std::size_t>(layer.num_filters);
  const std::size_t patch = static_cast<std::size_t>(layer.weights_per_filter);
  const std::size_t tiles = (filters + kFilterTile - 1) / kFilterTile;
  // Tail lanes of the last panel stay zero: the inner loops may sweep
  // a full tile and the extra lanes accumulate exact zeros.
  packed.panels.assign(tiles * patch * kFilterTile, 0);
  packed.weight_scales.resize(filters);
  packed.out_bias.resize(filters);
  for (std::size_t k = 0; k < filters; ++k) {
    const int b = layer.filter_bits[k];
    packed.weight_scales[k] = layer.weight_scale(static_cast<int>(k));  // 0 if pruned
    packed.out_bias[k] = b == 0 ? 0.0f : layer.bias[k];
    if (b == 0) continue;  // pruned: zero panel row, zero scale/bias
    const std::int32_t offset =
        static_cast<std::int32_t>(quant::levels_for_bits(b)) - 1;
    const std::int32_t* row = layer.codes.data() + k * patch;
    std::int16_t* panel =
        packed.panels.data() + (k / kFilterTile) * patch * kFilterTile;
    const std::size_t lane = k % kFilterTile;
    for (std::size_t j = 0; j < patch; ++j) {
      const std::int32_t centered = 2 * row[j] - offset;
      panel[j * kFilterTile + lane] = static_cast<std::int16_t>(centered);
    }
  }
  return packed;
}

namespace {

void check_packed(const PackedCodes& packed, const char* kernel) {
  if (!packed.usable) {
    throw std::logic_error(std::string(kernel) +
                           ": layer is not packable (use the scalar kernels)");
  }
}

/// True when every possible reduction over `terms` products of packed
/// weights and `acts` codes provably fits in int32 — the shared bound
/// from deploy/overflow.h, which verify_plan certifies with the same
/// call. Integer sums below the overflow bound are exact in any width,
/// so the narrow accumulator changes nothing but speed: int32
/// multiply-accumulate vectorizes (8 lanes on AVX2) where int64 runs
/// scalar.
bool fits_int32(const PackedCodes& packed, const ActCodes& acts, std::size_t terms) {
  return int_reduction_fits_int32(packed.max_abs_weight, acts.bits,
                                  static_cast<std::int64_t>(terms));
}

/// The conv MAC stage over one image's im2col matrix, chunked over
/// filter tiles; Acc is int32 when fits_int32 proved it exact.
template <typename Acc>
void conv_mac_tiles(const PackedCodes& packed, const ActCodes& acts,
                    const std::int32_t* cols_data, std::size_t patch,
                    std::size_t spatial, float* out_n,
                    const util::ExecContext& exec) {
  const std::size_t filters = static_cast<std::size_t>(packed.num_filters);
  const std::size_t tiles = (filters + kFilterTile - 1) / kFilterTile;
  exec.parallel_for(0, static_cast<std::int64_t>(tiles),
                    [&, out_n](std::int64_t t0, std::int64_t t1) {
    Acc acc[kFilterTile][kSpatialBlock];
    for (std::int64_t t = t0; t < t1; ++t) {
      const std::size_t k0 = static_cast<std::size_t>(t) * kFilterTile;
      const int kt =
          static_cast<int>(std::min<std::size_t>(kFilterTile, filters - k0));
      const std::int16_t* panel =
          packed.panels.data() + static_cast<std::size_t>(t) * patch * kFilterTile;
      for (std::size_t s0 = 0; s0 < spatial; s0 += kSpatialBlock) {
        const std::size_t sb = std::min<std::size_t>(kSpatialBlock, spatial - s0);
        for (int f = 0; f < kt; ++f) {
          std::memset(acc[f], 0, sb * sizeof(Acc));
        }
        // Each code row slice is loaded once and broadcast across the
        // whole filter tile — the cache win over the scalar kernel.
        for (std::size_t j = 0; j < patch; ++j) {
          const std::int32_t* crow = cols_data + j * spatial + s0;
          const std::int16_t* w = panel + j * kFilterTile;
          for (int f = 0; f < kt; ++f) {
            const Acc wv = w[f];
            if (wv == 0) continue;  // exact: pruned lanes add nothing
            Acc* arow = acc[f];
            for (std::size_t s = 0; s < sb; ++s) {
              arow[s] += wv * static_cast<Acc>(crow[s]);
            }
          }
        }
        for (int f = 0; f < kt; ++f) {
          const std::size_t k = k0 + static_cast<std::size_t>(f);
          // The scalar kernel's exact rescale expressions; pruned
          // filters have scale = bias = 0 and exact-zero sums, so
          // they produce the same hard 0.0f.
          const float scale = packed.weight_scales[k] * acts.scale;
          const float bias = packed.out_bias[k];
          float* plane = out_n + k * spatial + s0;
          for (std::size_t s = 0; s < sb; ++s) {
            plane[s] = scale * static_cast<float>(acc[f][s]) + bias;
          }
        }
      }
    }
  });
}

/// Samples processed per weight-panel sweep of the linear kernel: each
/// panel row is loaded once and multiplied into this many samples'
/// accumulators, amortizing the weight traffic over the batch.
inline constexpr int kBatchBlock = 4;

/// The fully-connected MAC stage, chunked over filter tiles: one
/// L1-resident weight panel swept per kBatchBlock samples with a
/// kFilterTile-wide accumulator per sample.
template <typename Acc>
void linear_mac_tiles(const PackedCodes& packed, const ActCodes& acts, int batch,
                      std::size_t features, float* out,
                      const util::ExecContext& exec) {
  const std::size_t filters = static_cast<std::size_t>(packed.num_filters);
  const std::size_t tiles = (filters + kFilterTile - 1) / kFilterTile;
  exec.parallel_for(0, static_cast<std::int64_t>(tiles),
                    [&](std::int64_t t0, std::int64_t t1) {
    Acc acc[kBatchBlock][kFilterTile];
    for (std::int64_t t = t0; t < t1; ++t) {
      const std::size_t k0 = static_cast<std::size_t>(t) * kFilterTile;
      const int kt =
          static_cast<int>(std::min<std::size_t>(kFilterTile, filters - k0));
      const std::int16_t* panel =
          packed.panels.data() + static_cast<std::size_t>(t) * features * kFilterTile;
      for (int n0 = 0; n0 < batch; n0 += kBatchBlock) {
        const int nb = std::min(kBatchBlock, batch - n0);
        const std::int32_t* a =
            acts.codes.data() + static_cast<std::size_t>(n0) * features;
        std::memset(acc, 0, sizeof(acc));
        for (std::size_t j = 0; j < features; ++j) {
          const std::int16_t* w = panel + j * kFilterTile;
          for (int b = 0; b < nb; ++b) {
            const Acc av = static_cast<Acc>(a[static_cast<std::size_t>(b) * features + j]);
            for (int f = 0; f < kFilterTile; ++f) {  // tail lanes are zero panels
              acc[b][f] += static_cast<Acc>(w[f]) * av;
            }
          }
        }
        for (int b = 0; b < nb; ++b) {
          float* row = out + static_cast<std::size_t>(n0 + b) * filters;
          for (int f = 0; f < kt; ++f) {
            const std::size_t k = k0 + static_cast<std::size_t>(f);
            const float scale = packed.weight_scales[k] * acts.scale;
            row[k] = scale * static_cast<float>(acc[b][f]) + packed.out_bias[k];
          }
        }
      }
    }
  });
}

}  // namespace

void conv_forward_into(const PackedCodes& packed, const ActCodes& acts, int batch,
                       int in_c, int height, int width, int kernel, int stride,
                       int pad, float* out, std::vector<std::int32_t>& cols_scratch,
                       const util::ExecContext& exec) {
  check_packed(packed, "blocked::conv_forward_into");
  if (packed.weights_per_filter !=
      static_cast<std::int64_t>(in_c) * kernel * kernel) {
    throw std::invalid_argument("blocked::conv_forward_into: geometry mismatch");
  }
  const std::size_t image =
      static_cast<std::size_t>(in_c) * static_cast<std::size_t>(height) * width;
  if (acts.codes.size() != static_cast<std::size_t>(batch) * image) {
    throw std::invalid_argument(
        "blocked::conv_forward_into: activation code count mismatch");
  }
  const int oh = (height + 2 * pad - kernel) / stride + 1;
  const int ow = (width + 2 * pad - kernel) / stride + 1;
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument("blocked::conv_forward_into: empty output");
  }
  const std::size_t spatial = static_cast<std::size_t>(oh) * ow;
  const std::size_t patch = static_cast<std::size_t>(packed.weights_per_filter);
  const std::size_t filters = static_cast<std::size_t>(packed.num_filters);

  cols_scratch.resize(patch * spatial);
  std::int32_t* const cols_data = cols_scratch.data();
  tensor::ConvGeometry geometry;
  geometry.in_c = in_c;
  geometry.in_h = height;
  geometry.in_w = width;
  geometry.kernel = kernel;
  geometry.stride = stride;
  geometry.pad = pad;
  const bool narrow = fits_int32(packed, acts, patch);
  for (int n = 0; n < batch; ++n) {
    const std::int32_t* img = acts.codes.data() + static_cast<std::size_t>(n) * image;
    // Same im2col as the scalar kernel (the packing only changes the
    // MAC stage); zero padding is code 0 = activation 0.0.
    tensor::im2col_any(img, geometry, cols_data, exec);
    float* out_n = out + static_cast<std::size_t>(n) * filters * spatial;
    if (narrow) {
      conv_mac_tiles<std::int32_t>(packed, acts, cols_data, patch, spatial, out_n,
                                   exec);
    } else {
      conv_mac_tiles<std::int64_t>(packed, acts, cols_data, patch, spatial, out_n,
                                   exec);
    }
  }
}

void linear_forward_into(const PackedCodes& packed, const ActCodes& acts, int batch,
                         int in_features, float* out, const util::ExecContext& exec) {
  check_packed(packed, "blocked::linear_forward_into");
  if (in_features != packed.weights_per_filter) {
    throw std::invalid_argument("blocked::linear_forward_into: in_features mismatch");
  }
  if (acts.codes.size() !=
      static_cast<std::size_t>(batch) * static_cast<std::size_t>(in_features)) {
    throw std::invalid_argument(
        "blocked::linear_forward_into: activation code count mismatch");
  }
  const std::size_t features = static_cast<std::size_t>(in_features);
  if (fits_int32(packed, acts, features)) {
    linear_mac_tiles<std::int32_t>(packed, acts, batch, features, out, exec);
  } else {
    linear_mac_tiles<std::int64_t>(packed, acts, batch, features, out, exec);
  }
}

}  // namespace blocked

void BlockedBackend::prepare(const ExecutionPlan& plan) {
  packed_.clear();
  packed_.reserve(plan.integer_layers().size());
  for (const IntegerLayer& layer : plan.integer_layers()) {
    packed_.push_back(blocked::pack_codes(layer));
  }
  prepared_for_ = &plan;
}

void BlockedBackend::run(const PlanOp& op, const ExecutionPlan& plan,
                         const BackendIo& io, BackendScratch& scratch,
                         const util::ExecContext& exec) const {
  if (op.kind == OpKind::IntConv || op.kind == OpKind::IntLinear) {
    if (prepared_for_ != &plan) {
      throw std::logic_error("BlockedBackend: prepare() was not run for this plan");
    }
    const blocked::PackedCodes& packed = packed_[static_cast<std::size_t>(op.layer)];
    if (packed.usable) {
      const std::size_t in_count =
          op.kind == OpKind::IntConv
              ? plan.slots()[static_cast<std::size_t>(op.in0)].numel *
                    static_cast<std::size_t>(io.batch)
              : static_cast<std::size_t>(op.in_features) *
                    static_cast<std::size_t>(io.batch);
      // Same input adoption as the scalar reference: cast pre-encoded
      // grid codes, encode raw activations.
      if (op.in_codes) {
        cast_codes_into(io.in0, in_count, op.act_hi, op.act_bits, scratch.codes,
                        exec);
      } else {
        encode_activations_into(io.in0, in_count, op.act_hi, op.act_bits,
                                scratch.codes, exec);
      }
      if (op.kind == OpKind::IntConv) {
        blocked::conv_forward_into(packed, scratch.codes, io.batch, op.in_c, op.in_h,
                                   op.in_w, op.kernel, op.stride, op.pad, io.out,
                                   scratch.int_cols, exec);
      } else {
        blocked::linear_forward_into(packed, scratch.codes, io.batch, op.in_features,
                                     io.out, exec);
      }
      // The shared epilogue keeps fused tails byte-identical to the
      // scalar reference (and to the unfused plan).
      apply_epilogue(op, io, plan.slots()[static_cast<std::size_t>(op.out)].numel, exec);
      return;
    }
  }
  ScalarBackend::run(op, plan, io, scratch, exec);
}

std::size_t BlockedBackend::prepared_bytes() const {
  std::size_t bytes = 0;
  for (const blocked::PackedCodes& packed : packed_) {
    bytes += packed.panels.size() * sizeof(std::int16_t) +
             packed.weight_scales.size() * sizeof(float) +
             packed.out_bias.size() * sizeof(float);
  }
  return bytes;
}

const char* BlockedBackend::dispatch(const PlanOp& op) const {
  if (op.kind != OpKind::IntConv && op.kind != OpKind::IntLinear) return "scalar";
  const auto layer = static_cast<std::size_t>(op.layer);
  if (layer >= packed_.size() || !packed_[layer].usable) return "scalar";
  return "blocked";
}

}  // namespace cq::deploy
