#pragma once

#include <cstddef>
#include <vector>

#include "deploy/plan.h"

namespace cq::deploy {

/// True when `kind` may legally execute in place — its output interval
/// may alias in0 when in0 dies at the op. Elementwise per-element maps
/// (Relu, EncodeAct, BatchNorm, Add) plus Flatten (a pure reshape).
/// One definition shared by the compiler's arena planner, the optimizer
/// passes' re-planner, and the verifier's alias rule, so they cannot
/// disagree about what aliasing is sound.
bool arena_alias_legal(OpKind kind);

/// Lifetime-based first-fit arena planner over a finished op program:
/// assigns every slot's `offset` (slot `numel`s must already be set)
/// by linear scan with a coalescing free list, releasing intervals at
/// their last use and aliasing alias-legal ops in place. The program
/// output stays live past the last op. Returns the high-water arena
/// size in floats per sample; offsets scale linearly with batch N, so
/// per-sample disjointness holds for every batch size. Used by
/// compile_plan's datalayout stage and re-run by optimizer passes
/// after op deletion so the fused plan's arena shrinks accordingly.
std::size_t plan_arena(const std::vector<PlanOp>& ops,
                       std::vector<PlanSlot>& slots, int input_slot,
                       int output_slot);

}  // namespace cq::deploy
