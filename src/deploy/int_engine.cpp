#include "deploy/int_engine.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "deploy/bitstream.h"
#include "quant/uniform.h"

namespace cq::deploy {

float IntegerLayer::weight_scale(int k) const {
  const int b = filter_bits[static_cast<std::size_t>(k)];
  if (b <= 0) return 0.0f;
  // One step of the symmetric quantizer, halved because execution
  // doubles the codes to keep the centering offset integral.
  return range_hi / static_cast<float>(quant::levels_for_bits(b) - 1);
}

float IntegerLayer::weight_zero(int k) const {
  const int b = filter_bits[static_cast<std::size_t>(k)];
  if (b <= 0) return 0.0f;
  return static_cast<float>(quant::levels_for_bits(b) - 1) / 2.0f;
}

IntegerLayer build_integer_layer(const PackedLayer& packed, std::vector<float> bias) {
  if (bias.size() != static_cast<std::size_t>(packed.num_filters)) {
    throw std::invalid_argument("build_integer_layer: bias size mismatch");
  }
  if (packed.filter_bits.size() != static_cast<std::size_t>(packed.num_filters)) {
    throw std::invalid_argument("build_integer_layer: filter_bits size mismatch");
  }
  IntegerLayer layer;
  layer.num_filters = packed.num_filters;
  layer.weights_per_filter = packed.weights_per_filter;
  layer.range_hi = packed.range_hi;
  layer.filter_bits = packed.filter_bits;
  layer.bias = std::move(bias);
  layer.codes.assign(static_cast<std::size_t>(packed.num_filters) *
                         static_cast<std::size_t>(packed.weights_per_filter),
                     0);

  BitReader reader(packed.codes);
  for (int k = 0; k < packed.num_filters; ++k) {
    const int b = packed.filter_bits[static_cast<std::size_t>(k)];
    if (b == 0) continue;  // pruned: row stays zero and is skipped anyway
    std::int32_t* row =
        layer.codes.data() + static_cast<std::size_t>(k) * packed.weights_per_filter;
    for (std::int64_t j = 0; j < packed.weights_per_filter; ++j) {
      row[j] = static_cast<std::int32_t>(reader.read(b));
    }
  }
  return layer;
}

ActCodes encode_activations(const tensor::Tensor& activations, float hi, int bits) {
  ActCodes out;
  encode_activations_into(activations, hi, bits, out);
  return out;
}

void encode_activations_into(const tensor::Tensor& activations, float hi, int bits,
                             ActCodes& out) {
  if (bits < 1 || bits > 16) {
    throw std::invalid_argument("encode_activations: bits must be in [1, 16]");
  }
  if (hi <= 0.0f) {
    throw std::invalid_argument("encode_activations: activation range must be positive");
  }
  out.bits = bits;
  const int levels = quant::levels_for_bits(bits);
  out.scale = hi / static_cast<float>(levels - 1);
  const float to_code = static_cast<float>(levels - 1) / hi;
  out.codes.resize(activations.numel());
  for (std::size_t i = 0; i < activations.numel(); ++i) {
    const float clipped = std::clamp(activations[i], 0.0f, hi);
    out.codes[i] = static_cast<std::int32_t>(std::round(clipped * to_code));
  }
}

tensor::Tensor integer_linear_forward(const IntegerLayer& layer, const ActCodes& acts,
                                      int batch, int in_features) {
  if (in_features != layer.weights_per_filter) {
    throw std::invalid_argument("integer_linear_forward: in_features mismatch");
  }
  if (acts.codes.size() != static_cast<std::size_t>(batch) * in_features) {
    throw std::invalid_argument("integer_linear_forward: activation code count mismatch");
  }
  tensor::Tensor out({batch, layer.num_filters});
  for (int n = 0; n < batch; ++n) {
    const std::int32_t* a =
        acts.codes.data() + static_cast<std::size_t>(n) * in_features;
    for (int k = 0; k < layer.num_filters; ++k) {
      const int b = layer.filter_bits[static_cast<std::size_t>(k)];
      if (b == 0) {
        // Pruned filter: output (and bias) are hard zero, matching the
        // fake-quant semantics of 0-bit filters.
        out.at(n, k) = 0.0f;
        continue;
      }
      const std::int32_t offset =
          static_cast<std::int32_t>(quant::levels_for_bits(b)) - 1;
      const std::int32_t* w =
          layer.codes.data() + static_cast<std::size_t>(k) * in_features;
      // Pure integer MAC loop — the NPU inner product. Centered weight
      // codes are doubled (2q - (levels-1)) so the offset stays integral;
      // weight_scale() is the matching half-step.
      std::int64_t acc = 0;
      for (int j = 0; j < in_features; ++j) {
        acc += static_cast<std::int64_t>(2 * w[j] - offset) *
               static_cast<std::int64_t>(a[j]);
      }
      out.at(n, k) = layer.weight_scale(k) * acts.scale * static_cast<float>(acc) +
                     layer.bias[static_cast<std::size_t>(k)];
    }
  }
  return out;
}

tensor::Tensor integer_conv_forward(const IntegerLayer& layer, const ActCodes& acts,
                                    int batch, int in_c, int height, int width,
                                    int kernel, int stride, int pad) {
  if (layer.weights_per_filter != static_cast<std::int64_t>(in_c) * kernel * kernel) {
    throw std::invalid_argument("integer_conv_forward: geometry mismatch");
  }
  const std::size_t image =
      static_cast<std::size_t>(in_c) * static_cast<std::size_t>(height) * width;
  if (acts.codes.size() != static_cast<std::size_t>(batch) * image) {
    throw std::invalid_argument("integer_conv_forward: activation code count mismatch");
  }
  const int oh = (height + 2 * pad - kernel) / stride + 1;
  const int ow = (width + 2 * pad - kernel) / stride + 1;
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument("integer_conv_forward: empty output");
  }

  tensor::Tensor out({batch, layer.num_filters, oh, ow});
  std::vector<std::int32_t> patch(static_cast<std::size_t>(layer.weights_per_filter));
  for (int n = 0; n < batch; ++n) {
    const std::int32_t* img = acts.codes.data() + static_cast<std::size_t>(n) * image;
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        // Gather the receptive field's codes (0 outside the image —
        // exactly activation 0.0 under the [0, hi] range).
        std::size_t p = 0;
        for (int c = 0; c < in_c; ++c) {
          for (int ky = 0; ky < kernel; ++ky) {
            const int y = oy * stride - pad + ky;
            for (int kx = 0; kx < kernel; ++kx) {
              const int x = ox * stride - pad + kx;
              const bool inside = y >= 0 && y < height && x >= 0 && x < width;
              patch[p++] = inside ? img[(static_cast<std::size_t>(c) * height + y) * width + x]
                                  : 0;
            }
          }
        }
        for (int k = 0; k < layer.num_filters; ++k) {
          const int b = layer.filter_bits[static_cast<std::size_t>(k)];
          float value = 0.0f;
          if (b != 0) {
            const std::int32_t offset =
                static_cast<std::int32_t>(quant::levels_for_bits(b)) - 1;
            const std::int32_t* w =
                layer.codes.data() + static_cast<std::size_t>(k) * layer.weights_per_filter;
            std::int64_t acc = 0;
            for (std::size_t j = 0; j < patch.size(); ++j) {
              acc += static_cast<std::int64_t>(2 * w[j] - offset) *
                     static_cast<std::int64_t>(patch[j]);
            }
            value = layer.weight_scale(k) * acts.scale * static_cast<float>(acc) +
                    layer.bias[static_cast<std::size_t>(k)];
          }
          out[((static_cast<std::size_t>(n) * layer.num_filters + k) *
                   static_cast<std::size_t>(oh) +
               oy) *
                  static_cast<std::size_t>(ow) +
              ox] = value;
        }
      }
    }
  }
  return out;
}

}  // namespace cq::deploy
