#include "deploy/int_engine.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "deploy/bitstream.h"
#include "quant/uniform.h"
#include "tensor/ops.h"

namespace cq::deploy {

float IntegerLayer::weight_scale(int k) const {
  const int b = filter_bits[static_cast<std::size_t>(k)];
  if (b <= 0) return 0.0f;
  // One step of the symmetric quantizer, halved because execution
  // doubles the codes to keep the centering offset integral.
  return range_hi / static_cast<float>(quant::levels_for_bits(b) - 1);
}

float IntegerLayer::weight_zero(int k) const {
  const int b = filter_bits[static_cast<std::size_t>(k)];
  if (b <= 0) return 0.0f;
  return static_cast<float>(quant::levels_for_bits(b) - 1) / 2.0f;
}

IntegerLayer build_integer_layer(const PackedLayer& packed, std::vector<float> bias) {
  if (bias.size() != static_cast<std::size_t>(packed.num_filters)) {
    throw std::invalid_argument("build_integer_layer: bias size mismatch");
  }
  if (packed.filter_bits.size() != static_cast<std::size_t>(packed.num_filters)) {
    throw std::invalid_argument("build_integer_layer: filter_bits size mismatch");
  }
  IntegerLayer layer;
  layer.num_filters = packed.num_filters;
  layer.weights_per_filter = packed.weights_per_filter;
  layer.range_hi = packed.range_hi;
  layer.filter_bits = packed.filter_bits;
  layer.bias = std::move(bias);
  layer.codes.assign(static_cast<std::size_t>(packed.num_filters) *
                         static_cast<std::size_t>(packed.weights_per_filter),
                     0);

  BitReader reader(packed.codes);
  for (int k = 0; k < packed.num_filters; ++k) {
    const int b = packed.filter_bits[static_cast<std::size_t>(k)];
    if (b == 0) continue;  // pruned: row stays zero and is skipped anyway
    std::int32_t* row =
        layer.codes.data() + static_cast<std::size_t>(k) * packed.weights_per_filter;
    for (std::int64_t j = 0; j < packed.weights_per_filter; ++j) {
      row[j] = static_cast<std::int32_t>(reader.read(b));
    }
  }
  return layer;
}

ActCodes encode_activations(const tensor::Tensor& activations, float hi, int bits) {
  ActCodes out;
  encode_activations_into(activations, hi, bits, out);
  return out;
}

void encode_activations_into(const tensor::Tensor& activations, float hi, int bits,
                             ActCodes& out, const util::ExecContext& exec) {
  encode_activations_into(activations.data(), activations.numel(), hi, bits, out, exec);
}

void encode_activations_into(const float* activations, std::size_t count, float hi,
                             int bits, ActCodes& out, const util::ExecContext& exec) {
  if (bits < 1 || bits > 16) {
    throw std::invalid_argument("encode_activations: bits must be in [1, 16]");
  }
  if (hi <= 0.0f) {
    throw std::invalid_argument("encode_activations: activation range must be positive");
  }
  out.bits = bits;
  const int levels = quant::levels_for_bits(bits);
  out.scale = hi / static_cast<float>(levels - 1);
  const float to_code = static_cast<float>(levels - 1) / hi;
  out.codes.resize(count);
  const float* src = activations;
  std::int32_t* dst = out.codes.data();
  exec.parallel_for(0, static_cast<std::int64_t>(count),
                    [=](std::int64_t lo, std::int64_t hi_i) {
    for (std::int64_t i = lo; i < hi_i; ++i) {
      const float clipped = std::clamp(src[i], 0.0f, hi);
      dst[i] = static_cast<std::int32_t>(std::round(clipped * to_code));
    }
  });
}

void cast_codes_into(const float* codes, std::size_t count, float hi, int bits,
                     ActCodes& out, const util::ExecContext& exec) {
  if (bits < 1 || bits > 16) {
    throw std::invalid_argument("cast_codes: bits must be in [1, 16]");
  }
  if (hi <= 0.0f) {
    throw std::invalid_argument("cast_codes: activation range must be positive");
  }
  out.bits = bits;
  const int levels = quant::levels_for_bits(bits);
  out.scale = hi / static_cast<float>(levels - 1);
  out.codes.resize(count);
  std::int32_t* dst = out.codes.data();
  exec.parallel_for(0, static_cast<std::int64_t>(count),
                    [=](std::int64_t lo, std::int64_t hi_i) {
    for (std::int64_t i = lo; i < hi_i; ++i) {
      dst[i] = static_cast<std::int32_t>(codes[i]);
    }
  });
}

tensor::Tensor integer_linear_forward(const IntegerLayer& layer, const ActCodes& acts,
                                      int batch, int in_features,
                                      const util::ExecContext& exec) {
  tensor::Tensor out({batch, layer.num_filters});
  integer_linear_forward_into(layer, acts, batch, in_features, out.data(), exec);
  return out;
}

void integer_linear_forward_into(const IntegerLayer& layer, const ActCodes& acts,
                                 int batch, int in_features, float* out,
                                 const util::ExecContext& exec) {
  if (in_features != layer.weights_per_filter) {
    throw std::invalid_argument("integer_linear_forward: in_features mismatch");
  }
  if (acts.codes.size() != static_cast<std::size_t>(batch) * in_features) {
    throw std::invalid_argument("integer_linear_forward: activation code count mismatch");
  }
  const std::size_t filters = static_cast<std::size_t>(layer.num_filters);
  const std::int32_t* codes = acts.codes.data();
  // Chunked over output filters: each thread owns whole weight rows,
  // so every output element keeps its fixed ascending-j reduction.
  exec.parallel_for(0, layer.num_filters, [&](std::int64_t k0, std::int64_t k1) {
    for (std::int64_t k = k0; k < k1; ++k) {
      const int b = layer.filter_bits[static_cast<std::size_t>(k)];
      if (b == 0) {
        // Pruned filter: output (and bias) are hard zero, matching the
        // fake-quant semantics of 0-bit filters.
        for (int n = 0; n < batch; ++n) {
          out[static_cast<std::size_t>(n) * filters + static_cast<std::size_t>(k)] = 0.0f;
        }
        continue;
      }
      const std::int32_t offset =
          static_cast<std::int32_t>(quant::levels_for_bits(b)) - 1;
      const std::int32_t* w =
          layer.codes.data() + static_cast<std::size_t>(k) * in_features;
      const float scale = layer.weight_scale(static_cast<int>(k)) * acts.scale;
      const float bias = layer.bias[static_cast<std::size_t>(k)];
      for (int n = 0; n < batch; ++n) {
        const std::int32_t* a = codes + static_cast<std::size_t>(n) * in_features;
        // Pure integer MAC loop — the NPU inner product. Centered weight
        // codes are doubled (2q - (levels-1)) so the offset stays integral;
        // weight_scale() is the matching half-step.
        std::int64_t acc = 0;
        for (int j = 0; j < in_features; ++j) {
          acc += static_cast<std::int64_t>(2 * w[j] - offset) *
                 static_cast<std::int64_t>(a[j]);
        }
        out[static_cast<std::size_t>(n) * filters + static_cast<std::size_t>(k)] =
            scale * static_cast<float>(acc) + bias;
      }
    }
  });
}

tensor::Tensor integer_conv_forward(const IntegerLayer& layer, const ActCodes& acts,
                                    int batch, int in_c, int height, int width,
                                    int kernel, int stride, int pad,
                                    const util::ExecContext& exec) {
  const int oh = (height + 2 * pad - kernel) / stride + 1;
  const int ow = (width + 2 * pad - kernel) / stride + 1;
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument("integer_conv_forward: empty output");
  }
  tensor::Tensor out({batch, layer.num_filters, oh, ow});
  std::vector<std::int32_t> cols;
  integer_conv_forward_into(layer, acts, batch, in_c, height, width, kernel, stride,
                            pad, out.data(), cols, exec);
  return out;
}

void integer_conv_forward_into(const IntegerLayer& layer, const ActCodes& acts,
                               int batch, int in_c, int height, int width, int kernel,
                               int stride, int pad, float* out,
                               std::vector<std::int32_t>& cols_scratch,
                               const util::ExecContext& exec) {
  if (layer.weights_per_filter != static_cast<std::int64_t>(in_c) * kernel * kernel) {
    throw std::invalid_argument("integer_conv_forward: geometry mismatch");
  }
  const std::size_t image =
      static_cast<std::size_t>(in_c) * static_cast<std::size_t>(height) * width;
  if (acts.codes.size() != static_cast<std::size_t>(batch) * image) {
    throw std::invalid_argument("integer_conv_forward: activation code count mismatch");
  }
  const int oh = (height + 2 * pad - kernel) / stride + 1;
  const int ow = (width + 2 * pad - kernel) / stride + 1;
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument("integer_conv_forward: empty output");
  }
  const std::size_t spatial = static_cast<std::size_t>(oh) * ow;
  const std::size_t patch = static_cast<std::size_t>(layer.weights_per_filter);

  cols_scratch.resize(patch * spatial);
  std::int32_t* const cols_data = cols_scratch.data();
  tensor::ConvGeometry geometry;
  geometry.in_c = in_c;
  geometry.in_h = height;
  geometry.in_w = width;
  geometry.kernel = kernel;
  geometry.stride = stride;
  geometry.pad = pad;
  for (int n = 0; n < batch; ++n) {
    const std::int32_t* img = acts.codes.data() + static_cast<std::size_t>(n) * image;
    // Shared im2col (same unfolding as the float training path), on
    // integer codes; zero padding is code 0 = activation 0.0.
    tensor::im2col_any(img, geometry, cols_data, exec);
    float* out_n = out + static_cast<std::size_t>(n) * layer.num_filters * spatial;
    // MAC stage, chunked over output filters (whole GEMM rows). Every
    // output element accumulates its patch in ascending-j order; the
    // int64 accumulator makes the sum exact, so chunking (and the
    // centered-zero skip) cannot change a single bit of the result.
    exec.parallel_for(0, layer.num_filters, [&, out_n](std::int64_t k0, std::int64_t k1) {
      std::vector<std::int64_t> acc(spatial);
      for (std::int64_t k = k0; k < k1; ++k) {
        float* plane = out_n + static_cast<std::size_t>(k) * spatial;
        const int b = layer.filter_bits[static_cast<std::size_t>(k)];
        if (b == 0) {
          // Pruned filter: output (and bias) are hard zero.
          std::fill(plane, plane + spatial, 0.0f);
          continue;
        }
        const std::int32_t offset =
            static_cast<std::int32_t>(quant::levels_for_bits(b)) - 1;
        const std::int32_t* w = layer.codes.data() + static_cast<std::size_t>(k) * patch;
        std::fill(acc.begin(), acc.end(), std::int64_t{0});
        for (std::size_t j = 0; j < patch; ++j) {
          const std::int64_t wv = 2 * static_cast<std::int64_t>(w[j]) - offset;
          if (wv == 0) continue;  // exact: skipping integer zeros adds nothing
          const std::int32_t* crow = cols_data + j * spatial;
          for (std::size_t s = 0; s < spatial; ++s) {
            acc[s] += wv * static_cast<std::int64_t>(crow[s]);
          }
        }
        const float scale = layer.weight_scale(static_cast<int>(k)) * acts.scale;
        const float bias = layer.bias[static_cast<std::size_t>(k)];
        for (std::size_t s = 0; s < spatial; ++s) {
          plane[s] = scale * static_cast<float>(acc[s]) + bias;
        }
      }
    });
  }
}

}  // namespace cq::deploy
