#include "deploy/backend.h"

#include <stdexcept>

namespace cq::deploy {

void Backend::prepare(const ExecutionPlan&) {}

const char* Backend::dispatch(const PlanOp&) const { return name(); }

std::size_t op_arena_bytes(const PlanOp& op, const ExecutionPlan& plan) {
  const auto slot_bytes = [&plan](int slot) -> std::size_t {
    if (slot < 0 || slot >= plan.slot_count()) return 0;
    return plan.slots()[static_cast<std::size_t>(slot)].numel * sizeof(float);
  };
  return slot_bytes(op.in0) + slot_bytes(op.in1) + slot_bytes(op.out);
}

const char* backend_kind_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::Scalar:
      return "scalar";
    case BackendKind::Blocked:
      return "blocked";
  }
  return "?";
}

const std::vector<BackendKind>& all_backend_kinds() {
  static const std::vector<BackendKind> kinds = {BackendKind::Scalar,
                                                 BackendKind::Blocked};
  return kinds;
}

BackendKind parse_backend_kind(const std::string& name) {
  for (const BackendKind kind : all_backend_kinds()) {
    if (name == backend_kind_name(kind)) return kind;
  }
  std::string known;
  for (const BackendKind kind : all_backend_kinds()) {
    if (!known.empty()) known += ", ";
    known += backend_kind_name(kind);
  }
  throw std::invalid_argument("unknown backend '" + name + "' (known: " + known + ")");
}

std::unique_ptr<Backend> make_backend(BackendKind kind) {
  switch (kind) {
    case BackendKind::Scalar:
      return std::make_unique<ScalarBackend>();
    case BackendKind::Blocked:
      return std::make_unique<BlockedBackend>();
  }
  throw std::invalid_argument("make_backend: unknown kind");
}

}  // namespace cq::deploy
