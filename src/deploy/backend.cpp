#include "deploy/backend.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "quant/uniform.h"

namespace cq::deploy {

void Backend::prepare(const ExecutionPlan&) {}

const char* Backend::dispatch(const PlanOp&) const { return name(); }

namespace {

/// The post-BN tail of the fused epilogue chain for one element, with
/// the stage set fixed at compile time so every combination compiles
/// to a branch-free inner loop (a distinct functor type per
/// combination keeps the call inlinable). Expressions are the
/// standalone Add / Relu / EncodeAct ops', verbatim.
template <bool kAdd, bool kRelu, bool kEncode>
struct EpilogueTail {
  float operator()(float v, float residual, float enc_hi, float to_code) const {
    if constexpr (kAdd) v = v + residual;
    if constexpr (kRelu) v = v > 0.0f ? v : 0.0f;
    if constexpr (kEncode) {
      const float clipped = std::clamp(v, 0.0f, enc_hi);
      v = static_cast<float>(static_cast<std::int32_t>(std::round(clipped * to_code)));
    }
    return v;
  }
};

/// Runs `body` with the epilogue tail instantiated for the op's
/// (add, relu, encode) flag combination.
template <typename Body>
void with_epilogue_tail(const PlanOp& op, Body&& body) {
  const int key = (op.ep_add ? 4 : 0) | (op.ep_relu ? 2 : 0) | (op.ep_encode ? 1 : 0);
  switch (key) {
    case 0: body(EpilogueTail<false, false, false>{}); break;
    case 1: body(EpilogueTail<false, false, true>{}); break;
    case 2: body(EpilogueTail<false, true, false>{}); break;
    case 3: body(EpilogueTail<false, true, true>{}); break;
    case 4: body(EpilogueTail<true, false, false>{}); break;
    case 5: body(EpilogueTail<true, false, true>{}); break;
    case 6: body(EpilogueTail<true, true, false>{}); break;
    default: body(EpilogueTail<true, true, true>{}); break;
  }
}

}  // namespace

void apply_epilogue(const PlanOp& op, const BackendIo& io,
                    std::size_t out_numel_per_sample,
                    const util::ExecContext& exec) {
  if (!op.ep_bn && !op.ep_add && !op.ep_relu && !op.ep_encode) return;
  float* const out = io.out;
  const float* const in1 = io.in1;
  const auto batch = static_cast<std::size_t>(io.batch);
  const auto total = static_cast<std::int64_t>(out_numel_per_sample * batch);
  // ep_encode is the consumer-side encode (encode_activations_into)
  // hoisted into the producer: the resulting integer codes are exactly
  // what every in_codes consumer would have computed, stored as floats
  // (codes are <= 65535, exactly representable).
  const float enc_hi = op.out_hi;
  const float to_code =
      op.ep_encode
          ? static_cast<float>(quant::levels_for_bits(op.out_bits) - 1) / enc_hi
          : 0.0f;

  // One fused elementwise pass: each element runs the deleted
  // standalone ops' expressions in the standalone order
  // (BN -> Add -> Relu -> encode), in registers. Every stage maps
  // element i from element i alone, so folding the stages into a
  // single read-modify-write per element — and chunking over `exec` —
  // cannot change a bit versus running each op as its own buffer pass.
  with_epilogue_tail(op, [&](auto tail) {
    if (op.ep_bn) {
      // Chunked over [n][c] planes so the per-channel BN constants
      // hoist out of the inner loop; plane p = n * out_c + c starts at
      // p * spatial.
      const auto spatial =
          static_cast<std::int64_t>(op.out_h) * static_cast<std::int64_t>(op.out_w);
      const auto channels = static_cast<std::int64_t>(op.out_c);
      const float* const mean = op.bn_mean.data();
      const float* const inv_std = op.bn_inv_std.data();
      const float* const gamma = op.bn_gamma.data();
      const float* const beta = op.bn_beta.data();
      exec.parallel_for(0, static_cast<std::int64_t>(batch) * channels,
                        [=](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t p = lo; p < hi; ++p) {
          const auto c = static_cast<std::size_t>(p % channels);
          const float m = mean[c];
          const float is = inv_std[c];
          const float g = gamma[c];
          const float b = beta[c];
          float* const dst = out + p * spatial;
          const float* const res = in1 != nullptr ? in1 + p * spatial : nullptr;
          for (std::int64_t s = 0; s < spatial; ++s) {
            const float xh = (dst[s] - m) * is;
            dst[s] = tail(g * xh + b, res != nullptr ? res[s] : 0.0f, enc_hi,
                          to_code);
          }
        }
      });
    } else {
      exec.parallel_for(0, total, [=](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
          out[i] = tail(out[i], in1 != nullptr ? in1[i] : 0.0f, enc_hi, to_code);
        }
      });
    }
  });
}

std::size_t op_arena_bytes(const PlanOp& op, const ExecutionPlan& plan) {
  const auto slot_bytes = [&plan](int slot) -> std::size_t {
    if (slot < 0 || slot >= plan.slot_count()) return 0;
    return plan.slots()[static_cast<std::size_t>(slot)].numel * sizeof(float);
  };
  return slot_bytes(op.in0) + slot_bytes(op.in1) + slot_bytes(op.out);
}

const char* backend_kind_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::Scalar:
      return "scalar";
    case BackendKind::Blocked:
      return "blocked";
    case BackendKind::Simd:
      return "simd";
  }
  return "?";
}

const std::vector<BackendKind>& all_backend_kinds() {
  static const std::vector<BackendKind> kinds = {
      BackendKind::Scalar, BackendKind::Blocked, BackendKind::Simd};
  return kinds;
}

namespace {

/// "scalar, blocked, simd" — the `known:` clause every selection error
/// carries so a typo'd --backend or a stale config names its options.
std::string known_backend_kinds() {
  std::string known;
  for (const BackendKind kind : all_backend_kinds()) {
    if (!known.empty()) known += ", ";
    known += backend_kind_name(kind);
  }
  return known;
}

}  // namespace

BackendKind parse_backend_kind(const std::string& name) {
  for (const BackendKind kind : all_backend_kinds()) {
    if (name == backend_kind_name(kind)) return kind;
  }
  throw std::invalid_argument("unknown backend '" + name +
                              "' (known: " + known_backend_kinds() + ")");
}

std::unique_ptr<Backend> make_backend(BackendKind kind) {
  switch (kind) {
    case BackendKind::Scalar:
      return std::make_unique<ScalarBackend>();
    case BackendKind::Blocked:
      return std::make_unique<BlockedBackend>();
    case BackendKind::Simd:
      return std::make_unique<SimdBackend>();
  }
  throw std::invalid_argument("make_backend: unknown backend kind " +
                              std::to_string(static_cast<int>(kind)) +
                              " (known: " + known_backend_kinds() + ")");
}

}  // namespace cq::deploy
