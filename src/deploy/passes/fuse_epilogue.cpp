#include <cstddef>
#include <utility>
#include <vector>

#include "deploy/passes/passes.h"

namespace cq::deploy {

namespace {

/// Number of ops reading `slot` (in0 and in1 occurrences both count).
std::size_t use_count(const std::vector<PlanOp>& ops, int slot) {
  std::size_t uses = 0;
  for (const PlanOp& op : ops) {
    uses += static_cast<std::size_t>(op.in0 == slot);
    uses += static_cast<std::size_t>(op.in1 == slot);
  }
  return uses;
}

/// Index of the op writing `slot`, or -1 (the plan input / not found).
int def_index(const std::vector<PlanOp>& ops, int slot) {
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].out == slot) return static_cast<int>(i);
  }
  return -1;
}

/// Can `tail` legally fold into compute op `x`? Epilogues execute in
/// the fixed order BN -> Add -> Relu -> encode, so each stage may only
/// be added while no later stage is present; ep_encode is terminal.
bool can_fuse(const PlanOp& x, const PlanOp& tail) {
  if (!is_compute_op(x.kind) || x.ep_encode) return false;
  switch (tail.kind) {
    case OpKind::BatchNorm:
      // Per-channel over [C, H, W]: conv outputs only, matching width.
      return !x.ep_bn && !x.ep_add && !x.ep_relu &&
             (x.kind == OpKind::IntConv || x.kind == OpKind::FloatConv) &&
             tail.in_c == x.out_c && tail.in_h == x.out_h &&
             tail.in_w == x.out_w;
    case OpKind::Add:
      // Only the main path (in0) preserves the += accumulation order.
      return !x.ep_add && !x.ep_relu && tail.in0 == x.out && tail.in1 >= 0 &&
             tail.in1 != x.out;
    case OpKind::Relu:
      return !x.ep_relu;
    default:
      return false;
  }
}

}  // namespace

std::size_t pass_fuse_epilogue(ExecutionPlan& plan) {
  PlanRewriter rw(plan);
  std::vector<PlanOp>& ops = rw.ops();
  std::size_t fused = 0;

  // Fixpoint over single fusions: each round folds one elementwise tail
  // into its producer and restarts, so chained tails (conv -> bn ->
  // relu) collapse over successive rounds. Plans are ~1e2 ops; the
  // quadratic restart is immaterial next to compile itself.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t y = 0; y < ops.size(); ++y) {
      const PlanOp& tail = ops[y];
      if (tail.kind != OpKind::BatchNorm && tail.kind != OpKind::Relu &&
          tail.kind != OpKind::Add) {
        continue;
      }
      const int x = def_index(ops, tail.in0);
      if (x < 0 || !can_fuse(ops[static_cast<std::size_t>(x)], tail)) continue;
      // The producer's value must be consumed by the tail alone — any
      // other reader (or the plan output) still needs the pre-tail
      // value, which the fused op no longer materializes.
      if (ops[static_cast<std::size_t>(x)].out == rw.output_slot() ||
          use_count(ops, ops[static_cast<std::size_t>(x)].out) != 1) {
        continue;
      }

      // Merge: the compute op takes over the tail's position (sinking
      // past any intervening ops is sound — none of them read its
      // output, and slots are SSA) and writes the tail's slot. A live
      // residual operand defined between x and y therefore stays
      // intact: it is read at the fused op's (later) index.
      PlanOp merged = std::move(ops[static_cast<std::size_t>(x)]);
      merged.out = tail.out;
      switch (tail.kind) {
        case OpKind::BatchNorm:
          merged.ep_bn = true;
          merged.bn_mean = tail.bn_mean;
          merged.bn_inv_std = tail.bn_inv_std;
          merged.bn_gamma = tail.bn_gamma;
          merged.bn_beta = tail.bn_beta;
          break;
        case OpKind::Add:
          merged.ep_add = true;
          merged.in1 = tail.in1;
          break;
        default:  // Relu, by can_fuse
          merged.ep_relu = true;
          break;
      }
      ops[y] = std::move(merged);
      ops.erase(ops.begin() + x);
      ++fused;
      changed = true;
      break;
    }
  }

  if (fused > 0) pass_replan_arena(plan);
  return fused;
}

}  // namespace cq::deploy
