#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "deploy/plan.h"

namespace cq::deploy {

/// Which passes optimize_plan runs. All default on; the flags exist so
/// tests can exercise passes in isolation and so callers can bisect a
/// suspect optimization without rebuilding.
struct OptimizeOptions {
  bool fuse_epilogue = true;    ///< fold BN/Add/Relu into compute epilogues
  bool propagate_codes = true;  ///< stay in the quantized domain between layers
  bool replan_arena = true;     ///< final compact + first-fit re-plan
};

/// Structured pass log: what one pass did to the plan. `changes` counts
/// the pass's own unit of work (fusions, deleted round-trips, dropped
/// slots); ops/arena record the plan totals around the pass so effects
/// are visible without diffing listings.
struct PassResult {
  std::string name;
  std::size_t ops_before = 0;
  std::size_t ops_after = 0;
  std::size_t arena_before = 0;  ///< floats per sample
  std::size_t arena_after = 0;   ///< floats per sample
  std::size_t changes = 0;
};

struct OptimizeReport {
  std::vector<PassResult> passes;

  /// Total ops removed across all passes (before - after of the ends).
  std::size_t ops_removed() const;
  /// One "name: ops A -> B, arena X -> Y floats/sample, N changes"
  /// line per pass, for logs and listings.
  std::string summary() const;
};

/// The pass pipeline over a compiled plan. Every pass mutates through
/// PlanRewriter, runs to a fixpoint, and leaves the plan
/// verify_plan-clean — optimize_plan re-verifies after each pass and
/// throws ArtifactError naming the offending pass on any finding, so a
/// broken rewrite can never reach a backend. All passes are bit-exact:
/// an optimized plan produces byte-identical inference results.
OptimizeReport optimize_plan(ExecutionPlan& plan,
                             const OptimizeOptions& options = {});

// Individual passes, exposed for targeted tests. Each returns its
// `changes` count and (when it changed anything) finishes with the
// compact + re-plan step, so a single pass also leaves a clean plan.

/// Folds BatchNorm / residual Add / Relu ops into the epilogue fields
/// of the producing IntConv/IntLinear/FloatConv/FloatLinear when the
/// producer's output has no other consumer. The fused op sinks to the
/// folded op's position (so a live residual operand crossing the fused
/// region keeps its value); epilogues apply the standalone ops'
/// expressions in program order, so fusion is byte-exact.
std::size_t pass_fuse_epilogue(ExecutionPlan& plan);

/// Quantized-domain propagation. First deletes EncodeAct ops whose
/// entire consumer closure (through the code-transparent MaxPool /
/// Flatten) re-encodes on the identical grid — encode(quantize(x)) ==
/// encode(x), so the round-trip is redundant. Then, where a compute
/// op's closure feeds only integer ops on one common grid, records
/// ep_encode on the producer (emit grid codes as floats) and in_codes
/// on the consumers (cast instead of re-encode), deleting the
/// decode -> EncodeAct round-trip. Mixed grids, float consumers,
/// AvgPool, or residual (in1) uses block propagation — the plan falls
/// back to the explicit EncodeAct.
std::size_t pass_propagate_codes(ExecutionPlan& plan);

/// Drops slots no op references anymore, renumbers the survivors, and
/// re-runs the shared lifetime first-fit allocator (deploy/arena.h) so
/// the arena shrinks to the rewritten program's actual footprint.
/// Every mutating pass ends with this; it also runs standalone as the
/// pipeline's final pass. Returns the number of dropped slots.
std::size_t pass_replan_arena(ExecutionPlan& plan);

}  // namespace cq::deploy
