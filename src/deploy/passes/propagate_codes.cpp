#include <cstddef>
#include <vector>

#include "deploy/passes/passes.h"

namespace cq::deploy {

namespace {

/// The consumer closure of `root_slot` under code-transparency:
/// follows MaxPool / Flatten (max commutes with the monotone encode; a
/// flatten is a copy) and collects the integer ops that terminate each
/// chain. The closure is propagation-legal when every terminal is an
/// IntConv/IntLinear reading via in0 on one common activation grid, no
/// closure slot is read as a residual operand (in1 needs real values)
/// or is the plan output, and no float/AvgPool consumer appears.
struct CodeClosure {
  bool legal = false;
  float hi = 0.0f;  ///< the common grid's clip bound
  int bits = 0;     ///< the common grid's bit-width
  std::vector<std::size_t> terminals;  ///< op indices of the Int consumers
};

CodeClosure code_closure(const std::vector<PlanOp>& ops, int root_slot,
                         int output_slot) {
  CodeClosure closure;
  std::vector<int> frontier{root_slot};
  bool have_grid = false;
  while (!frontier.empty()) {
    const int slot = frontier.back();
    frontier.pop_back();
    if (slot == output_slot) return closure;  // output must hold real values
    bool consumed = false;
    for (std::size_t j = 0; j < ops.size(); ++j) {
      const PlanOp& op = ops[j];
      if (op.in1 == slot) return closure;  // residual operand: blocked
      if (op.in0 != slot) continue;
      consumed = true;
      if (op.kind == OpKind::MaxPool || op.kind == OpKind::Flatten) {
        frontier.push_back(op.out);
        continue;
      }
      const bool integer_op =
          op.kind == OpKind::IntConv || op.kind == OpKind::IntLinear;
      if (!integer_op || op.in_codes) return closure;
      if (have_grid) {
        if (op.act_hi != closure.hi || op.act_bits != closure.bits) {
          return closure;  // mixed grids: composition is not exact
        }
      } else {
        closure.hi = op.act_hi;
        closure.bits = op.act_bits;
        have_grid = true;
      }
      closure.terminals.push_back(j);
    }
    if (!consumed) return closure;  // dead transparent chain: leave it be
  }
  closure.legal = have_grid;
  return closure;
}

}  // namespace

std::size_t pass_propagate_codes(ExecutionPlan& plan) {
  PlanRewriter rw(plan);
  std::vector<PlanOp>& ops = rw.ops();
  std::size_t changes = 0;

  // Step 1: delete EncodeAct ops whose whole closure re-encodes on the
  // identical grid. The consumers then encode the raw activations
  // themselves; encode(quantize(x)) == encode(x) (quantize is monotone
  // and scale * to_code rounds back to the same integer code), so the
  // codes — and therefore every downstream byte — are unchanged.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t e = 0; e < ops.size(); ++e) {
      if (ops[e].kind != OpKind::EncodeAct) continue;
      const CodeClosure closure =
          code_closure(ops, ops[e].out, rw.output_slot());
      if (!closure.legal || closure.hi != ops[e].act_hi ||
          closure.bits != ops[e].act_bits) {
        continue;
      }
      const int from = ops[e].out;
      const int to = ops[e].in0;
      ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(e));
      for (PlanOp& op : ops) {
        if (op.in0 == from) op.in0 = to;  // in1 uses blocked the closure
      }
      ++changes;
      changed = true;
      break;
    }
  }

  // Step 2: where a compute op's closure feeds only integer consumers
  // on one grid, emit grid codes from its epilogue (ep_encode uses the
  // consumers' own clamp/scale/round expression) and cast on the
  // consumer side (in_codes). Codes are integers <= 65535 stored in
  // floats — exactly representable — so the cast returns the identical
  // ActCodes the consumer's own encode would have produced.
  for (std::size_t p = 0; p < ops.size(); ++p) {
    PlanOp& producer = ops[p];
    if (!is_compute_op(producer.kind) || producer.ep_encode) continue;
    if (producer.out == rw.output_slot()) continue;
    const CodeClosure closure =
        code_closure(ops, producer.out, rw.output_slot());
    if (!closure.legal) continue;
    producer.ep_encode = true;
    producer.out_hi = closure.hi;
    producer.out_bits = closure.bits;
    for (const std::size_t t : closure.terminals) {
      ops[t].in_codes = true;
    }
    ++changes;
  }

  if (changes > 0) pass_replan_arena(plan);
  return changes;
}

}  // namespace cq::deploy
