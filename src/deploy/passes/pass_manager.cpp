#include <cstddef>
#include <string>
#include <utility>

#include "deploy/passes/passes.h"
#include "deploy/verify.h"

namespace cq::deploy {

std::size_t OptimizeReport::ops_removed() const {
  if (passes.empty()) return 0;
  return passes.front().ops_before - passes.back().ops_after;
}

std::string OptimizeReport::summary() const {
  std::string out;
  for (const PassResult& pass : passes) {
    out += pass.name + ": ops " + std::to_string(pass.ops_before) + " -> " +
           std::to_string(pass.ops_after) + ", arena " +
           std::to_string(pass.arena_before) + " -> " +
           std::to_string(pass.arena_after) + " floats/sample, " +
           std::to_string(pass.changes) + " changes\n";
  }
  return out;
}

namespace {

/// Runs one pass, records its log entry, and proves the rewritten plan
/// against the full invariant catalog. A pass that breaks an invariant
/// is a bug in the pass — surface it at the IR boundary, naming the
/// pass, instead of letting a backend execute the broken program.
void run_pass(ExecutionPlan& plan, OptimizeReport& report, const char* name,
              std::size_t (*pass)(ExecutionPlan&)) {
  PassResult result;
  result.name = name;
  result.ops_before = plan.ops().size();
  result.arena_before = plan.arena_floats();
  result.changes = pass(plan);
  result.ops_after = plan.ops().size();
  result.arena_after = plan.arena_floats();
  const VerifyReport verify = verify_plan(plan);
  if (!verify.clean()) {
    throw ArtifactError(std::string("optimize_plan: pass '") + name +
                        "' left the plan failing verification:\n" +
                        format_diagnostics(verify));
  }
  report.passes.push_back(std::move(result));
}

}  // namespace

OptimizeReport optimize_plan(ExecutionPlan& plan,
                             const OptimizeOptions& options) {
  OptimizeReport report;
  if (options.fuse_epilogue) {
    run_pass(plan, report, "fuse-epilogue", pass_fuse_epilogue);
  }
  if (options.propagate_codes) {
    run_pass(plan, report, "propagate-codes", pass_propagate_codes);
  }
  if (options.replan_arena) {
    run_pass(plan, report, "replan-arena", pass_replan_arena);
  }
  return report;
}

}  // namespace cq::deploy
