#include <cstddef>
#include <vector>

#include "deploy/arena.h"
#include "deploy/passes/passes.h"

namespace cq::deploy {

std::size_t pass_replan_arena(ExecutionPlan& plan) {
  PlanRewriter rw(plan);
  std::vector<PlanOp>& ops = rw.ops();
  std::vector<PlanSlot>& slots = rw.slots();
  const std::size_t before = slots.size();

  std::vector<char> used(slots.size(), 0);
  const auto mark = [&](int slot) {
    if (slot >= 0 && slot < static_cast<int>(used.size())) {
      used[static_cast<std::size_t>(slot)] = 1;
    }
  };
  mark(rw.input_slot());
  mark(rw.output_slot());
  for (const PlanOp& op : ops) {
    mark(op.in0);
    mark(op.in1);
    mark(op.out);
  }

  // Renumber surviving slots in order; op deletion leaves orphaned slot
  // records behind, and stale intervals would trip arena-bounds once
  // the arena shrinks below them.
  std::vector<int> remap(slots.size(), -1);
  std::vector<PlanSlot> compact;
  compact.reserve(slots.size());
  for (std::size_t s = 0; s < slots.size(); ++s) {
    if (used[s] == 0) continue;
    remap[s] = static_cast<int>(compact.size());
    compact.push_back(slots[s]);
  }
  const auto renumber = [&](int& slot) {
    if (slot >= 0 && slot < static_cast<int>(remap.size())) {
      slot = remap[static_cast<std::size_t>(slot)];
    }
  };
  for (PlanOp& op : ops) {
    renumber(op.in0);
    renumber(op.in1);
    renumber(op.out);
  }
  renumber(rw.input_slot());
  renumber(rw.output_slot());
  slots = std::move(compact);

  rw.arena_floats() =
      plan_arena(ops, slots, rw.input_slot(), rw.output_slot());
  return before - slots.size();
}

}  // namespace cq::deploy
