#pragma once

// Runtime CPU capability detection and SIMD-tier resolution for
// deploy::SimdBackend — the "one binary runs everywhere" half of the
// explicit-SIMD story. Kernels compiled for a specific ISA (AVX2 via
// the GCC/clang `target` attribute) may only be *called* after this
// module has proven at runtime that the CPU executes them; everything
// below AVX2 lands on the GCC-vector-extension portable kernels, and
// CQ_SIMD=off retires the explicit kernels entirely.

#include <string>

namespace cq::deploy {

/// What the CPU we are running on actually supports, probed once via
/// CPUID (through __builtin_cpu_supports) and cached for the process.
struct CpuFeatures {
  bool x86 = false;       ///< compiled for x86/x86-64 at all
  bool sse42 = false;
  bool avx = false;
  bool avx2 = false;
  bool fma = false;       ///< detected but never used on the integer
                          ///  byte-identity paths (FMA changes rounding)
  bool avx512bw = false;  ///< reported for telemetry; no kernels yet
};

/// The cached probe (first call runs CPUID; later calls are free).
const CpuFeatures& cpu_features();

/// Execution tiers of the explicit-SIMD backend, ordered by
/// capability. Scalar = explicit SIMD off (delegate to the blocked /
/// scalar kernels); Portable = kernels legal on every CPU the binary
/// runs on without a runtime check (baseline-SSE2 pmaddwd on x86-64,
/// GCC vector extensions elsewhere); Avx2 = hand-scheduled AVX2
/// intrinsic kernels, legal only when cpu_features().avx2.
enum class SimdTier { kScalar = 0, kPortable = 1, kAvx2 = 2 };

/// Stable lowercase tier name: "scalar", "portable", "avx2".
const char* simd_tier_name(SimdTier tier);

/// Highest tier this CPU can execute (never consults overrides):
/// kAvx2 when CPUID reports AVX2, else kPortable. This is the
/// "runtime dispatch" decision — the same binary resolves differently
/// on different machines.
SimdTier max_supported_simd_tier();

/// The tier SimdBackend instances constructed *now* will use:
/// min(max_supported, requested), where requested comes from the
/// forced override (tests) if set, else the CQ_SIMD environment
/// variable ("off"/"scalar", "portable", "avx2", "auto"/unset), else
/// the maximum. Unrecognized CQ_SIMD values fall back to "auto" so a
/// typo degrades to the fastest correct tier instead of crashing.
SimdTier resolve_simd_tier();

/// Test hook: pin resolve_simd_tier() to `tier` (clamped to what the
/// CPU supports) until clear_forced_simd_tier(). Lets the identity
/// suite prove every reachable tier byte-exact on one machine.
void force_simd_tier(SimdTier tier);
void clear_forced_simd_tier();

/// One-line JSON object for bench artifacts, e.g.
///   {"arch": "x86_64", "sse42": true, "avx2": true,
///    "avx512bw": false, "tier": "avx2"}
/// "tier" is resolve_simd_tier() at call time, so a CQ_SIMD override
/// in force during a measurement is recorded next to the numbers.
std::string cpu_features_json();

}  // namespace cq::deploy
