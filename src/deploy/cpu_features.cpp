#include "deploy/cpu_features.h"

#include <atomic>
#include <cstdlib>
#include <string>

namespace cq::deploy {

namespace {

CpuFeatures probe() {
  CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
  f.x86 = true;
  // __builtin_cpu_supports reads the CPUID-derived feature words the
  // runtime populated before main(); each call is a cheap bit test.
  f.sse42 = __builtin_cpu_supports("sse4.2") != 0;
  f.avx = __builtin_cpu_supports("avx") != 0;
  f.avx2 = __builtin_cpu_supports("avx2") != 0;
  f.fma = __builtin_cpu_supports("fma") != 0;
  f.avx512bw = __builtin_cpu_supports("avx512bw") != 0;
#endif
  return f;
}

/// Forced tier for tests: -1 = none, else static_cast<int>(SimdTier).
std::atomic<int> g_forced_tier{-1};

/// The CQ_SIMD request, read fresh per resolve (construction-time
/// only, never on a serving hot path): kAvx2 doubles as "auto" and is
/// clamped by max_supported_simd_tier() below.
SimdTier env_requested_tier() {
  const char* env = std::getenv("CQ_SIMD");
  if (env == nullptr) return SimdTier::kAvx2;
  const std::string v(env);
  if (v == "off" || v == "scalar") return SimdTier::kScalar;
  if (v == "portable") return SimdTier::kPortable;
  return SimdTier::kAvx2;  // "avx2", "auto", or a typo: fastest correct tier
}

}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures features = probe();
  return features;
}

const char* simd_tier_name(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return "scalar";
    case SimdTier::kPortable:
      return "portable";
    case SimdTier::kAvx2:
      return "avx2";
  }
  return "?";
}

SimdTier max_supported_simd_tier() {
  // The portable kernels are plain GNU-C vector code compiled for the
  // build's baseline arch, so they run wherever the binary does; only
  // the intrinsic tiers need a CPUID license.
  return cpu_features().avx2 ? SimdTier::kAvx2 : SimdTier::kPortable;
}

SimdTier resolve_simd_tier() {
  const int forced = g_forced_tier.load(std::memory_order_acquire);
  const SimdTier requested =
      forced >= 0 ? static_cast<SimdTier>(forced) : env_requested_tier();
  const SimdTier supported = max_supported_simd_tier();
  return requested < supported ? requested : supported;
}

void force_simd_tier(SimdTier tier) {
  g_forced_tier.store(static_cast<int>(tier), std::memory_order_release);
}

void clear_forced_simd_tier() {
  g_forced_tier.store(-1, std::memory_order_release);
}

std::string cpu_features_json() {
  const CpuFeatures& f = cpu_features();
  const auto b = [](bool v) { return v ? "true" : "false"; };
  std::string json = "{\"arch\": \"";
  json += f.x86 ? "x86_64" : "other";
  json += "\", \"sse42\": ";
  json += b(f.sse42);
  json += ", \"avx\": ";
  json += b(f.avx);
  json += ", \"avx2\": ";
  json += b(f.avx2);
  json += ", \"avx512bw\": ";
  json += b(f.avx512bw);
  json += ", \"tier\": \"";
  json += simd_tier_name(resolve_simd_tier());
  json += "\"}";
  return json;
}

}  // namespace cq::deploy
