// Explicit-SIMD integer backend.
//
// The blocked kernels rely on the compiler autovectorizing their int32
// fast path at the build's baseline ISA (SSE2 for x86-64). This
// backend spends the instructions by hand where it pays: the conv MAC
// tile and the linear panel sweep run as AVX2 intrinsic kernels —
// _mm256_madd_epi16 over pair-interleaved int16 panels, or
// _mm256_maddubs_epi16 over quad-interleaved int8 panels when the
// shared overflow bound (deploy/overflow.h) proves the instruction's
// saturating intermediate unreachable — and, below AVX2, as the
// portable tier: on x86-64 the same pair-layout MAC built from
// baseline-SSE2 pmaddwd (part of the ABI, legal on every x86-64 CPU
// without a runtime check), GCC-vector-extension kernels elsewhere.
// Which tier runs is decided by runtime CPUID
// (deploy/cpu_features.h), so one binary serves every x86.
//
// Byte identity is inherited, not re-argued: integer accumulation
// below the proven bound is exact in any width and any order, the
// final rescale uses the scalar kernel's exact float expressions
// (multiply then add — never FMA, which rounds differently), and the
// fused tail goes through the shared apply_epilogue. Anything the
// SIMD layouts cannot hold exactly delegates to the blocked/scalar
// kernels.

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

#include "deploy/backend.h"
#include "deploy/overflow.h"
#include "quant/uniform.h"
#include "tensor/ops.h"

#if defined(__x86_64__) || defined(__i386__)
#define CQ_SIMD_X86 1
#include <immintrin.h>
#else
#define CQ_SIMD_X86 0
#endif

// SSE2 is part of the x86-64 psABI baseline: its intrinsics compile
// and run without a `target` attribute or a CPUID check, so the
// portable tier can use pmaddwd there. 32-bit x86 does not guarantee
// SSE2, and other architectures get the vector-extension kernels.
#if defined(__x86_64__)
#define CQ_SIMD_SSE2_BASELINE 1
#else
#define CQ_SIMD_SSE2_BASELINE 0
#endif

namespace cq::deploy {
namespace simd {

using blocked::kFilterTile;

static_assert(kFilterTile == 8,
              "SIMD kernels assume 8-filter panels: one ymm of int32 lanes");

PackedSimd pack_simd(const IntegerLayer& layer) {
  PackedSimd packed;
  packed.num_filters = layer.num_filters;
  packed.weights_per_filter = layer.weights_per_filter;
  for (const std::uint8_t b : layer.filter_bits) {
    // Centered doubled codes span [-(levels-1), levels-1]; above 15
    // bits they overflow the int16 panels, and the layer stays on the
    // blocked/scalar kernels (same cutoff as blocked::pack_codes).
    if (b > 15) return packed;
  }
  packed.usable = true;
  packed.max_abs_weight = max_abs_centered_code(layer);
  packed.int8_usable = packed.max_abs_weight <= 127;

  const std::size_t filters = static_cast<std::size_t>(layer.num_filters);
  const std::size_t patch = static_cast<std::size_t>(layer.weights_per_filter);
  const std::size_t tiles = (filters + kFilterTile - 1) / kFilterTile;
  const std::size_t pairs = (patch + 1) / 2;
  const std::size_t quads = (patch + 3) / 4;
  // Tail lanes (filters % tile) and tail reduction slots (patch % 2/4)
  // stay zero: the kernels sweep full tiles and full pairs/quads, and
  // the extra slots accumulate exact zeros.
  packed.lane_panels.assign(tiles * patch * kFilterTile, 0);
  packed.pair_panels.assign(tiles * pairs * kFilterTile * 2, 0);
  if (packed.int8_usable) {
    packed.quad_panels.assign(tiles * quads * kFilterTile * 4, 0);
  }
  packed.weight_scales.resize(filters);
  packed.out_bias.resize(filters);
  for (std::size_t k = 0; k < filters; ++k) {
    const int b = layer.filter_bits[k];
    packed.weight_scales[k] = layer.weight_scale(static_cast<int>(k));  // 0 if pruned
    packed.out_bias[k] = b == 0 ? 0.0f : layer.bias[k];
    if (b == 0) continue;  // pruned: zero panel rows, zero scale/bias
    const std::int32_t offset =
        static_cast<std::int32_t>(quant::levels_for_bits(b)) - 1;
    const std::int32_t* row = layer.codes.data() + k * patch;
    const std::size_t t = k / kFilterTile;
    const std::size_t lane = k % kFilterTile;
    std::int16_t* lane_panel = packed.lane_panels.data() + t * patch * kFilterTile;
    std::int16_t* pair_panel =
        packed.pair_panels.data() + t * pairs * kFilterTile * 2;
    std::int8_t* quad_panel =
        packed.int8_usable ? packed.quad_panels.data() + t * quads * kFilterTile * 4
                           : nullptr;
    for (std::size_t j = 0; j < patch; ++j) {
      const std::int32_t centered = 2 * row[j] - offset;
      lane_panel[j * kFilterTile + lane] = static_cast<std::int16_t>(centered);
      pair_panel[((j / 2) * kFilterTile + lane) * 2 + (j % 2)] =
          static_cast<std::int16_t>(centered);
      if (quad_panel != nullptr) {
        quad_panel[((j / 4) * kFilterTile + lane) * 4 + (j % 4)] =
            static_cast<std::int8_t>(centered);
      }
    }
  }
  return packed;
}

namespace {

/// Samples per weight-panel sweep of the linear kernels (matches the
/// blocked kernel's amortization of weight traffic over the batch).
inline constexpr int kBatchBlock = 4;

void check_packed(const PackedSimd& packed, SimdTier tier, const char* kernel) {
  if (!packed.usable) {
    throw std::logic_error(std::string(kernel) +
                           ": layer is not packable (use the scalar kernels)");
  }
  if (tier == SimdTier::kScalar) {
    throw std::logic_error(std::string(kernel) +
                           ": tier 'scalar' disables the explicit-SIMD kernels "
                           "(use the blocked or scalar kernels)");
  }
}

void check_fits_int32(const PackedSimd& packed, const ActCodes& acts,
                      std::size_t terms, const char* kernel) {
  if (!int_reduction_fits_int32(packed.max_abs_weight, acts.bits,
                                static_cast<std::int64_t>(terms))) {
    throw std::logic_error(std::string(kernel) +
                           ": reduction is not certified for the int32 "
                           "accumulator (use the blocked kernels)");
  }
}

/// Rewrites one image's im2col matrix [patch][spatial] into the
/// pair-interleaved int16 layout [pairs][spatial][2] the madd_epi16
/// conv kernel consumes. A missing odd row is written as zeros (exact:
/// 0 * anything = 0). Codes are non-negative and the caller proved
/// acts.bits <= 15, so the int16 narrowing is value-preserving.
void build_pair_cols(const std::int32_t* cols, std::size_t patch,
                     std::size_t spatial, std::int16_t* cols16,
                     const util::ExecContext& exec) {
  const std::size_t pairs = (patch + 1) / 2;
  exec.parallel_for(0, static_cast<std::int64_t>(pairs),
                    [=](std::int64_t p0, std::int64_t p1) {
    for (std::int64_t p = p0; p < p1; ++p) {
      const std::size_t j0 = static_cast<std::size_t>(p) * 2;
      const std::int32_t* r0 = cols + j0 * spatial;
      const std::int32_t* r1 = j0 + 1 < patch ? r0 + spatial : nullptr;
      std::int16_t* dst = cols16 + static_cast<std::size_t>(p) * spatial * 2;
      for (std::size_t s = 0; s < spatial; ++s) {
        dst[s * 2] = static_cast<std::int16_t>(r0[s]);
        dst[s * 2 + 1] = r1 != nullptr ? static_cast<std::int16_t>(r1[s]) : 0;
      }
    }
  });
}

/// Same rewrite into the quad-interleaved uint8 layout [quads][spatial][4]
/// for the maddubs path; the caller proved acts.bits <= 8.
void build_quad_cols(const std::int32_t* cols, std::size_t patch,
                     std::size_t spatial, std::uint8_t* cols8,
                     const util::ExecContext& exec) {
  const std::size_t quads = (patch + 3) / 4;
  exec.parallel_for(0, static_cast<std::int64_t>(quads),
                    [=](std::int64_t q0, std::int64_t q1) {
    for (std::int64_t q = q0; q < q1; ++q) {
      const std::size_t j0 = static_cast<std::size_t>(q) * 4;
      std::uint8_t* dst = cols8 + static_cast<std::size_t>(q) * spatial * 4;
      for (std::size_t s = 0; s < spatial; ++s) {
        for (std::size_t r = 0; r < 4; ++r) {
          dst[s * 4 + r] =
              j0 + r < patch
                  ? static_cast<std::uint8_t>(cols[(j0 + r) * spatial + s])
                  : 0;
        }
      }
    }
  });
}

// ---------------------------------------------------------------------------
// Portable tier, generic flavor: GNU C vector extensions, compiled at
// the build's baseline ISA so the kernels are legal wherever the
// binary runs. On x86-64 the portable tier instead uses the
// baseline-SSE2 pmaddwd kernels further down (the psABI guarantees
// SSE2, and emulated int32 vector multiplies make these generic
// kernels lose to the blocked backend there); these remain the
// portable implementation for non-x86 builds and for 16-bit
// activation codes, which don't fit the int16 pair layout.
// ---------------------------------------------------------------------------

typedef std::int32_t Vec8i __attribute__((vector_size(32), aligned(4)));
typedef float Vec8f __attribute__((vector_size(32), aligned(4)));
typedef std::int16_t Vec8s __attribute__((vector_size(16), aligned(2)));

/// Conv MAC over one image, filter tiles [t0, t1): 8 output positions
/// per vector accumulator, weights read as scalars from the lane
/// panels and broadcast.
void conv_tiles_portable(const PackedSimd& packed, float act_scale,
                         const std::int32_t* cols, std::size_t patch,
                         std::size_t spatial, float* out_n, std::int64_t t0,
                         std::int64_t t1) {
  const std::size_t filters = static_cast<std::size_t>(packed.num_filters);
  for (std::int64_t t = t0; t < t1; ++t) {
    const std::int16_t* panel =
        packed.lane_panels.data() + static_cast<std::size_t>(t) * patch * kFilterTile;
    const std::size_t k0 = static_cast<std::size_t>(t) * kFilterTile;
    const int kt = static_cast<int>(std::min<std::size_t>(kFilterTile, filters - k0));
    std::size_t s = 0;
    for (; s + 8 <= spatial; s += 8) {
      Vec8i acc[kFilterTile] = {};
      for (std::size_t j = 0; j < patch; ++j) {
        Vec8i a;
        std::memcpy(&a, cols + j * spatial + s, sizeof(a));
        const std::int16_t* w = panel + j * kFilterTile;
        for (int f = 0; f < kFilterTile; ++f) {
          const std::int32_t wv = w[f];
          if (wv == 0) continue;  // exact: pruned lanes add nothing
          acc[f] += a * wv;
        }
      }
      for (int f = 0; f < kt; ++f) {
        const std::size_t k = k0 + static_cast<std::size_t>(f);
        const float scale = packed.weight_scales[k] * act_scale;
        const Vec8f o = __builtin_convertvector(acc[f], Vec8f) * scale +
                        packed.out_bias[k];
        std::memcpy(out_n + k * spatial + s, &o, sizeof(o));
      }
    }
    for (; s < spatial; ++s) {  // spatial tail: scalar, same int32 sums
      for (int f = 0; f < kt; ++f) {
        std::int32_t acc = 0;
        for (std::size_t j = 0; j < patch; ++j) {
          acc += static_cast<std::int32_t>(panel[j * kFilterTile + f]) *
                 cols[j * spatial + s];
        }
        const std::size_t k = k0 + static_cast<std::size_t>(f);
        const float scale = packed.weight_scales[k] * act_scale;
        out_n[k * spatial + s] =
            scale * static_cast<float>(acc) + packed.out_bias[k];
      }
    }
  }
}

/// Linear MAC, filter tiles [t0, t1): the int16 lane panel row is
/// widened to a full int32 vector once and multiplied into
/// kBatchBlock samples' 8-wide accumulators.
void linear_tiles_portable(const PackedSimd& packed, const ActCodes& acts,
                           int batch, std::size_t features, float* out,
                           std::int64_t t0, std::int64_t t1) {
  const std::size_t filters = static_cast<std::size_t>(packed.num_filters);
  for (std::int64_t t = t0; t < t1; ++t) {
    const std::int16_t* panel =
        packed.lane_panels.data() +
        static_cast<std::size_t>(t) * features * kFilterTile;
    const std::size_t k0 = static_cast<std::size_t>(t) * kFilterTile;
    const int kt = static_cast<int>(std::min<std::size_t>(kFilterTile, filters - k0));
    for (int n0 = 0; n0 < batch; n0 += kBatchBlock) {
      const int nb = std::min(kBatchBlock, batch - n0);
      const std::int32_t* a =
          acts.codes.data() + static_cast<std::size_t>(n0) * features;
      Vec8i acc[kBatchBlock] = {};
      for (std::size_t j = 0; j < features; ++j) {
        Vec8s ws;
        std::memcpy(&ws, panel + j * kFilterTile, sizeof(ws));
        const Vec8i w = __builtin_convertvector(ws, Vec8i);
        for (int b = 0; b < nb; ++b) {
          const std::int32_t av = a[static_cast<std::size_t>(b) * features + j];
          if (av == 0) continue;  // exact: zero codes add nothing
          acc[b] += w * av;
        }
      }
      for (int b = 0; b < nb; ++b) {
        float* row = out + static_cast<std::size_t>(n0 + b) * filters;
        for (int f = 0; f < kt; ++f) {
          const std::size_t k = k0 + static_cast<std::size_t>(f);
          const float scale = packed.weight_scales[k] * acts.scale;
          row[k] = scale * static_cast<float>(acc[b][f]) + packed.out_bias[k];
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// AVX2 tier: intrinsic kernels compiled with the `target` attribute so
// the translation unit builds at the baseline ISA; they are only
// called after runtime CPUID proved AVX2 (deploy/cpu_features.h).
// No FMA anywhere on these paths: the rescale is cvtepi32_ps, mul_ps,
// add_ps — bit-identical to the scalar expression's two roundings.
// ---------------------------------------------------------------------------

#if CQ_SIMD_X86

/// Conv MAC over pair-interleaved int16 codes: one madd_epi16 per
/// (pair, filter) computes w[j]*a[j] + w[j+1]*a[j+1] for 8 output
/// positions at once.
__attribute__((target("avx2"))) void conv_tiles_avx2_i16(
    const PackedSimd& packed, float act_scale, const std::int16_t* cols16,
    std::size_t pairs, std::size_t spatial, float* out_n, std::int64_t t0,
    std::int64_t t1) {
  const std::size_t filters = static_cast<std::size_t>(packed.num_filters);
  for (std::int64_t t = t0; t < t1; ++t) {
    const std::int16_t* panel =
        packed.pair_panels.data() +
        static_cast<std::size_t>(t) * pairs * kFilterTile * 2;
    const std::size_t k0 = static_cast<std::size_t>(t) * kFilterTile;
    const int kt = static_cast<int>(std::min<std::size_t>(kFilterTile, filters - k0));
    std::size_t s = 0;
    for (; s + 8 <= spatial; s += 8) {
      __m256i acc[kFilterTile];
      for (auto& v : acc) v = _mm256_setzero_si256();
      for (std::size_t p = 0; p < pairs; ++p) {
        const __m256i a = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(cols16 + (p * spatial + s) * 2));
        const std::int16_t* w = panel + p * kFilterTile * 2;
        for (int f = 0; f < kFilterTile; ++f) {
          std::uint32_t wpair;
          std::memcpy(&wpair, w + f * 2, sizeof(wpair));
          if (wpair == 0) continue;  // exact: pruned pairs add nothing
          const __m256i wv = _mm256_set1_epi32(static_cast<std::int32_t>(wpair));
          acc[f] = _mm256_add_epi32(acc[f], _mm256_madd_epi16(a, wv));
        }
      }
      for (int f = 0; f < kt; ++f) {
        const std::size_t k = k0 + static_cast<std::size_t>(f);
        const float scale = packed.weight_scales[k] * act_scale;
        const __m256 o = _mm256_add_ps(
            _mm256_mul_ps(_mm256_cvtepi32_ps(acc[f]), _mm256_set1_ps(scale)),
            _mm256_set1_ps(packed.out_bias[k]));
        _mm256_storeu_ps(out_n + k * spatial + s, o);
      }
    }
    for (; s < spatial; ++s) {  // spatial tail: scalar over the pair layout
      for (int f = 0; f < kt; ++f) {
        std::int32_t acc = 0;
        for (std::size_t p = 0; p < pairs; ++p) {
          const std::int16_t* w = panel + (p * kFilterTile + static_cast<std::size_t>(f)) * 2;
          const std::int16_t* a = cols16 + (p * spatial + s) * 2;
          acc += static_cast<std::int32_t>(w[0]) * a[0] +
                 static_cast<std::int32_t>(w[1]) * a[1];
        }
        const std::size_t k = k0 + static_cast<std::size_t>(f);
        const float scale = packed.weight_scales[k] * act_scale;
        out_n[k * spatial + s] =
            scale * static_cast<float>(acc) + packed.out_bias[k];
      }
    }
  }
}

/// Conv MAC over quad-interleaved uint8 codes: maddubs_epi16 forms the
/// two adjacent-pair sums (proven below int16 saturation by
/// int_reduction_fits_int8_madd), madd_epi16 against 1 widens and
/// adds them — a full weight quad per instruction pair, 8 positions
/// wide.
__attribute__((target("avx2"))) void conv_tiles_avx2_i8(
    const PackedSimd& packed, float act_scale, const std::uint8_t* cols8,
    std::size_t quads, std::size_t spatial, float* out_n, std::int64_t t0,
    std::int64_t t1) {
  const std::size_t filters = static_cast<std::size_t>(packed.num_filters);
  const __m256i ones = _mm256_set1_epi16(1);
  for (std::int64_t t = t0; t < t1; ++t) {
    const std::int8_t* panel =
        packed.quad_panels.data() +
        static_cast<std::size_t>(t) * quads * kFilterTile * 4;
    const std::size_t k0 = static_cast<std::size_t>(t) * kFilterTile;
    const int kt = static_cast<int>(std::min<std::size_t>(kFilterTile, filters - k0));
    std::size_t s = 0;
    for (; s + 8 <= spatial; s += 8) {
      __m256i acc[kFilterTile];
      for (auto& v : acc) v = _mm256_setzero_si256();
      for (std::size_t q = 0; q < quads; ++q) {
        const __m256i a = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(cols8 + (q * spatial + s) * 4));
        const std::int8_t* w = panel + q * kFilterTile * 4;
        for (int f = 0; f < kFilterTile; ++f) {
          std::uint32_t wquad;
          std::memcpy(&wquad, w + f * 4, sizeof(wquad));
          if (wquad == 0) continue;  // exact: pruned quads add nothing
          const __m256i wv = _mm256_set1_epi32(static_cast<std::int32_t>(wquad));
          const __m256i prod = _mm256_maddubs_epi16(a, wv);  // u8 acts x s8 weights
          acc[f] = _mm256_add_epi32(acc[f], _mm256_madd_epi16(prod, ones));
        }
      }
      for (int f = 0; f < kt; ++f) {
        const std::size_t k = k0 + static_cast<std::size_t>(f);
        const float scale = packed.weight_scales[k] * act_scale;
        const __m256 o = _mm256_add_ps(
            _mm256_mul_ps(_mm256_cvtepi32_ps(acc[f]), _mm256_set1_ps(scale)),
            _mm256_set1_ps(packed.out_bias[k]));
        _mm256_storeu_ps(out_n + k * spatial + s, o);
      }
    }
    for (; s < spatial; ++s) {  // spatial tail: scalar over the quad layout
      for (int f = 0; f < kt; ++f) {
        std::int32_t acc = 0;
        for (std::size_t q = 0; q < quads; ++q) {
          const std::int8_t* w = panel + (q * kFilterTile + static_cast<std::size_t>(f)) * 4;
          const std::uint8_t* a = cols8 + (q * spatial + s) * 4;
          for (std::size_t r = 0; r < 4; ++r) {
            acc += static_cast<std::int32_t>(w[r]) * a[r];
          }
        }
        const std::size_t k = k0 + static_cast<std::size_t>(f);
        const float scale = packed.weight_scales[k] * act_scale;
        out_n[k * spatial + s] =
            scale * static_cast<float>(acc) + packed.out_bias[k];
      }
    }
  }
}

/// Linear MAC over pair-interleaved int16 activations: per pair, one
/// 32-byte panel row (8 filters x 1 pair) is multiplied against each
/// sample's broadcast activation pair.
__attribute__((target("avx2"))) void linear_tiles_avx2_i16(
    const PackedSimd& packed, const ActCodes& acts, const std::int16_t* acts16,
    int batch, std::size_t pairs, float* out, std::int64_t t0, std::int64_t t1) {
  const std::size_t filters = static_cast<std::size_t>(packed.num_filters);
  const std::size_t padded = pairs * 2;
  for (std::int64_t t = t0; t < t1; ++t) {
    const std::int16_t* panel =
        packed.pair_panels.data() +
        static_cast<std::size_t>(t) * pairs * kFilterTile * 2;
    const std::size_t k0 = static_cast<std::size_t>(t) * kFilterTile;
    const int kt = static_cast<int>(std::min<std::size_t>(kFilterTile, filters - k0));
    for (int n0 = 0; n0 < batch; n0 += kBatchBlock) {
      const int nb = std::min(kBatchBlock, batch - n0);
      __m256i acc[kBatchBlock];
      for (auto& v : acc) v = _mm256_setzero_si256();
      for (std::size_t p = 0; p < pairs; ++p) {
        const __m256i w = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(panel + p * kFilterTile * 2));
        for (int b = 0; b < nb; ++b) {
          std::uint32_t apair;
          std::memcpy(&apair,
                      acts16 + static_cast<std::size_t>(n0 + b) * padded + p * 2,
                      sizeof(apair));
          if (apair == 0) continue;  // exact: zero codes add nothing
          const __m256i av = _mm256_set1_epi32(static_cast<std::int32_t>(apair));
          acc[b] = _mm256_add_epi32(acc[b], _mm256_madd_epi16(av, w));
        }
      }
      for (int b = 0; b < nb; ++b) {
        float* row = out + static_cast<std::size_t>(n0 + b) * filters;
        if (kt == kFilterTile) {
          const __m256 vscale =
              _mm256_mul_ps(_mm256_loadu_ps(packed.weight_scales.data() + k0),
                            _mm256_set1_ps(acts.scale));
          const __m256 o = _mm256_add_ps(
              _mm256_mul_ps(_mm256_cvtepi32_ps(acc[b]), vscale),
              _mm256_loadu_ps(packed.out_bias.data() + k0));
          _mm256_storeu_ps(row + k0, o);
        } else {
          alignas(32) std::int32_t tmp[kFilterTile];
          _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), acc[b]);
          for (int f = 0; f < kt; ++f) {
            const std::size_t k = k0 + static_cast<std::size_t>(f);
            const float scale = packed.weight_scales[k] * acts.scale;
            row[k] = scale * static_cast<float>(tmp[f]) + packed.out_bias[k];
          }
        }
      }
    }
  }
}

/// Linear MAC over quad-interleaved uint8 activations via maddubs.
__attribute__((target("avx2"))) void linear_tiles_avx2_i8(
    const PackedSimd& packed, const ActCodes& acts, const std::uint8_t* acts8,
    int batch, std::size_t quads, float* out, std::int64_t t0, std::int64_t t1) {
  const std::size_t filters = static_cast<std::size_t>(packed.num_filters);
  const std::size_t padded = quads * 4;
  const __m256i ones = _mm256_set1_epi16(1);
  for (std::int64_t t = t0; t < t1; ++t) {
    const std::int8_t* panel =
        packed.quad_panels.data() +
        static_cast<std::size_t>(t) * quads * kFilterTile * 4;
    const std::size_t k0 = static_cast<std::size_t>(t) * kFilterTile;
    const int kt = static_cast<int>(std::min<std::size_t>(kFilterTile, filters - k0));
    for (int n0 = 0; n0 < batch; n0 += kBatchBlock) {
      const int nb = std::min(kBatchBlock, batch - n0);
      __m256i acc[kBatchBlock];
      for (auto& v : acc) v = _mm256_setzero_si256();
      for (std::size_t q = 0; q < quads; ++q) {
        const __m256i w = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(panel + q * kFilterTile * 4));
        for (int b = 0; b < nb; ++b) {
          std::uint32_t aquad;
          std::memcpy(&aquad,
                      acts8 + static_cast<std::size_t>(n0 + b) * padded + q * 4,
                      sizeof(aquad));
          if (aquad == 0) continue;  // exact: zero codes add nothing
          const __m256i av = _mm256_set1_epi32(static_cast<std::int32_t>(aquad));
          const __m256i prod = _mm256_maddubs_epi16(av, w);  // u8 acts x s8 weights
          acc[b] = _mm256_add_epi32(acc[b], _mm256_madd_epi16(prod, ones));
        }
      }
      for (int b = 0; b < nb; ++b) {
        float* row = out + static_cast<std::size_t>(n0 + b) * filters;
        if (kt == kFilterTile) {
          const __m256 vscale =
              _mm256_mul_ps(_mm256_loadu_ps(packed.weight_scales.data() + k0),
                            _mm256_set1_ps(acts.scale));
          const __m256 o = _mm256_add_ps(
              _mm256_mul_ps(_mm256_cvtepi32_ps(acc[b]), vscale),
              _mm256_loadu_ps(packed.out_bias.data() + k0));
          _mm256_storeu_ps(row + k0, o);
        } else {
          alignas(32) std::int32_t tmp[kFilterTile];
          _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), acc[b]);
          for (int f = 0; f < kt; ++f) {
            const std::size_t k = k0 + static_cast<std::size_t>(f);
            const float scale = packed.weight_scales[k] * acts.scale;
            row[k] = scale * static_cast<float>(tmp[f]) + packed.out_bias[k];
          }
        }
      }
    }
  }
}

/// Narrows the [batch][features] activation code matrix to int16,
/// zero-padding each row to the pair boundary.
void build_pair_acts(const ActCodes& acts, int batch, std::size_t features,
                     std::int16_t* acts16, const util::ExecContext& exec) {
  const std::size_t padded = ((features + 1) / 2) * 2;
  exec.parallel_for(0, batch, [=, &acts](std::int64_t n0, std::int64_t n1) {
    for (std::int64_t n = n0; n < n1; ++n) {
      const std::int32_t* src =
          acts.codes.data() + static_cast<std::size_t>(n) * features;
      std::int16_t* dst = acts16 + static_cast<std::size_t>(n) * padded;
      for (std::size_t j = 0; j < features; ++j) {
        dst[j] = static_cast<std::int16_t>(src[j]);
      }
      for (std::size_t j = features; j < padded; ++j) dst[j] = 0;
    }
  });
}

/// Same, to uint8 at the quad boundary.
void build_quad_acts(const ActCodes& acts, int batch, std::size_t features,
                     std::uint8_t* acts8, const util::ExecContext& exec) {
  const std::size_t padded = ((features + 3) / 4) * 4;
  exec.parallel_for(0, batch, [=, &acts](std::int64_t n0, std::int64_t n1) {
    for (std::int64_t n = n0; n < n1; ++n) {
      const std::int32_t* src =
          acts.codes.data() + static_cast<std::size_t>(n) * features;
      std::uint8_t* dst = acts8 + static_cast<std::size_t>(n) * padded;
      for (std::size_t j = 0; j < features; ++j) {
        dst[j] = static_cast<std::uint8_t>(src[j]);
      }
      for (std::size_t j = features; j < padded; ++j) dst[j] = 0;
    }
  });
}

#if CQ_SIMD_SSE2_BASELINE

/// Portable-tier conv MAC on x86-64: the avx2_i16 kernel at xmm width.
/// pmaddwd is baseline (x86-64 psABI mandates SSE2), so this runs on
/// every CPU the binary runs on — no runtime check needed. 4 output
/// positions per strip, one madd_epi16 per (pair, filter).
void conv_tiles_sse2_i16(const PackedSimd& packed, float act_scale,
                         const std::int16_t* cols16, std::size_t pairs,
                         std::size_t spatial, float* out_n, std::int64_t t0,
                         std::int64_t t1) {
  const std::size_t filters = static_cast<std::size_t>(packed.num_filters);
  for (std::int64_t t = t0; t < t1; ++t) {
    const std::int16_t* panel =
        packed.pair_panels.data() +
        static_cast<std::size_t>(t) * pairs * kFilterTile * 2;
    const std::size_t k0 = static_cast<std::size_t>(t) * kFilterTile;
    const int kt = static_cast<int>(std::min<std::size_t>(kFilterTile, filters - k0));
    std::size_t s = 0;
    for (; s + 4 <= spatial; s += 4) {
      __m128i acc[kFilterTile];
      for (auto& v : acc) v = _mm_setzero_si128();
      for (std::size_t p = 0; p < pairs; ++p) {
        const __m128i a = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(cols16 + (p * spatial + s) * 2));
        const std::int16_t* w = panel + p * kFilterTile * 2;
        for (int f = 0; f < kFilterTile; ++f) {
          std::uint32_t wpair;
          std::memcpy(&wpair, w + f * 2, sizeof(wpair));
          if (wpair == 0) continue;  // exact: pruned pairs add nothing
          const __m128i wv = _mm_set1_epi32(static_cast<std::int32_t>(wpair));
          acc[f] = _mm_add_epi32(acc[f], _mm_madd_epi16(a, wv));
        }
      }
      for (int f = 0; f < kt; ++f) {
        const std::size_t k = k0 + static_cast<std::size_t>(f);
        const float scale = packed.weight_scales[k] * act_scale;
        const __m128 o =
            _mm_add_ps(_mm_mul_ps(_mm_cvtepi32_ps(acc[f]), _mm_set1_ps(scale)),
                       _mm_set1_ps(packed.out_bias[k]));
        _mm_storeu_ps(out_n + k * spatial + s, o);
      }
    }
    for (; s < spatial; ++s) {  // spatial tail: scalar over the pair layout
      for (int f = 0; f < kt; ++f) {
        std::int32_t acc = 0;
        for (std::size_t p = 0; p < pairs; ++p) {
          const std::int16_t* w = panel + (p * kFilterTile + static_cast<std::size_t>(f)) * 2;
          const std::int16_t* a = cols16 + (p * spatial + s) * 2;
          acc += static_cast<std::int32_t>(w[0]) * a[0] +
                 static_cast<std::int32_t>(w[1]) * a[1];
        }
        const std::size_t k = k0 + static_cast<std::size_t>(f);
        const float scale = packed.weight_scales[k] * act_scale;
        out_n[k * spatial + s] =
            scale * static_cast<float>(acc) + packed.out_bias[k];
      }
    }
  }
}

/// Portable-tier linear MAC on x86-64: per pair, the 8-filter panel
/// row is two xmm loads; each sample's broadcast activation pair
/// feeds both halves' accumulators through pmaddwd.
void linear_tiles_sse2_i16(const PackedSimd& packed, const ActCodes& acts,
                           const std::int16_t* acts16, int batch,
                           std::size_t pairs, float* out, std::int64_t t0,
                           std::int64_t t1) {
  const std::size_t filters = static_cast<std::size_t>(packed.num_filters);
  const std::size_t padded = pairs * 2;
  for (std::int64_t t = t0; t < t1; ++t) {
    const std::int16_t* panel =
        packed.pair_panels.data() +
        static_cast<std::size_t>(t) * pairs * kFilterTile * 2;
    const std::size_t k0 = static_cast<std::size_t>(t) * kFilterTile;
    const int kt = static_cast<int>(std::min<std::size_t>(kFilterTile, filters - k0));
    for (int n0 = 0; n0 < batch; n0 += kBatchBlock) {
      const int nb = std::min(kBatchBlock, batch - n0);
      __m128i acc[kBatchBlock][2];
      for (auto& halves : acc) {
        for (auto& v : halves) v = _mm_setzero_si128();
      }
      for (std::size_t p = 0; p < pairs; ++p) {
        const std::int16_t* w = panel + p * kFilterTile * 2;
        const __m128i w_lo =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(w));
        const __m128i w_hi =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(w + 8));
        for (int b = 0; b < nb; ++b) {
          std::uint32_t apair;
          std::memcpy(&apair,
                      acts16 + static_cast<std::size_t>(n0 + b) * padded + p * 2,
                      sizeof(apair));
          if (apair == 0) continue;  // exact: zero codes add nothing
          const __m128i av = _mm_set1_epi32(static_cast<std::int32_t>(apair));
          acc[b][0] = _mm_add_epi32(acc[b][0], _mm_madd_epi16(av, w_lo));
          acc[b][1] = _mm_add_epi32(acc[b][1], _mm_madd_epi16(av, w_hi));
        }
      }
      for (int b = 0; b < nb; ++b) {
        float* row = out + static_cast<std::size_t>(n0 + b) * filters;
        if (kt == kFilterTile) {
          for (int h = 0; h < 2; ++h) {
            const std::size_t kh = k0 + static_cast<std::size_t>(h) * 4;
            const __m128 vscale =
                _mm_mul_ps(_mm_loadu_ps(packed.weight_scales.data() + kh),
                           _mm_set1_ps(acts.scale));
            const __m128 o = _mm_add_ps(
                _mm_mul_ps(_mm_cvtepi32_ps(acc[b][h]), vscale),
                _mm_loadu_ps(packed.out_bias.data() + kh));
            _mm_storeu_ps(row + kh, o);
          }
        } else {
          alignas(16) std::int32_t tmp[kFilterTile];
          _mm_store_si128(reinterpret_cast<__m128i*>(tmp), acc[b][0]);
          _mm_store_si128(reinterpret_cast<__m128i*>(tmp + 4), acc[b][1]);
          for (int f = 0; f < kt; ++f) {
            const std::size_t k = k0 + static_cast<std::size_t>(f);
            const float scale = packed.weight_scales[k] * acts.scale;
            row[k] = scale * static_cast<float>(tmp[f]) + packed.out_bias[k];
          }
        }
      }
    }
  }
}

#endif  // CQ_SIMD_SSE2_BASELINE

#endif  // CQ_SIMD_X86

}  // namespace

void conv_forward_into(SimdTier tier, const PackedSimd& packed, const ActCodes& acts,
                       int batch, int in_c, int height, int width, int kernel,
                       int stride, int pad, float* out,
                       std::vector<std::int32_t>& cols_scratch,
                       std::vector<std::int16_t>& cols16_scratch,
                       std::vector<std::uint8_t>& cols8_scratch,
                       const util::ExecContext& exec) {
  check_packed(packed, tier, "simd::conv_forward_into");
  if (packed.weights_per_filter !=
      static_cast<std::int64_t>(in_c) * kernel * kernel) {
    throw std::invalid_argument("simd::conv_forward_into: geometry mismatch");
  }
  const std::size_t image =
      static_cast<std::size_t>(in_c) * static_cast<std::size_t>(height) * width;
  if (acts.codes.size() != static_cast<std::size_t>(batch) * image) {
    throw std::invalid_argument(
        "simd::conv_forward_into: activation code count mismatch");
  }
  const int oh = (height + 2 * pad - kernel) / stride + 1;
  const int ow = (width + 2 * pad - kernel) / stride + 1;
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument("simd::conv_forward_into: empty output");
  }
  const std::size_t spatial = static_cast<std::size_t>(oh) * ow;
  const std::size_t patch = static_cast<std::size_t>(packed.weights_per_filter);
  const std::size_t filters = static_cast<std::size_t>(packed.num_filters);
  const std::size_t tiles = (filters + kFilterTile - 1) / kFilterTile;
  check_fits_int32(packed, acts, patch, "simd::conv_forward_into");

  cols_scratch.resize(patch * spatial);
  std::int32_t* const cols_data = cols_scratch.data();
  tensor::ConvGeometry geometry;
  geometry.in_c = in_c;
  geometry.in_h = height;
  geometry.in_w = width;
  geometry.kernel = kernel;
  geometry.stride = stride;
  geometry.pad = pad;

#if CQ_SIMD_X86
  // The same predicates SimdBackend::resolve_path evaluates, so a
  // bench caller hitting these kernels directly lands on the same
  // implementation the dispatch label advertises.
  const bool use_i8 =
      tier == SimdTier::kAvx2 && packed.int8_usable &&
      int_reduction_fits_int8_madd(packed.max_abs_weight, acts.bits,
                                   static_cast<std::int64_t>(patch));
  const bool pair_ok = !use_i8 && acts.bits <= 15;
  const bool use_i16 = tier == SimdTier::kAvx2 && pair_ok;
  // On x86-64 the portable tier rides the same pair layout through
  // baseline-SSE2 pmaddwd; only 16-bit activation codes stay on the
  // vector-extension kernel (they don't fit the int16 layout).
  const bool use_sse2 =
      CQ_SIMD_SSE2_BASELINE != 0 && tier == SimdTier::kPortable && pair_ok;
  const std::size_t pairs = (patch + 1) / 2;
  const std::size_t quads = (patch + 3) / 4;
  if (use_i8) {
    cols8_scratch.resize(quads * spatial * 4);
  } else if (use_i16 || use_sse2) {
    cols16_scratch.resize(pairs * spatial * 2);
  }
#else
  (void)cols16_scratch;
  (void)cols8_scratch;
#endif

  for (int n = 0; n < batch; ++n) {
    const std::int32_t* img = acts.codes.data() + static_cast<std::size_t>(n) * image;
    // Same im2col as the scalar/blocked kernels: the SIMD layouts only
    // change the MAC stage. Zero padding is code 0 = activation 0.0.
    tensor::im2col_any(img, geometry, cols_data, exec);
    float* out_n = out + static_cast<std::size_t>(n) * filters * spatial;
#if CQ_SIMD_X86
    if (use_i8) {
      build_quad_cols(cols_data, patch, spatial, cols8_scratch.data(), exec);
      const std::uint8_t* cols8 = cols8_scratch.data();
      exec.parallel_for(0, static_cast<std::int64_t>(tiles),
                        [&, out_n, cols8](std::int64_t t0, std::int64_t t1) {
        conv_tiles_avx2_i8(packed, acts.scale, cols8, quads, spatial, out_n, t0, t1);
      });
      continue;
    }
    if (use_i16) {
      build_pair_cols(cols_data, patch, spatial, cols16_scratch.data(), exec);
      const std::int16_t* cols16 = cols16_scratch.data();
      exec.parallel_for(0, static_cast<std::int64_t>(tiles),
                        [&, out_n, cols16](std::int64_t t0, std::int64_t t1) {
        conv_tiles_avx2_i16(packed, acts.scale, cols16, pairs, spatial, out_n, t0, t1);
      });
      continue;
    }
#if CQ_SIMD_SSE2_BASELINE
    if (use_sse2) {
      build_pair_cols(cols_data, patch, spatial, cols16_scratch.data(), exec);
      const std::int16_t* cols16 = cols16_scratch.data();
      exec.parallel_for(0, static_cast<std::int64_t>(tiles),
                        [&, out_n, cols16](std::int64_t t0, std::int64_t t1) {
        conv_tiles_sse2_i16(packed, acts.scale, cols16, pairs, spatial, out_n, t0, t1);
      });
      continue;
    }
#endif
#endif
    exec.parallel_for(0, static_cast<std::int64_t>(tiles),
                      [&, out_n](std::int64_t t0, std::int64_t t1) {
      conv_tiles_portable(packed, acts.scale, cols_data, patch, spatial, out_n, t0,
                          t1);
    });
  }
}

void linear_forward_into(SimdTier tier, const PackedSimd& packed, const ActCodes& acts,
                         int batch, int in_features, float* out,
                         std::vector<std::int16_t>& acts16_scratch,
                         std::vector<std::uint8_t>& acts8_scratch,
                         const util::ExecContext& exec) {
  check_packed(packed, tier, "simd::linear_forward_into");
  if (in_features != packed.weights_per_filter) {
    throw std::invalid_argument("simd::linear_forward_into: in_features mismatch");
  }
  if (acts.codes.size() !=
      static_cast<std::size_t>(batch) * static_cast<std::size_t>(in_features)) {
    throw std::invalid_argument(
        "simd::linear_forward_into: activation code count mismatch");
  }
  const std::size_t features = static_cast<std::size_t>(in_features);
  const std::size_t filters = static_cast<std::size_t>(packed.num_filters);
  const std::size_t tiles = (filters + kFilterTile - 1) / kFilterTile;
  check_fits_int32(packed, acts, features, "simd::linear_forward_into");

#if CQ_SIMD_X86
  const bool use_i8 =
      tier == SimdTier::kAvx2 && packed.int8_usable &&
      int_reduction_fits_int8_madd(packed.max_abs_weight, acts.bits,
                                   static_cast<std::int64_t>(features));
  const bool pair_ok = !use_i8 && acts.bits <= 15;
  const bool use_i16 = tier == SimdTier::kAvx2 && pair_ok;
  // Portable tier on x86-64: same pair layout, baseline-SSE2 pmaddwd.
  const bool use_sse2 =
      CQ_SIMD_SSE2_BASELINE != 0 && tier == SimdTier::kPortable && pair_ok;
  if (use_i8) {
    const std::size_t quads = (features + 3) / 4;
    acts8_scratch.resize(static_cast<std::size_t>(batch) * quads * 4);
    build_quad_acts(acts, batch, features, acts8_scratch.data(), exec);
    const std::uint8_t* acts8 = acts8_scratch.data();
    exec.parallel_for(0, static_cast<std::int64_t>(tiles),
                      [&, acts8](std::int64_t t0, std::int64_t t1) {
      linear_tiles_avx2_i8(packed, acts, acts8, batch, quads, out, t0, t1);
    });
    return;
  }
  if (use_i16 || use_sse2) {
    const std::size_t pairs = (features + 1) / 2;
    acts16_scratch.resize(static_cast<std::size_t>(batch) * pairs * 2);
    build_pair_acts(acts, batch, features, acts16_scratch.data(), exec);
    const std::int16_t* acts16 = acts16_scratch.data();
    if (use_i16) {
      exec.parallel_for(0, static_cast<std::int64_t>(tiles),
                        [&, acts16](std::int64_t t0, std::int64_t t1) {
        linear_tiles_avx2_i16(packed, acts, acts16, batch, pairs, out, t0, t1);
      });
      return;
    }
#if CQ_SIMD_SSE2_BASELINE
    exec.parallel_for(0, static_cast<std::int64_t>(tiles),
                      [&, acts16](std::int64_t t0, std::int64_t t1) {
      linear_tiles_sse2_i16(packed, acts, acts16, batch, pairs, out, t0, t1);
    });
    return;
#endif
  }
#else
  (void)acts16_scratch;
  (void)acts8_scratch;
#endif

  exec.parallel_for(0, static_cast<std::int64_t>(tiles),
                    [&](std::int64_t t0, std::int64_t t1) {
    linear_tiles_portable(packed, acts, batch, features, out, t0, t1);
  });
}

}  // namespace simd

void SimdBackend::prepare(const ExecutionPlan& plan) {
  BlockedBackend::prepare(plan);
  packed_.clear();
  packed_.reserve(plan.integer_layers().size());
  for (const IntegerLayer& layer : plan.integer_layers()) {
    packed_.push_back(simd::pack_simd(layer));
  }
  prepared_for_ = &plan;
}

SimdBackend::Path SimdBackend::resolve_path(const PlanOp& op) const {
  if (op.kind != OpKind::IntConv && op.kind != OpKind::IntLinear) {
    return Path::kDelegate;
  }
  if (tier_ == SimdTier::kScalar) return Path::kDelegate;
  const auto layer = static_cast<std::size_t>(op.layer);
  if (layer >= packed_.size() || !packed_[layer].usable) return Path::kDelegate;
  const simd::PackedSimd& packed = packed_[layer];
  const std::int64_t terms = packed.weights_per_filter;
  // Below the int32 bound the blocked kernels' int64 path is already
  // the right tool; explicit SIMD only covers the certified reductions.
  if (!int_reduction_fits_int32(packed.max_abs_weight, op.act_bits, terms)) {
    return Path::kDelegate;
  }
  if (tier_ == SimdTier::kAvx2) {
    if (packed.int8_usable &&
        int_reduction_fits_int8_madd(packed.max_abs_weight, op.act_bits, terms)) {
      return Path::kAvx2Int8;
    }
    // Activation codes above int16 (bits == 16) can't ride the pair
    // layout; the portable kernels read the int32 codes directly.
    if (op.act_bits <= 15) return Path::kAvx2;
    return Path::kPortable;
  }
  return Path::kPortable;
}

void SimdBackend::run(const PlanOp& op, const ExecutionPlan& plan,
                      const BackendIo& io, BackendScratch& scratch,
                      const util::ExecContext& exec) const {
  if (op.kind == OpKind::IntConv || op.kind == OpKind::IntLinear) {
    if (prepared_for_ != &plan) {
      throw std::logic_error("SimdBackend: prepare() was not run for this plan");
    }
    if (resolve_path(op) != Path::kDelegate) {
      const simd::PackedSimd& packed = packed_[static_cast<std::size_t>(op.layer)];
      const std::size_t in_count =
          op.kind == OpKind::IntConv
              ? plan.slots()[static_cast<std::size_t>(op.in0)].numel *
                    static_cast<std::size_t>(io.batch)
              : static_cast<std::size_t>(op.in_features) *
                    static_cast<std::size_t>(io.batch);
      // Same input adoption as the scalar reference: cast pre-encoded
      // grid codes, encode raw activations.
      if (op.in_codes) {
        cast_codes_into(io.in0, in_count, op.act_hi, op.act_bits, scratch.codes,
                        exec);
      } else {
        encode_activations_into(io.in0, in_count, op.act_hi, op.act_bits,
                                scratch.codes, exec);
      }
      if (op.kind == OpKind::IntConv) {
        simd::conv_forward_into(tier_, packed, scratch.codes, io.batch, op.in_c,
                                op.in_h, op.in_w, op.kernel, op.stride, op.pad,
                                io.out, scratch.int_cols, scratch.simd_cols16,
                                scratch.simd_cols8, exec);
      } else {
        simd::linear_forward_into(tier_, packed, scratch.codes, io.batch,
                                  op.in_features, io.out, scratch.simd_cols16,
                                  scratch.simd_cols8, exec);
      }
      apply_epilogue(op, io, plan.slots()[static_cast<std::size_t>(op.out)].numel,
                     exec);
      return;
    }
  }
  BlockedBackend::run(op, plan, io, scratch, exec);
}

const char* SimdBackend::dispatch(const PlanOp& op) const {
  switch (resolve_path(op)) {
    case Path::kAvx2Int8:
      return "simd/avx2-i8";
    case Path::kAvx2:
      return "simd/avx2";
    case Path::kPortable:
      return "simd/portable";
    case Path::kDelegate:
      break;
  }
  return BlockedBackend::dispatch(op);
}

std::size_t SimdBackend::prepared_bytes() const {
  std::size_t bytes = BlockedBackend::prepared_bytes();
  for (const simd::PackedSimd& packed : packed_) {
    bytes += packed.lane_panels.size() * sizeof(std::int16_t) +
             packed.pair_panels.size() * sizeof(std::int16_t) +
             packed.quad_panels.size() * sizeof(std::int8_t) +
             packed.weight_scales.size() * sizeof(float) +
             packed.out_bias.size() * sizeof(float);
  }
  return bytes;
}

}  // namespace cq::deploy
