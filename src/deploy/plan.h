#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "deploy/artifact.h"
#include "deploy/int_engine.h"
#include "tensor/tensor.h"

namespace cq::deploy {

/// Operation kinds of the flat deployment IR. The set is closed over
/// everything the model zoo's inference graphs contain; compile_plan
/// throws ArtifactError on anything it cannot lower.
enum class OpKind {
  EncodeAct,    ///< activation fake-quantizer (places values on the act grid)
  IntConv,      ///< integer-code convolution (encode + integer MACs)
  IntLinear,    ///< integer-code fully-connected layer
  FloatConv,    ///< float im2col+GEMM conv (stem / grid-less fallback)
  FloatLinear,  ///< float GEMM fully-connected layer (output head)
  BatchNorm,    ///< frozen-statistics per-channel affine map
  Relu,
  MaxPool,
  AvgPool,      ///< global average pool [C,H,W] -> [C]
  Flatten,      ///< logical reshape; free when the slots alias
  Add,          ///< residual add: out = in0 + in1 (accumulation order of in0)
};

/// Short stable mnemonic ("int_conv", "relu", ...) for listings.
const char* op_kind_name(OpKind kind);

/// One op of the program. A PlanOp is a plain record: all shapes are
/// per-sample (the batch dimension is the interpreter's runtime
/// parameter), all routing is through slot ids, and the float-path
/// parameters it needs are stored inline so executing an op never
/// touches an nn::Module.
struct PlanOp {
  OpKind kind = OpKind::Relu;
  int in0 = -1;  ///< primary input slot
  int in1 = -1;  ///< second input slot (Add shortcut); -1 otherwise
  int out = -1;  ///< output slot

  // Spatial geometry (conv / pool / batch-norm inputs), per sample.
  int in_c = 0, in_h = 0, in_w = 0;
  int out_c = 0, out_h = 0, out_w = 0;
  int kernel = 0, stride = 0, pad = 0;
  // Fully-connected geometry.
  int in_features = 0, out_features = 0;

  // Integer path: which IntegerLayer to execute and the activation
  // grid its inputs sit on (a compile-time constant of the artifact).
  int layer = -1;        ///< index into ExecutionPlan::integer_layers()
  float act_hi = 0.0f;   ///< activation clip bound (EncodeAct/Int*)
  int act_bits = 0;      ///< activation bit-width (EncodeAct/Int*)

  // Float path: the effective (already fake-quantized when the layer
  // carries bits) weights and bias, exactly as the training-side
  // forward would build them.
  tensor::Tensor weight;     ///< [out, in] row-major
  std::vector<float> bias;   ///< per output filter/feature

  // Frozen batch-norm state, precomputed per channel.
  std::vector<float> bn_mean, bn_inv_std, bn_gamma, bn_beta;

  // Epilogue stage (optimizer-written; the compiler never sets these).
  // A compute op (IntConv/IntLinear/FloatConv/FloatLinear) may carry a
  // fused elementwise tail executed in place on its output, in the
  // fixed order BatchNorm -> Add -> Relu -> encode — exactly the
  // per-element expressions of the standalone ops, so fusion is
  // byte-exact. ep_add reads the residual operand from in1.
  bool ep_bn = false;      ///< fused frozen BatchNorm (bn_* vectors, out_c channels)
  bool ep_add = false;     ///< fused residual add: out[i] += in1[i]
  bool ep_relu = false;    ///< fused max(0, x)
  // Quantized-domain propagation (optimizer-written): ep_encode makes
  // the op emit activation codes on the (out_hi, out_bits) grid as
  // float values (integral, <= 65535 — exactly representable); a
  // consumer with in_codes casts them back instead of re-encoding,
  // which deletes the decode -> EncodeAct round-trip bit-exactly.
  bool ep_encode = false;  ///< quantize output onto (out_hi, out_bits) grid codes
  float out_hi = 0.0f;     ///< output grid clip bound (ep_encode only)
  int out_bits = 0;        ///< output grid bit-width (ep_encode only)
  bool in_codes = false;   ///< in0 already holds grid codes for (act_hi, act_bits)

  std::string label;  ///< originating layer name, for listings
};

/// True when the op kind can carry epilogue fields (a MAC compute op
/// whose backends run the fused tail inside the rescale stage).
inline bool is_compute_op(OpKind kind) {
  return kind == OpKind::IntConv || kind == OpKind::IntLinear ||
         kind == OpKind::FloatConv || kind == OpKind::FloatLinear;
}

/// Compact "+bn+add+relu->codes" suffix for listings; empty when the
/// op carries no epilogue.
std::string epilogue_suffix(const PlanOp& op);

/// One tensor slot: a per-sample interval of the execution arena. The
/// buffer planner reuses intervals whose lifetimes do not overlap (and
/// aliases elementwise ops in place), so slot_count() is typically far
/// smaller than ops().size(). All offsets/counts are in floats per
/// sample; the runtime scales them by the batch size, which preserves
/// disjointness of concurrently live slots.
struct PlanSlot {
  std::size_t offset = 0;  ///< arena offset, floats per sample
  std::size_t numel = 0;   ///< element count per sample
  tensor::Shape shape;     ///< per-sample logical shape
};

class PlanCompiler;

/// A compiled, architecture-independent op program for one artifact.
///
/// compile_plan() walks the training-side module tree exactly once,
/// ahead of time: it performs shape inference, decides per layer
/// whether the integer or the float path runs (the activation grid is
/// a compile-time constant), expands packed layers into integer code
/// matrices, snapshots the float-path weights, and lays out a
/// slot-lifetime-planned arena. The result is immutable and shared
/// read-only by any number of interpreter contexts; executing it never
/// touches an nn::Module, so new backends dispatch on op records
/// instead of module types.
class ExecutionPlan {
 public:
  const std::vector<PlanOp>& ops() const { return ops_; }
  const std::vector<PlanSlot>& slots() const { return slots_; }
  int slot_count() const { return static_cast<int>(slots_.size()); }

  /// Arena footprint in bytes *per sample*; an interpreter context
  /// running batches of N needs N times this (allocated once, reused
  /// across requests).
  std::size_t arena_bytes() const { return arena_floats_ * sizeof(float); }
  /// Arena footprint in floats per sample.
  std::size_t arena_floats() const { return arena_floats_; }

  /// Expanded integer code matrices, indexed by PlanOp::layer.
  const std::vector<IntegerLayer>& integer_layers() const { return integer_layers_; }

  int input_slot() const { return input_slot_; }
  int output_slot() const { return output_slot_; }
  const tensor::Shape& sample_shape() const { return sample_shape_; }
  int num_classes() const { return num_classes_; }

  /// Compile-time maxima of the per-context scratch buffers (so the
  /// interpreter sizes them once): im2col patch matrices of the float
  /// and integer conv ops, and the largest tensor an EncodeAct/Int op
  /// encodes (all per sample; code counts scale by batch).
  std::size_t max_float_cols() const { return max_float_cols_; }
  std::size_t max_int_cols() const { return max_int_cols_; }
  std::size_t max_encode_floats() const { return max_encode_floats_; }

 private:
  friend class PlanCompiler;  ///< the compile_plan implementation
  friend class PlanRewriter;  ///< the sanctioned mutation seam below

  std::vector<PlanOp> ops_;
  std::vector<PlanSlot> slots_;
  std::vector<IntegerLayer> integer_layers_;
  std::size_t arena_floats_ = 0;
  int input_slot_ = -1;
  int output_slot_ = -1;
  tensor::Shape sample_shape_;
  int num_classes_ = 0;
  std::size_t max_float_cols_ = 0;
  std::size_t max_int_cols_ = 0;
  std::size_t max_encode_floats_ = 0;
};

/// Mutable access to a compiled plan's internals — the one sanctioned
/// seam for IR *producers*: optimizer passes rewriting op programs,
/// and the verifier's mutation tests, which corrupt plans to prove
/// every deploy/verify.h rule fires. Anything rewritten through this
/// class must re-verify clean (verify_plan) before it is executed;
/// the interpreter and backends assume verified invariants.
class PlanRewriter {
 public:
  explicit PlanRewriter(ExecutionPlan& plan) : plan_(plan) {}

  std::vector<PlanOp>& ops() { return plan_.ops_; }
  std::vector<PlanSlot>& slots() { return plan_.slots_; }
  std::vector<IntegerLayer>& integer_layers() { return plan_.integer_layers_; }
  std::size_t& arena_floats() { return plan_.arena_floats_; }
  int& input_slot() { return plan_.input_slot_; }
  int& output_slot() { return plan_.output_slot_; }
  tensor::Shape& sample_shape() { return plan_.sample_shape_; }
  int& num_classes() { return plan_.num_classes_; }

 private:
  ExecutionPlan& plan_;
};

/// Compiles an artifact into an ExecutionPlan. This is the only place
/// the deployment runtime meets the training-side class hierarchy: the
/// architecture is instantiated once, its module chain is lowered to
/// ops, and the result carries everything inference needs. Throws
/// ArtifactError on malformed artifacts or unlowerable architectures.
ExecutionPlan compile_plan(const QuantizedArtifact& artifact);

}  // namespace cq::deploy
