#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "deploy/packing.h"
#include "nn/models/model.h"
#include "tensor/tensor.h"

namespace cq::deploy {

/// Thrown for any malformed, truncated or corrupted artifact file.
class ArtifactError : public std::runtime_error {
 public:
  explicit ArtifactError(const std::string& what) : std::runtime_error(what) {}
};

/// Self-contained description of a model architecture, sufficient to
/// re-instantiate it on the deployment side without the training code
/// knowing which concrete class it was. `kind` names the model zoo
/// entry; `params` holds its config fields by name (integral fields
/// are stored exactly — every config value fits a double).
struct ArchDescriptor {
  std::string kind;
  std::map<std::string, double> params;

  /// Returns params.at(key) rounded to int; throws ArtifactError with
  /// a useful message when the key is missing.
  int int_param(const std::string& key) const;
  double param(const std::string& key) const;
};

/// Snapshot of one activation fake-quantizer: its bit-width A and the
/// calibrated clip bound (Section II-A, activation branch).
struct ActQuantState {
  std::int32_t bits = 0;
  float max_activation = 0.0f;
};

/// A deployable quantized model:
///  - the architecture descriptor,
///  - every quantized layer's weights as packed sub-byte codes,
///  - all remaining parameters/buffers (first/output layers, biases,
///    batch-norm state) as dense float tensors,
///  - the activation quantizer calibration.
/// This is what the paper's method ultimately ships to the resource-
/// constrained device its introduction motivates.
struct QuantizedArtifact {
  ArchDescriptor arch;
  std::vector<ActQuantState> act_quants;
  std::vector<PackedLayer> packed_layers;     ///< scored-layer traversal order
  std::map<std::string, tensor::Tensor> dense;  ///< "p<i>"/"b<i>" keyed state
};

/// Byte-level size breakdown of an artifact (the deployment payload,
/// ignoring fixed format framing).
struct SizeReport {
  std::size_t packed_code_bytes = 0;   ///< sub-byte weight payload
  std::size_t packed_meta_bytes = 0;   ///< per-filter bit tables + ranges
  std::size_t dense_bytes = 0;         ///< fp32 residual state
  std::size_t act_quant_bytes = 0;
  std::size_t fp32_weight_bytes = 0;   ///< quantized layers' weights at fp32

  std::size_t total_bytes() const {
    return packed_code_bytes + packed_meta_bytes + dense_bytes + act_quant_bytes;
  }
  /// fp32 size of the same model (dense state + unpacked weights)
  /// divided by the artifact size.
  double compression_ratio() const;
};

/// Builds the architecture descriptor for a model-zoo network
/// (VggSmall, ResNet20, Mlp). Throws ArtifactError for unknown kinds.
ArchDescriptor describe_model(nn::Model& model);

/// Re-creates a freshly initialized model from a descriptor.
std::unique_ptr<nn::Model> instantiate_model(const ArchDescriptor& arch);

/// Exports a quantized model (every scored layer must carry a
/// bit-width arrangement) into an artifact. The model is not modified.
QuantizedArtifact export_model(nn::Model& model);

/// Re-instantiates the architecture, restores dense state, unpacks the
/// quantized layers and applies the activation calibration. The result
/// is in eval mode and produces bit-identical outputs to the exported
/// model's fake-quant forward.
std::unique_ptr<nn::Model> instantiate(const QuantizedArtifact& artifact);

/// Binary serialization with CRC-32 integrity protection. save throws
/// on I/O failure; load throws ArtifactError on bad magic, version,
/// checksum or any structural problem.
void save_artifact(const std::string& path, const QuantizedArtifact& artifact);
QuantizedArtifact load_artifact(const std::string& path);

/// Size accounting of the deployment payload.
SizeReport size_report(const QuantizedArtifact& artifact);

}  // namespace cq::deploy
