#include "deploy/arena.h"

#include <algorithm>

namespace cq::deploy {

bool arena_alias_legal(OpKind kind) {
  return kind == OpKind::Relu || kind == OpKind::EncodeAct ||
         kind == OpKind::BatchNorm || kind == OpKind::Add ||
         kind == OpKind::Flatten;
}

namespace {

/// First-fit allocator over per-sample float intervals with a sorted,
/// coalescing free list and a retreating frontier. The high-water mark
/// only ever grows, so every offset handed out stays inside the arena.
class FirstFit {
 public:
  std::size_t alloc(std::size_t size) {
    for (std::size_t i = 0; i < free_.size(); ++i) {
      if (free_[i].size < size) continue;
      const std::size_t offset = free_[i].offset;
      free_[i].offset += size;
      free_[i].size -= size;
      if (free_[i].size == 0) {
        free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(i));
      }
      return offset;
    }
    const std::size_t offset = end_;
    end_ += size;
    high_water_ = std::max(high_water_, end_);
    return offset;
  }

  void release(std::size_t offset, std::size_t size) {
    if (size == 0) return;
    auto it = std::lower_bound(free_.begin(), free_.end(), offset,
                               [](const Interval& iv, std::size_t off) {
                                 return iv.offset < off;
                               });
    it = free_.insert(it, Interval{offset, size});
    // Coalesce with the next and previous neighbours.
    if (it + 1 != free_.end() && it->offset + it->size == (it + 1)->offset) {
      it->size += (it + 1)->size;
      free_.erase(it + 1);
    }
    if (it != free_.begin() && (it - 1)->offset + (it - 1)->size == it->offset) {
      (it - 1)->size += it->size;
      it = free_.erase(it) - 1;
    }
    // A free block touching the frontier retreats it (the space can be
    // handed out again); the high-water mark is unaffected.
    if (it->offset + it->size == end_) {
      end_ = it->offset;
      free_.erase(it);
    }
  }

  std::size_t high_water() const { return high_water_; }

 private:
  struct Interval {
    std::size_t offset = 0;
    std::size_t size = 0;
  };

  std::vector<Interval> free_;  ///< sorted, coalesced free intervals
  std::size_t end_ = 0;         ///< allocation frontier (may retreat)
  std::size_t high_water_ = 0;
};

}  // namespace

std::size_t plan_arena(const std::vector<PlanOp>& ops,
                       std::vector<PlanSlot>& slots, int input_slot,
                       int output_slot) {
  const int num_ops = static_cast<int>(ops.size());
  std::vector<int> last_use(slots.size(), -1);
  for (int i = 0; i < num_ops; ++i) {
    const PlanOp& op = ops[static_cast<std::size_t>(i)];
    if (op.in0 >= 0) last_use[static_cast<std::size_t>(op.in0)] = i;
    if (op.in1 >= 0) last_use[static_cast<std::size_t>(op.in1)] = i;
  }
  // The program output stays live past the last op.
  last_use[static_cast<std::size_t>(output_slot)] = num_ops;

  FirstFit arena;
  slots[static_cast<std::size_t>(input_slot)].offset =
      arena.alloc(slots[static_cast<std::size_t>(input_slot)].numel);

  for (int i = 0; i < num_ops; ++i) {
    const PlanOp& op = ops[static_cast<std::size_t>(i)];
    const bool in0_dies =
        op.in0 >= 0 && last_use[static_cast<std::size_t>(op.in0)] == i;
    PlanSlot& out = slots[static_cast<std::size_t>(op.out)];
    bool aliased = false;
    if (arena_alias_legal(op.kind) && in0_dies) {
      // Same element count by construction for every elementwise op.
      out.offset = slots[static_cast<std::size_t>(op.in0)].offset;
      aliased = true;
    } else {
      out.offset = arena.alloc(out.numel);
    }
    for (const int in : {op.in0, op.in1}) {
      if (in < 0 || last_use[static_cast<std::size_t>(in)] != i) continue;
      if (aliased && in == op.in0) continue;  // interval lives on as `out`
      const PlanSlot& dead = slots[static_cast<std::size_t>(in)];
      arena.release(dead.offset, dead.numel);
    }
  }
  return arena.high_water();
}

}  // namespace cq::deploy
