#include "deploy/packing.h"

#include <stdexcept>

#include "deploy/bitstream.h"
#include "quant/uniform.h"

namespace cq::deploy {

std::size_t PackedLayer::payload_bits() const {
  std::size_t bits = 0;
  for (const std::uint8_t b : filter_bits) {
    bits += static_cast<std::size_t>(b) * static_cast<std::size_t>(weights_per_filter);
  }
  return bits;
}

double PackedLayer::bits_per_weight() const {
  const auto total =
      static_cast<double>(num_filters) * static_cast<double>(weights_per_filter);
  if (total <= 0.0) return 0.0;
  return static_cast<double>(payload_bits()) / total;
}

PackedLayer pack_layer(const quant::QuantizableLayer& layer, std::string name) {
  const std::vector<int>& bits = layer.filter_bits();
  if (bits.empty()) {
    throw std::invalid_argument("pack_layer: layer '" + name +
                                "' has no bit-width arrangement assigned");
  }
  PackedLayer packed;
  packed.name = std::move(name);
  packed.num_filters = layer.num_filters();
  packed.weights_per_filter = static_cast<std::int64_t>(layer.weights_per_filter());
  packed.range_hi = layer.weight_range_override() > 0.0f ? layer.weight_range_override()
                                                         : layer.weight_abs_max();

  const quant::UniformRange range{-packed.range_hi, packed.range_hi};
  BitWriter writer;
  packed.filter_bits.reserve(bits.size());
  for (int k = 0; k < packed.num_filters; ++k) {
    const int b = bits[static_cast<std::size_t>(k)];
    if (b < 0 || b > 16) {
      throw std::invalid_argument("pack_layer: filter bit-width out of [0,16]");
    }
    packed.filter_bits.push_back(static_cast<std::uint8_t>(b));
    if (b == 0 || !range.valid()) continue;  // pruned / degenerate: no payload
    for (const float w : layer.filter_weights(k)) {
      writer.append(static_cast<std::uint32_t>(quant::encode(w, range, b)), b);
    }
  }
  writer.align_to_byte();
  packed.codes = std::move(writer).take();
  return packed;
}

void unpack_layer(const PackedLayer& packed, quant::QuantizableLayer& layer) {
  if (packed.num_filters != layer.num_filters() ||
      packed.weights_per_filter != static_cast<std::int64_t>(layer.weights_per_filter())) {
    throw std::invalid_argument("unpack_layer: shape mismatch for layer '" + packed.name +
                                "'");
  }
  if (packed.filter_bits.size() != static_cast<std::size_t>(packed.num_filters)) {
    throw std::invalid_argument("unpack_layer: filter_bits size mismatch for layer '" +
                                packed.name + "'");
  }

  const quant::UniformRange range{-packed.range_hi, packed.range_hi};
  BitReader reader(packed.codes);
  std::vector<int> bits(packed.filter_bits.begin(), packed.filter_bits.end());
  for (int k = 0; k < packed.num_filters; ++k) {
    std::span<float> weights = layer.mutable_filter_weights(k);
    const int b = bits[static_cast<std::size_t>(k)];
    if (b == 0 || !range.valid()) {
      for (float& w : weights) w = 0.0f;
      continue;
    }
    for (float& w : weights) {
      w = quant::decode(static_cast<int>(reader.read(b)), range, b);
    }
  }
  layer.set_filter_bits(std::move(bits));
  layer.set_weight_range_override(packed.range_hi);
}

}  // namespace cq::deploy
