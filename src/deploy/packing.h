#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "quant/bitwidth.h"

namespace cq::deploy {

/// Storage form of one quantized layer: per-filter bit-widths plus the
/// weights of every unpruned filter packed as k-bit quantizer codes.
/// Pruned (0-bit) filters contribute no payload at all. Biases stay
/// with the dense float state of the artifact (they are not quantized
/// in the paper's scheme and are negligible in size).
struct PackedLayer {
  std::string name;
  std::int32_t num_filters = 0;
  std::int64_t weights_per_filter = 0;
  float range_hi = 0.0f;               ///< symmetric clip bound of Eq. (1)
  std::vector<std::uint8_t> filter_bits;
  std::vector<std::uint8_t> codes;     ///< LSB-first packed payload

  /// Exact payload size in bits (sum over filters of bits * weights).
  std::size_t payload_bits() const;

  /// Bits per stored weight including pruned filters in the
  /// denominator — the artifact-level analogue of the paper's average
  /// bit-width statistic.
  double bits_per_weight() const;
};

/// Snapshots `layer` (which must have per-filter bits assigned) into a
/// PackedLayer. The codes are produced with the same clip range and
/// float arithmetic as the layer's fake-quant forward, so unpacking
/// reproduces the effective weights bit-exactly.
PackedLayer pack_layer(const quant::QuantizableLayer& layer, std::string name);

/// Restores a PackedLayer into a structurally matching layer: decoded
/// weights are written to the master weight storage, the per-filter
/// bit-widths are re-applied, and the clip range is frozen at the
/// packed range so re-quantization in forward() is the identity on the
/// decoded values. Throws std::invalid_argument on any shape mismatch.
void unpack_layer(const PackedLayer& packed, quant::QuantizableLayer& layer);

}  // namespace cq::deploy
