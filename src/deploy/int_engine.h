#pragma once

#include <cstdint>
#include <vector>

#include "deploy/packing.h"
#include "tensor/tensor.h"
#include "util/exec_context.h"

namespace cq::deploy {

/// One packed layer prepared for integer-arithmetic execution.
///
/// The paper's motivation for *uniform* quantization is that it "can
/// be implemented on existing neural network processors directly":
/// with a symmetric per-layer weight range and a [0, b] activation
/// range, every MAC becomes an integer multiply-accumulate
///     y = s_w * s_a * sum_j (q_w[j] - z_w) * q_a[j]
/// where q are the integer codes, z_w = (2^bits - 1) / 2 recentres the
/// weight codes and the two scales are applied once per output. This
/// struct holds the unpacked integer codes; build_integer_layer()
/// produces it straight from a PackedLayer without ever materializing
/// float weights.
struct IntegerLayer {
  std::int32_t num_filters = 0;
  std::int64_t weights_per_filter = 0;
  float range_hi = 0.0f;
  std::vector<std::uint8_t> filter_bits;
  /// Dense [num_filters, weights_per_filter] code matrix; rows of
  /// pruned (0-bit) filters are all zero and skipped at execution.
  std::vector<std::int32_t> codes;
  std::vector<float> bias;  ///< per-filter float bias (not quantized)

  /// Weight scale of filter k: one quantization step at its bit-width.
  float weight_scale(int k) const;
  /// Centering offset of filter k's codes ((levels - 1) / 2 as float;
  /// integer execution doubles the codes to keep it integral).
  float weight_zero(int k) const;
};

/// Expands a PackedLayer's bitstream into the integer code matrix.
/// `bias` must hold one entry per filter (pass zeros when the layer
/// has none). Throws std::invalid_argument on size mismatch.
IntegerLayer build_integer_layer(const PackedLayer& packed, std::vector<float> bias);

/// Quantizes a float activation tensor to integer codes under the
/// calibrated [0, hi] range with `bits` levels (the ActQuant setting),
/// returning codes and the scale such that a ~= scale * code.
struct ActCodes {
  std::vector<std::int32_t> codes;  ///< same layout as the input tensor
  float scale = 0.0f;
  int bits = 0;
};
ActCodes encode_activations(const tensor::Tensor& activations, float hi, int bits);

/// Same encoding, writing into a caller-owned ActCodes whose code
/// buffer is reused across calls (the serving hot path encodes one
/// activation tensor per layer and must not reallocate per request).
/// Elementwise and deterministic, so it chunks over `exec` freely.
void encode_activations_into(const tensor::Tensor& activations, float hi, int bits,
                             ActCodes& out, const util::ExecContext& exec = {});

/// Raw-span variant for sources that live in an execution-plan arena
/// rather than a Tensor (same arithmetic, same reuse contract).
void encode_activations_into(const float* activations, std::size_t count, float hi,
                             int bits, ActCodes& out,
                             const util::ExecContext& exec = {});

/// Adopts activations that already *are* grid codes — integers stored
/// as floats by a producer's ep_encode epilogue (all <= 65535, so the
/// float representation is exact) — as an ActCodes buffer for the same
/// [0, hi] x bits grid: one cast per element instead of the
/// clamp/scale/round of a re-encode. By construction this yields the
/// identical codes (and scale) encode_activations_into would have
/// produced from the decoded values, which is what makes
/// quantized-domain propagation byte-exact.
void cast_codes_into(const float* codes, std::size_t count, float hi, int bits,
                     ActCodes& out, const util::ExecContext& exec = {});

/// Executes y[n,k] = s_w(k) * s_a * sum_j (2*q_w - (levels-1)) * q_a / 2
/// + bias[k] over a [N, weights_per_filter] activation-code matrix
/// with pure integer accumulation (std::int64_t, no wrap). This is the
/// arithmetic an integer NPU would run; the float fake-quant forward
/// is its reference semantics.
///
/// Intra-op parallelism: output filters chunk over `exec` (each thread
/// owns whole rows of the weight-code matrix). Integer accumulation is
/// exact and the one float rescale per output is unchanged, so results
/// are byte-identical at every thread count.
tensor::Tensor integer_linear_forward(const IntegerLayer& layer, const ActCodes& acts,
                                      int batch, int in_features,
                                      const util::ExecContext& exec = {});

/// Same kernel writing its [batch, num_filters] outputs into a
/// caller-owned buffer (an ExecutionPlan arena slot), so steady-state
/// plan interpretation allocates nothing per request.
void integer_linear_forward_into(const IntegerLayer& layer, const ActCodes& acts,
                                 int batch, int in_features, float* out,
                                 const util::ExecContext& exec = {});

/// Convolution on integer codes: im2col over the [N, C, H, W]
/// activation-code volume (zero padding is code 0, which is exactly
/// activation 0.0 under the ReLU range), then the same centered
/// integer MACs per filter and output position. layer's
/// weights_per_filter must equal in_c * kernel * kernel. Returns
/// [N, num_filters, out_h, out_w] float outputs (one rescale per
/// output, as in the FC path).
///
/// Intra-op parallelism: per image, the im2col code gather chunks over
/// patch rows and the MAC stage chunks over output filters — each
/// thread owns whole rows of the im2col GEMM, preserving the fixed
/// per-output-element reduction order (byte-identical to serial).
tensor::Tensor integer_conv_forward(const IntegerLayer& layer, const ActCodes& acts,
                                    int batch, int in_c, int height, int width,
                                    int kernel, int stride, int pad,
                                    const util::ExecContext& exec = {});

/// Same kernel writing its [batch, num_filters, out_h, out_w] outputs
/// into a caller-owned buffer. `cols_scratch` is the reusable im2col
/// code matrix (resized as needed, capacity retained across calls).
void integer_conv_forward_into(const IntegerLayer& layer, const ActCodes& acts,
                               int batch, int in_c, int height, int width, int kernel,
                               int stride, int pad, float* out,
                               std::vector<std::int32_t>& cols_scratch,
                               const util::ExecContext& exec = {});

}  // namespace cq::deploy
