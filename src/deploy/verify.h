#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "deploy/plan.h"

namespace cq::deploy {

/// The invariant catalog verify_plan() proves. Every rule is a
/// property the buffer planner, the interpreter, and the backends
/// *assume*; any IR producer (compile_plan today, the optimizer passes
/// the ROADMAP plans) must hand over programs that verify clean.
enum class VerifyRule {
  DefBeforeUse,      ///< every operand slot is defined before the op reads it
  SingleAssignment,  ///< each slot is written by at most one op (SSA values)
  DanglingIn1,       ///< in1 is present exactly on Add ops and ep_add epilogues
  IoSlots,           ///< plan input/output slots exist, are reachable, match
                     ///  sample_shape / num_classes
  Shape,             ///< each op's output shape re-derives from its inputs
  ArenaBounds,       ///< every slot interval lies inside arena_floats
  ArenaOverlap,      ///< memory-overlapping slots are never simultaneously
                     ///  live (per-sample intervals; scaling offsets and
                     ///  sizes linearly by the batch preserves the proof)
  Alias,             ///< in-place output aliasing is exact, elementwise-legal,
                     ///  and only over an in0 that dies at the op
  IntLayer,          ///< integer ops reference a real IntegerLayer whose
                     ///  geometry and metadata match the op record
  CodeRange,         ///< weight codes respect their declared bit-width
                     ///  (the premise of the overflow bound); pruned rows zero
  Overflow,          ///< the recomputed accumulator bound certifies int64
                     ///  safety (and fixes the int32 fast-path decision)
  Epilogue,          ///< fused epilogue flags only on compute ops, with legal
                     ///  stages (ep_bn conv-only with out_c channel vectors,
                     ///  ep_add shape-matched, ep_encode a well-formed grid)
  CodeDomain,        ///< slots holding grid codes (ep_encode outputs, tracked
                     ///  through MaxPool/Flatten) are consumed only by
                     ///  in_codes integer ops on the identical grid — the
                     ///  rescale-composition exactness propagation relies on
};

/// Stable kebab-case rule mnemonic ("def-before-use", "arena-overlap",
/// ...) used in diagnostics, tables, and the mutation tests.
const char* verify_rule_name(VerifyRule rule);

/// Every rule, in catalog order — for "N rules checked" listings.
const std::vector<VerifyRule>& all_verify_rules();

/// One finding: which rule broke, where, and a human explanation.
struct PlanDiagnostic {
  VerifyRule rule = VerifyRule::DefBeforeUse;
  int op = -1;    ///< offending op index; -1 for plan-level findings
  int slot = -1;  ///< primary slot involved; -1 when not slot-specific
  std::string message;
};

/// Overflow certificate of one integer op: the bound recomputed from
/// the actual packed codes via deploy/overflow.h — the same helper
/// BlockedBackend's dispatch calls, so the `int32_fast_path` recorded
/// here is by construction the decision the backend takes.
struct IntOpCertificate {
  int op = -1;
  int layer = -1;                  ///< PlanOp::layer
  std::int32_t max_abs_weight = 0; ///< max |centered doubled code|
  std::int64_t terms = 0;          ///< reduction length per output
  std::int64_t bound = 0;          ///< worst-case |accumulator| (saturated)
  bool fits_int64 = false;         ///< scalar kernels' accumulator is exact
  bool int32_fast_path = false;    ///< blocked kernels take the narrow path
  /// SimdBackend's maddubs int8 path is proven exact for this op
  /// (int_reduction_fits_int8_madd — the saturating pair sum cannot be
  /// reached); implies int32_fast_path.
  bool int8_fast_path = false;
};

struct VerifyReport {
  std::vector<PlanDiagnostic> diagnostics;
  /// One certificate per IntConv/IntLinear op, in op order (emitted
  /// even when the op also has findings, as far as it is computable).
  std::vector<IntOpCertificate> certificates;

  bool clean() const { return diagnostics.empty(); }
  int count(VerifyRule rule) const;
};

/// "op #3 [arena-overlap] slot 7: ..." lines, one per finding; empty
/// string for a clean report. The table-rendering callers (cqar_info,
/// cqar_verify) format the fields themselves.
std::string format_diagnostics(const VerifyReport& report);

/// Statically analyzes a compiled plan and returns every invariant
/// violation found (never throws on malformed plans — a corrupt plan
/// is the expected input). Checks are ordered so structural breakage
/// (bad slot ids) suppresses the dependent shape/arena checks of the
/// same op instead of reading out of bounds.
///
/// compile_plan() runs this in debug builds and aborts on findings;
/// serve::EngineSession offers an opt-in strict mode; tools/cqar_verify
/// gates CI with it.
VerifyReport verify_plan(const ExecutionPlan& plan);

}  // namespace cq::deploy
