#include "deploy/plan.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <memory>
#include <unordered_map>
#include <utility>

#include "deploy/arena.h"
#include "deploy/verify.h"

#include "nn/act_quant.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/models/model.h"
#include "nn/models/resnet20.h"
#include "nn/pooling.h"
#include "nn/probe.h"

namespace cq::deploy {

const char* op_kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::EncodeAct: return "encode_act";
    case OpKind::IntConv: return "int_conv";
    case OpKind::IntLinear: return "int_linear";
    case OpKind::FloatConv: return "float_conv";
    case OpKind::FloatLinear: return "float_linear";
    case OpKind::BatchNorm: return "batch_norm";
    case OpKind::Relu: return "relu";
    case OpKind::MaxPool: return "max_pool";
    case OpKind::AvgPool: return "avg_pool";
    case OpKind::Flatten: return "flatten";
    case OpKind::Add: return "add";
  }
  return "?";
}

std::string epilogue_suffix(const PlanOp& op) {
  std::string suffix;
  if (op.ep_bn) suffix += "+bn";
  if (op.ep_add) suffix += "+add";
  if (op.ep_relu) suffix += "+relu";
  if (op.ep_encode) suffix += "->codes";
  return suffix;
}

namespace {

/// Bias vector of a quantizable layer (fed to build_integer_layer; the
/// kernels add it per output and suppress it for pruned filters).
std::vector<float> bias_of(quant::QuantizableLayer& layer) {
  nn::Parameter* bias = nullptr;
  if (auto* conv = dynamic_cast<nn::Conv2d*>(&layer)) {
    bias = &conv->bias();
  } else if (auto* fc = dynamic_cast<nn::Linear*>(&layer)) {
    bias = &fc->bias();
  } else {
    throw ArtifactError("compile_plan: quantizable layer is neither Conv2d nor Linear");
  }
  const std::span<const float> values = bias->value.span();
  return {values.begin(), values.end()};
}

const nn::Module* as_module(quant::QuantizableLayer* layer) {
  auto* module = dynamic_cast<nn::Module*>(layer);
  if (module == nullptr) {
    throw ArtifactError("compile_plan: quantizable layer is not a module");
  }
  return module;
}

/// Snapshots the effective (quantized) weights/bias the layer's own
/// float forward would multiply with — built by the layer itself, so
/// the compiled float path is bit-exact by construction.
template <typename Layer>
void snapshot_effective_params(Layer& layer, PlanOp& op) {
  layer.build_effective_weight();
  op.weight = layer.effective_weight();
  const std::span<const float> bias = layer.effective_bias().span();
  op.bias.assign(bias.begin(), bias.end());
}

/// Activation grid tracked during lowering — the compile-time analogue
/// of the retired engine's runtime Grid. Set after an EncodeAct,
/// preserved through value-preserving ops (max pooling, flatten,
/// probes), consumed/invalidated by the next compute layer.
struct Grid {
  float hi = 0.0f;
  int bits = 0;
  bool valid = false;  ///< integer-encodable: bits in [1, 16], hi > 0
};

}  // namespace

/// Lowers one instantiated model to the flat op program: emits ops
/// over SSA-like value ids, infers every value's per-sample shape, and
/// finally maps values onto arena intervals with a lifetime-based
/// first-fit planner (elementwise ops run in place when their input
/// dies at the op).
class PlanCompiler {
 public:
  explicit PlanCompiler(const QuantizedArtifact& artifact) : artifact_(artifact) {}

  ExecutionPlan compile() {
    plan_.num_classes_ = artifact_.arch.int_param("num_classes");
    if (artifact_.arch.params.count("in_features") != 0) {
      plan_.sample_shape_ = {artifact_.arch.int_param("in_features")};
    } else {
      const int channels = artifact_.arch.int_param("in_channels");
      const int size = artifact_.arch.int_param("image_size");
      plan_.sample_shape_ = {channels, size, size};
    }

    // One instantiation, compile-time only: restores dense state and
    // packed weights, and gives us the module chain to lower.
    model_ = instantiate(artifact_);
    std::size_t next = 0;
    for (const nn::ScoredLayerRef& ref : model_->scored_layers()) {
      for (quant::QuantizableLayer* layer : ref.layers) {
        plan_.integer_layers_.push_back(
            build_integer_layer(artifact_.packed_layers[next], bias_of(*layer)));
        integer_index_.emplace(as_module(layer), static_cast<int>(next));
        ++next;
      }
    }

    const int input = new_value(plan_.sample_shape_);
    plan_.input_slot_ = input;
    Grid grid;
    const int output = lower_sequential(model_->body(), input, grid);
    plan_.output_slot_ = output;
    if (shapes_[static_cast<std::size_t>(output)] !=
        tensor::Shape{plan_.num_classes_}) {
      throw ArtifactError("compile_plan: model output shape does not match num_classes");
    }

    plan_.ops_ = std::move(ops_);
    plan_datalayout();
    return std::move(plan_);
  }

 private:
  int new_value(tensor::Shape shape) {
    shapes_.push_back(std::move(shape));
    return static_cast<int>(shapes_.size()) - 1;
  }

  const tensor::Shape& shape_of(int value) const {
    return shapes_[static_cast<std::size_t>(value)];
  }

  int emit(PlanOp op) {
    ops_.push_back(std::move(op));
    return ops_.back().out;
  }

  int lower_sequential(nn::Sequential& chain, int v, Grid& grid) {
    for (std::size_t i = 0; i < chain.size(); ++i) {
      v = lower_module(*chain.at(i), v, grid);
    }
    return v;
  }

  int lower_module(nn::Module& module, int v, Grid& grid) {
    if (auto* block = dynamic_cast<nn::BasicBlock*>(&module)) {
      return lower_block(*block, v, grid);
    }
    if (auto* chain = dynamic_cast<nn::Sequential*>(&module)) {
      return lower_sequential(*chain, v, grid);
    }
    if (auto* aq = dynamic_cast<nn::ActQuant*>(&module)) {
      return lower_act_quant(*aq, v, grid);
    }
    if (auto* conv = dynamic_cast<nn::Conv2d*>(&module)) {
      const int out = lower_conv(*conv, v, grid);
      grid.valid = false;
      return out;
    }
    if (auto* fc = dynamic_cast<nn::Linear*>(&module)) {
      const int out = lower_linear(*fc, v, grid);
      grid.valid = false;
      return out;
    }
    if (auto* bn = dynamic_cast<nn::BatchNorm2d*>(&module)) {
      grid.valid = false;
      return lower_batchnorm(*bn, v);
    }
    if (dynamic_cast<nn::ReLU*>(&module) != nullptr) {
      grid.valid = false;
      return lower_relu(v);
    }
    if (auto* pool = dynamic_cast<nn::MaxPool2d*>(&module)) {
      // Value-preserving: a max over grid points is a grid point, so
      // the activation grid survives pooling (as in the old engine).
      return lower_max_pool(*pool, v);
    }
    if (dynamic_cast<nn::GlobalAvgPool*>(&module) != nullptr) {
      grid.valid = false;
      return lower_avg_pool(v);
    }
    if (dynamic_cast<nn::Flatten*>(&module) != nullptr) {
      return lower_flatten(v);  // pure reshape; grid-preserving
    }
    if (dynamic_cast<nn::Probe*>(&module) != nullptr) {
      return v;  // identity at inference; nothing to execute
    }
    throw ArtifactError("compile_plan: cannot lower module '" + module.name() + "'");
  }

  /// Residual block, flattened to ops in the exact order (and with the
  /// exact float arithmetic) of BasicBlock::forward.
  int lower_block(nn::BasicBlock& block, int v, Grid& grid) {
    const Grid entry = grid;  // both conv1 and the projection read it

    int h = lower_conv(*block.conv1(), v, entry);
    h = lower_batchnorm(*block.bn1(), h);
    h = lower_relu(h);
    Grid mid;  // set entirely by act_quant1's lowering
    h = lower_act_quant(*block.act_quant1(), h, mid);
    int main = lower_conv(*block.conv2(), h, mid);
    main = lower_batchnorm(*block.bn2(), main);

    int shortcut = v;
    if (block.downsample_conv() != nullptr) {
      shortcut = lower_conv(*block.downsample_conv(), v, entry);
      shortcut = lower_batchnorm(*block.downsample_bn(), shortcut);
    }
    if (shape_of(main) != shape_of(shortcut)) {
      throw ArtifactError("compile_plan: residual shapes disagree in " + block.name());
    }
    PlanOp add;
    add.kind = OpKind::Add;
    add.in0 = main;  // out = in0 + in1, the += order of the block
    add.in1 = shortcut;
    add.out = new_value(shape_of(main));
    add.label = block.name() + ".add";
    main = emit(std::move(add));

    main = lower_relu(main);
    return lower_act_quant(*block.act_quant2(), main, grid);
  }

  /// EncodeAct when the quantizer is active (bits > 0 and a positive
  /// calibrated clip); identity otherwise — both decided here, at
  /// compile time. Updates `grid` to the quantizer's output grid.
  int lower_act_quant(nn::ActQuant& aq, int v, Grid& grid) {
    grid.hi = aq.max_activation();
    grid.bits = aq.bits();
    grid.valid = grid.bits >= 1 && grid.bits <= 16 && grid.hi > 0.0f;
    if (aq.bits() <= 0 || aq.max_activation() <= 0.0f) {
      return v;  // pass-through quantizer
    }
    PlanOp op;
    op.kind = OpKind::EncodeAct;
    op.in0 = v;
    op.out = new_value(shape_of(v));
    op.act_hi = aq.max_activation();
    op.act_bits = aq.bits();
    op.label = aq.name();
    return emit(std::move(op));
  }

  int lower_conv(nn::Conv2d& conv, int v, const Grid& grid) {
    // By value: new_value() below may reallocate the shape table.
    const tensor::Shape in = shape_of(v);
    if (in.size() != 3 || in[0] != conv.in_channels()) {
      throw ArtifactError("compile_plan: bad input shape for " + conv.name());
    }
    PlanOp op;
    op.in0 = v;
    op.in_c = in[0];
    op.in_h = in[1];
    op.in_w = in[2];
    op.kernel = conv.kernel();
    op.stride = conv.stride();
    op.pad = conv.pad();
    op.out_c = conv.out_channels();
    op.out_h = (op.in_h + 2 * op.pad - op.kernel) / op.stride + 1;
    op.out_w = (op.in_w + 2 * op.pad - op.kernel) / op.stride + 1;
    if (op.out_h <= 0 || op.out_w <= 0) {
      throw ArtifactError("compile_plan: empty conv output in " + conv.name());
    }
    op.label = conv.name();
    op.out = new_value({op.out_c, op.out_h, op.out_w});

    const std::size_t patch = static_cast<std::size_t>(op.in_c) * op.kernel * op.kernel;
    const std::size_t spatial = static_cast<std::size_t>(op.out_h) * op.out_w;
    const auto it = integer_index_.find(&conv);
    if (it != integer_index_.end() && grid.valid) {
      op.kind = OpKind::IntConv;
      op.layer = it->second;
      op.act_hi = grid.hi;
      op.act_bits = grid.bits;
      plan_.max_int_cols_ = std::max(plan_.max_int_cols_, patch * spatial);
      plan_.max_encode_floats_ =
          std::max(plan_.max_encode_floats_, tensor::shape_numel(in));
    } else {
      // Unquantized layer (stem), or activations are not on an integer
      // grid: the float im2col+GEMM path with the layer's effective
      // weights, decided once here instead of per request.
      op.kind = OpKind::FloatConv;
      snapshot_effective_params(conv, op);
      plan_.max_float_cols_ = std::max(plan_.max_float_cols_, patch * spatial);
    }
    return emit(std::move(op));
  }

  int lower_linear(nn::Linear& fc, int v, const Grid& grid) {
    const tensor::Shape in = shape_of(v);  // by value: new_value() may reallocate
    if (in.size() != 1 || in[0] != fc.in_features()) {
      throw ArtifactError("compile_plan: bad input shape for " + fc.name());
    }
    PlanOp op;
    op.in0 = v;
    op.in_features = fc.in_features();
    op.out_features = fc.out_features();
    op.label = fc.name();
    op.out = new_value({op.out_features});
    const auto it = integer_index_.find(&fc);
    if (it != integer_index_.end() && grid.valid) {
      op.kind = OpKind::IntLinear;
      op.layer = it->second;
      op.act_hi = grid.hi;
      op.act_bits = grid.bits;
      plan_.max_encode_floats_ =
          std::max(plan_.max_encode_floats_, static_cast<std::size_t>(op.in_features));
    } else {
      op.kind = OpKind::FloatLinear;
      snapshot_effective_params(fc, op);
    }
    return emit(std::move(op));
  }

  int lower_batchnorm(nn::BatchNorm2d& bn, int v) {
    const tensor::Shape in = shape_of(v);  // by value: new_value() may reallocate
    if (in.size() != 3 || in[0] != bn.channels()) {
      throw ArtifactError("compile_plan: bad input shape for " + bn.name());
    }
    PlanOp op;
    op.kind = OpKind::BatchNorm;
    op.in0 = v;
    op.in_c = in[0];
    op.in_h = in[1];
    op.in_w = in[2];
    op.label = bn.name();
    // Frozen statistics, folded to the per-channel constants the eval
    // forward uses; inv_std is computed with the identical expression.
    const int channels = bn.channels();
    op.bn_mean.resize(static_cast<std::size_t>(channels));
    op.bn_inv_std.resize(static_cast<std::size_t>(channels));
    op.bn_gamma.resize(static_cast<std::size_t>(channels));
    op.bn_beta.resize(static_cast<std::size_t>(channels));
    for (int c = 0; c < channels; ++c) {
      const auto i = static_cast<std::size_t>(c);
      op.bn_mean[i] = bn.running_mean()[i];
      op.bn_inv_std[i] = 1.0f / std::sqrt(bn.running_var()[i] + bn.eps());
      op.bn_gamma[i] = bn.gamma().value[i];
      op.bn_beta[i] = bn.beta().value[i];
    }
    op.out = new_value(in);
    return emit(std::move(op));
  }

  int lower_relu(int v) {
    PlanOp op;
    op.kind = OpKind::Relu;
    op.in0 = v;
    op.out = new_value(shape_of(v));
    return emit(std::move(op));
  }

  int lower_max_pool(nn::MaxPool2d& pool, int v) {
    const tensor::Shape in = shape_of(v);  // by value: new_value() may reallocate
    if (in.size() != 3) {
      throw ArtifactError("compile_plan: max pool needs a [C, H, W] input");
    }
    PlanOp op;
    op.kind = OpKind::MaxPool;
    op.in0 = v;
    op.in_c = in[0];
    op.in_h = in[1];
    op.in_w = in[2];
    op.kernel = pool.kernel();
    op.stride = pool.stride();
    op.out_c = op.in_c;
    op.out_h = (op.in_h - op.kernel) / op.stride + 1;
    op.out_w = (op.in_w - op.kernel) / op.stride + 1;
    if (op.out_h <= 0 || op.out_w <= 0) {
      throw ArtifactError("compile_plan: empty max pool output");
    }
    op.out = new_value({op.out_c, op.out_h, op.out_w});
    return emit(std::move(op));
  }

  int lower_avg_pool(int v) {
    const tensor::Shape in = shape_of(v);  // by value: new_value() may reallocate
    if (in.size() != 3) {
      throw ArtifactError("compile_plan: avg pool needs a [C, H, W] input");
    }
    PlanOp op;
    op.kind = OpKind::AvgPool;
    op.in0 = v;
    op.in_c = in[0];
    op.in_h = in[1];
    op.in_w = in[2];
    op.out = new_value({in[0]});
    return emit(std::move(op));
  }

  int lower_flatten(int v) {
    PlanOp op;
    op.kind = OpKind::Flatten;
    op.in0 = v;
    op.out = new_value({static_cast<int>(tensor::shape_numel(shape_of(v)))});
    return emit(std::move(op));
  }

  /// Maps values onto arena intervals via the shared lifetime-based
  /// first-fit planner (deploy/arena.h) — the same allocator optimizer
  /// passes re-run after op deletion, so compile-time and rewritten
  /// layouts obey identical rules.
  void plan_datalayout() {
    plan_.slots_.resize(shapes_.size());
    for (std::size_t s = 0; s < shapes_.size(); ++s) {
      plan_.slots_[s].shape = shapes_[s];
      plan_.slots_[s].numel = tensor::shape_numel(shapes_[s]);
    }
    plan_.arena_floats_ = plan_arena(plan_.ops_, plan_.slots_,
                                     plan_.input_slot_, plan_.output_slot_);
  }

  const QuantizedArtifact& artifact_;
  std::unique_ptr<nn::Model> model_;
  std::unordered_map<const nn::Module*, int> integer_index_;
  std::vector<PlanOp> ops_;
  std::vector<tensor::Shape> shapes_;  ///< per-sample shape of each value
  ExecutionPlan plan_;
};

ExecutionPlan compile_plan(const QuantizedArtifact& artifact) {
  ExecutionPlan plan = PlanCompiler(artifact).compile();
#ifndef NDEBUG
  // Debug builds prove every compile instead of arguing it: a compiler
  // (or future optimizer-pass) bug that breaks a plan invariant fails
  // here, at the IR boundary, not as wrong bytes in a kernel later.
  const VerifyReport report = verify_plan(plan);
  if (!report.clean()) {
    std::fputs(("compile_plan: plan fails verification:\n" +
                format_diagnostics(report))
                   .c_str(),
               stderr);
  }
  assert(report.clean() && "compile_plan produced a plan that fails verify_plan");
#endif
  return plan;
}

}  // namespace cq::deploy
