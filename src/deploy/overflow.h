#pragma once

// The integer-path accumulator overflow bound, in one place.
//
// The blocked backend's int32 fast path and the plan verifier's
// overflow certification must make the *same* decision from the same
// numbers: a reduction over `terms` products of centered doubled
// weight codes (|w| <= max_abs_weight) and activation codes
// (0 <= a <= levels(act_bits) - 1) is bounded by
//
//     max|acc| <= max_abs_weight * act_max * terms
//
// and integer sums below a type's max are exact in that type. Keeping
// the bound here — used by blocked::pack_codes, the blocked kernels'
// accumulator selection, and deploy::verify_plan — makes it impossible
// for the backend and the verifier to disagree about when the narrow
// accumulator is licensed.

#include <cstdint>
#include <limits>

#include "deploy/int_engine.h"
#include "quant/uniform.h"

namespace cq::deploy {

/// Largest |centered doubled code| (2q - (levels-1), the value the
/// integer MAC loops actually multiply by) over every unpruned filter
/// of the layer. Pruned (0-bit) rows contribute nothing, matching the
/// kernels, which skip them. This scans the *actual* codes rather than
/// trusting filter_bits, so a code inflated past its declared
/// bit-width widens the bound instead of silently invalidating it.
inline std::int32_t max_abs_centered_code(const IntegerLayer& layer) {
  std::int32_t max_abs = 0;
  const std::int64_t per_filter = layer.weights_per_filter;
  for (std::int32_t k = 0; k < layer.num_filters; ++k) {
    const int bits = layer.filter_bits[static_cast<std::size_t>(k)];
    if (bits == 0) continue;
    const std::int32_t offset =
        static_cast<std::int32_t>(quant::levels_for_bits(bits)) - 1;
    const std::int32_t* row =
        layer.codes.data() + static_cast<std::size_t>(k) * static_cast<std::size_t>(per_filter);
    for (std::int64_t j = 0; j < per_filter; ++j) {
      const std::int32_t centered = 2 * row[j] - offset;
      max_abs = std::max(max_abs, centered < 0 ? -centered : centered);
    }
  }
  return max_abs;
}

/// Worst-case |accumulator| of the reduction, saturated to int64 max
/// when the product itself would wrap (the saturated value still
/// compares correctly against any accumulator type's limit).
/// act_bits outside the encodable [1, 16] window yields the saturated
/// bound: nothing can be certified about such activations.
inline std::int64_t int_reduction_bound(std::int32_t max_abs_weight, int act_bits,
                                        std::int64_t terms) {
  constexpr std::int64_t kSaturated = std::numeric_limits<std::int64_t>::max();
  if (max_abs_weight <= 0 || terms <= 0) return 0;
  if (act_bits < 1 || act_bits > 16) return kSaturated;
  const std::int64_t act_max = quant::levels_for_bits(act_bits) - 1;
  const std::int64_t per_term = static_cast<std::int64_t>(max_abs_weight) * act_max;
  if (per_term > kSaturated / terms) return kSaturated;
  return per_term * terms;
}

/// True when every possible reduction provably fits an int32
/// accumulator — the decision blocked::conv/linear take per dispatch.
/// Below the bound integer sums are exact in any width, so the narrow
/// accumulator changes nothing but speed (int32 MACs vectorize; int64
/// ones don't).
inline bool int_reduction_fits_int32(std::int32_t max_abs_weight, int act_bits,
                                     std::int64_t terms) {
  if (act_bits < 1 || act_bits > 16) return false;
  return int_reduction_bound(max_abs_weight, act_bits, terms) <=
         std::numeric_limits<std::int32_t>::max();
}

/// True when the SIMD backend's int8 multiply path
/// (_mm256_maddubs_epi16-style: unsigned-8-bit activations x signed
/// 8-bit weights, adjacent pairs summed into a *saturating* int16,
/// then widened into the int32 accumulator) is provably exact:
///   - every activation code fits u8 (act_bits <= 8),
///   - every centered weight code fits s8 (max|w| <= 127),
///   - the adjacent-pair sum 2 * max|w| * act_max cannot reach the
///     int16 saturation boundary (the one lossy step of the
///     instruction), and
///   - the whole reduction fits the int32 accumulator.
/// SimdBackend's dispatch and verify_plan's certificate both call this
/// helper, so the backend's kernel choice and the verifier's
/// `int8_fast_path` record agree structurally.
inline bool int_reduction_fits_int8_madd(std::int32_t max_abs_weight, int act_bits,
                                         std::int64_t terms) {
  if (act_bits < 1 || act_bits > 8) return false;
  if (max_abs_weight < 0 || max_abs_weight > 127) return false;
  const std::int64_t act_max = quant::levels_for_bits(act_bits) - 1;
  if (2 * static_cast<std::int64_t>(max_abs_weight) * act_max >
      std::numeric_limits<std::int16_t>::max()) {
    return false;
  }
  return int_reduction_fits_int32(max_abs_weight, act_bits, terms);
}

/// True when the bound fits the int64 accumulator the scalar reference
/// kernels always use — the safety certificate verify_plan demands for
/// every integer op (saturation means "not provable", hence false).
inline bool int_reduction_fits_int64(std::int32_t max_abs_weight, int act_bits,
                                     std::int64_t terms) {
  return int_reduction_bound(max_abs_weight, act_bits, terms) <
         std::numeric_limits<std::int64_t>::max();
}

}  // namespace cq::deploy
