#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "deploy/cpu_features.h"
#include "deploy/int_engine.h"
#include "deploy/plan.h"
#include "util/exec_context.h"

namespace cq::deploy {

/// Per-op input/output pointers resolved by the interpreter: arena
/// slot addresses for the current batch. `in1` is non-null only for
/// ops with a second input (residual Add).
struct BackendIo {
  const float* in0 = nullptr;
  const float* in1 = nullptr;
  float* out = nullptr;
  int batch = 1;
};

/// Caller-owned scratch a backend kernel may use, reused across
/// requests so steady-state serving allocates nothing per op: the
/// activation-code buffer, the integer im2col patch matrix, and the
/// float im2col patch matrix. One BackendScratch per interpreter
/// context; sized once from the plan's compile-time maxima.
struct BackendScratch {
  ActCodes codes;
  std::vector<std::int32_t> int_cols;
  std::vector<float> float_cols;
  /// SimdBackend's narrowed activation layouts: pair-interleaved int16
  /// and quad-interleaved uint8 rewrites of the int32 code matrix,
  /// rebuilt per op from `codes`/`int_cols` (capacity retained).
  std::vector<std::int16_t> simd_cols16;
  std::vector<std::uint8_t> simd_cols8;
};

/// Kernel-dispatch seam of the deployment runtime.
///
/// serve::EngineSession's interpreter never calls a kernel directly:
/// every PlanOp is handed to Backend::run, which picks *how* the op
/// executes while the plan fixes *what* it computes. This is the
/// paper's "uniform codes run on existing processors directly" claim
/// made concrete — swapping the backend swaps the execution strategy
/// (scalar reference, cache-blocked, a future ISA- or
/// accelerator-specific variant) without touching compilation,
/// scheduling, or serving.
///
/// Contract:
///  - prepare(plan) is called exactly once before any run() against
///    that plan. Backends build plan-derived state there (packed
///    weight layouts, retiled code matrices); it is the only place a
///    backend may mutate itself.
///  - run() is const and must be safe to call concurrently from any
///    number of interpreter contexts (prepare()-built state is
///    read-only at run time; per-call mutable state lives in the
///    caller's BackendScratch).
///  - Byte-identity: integer ops (IntConv/IntLinear) accumulate in
///    exact int64 arithmetic, so a backend may retile, reorder or
///    block them freely as long as the final per-output float rescale
///    `weight_scale(k) * act_scale * acc + bias` is computed with the
///    same expressions — outputs must be byte-identical to
///    ScalarBackend. Float ops (FloatConv/FloatLinear, stem/head) must
///    keep the per-output-element reduction order or delegate to the
///    scalar reference.
class Backend {
 public:
  virtual ~Backend() = default;

  /// Stable lowercase identifier ("scalar", "blocked") used by CLI
  /// flags, bench JSON records and listings.
  virtual const char* name() const = 0;

  /// One-time hook after plan compilation: build any packed/retiled
  /// weight layout the kernels want. Default: no preparation.
  virtual void prepare(const ExecutionPlan& plan);

  /// Executes one op record for a batch of io.batch samples.
  virtual void run(const PlanOp& op, const ExecutionPlan& plan, const BackendIo& io,
                   BackendScratch& scratch, const util::ExecContext& exec) const = 0;

  /// Which implementation actually runs `op` ("scalar" for delegated
  /// ops) — introspection for cqar_info's plan listing. Default: name().
  virtual const char* dispatch(const PlanOp& op) const;

  /// Bytes of backend-owned prepared state (packed panels, retiled
  /// weights) built by prepare() — memory-footprint introspection for
  /// the observability layer. Default: 0 (stateless backends).
  virtual std::size_t prepared_bytes() const { return 0; }
};

/// Arena bytes one execution of `op` touches *per sample*: the slot
/// intervals it reads (in0, and in1 for Add) plus the one it writes.
/// The obs::PlanProfiler multiplies by the samples actually served to
/// report per-op memory traffic next to per-op time; scratch buffers
/// (im2col, activation codes) are backend-internal and excluded.
std::size_t op_arena_bytes(const PlanOp& op, const ExecutionPlan& plan);

/// Executes a compute op's fused epilogue stages in place on io.out
/// (batch x out_numel_per_sample elements): BatchNorm -> residual Add
/// (io.in1) -> Relu -> grid encode, as one elementwise pass applying
/// the standalone ops' expressions in the standalone op order to each
/// element in registers. Every stage maps element i from element i
/// alone, so the single-pass folding — and chunking over `exec` —
/// keeps the result byte-identical to running each deleted op
/// separately. One shared implementation for every backend, so fused
/// and unfused plans — and the backends among themselves — stay
/// byte-identical. No-op when the op carries no epilogue flags.
void apply_epilogue(const PlanOp& op, const BackendIo& io,
                    std::size_t out_numel_per_sample,
                    const util::ExecContext& exec = {});

/// The registered backend implementations.
enum class BackendKind { Scalar, Blocked, Simd };

/// Stable name of a kind ("scalar", "blocked", "simd").
const char* backend_kind_name(BackendKind kind);

/// Parses a backend name; throws std::invalid_argument naming the
/// known backends on anything else.
BackendKind parse_backend_kind(const std::string& name);

/// All registered kinds, for sweeps and usage strings.
const std::vector<BackendKind>& all_backend_kinds();

/// Constructs a fresh backend instance (prepare() not yet called).
std::unique_ptr<Backend> make_backend(BackendKind kind);

/// The byte-exact reference: the int_engine / tensor-ops kernels the
/// plan interpreter originally hard-wired, moved behind the seam
/// unchanged. Stateless — prepare() is a no-op.
class ScalarBackend : public Backend {
 public:
  const char* name() const override { return "scalar"; }
  void run(const PlanOp& op, const ExecutionPlan& plan, const BackendIo& io,
           BackendScratch& scratch, const util::ExecContext& exec) const override;
};

namespace blocked {

/// Filters per packed panel: the inner kernels broadcast one im2col /
/// activation row across this many output filters, so each code row is
/// read once per tile instead of once per filter.
inline constexpr int kFilterTile = 8;
/// Output positions per cache block of the conv kernel; the int64
/// accumulator tile (kFilterTile x kSpatialBlock) stays L1-resident.
inline constexpr int kSpatialBlock = 128;

/// Backend-owned packed layout of one IntegerLayer: centered doubled
/// weight codes (2q - (levels-1), the value the MAC loop actually
/// multiplies by) narrowed to int16 and interleaved into panels of
/// kFilterTile filters — panels[tile][j][lane] — so the 2-4-bit rows
/// of a tile are contiguous for the inner loop. Per-filter rescale
/// state rides along, with pruned (0-bit) filters encoded as
/// scale = bias = 0 so they cost no branch in the hot loop.
struct PackedCodes {
  std::int32_t num_filters = 0;
  std::int64_t weights_per_filter = 0;
  /// False when some filter's centered codes exceed int16 (bits > 15);
  /// BlockedBackend then delegates the layer to the scalar kernels.
  bool usable = false;
  std::vector<std::int16_t> panels;   ///< [ceil(F/tile)][per_filter][tile]
  std::vector<float> weight_scales;   ///< IntegerLayer::weight_scale(k); 0 if pruned
  std::vector<float> out_bias;        ///< per-filter bias; forced 0 if pruned
  /// Largest |centered code| over all filters: with the activation
  /// code bound it proves when a whole reduction fits exactly in
  /// int32, unlocking the vectorizable narrow-accumulator path (int64
  /// multiplies do not vectorize on most SIMD ISAs; int32 ones do).
  std::int32_t max_abs_weight = 0;
};

/// Packs an IntegerLayer into the blocked layout (done once at
/// Backend::prepare time, never on the serving path).
PackedCodes pack_codes(const IntegerLayer& layer);

/// Cache-blocked integer convolution: same im2col as the scalar
/// kernel, then a tiled MAC stage — kFilterTile filters x kSpatialBlock
/// output positions per block, int64 accumulation. Exact integer
/// arithmetic plus the scalar kernel's final rescale expression makes
/// the output byte-identical to integer_conv_forward_into at any
/// thread count. Parallelism: filter tiles chunk over `exec`.
void conv_forward_into(const PackedCodes& packed, const ActCodes& acts, int batch,
                       int in_c, int height, int width, int kernel, int stride,
                       int pad, float* out, std::vector<std::int32_t>& cols_scratch,
                       const util::ExecContext& exec = {});

/// Blocked fully-connected kernel: per filter tile, the int16 weight
/// panel (L1-resident) is swept once per sample with a kFilterTile-wide
/// accumulator. Byte-identical to integer_linear_forward_into.
void linear_forward_into(const PackedCodes& packed, const ActCodes& acts, int batch,
                         int in_features, float* out,
                         const util::ExecContext& exec = {});

}  // namespace blocked

/// Cache-blocked/packed integer backend: IntConv/IntLinear run the
/// blocked:: kernels over panel layouts built in prepare(); every
/// other op (and any integer layer the layout cannot hold) delegates
/// to the scalar reference. Byte-identical to ScalarBackend on every
/// plan op — the cross-backend property test enforces it.
class BlockedBackend : public ScalarBackend {
 public:
  const char* name() const override { return "blocked"; }
  void prepare(const ExecutionPlan& plan) override;
  void run(const PlanOp& op, const ExecutionPlan& plan, const BackendIo& io,
           BackendScratch& scratch, const util::ExecContext& exec) const override;
  const char* dispatch(const PlanOp& op) const override;
  /// Bytes held by the packed int16 panels + rescale vectors.
  std::size_t prepared_bytes() const override;

 private:
  std::vector<blocked::PackedCodes> packed_;  ///< by PlanOp::layer
  /// Identity of the plan prepare() packed for; run() refuses any
  /// other plan (same-sized layer lists would otherwise silently
  /// execute with the wrong weights).
  const ExecutionPlan* prepared_for_ = nullptr;
};

namespace simd {

/// Backend-owned explicit-SIMD layout of one IntegerLayer. Two
/// reduction-interleaved views of the same centered doubled codes the
/// blocked panels hold, shaped for the multiply-accumulate
/// instructions instead of for cache lines:
///
///  - pair_panels (int16): kFilterTile filters x adjacent reduction
///    *pairs* — pair_panels[tile][j/2][f] is the 32-bit lane
///    (w[f][j], w[f][j+1]) a madd_epi16-style instruction multiplies
///    against an interleaved activation pair in one step. Odd
///    reduction tails are zero-padded (exact: 0 * anything = 0).
///  - quad_panels (int8): the same for reduction *quads*, feeding the
///    maddubs_epi16 u8 x s8 path; built only when every centered code
///    fits int8.
///  - lane_panels (int16): the blocked backend's [j][lane] panel shape
///    (one row of kFilterTile filters per reduction index), which the
///    portable tier's generic GCC-vector-extension kernels (non-x86
///    builds, or 16-bit activation codes) widen and multiply directly;
///    on x86-64 the portable tier rides pair_panels via baseline-SSE2
///    pmaddwd instead.
struct PackedSimd {
  std::int32_t num_filters = 0;
  std::int64_t weights_per_filter = 0;
  /// False when some filter's centered codes exceed int16 (bits > 15);
  /// the layer then stays on the blocked/scalar kernels entirely.
  bool usable = false;
  /// True when max|centered code| <= 127 so the quad panels exist; the
  /// per-dispatch int8 decision additionally needs the activation
  /// grid, via int_reduction_fits_int8_madd (deploy/overflow.h).
  bool int8_usable = false;
  std::int32_t max_abs_weight = 0;  ///< shared overflow-bound input
  std::vector<std::int16_t> lane_panels;  ///< [tiles][J][tile]
  std::vector<std::int16_t> pair_panels;  ///< [tiles][ceil(J/2)][tile][2]
  std::vector<std::int8_t> quad_panels;   ///< [tiles][ceil(J/4)][tile][4]
  std::vector<float> weight_scales;       ///< per-filter; 0 if pruned
  std::vector<float> out_bias;            ///< per-filter; forced 0 if pruned
};

/// Packs an IntegerLayer into the SIMD layouts (prepare() time only).
PackedSimd pack_simd(const IntegerLayer& layer);

/// Explicit-SIMD integer convolution. Requires packed.usable, a tier
/// above kScalar, and a reduction that provably fits int32
/// (deploy/overflow.h) — callers below the bound delegate to the
/// blocked int64 kernels instead. Same im2col and final rescale
/// expressions as the scalar kernel, so outputs are byte-identical at
/// every tier and thread count. cols_scratch holds the int32 im2col
/// matrix; cols16/cols8 the interleaved narrowed copies (int8 used
/// only when int_reduction_fits_int8_madd proves it exact).
void conv_forward_into(SimdTier tier, const PackedSimd& packed, const ActCodes& acts,
                       int batch, int in_c, int height, int width, int kernel,
                       int stride, int pad, float* out,
                       std::vector<std::int32_t>& cols_scratch,
                       std::vector<std::int16_t>& cols16_scratch,
                       std::vector<std::uint8_t>& cols8_scratch,
                       const util::ExecContext& exec = {});

/// Explicit-SIMD fully-connected kernel; same requirements and
/// byte-identity contract as conv_forward_into. acts16/acts8 hold the
/// narrowed activation matrices (padded to the pair/quad boundary).
void linear_forward_into(SimdTier tier, const PackedSimd& packed, const ActCodes& acts,
                         int batch, int in_features, float* out,
                         std::vector<std::int16_t>& acts16_scratch,
                         std::vector<std::uint8_t>& acts8_scratch,
                         const util::ExecContext& exec = {});

}  // namespace simd

/// Explicit-SIMD integer backend over the packed panel layouts:
/// IntConv/IntLinear run hand-scheduled AVX2 kernels
/// (_mm256_madd_epi16 int16 pairs; _mm256_maddubs_epi16 int8 quads
/// when the shared overflow bound proves saturation impossible) on
/// CPUs that have AVX2, portable kernels everywhere else
/// (baseline-SSE2 pmaddwd on x86-64, GCC vector extensions
/// otherwise),
/// and delegate to the blocked/scalar kernels when the int32
/// accumulator is not certified or explicit SIMD is disabled
/// (CQ_SIMD=off). The tier is resolved by runtime CPUID at
/// construction — one binary, every x86 — and every tier is
/// byte-identical to ScalarBackend (backend_test pins each reachable
/// tier).
class SimdBackend : public BlockedBackend {
 public:
  SimdBackend() : tier_(resolve_simd_tier()) {}

  const char* name() const override { return "simd"; }
  void prepare(const ExecutionPlan& plan) override;
  void run(const PlanOp& op, const ExecutionPlan& plan, const BackendIo& io,
           BackendScratch& scratch, const util::ExecContext& exec) const override;
  /// "simd/avx2-i8", "simd/avx2", "simd/portable", or the delegated
  /// implementation's label ("blocked"/"scalar") — the resolved ISA
  /// cqar_info's dispatch column and the plan profiler rows show.
  const char* dispatch(const PlanOp& op) const override;
  /// Blocked panels plus the pair/quad SIMD panels.
  std::size_t prepared_bytes() const override;

  /// The tier this instance resolved at construction.
  SimdTier tier() const { return tier_; }

 private:
  /// Which implementation run()/dispatch() pick for an integer op —
  /// one decision procedure so the label can never lie about the
  /// kernel.
  enum class Path { kDelegate, kPortable, kAvx2, kAvx2Int8 };
  Path resolve_path(const PlanOp& op) const;

  SimdTier tier_;
  std::vector<simd::PackedSimd> packed_;  ///< by PlanOp::layer
  const ExecutionPlan* prepared_for_ = nullptr;
};

}  // namespace cq::deploy
