#include "deploy/artifact.h"

#include <cmath>
#include <cstring>
#include <fstream>
#include <set>

#include "nn/models/mlp.h"
#include "nn/models/resnet20.h"
#include "nn/models/vgg_small.h"
#include "util/crc32.h"

namespace cq::deploy {

namespace {

constexpr char kMagic[4] = {'C', 'Q', 'A', 'R'};
constexpr std::uint32_t kVersion = 1;

/// Bounds-checked little-endian payload writer/reader. Artifacts are a
/// few megabytes at most, so the whole payload lives in memory and the
/// CRC is computed over it in one pass.
class Writer {
 public:
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void i32(std::int32_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { raw(&v, sizeof v); }
  void f32(float v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }
  void bytes(const std::vector<std::uint8_t>& b) {
    u32(static_cast<std::uint32_t>(b.size()));
    raw(b.data(), b.size());
  }
  void raw(const void* data, std::size_t size) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + size);
  }
  const std::vector<std::uint8_t>& buffer() const { return buf_; }

 private:
  std::vector<std::uint8_t> buf_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint32_t u32() { return get<std::uint32_t>(); }
  std::int32_t i32() { return get<std::int32_t>(); }
  std::int64_t i64() { return get<std::int64_t>(); }
  float f32() { return get<float>(); }
  double f64() { return get<double>(); }
  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }
  std::vector<std::uint8_t> bytes() {
    const std::uint32_t n = u32();
    need(n);
    std::vector<std::uint8_t> b(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return b;
  }
  void raw(void* out, std::size_t size) {
    need(size);
    std::memcpy(out, data_.data() + pos_, size);
    pos_ += size;
  }
  bool done() const { return pos_ == data_.size(); }

 private:
  template <typename T>
  T get() {
    T v;
    raw(&v, sizeof v);
    return v;
  }
  void need(std::size_t n) {
    if (pos_ + n > data_.size()) {
      throw ArtifactError("artifact payload truncated");
    }
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

void write_tensor(Writer& w, const tensor::Tensor& t) {
  w.u32(static_cast<std::uint32_t>(t.rank()));
  for (std::size_t d = 0; d < t.rank(); ++d) w.u32(static_cast<std::uint32_t>(t.dim(d)));
  w.raw(t.data(), t.numel() * sizeof(float));
}

tensor::Tensor read_tensor(Reader& r) {
  const std::uint32_t rank = r.u32();
  if (rank > 8) throw ArtifactError("artifact tensor rank implausible");
  std::vector<int> dims(rank);
  std::size_t size = 1;
  for (auto& d : dims) {
    const std::uint32_t v = r.u32();
    if (v == 0 || v > (1u << 28)) throw ArtifactError("artifact tensor dim implausible");
    d = static_cast<int>(v);
    size *= v;
  }
  tensor::Tensor t{tensor::Shape(dims)};
  r.raw(t.data(), size * sizeof(float));
  return t;
}

/// The data pointers of every packed (quantized) weight tensor, used
/// to exclude them from the dense state on both the export and the
/// load side. filter_weights(0) starts at the weight tensor's origin.
std::set<const float*> packed_weight_pointers(nn::Model& model) {
  std::set<const float*> ptrs;
  for (const nn::ScoredLayerRef& ref : model.scored_layers()) {
    for (quant::QuantizableLayer* layer : ref.layers) {
      ptrs.insert(layer->filter_weights(0).data());
    }
  }
  return ptrs;
}

}  // namespace

int ArchDescriptor::int_param(const std::string& key) const {
  return static_cast<int>(std::llround(param(key)));
}

double ArchDescriptor::param(const std::string& key) const {
  const auto it = params.find(key);
  if (it == params.end()) {
    std::string available;
    for (const auto& [name, value] : params) {
      if (!available.empty()) available += ", ";
      available += name;
    }
    if (available.empty()) available = "<none>";
    throw ArtifactError("architecture descriptor '" + kind + "' missing parameter '" +
                        key + "' (available: " + available + ")");
  }
  return it->second;
}

double SizeReport::compression_ratio() const {
  const auto total = static_cast<double>(total_bytes());
  if (total <= 0.0) return 1.0;
  const double fp32 = static_cast<double>(dense_bytes + fp32_weight_bytes + act_quant_bytes);
  return fp32 / total;
}

ArchDescriptor describe_model(nn::Model& model) {
  ArchDescriptor arch;
  if (auto* vgg = dynamic_cast<nn::VggSmall*>(&model)) {
    const nn::VggSmallConfig& c = vgg->config();
    arch.kind = "VggSmall";
    arch.params = {{"in_channels", static_cast<double>(c.in_channels)},
                   {"image_size", static_cast<double>(c.image_size)},
                   {"num_classes", static_cast<double>(c.num_classes)},
                   {"c1", static_cast<double>(c.c1)},
                   {"c2", static_cast<double>(c.c2)},
                   {"c3", static_cast<double>(c.c3)},
                   {"f1", static_cast<double>(c.f1)},
                   {"f2", static_cast<double>(c.f2)},
                   {"f3", static_cast<double>(c.f3)},
                   {"seed", static_cast<double>(c.seed)}};
    return arch;
  }
  if (auto* resnet = dynamic_cast<nn::ResNet20*>(&model)) {
    const nn::ResNet20Config& c = resnet->config();
    arch.kind = "ResNet20";
    arch.params = {{"in_channels", static_cast<double>(c.in_channels)},
                   {"image_size", static_cast<double>(c.image_size)},
                   {"num_classes", static_cast<double>(c.num_classes)},
                   {"base_width", static_cast<double>(c.base_width)},
                   {"expand", static_cast<double>(c.expand)},
                   {"seed", static_cast<double>(c.seed)}};
    return arch;
  }
  if (auto* mlp = dynamic_cast<nn::Mlp*>(&model)) {
    const nn::MlpConfig& c = mlp->config();
    arch.kind = "Mlp";
    arch.params = {{"in_features", static_cast<double>(c.in_features)},
                   {"num_classes", static_cast<double>(c.num_classes)},
                   {"seed", static_cast<double>(c.seed)},
                   {"hidden_count", static_cast<double>(c.hidden.size())}};
    for (std::size_t i = 0; i < c.hidden.size(); ++i) {
      arch.params["hidden" + std::to_string(i)] = static_cast<double>(c.hidden[i]);
    }
    return arch;
  }
  throw ArtifactError("describe_model: unknown model kind '" + model.name() + "'");
}

std::unique_ptr<nn::Model> instantiate_model(const ArchDescriptor& arch) {
  if (arch.kind == "VggSmall") {
    nn::VggSmallConfig c;
    c.in_channels = arch.int_param("in_channels");
    c.image_size = arch.int_param("image_size");
    c.num_classes = arch.int_param("num_classes");
    c.c1 = arch.int_param("c1");
    c.c2 = arch.int_param("c2");
    c.c3 = arch.int_param("c3");
    c.f1 = arch.int_param("f1");
    c.f2 = arch.int_param("f2");
    c.f3 = arch.int_param("f3");
    c.seed = static_cast<std::uint64_t>(arch.param("seed"));
    return std::make_unique<nn::VggSmall>(c);
  }
  if (arch.kind == "ResNet20") {
    nn::ResNet20Config c;
    c.in_channels = arch.int_param("in_channels");
    c.image_size = arch.int_param("image_size");
    c.num_classes = arch.int_param("num_classes");
    c.base_width = arch.int_param("base_width");
    c.expand = arch.int_param("expand");
    c.seed = static_cast<std::uint64_t>(arch.param("seed"));
    return std::make_unique<nn::ResNet20>(c);
  }
  if (arch.kind == "Mlp") {
    nn::MlpConfig c;
    c.in_features = arch.int_param("in_features");
    c.num_classes = arch.int_param("num_classes");
    c.seed = static_cast<std::uint64_t>(arch.param("seed"));
    const int hidden_count = arch.int_param("hidden_count");
    c.hidden.clear();
    for (int i = 0; i < hidden_count; ++i) {
      c.hidden.push_back(arch.int_param("hidden" + std::to_string(i)));
    }
    return std::make_unique<nn::Mlp>(c);
  }
  throw ArtifactError("instantiate_model: unknown architecture kind '" + arch.kind + "'");
}

QuantizedArtifact export_model(nn::Model& model) {
  QuantizedArtifact artifact;
  artifact.arch = describe_model(model);

  for (nn::ActQuant* aq : model.activation_quantizers()) {
    artifact.act_quants.push_back({aq->bits(), aq->max_activation()});
  }

  for (const nn::ScoredLayerRef& ref : model.scored_layers()) {
    int idx = 0;
    for (quant::QuantizableLayer* layer : ref.layers) {
      const std::string key =
          ref.layers.size() > 1 ? ref.name + "#" + std::to_string(idx) : ref.name;
      artifact.packed_layers.push_back(pack_layer(*layer, key));
      ++idx;
    }
  }

  const std::set<const float*> packed = packed_weight_pointers(model);
  const auto params = model.parameters();
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (packed.count(params[i]->value.data()) != 0) continue;
    artifact.dense.emplace("p" + std::to_string(i), params[i]->value);
  }
  std::vector<tensor::Tensor*> buffers;
  model.collect_buffers(buffers);
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    artifact.dense.emplace("b" + std::to_string(i), *buffers[i]);
  }
  return artifact;
}

std::unique_ptr<nn::Model> instantiate(const QuantizedArtifact& artifact) {
  std::unique_ptr<nn::Model> model = instantiate_model(artifact.arch);

  // Dense state first (skipping the weight tensors that arrive packed;
  // the traversal below mirrors export_model exactly).
  const std::set<const float*> packed = packed_weight_pointers(*model);
  const auto params = model->parameters();
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (packed.count(params[i]->value.data()) != 0) continue;
    const auto it = artifact.dense.find("p" + std::to_string(i));
    if (it == artifact.dense.end()) {
      throw ArtifactError("artifact missing dense parameter p" + std::to_string(i));
    }
    if (it->second.shape() != params[i]->value.shape()) {
      throw ArtifactError("artifact dense parameter p" + std::to_string(i) +
                          " has mismatching shape");
    }
    params[i]->value = it->second;
  }
  std::vector<tensor::Tensor*> buffers;
  model->collect_buffers(buffers);
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    const auto it = artifact.dense.find("b" + std::to_string(i));
    if (it == artifact.dense.end()) {
      throw ArtifactError("artifact missing buffer b" + std::to_string(i));
    }
    if (it->second.shape() != buffers[i]->shape()) {
      throw ArtifactError("artifact buffer b" + std::to_string(i) +
                          " has mismatching shape");
    }
    *buffers[i] = it->second;
  }

  // Packed weights.
  std::size_t next = 0;
  for (const nn::ScoredLayerRef& ref : model->scored_layers()) {
    for (quant::QuantizableLayer* layer : ref.layers) {
      if (next >= artifact.packed_layers.size()) {
        throw ArtifactError("artifact has fewer packed layers than the architecture");
      }
      unpack_layer(artifact.packed_layers[next], *layer);
      ++next;
    }
  }
  if (next != artifact.packed_layers.size()) {
    throw ArtifactError("artifact has more packed layers than the architecture");
  }

  // Activation calibration.
  const auto aqs = model->activation_quantizers();
  if (aqs.size() != artifact.act_quants.size()) {
    throw ArtifactError("artifact activation quantizer count mismatch");
  }
  for (std::size_t i = 0; i < aqs.size(); ++i) {
    aqs[i]->set_calibrating(false);
    aqs[i]->set_max_activation(artifact.act_quants[i].max_activation);
    aqs[i]->set_bits(artifact.act_quants[i].bits);
  }

  model->set_training(false);
  return model;
}

void save_artifact(const std::string& path, const QuantizedArtifact& artifact) {
  Writer payload;
  payload.str(artifact.arch.kind);
  payload.u32(static_cast<std::uint32_t>(artifact.arch.params.size()));
  for (const auto& [key, value] : artifact.arch.params) {
    payload.str(key);
    payload.f64(value);
  }
  payload.u32(static_cast<std::uint32_t>(artifact.act_quants.size()));
  for (const ActQuantState& aq : artifact.act_quants) {
    payload.i32(aq.bits);
    payload.f32(aq.max_activation);
  }
  payload.u32(static_cast<std::uint32_t>(artifact.packed_layers.size()));
  for (const PackedLayer& layer : artifact.packed_layers) {
    payload.str(layer.name);
    payload.i32(layer.num_filters);
    payload.i64(layer.weights_per_filter);
    payload.f32(layer.range_hi);
    payload.bytes(layer.filter_bits);
    payload.bytes(layer.codes);
  }
  payload.u32(static_cast<std::uint32_t>(artifact.dense.size()));
  for (const auto& [key, tensor] : artifact.dense) {
    payload.str(key);
    write_tensor(payload, tensor);
  }

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("save_artifact: cannot open " + path);
  out.write(kMagic, sizeof kMagic);
  const std::uint32_t version = kVersion;
  out.write(reinterpret_cast<const char*>(&version), sizeof version);
  const std::uint64_t size = payload.buffer().size();
  out.write(reinterpret_cast<const char*>(&size), sizeof size);
  out.write(reinterpret_cast<const char*>(payload.buffer().data()),
            static_cast<std::streamsize>(payload.buffer().size()));
  const std::uint32_t crc = util::crc32(payload.buffer().data(), payload.buffer().size());
  out.write(reinterpret_cast<const char*>(&crc), sizeof crc);
  if (!out) throw std::runtime_error("save_artifact: write failed for " + path);
}

QuantizedArtifact load_artifact(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ArtifactError("load_artifact: cannot open " + path);
  std::vector<std::uint8_t> file((std::istreambuf_iterator<char>(in)),
                                 std::istreambuf_iterator<char>());
  constexpr std::size_t header = sizeof kMagic + sizeof(std::uint32_t) + sizeof(std::uint64_t);
  if (file.size() < header + sizeof(std::uint32_t)) {
    throw ArtifactError("load_artifact: file too small to be an artifact");
  }
  if (std::memcmp(file.data(), kMagic, sizeof kMagic) != 0) {
    throw ArtifactError("load_artifact: bad magic (not a CQ artifact)");
  }
  std::uint32_t version = 0;
  std::memcpy(&version, file.data() + sizeof kMagic, sizeof version);
  if (version != kVersion) {
    throw ArtifactError("load_artifact: unsupported artifact version " +
                        std::to_string(version));
  }
  std::uint64_t payload_size = 0;
  std::memcpy(&payload_size, file.data() + sizeof kMagic + sizeof version,
              sizeof payload_size);
  if (header + payload_size + sizeof(std::uint32_t) != file.size()) {
    throw ArtifactError("load_artifact: payload size does not match file size");
  }
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, file.data() + header + payload_size, sizeof stored_crc);
  const std::uint32_t actual_crc =
      util::crc32(file.data() + header, static_cast<std::size_t>(payload_size));
  if (stored_crc != actual_crc) {
    throw ArtifactError("load_artifact: CRC mismatch — artifact is corrupted");
  }

  Reader r(std::span<const std::uint8_t>(file.data() + header,
                                         static_cast<std::size_t>(payload_size)));
  QuantizedArtifact artifact;
  artifact.arch.kind = r.str();
  const std::uint32_t nparams = r.u32();
  for (std::uint32_t i = 0; i < nparams; ++i) {
    const std::string key = r.str();
    artifact.arch.params[key] = r.f64();
  }
  const std::uint32_t nact = r.u32();
  for (std::uint32_t i = 0; i < nact; ++i) {
    ActQuantState aq;
    aq.bits = r.i32();
    aq.max_activation = r.f32();
    artifact.act_quants.push_back(aq);
  }
  const std::uint32_t npacked = r.u32();
  for (std::uint32_t i = 0; i < npacked; ++i) {
    PackedLayer layer;
    layer.name = r.str();
    layer.num_filters = r.i32();
    layer.weights_per_filter = r.i64();
    layer.range_hi = r.f32();
    layer.filter_bits = r.bytes();
    layer.codes = r.bytes();
    if (layer.num_filters < 0 || layer.weights_per_filter < 0) {
      throw ArtifactError("load_artifact: negative layer geometry");
    }
    artifact.packed_layers.push_back(std::move(layer));
  }
  const std::uint32_t ndense = r.u32();
  for (std::uint32_t i = 0; i < ndense; ++i) {
    const std::string key = r.str();
    artifact.dense.emplace(key, read_tensor(r));
  }
  if (!r.done()) {
    throw ArtifactError("load_artifact: trailing bytes after payload");
  }
  return artifact;
}

SizeReport size_report(const QuantizedArtifact& artifact) {
  SizeReport report;
  for (const PackedLayer& layer : artifact.packed_layers) {
    report.packed_code_bytes += layer.codes.size();
    report.packed_meta_bytes += layer.filter_bits.size() + sizeof(float);
    report.fp32_weight_bytes += static_cast<std::size_t>(layer.num_filters) *
                                static_cast<std::size_t>(layer.weights_per_filter) *
                                sizeof(float);
  }
  for (const auto& [key, tensor] : artifact.dense) {
    report.dense_bytes += tensor.numel() * sizeof(float);
  }
  report.act_quant_bytes =
      artifact.act_quants.size() * (sizeof(std::int32_t) + sizeof(float));
  return report;
}

}  // namespace cq::deploy
