// Static verifier over the ExecutionPlan IR.
//
// compile_plan argues its invariants in comments; this file proves
// them per plan, after the fact, from nothing but the plan itself:
// dataflow is re-walked, shapes are re-derived, slot lifetimes are
// recomputed from the op list, and the integer-path overflow bound is
// recomputed from the actual packed codes through the same
// deploy/overflow.h helper the blocked backend dispatches on. Anything
// that rewrites the IR — today's compiler, the ROADMAP's optimizer
// passes — must produce programs that come back clean.
//
// The checks never throw and never read out of bounds on corrupt
// input: structurally invalid slot references are reported and the
// dependent checks for that op are skipped.

#include "deploy/verify.h"

#include <algorithm>
#include <string>

#include "deploy/arena.h"
#include "deploy/overflow.h"
#include "quant/uniform.h"

namespace cq::deploy {

const char* verify_rule_name(VerifyRule rule) {
  switch (rule) {
    case VerifyRule::DefBeforeUse: return "def-before-use";
    case VerifyRule::SingleAssignment: return "single-assignment";
    case VerifyRule::DanglingIn1: return "dangling-in1";
    case VerifyRule::IoSlots: return "io-slots";
    case VerifyRule::Shape: return "shape";
    case VerifyRule::ArenaBounds: return "arena-bounds";
    case VerifyRule::ArenaOverlap: return "arena-overlap";
    case VerifyRule::Alias: return "alias";
    case VerifyRule::IntLayer: return "int-layer";
    case VerifyRule::CodeRange: return "code-range";
    case VerifyRule::Overflow: return "overflow";
    case VerifyRule::Epilogue: return "epilogue";
    case VerifyRule::CodeDomain: return "code-domain";
  }
  return "?";
}

const std::vector<VerifyRule>& all_verify_rules() {
  static const std::vector<VerifyRule> rules = {
      VerifyRule::DefBeforeUse, VerifyRule::SingleAssignment,
      VerifyRule::DanglingIn1,  VerifyRule::IoSlots,
      VerifyRule::Shape,        VerifyRule::ArenaBounds,
      VerifyRule::ArenaOverlap, VerifyRule::Alias,
      VerifyRule::IntLayer,     VerifyRule::CodeRange,
      VerifyRule::Overflow,     VerifyRule::Epilogue,
      VerifyRule::CodeDomain,
  };
  return rules;
}

int VerifyReport::count(VerifyRule rule) const {
  int n = 0;
  for (const PlanDiagnostic& d : diagnostics) n += (d.rule == rule);
  return n;
}

std::string format_diagnostics(const VerifyReport& report) {
  std::string out;
  for (const PlanDiagnostic& d : report.diagnostics) {
    if (d.op >= 0) {
      out += "op #" + std::to_string(d.op);
    } else {
      out += "plan";
    }
    out += " [" + std::string(verify_rule_name(d.rule)) + "]";
    if (d.slot >= 0) out += " slot " + std::to_string(d.slot);
    out += ": " + d.message + "\n";
  }
  return out;
}

namespace {

/// The ops the buffer planner may run in place (output interval ==
/// in0 interval) — the shared deploy/arena.h definition the planner
/// itself allocates with, so planner and proof cannot diverge. The
/// contract is "reads element i strictly before writing element i".
bool elementwise_alias_legal(OpKind kind) { return arena_alias_legal(kind); }

std::string shape_str(const tensor::Shape& shape) {
  return tensor::shape_to_string(shape);
}

class Verifier {
 public:
  explicit Verifier(const ExecutionPlan& plan)
      : plan_(plan),
        num_ops_(static_cast<int>(plan.ops().size())),
        num_slots_(plan.slot_count()) {}

  VerifyReport run() {
    check_dataflow();
    check_shapes();
    check_arena();
    check_integer_path();
    check_epilogue();
    check_code_domain();
    return std::move(report_);
  }

 private:
  static constexpr int kUndefined = -2;  ///< def_ marker: slot never written
  static constexpr int kInputDef = -1;   ///< def_ marker: the plan input

  void add(VerifyRule rule, int op, int slot, std::string message) {
    report_.diagnostics.push_back({rule, op, slot, std::move(message)});
  }

  bool slot_ok(int slot) const { return slot >= 0 && slot < num_slots_; }

  const PlanSlot& slot(int id) const {
    return plan_.slots()[static_cast<std::size_t>(id)];
  }

  /// Rules 1: def-before-use, single-assignment, dangling in1, and
  /// the plan input/output slots. Also computes def_/last_ — the slot
  /// lifetimes every later phase (and the arena proof) runs on.
  void check_dataflow() {
    def_.assign(static_cast<std::size_t>(num_slots_), kUndefined);
    last_.assign(static_cast<std::size_t>(num_slots_), kUndefined);

    const int input = plan_.input_slot();
    if (slot_ok(input)) {
      def_[static_cast<std::size_t>(input)] = kInputDef;
      last_[static_cast<std::size_t>(input)] = kInputDef;
    } else {
      add(VerifyRule::IoSlots, -1, input,
          "input slot id " + std::to_string(input) + " is not a valid slot");
    }

    for (int i = 0; i < num_ops_; ++i) {
      const PlanOp& op = plan_.ops()[static_cast<std::size_t>(i)];
      check_use(i, op.in0, "in0");
      // in1 is the residual operand: present exactly on Add ops and on
      // compute ops carrying a fused ep_add epilogue.
      if (op.kind == OpKind::Add || op.ep_add) {
        if (op.in1 < 0) {
          add(VerifyRule::DanglingIn1, i, op.in1,
              op.kind == OpKind::Add
                  ? "Add op is missing its second input"
                  : "ep_add epilogue is missing its residual operand");
        } else {
          check_use(i, op.in1, "in1");
        }
      } else if (op.in1 >= 0) {
        add(VerifyRule::DanglingIn1, i, op.in1,
            std::string("in1 set on an op that is neither Add nor ep_add (") +
                op_kind_name(op.kind) + ")");
      }
      if (!slot_ok(op.out)) {
        add(VerifyRule::SingleAssignment, i, op.out,
            "output slot id " + std::to_string(op.out) + " is not a valid slot");
      } else if (def_[static_cast<std::size_t>(op.out)] != kUndefined) {
        const int prev = def_[static_cast<std::size_t>(op.out)];
        add(VerifyRule::SingleAssignment, i, op.out,
            "slot is written a second time (first defined by " +
                (prev == kInputDef ? std::string("the plan input")
                                   : "op #" + std::to_string(prev)) +
                ")");
      } else {
        def_[static_cast<std::size_t>(op.out)] = i;
        last_[static_cast<std::size_t>(op.out)] = i;  // dies at birth until read
      }
    }

    const int output = plan_.output_slot();
    if (!slot_ok(output)) {
      add(VerifyRule::IoSlots, -1, output,
          "output slot id " + std::to_string(output) + " is not a valid slot");
    } else {
      if (def_[static_cast<std::size_t>(output)] == kUndefined) {
        add(VerifyRule::IoSlots, -1, output, "output slot is never written");
      }
      // The program result is read after the last op.
      last_[static_cast<std::size_t>(output)] = num_ops_;
      if (slot(output).shape != tensor::Shape{plan_.num_classes()}) {
        add(VerifyRule::IoSlots, -1, output,
            "output slot shape " + shape_str(slot(output).shape) +
                " does not match num_classes " +
                std::to_string(plan_.num_classes()));
      }
    }
    if (slot_ok(input)) {
      if (last_[static_cast<std::size_t>(input)] == kInputDef && input != output) {
        add(VerifyRule::IoSlots, -1, input, "input slot is never read by any op");
      }
      if (slot(input).shape != plan_.sample_shape()) {
        add(VerifyRule::IoSlots, -1, input,
            "input slot shape " + shape_str(slot(input).shape) +
                " does not match sample shape " + shape_str(plan_.sample_shape()));
      }
    }
  }

  /// One operand read: id validity, def-before-use, and the last_
  /// bookkeeping the lifetime phases depend on.
  void check_use(int op_index, int used, const char* operand) {
    if (used < 0) {
      add(VerifyRule::DefBeforeUse, op_index, used,
          std::string("op has no ") + operand + " input");
      return;
    }
    if (!slot_ok(used)) {
      add(VerifyRule::DefBeforeUse, op_index, used,
          std::string(operand) + " slot id " + std::to_string(used) +
              " is not a valid slot");
      return;
    }
    if (def_[static_cast<std::size_t>(used)] == kUndefined ||
        def_[static_cast<std::size_t>(used)] >= op_index) {
      add(VerifyRule::DefBeforeUse, op_index, used,
          std::string(operand) + " reads slot " + std::to_string(used) +
              " before any op defines it");
    }
    last_[static_cast<std::size_t>(used)] =
        std::max(last_[static_cast<std::size_t>(used)], op_index);
  }

  /// Rule 2: shape consistency. Re-derives each op's output shape from
  /// its input shapes and geometry fields and compares against the
  /// recorded slot shapes; also pins slot numel to its shape.
  void check_shapes() {
    for (int s = 0; s < num_slots_; ++s) {
      const PlanSlot& sl = slot(s);
      if (sl.numel != tensor::shape_numel(sl.shape)) {
        add(VerifyRule::Shape, -1, s,
            "slot numel " + std::to_string(sl.numel) + " disagrees with shape " +
                shape_str(sl.shape));
      }
    }
    for (int i = 0; i < num_ops_; ++i) {
      const PlanOp& op = plan_.ops()[static_cast<std::size_t>(i)];
      if (!slot_ok(op.in0) || !slot_ok(op.out)) continue;  // reported above
      check_op_shape(i, op);
    }
  }

  void expect_shape(int op_index, int slot_id, const tensor::Shape& want,
                    const char* what) {
    const tensor::Shape& got = slot(slot_id).shape;
    if (got != want) {
      add(VerifyRule::Shape, op_index, slot_id,
          std::string(what) + " shape " + shape_str(got) +
              " does not re-derive to " + shape_str(want));
    }
  }

  /// Checks that a [C, H, W] op input matches the geometry the op
  /// record carries; returns false (after reporting) when it does not,
  /// so the output re-derivation is not attempted from bad geometry.
  bool expect_chw_input(int op_index, const PlanOp& op) {
    const tensor::Shape want{op.in_c, op.in_h, op.in_w};
    if (slot(op.in0).shape != want) {
      add(VerifyRule::Shape, op_index, op.in0,
          "input shape " + shape_str(slot(op.in0).shape) +
              " disagrees with op geometry " + shape_str(want));
      return false;
    }
    return true;
  }

  void check_op_shape(int i, const PlanOp& op) {
    switch (op.kind) {
      case OpKind::EncodeAct:
      case OpKind::Relu:
        expect_shape(i, op.out, slot(op.in0).shape, "output");
        return;
      case OpKind::Flatten:
        expect_shape(
            i, op.out,
            {static_cast<int>(tensor::shape_numel(slot(op.in0).shape))}, "output");
        return;
      case OpKind::Add:
        if (slot_ok(op.in1)) {
          expect_shape(i, op.in1, slot(op.in0).shape, "second input");
        }
        expect_shape(i, op.out, slot(op.in0).shape, "output");
        return;
      case OpKind::BatchNorm: {
        if (!expect_chw_input(i, op)) return;
        expect_shape(i, op.out, slot(op.in0).shape, "output");
        const auto channels = static_cast<std::size_t>(op.in_c);
        if (op.bn_mean.size() != channels || op.bn_inv_std.size() != channels ||
            op.bn_gamma.size() != channels || op.bn_beta.size() != channels) {
          add(VerifyRule::Shape, i, op.out,
              "batch-norm per-channel vectors do not all have " +
                  std::to_string(op.in_c) + " entries");
        }
        return;
      }
      case OpKind::IntConv:
      case OpKind::FloatConv: {
        if (!expect_chw_input(i, op)) return;
        if (op.kernel <= 0 || op.stride <= 0 || op.pad < 0) {
          add(VerifyRule::Shape, i, op.out, "conv kernel/stride/pad are not valid");
          return;
        }
        const int oh = (op.in_h + 2 * op.pad - op.kernel) / op.stride + 1;
        const int ow = (op.in_w + 2 * op.pad - op.kernel) / op.stride + 1;
        if (oh != op.out_h || ow != op.out_w || oh <= 0 || ow <= 0) {
          add(VerifyRule::Shape, i, op.out,
              "recorded conv output " + std::to_string(op.out_h) + "x" +
                  std::to_string(op.out_w) + " does not re-derive to " +
                  std::to_string(oh) + "x" + std::to_string(ow));
          return;
        }
        expect_shape(i, op.out, {op.out_c, op.out_h, op.out_w}, "output");
        if (op.kind == OpKind::FloatConv) {
          const int patch = op.in_c * op.kernel * op.kernel;
          if (op.weight.shape() != tensor::Shape{op.out_c, patch} ||
              op.bias.size() != static_cast<std::size_t>(op.out_c)) {
            add(VerifyRule::Shape, i, op.out,
                "float conv weight/bias do not match geometry [" +
                    std::to_string(op.out_c) + ", " + std::to_string(patch) + "]");
          }
        }
        return;
      }
      case OpKind::IntLinear:
      case OpKind::FloatLinear: {
        expect_shape(i, op.in0, tensor::Shape{op.in_features}, "input");
        expect_shape(i, op.out, tensor::Shape{op.out_features}, "output");
        if (op.kind == OpKind::FloatLinear &&
            (op.weight.shape() != tensor::Shape{op.out_features, op.in_features} ||
             op.bias.size() != static_cast<std::size_t>(op.out_features))) {
          add(VerifyRule::Shape, i, op.out,
              "float linear weight/bias do not match geometry [" +
                  std::to_string(op.out_features) + ", " +
                  std::to_string(op.in_features) + "]");
        }
        return;
      }
      case OpKind::MaxPool: {
        if (!expect_chw_input(i, op)) return;
        if (op.kernel <= 0 || op.stride <= 0) {
          add(VerifyRule::Shape, i, op.out, "max pool kernel/stride are not valid");
          return;
        }
        const int oh = (op.in_h - op.kernel) / op.stride + 1;
        const int ow = (op.in_w - op.kernel) / op.stride + 1;
        if (op.out_c != op.in_c || oh != op.out_h || ow != op.out_w || oh <= 0 ||
            ow <= 0) {
          add(VerifyRule::Shape, i, op.out,
              "recorded max pool output does not re-derive from its input");
          return;
        }
        expect_shape(i, op.out, {op.out_c, op.out_h, op.out_w}, "output");
        return;
      }
      case OpKind::AvgPool:
        if (!expect_chw_input(i, op)) return;
        expect_shape(i, op.out, tensor::Shape{op.in_c}, "output");
        return;
    }
  }

  /// Rule 3: arena safety. Slot intervals stay inside the arena;
  /// memory-overlapping slots are never simultaneously live; in-place
  /// aliases are exact, elementwise-legal, over a dying in0 only.
  ///
  /// All offsets and sizes here are per sample. The runtime interval
  /// for batch N is [N*offset, N*(offset+numel)): scaling by N is
  /// monotone, so per-sample disjointness (off_a + numel_a <= off_b)
  /// implies disjointness at every batch size, and per-sample equality
  /// stays equality. Checking the per-sample intervals therefore *is*
  /// the symbolic proof for all N.
  void check_arena() {
    const std::size_t arena = plan_.arena_floats();
    for (int s = 0; s < num_slots_; ++s) {
      const PlanSlot& sl = slot(s);
      if (sl.offset + sl.numel > arena) {
        add(VerifyRule::ArenaBounds, -1, s,
            "interval [" + std::to_string(sl.offset) + ", " +
                std::to_string(sl.offset + sl.numel) + ") exceeds arena of " +
                std::to_string(arena) + " floats/sample");
      }
    }

    const auto overlap = [this](int a, int b) {
      const PlanSlot& sa = slot(a);
      const PlanSlot& sb = slot(b);
      return sa.offset < sb.offset + sb.numel && sb.offset < sa.offset + sa.numel;
    };

    // In-place legality of each op's own output vs its inputs.
    std::vector<char> related(
        static_cast<std::size_t>(num_slots_) * static_cast<std::size_t>(num_slots_),
        0);
    const auto relate = [&](int a, int b) {
      related[static_cast<std::size_t>(a) * static_cast<std::size_t>(num_slots_) +
              static_cast<std::size_t>(b)] = 1;
      related[static_cast<std::size_t>(b) * static_cast<std::size_t>(num_slots_) +
              static_cast<std::size_t>(a)] = 1;
    };
    for (int i = 0; i < num_ops_; ++i) {
      const PlanOp& op = plan_.ops()[static_cast<std::size_t>(i)];
      if (!slot_ok(op.out)) continue;
      for (const int in : {op.in0, op.in1}) {
        if (!slot_ok(in)) continue;
        relate(op.out, in);
        if (!overlap(op.out, in)) continue;
        const bool exact = slot(op.out).offset == slot(in).offset &&
                           slot(op.out).numel == slot(in).numel;
        if (!exact) {
          add(VerifyRule::Alias, i, op.out,
              "output interval partially overlaps input slot " + std::to_string(in));
        } else if (!elementwise_alias_legal(op.kind)) {
          add(VerifyRule::Alias, i, op.out,
              std::string("in-place alias on non-elementwise op ") +
                  op_kind_name(op.kind));
        } else if (in != op.in0) {
          add(VerifyRule::Alias, i, op.out,
              "output aliases in1; only in0 may be overwritten in place");
        } else if (last_[static_cast<std::size_t>(in)] > i) {
          add(VerifyRule::Alias, i, op.out,
              "aliased input slot " + std::to_string(in) +
                  " is still read by op #" +
                  std::to_string(last_[static_cast<std::size_t>(in)]));
        }
      }
    }

    // Lifetime disjointness of every unrelated memory-overlapping
    // pair. Live range of a slot: [def op, last read] (the plan input
    // is live from the start; the plan output past the last op).
    for (int a = 0; a < num_slots_; ++a) {
      if (def_[static_cast<std::size_t>(a)] == kUndefined) continue;
      for (int b = a + 1; b < num_slots_; ++b) {
        if (def_[static_cast<std::size_t>(b)] == kUndefined) continue;
        if (related[static_cast<std::size_t>(a) *
                        static_cast<std::size_t>(num_slots_) +
                    static_cast<std::size_t>(b)] != 0) {
          continue;  // producer/consumer pairs are judged by the alias rules
        }
        if (!overlap(a, b)) continue;
        const int live_from = std::max(def_[static_cast<std::size_t>(a)],
                                       def_[static_cast<std::size_t>(b)]);
        const int live_to = std::min(last_[static_cast<std::size_t>(a)],
                                     last_[static_cast<std::size_t>(b)]);
        if (live_from <= live_to) {
          add(VerifyRule::ArenaOverlap, std::max(live_from, 0), a,
              "slots " + std::to_string(a) + " and " + std::to_string(b) +
                  " overlap in the arena while both are live (ops #" +
                  std::to_string(live_from) + "..#" + std::to_string(live_to) +
                  "), at every batch size");
        }
      }
    }
  }

  /// Rule 4: integer-path certification. Layer references and geometry
  /// must match the op records; every code must respect its declared
  /// bit-width (the premise of the overflow bound); and the
  /// accumulator bound — recomputed from the actual codes through
  /// deploy/overflow.h, the helper BlockedBackend itself dispatches on
  /// — must certify int64 safety. The certificate also records the
  /// int32 fast-path decision the blocked kernels will take.
  void check_integer_path() {
    for (int i = 0; i < num_ops_; ++i) {
      const PlanOp& op = plan_.ops()[static_cast<std::size_t>(i)];
      const bool integer_op =
          op.kind == OpKind::IntConv || op.kind == OpKind::IntLinear;
      if (op.kind == OpKind::EncodeAct || integer_op) {
        if (op.act_bits < 1 || op.act_bits > 16) {
          add(VerifyRule::IntLayer, i, -1,
              "activation bits " + std::to_string(op.act_bits) +
                  " outside the encodable [1, 16]");
        }
        if (!(op.act_hi > 0.0f)) {
          add(VerifyRule::IntLayer, i, -1, "activation clip bound is not positive");
        }
      }
      if (!integer_op) continue;

      if (op.layer < 0 ||
          op.layer >= static_cast<int>(plan_.integer_layers().size())) {
        add(VerifyRule::IntLayer, i, -1,
            "layer index " + std::to_string(op.layer) + " outside the " +
                std::to_string(plan_.integer_layers().size()) +
                " integer layers of the plan");
        continue;
      }
      const IntegerLayer& layer =
          plan_.integer_layers()[static_cast<std::size_t>(op.layer)];
      const bool conv = op.kind == OpKind::IntConv;
      const std::int64_t want_terms =
          conv ? static_cast<std::int64_t>(op.in_c) * op.kernel * op.kernel
               : op.in_features;
      const std::int32_t want_filters = conv ? op.out_c : op.out_features;
      if (layer.num_filters != want_filters ||
          layer.weights_per_filter != want_terms) {
        add(VerifyRule::IntLayer, i, -1,
            "layer geometry [" + std::to_string(layer.num_filters) + " x " +
                std::to_string(layer.weights_per_filter) +
                "] does not match the op record [" + std::to_string(want_filters) +
                " x " + std::to_string(want_terms) + "]");
      }
      const auto filters = static_cast<std::size_t>(layer.num_filters);
      if (layer.filter_bits.size() != filters || layer.bias.size() != filters ||
          layer.num_filters < 0 || layer.weights_per_filter < 0 ||
          layer.codes.size() !=
              filters * static_cast<std::size_t>(layer.weights_per_filter)) {
        add(VerifyRule::IntLayer, i, -1,
            "layer metadata sizes (filter_bits/codes/bias) are inconsistent");
        continue;  // the code scan below cannot run safely
      }

      bool scannable = true;
      for (std::size_t k = 0; k < filters; ++k) {
        const int bits = layer.filter_bits[k];
        if (bits > 16) {
          add(VerifyRule::CodeRange, i, -1,
              "filter " + std::to_string(k) + " declares " + std::to_string(bits) +
                  " bits, outside the representable [0, 16]");
          scannable = false;
          continue;
        }
        const std::int32_t levels = quant::levels_for_bits(bits);
        const std::int32_t* row =
            layer.codes.data() + k * static_cast<std::size_t>(layer.weights_per_filter);
        for (std::int64_t j = 0; j < layer.weights_per_filter; ++j) {
          const bool in_range =
              bits == 0 ? row[j] == 0 : row[j] >= 0 && row[j] < levels;
          if (!in_range) {
            add(VerifyRule::CodeRange, i, -1,
                "filter " + std::to_string(k) + " code " + std::to_string(row[j]) +
                    " exceeds its " + std::to_string(bits) +
                    "-bit range — the overflow bound no longer holds");
            break;  // one finding per filter is enough to name the rule
          }
        }
      }
      if (!scannable) continue;

      IntOpCertificate cert;
      cert.op = i;
      cert.layer = op.layer;
      cert.terms = layer.weights_per_filter;
      cert.max_abs_weight = max_abs_centered_code(layer);
      cert.bound = int_reduction_bound(cert.max_abs_weight, op.act_bits, cert.terms);
      cert.fits_int64 =
          int_reduction_fits_int64(cert.max_abs_weight, op.act_bits, cert.terms);
      const bool packable =
          std::all_of(layer.filter_bits.begin(), layer.filter_bits.end(),
                      [](std::uint8_t b) { return b <= 15; });
      cert.int32_fast_path =
          packable &&
          int_reduction_fits_int32(cert.max_abs_weight, op.act_bits, cert.terms);
      // Same helper SimdBackend::resolve_path calls, so this record is
      // by construction the backend's maddubs-eligibility decision.
      cert.int8_fast_path =
          packable &&
          int_reduction_fits_int8_madd(cert.max_abs_weight, op.act_bits, cert.terms);
      if (!cert.fits_int64) {
        add(VerifyRule::Overflow, i, -1,
            "accumulator bound " + std::to_string(cert.bound) +
                " (max|w| " + std::to_string(cert.max_abs_weight) + " * act * " +
                std::to_string(cert.terms) +
                " terms) is not certified to fit int64");
      }
      report_.certificates.push_back(cert);
    }
  }

  /// Rule 5: epilogue legality. Fused flags live only on compute ops;
  /// each stage's preconditions mirror the standalone op it replaces
  /// (ep_bn is per-channel over the conv output, ep_add needs a
  /// shape-matched residual operand, ep_encode a well-formed grid).
  void check_epilogue() {
    for (int i = 0; i < num_ops_; ++i) {
      const PlanOp& op = plan_.ops()[static_cast<std::size_t>(i)];
      if (!is_compute_op(op.kind)) {
        if (op.ep_bn || op.ep_add || op.ep_relu || op.ep_encode ||
            op.in_codes) {
          add(VerifyRule::Epilogue, i, -1,
              std::string("epilogue/in_codes flags on non-compute op ") +
                  op_kind_name(op.kind));
        }
        continue;
      }
      if (op.ep_bn) {
        if (op.kind != OpKind::IntConv && op.kind != OpKind::FloatConv) {
          add(VerifyRule::Epilogue, i, -1,
              "ep_bn on a linear op — batch-norm is per-channel over [C, H, W]");
        } else {
          const auto channels = static_cast<std::size_t>(op.out_c);
          if (op.bn_mean.size() != channels ||
              op.bn_inv_std.size() != channels ||
              op.bn_gamma.size() != channels ||
              op.bn_beta.size() != channels) {
            add(VerifyRule::Epilogue, i, -1,
                "ep_bn per-channel vectors do not all have " +
                    std::to_string(op.out_c) + " entries");
          }
        }
      }
      if (op.ep_add && slot_ok(op.in1) && slot_ok(op.out) &&
          slot(op.in1).shape != slot(op.out).shape) {
        add(VerifyRule::Epilogue, i, op.in1,
            "ep_add residual operand shape " + shape_str(slot(op.in1).shape) +
                " does not match the output shape " +
                shape_str(slot(op.out).shape));
      }
      if (op.ep_encode) {
        if (op.out_bits < 1 || op.out_bits > 16) {
          add(VerifyRule::Epilogue, i, -1,
              "ep_encode output bits " + std::to_string(op.out_bits) +
                  " outside the encodable [1, 16]");
        }
        if (!(op.out_hi > 0.0f)) {
          add(VerifyRule::Epilogue, i, -1,
              "ep_encode output clip bound is not positive");
        }
      }
    }
  }

  /// Rule 6: code-domain typing. An ep_encode output holds integer
  /// grid codes (stored as floats); the typing flows through the
  /// code-transparent MaxPool/Flatten and must be consumed exclusively
  /// by in_codes integer ops whose activation grid matches exactly —
  /// anything else would read codes as real values (or re-encode
  /// already-encoded data) and silently change inference bytes.
  void check_code_domain() {
    struct SlotGrid {
      float hi = 0.0f;
      int bits = 0;
      bool codes = false;
    };
    std::vector<SlotGrid> domain(static_cast<std::size_t>(num_slots_));
    for (int i = 0; i < num_ops_; ++i) {
      const PlanOp& op = plan_.ops()[static_cast<std::size_t>(i)];
      const bool integer_op =
          op.kind == OpKind::IntConv || op.kind == OpKind::IntLinear;
      if (slot_ok(op.in0)) {
        const SlotGrid in = domain[static_cast<std::size_t>(op.in0)];
        const bool transparent =
            op.kind == OpKind::MaxPool || op.kind == OpKind::Flatten;
        if (in.codes) {
          if (integer_op && op.in_codes) {
            if (in.hi != op.act_hi || in.bits != op.act_bits) {
              add(VerifyRule::CodeDomain, i, op.in0,
                  "code-typed input grid (" + std::to_string(in.hi) + ", " +
                      std::to_string(in.bits) +
                      "b) does not match the op's activation grid (" +
                      std::to_string(op.act_hi) + ", " +
                      std::to_string(op.act_bits) + "b)");
            }
          } else if (!transparent) {
            add(VerifyRule::CodeDomain, i, op.in0,
                std::string("code-typed slot consumed by ") +
                    op_kind_name(op.kind) +
                    " which expects real activation values");
          }
        } else if (integer_op && op.in_codes) {
          add(VerifyRule::CodeDomain, i, op.in0,
              "in_codes set but in0 does not hold grid codes");
        }
      }
      if (slot_ok(op.in1) && domain[static_cast<std::size_t>(op.in1)].codes) {
        add(VerifyRule::CodeDomain, i, op.in1,
            "code-typed slot used as a residual operand");
      }
      if (!slot_ok(op.out)) continue;
      SlotGrid out;
      if (is_compute_op(op.kind) && op.ep_encode) {
        out = {op.out_hi, op.out_bits, true};
      } else if ((op.kind == OpKind::MaxPool || op.kind == OpKind::Flatten) &&
                 slot_ok(op.in0)) {
        out = domain[static_cast<std::size_t>(op.in0)];
      }
      domain[static_cast<std::size_t>(op.out)] = out;
    }
    const int output = plan_.output_slot();
    if (slot_ok(output) && domain[static_cast<std::size_t>(output)].codes) {
      add(VerifyRule::CodeDomain, -1, output,
          "the plan output slot holds grid codes, not class scores");
    }
  }

  const ExecutionPlan& plan_;
  const int num_ops_;
  const int num_slots_;
  std::vector<int> def_;   ///< defining op per slot (kInputDef / kUndefined)
  std::vector<int> last_;  ///< last reading op per slot (num_ops_ for output)
  VerifyReport report_;
};

}  // namespace

VerifyReport verify_plan(const ExecutionPlan& plan) {
  return Verifier(plan).run();
}

}  // namespace cq::deploy
