// The byte-exact reference backend: the kernels serve::EngineSession's
// interpreter originally hard-wired, moved behind the Backend seam
// expression for expression. Every other backend's byte-identity
// contract is defined against this file.

#include <cstring>
#include <limits>

#include "deploy/backend.h"
#include "quant/uniform.h"
#include "tensor/ops.h"

namespace cq::deploy {

void ScalarBackend::run(const PlanOp& op, const ExecutionPlan& plan,
                        const BackendIo& io, BackendScratch& scratch,
                        const util::ExecContext& exec) const {
  const std::vector<PlanSlot>& slots = plan.slots();
  const int batch = io.batch;
  const std::size_t out_numel =
      slots[static_cast<std::size_t>(op.out)].numel * static_cast<std::size_t>(batch);
  const float* in0 = io.in0;
  float* out = io.out;

  // Every case reproduces the float arithmetic of the module it was
  // lowered from, expression for expression — the plan-vs-module
  // byte-identity property test pins this down.
  switch (op.kind) {
    case OpKind::EncodeAct: {
      const quant::UniformRange range{0.0f, op.act_hi};
      quant::quantize_span({in0, out_numel}, {out, out_numel}, range, op.act_bits);
      return;
    }
    case OpKind::Relu: {
      for (std::size_t i = 0; i < out_numel; ++i) {
        out[i] = in0[i] > 0.0f ? in0[i] : 0.0f;
      }
      return;
    }
    case OpKind::Flatten: {
      // Pure reshape; free when the planner aliased the slots.
      if (out != in0) std::memcpy(out, in0, out_numel * sizeof(float));
      return;
    }
    case OpKind::Add: {
      const float* in1 = io.in1;
      for (std::size_t i = 0; i < out_numel; ++i) out[i] = in0[i] + in1[i];
      return;
    }
    case OpKind::BatchNorm: {
      const int spatial = op.in_h * op.in_w;
      for (int c = 0; c < op.in_c; ++c) {
        const auto ci = static_cast<std::size_t>(c);
        const float mean = op.bn_mean[ci];
        const float inv_std = op.bn_inv_std[ci];
        const float g = op.bn_gamma[ci];
        const float b = op.bn_beta[ci];
        for (int n = 0; n < batch; ++n) {
          const std::size_t off =
              (static_cast<std::size_t>(n) * op.in_c + ci) * spatial;
          const float* src = in0 + off;
          float* dst = out + off;
          for (int s = 0; s < spatial; ++s) {
            const float xh = (src[s] - mean) * inv_std;
            dst[s] = g * xh + b;
          }
        }
      }
      return;
    }
    case OpKind::MaxPool: {
      std::size_t oidx = 0;
      for (int n = 0; n < batch; ++n) {
        for (int c = 0; c < op.in_c; ++c) {
          const float* plane =
              in0 + (static_cast<std::size_t>(n) * op.in_c + c) * op.in_h * op.in_w;
          for (int y = 0; y < op.out_h; ++y) {
            for (int x = 0; x < op.out_w; ++x, ++oidx) {
              float best = -std::numeric_limits<float>::infinity();
              for (int ky = 0; ky < op.kernel; ++ky) {
                const int iy = y * op.stride + ky;
                for (int kx = 0; kx < op.kernel; ++kx) {
                  const int ix = x * op.stride + kx;
                  const float v = plane[iy * op.in_w + ix];
                  if (v > best) best = v;
                }
              }
              out[oidx] = best;
            }
          }
        }
      }
      return;
    }
    case OpKind::AvgPool: {
      const int spatial = op.in_h * op.in_w;
      const float inv = 1.0f / static_cast<float>(spatial);
      for (int n = 0; n < batch; ++n) {
        for (int c = 0; c < op.in_c; ++c) {
          const float* plane =
              in0 + (static_cast<std::size_t>(n) * op.in_c + c) * spatial;
          double acc = 0.0;
          for (int s = 0; s < spatial; ++s) acc += plane[s];
          out[static_cast<std::size_t>(n) * op.in_c + c] =
              static_cast<float>(acc) * inv;
        }
      }
      return;
    }
    case OpKind::FloatConv: {
      const std::size_t out_per_sample = slots[static_cast<std::size_t>(op.out)].numel;
      tensor::ConvGeometry g;
      g.in_c = op.in_c;
      g.in_h = op.in_h;
      g.in_w = op.in_w;
      g.kernel = op.kernel;
      g.stride = op.stride;
      g.pad = op.pad;
      const int spatial = op.out_h * op.out_w;
      const std::size_t in_stride =
          static_cast<std::size_t>(op.in_c) * op.in_h * op.in_w;
      const std::size_t out_stride = static_cast<std::size_t>(op.out_c) * spatial;
      for (int n = 0; n < batch; ++n) {
        tensor::im2col(in0 + static_cast<std::size_t>(n) * in_stride, g,
                       scratch.float_cols.data(), exec);
        float* out_n = out + static_cast<std::size_t>(n) * out_stride;
        tensor::gemm(op.weight.data(), scratch.float_cols.data(), out_n, op.out_c,
                     g.patch_size(), spatial, /*accumulate=*/false, exec);
        for (int c = 0; c < op.out_c; ++c) {
          const float b = op.bias[static_cast<std::size_t>(c)];
          if (b == 0.0f) continue;
          float* plane = out_n + static_cast<std::size_t>(c) * spatial;
          for (int s = 0; s < spatial; ++s) plane[s] += b;
        }
      }
      apply_epilogue(op, io, out_per_sample, exec);
      return;
    }
    case OpKind::FloatLinear: {
      tensor::gemm_a_bt(in0, op.weight.data(), out, batch, op.in_features,
                        op.out_features, /*accumulate=*/false, exec);
      for (int n = 0; n < batch; ++n) {
        float* row = out + static_cast<std::size_t>(n) * op.out_features;
        for (int k = 0; k < op.out_features; ++k) {
          row[k] += op.bias[static_cast<std::size_t>(k)];
        }
      }
      apply_epilogue(op, io, slots[static_cast<std::size_t>(op.out)].numel, exec);
      return;
    }
    case OpKind::IntConv: {
      const std::size_t in_count = slots[static_cast<std::size_t>(op.in0)].numel *
                                   static_cast<std::size_t>(batch);
      // in_codes inputs already hold grid codes (an ep_encode producer
      // wrote them); adopting them is a cast, not a re-encode.
      if (op.in_codes) {
        cast_codes_into(in0, in_count, op.act_hi, op.act_bits, scratch.codes, exec);
      } else {
        encode_activations_into(in0, in_count, op.act_hi, op.act_bits, scratch.codes,
                                exec);
      }
      integer_conv_forward_into(
          plan.integer_layers()[static_cast<std::size_t>(op.layer)], scratch.codes,
          batch, op.in_c, op.in_h, op.in_w, op.kernel, op.stride, op.pad, out,
          scratch.int_cols, exec);
      apply_epilogue(op, io, slots[static_cast<std::size_t>(op.out)].numel, exec);
      return;
    }
    case OpKind::IntLinear: {
      const std::size_t in_count = static_cast<std::size_t>(op.in_features) *
                                   static_cast<std::size_t>(batch);
      if (op.in_codes) {
        cast_codes_into(in0, in_count, op.act_hi, op.act_bits, scratch.codes, exec);
      } else {
        encode_activations_into(in0, in_count, op.act_hi, op.act_bits, scratch.codes,
                                exec);
      }
      integer_linear_forward_into(
          plan.integer_layers()[static_cast<std::size_t>(op.layer)], scratch.codes,
          batch, op.in_features, out, exec);
      apply_epilogue(op, io, slots[static_cast<std::size_t>(op.out)].numel, exec);
      return;
    }
  }
}

}  // namespace cq::deploy
