#pragma once

#include "data/dataset.h"
#include "nn/models/model.h"
#include "nn/trainer.h"

namespace cq::core {

/// Parameters of the post-search refinement (paper Section III-D):
/// knowledge distillation from the full-precision model with the
/// straight-through estimator flowing gradients through the quantizer.
struct RefineConfig {
  int epochs = 4;
  int batch_size = 50;
  double lr = 0.01;
  double momentum = 0.9;
  double weight_decay = 5e-4;
  double alpha = 0.3;  ///< Eq. (10) mixing factor (paper value)
  std::vector<int> lr_milestones;
  std::uint64_t seed = 3;
  bool verbose = false;
};

/// Outcome of a refinement run.
struct RefineResult {
  double accuracy_before = 0.0;
  double accuracy_after = 0.0;
  std::vector<nn::EpochStats> history;
};

/// Refines a quantized student against its full-precision teacher
/// using the KD loss of Eq. (10). The student's fake-quantized layers
/// keep re-quantizing their master weights every forward, so training
/// never leaves the quantized manifold the search selected (STE).
class Refiner {
 public:
  explicit Refiner(RefineConfig config = {}) : config_(config) {}

  RefineResult run(nn::Model& student, nn::Model& teacher, const data::Dataset& train,
                   const data::Dataset& test) const;

  const RefineConfig& config() const { return config_; }

 private:
  RefineConfig config_;
};

}  // namespace cq::core
