#pragma once

#include <string>
#include <vector>

#include "core/importance.h"
#include "nn/models/model.h"

namespace cq::core {

/// Parameters of the per-layer activation bit allocation.
struct ActBitsConfig {
  /// Target mean bit-width over the scored layers' quantizers (the A
  /// of the paper's W/A settings).
  int avg_bits = 4;
  int min_bits = 1;
  int max_bits = 8;
};

/// Per-layer activation bit assignment.
struct ActBitsResult {
  std::vector<std::string> layer_names;  ///< scored-layer order
  std::vector<int> bits;
  double achieved_avg = 0.0;
};

/// EXTENSION beyond the paper (DESIGN.md §6): the paper sets every
/// activation quantizer to the same A. This allocator reuses the
/// class-based layer scores to spend the same average A non-uniformly:
/// a layer's share is proportional to its mean filter importance
/// (how many classes its filters matter to), clamped to
/// [min_bits, max_bits], then decremented greedily from the
/// least-important layers until the mean is back at/below avg_bits.
///
/// Deterministic; allocation only reads the scores, so it can be unit
/// tested without a model.
ActBitsResult allocate_activation_bits(const std::vector<LayerScores>& scores,
                                       const ActBitsConfig& config = {});

/// Applies the assignment to the model's scored layers' activation
/// quantizers (unscored quantizers, e.g. the first layer's, keep their
/// current setting). The result must have one entry per scored layer.
void apply_activation_bits(nn::Model& model, const ActBitsResult& result);

}  // namespace cq::core
