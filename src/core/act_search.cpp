#include "core/act_search.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace cq::core {

namespace {

double mean_phi(const LayerScores& layer) {
  if (layer.filter_phi.empty()) return 0.0;
  double sum = 0.0;
  for (const float phi : layer.filter_phi) sum += phi;
  return sum / static_cast<double>(layer.filter_phi.size());
}

double mean_bits(const std::vector<int>& bits) {
  if (bits.empty()) return 0.0;
  return static_cast<double>(std::accumulate(bits.begin(), bits.end(), 0)) /
         static_cast<double>(bits.size());
}

}  // namespace

ActBitsResult allocate_activation_bits(const std::vector<LayerScores>& scores,
                                       const ActBitsConfig& config) {
  if (config.min_bits < 0 || config.max_bits < config.min_bits) {
    throw std::invalid_argument("allocate_activation_bits: bad bit bounds");
  }
  if (config.avg_bits < config.min_bits || config.avg_bits > config.max_bits) {
    throw std::invalid_argument(
        "allocate_activation_bits: avg_bits outside [min_bits, max_bits]");
  }
  ActBitsResult result;
  if (scores.empty()) return result;

  std::vector<double> layer_score(scores.size());
  double score_sum = 0.0;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    result.layer_names.push_back(scores[i].name);
    layer_score[i] = mean_phi(scores[i]);
    score_sum += layer_score[i];
  }

  // Proportional share of the bit budget, clamped to the bounds. A
  // degenerate all-zero score vector degrades to uniform A.
  const double mean_score = score_sum / static_cast<double>(scores.size());
  result.bits.resize(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const double raw = mean_score > 0.0
                           ? static_cast<double>(config.avg_bits) * layer_score[i] / mean_score
                           : static_cast<double>(config.avg_bits);
    result.bits[i] = std::clamp(static_cast<int>(std::llround(raw)), config.min_bits,
                                config.max_bits);
  }

  // Rounding and clamping can leave the mean above the budget; repair
  // by decrementing the least important layers first (ties: later
  // layer first, matching the intuition that later layers sit closer
  // to the robust classifier head).
  std::vector<std::size_t> by_score(scores.size());
  std::iota(by_score.begin(), by_score.end(), 0u);
  std::stable_sort(by_score.begin(), by_score.end(), [&](std::size_t a, std::size_t b) {
    return layer_score[a] < layer_score[b];
  });
  bool progress = true;
  while (mean_bits(result.bits) > static_cast<double>(config.avg_bits) && progress) {
    progress = false;
    for (const std::size_t i : by_score) {
      if (result.bits[i] > config.min_bits) {
        --result.bits[i];
        progress = true;
        break;
      }
    }
  }
  result.achieved_avg = mean_bits(result.bits);
  return result;
}

void apply_activation_bits(nn::Model& model, const ActBitsResult& result) {
  const std::vector<nn::ScoredLayerRef> scored = model.scored_layers();
  if (scored.size() != result.bits.size()) {
    throw std::invalid_argument(
        "apply_activation_bits: result does not match the model's scored layers");
  }
  for (std::size_t i = 0; i < scored.size(); ++i) {
    if (scored[i].act_quant != nullptr) {
      scored[i].act_quant->set_bits(result.bits[i]);
    }
  }
}

}  // namespace cq::core
