#pragma once

#include <memory>

#include "core/importance.h"
#include "core/refine.h"
#include "core/search.h"

namespace cq::core {

/// End-to-end configuration of class-based quantization.
struct CqConfig {
  ImportanceConfig importance;
  SearchConfig search;
  RefineConfig refine;
  /// Activation bit-width A of the paper's W/A settings; activations
  /// are "directly set to the desired bit-widths" (Section IV).
  int activation_bits = 2;
  /// EXTENSION (off by default = the paper's behaviour): spend the
  /// same average A non-uniformly across layers, proportional to each
  /// layer's class-based importance (see core/act_search.h and
  /// ablation A7). Unscored quantizers (first layer) stay at A.
  bool class_based_activation_bits = false;
};

/// Full report of one CQ run — everything the paper's figures plot.
struct CqReport {
  double fp_accuracy = 0.0;             ///< full-precision test accuracy
  double quant_accuracy_pre_refine = 0.0;
  double quant_accuracy = 0.0;          ///< after KD refinement
  double achieved_avg_bits = 0.0;
  std::vector<double> thresholds;       ///< Figure 6 horizontal lines
  std::vector<LayerScores> scores;      ///< Figures 2/3/6 curves
  SearchResult search;                  ///< Figure 3 trace
  quant::BitArrangement arrangement;    ///< Figure 7 histogram input
  /// Per-layer activation bits actually applied (all equal to the
  /// configured A unless class_based_activation_bits is on).
  std::vector<int> activation_bits;
};

/// Facade running the complete method of the paper on a pre-trained
/// full-precision model:
///   1. clone the model as the frozen FP teacher;
///   2. calibrate activation quantizers and set them to A bits;
///   3. collect class-based importance scores (one-time backprop);
///   4. threshold-search the per-filter bit-widths down to B;
///   5. refine with knowledge distillation (Eq. 10) and STE.
/// The model is left quantized (weights per the found arrangement,
/// activations at A bits).
class CqPipeline {
 public:
  explicit CqPipeline(CqConfig config = {}) : config_(config) {}

  CqReport run(nn::Model& model, const data::DataSplit& data) const;

  const CqConfig& config() const { return config_; }

 private:
  CqConfig config_;
};

}  // namespace cq::core
