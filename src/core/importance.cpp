#include "core/importance.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/trainer.h"

namespace cq::core {

std::vector<LayerScores> ImportanceCollector::collect(nn::Model& model,
                                                      const data::Dataset& val) const {
  const int num_classes = val.num_classes();
  if (num_classes <= 0) throw std::invalid_argument("ImportanceCollector: empty dataset");

  const bool was_training = model.training();
  model.set_training(false);
  model.set_recording(true);

  auto scored = model.scored_layers();
  std::vector<LayerScores> scores(scored.size());
  bool initialized = false;

  for (int cls = 0; cls < num_classes; ++cls) {
    auto class_indices = val.indices_of_class(cls);
    if (class_indices.empty()) continue;
    if (static_cast<int>(class_indices.size()) > config_.samples_per_class) {
      class_indices.resize(static_cast<std::size_t>(config_.samples_per_class));
    }
    const auto ns = static_cast<float>(class_indices.size());

    const nn::Tensor batch = nn::gather_batch(val.images, class_indices);
    const nn::Tensor logits = model.forward(batch);

    // Phi is the class-m logit; back-propagate its gradient (one-hot
    // rows) so every probe captures dPhi/da for all images at once.
    nn::Tensor grad(logits.shape());
    for (int n = 0; n < logits.dim(0); ++n) grad.at(n, cls) = 1.0f;
    model.zero_grad();
    model.backward(grad);

    for (std::size_t l = 0; l < scored.size(); ++l) {
      const nn::Tensor& act = scored[l].probe->activation();
      const nn::Tensor& g = scored[l].probe->gradient();
      if (act.empty() || act.shape() != g.shape()) {
        throw std::runtime_error("ImportanceCollector: probe " + scored[l].name +
                                 " captured no activation/gradient");
      }
      const int batch_n = act.dim(0);
      const std::size_t neurons = act.numel() / static_cast<std::size_t>(batch_n);
      if (!initialized) {
        scores[l].name = scored[l].name;
        scores[l].is_conv = scored[l].is_conv;
        scores[l].channels = scored[l].is_conv ? act.dim(1) : static_cast<int>(neurons);
        scores[l].spatial =
            scored[l].is_conv ? static_cast<int>(neurons) / act.dim(1) : 1;
        scores[l].neuron_gamma.assign(neurons, 0.0f);
        if (config_.keep_class_scores) {
          scores[l].class_filter_beta.assign(
              static_cast<std::size_t>(num_classes),
              std::vector<float>(static_cast<std::size_t>(scores[l].channels), 0.0f));
        }
      }
      // beta^m per neuron: fraction of this class's images whose
      // Taylor score exceeds epsilon (Eq. 5-6); accumulate into gamma.
      auto& gamma = scores[l].neuron_gamma;
      const auto spatial = static_cast<std::size_t>(scores[l].spatial);
      for (std::size_t j = 0; j < neurons; ++j) {
        int critical = 0;
        for (int n = 0; n < batch_n; ++n) {
          const std::size_t idx = static_cast<std::size_t>(n) * neurons + j;
          const double s = std::fabs(static_cast<double>(act[idx]) * g[idx]);
          if (s > config_.epsilon) ++critical;
        }
        const float beta = static_cast<float>(critical) / ns;
        gamma[j] += beta;
        if (config_.keep_class_scores) {
          // Filter-level beta: Eq. (8)'s max reduction per class.
          float& cell = scores[l].class_filter_beta[static_cast<std::size_t>(cls)]
                                                   [j / spatial];
          cell = std::max(cell, beta);
        }
      }
    }
    initialized = true;
  }

  // Eq. (8): per-filter max over the filter's spatial neurons.
  for (auto& layer : scores) {
    if (layer.neuron_gamma.empty()) {
      throw std::runtime_error("ImportanceCollector: no scores collected");
    }
    layer.filter_phi.assign(static_cast<std::size_t>(layer.channels), 0.0f);
    for (int c = 0; c < layer.channels; ++c) {
      float phi = 0.0f;
      for (int s = 0; s < layer.spatial; ++s) {
        phi = std::max(phi,
                       layer.neuron_gamma[static_cast<std::size_t>(c) * layer.spatial + s]);
      }
      layer.filter_phi[static_cast<std::size_t>(c)] = phi;
    }
  }

  model.set_recording(false);
  model.set_training(was_training);
  model.zero_grad();
  return scores;
}

std::size_t total_filters(const std::vector<LayerScores>& scores) {
  std::size_t n = 0;
  for (const auto& layer : scores) n += layer.filter_phi.size();
  return n;
}

float max_score(const std::vector<LayerScores>& scores) {
  float m = 0.0f;
  for (const auto& layer : scores) {
    for (const float phi : layer.filter_phi) m = std::max(m, phi);
  }
  return m;
}

}  // namespace cq::core
