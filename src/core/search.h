#pragma once

#include "core/importance.h"
#include "quant/bitwidth.h"

namespace cq::core {

/// Parameters of the bit-width threshold search (paper Section III-C).
struct SearchConfig {
  /// Highest allowed bit-width N; the paper uses the range {0..4}.
  int max_bits = 4;
  /// Desired average weight bit-width B.
  double desired_avg_bits = 2.0;
  /// First accuracy target T1 (fraction); the paper example uses 50%.
  double t1 = 0.5;
  /// Decay factor R of Eq. (9): T_k = T_{k-1} * R.
  double decay = 0.8;
  /// Threshold step D in importance-score units. 0 selects
  /// max_score * step_fraction automatically.
  double step = 0.0;
  double step_fraction = 0.05;
  /// Validation samples used per accuracy evaluation during search
  /// ("inference of validation samples, instead of back propagation").
  int eval_samples = 200;
  bool verbose = false;
};

/// One determined threshold (or fallback sweep stop) of the search,
/// recorded for the Figure-3 style trace.
struct ThresholdStop {
  int k = 0;               ///< which threshold p_k (1-based)
  double threshold = 0.0;  ///< where it stopped
  double accuracy = 0.0;   ///< validation accuracy at the stop
  double target = 0.0;     ///< T_k in effect
  double avg_bits = 0.0;   ///< average bit-width after the stop
  bool fallback = false;   ///< true if from the low-B fallback sweep
};

/// Outcome of the search.
struct SearchResult {
  std::vector<double> thresholds;  ///< final p_1..p_N (ascending)
  double achieved_avg_bits = 0.0;
  double final_accuracy = 0.0;     ///< validation accuracy of the result
  int evaluations = 0;             ///< forward-pass accuracy evals used
  std::vector<ThresholdStop> trace;
  quant::BitArrangement arrangement;
};

/// Greedy threshold search over sorted importance scores.
///
/// Bit assignment rule: a filter with score phi receives
/// bits = |{k : phi >= p_k}| (0 below p_1, N at/above p_N). All
/// thresholds start at 0 (everything at N bits); p_1..p_N are then
/// raised in steps of D until validation accuracy falls below
/// T_k = T1 * R^(k-1), stopping early once the average bit-width
/// drops under B. If B is still not reached, the fallback sweep of
/// Section III-C raises p_N..p_1 to the maximum score in turn.
///
/// The model's weights are fake-quantized in place during the search
/// (via QuantizableLayer::set_filter_bits); the final arrangement is
/// left applied and also returned.
class ThresholdSearch {
 public:
  explicit ThresholdSearch(SearchConfig config = {}) : config_(config) {}

  SearchResult run(nn::Model& model, const std::vector<LayerScores>& scores,
                   const data::Dataset& val) const;

  /// Applies the bit assignment implied by `thresholds` to the model's
  /// scored layers; returns the resulting arrangement. Exposed for
  /// tests and for re-applying a stored search result.
  static quant::BitArrangement apply_thresholds(nn::Model& model,
                                                const std::vector<LayerScores>& scores,
                                                const std::vector<double>& thresholds);

  /// bits = |{k : score >= p_k}| — the paper's grouping rule.
  static int bits_for_score(float score, const std::vector<double>& thresholds);

  const SearchConfig& config() const { return config_; }

 private:
  SearchConfig config_;
};

}  // namespace cq::core
