#pragma once

#include <vector>

#include "core/importance.h"
#include "data/dataset.h"
#include "nn/models/model.h"

namespace cq::core {

/// Per-class view of what a bit-width arrangement did to the network —
/// the direct validation of the paper's core hypothesis: filters score
/// high for the classes whose critical pathways they carry, so classes
/// whose high-beta filters kept more bits should lose less accuracy.
struct ClassDamageReport {
  /// Share of each class's importance mass kept by the arrangement:
  /// sum_k beta^m_k * bits_k / max_bits over all scored filters,
  /// normalized by the class's total mass. 1 = untouched, 0 = every
  /// filter the class relies on was pruned.
  std::vector<double> retained_importance;
  std::vector<double> fp_accuracy;     ///< per-class, full precision
  std::vector<double> quant_accuracy;  ///< per-class, quantized
  std::vector<double> accuracy_drop;   ///< fp - quant, per class
  /// Spearman rank correlation between retained importance and
  /// -accuracy_drop: positive = classes that kept their filters kept
  /// their accuracy (the hypothesis holding).
  double rank_correlation = 0.0;
};

/// Computes the report. `scores` must come from an ImportanceCollector
/// run with keep_class_scores = true on the *same* model architecture;
/// `quant_model` carries the bit arrangement (its scored layers' order
/// must match `scores`, which any same-architecture model guarantees).
/// Throws std::invalid_argument when the class matrices are missing or
/// the layer geometry disagrees.
ClassDamageReport analyze_class_damage(nn::Model& fp_model, nn::Model& quant_model,
                                       const std::vector<LayerScores>& scores,
                                       const data::Dataset& test);

}  // namespace cq::core
