#include "core/sensitivity.h"

#include "nn/trainer.h"

namespace cq::core {

double LayerSensitivity::drop_at(int bits, double fp_accuracy) const {
  for (std::size_t i = 0; i < bits_tested.size(); ++i) {
    if (bits_tested[i] == bits) return fp_accuracy - accuracy[i];
  }
  return 0.0;
}

std::vector<LayerSensitivity> SensitivityProfiler::profile(nn::Model& model,
                                                           const data::Dataset& val) const {
  const data::Dataset eval_set =
      val.stratified_take(static_cast<std::size_t>(eval_samples_));
  const bool was_training = model.training();
  model.set_training(false);
  model.clear_weight_quantization();

  std::vector<LayerSensitivity> profile;
  for (const auto& scored : model.scored_layers()) {
    LayerSensitivity sens;
    sens.name = scored.name;
    for (const int bits : bits_to_test_) {
      for (quant::QuantizableLayer* layer : scored.layers) {
        layer->set_filter_bits(
            std::vector<int>(static_cast<std::size_t>(layer->num_filters()), bits));
      }
      sens.bits_tested.push_back(bits);
      sens.accuracy.push_back(
          nn::Trainer::evaluate(model, eval_set.images, eval_set.labels));
      for (quant::QuantizableLayer* layer : scored.layers) layer->clear_filter_bits();
    }
    profile.push_back(std::move(sens));
  }
  model.set_training(was_training);
  return profile;
}

}  // namespace cq::core
