#pragma once

#include "data/dataset.h"
#include "nn/models/model.h"

namespace cq::core {

/// Quantization sensitivity of one scored layer: validation accuracy
/// when only this layer is quantized to each bit-width, everything
/// else full precision.
struct LayerSensitivity {
  std::string name;
  std::vector<int> bits_tested;
  std::vector<double> accuracy;  ///< parallel to bits_tested

  /// Accuracy drop (fp_accuracy - accuracy) at the given bits; NaN-free:
  /// returns 0 for untested bits.
  double drop_at(int bits, double fp_accuracy) const;
};

/// Per-layer quantization sensitivity profiler — the diagnostic
/// companion to the CQ search. Where CQ *assumes* class-based scores
/// rank filters well, the profiler measures each layer's tolerance
/// directly (one validation sweep per layer x bit-width), in the
/// spirit of sensitivity-guided mixed precision (HAWQ-style). Useful
/// for validating a found arrangement and for the ablation benches.
class SensitivityProfiler {
 public:
  /// `bits_to_test` are applied uniformly to one layer at a time.
  explicit SensitivityProfiler(std::vector<int> bits_to_test = {1, 2, 4},
                               int eval_samples = 200)
      : bits_to_test_(std::move(bits_to_test)), eval_samples_(eval_samples) {}

  /// Profiles every scored layer of `model`. The model's quantization
  /// state is restored (cleared) afterwards.
  std::vector<LayerSensitivity> profile(nn::Model& model, const data::Dataset& val) const;

 private:
  std::vector<int> bits_to_test_;
  int eval_samples_;
};

}  // namespace cq::core
