#pragma once

#include <string>
#include <vector>

#include "data/dataset.h"
#include "nn/models/model.h"

namespace cq::core {

/// Class-based importance scores of one scored layer.
///
/// `neuron_gamma` holds Eq. (7)'s gamma for every neuron: conv layers
/// have channels*spatial neurons (channel-major), FC layers have one
/// neuron per output feature. `filter_phi` is Eq. (8)'s per-filter
/// max-reduction (identical to neuron_gamma for FC layers). Scores lie
/// in [0, M]: the (fractional) number of classes the unit is in the
/// critical pathway of.
struct LayerScores {
  std::string name;
  bool is_conv = true;
  int channels = 0;
  int spatial = 1;
  std::vector<float> neuron_gamma;
  std::vector<float> filter_phi;
  /// Optional per-class filter scores (ImportanceConfig::
  /// keep_class_scores): class_filter_beta[m][k] is Eq. (6)'s beta of
  /// filter k for class m, reduced over the filter's spatial neurons
  /// by max (the Eq. (8) reduction). Used by the per-class damage
  /// analysis; empty unless requested.
  std::vector<std::vector<float>> class_filter_beta;
};

/// Parameters of the importance collection (paper Section III-A/B).
struct ImportanceConfig {
  /// Critical-pathway threshold epsilon; the paper uses 1e-50 — any
  /// nonzero Taylor term marks the neuron as on the pathway.
  double epsilon = 1e-50;
  /// Validation images per class (N_s in Eq. 6). Classes with fewer
  /// available samples use what exists.
  int samples_per_class = 20;
  /// Also record per-class filter betas (LayerScores::
  /// class_filter_beta) for the class-damage analysis. Off by default:
  /// the matrices cost M x filters floats per layer.
  bool keep_class_scores = false;
};

/// Computes class-based importance scores with one backward pass per
/// class batch (the paper's "one-time back propagation" — a single
/// backward over the scoring set in total).
///
/// For each class m, a batch of its validation images is forwarded in
/// eval mode and the gradient of the class logit (the critical-pathway
/// output Phi) is back-propagated; each probe then yields the Taylor
/// scores s = |a * dPhi/da| (Eq. 5) for every neuron and image.
/// beta^m (Eq. 6) is the fraction of the class's images whose score
/// exceeds epsilon; gamma (Eq. 7) sums beta over classes; phi (Eq. 8)
/// maxes gamma over each filter's spatial neurons.
class ImportanceCollector {
 public:
  explicit ImportanceCollector(ImportanceConfig config = {}) : config_(config) {}

  std::vector<LayerScores> collect(nn::Model& model, const data::Dataset& val) const;

  const ImportanceConfig& config() const { return config_; }

 private:
  ImportanceConfig config_;
};

/// Total number of filters across all layers' `filter_phi`.
std::size_t total_filters(const std::vector<LayerScores>& scores);

/// Maximum phi over all layers (the top of the search range).
float max_score(const std::vector<LayerScores>& scores);

}  // namespace cq::core
