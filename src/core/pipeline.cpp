#include "core/pipeline.h"

#include "core/act_search.h"

#include "util/logging.h"

namespace cq::core {

CqReport CqPipeline::run(nn::Model& model, const data::DataSplit& data) const {
  CqReport report;
  report.fp_accuracy = nn::Trainer::evaluate(model, data.test.images, data.test.labels);

  // 1. Freeze the full-precision teacher before any quantization.
  std::unique_ptr<nn::Model> teacher = model.clone();
  teacher->set_training(false);

  // 2. Importance scores are collected on the full-precision model
  //    (activation quantizers still disabled).
  ImportanceCollector collector(config_.importance);
  report.scores = collector.collect(model, data.val);

  // 3. Activation quantization: calibrate clip ranges by inference,
  //    then set the desired bit-width A — uniformly as in the paper,
  //    or redistributed by layer importance when the extension is on.
  model.calibrate_activations(data.train.images);
  model.set_activation_bits(config_.activation_bits);
  if (config_.class_based_activation_bits) {
    ActBitsConfig act_cfg;
    act_cfg.avg_bits = config_.activation_bits;
    act_cfg.min_bits = 1;
    act_cfg.max_bits = 2 * config_.activation_bits;
    const ActBitsResult assignment = allocate_activation_bits(report.scores, act_cfg);
    apply_activation_bits(model, assignment);
    report.activation_bits = assignment.bits;
  } else {
    report.activation_bits.assign(report.scores.size(), config_.activation_bits);
  }

  // 4. Search the per-filter weight bit-widths.
  ThresholdSearch search(config_.search);
  report.search = search.run(model, report.scores, data.val);
  report.thresholds = report.search.thresholds;
  report.arrangement = report.search.arrangement;
  report.achieved_avg_bits = report.search.achieved_avg_bits;
  report.quant_accuracy_pre_refine =
      nn::Trainer::evaluate(model, data.test.images, data.test.labels);

  // 5. Knowledge-distillation refinement (Eq. 10, STE).
  Refiner refiner(config_.refine);
  const RefineResult refined = refiner.run(model, *teacher, data.train, data.test);
  report.quant_accuracy = refined.accuracy_after;

  util::log_info() << "CQ: fp=" << report.fp_accuracy
                   << " pre-refine=" << report.quant_accuracy_pre_refine
                   << " refined=" << report.quant_accuracy
                   << " avg_bits=" << report.achieved_avg_bits;
  return report;
}

}  // namespace cq::core
