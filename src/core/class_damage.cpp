#include "core/class_damage.h"

#include <algorithm>
#include <stdexcept>

#include "nn/metrics.h"
#include "util/stats.h"

namespace cq::core {

ClassDamageReport analyze_class_damage(nn::Model& fp_model, nn::Model& quant_model,
                                       const std::vector<LayerScores>& scores,
                                       const data::Dataset& test) {
  const int num_classes = test.num_classes();
  if (num_classes <= 0) {
    throw std::invalid_argument("analyze_class_damage: empty test set");
  }
  for (const LayerScores& layer : scores) {
    if (layer.class_filter_beta.size() != static_cast<std::size_t>(num_classes)) {
      throw std::invalid_argument(
          "analyze_class_damage: scores lack per-class betas for layer '" + layer.name +
          "' (collect with keep_class_scores = true)");
    }
  }

  // The arrangement under analysis, in scored-layer order.
  const auto scored = quant_model.scored_layers();
  if (scored.size() != scores.size()) {
    throw std::invalid_argument(
        "analyze_class_damage: score/model layer count mismatch");
  }
  int max_bits = 0;
  for (const auto& ref : scored) {
    for (const auto* layer : ref.layers) {
      for (const int b : layer->filter_bits()) max_bits = std::max(max_bits, b);
    }
  }

  ClassDamageReport report;
  report.retained_importance.assign(static_cast<std::size_t>(num_classes), 1.0);
  if (max_bits > 0) {
    for (int m = 0; m < num_classes; ++m) {
      double total = 0.0;
      double kept = 0.0;
      for (std::size_t l = 0; l < scores.size(); ++l) {
        // The first quantizable layer of the ref owns the scores; any
        // sibling (ResNet projection shortcut) shares the same bits.
        const std::vector<int>& bits = scored[l].layers.front()->filter_bits();
        const std::vector<float>& beta =
            scores[l].class_filter_beta[static_cast<std::size_t>(m)];
        if (bits.size() != beta.size()) {
          throw std::invalid_argument(
              "analyze_class_damage: filter count mismatch in layer '" +
              scores[l].name + "'");
        }
        for (std::size_t k = 0; k < beta.size(); ++k) {
          total += beta[k];
          kept += static_cast<double>(beta[k]) * bits[k] / max_bits;
        }
      }
      report.retained_importance[static_cast<std::size_t>(m)] =
          total > 0.0 ? kept / total : 1.0;
    }
  }

  const nn::ConfusionMatrix fp_cm =
      nn::evaluate_confusion(fp_model, test.images, test.labels, num_classes);
  const nn::ConfusionMatrix q_cm =
      nn::evaluate_confusion(quant_model, test.images, test.labels, num_classes);
  report.fp_accuracy = fp_cm.per_class_accuracy();
  report.quant_accuracy = q_cm.per_class_accuracy();
  report.accuracy_drop.resize(static_cast<std::size_t>(num_classes));
  std::vector<double> neg_drop(static_cast<std::size_t>(num_classes));
  for (std::size_t m = 0; m < report.accuracy_drop.size(); ++m) {
    report.accuracy_drop[m] = report.fp_accuracy[m] - report.quant_accuracy[m];
    neg_drop[m] = -report.accuracy_drop[m];
  }
  report.rank_correlation = util::spearman(report.retained_importance, neg_drop);
  return report;
}

}  // namespace cq::core
