#include "core/refine.h"

namespace cq::core {

RefineResult Refiner::run(nn::Model& student, nn::Model& teacher, const data::Dataset& train,
                          const data::Dataset& test) const {
  RefineResult result;
  result.accuracy_before = nn::Trainer::evaluate(student, test.images, test.labels);

  nn::TrainConfig tc;
  tc.epochs = config_.epochs;
  tc.batch_size = config_.batch_size;
  tc.lr = config_.lr;
  tc.momentum = config_.momentum;
  tc.weight_decay = config_.weight_decay;
  tc.lr_milestones = config_.lr_milestones;
  tc.seed = config_.seed;
  tc.verbose = config_.verbose;
  tc.kd_alpha = config_.alpha;

  nn::Trainer trainer(tc);
  result.history = trainer.fit(student, train.images, train.labels, &teacher);
  result.accuracy_after = nn::Trainer::evaluate(student, test.images, test.labels);
  return result;
}

}  // namespace cq::core
