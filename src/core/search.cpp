#include "core/search.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/trainer.h"
#include "util/logging.h"

namespace cq::core {

namespace {

/// Applies the mid-search bit assignment: with `determined` thresholds
/// fixed so far (ascending), a filter gets 0 bits below the first,
/// k-1 bits between the (k-1)-th and k-th, and keeps `max_bits` above
/// the last determined threshold (later thresholds do not exist yet).
/// When determined.size() == max_bits this equals the final rule.
quant::BitArrangement apply_partial(nn::Model& model, const std::vector<LayerScores>& scores,
                                    const std::vector<double>& determined, int max_bits) {
  auto scored = model.scored_layers();
  if (scored.size() != scores.size()) {
    throw std::invalid_argument("ThresholdSearch: scores do not match model layers");
  }
  quant::BitArrangement arrangement;
  for (std::size_t l = 0; l < scored.size(); ++l) {
    std::vector<int> bits(scores[l].filter_phi.size(), max_bits);
    for (std::size_t f = 0; f < bits.size(); ++f) {
      const float phi = scores[l].filter_phi[f];
      int count = 0;
      for (const double p : determined) {
        if (static_cast<double>(phi) >= p) ++count;
      }
      bits[f] = count == static_cast<int>(determined.size()) ? max_bits : count;
    }
    for (quant::QuantizableLayer* layer : scored[l].layers) {
      layer->set_filter_bits(bits);
      quant::LayerBits lb;
      lb.layer_name = scores[l].name;
      lb.filter_bits = bits;
      lb.weights_per_filter = layer->weights_per_filter();
      arrangement.add_layer(std::move(lb));
    }
  }
  return arrangement;
}

}  // namespace

int ThresholdSearch::bits_for_score(float score, const std::vector<double>& thresholds) {
  int count = 0;
  for (const double p : thresholds) {
    if (static_cast<double>(score) >= p) ++count;
  }
  return count;
}

quant::BitArrangement ThresholdSearch::apply_thresholds(
    nn::Model& model, const std::vector<LayerScores>& scores,
    const std::vector<double>& thresholds) {
  return apply_partial(model, scores, thresholds, static_cast<int>(thresholds.size()));
}

SearchResult ThresholdSearch::run(nn::Model& model, const std::vector<LayerScores>& scores,
                                  const data::Dataset& val) const {
  const int n_bits = config_.max_bits;
  if (n_bits < 1) throw std::invalid_argument("ThresholdSearch: max_bits must be >= 1");
  const float smax = max_score(scores);
  const double step =
      config_.step > 0.0 ? config_.step
                         : std::max(1e-6, static_cast<double>(smax) * config_.step_fraction);

  const data::Dataset eval_set =
      val.stratified_take(static_cast<std::size_t>(config_.eval_samples));

  SearchResult result;
  const bool was_training = model.training();
  model.set_training(false);

  auto evaluate = [&](int& evals) {
    ++evals;
    return nn::Trainer::evaluate(model, eval_set.images, eval_set.labels);
  };

  std::vector<double> determined;  // p_1..p_k fixed so far
  quant::BitArrangement arrangement = apply_partial(model, scores, determined, n_bits);
  double avg_bits = arrangement.average_bits();
  int evals = 0;

  // ---- Phase 1: determine p_1..p_N against decaying accuracy targets.
  bool budget_reached = avg_bits <= config_.desired_avg_bits;
  double target = config_.t1;
  for (int k = 1; k <= n_bits && !budget_reached; ++k) {
    double pk = determined.empty() ? 0.0 : determined.back();
    double last_acc = 1.0;
    std::vector<int> last_signature;
    while (true) {
      if (pk >= static_cast<double>(smax)) break;  // reached the top
      pk = std::min(pk + step, static_cast<double>(smax));

      std::vector<double> candidate = determined;
      candidate.push_back(pk);
      arrangement = apply_partial(model, scores, candidate, n_bits);
      avg_bits = arrangement.average_bits();

      // Skip the forward evaluation when the step crossed no score.
      std::vector<int> signature;
      for (const auto& layer : arrangement.layers()) {
        signature.insert(signature.end(), layer.filter_bits.begin(),
                         layer.filter_bits.end());
      }
      if (signature != last_signature) {
        last_acc = evaluate(evals);
        last_signature = std::move(signature);
      }
      if (config_.verbose) {
        util::log_debug() << "search k=" << k << " p=" << pk << " acc=" << last_acc
                          << " avg_bits=" << avg_bits;
      }
      if (avg_bits <= config_.desired_avg_bits) {
        budget_reached = true;
        break;
      }
      if (last_acc < target) break;  // p_k determined here (paper rule)
    }
    determined.push_back(pk);
    result.trace.push_back(
        {k, pk, last_acc, target, avg_bits, /*fallback=*/false});
    target *= config_.decay;  // Eq. (9)
  }
  // Any thresholds not reached before the budget stop collapse onto the
  // last determined value (zero-width bands), which reproduces the
  // mid-search assignment exactly under the final counting rule.
  while (static_cast<int>(determined.size()) < n_bits) {
    determined.push_back(determined.empty() ? 0.0 : determined.back());
  }

  arrangement = apply_partial(model, scores, determined, n_bits);
  avg_bits = arrangement.average_bits();

  // ---- Phase 2: fallback sweep for very small B (Section III-C):
  // raise p_N, then p_N-1, ..., towards the maximum score until the
  // budget is met; demoting high-bit filters costs less accuracy than
  // pruning more filters at the bottom.
  for (int k = n_bits; k >= 1 && avg_bits > config_.desired_avg_bits; --k) {
    while (determined[static_cast<std::size_t>(k - 1)] < static_cast<double>(smax) &&
           avg_bits > config_.desired_avg_bits) {
      determined[static_cast<std::size_t>(k - 1)] =
          std::min(static_cast<double>(smax),
                   determined[static_cast<std::size_t>(k - 1)] + step);
      arrangement = apply_partial(model, scores, determined, n_bits);
      avg_bits = arrangement.average_bits();
    }
    result.trace.push_back({k, determined[static_cast<std::size_t>(k - 1)],
                            /*accuracy=*/-1.0, /*target=*/-1.0, avg_bits,
                            /*fallback=*/true});
  }
  if (avg_bits > config_.desired_avg_bits) {
    util::log_warn() << "ThresholdSearch: budget " << config_.desired_avg_bits
                     << " bits unreachable; achieved " << avg_bits;
  }

  result.thresholds = determined;
  result.achieved_avg_bits = avg_bits;
  result.final_accuracy = evaluate(evals);
  result.evaluations = evals;
  result.arrangement = arrangement;
  model.set_training(was_training);
  return result;
}

}  // namespace cq::core
