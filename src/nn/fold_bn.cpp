#include "nn/fold_bn.h"

#include <cmath>
#include <stdexcept>

#include "nn/models/resnet20.h"

namespace cq::nn {

void fold_batchnorm(Conv2d& conv, BatchNorm2d& bn) {
  if (conv.out_channels() != bn.channels()) {
    throw std::invalid_argument("fold_batchnorm: " + conv.name() + " has " +
                                std::to_string(conv.out_channels()) + " channels but " +
                                bn.name() + " normalizes " +
                                std::to_string(bn.channels()));
  }
  const double eps = bn.eps();
  for (int k = 0; k < conv.out_channels(); ++k) {
    const auto ku = static_cast<std::size_t>(k);
    const double inv_std =
        1.0 / std::sqrt(static_cast<double>(bn.running_var()[ku]) + eps);
    const double scale = static_cast<double>(bn.gamma().value[ku]) * inv_std;
    for (float& w : conv.mutable_filter_weights(k)) {
      w = static_cast<float>(w * scale);
    }
    conv.bias().value[ku] = static_cast<float>(
        (static_cast<double>(conv.bias().value[ku]) - bn.running_mean()[ku]) * scale +
        bn.beta().value[ku]);

    // Reset the BN channel to the identity map (gamma compensates the
    // eps inside the normalizer so eval forward is x to float rounding).
    bn.running_mean()[ku] = 0.0f;
    bn.running_var()[ku] = 1.0f;
    bn.gamma().value[ku] = static_cast<float>(std::sqrt(1.0 + eps));
    bn.beta().value[ku] = 0.0f;
  }
}

int fold_batchnorm(Sequential& chain) {
  int folds = 0;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    Module* module = chain.at(i);
    if (auto* nested = dynamic_cast<Sequential*>(module)) {
      folds += fold_batchnorm(*nested);
      continue;
    }
    if (auto* block = dynamic_cast<BasicBlock*>(module)) {
      fold_batchnorm(*block->conv1(), *block->bn1());
      fold_batchnorm(*block->conv2(), *block->bn2());
      folds += 2;
      if (block->downsample_conv() != nullptr) {
        fold_batchnorm(*block->downsample_conv(), *block->downsample_bn());
        ++folds;
      }
      continue;
    }
    if (auto* conv = dynamic_cast<Conv2d*>(module)) {
      if (i + 1 < chain.size()) {
        if (auto* bn = dynamic_cast<BatchNorm2d*>(chain.at(i + 1))) {
          fold_batchnorm(*conv, *bn);
          ++folds;
        }
      }
    }
  }
  return folds;
}

}  // namespace cq::nn
