#pragma once

#include "nn/module.h"
#include "quant/uniform.h"

namespace cq::nn {

/// Activation fake-quantizer (paper Section II-A, activation branch).
///
/// The clipping range is [0, b] where b is the maximum activation
/// observed while `calibrating()` — the paper acquires b "by performing
/// inference". With `bits <= 0` the module is a pass-through, which is
/// how full-precision training runs. Backward uses the clipped
/// straight-through estimator: gradients pass where the input was
/// inside the clipping range and are zeroed above it.
class ActQuant : public Module {
 public:
  explicit ActQuant(std::string name = "act_quant") : name_(std::move(name)) {}

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return name_; }

  /// Sets the quantization bit-width; <= 0 disables quantization.
  void set_bits(int bits) { bits_ = bits; }
  int bits() const { return bits_; }

  /// While calibrating, forward passes are identity and the running
  /// maximum activation is tracked to fix the clip bound.
  void set_calibrating(bool on) { calibrating_ = on; }
  bool calibrating() const { return calibrating_; }
  void reset_calibration() { max_act_ = 0.0f; }
  float max_activation() const { return max_act_; }
  void set_max_activation(float m) { max_act_ = m; }

 private:
  std::string name_;
  int bits_ = 0;
  bool calibrating_ = false;
  float max_act_ = 0.0f;
  std::vector<bool> pass_mask_;
};

}  // namespace cq::nn
