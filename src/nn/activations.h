#pragma once

#include "nn/module.h"

namespace cq::nn {

/// Rectified linear unit; caches the activation mask for backward.
class ReLU : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "ReLU"; }

 private:
  std::vector<bool> mask_;
};

/// Flattens [N, C, H, W] (or any rank >= 2) to [N, features].
class Flatten : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Flatten"; }

 private:
  tensor::Shape cached_shape_;
};

}  // namespace cq::nn
