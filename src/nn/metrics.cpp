#include "nn/metrics.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "nn/trainer.h"

namespace cq::nn {

ConfusionMatrix::ConfusionMatrix(int num_classes)
    : num_classes_(num_classes),
      counts_(static_cast<std::size_t>(num_classes) * num_classes, 0) {
  if (num_classes <= 0) throw std::invalid_argument("ConfusionMatrix: classes must be > 0");
}

void ConfusionMatrix::add(int label, int prediction) {
  if (label < 0 || label >= num_classes_ || prediction < 0 || prediction >= num_classes_) {
    throw std::out_of_range("ConfusionMatrix::add: class out of range");
  }
  ++counts_[static_cast<std::size_t>(label) * num_classes_ + prediction];
}

void ConfusionMatrix::add_batch(const Tensor& logits, const std::vector<int>& labels) {
  for (int n = 0; n < logits.dim(0); ++n) {
    add(labels[static_cast<std::size_t>(n)], logits.argmax_row(n));
  }
}

std::size_t ConfusionMatrix::count(int label, int prediction) const {
  return counts_[static_cast<std::size_t>(label) * num_classes_ + prediction];
}

std::size_t ConfusionMatrix::class_total(int label) const {
  std::size_t total = 0;
  for (int p = 0; p < num_classes_; ++p) total += count(label, p);
  return total;
}

double ConfusionMatrix::accuracy() const {
  std::size_t correct = 0;
  std::size_t total = 0;
  for (int c = 0; c < num_classes_; ++c) {
    correct += count(c, c);
    total += class_total(c);
  }
  return total == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(total);
}

double ConfusionMatrix::class_accuracy(int label) const {
  const std::size_t total = class_total(label);
  if (total == 0) return 0.0;
  return static_cast<double>(count(label, label)) / static_cast<double>(total);
}

std::vector<double> ConfusionMatrix::per_class_accuracy() const {
  std::vector<double> acc(static_cast<std::size_t>(num_classes_));
  for (int c = 0; c < num_classes_; ++c) acc[static_cast<std::size_t>(c)] = class_accuracy(c);
  return acc;
}

std::vector<int> ConfusionMatrix::worst_classes(int k) const {
  std::vector<int> order(static_cast<std::size_t>(num_classes_));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return class_accuracy(a) < class_accuracy(b);
  });
  order.resize(static_cast<std::size_t>(std::min(k, num_classes_)));
  return order;
}

ConfusionMatrix evaluate_confusion(Module& model, const Tensor& images,
                                   const std::vector<int>& labels, int num_classes,
                                   int batch_size) {
  ConfusionMatrix cm(num_classes);
  const bool was_training = model.training();
  model.set_training(false);
  const auto count = static_cast<std::size_t>(images.dim(0));
  for (std::size_t start = 0; start < count; start += static_cast<std::size_t>(batch_size)) {
    const std::size_t stop = std::min(count, start + static_cast<std::size_t>(batch_size));
    std::vector<std::size_t> idx;
    for (std::size_t i = start; i < stop; ++i) idx.push_back(i);
    const Tensor logits = model.forward(gather_batch(images, idx));
    std::vector<int> batch_labels(idx.size());
    for (std::size_t i = 0; i < idx.size(); ++i) batch_labels[i] = labels[idx[i]];
    cm.add_batch(logits, batch_labels);
  }
  model.set_training(was_training);
  return cm;
}

}  // namespace cq::nn
