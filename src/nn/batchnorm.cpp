#include "nn/batchnorm.h"

#include <cmath>
#include <stdexcept>

namespace cq::nn {

BatchNorm2d::BatchNorm2d(int channels, float momentum, float eps, std::string name)
    : channels_(channels),
      momentum_(momentum),
      eps_(eps),
      name_(std::move(name)),
      gamma_(name_ + ".gamma", Tensor::ones({channels})),
      beta_(name_ + ".beta", Tensor::zeros({channels})),
      running_mean_(Tensor::zeros({channels})),
      running_var_(Tensor::ones({channels})) {}

Tensor BatchNorm2d::forward(const Tensor& input) {
  if (input.rank() != 4 || input.dim(1) != channels_) {
    throw std::invalid_argument(name_ + ": bad input shape " +
                                tensor::shape_to_string(input.shape()));
  }
  in_shape_ = input.shape();
  const int batch = input.dim(0);
  const int spatial = input.dim(2) * input.dim(3);
  const std::size_t per_channel = static_cast<std::size_t>(batch) * spatial;

  xhat_ = Tensor(input.shape());
  inv_std_.assign(static_cast<std::size_t>(channels_), 0.0f);
  Tensor out(input.shape());
  used_batch_stats_ = training_;

  for (int c = 0; c < channels_; ++c) {
    float mean = 0.0f;
    float var = 0.0f;
    if (training_) {
      double acc = 0.0;
      for (int n = 0; n < batch; ++n) {
        const float* plane =
            input.data() + (static_cast<std::size_t>(n) * channels_ + c) * spatial;
        for (int s = 0; s < spatial; ++s) acc += plane[s];
      }
      mean = static_cast<float>(acc / static_cast<double>(per_channel));
      double vacc = 0.0;
      for (int n = 0; n < batch; ++n) {
        const float* plane =
            input.data() + (static_cast<std::size_t>(n) * channels_ + c) * spatial;
        for (int s = 0; s < spatial; ++s) {
          const double d = plane[s] - mean;
          vacc += d * d;
        }
      }
      var = static_cast<float>(vacc / static_cast<double>(per_channel));
      running_mean_[static_cast<std::size_t>(c)] =
          (1.0f - momentum_) * running_mean_[static_cast<std::size_t>(c)] + momentum_ * mean;
      running_var_[static_cast<std::size_t>(c)] =
          (1.0f - momentum_) * running_var_[static_cast<std::size_t>(c)] + momentum_ * var;
    } else {
      mean = running_mean_[static_cast<std::size_t>(c)];
      var = running_var_[static_cast<std::size_t>(c)];
    }
    const float inv_std = 1.0f / std::sqrt(var + eps_);
    inv_std_[static_cast<std::size_t>(c)] = inv_std;
    const float g = gamma_.value[static_cast<std::size_t>(c)];
    const float b = beta_.value[static_cast<std::size_t>(c)];
    for (int n = 0; n < batch; ++n) {
      const std::size_t off = (static_cast<std::size_t>(n) * channels_ + c) * spatial;
      const float* iplane = input.data() + off;
      float* xplane = xhat_.data() + off;
      float* oplane = out.data() + off;
      for (int s = 0; s < spatial; ++s) {
        const float xh = (iplane[s] - mean) * inv_std;
        xplane[s] = xh;
        oplane[s] = g * xh + b;
      }
    }
  }
  return out;
}

Tensor BatchNorm2d::backward(const Tensor& grad_output) {
  const int batch = in_shape_[0];
  const int spatial = in_shape_[2] * in_shape_[3];
  const auto per_channel = static_cast<double>(batch) * spatial;
  Tensor grad_input(in_shape_);

  for (int c = 0; c < channels_; ++c) {
    const float g = gamma_.value[static_cast<std::size_t>(c)];
    const float inv_std = inv_std_[static_cast<std::size_t>(c)];
    // Accumulate dgamma, dbeta and the batch-stat coupling terms.
    double sum_dy = 0.0;
    double sum_dy_xhat = 0.0;
    for (int n = 0; n < batch; ++n) {
      const std::size_t off = (static_cast<std::size_t>(n) * channels_ + c) * spatial;
      const float* dy = grad_output.data() + off;
      const float* xh = xhat_.data() + off;
      for (int s = 0; s < spatial; ++s) {
        sum_dy += dy[s];
        sum_dy_xhat += static_cast<double>(dy[s]) * xh[s];
      }
    }
    gamma_.grad[static_cast<std::size_t>(c)] += static_cast<float>(sum_dy_xhat);
    beta_.grad[static_cast<std::size_t>(c)] += static_cast<float>(sum_dy);

    if (used_batch_stats_) {
      const float mean_dy = static_cast<float>(sum_dy / per_channel);
      const float mean_dy_xhat = static_cast<float>(sum_dy_xhat / per_channel);
      for (int n = 0; n < batch; ++n) {
        const std::size_t off = (static_cast<std::size_t>(n) * channels_ + c) * spatial;
        const float* dy = grad_output.data() + off;
        const float* xh = xhat_.data() + off;
        float* dx = grad_input.data() + off;
        for (int s = 0; s < spatial; ++s) {
          dx[s] = g * inv_std * (dy[s] - mean_dy - xh[s] * mean_dy_xhat);
        }
      }
    } else {
      // Frozen statistics: BN is an affine map per channel.
      const float scale = g * inv_std;
      for (int n = 0; n < batch; ++n) {
        const std::size_t off = (static_cast<std::size_t>(n) * channels_ + c) * spatial;
        const float* dy = grad_output.data() + off;
        float* dx = grad_input.data() + off;
        for (int s = 0; s < spatial; ++s) dx[s] = scale * dy[s];
      }
    }
  }
  return grad_input;
}

void BatchNorm2d::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&gamma_);
  out.push_back(&beta_);
}

}  // namespace cq::nn
