#include "nn/activations.h"

namespace cq::nn {

Tensor ReLU::forward(const Tensor& input) {
  Tensor out = input;
  mask_.assign(input.numel(), false);
  for (std::size_t i = 0; i < out.numel(); ++i) {
    if (out[i] > 0.0f) {
      mask_[i] = true;
    } else {
      out[i] = 0.0f;
    }
  }
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.numel(); ++i) {
    if (!mask_[i]) grad[i] = 0.0f;
  }
  return grad;
}

Tensor Flatten::forward(const Tensor& input) {
  cached_shape_ = input.shape();
  const int batch = input.dim(0);
  const int features = static_cast<int>(input.numel()) / batch;
  return input.reshape({batch, features});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  return grad_output.reshape(cached_shape_);
}

}  // namespace cq::nn
