#pragma once

#include "nn/module.h"

namespace cq::nn {

/// Batch normalization over the channel axis of NCHW tensors.
///
/// Training mode normalizes with batch statistics and maintains
/// exponential running averages; eval mode normalizes with the running
/// statistics. backward() is implemented for *both* modes: the CQ
/// importance collection back-propagates through a frozen (eval-mode)
/// network, where BN is a per-channel affine map and its gradient is
/// simply gamma / sqrt(running_var + eps).
class BatchNorm2d : public Module {
 public:
  explicit BatchNorm2d(int channels, float momentum = 0.1f, float eps = 1e-5f,
                       std::string name = "bn");

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  void collect_buffers(std::vector<Tensor*>& out) override {
    out.push_back(&running_mean_);
    out.push_back(&running_var_);
  }
  std::string name() const override { return name_; }

  Parameter& gamma() { return gamma_; }
  Parameter& beta() { return beta_; }
  Tensor& running_mean() { return running_mean_; }
  Tensor& running_var() { return running_var_; }
  int channels() const { return channels_; }
  float eps() const { return eps_; }

 private:
  int channels_;
  float momentum_;
  float eps_;
  std::string name_;
  Parameter gamma_;
  Parameter beta_;
  Tensor running_mean_;
  Tensor running_var_;

  // Forward caches.
  bool used_batch_stats_ = false;
  Tensor xhat_;
  std::vector<float> inv_std_;
  tensor::Shape in_shape_;
};

}  // namespace cq::nn
