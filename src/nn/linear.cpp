#include "nn/linear.h"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"

namespace cq::nn {

Linear::Linear(int in_features, int out_features, util::Rng& rng, std::string name)
    : in_features_(in_features), out_features_(out_features), name_(std::move(name)) {
  const float bound = std::sqrt(6.0f / static_cast<float>(in_features));
  weight_ = Parameter(name_ + ".weight",
                      Tensor::rand_uniform({out_features, in_features}, rng, -bound, bound));
  bias_ = Parameter(name_ + ".bias", Tensor::zeros({out_features}));
}

void Linear::set_filter_bits(std::vector<int> bits) {
  if (static_cast<int>(bits.size()) != out_features_) {
    throw std::invalid_argument(name_ + ": filter_bits size " + std::to_string(bits.size()) +
                                " != out_features " + std::to_string(out_features_));
  }
  filter_bits_ = std::move(bits);
}

void Linear::build_effective_weight() {
  if (filter_bits_.empty()) {
    effective_weight_ = weight_.value;
    effective_bias_ = bias_.value;
    return;
  }
  effective_weight_ = Tensor(weight_.value.shape());
  effective_bias_ = bias_.value;
  // Per-layer symmetric range, per-neuron bit-width (paper Section III).
  const quant::UniformRange range =
      range_override_ > 0.0f ? quant::UniformRange{-range_override_, range_override_}
                             : quant::symmetric_range(weight_.value.span());
  for (int k = 0; k < out_features_; ++k) {
    quant::quantize_span(weight_.value.row(k), effective_weight_.row(k), range,
                         filter_bits_[static_cast<std::size_t>(k)]);
    if (filter_bits_[static_cast<std::size_t>(k)] <= 0) {
      effective_bias_[static_cast<std::size_t>(k)] = 0.0f;  // pruned neuron
    }
  }
}

Tensor Linear::forward(const Tensor& input) {
  if (input.rank() != 2 || input.dim(1) != in_features_) {
    throw std::invalid_argument(name_ + ": bad input shape " +
                                tensor::shape_to_string(input.shape()));
  }
  build_effective_weight();
  cached_input_ = input;
  const int batch = input.dim(0);
  Tensor out({batch, out_features_});
  tensor::gemm_a_bt(input.data(), effective_weight_.data(), out.data(), batch, in_features_,
                    out_features_, /*accumulate=*/false, exec_);
  if (wrap_period_ > 0.0f) {
    for (std::size_t i = 0; i < out.numel(); ++i) {
      out[i] -= wrap_period_ * std::round(out[i] / wrap_period_);
    }
  }
  for (int n = 0; n < batch; ++n) {
    auto row = out.row(n);
    for (int k = 0; k < out_features_; ++k) row[static_cast<std::size_t>(k)] +=
        effective_bias_[static_cast<std::size_t>(k)];
  }
  return out;
}

Tensor Linear::backward(const Tensor& grad_output) {
  const int batch = grad_output.dim(0);
  // dW += dY^T X  (straight-through: accumulated on the master weight).
  tensor::gemm_at_b(grad_output.data(), cached_input_.data(), weight_.grad.data(), batch,
                    out_features_, in_features_, /*accumulate=*/true, exec_);
  // db += column sums of dY.
  for (int n = 0; n < batch; ++n) {
    const auto row = grad_output.row(n);
    for (int k = 0; k < out_features_; ++k) bias_.grad[static_cast<std::size_t>(k)] +=
        row[static_cast<std::size_t>(k)];
  }
  // dX = dY W_eff (the weights used in forward).
  Tensor grad_input({batch, in_features_});
  tensor::gemm(grad_output.data(), effective_weight_.data(), grad_input.data(), batch,
               out_features_, in_features_, /*accumulate=*/false, exec_);
  return grad_input;
}

void Linear::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&weight_);
  out.push_back(&bias_);
}

}  // namespace cq::nn
