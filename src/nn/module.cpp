#include "nn/module.h"

namespace cq::nn {

Tensor Sequential::forward(const Tensor& input) {
  Tensor x = input;
  for (auto& mod : modules_) x = mod->forward(x);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = modules_.rbegin(); it != modules_.rend(); ++it) g = (*it)->backward(g);
  return g;
}

void Sequential::collect_parameters(std::vector<Parameter*>& out) {
  for (auto& mod : modules_) mod->collect_parameters(out);
}

void Sequential::collect_buffers(std::vector<Tensor*>& out) {
  for (auto& mod : modules_) mod->collect_buffers(out);
}

void Sequential::set_training(bool training) {
  Module::set_training(training);
  for (auto& mod : modules_) mod->set_training(training);
}

void Sequential::set_exec_context(const util::ExecContext& exec) {
  for (auto& mod : modules_) mod->set_exec_context(exec);
}

}  // namespace cq::nn
