#pragma once

#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/module.h"

namespace cq::nn {

/// Folds an eval-mode BatchNorm2d into the preceding Conv2d:
///   w'_k = w_k * gamma_k / sqrt(var_k + eps)
///   b'_k = (b_k - mean_k) * gamma_k / sqrt(var_k + eps) + beta_k
/// and resets the BN to (numerically) the identity map. The standard
/// deployment preparation: run it on the *full-precision* model before
/// CQ, so the importance scores, clip ranges and packed codes all see
/// the folded weights and the deployed network needs no BN arithmetic.
/// Throws std::invalid_argument when the channel counts differ.
void fold_batchnorm(Conv2d& conv, BatchNorm2d& bn);

/// Walks a module chain (Sequential, recursing into nested Sequentials
/// and residual BasicBlocks) and folds every adjacent
/// Conv2d -> BatchNorm2d pair in place. Returns the number of folds.
/// Model-zoo networks expose the chain via their body() accessor:
///   nn::fold_batchnorm(model.body());
int fold_batchnorm(Sequential& chain);

}  // namespace cq::nn
