#pragma once

#include <vector>

#include "nn/module.h"

namespace cq::nn {

/// Interface shared by the gradient-descent optimizers. Parameters are
/// registered at construction; step() consumes the gradients that
/// forward/backward accumulated since the last zero_grad().
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update from the accumulated gradients.
  virtual void step() = 0;

  /// Clears all parameter gradients.
  void zero_grad() {
    for (Parameter* p : params_) p->zero_grad();
  }

  void set_lr(double lr) { lr_ = lr; }
  double lr() const { return lr_; }

 protected:
  Optimizer(std::vector<Parameter*> params, double lr)
      : params_(std::move(params)), lr_(lr) {}

  std::vector<Parameter*> params_;
  double lr_;
};

/// Stochastic gradient descent with momentum and L2 weight decay —
/// the optimizer configuration the paper trains with (momentum 0.9,
/// weight decay 1e-4/5e-4, step LR schedule).
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Parameter*> params, double lr, double momentum = 0.9,
      double weight_decay = 0.0);

  void step() override;

 private:
  std::vector<Tensor> velocity_;
  double momentum_;
  double weight_decay_;
};

/// Adam with bias correction and optional L2 weight decay; provided
/// as the modern alternative to the paper's SGD recipe for users
/// adopting the library outside the reproduction setting.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Parameter*> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8, double weight_decay = 0.0);

  void step() override;

  int steps_taken() const { return t_; }

 private:
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  double beta1_;
  double beta2_;
  double eps_;
  double weight_decay_;
  int t_ = 0;
};

/// Step learning-rate schedule: lr is multiplied by `factor` at each
/// milestone epoch ("divided by 10 at the 100th, 150th and 300th
/// epochs" in the paper's setup).
class StepLrSchedule {
 public:
  StepLrSchedule(double initial_lr, std::vector<int> milestones, double factor = 0.1);

  /// Learning rate in effect during `epoch` (0-based).
  double lr_at(int epoch) const;

 private:
  double initial_lr_;
  std::vector<int> milestones_;
  double factor_;
};

/// Cosine annealing from `initial_lr` down to `min_lr` over
/// `total_epochs` (the last epoch runs at min_lr exactly).
class CosineLrSchedule {
 public:
  CosineLrSchedule(double initial_lr, int total_epochs, double min_lr = 0.0);

  double lr_at(int epoch) const;

 private:
  double initial_lr_;
  int total_epochs_;
  double min_lr_;
};

}  // namespace cq::nn
