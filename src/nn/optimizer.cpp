#include "nn/optimizer.h"

#include <algorithm>
#include <cmath>

namespace cq::nn {

Sgd::Sgd(std::vector<Parameter*> params, double lr, double momentum, double weight_decay)
    : Optimizer(std::move(params), lr), momentum_(momentum), weight_decay_(weight_decay) {
  velocity_.reserve(params_.size());
  for (const Parameter* p : params_) velocity_.emplace_back(p->value.shape());
}

void Sgd::step() {
  const auto lr = static_cast<float>(lr_);
  const auto mu = static_cast<float>(momentum_);
  const auto wd = static_cast<float>(weight_decay_);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    Tensor& v = velocity_[i];
    for (std::size_t j = 0; j < p.value.numel(); ++j) {
      const float g = p.grad[j] + wd * p.value[j];
      v[j] = mu * v[j] + g;
      p.value[j] -= lr * v[j];
    }
  }
}

Adam::Adam(std::vector<Parameter*> params, double lr, double beta1, double beta2,
           double eps, double weight_decay)
    : Optimizer(std::move(params), lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Parameter* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  ++t_;
  const double bias1 = 1.0 - std::pow(beta1_, t_);
  const double bias2 = 1.0 - std::pow(beta2_, t_);
  const auto wd = static_cast<float>(weight_decay_);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    for (std::size_t j = 0; j < p.value.numel(); ++j) {
      const double g = p.grad[j] + wd * p.value[j];
      m[j] = static_cast<float>(beta1_ * m[j] + (1.0 - beta1_) * g);
      v[j] = static_cast<float>(beta2_ * v[j] + (1.0 - beta2_) * g * g);
      const double m_hat = m[j] / bias1;
      const double v_hat = v[j] / bias2;
      p.value[j] -= static_cast<float>(lr_ * m_hat / (std::sqrt(v_hat) + eps_));
    }
  }
}

StepLrSchedule::StepLrSchedule(double initial_lr, std::vector<int> milestones, double factor)
    : initial_lr_(initial_lr), milestones_(std::move(milestones)), factor_(factor) {}

double StepLrSchedule::lr_at(int epoch) const {
  double lr = initial_lr_;
  for (const int m : milestones_) {
    if (epoch >= m) lr *= factor_;
  }
  return lr;
}

CosineLrSchedule::CosineLrSchedule(double initial_lr, int total_epochs, double min_lr)
    : initial_lr_(initial_lr), total_epochs_(std::max(1, total_epochs)), min_lr_(min_lr) {}

double CosineLrSchedule::lr_at(int epoch) const {
  if (total_epochs_ == 1) return initial_lr_;
  const int clamped = std::clamp(epoch, 0, total_epochs_ - 1);
  const double t = static_cast<double>(clamped) / static_cast<double>(total_epochs_ - 1);
  return min_lr_ +
         0.5 * (initial_lr_ - min_lr_) * (1.0 + std::cos(t * 3.14159265358979323846));
}

}  // namespace cq::nn
