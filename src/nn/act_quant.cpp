#include "nn/act_quant.h"

#include <algorithm>

namespace cq::nn {

Tensor ActQuant::forward(const Tensor& input) {
  if (calibrating_) {
    max_act_ = std::max(max_act_, input.abs_max());
    pass_mask_.assign(input.numel(), true);
    return input;
  }
  if (bits_ <= 0 || max_act_ <= 0.0f) {
    pass_mask_.assign(input.numel(), true);
    return input;
  }
  const quant::UniformRange range{0.0f, max_act_};
  Tensor out(input.shape());
  pass_mask_.assign(input.numel(), true);
  for (std::size_t i = 0; i < input.numel(); ++i) {
    if (input[i] > max_act_) pass_mask_[i] = false;  // clipped above
  }
  quant::quantize_span(input.span(), out.span(), range, bits_);
  return out;
}

Tensor ActQuant::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.numel(); ++i) {
    if (!pass_mask_[i]) grad[i] = 0.0f;
  }
  return grad;
}

}  // namespace cq::nn
