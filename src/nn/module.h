#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace cq::util {
struct ExecContext;
}  // namespace cq::util

namespace cq::nn {

using tensor::Tensor;

/// A learnable tensor together with its gradient accumulator.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;

  Parameter() = default;
  Parameter(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(Tensor(value.shape())) {}

  void zero_grad() { grad.fill(0.0f); }
};

/// Base class of the layer-graph backprop framework.
///
/// Modules cache whatever they need during forward() and implement
/// backward(grad_of_output) -> grad_of_input. The static CNNs used in
/// this reproduction are single-input chains (with residual blocks
/// handled as composite modules), so no tape autograd is needed.
class Module {
 public:
  virtual ~Module() = default;

  virtual Tensor forward(const Tensor& input) = 0;

  /// Propagates `grad_output` through the cached forward computation,
  /// accumulating into parameter gradients, and returns the gradient
  /// with respect to the module input.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Appends the module's parameters to `out` (depth-first, stable
  /// order — used for optimizer registration and weight cloning).
  virtual void collect_parameters(std::vector<Parameter*>& out) { (void)out; }

  /// Appends non-learnable state tensors (batch-norm running
  /// statistics) in stable order; cloning a model copies these too.
  virtual void collect_buffers(std::vector<Tensor*>& out) { (void)out; }

  /// Switches train/eval behaviour (batch-norm statistics etc.).
  virtual void set_training(bool training) { training_ = training; }
  bool training() const { return training_; }

  /// Installs the intra-op execution context used by compute-heavy
  /// layers (Conv2d, Linear) for their GEMM/im2col kernels. Composite
  /// modules propagate it to their children. The context is copied (a
  /// pool pointer plus a thread cap), must outlive the module's use,
  /// and defaults to serial — modules that never see one behave
  /// exactly as before. No-op for stateless modules.
  virtual void set_exec_context(const util::ExecContext& exec) { (void)exec; }

  /// Diagnostic name.
  virtual std::string name() const { return "Module"; }

  std::vector<Parameter*> parameters() {
    std::vector<Parameter*> out;
    collect_parameters(out);
    return out;
  }

  void zero_grad() {
    for (Parameter* p : parameters()) p->zero_grad();
  }

 protected:
  bool training_ = true;
};

/// Ordered chain of sub-modules executed front to back.
class Sequential : public Module {
 public:
  Sequential() = default;

  /// Appends a module; returns a typed raw handle for wiring probes
  /// and quantizers (ownership stays with the Sequential).
  template <typename T, typename... Args>
  T* emplace(Args&&... args) {
    auto mod = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = mod.get();
    modules_.push_back(std::move(mod));
    return raw;
  }

  void append(std::unique_ptr<Module> module) { modules_.push_back(std::move(module)); }

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  void collect_buffers(std::vector<Tensor*>& out) override;
  void set_training(bool training) override;
  void set_exec_context(const util::ExecContext& exec) override;
  std::string name() const override { return "Sequential"; }

  std::size_t size() const { return modules_.size(); }
  Module* at(std::size_t i) { return modules_[i].get(); }

 private:
  std::vector<std::unique_ptr<Module>> modules_;
};

}  // namespace cq::nn
