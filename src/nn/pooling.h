#pragma once

#include "nn/module.h"

namespace cq::nn {

/// Max pooling over non-overlapping square windows (NCHW).
/// Caches the winning index of each window for backward routing.
class MaxPool2d : public Module {
 public:
  explicit MaxPool2d(int kernel, int stride = -1);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "MaxPool2d"; }

  int kernel() const { return kernel_; }
  int stride() const { return stride_; }

 private:
  int kernel_;
  int stride_;
  tensor::Shape in_shape_;
  std::vector<int> argmax_;  ///< flat input index per output element
};

/// Global average pooling: [N, C, H, W] -> [N, C].
class GlobalAvgPool : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "GlobalAvgPool"; }

 private:
  tensor::Shape in_shape_;
};

}  // namespace cq::nn
