#pragma once

#include "nn/module.h"
#include "quant/bitwidth.h"
#include "quant/uniform.h"
#include "util/exec_context.h"

namespace cq::nn {

/// Fully-connected layer y = x W^T + b with optional per-neuron
/// fake quantization of the weights.
///
/// Quantization semantics (paper Section II-A / III):
///  - the clipping range is symmetric and *per layer*:
///    [-max|W|, max|W|] recomputed from the master weights each forward;
///  - each output neuron k has its own bit-width; 0 bits prunes the
///    neuron (weights and bias forced to zero);
///  - backward uses the straight-through estimator: input gradients are
///    computed against the quantized weights actually used in forward,
///    while weight gradients flow unmodified to the full-precision
///    master weights.
class Linear : public Module, public quant::QuantizableLayer {
 public:
  /// Kaiming-uniform initialized layer of shape [out_features, in_features].
  Linear(int in_features, int out_features, util::Rng& rng, std::string name = "linear");

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  /// Intra-op context for the GEMM kernels of forward/backward.
  void set_exec_context(const util::ExecContext& exec) override { exec_ = exec; }
  std::string name() const override { return name_; }

  // QuantizableLayer interface.
  int num_filters() const override { return out_features_; }
  std::size_t weights_per_filter() const override {
    return static_cast<std::size_t>(in_features_);
  }
  void set_filter_bits(std::vector<int> bits) override;
  void clear_filter_bits() override { filter_bits_.clear(); }
  const std::vector<int>& filter_bits() const override { return filter_bits_; }
  std::span<const float> filter_weights(int k) const override { return weight_.value.row(k); }
  std::span<float> mutable_filter_weights(int k) override { return weight_.value.row(k); }
  float weight_abs_max() const override { return weight_.value.abs_max(); }
  void set_weight_range_override(float hi) override { range_override_ = hi; }
  float weight_range_override() const override { return range_override_; }

  /// Low-precision-accumulator simulation; see Conv2d::set_accumulator_wrap.
  void set_accumulator_wrap(float period) override { wrap_period_ = period; }
  float accumulator_wrap() const { return wrap_period_; }

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }
  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

  /// Rebuilds the effective (quantized) weights/bias exactly as
  /// forward() would; deploy::compile_plan snapshots them so the
  /// compiled float path multiplies the same values bit-for-bit.
  void build_effective_weight();
  /// The weights actually multiplied in the last forward (quantized
  /// when bits are set). Exposed for inspection in tests and for the
  /// plan compiler's snapshot.
  const Tensor& effective_weight() const { return effective_weight_; }
  const Tensor& effective_bias() const { return effective_bias_; }

 private:

  int in_features_;
  int out_features_;
  std::string name_;
  Parameter weight_;  ///< [out, in]
  Parameter bias_;    ///< [out]
  std::vector<int> filter_bits_;

  Tensor effective_weight_;
  Tensor effective_bias_;
  Tensor cached_input_;
  util::ExecContext exec_;  ///< intra-op context; default serial
  float wrap_period_ = 0.0f;
  float range_override_ = 0.0f;
};

}  // namespace cq::nn
