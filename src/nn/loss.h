#pragma once

#include <vector>

#include "nn/module.h"

namespace cq::nn {

/// Softmax + cross-entropy over integer class labels, mean-reduced.
class SoftmaxCrossEntropy {
 public:
  /// Returns the mean cross-entropy of `logits` [B, M] against labels.
  double forward(const Tensor& logits, const std::vector<int>& labels);

  /// Gradient with respect to the logits of the last forward:
  /// (softmax - onehot) / B.
  Tensor backward() const;

  /// Class probabilities of the last forward.
  const Tensor& probabilities() const { return probs_; }

 private:
  Tensor probs_;
  std::vector<int> labels_;
};

/// Knowledge-distillation loss of paper Eq. (10):
///   L = alpha * L_ce + (1 - alpha) * KL(Y_fp || Y)
/// where Y_fp are the full-precision teacher's probabilities and Y the
/// student's. (The paper's formula prints the divergence with the
/// ratio inverted, which would make it negative; we use the standard
/// positive KL(teacher || student) whose gradient w.r.t. the student
/// logits is softmax(student) - softmax(teacher).)
class KnowledgeDistillLoss {
 public:
  explicit KnowledgeDistillLoss(double alpha) : alpha_(alpha) {}

  /// Computes the combined loss; caches what backward() needs.
  double forward(const Tensor& student_logits, const Tensor& teacher_logits,
                 const std::vector<int>& labels);

  /// Gradient with respect to the *student* logits, mean-reduced.
  Tensor backward() const;

  double alpha() const { return alpha_; }

 private:
  double alpha_;
  Tensor student_probs_;
  Tensor teacher_probs_;
  std::vector<int> labels_;
};

/// Top-1 accuracy of `logits` [B, M] against labels, in [0, 1].
double accuracy(const Tensor& logits, const std::vector<int>& labels);

}  // namespace cq::nn
