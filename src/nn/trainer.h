#pragma once

#include <functional>
#include <vector>

#include "nn/loss.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "util/rng.h"

namespace cq::nn {

/// Optimizer selection for a training run. The paper's recipe is SGD
/// with momentum; Adam is the library's alternative for new workloads.
enum class OptimizerKind { kSgd, kAdam };

/// Learning-rate schedule selection: step milestones (the paper) or
/// cosine annealing to zero over the run.
enum class LrScheduleKind { kStep, kCosine };

/// Hyper-parameters of a training run (defaults mirror the paper's
/// setup scaled to this repository's CPU-sized experiments).
struct TrainConfig {
  int epochs = 10;
  int batch_size = 50;
  double lr = 0.05;
  double momentum = 0.9;
  double weight_decay = 5e-4;
  std::vector<int> lr_milestones;  ///< epochs at which lr is cut
  double lr_decay = 0.1;
  std::uint64_t seed = 1;
  bool verbose = false;
  /// Knowledge-distillation mixing factor used when a teacher is
  /// given to fit(); the paper sets alpha = 0.3 in Eq. (10).
  double kd_alpha = 0.3;

  OptimizerKind optimizer = OptimizerKind::kSgd;
  LrScheduleKind lr_schedule = LrScheduleKind::kStep;
  double adam_beta1 = 0.9;
  double adam_beta2 = 0.999;
  double adam_eps = 1e-8;

  /// Optional per-batch training-time augmentation (see
  /// data::Augmenter::as_fn()); receives the gathered batch and the
  /// trainer's RNG, returns the batch actually trained on. Evaluation
  /// never applies it.
  std::function<Tensor(const Tensor&, util::Rng&)> augment;
};

/// Per-epoch record of a fit() run.
struct EpochStats {
  int epoch = 0;
  double loss = 0.0;
  double train_accuracy = 0.0;
  double lr = 0.0;
};

/// Copies the sample rows listed in `indices` out of an image tensor
/// whose axis 0 is the sample axis.
Tensor gather_batch(const Tensor& images, const std::vector<std::size_t>& indices);

/// Mini-batch SGD training driver.
///
/// With a `teacher` the student is refined with the knowledge-
/// distillation loss of Eq. (10) (paper Section III-D); without one it
/// trains with plain cross-entropy. The teacher runs in eval mode and
/// receives no gradient.
class Trainer {
 public:
  explicit Trainer(TrainConfig config) : config_(std::move(config)) {}

  /// Trains `model` and returns the per-epoch statistics.
  std::vector<EpochStats> fit(Module& model, const Tensor& images,
                              const std::vector<int>& labels, Module* teacher = nullptr);

  /// Top-1 accuracy of `model` on the given set (eval mode, batched).
  static double evaluate(Module& model, const Tensor& images, const std::vector<int>& labels,
                         int batch_size = 100);

  const TrainConfig& config() const { return config_; }

 private:
  TrainConfig config_;
};

}  // namespace cq::nn
