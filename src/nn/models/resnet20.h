#pragma once

#include <memory>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/models/model.h"
#include "nn/pooling.h"

namespace cq::nn {

/// Residual basic block: conv-BN-ReLU-conv-BN plus identity (or 1x1
/// projection) shortcut, final ReLU. Probes sit after both ReLUs; the
/// projection conv shares probe2 / filter scores with conv2 because
/// they feed the same output channels.
class BasicBlock : public Module {
 public:
  BasicBlock(int in_channels, int out_channels, int stride, util::Rng& rng,
             std::string name);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  void collect_buffers(std::vector<Tensor*>& out) override;
  void set_training(bool training) override;
  void set_exec_context(const util::ExecContext& exec) override;
  std::string name() const override { return name_; }

  Conv2d* conv1() { return conv1_.get(); }
  Conv2d* conv2() { return conv2_.get(); }
  Conv2d* downsample_conv() { return down_conv_.get(); }
  BatchNorm2d* bn1() { return bn1_.get(); }
  BatchNorm2d* bn2() { return bn2_.get(); }
  BatchNorm2d* downsample_bn() { return down_bn_.get(); }
  Probe* probe1() { return probe1_.get(); }
  Probe* probe2() { return probe2_.get(); }
  ActQuant* act_quant1() { return aq1_.get(); }
  ActQuant* act_quant2() { return aq2_.get(); }

 private:
  std::string name_;
  std::unique_ptr<Conv2d> conv1_;
  std::unique_ptr<BatchNorm2d> bn1_;
  std::unique_ptr<ReLU> relu1_;
  std::unique_ptr<Probe> probe1_;
  std::unique_ptr<ActQuant> aq1_;
  std::unique_ptr<Conv2d> conv2_;
  std::unique_ptr<BatchNorm2d> bn2_;
  std::unique_ptr<Conv2d> down_conv_;      ///< nullptr for identity shortcut
  std::unique_ptr<BatchNorm2d> down_bn_;   ///< nullptr for identity shortcut
  std::unique_ptr<ReLU> relu2_;
  std::unique_ptr<Probe> probe2_;
  std::unique_ptr<ActQuant> aq2_;
};

/// ResNet-20 configuration. `expand` is the paper's width multiplier
/// (ResNet-20-x1 and ResNet-20-x5); `base_width` scales the whole
/// network down to CPU size (16 in the original paper's networks).
struct ResNet20Config {
  int in_channels = 3;
  int image_size = 16;
  int num_classes = 10;
  int base_width = 4;
  int expand = 1;
  std::uint64_t seed = 1;
};

/// ResNet-20 [1]: stem conv + 3 stages of 3 basic blocks (widths
/// w, 2w, 4w; stride 2 between stages) + global average pool + FC.
/// The stem conv and output FC are excluded from quantization.
class ResNet20 : public Model {
 public:
  explicit ResNet20(ResNet20Config config);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  void collect_buffers(std::vector<Tensor*>& out) override;
  void set_training(bool training) override;
  std::string name() const override { return "ResNet20"; }

  std::vector<ScoredLayerRef> scored_layers() override { return scored_; }
  std::vector<ActQuant*> activation_quantizers() override { return act_quants_; }
  std::unique_ptr<Model> clone() override;

  const ResNet20Config& config() const { return config_; }
  /// Module chain of the network (used by nn::fold_batchnorm).
  Sequential& body() { return body_; }

 private:
  ResNet20Config config_;
  Sequential body_;  ///< stem + blocks + pool + fc, in order
  std::vector<ScoredLayerRef> scored_;
  std::vector<ActQuant*> act_quants_;
};

}  // namespace cq::nn
