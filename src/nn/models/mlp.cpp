#include "nn/models/mlp.h"

namespace cq::nn {

Mlp::Mlp(MlpConfig config) : config_(std::move(config)) {
  util::Rng rng(config_.seed);
  int in = config_.in_features;
  for (std::size_t h = 0; h < config_.hidden.size(); ++h) {
    const int out = config_.hidden[h];
    const std::string layer_name = "fc" + std::to_string(h);
    Linear* fc = body_.emplace<Linear>(in, out, rng, layer_name);
    body_.emplace<ReLU>();
    Probe* probe = body_.emplace<Probe>(layer_name + ".probe");
    ActQuant* aq = body_.emplace<ActQuant>(layer_name + ".aq");
    act_quants_.push_back(aq);
    if (h > 0) {
      // The first layer is excluded from quantization (Section IV).
      scored_.push_back({layer_name, {fc}, probe, /*is_conv=*/false, aq});
    }
    in = out;
  }
  body_.emplace<Linear>(in, config_.num_classes, rng, "fc_out");
}

std::unique_ptr<Model> Mlp::clone() {
  auto copy = std::make_unique<Mlp>(config_);
  copy_state(*copy, *this);
  return copy;
}

}  // namespace cq::nn
