#pragma once

#include "nn/activations.h"
#include "nn/linear.h"
#include "nn/models/model.h"

namespace cq::nn {

/// Multilayer perceptron configuration.
struct MlpConfig {
  int in_features = 16;
  std::vector<int> hidden = {32, 32};
  int num_classes = 10;
  std::uint64_t seed = 1;
};

/// Plain MLP (Linear/ReLU stack) — the Figure-1 style network the
/// paper motivates the class-based neuron scores with, and the fast
/// vehicle for unit tests. The first hidden layer is the unquantized
/// "first layer"; the output layer is never quantized; every other
/// hidden layer is a scored quantization target.
class Mlp : public Model {
 public:
  explicit Mlp(MlpConfig config);

  Tensor forward(const Tensor& input) override { return body_.forward(input); }
  Tensor backward(const Tensor& grad_output) override { return body_.backward(grad_output); }
  void collect_parameters(std::vector<Parameter*>& out) override {
    body_.collect_parameters(out);
  }
  void collect_buffers(std::vector<Tensor*>& out) override { body_.collect_buffers(out); }
  void set_training(bool training) override { body_.set_training(training); }
  std::string name() const override { return "Mlp"; }

  std::vector<ScoredLayerRef> scored_layers() override { return scored_; }
  std::vector<ActQuant*> activation_quantizers() override { return act_quants_; }
  std::unique_ptr<Model> clone() override;

  const MlpConfig& config() const { return config_; }
  /// Module chain of the network (used by nn::fold_batchnorm).
  Sequential& body() { return body_; }

 private:
  MlpConfig config_;
  Sequential body_;
  std::vector<ScoredLayerRef> scored_;
  std::vector<ActQuant*> act_quants_;
};

}  // namespace cq::nn
