#include "nn/models/resnet20.h"

namespace cq::nn {

BasicBlock::BasicBlock(int in_channels, int out_channels, int stride, util::Rng& rng,
                       std::string name)
    : name_(std::move(name)) {
  conv1_ = std::make_unique<Conv2d>(in_channels, out_channels, 3, stride, 1, rng,
                                    name_ + ".conv1");
  bn1_ = std::make_unique<BatchNorm2d>(out_channels, 0.1f, 1e-5f, name_ + ".bn1");
  relu1_ = std::make_unique<ReLU>();
  probe1_ = std::make_unique<Probe>(name_ + ".probe1");
  aq1_ = std::make_unique<ActQuant>(name_ + ".aq1");
  conv2_ = std::make_unique<Conv2d>(out_channels, out_channels, 3, 1, 1, rng,
                                    name_ + ".conv2");
  bn2_ = std::make_unique<BatchNorm2d>(out_channels, 0.1f, 1e-5f, name_ + ".bn2");
  if (stride != 1 || in_channels != out_channels) {
    down_conv_ = std::make_unique<Conv2d>(in_channels, out_channels, 1, stride, 0, rng,
                                          name_ + ".down");
    down_bn_ = std::make_unique<BatchNorm2d>(out_channels, 0.1f, 1e-5f, name_ + ".down_bn");
  }
  relu2_ = std::make_unique<ReLU>();
  probe2_ = std::make_unique<Probe>(name_ + ".probe2");
  aq2_ = std::make_unique<ActQuant>(name_ + ".aq2");
}

Tensor BasicBlock::forward(const Tensor& input) {
  Tensor h = aq1_->forward(probe1_->forward(relu1_->forward(bn1_->forward(conv1_->forward(input)))));
  Tensor main = bn2_->forward(conv2_->forward(h));
  Tensor shortcut =
      down_conv_ ? down_bn_->forward(down_conv_->forward(input)) : input;
  main += shortcut;
  return aq2_->forward(probe2_->forward(relu2_->forward(main)));
}

Tensor BasicBlock::backward(const Tensor& grad_output) {
  Tensor g = relu2_->backward(probe2_->backward(aq2_->backward(grad_output)));
  // Main branch.
  Tensor g_main = conv1_->backward(bn1_->backward(relu1_->backward(
      probe1_->backward(aq1_->backward(conv2_->backward(bn2_->backward(g)))))));
  // Shortcut branch.
  if (down_conv_) {
    Tensor g_short = down_conv_->backward(down_bn_->backward(g));
    g_main += g_short;
    return g_main;
  }
  g_main += g;
  return g_main;
}

void BasicBlock::collect_parameters(std::vector<Parameter*>& out) {
  conv1_->collect_parameters(out);
  bn1_->collect_parameters(out);
  conv2_->collect_parameters(out);
  bn2_->collect_parameters(out);
  if (down_conv_) {
    down_conv_->collect_parameters(out);
    down_bn_->collect_parameters(out);
  }
}

void BasicBlock::collect_buffers(std::vector<Tensor*>& out) {
  bn1_->collect_buffers(out);
  bn2_->collect_buffers(out);
  if (down_bn_) down_bn_->collect_buffers(out);
}

void BasicBlock::set_training(bool training) {
  Module::set_training(training);
  bn1_->set_training(training);
  bn2_->set_training(training);
  if (down_bn_) down_bn_->set_training(training);
}

void BasicBlock::set_exec_context(const util::ExecContext& exec) {
  conv1_->set_exec_context(exec);
  conv2_->set_exec_context(exec);
  if (down_conv_) down_conv_->set_exec_context(exec);
}

ResNet20::ResNet20(ResNet20Config config) : config_(std::move(config)) {
  util::Rng rng(config_.seed);
  const int w1 = config_.base_width * config_.expand;
  const int w2 = 2 * w1;
  const int w3 = 4 * w1;

  // Stem: first layer, never quantized.
  body_.emplace<Conv2d>(config_.in_channels, w1, 3, 1, 1, rng, "stem");
  body_.emplace<BatchNorm2d>(w1, 0.1f, 1e-5f, "stem.bn");
  body_.emplace<ReLU>();
  act_quants_.push_back(body_.emplace<ActQuant>("stem.aq"));

  const int widths[3] = {w1, w2, w3};
  int in_c = w1;
  for (int stage = 0; stage < 3; ++stage) {
    for (int block = 0; block < 3; ++block) {
      const int stride = (stage > 0 && block == 0) ? 2 : 1;
      const std::string block_name =
          "s" + std::to_string(stage + 1) + "b" + std::to_string(block + 1);
      BasicBlock* bb =
          body_.emplace<BasicBlock>(in_c, widths[stage], stride, rng, block_name);
      act_quants_.push_back(bb->act_quant1());
      act_quants_.push_back(bb->act_quant2());
      scored_.push_back(
          {block_name + ".conv1", {bb->conv1()}, bb->probe1(), true, bb->act_quant1()});
      ScoredLayerRef second{block_name + ".conv2", {bb->conv2()}, bb->probe2(), true,
                            bb->act_quant2()};
      if (bb->downsample_conv() != nullptr) {
        second.layers.push_back(bb->downsample_conv());
      }
      scored_.push_back(std::move(second));
      in_c = widths[stage];
    }
  }

  body_.emplace<GlobalAvgPool>();
  // Output layer, never quantized.
  body_.emplace<Linear>(w3, config_.num_classes, rng, "fc_out");
}

Tensor ResNet20::forward(const Tensor& input) { return body_.forward(input); }

Tensor ResNet20::backward(const Tensor& grad_output) { return body_.backward(grad_output); }

void ResNet20::collect_parameters(std::vector<Parameter*>& out) {
  body_.collect_parameters(out);
}

void ResNet20::collect_buffers(std::vector<Tensor*>& out) { body_.collect_buffers(out); }

void ResNet20::set_training(bool training) {
  Module::set_training(training);
  body_.set_training(training);
}

std::unique_ptr<Model> ResNet20::clone() {
  auto copy = std::make_unique<ResNet20>(config_);
  copy_state(*copy, *this);
  return copy;
}

}  // namespace cq::nn
