#pragma once

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/models/model.h"
#include "nn/pooling.h"

namespace cq::nn {

/// VGG-small configuration. Defaults are scaled to the repository's
/// single-CPU synthetic workloads; the layer *structure* matches the
/// network of the paper (5 conv + 3 hidden FC + output FC, so that the
/// seven quantized layers Layer-1..Layer-7 of Figures 2/6 exist, with
/// layer-5..7 fully connected as the paper describes).
struct VggSmallConfig {
  int in_channels = 3;
  int image_size = 16;  ///< square input, must be divisible by 8
  int num_classes = 10;
  int c1 = 16;   ///< widths of conv layers 0-1
  int c2 = 32;   ///< widths of conv layers 2-3
  int c3 = 64;   ///< width of conv layer 4
  int f1 = 128;  ///< FC layer 5
  int f2 = 96;   ///< FC layer 6
  int f3 = 64;   ///< FC layer 7
  std::uint64_t seed = 1;
};

/// VGG-small (adapted from [21] in the paper): conv-BN-ReLU stacks
/// with max pooling, then a fully-connected head. Layer-0 (first conv)
/// and the output FC are excluded from quantization; layers 1-7 are
/// the scored quantization targets.
class VggSmall : public Model {
 public:
  explicit VggSmall(VggSmallConfig config);

  Tensor forward(const Tensor& input) override { return body_.forward(input); }
  Tensor backward(const Tensor& grad_output) override { return body_.backward(grad_output); }
  void collect_parameters(std::vector<Parameter*>& out) override {
    body_.collect_parameters(out);
  }
  void collect_buffers(std::vector<Tensor*>& out) override { body_.collect_buffers(out); }
  void set_training(bool training) override { body_.set_training(training); }
  std::string name() const override { return "VggSmall"; }

  std::vector<ScoredLayerRef> scored_layers() override { return scored_; }
  std::vector<ActQuant*> activation_quantizers() override { return act_quants_; }
  std::unique_ptr<Model> clone() override;

  const VggSmallConfig& config() const { return config_; }
  /// Module chain of the network (used by nn::fold_batchnorm).
  Sequential& body() { return body_; }

 private:
  /// Adds conv-BN-ReLU-probe-actquant; returns the conv for scoring.
  Conv2d* add_conv_block(int in_c, int out_c, const std::string& name, util::Rng& rng,
                         Probe** probe_out);

  VggSmallConfig config_;
  Sequential body_;
  std::vector<ScoredLayerRef> scored_;
  std::vector<ActQuant*> act_quants_;
};

}  // namespace cq::nn
