#include "nn/models/model.h"

#include <algorithm>
#include <stdexcept>

#include "nn/trainer.h"

namespace cq::nn {

void Model::set_activation_bits(int bits) {
  for (ActQuant* aq : activation_quantizers()) aq->set_bits(bits);
}

void Model::set_exec_context(const util::ExecContext& exec) {
  body().set_exec_context(exec);
}

void Model::calibrate_activations(const Tensor& images, int batch_size) {
  const bool was_training = training();
  set_training(false);
  for (ActQuant* aq : activation_quantizers()) {
    aq->reset_calibration();
    aq->set_calibrating(true);
  }
  const auto count = static_cast<std::size_t>(images.dim(0));
  for (std::size_t start = 0; start < count; start += static_cast<std::size_t>(batch_size)) {
    const std::size_t stop = std::min(count, start + static_cast<std::size_t>(batch_size));
    std::vector<std::size_t> idx;
    for (std::size_t i = start; i < stop; ++i) idx.push_back(i);
    forward(gather_batch(images, idx));
  }
  for (ActQuant* aq : activation_quantizers()) aq->set_calibrating(false);
  set_training(was_training);
}

void Model::set_recording(bool on) {
  for (const auto& scored : scored_layers()) scored.probe->set_recording(on);
}

void Model::clear_weight_quantization() {
  for (const auto& scored : scored_layers()) {
    for (quant::QuantizableLayer* layer : scored.layers) layer->clear_filter_bits();
  }
}

quant::BitArrangement Model::bit_arrangement() {
  quant::BitArrangement arrangement;
  for (const auto& scored : scored_layers()) {
    for (quant::QuantizableLayer* layer : scored.layers) {
      quant::LayerBits lb;
      lb.layer_name = scored.name;
      lb.weights_per_filter = layer->weights_per_filter();
      lb.filter_bits = layer->filter_bits();
      if (lb.filter_bits.empty()) {
        // Unquantized layers are reported at full precision bits = 32.
        lb.filter_bits.assign(static_cast<std::size_t>(layer->num_filters()), 32);
      }
      arrangement.add_layer(std::move(lb));
    }
  }
  return arrangement;
}

void copy_state(Module& dst, Module& src) {
  const auto dst_params = dst.parameters();
  const auto src_params = src.parameters();
  if (dst_params.size() != src_params.size()) {
    throw std::invalid_argument("copy_state: parameter count mismatch");
  }
  for (std::size_t i = 0; i < dst_params.size(); ++i) {
    if (dst_params[i]->value.shape() != src_params[i]->value.shape()) {
      throw std::invalid_argument("copy_state: shape mismatch at " + dst_params[i]->name);
    }
    dst_params[i]->value = src_params[i]->value;
  }
  std::vector<Tensor*> dst_buffers;
  std::vector<Tensor*> src_buffers;
  dst.collect_buffers(dst_buffers);
  src.collect_buffers(src_buffers);
  if (dst_buffers.size() != src_buffers.size()) {
    throw std::invalid_argument("copy_state: buffer count mismatch");
  }
  for (std::size_t i = 0; i < dst_buffers.size(); ++i) *dst_buffers[i] = *src_buffers[i];
}

}  // namespace cq::nn
