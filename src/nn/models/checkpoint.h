#pragma once

#include <string>

#include "nn/module.h"

namespace cq::nn {

/// Saves every parameter and buffer (batch-norm running statistics) of
/// `model` to `path` in the tensor checkpoint format, keyed by stable
/// collection index. The architecture itself is not serialized: loading
/// requires a structurally identical model (same config).
void save_checkpoint(const std::string& path, Module& model);

/// Restores a checkpoint written by save_checkpoint into `model`.
/// Returns false (leaving the model untouched) when the entry count or
/// any shape does not match — the caller typically retrains then.
/// Throws only on I/O or format errors of the file itself.
bool load_checkpoint(const std::string& path, Module& model);

}  // namespace cq::nn
