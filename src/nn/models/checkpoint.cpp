#include "nn/models/checkpoint.h"

#include <map>

#include "tensor/serialize.h"

namespace cq::nn {

void save_checkpoint(const std::string& path, Module& model) {
  std::map<std::string, Tensor> state;
  const auto params = model.parameters();
  for (std::size_t i = 0; i < params.size(); ++i) {
    state.emplace("p" + std::to_string(i), params[i]->value);
  }
  std::vector<Tensor*> buffers;
  model.collect_buffers(buffers);
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    state.emplace("b" + std::to_string(i), *buffers[i]);
  }
  tensor::save_tensors(path, state);
}

bool load_checkpoint(const std::string& path, Module& model) {
  const auto state = tensor::load_tensors(path);
  const auto params = model.parameters();
  std::vector<Tensor*> buffers;
  model.collect_buffers(buffers);
  if (state.size() != params.size() + buffers.size()) return false;

  // Validate every shape before mutating anything.
  for (std::size_t i = 0; i < params.size(); ++i) {
    const auto it = state.find("p" + std::to_string(i));
    if (it == state.end() || it->second.shape() != params[i]->value.shape()) return false;
  }
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    const auto it = state.find("b" + std::to_string(i));
    if (it == state.end() || it->second.shape() != buffers[i]->shape()) return false;
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i]->value = state.at("p" + std::to_string(i));
  }
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    *buffers[i] = state.at("b" + std::to_string(i));
  }
  return true;
}

}  // namespace cq::nn
