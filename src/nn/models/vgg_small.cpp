#include "nn/models/vgg_small.h"

#include <stdexcept>

namespace cq::nn {

Conv2d* VggSmall::add_conv_block(int in_c, int out_c, const std::string& name,
                                 util::Rng& rng, Probe** probe_out) {
  Conv2d* conv = body_.emplace<Conv2d>(in_c, out_c, 3, 1, 1, rng, name);
  body_.emplace<BatchNorm2d>(out_c, 0.1f, 1e-5f, name + ".bn");
  body_.emplace<ReLU>();
  *probe_out = body_.emplace<Probe>(name + ".probe");
  act_quants_.push_back(body_.emplace<ActQuant>(name + ".aq"));
  return conv;
}

VggSmall::VggSmall(VggSmallConfig config) : config_(std::move(config)) {
  if (config_.image_size % 8 != 0) {
    throw std::invalid_argument("VggSmall: image_size must be divisible by 8");
  }
  util::Rng rng(config_.seed);
  Probe* probe = nullptr;

  // Layer-0: first conv, never quantized (Section IV).
  add_conv_block(config_.in_channels, config_.c1, "conv0", rng, &probe);

  // Layer-1.
  Conv2d* conv1 = add_conv_block(config_.c1, config_.c1, "conv1", rng, &probe);
  scored_.push_back({"conv1", {conv1}, probe, true, act_quants_.back()});
  body_.emplace<MaxPool2d>(2);

  // Layer-2.
  Conv2d* conv2 = add_conv_block(config_.c1, config_.c2, "conv2", rng, &probe);
  scored_.push_back({"conv2", {conv2}, probe, true, act_quants_.back()});

  // Layer-3.
  Conv2d* conv3 = add_conv_block(config_.c2, config_.c2, "conv3", rng, &probe);
  scored_.push_back({"conv3", {conv3}, probe, true, act_quants_.back()});
  body_.emplace<MaxPool2d>(2);

  // Layer-4.
  Conv2d* conv4 = add_conv_block(config_.c2, config_.c3, "conv4", rng, &probe);
  scored_.push_back({"conv4", {conv4}, probe, true, act_quants_.back()});
  body_.emplace<MaxPool2d>(2);

  body_.emplace<Flatten>();
  const int spatial = config_.image_size / 8;
  const int flat = config_.c3 * spatial * spatial;

  // Layers 5-7: hidden fully-connected layers.
  const int fc_dims[3] = {config_.f1, config_.f2, config_.f3};
  int in = flat;
  for (int i = 0; i < 3; ++i) {
    const std::string name = "fc" + std::to_string(5 + i);
    Linear* fc = body_.emplace<Linear>(in, fc_dims[i], rng, name);
    body_.emplace<ReLU>();
    Probe* fc_probe = body_.emplace<Probe>(name + ".probe");
    act_quants_.push_back(body_.emplace<ActQuant>(name + ".aq"));
    scored_.push_back({name, {fc}, fc_probe, false, act_quants_.back()});
    in = fc_dims[i];
  }

  // Output layer, never quantized.
  body_.emplace<Linear>(in, config_.num_classes, rng, "fc_out");
}

std::unique_ptr<Model> VggSmall::clone() {
  auto copy = std::make_unique<VggSmall>(config_);
  copy_state(*copy, *this);
  return copy;
}

}  // namespace cq::nn
