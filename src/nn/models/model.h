#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/act_quant.h"
#include "nn/module.h"
#include "nn/probe.h"
#include "quant/bitwidth.h"

namespace cq::nn {

/// One quantization target of a model: the layer(s) whose filters get
/// individual bit-widths plus the probe observing their post-ReLU
/// activations for importance scoring.
///
/// `layers` usually holds one entry; ResNet blocks with a projection
/// shortcut list the main conv and the 1x1 downsample conv together —
/// they produce the same output channels, so they share filter scores
/// and bit assignments (documented in DESIGN.md).
struct ScoredLayerRef {
  std::string name;
  std::vector<quant::QuantizableLayer*> layers;
  Probe* probe = nullptr;
  bool is_conv = true;
  /// The fake-quantizer on this layer's post-ReLU activations, when it
  /// has one (used by the per-layer activation-bit extension; the
  /// paper itself sets all activation quantizers to the same A).
  ActQuant* act_quant = nullptr;
};

/// Base class for the networks of the paper's evaluation. On top of
/// Module it exposes the quantization surface: the scored layers the
/// CQ search assigns bits to (everything except the first and output
/// layers, Section IV) and the activation fake-quantizers.
class Model : public Module {
 public:
  virtual std::vector<ScoredLayerRef> scored_layers() = 0;
  virtual std::vector<ActQuant*> activation_quantizers() = 0;

  /// The ordered module chain of the network. Every model-zoo network
  /// is a single Sequential at the top level (composite blocks appear
  /// as one entry); nn::fold_batchnorm and the serving executor walk it.
  virtual Sequential& body() = 0;

  /// Structural copy with identical weights/buffers; used to freeze
  /// the full-precision teacher before quantization (Section III-D).
  virtual std::unique_ptr<Model> clone() = 0;

  /// Propagates the intra-op execution context to every layer in the
  /// body chain (see Module::set_exec_context).
  void set_exec_context(const util::ExecContext& exec) override;

  /// Sets the same bit-width on every activation quantizer
  /// ("activations were directly set to the desired bit-widths").
  void set_activation_bits(int bits);

  /// Runs calibration forwards to fix activation clip ranges.
  void calibrate_activations(const Tensor& images, int batch_size = 100);

  /// Enables/disables probe recording on all scored layers.
  void set_recording(bool on);

  /// Removes all weight quantization (back to full precision).
  void clear_weight_quantization();

  /// Snapshot of the current per-filter bit-widths of all scored
  /// layers as a BitArrangement (for reporting, Figures 6/7).
  quant::BitArrangement bit_arrangement();
};

/// Copies all parameters and buffers from `src` into `dst`; both must
/// be structurally identical (same module order).
void copy_state(Module& dst, Module& src);

}  // namespace cq::nn
