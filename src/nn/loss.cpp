#include "nn/loss.h"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"

namespace cq::nn {

double SoftmaxCrossEntropy::forward(const Tensor& logits, const std::vector<int>& labels) {
  if (static_cast<std::size_t>(logits.dim(0)) != labels.size()) {
    throw std::invalid_argument("SoftmaxCrossEntropy: batch size mismatch");
  }
  labels_ = labels;
  const Tensor log_probs = tensor::log_softmax_rows(logits);
  probs_ = log_probs;
  double loss = 0.0;
  const int batch = logits.dim(0);
  for (int n = 0; n < batch; ++n) {
    loss -= log_probs.at(n, labels[static_cast<std::size_t>(n)]);
  }
  // Convert cached log-probabilities to probabilities for backward.
  for (std::size_t i = 0; i < probs_.numel(); ++i) probs_[i] = std::exp(probs_[i]);
  return loss / static_cast<double>(batch);
}

Tensor SoftmaxCrossEntropy::backward() const {
  Tensor grad = probs_;
  const int batch = grad.dim(0);
  const float inv_b = 1.0f / static_cast<float>(batch);
  for (int n = 0; n < batch; ++n) {
    grad.at(n, labels_[static_cast<std::size_t>(n)]) -= 1.0f;
  }
  grad *= inv_b;
  return grad;
}

double KnowledgeDistillLoss::forward(const Tensor& student_logits,
                                     const Tensor& teacher_logits,
                                     const std::vector<int>& labels) {
  if (student_logits.shape() != teacher_logits.shape()) {
    throw std::invalid_argument("KnowledgeDistillLoss: logits shape mismatch");
  }
  labels_ = labels;
  const Tensor student_log = tensor::log_softmax_rows(student_logits);
  teacher_probs_ = tensor::softmax_rows(teacher_logits);
  student_probs_ = Tensor(student_log.shape());
  const int batch = student_logits.dim(0);
  const int classes = student_logits.dim(1);

  double ce = 0.0;
  double kl = 0.0;
  for (int n = 0; n < batch; ++n) {
    ce -= student_log.at(n, labels[static_cast<std::size_t>(n)]);
    for (int c = 0; c < classes; ++c) {
      const float pt = teacher_probs_.at(n, c);
      const float ls = student_log.at(n, c);
      student_probs_.at(n, c) = std::exp(ls);
      if (pt > 0.0f) kl += static_cast<double>(pt) * (std::log(pt) - ls);
    }
  }
  const double inv_b = 1.0 / static_cast<double>(batch);
  return alpha_ * ce * inv_b + (1.0 - alpha_) * kl * inv_b;
}

Tensor KnowledgeDistillLoss::backward() const {
  const int batch = student_probs_.dim(0);
  const int classes = student_probs_.dim(1);
  Tensor grad({batch, classes});
  const float inv_b = 1.0f / static_cast<float>(batch);
  const auto a = static_cast<float>(alpha_);
  for (int n = 0; n < batch; ++n) {
    for (int c = 0; c < classes; ++c) {
      const float ps = student_probs_.at(n, c);
      const float pt = teacher_probs_.at(n, c);
      const float onehot = labels_[static_cast<std::size_t>(n)] == c ? 1.0f : 0.0f;
      grad.at(n, c) = (a * (ps - onehot) + (1.0f - a) * (ps - pt)) * inv_b;
    }
  }
  return grad;
}

double accuracy(const Tensor& logits, const std::vector<int>& labels) {
  const int batch = logits.dim(0);
  if (batch == 0) return 0.0;
  int correct = 0;
  for (int n = 0; n < batch; ++n) {
    if (logits.argmax_row(n) == labels[static_cast<std::size_t>(n)]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(batch);
}

}  // namespace cq::nn
