#pragma once

#include "nn/module.h"
#include "quant/bitwidth.h"
#include "quant/uniform.h"
#include "tensor/ops.h"

namespace cq::nn {

/// 2-D convolution (NCHW, square kernel) implemented as im2col + GEMM,
/// with optional per-filter fake quantization of the weights.
///
/// The weight tensor is stored flattened as [out_c, in_c*k*k]; row k is
/// the full receptive field of output filter k, which is exactly the
/// per-filter granularity the CQ bit-width search assigns bits to.
/// Quantization semantics match Linear: per-layer symmetric range,
/// per-filter bits, 0 bits = pruned filter, STE backward.
///
/// Reentrancy: the im2col scratch is per call (no hidden shared
/// buffer), but forward() still refreshes the effective (quantized)
/// weights and caches the input for backward(), so one instance must
/// not run forward() from two threads at once. To share a trained
/// model across threads, clone the chain per thread the way
/// serve::EngineSession keeps one module chain per execution context.
class Conv2d : public Module, public quant::QuantizableLayer {
 public:
  Conv2d(int in_channels, int out_channels, int kernel, int stride, int pad,
         util::Rng& rng, std::string name = "conv");

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  /// Intra-op context for the im2col + GEMM kernels of this layer's
  /// forward/backward (row-block chunking; bit-identical to serial).
  void set_exec_context(const util::ExecContext& exec) override { exec_ = exec; }
  std::string name() const override { return name_; }

  // QuantizableLayer interface.
  int num_filters() const override { return out_channels_; }
  std::size_t weights_per_filter() const override {
    return static_cast<std::size_t>(in_channels_ * kernel_ * kernel_);
  }
  void set_filter_bits(std::vector<int> bits) override;
  void clear_filter_bits() override { filter_bits_.clear(); }
  const std::vector<int>& filter_bits() const override { return filter_bits_; }
  std::span<const float> filter_weights(int k) const override { return weight_.value.row(k); }
  std::span<float> mutable_filter_weights(int k) override { return weight_.value.row(k); }
  float weight_abs_max() const override { return weight_.value.abs_max(); }
  void set_weight_range_override(float hi) override { range_override_ = hi; }
  float weight_range_override() const override { return range_override_; }

  /// Simulates a low-precision accumulator (WrapNet baseline): the
  /// pre-bias output of each filter is wrapped modulo `period` into
  /// [-period/2, period/2), the real-valued image of a signed
  /// accumulator overflowing. 0 disables. Backward treats the wrap as
  /// identity (it is piecewise-identity almost everywhere).
  void set_accumulator_wrap(float period) override { wrap_period_ = period; }
  float accumulator_wrap() const { return wrap_period_; }

  int in_channels() const { return in_channels_; }
  int out_channels() const { return out_channels_; }
  int kernel() const { return kernel_; }
  int stride() const { return stride_; }
  int pad() const { return pad_; }
  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }
  /// Rebuilds the effective (quantized) weights/bias exactly as
  /// forward() would; deploy::compile_plan snapshots them so the
  /// compiled float path multiplies the same values bit-for-bit.
  void build_effective_weight();
  const Tensor& effective_weight() const { return effective_weight_; }
  const Tensor& effective_bias() const { return effective_bias_; }

 private:
  tensor::ConvGeometry geometry(const Tensor& input) const;

  int in_channels_;
  int out_channels_;
  int kernel_;
  int stride_;
  int pad_;
  std::string name_;
  Parameter weight_;  ///< [out_c, in_c*k*k]
  Parameter bias_;    ///< [out_c]
  std::vector<int> filter_bits_;

  Tensor effective_weight_;
  Tensor effective_bias_;
  Tensor cached_input_;
  util::ExecContext exec_;  ///< intra-op context; default serial
  float wrap_period_ = 0.0f;
  float range_override_ = 0.0f;
};

}  // namespace cq::nn
