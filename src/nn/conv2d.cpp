#include "nn/conv2d.h"

#include <cmath>
#include <stdexcept>

namespace cq::nn {

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, int stride, int pad,
               util::Rng& rng, std::string name)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      name_(std::move(name)) {
  const int fan_in = in_channels * kernel * kernel;
  const float bound = std::sqrt(6.0f / static_cast<float>(fan_in));
  weight_ = Parameter(name_ + ".weight",
                      Tensor::rand_uniform({out_channels, fan_in}, rng, -bound, bound));
  bias_ = Parameter(name_ + ".bias", Tensor::zeros({out_channels}));
}

void Conv2d::set_filter_bits(std::vector<int> bits) {
  if (static_cast<int>(bits.size()) != out_channels_) {
    throw std::invalid_argument(name_ + ": filter_bits size mismatch");
  }
  filter_bits_ = std::move(bits);
}

void Conv2d::build_effective_weight() {
  if (filter_bits_.empty()) {
    effective_weight_ = weight_.value;
    effective_bias_ = bias_.value;
    return;
  }
  effective_weight_ = Tensor(weight_.value.shape());
  effective_bias_ = bias_.value;
  const quant::UniformRange range =
      range_override_ > 0.0f ? quant::UniformRange{-range_override_, range_override_}
                             : quant::symmetric_range(weight_.value.span());
  for (int k = 0; k < out_channels_; ++k) {
    quant::quantize_span(weight_.value.row(k), effective_weight_.row(k), range,
                         filter_bits_[static_cast<std::size_t>(k)]);
    if (filter_bits_[static_cast<std::size_t>(k)] <= 0) {
      effective_bias_[static_cast<std::size_t>(k)] = 0.0f;
    }
  }
}

tensor::ConvGeometry Conv2d::geometry(const Tensor& input) const {
  tensor::ConvGeometry g;
  g.in_c = in_channels_;
  g.in_h = input.dim(2);
  g.in_w = input.dim(3);
  g.kernel = kernel_;
  g.stride = stride_;
  g.pad = pad_;
  return g;
}

Tensor Conv2d::forward(const Tensor& input) {
  if (input.rank() != 4 || input.dim(1) != in_channels_) {
    throw std::invalid_argument(name_ + ": bad input shape " +
                                tensor::shape_to_string(input.shape()));
  }
  build_effective_weight();
  cached_input_ = input;
  const auto g = geometry(input);
  const int batch = input.dim(0);
  const int oh = g.out_h();
  const int ow = g.out_w();
  const int spatial = oh * ow;
  const int patch = g.patch_size();
  // Per-call scratch: concurrent forwards on cloned chains never share
  // an unfold buffer (a member buffer made the layer non-reentrant).
  std::vector<float> cols(static_cast<std::size_t>(patch) * spatial);

  Tensor out({batch, out_channels_, oh, ow});
  const std::size_t in_stride = static_cast<std::size_t>(in_channels_) * g.in_h * g.in_w;
  const std::size_t out_stride = static_cast<std::size_t>(out_channels_) * spatial;
  for (int n = 0; n < batch; ++n) {
    tensor::im2col(input.data() + static_cast<std::size_t>(n) * in_stride, g, cols.data(),
                   exec_);
    float* out_n = out.data() + static_cast<std::size_t>(n) * out_stride;
    tensor::gemm(effective_weight_.data(), cols.data(), out_n, out_channels_, patch,
                 spatial, /*accumulate=*/false, exec_);
    if (wrap_period_ > 0.0f) {
      const std::size_t count = static_cast<std::size_t>(out_channels_) * spatial;
      for (std::size_t i = 0; i < count; ++i) {
        out_n[i] -= wrap_period_ * std::round(out_n[i] / wrap_period_);
      }
    }
    for (int c = 0; c < out_channels_; ++c) {
      const float b = effective_bias_[static_cast<std::size_t>(c)];
      if (b == 0.0f) continue;
      float* plane = out_n + static_cast<std::size_t>(c) * spatial;
      for (int s = 0; s < spatial; ++s) plane[s] += b;
    }
  }
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  const auto g = geometry(cached_input_);
  const int batch = cached_input_.dim(0);
  const int spatial = g.out_h() * g.out_w();
  const int patch = g.patch_size();
  std::vector<float> cols(static_cast<std::size_t>(patch) * spatial);
  std::vector<float> dcols(static_cast<std::size_t>(patch) * spatial);

  Tensor grad_input(cached_input_.shape());
  const std::size_t in_stride = static_cast<std::size_t>(in_channels_) * g.in_h * g.in_w;
  const std::size_t out_stride = static_cast<std::size_t>(out_channels_) * spatial;
  for (int n = 0; n < batch; ++n) {
    const float* dy_n = grad_output.data() + static_cast<std::size_t>(n) * out_stride;
    // Recompute the im2col patches of this image (cheaper than caching
    // the whole batch unfolding across the layer).
    tensor::im2col(cached_input_.data() + static_cast<std::size_t>(n) * in_stride, g,
                   cols.data(), exec_);
    // dW += dY_n * cols^T (STE: accumulated on master weights). Row
    // chunks own whole filters of the gradient, so accumulation stays
    // race-free and in fixed order.
    tensor::gemm_a_bt(dy_n, cols.data(), weight_.grad.data(), out_channels_, spatial,
                      patch, /*accumulate=*/true, exec_);
    // db += row sums of dY_n.
    for (int c = 0; c < out_channels_; ++c) {
      const float* plane = dy_n + static_cast<std::size_t>(c) * spatial;
      double acc = 0.0;
      for (int s = 0; s < spatial; ++s) acc += plane[s];
      bias_.grad[static_cast<std::size_t>(c)] += static_cast<float>(acc);
    }
    // dcols = W_eff^T * dY_n ; scatter-add back to the input gradient.
    tensor::gemm_at_b(effective_weight_.data(), dy_n, dcols.data(), out_channels_, patch,
                      spatial, /*accumulate=*/false, exec_);
    tensor::col2im(dcols.data(), g,
                   grad_input.data() + static_cast<std::size_t>(n) * in_stride);
  }
  return grad_input;
}

void Conv2d::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&weight_);
  out.push_back(&bias_);
}

}  // namespace cq::nn
