#pragma once

#include <vector>

#include "nn/module.h"

namespace cq::nn {

/// Confusion matrix and per-class accuracy of a classifier — the
/// class-resolved view that motivates class-based quantization: after
/// aggressive quantization the damage is rarely uniform across
/// classes, and CQ's premise is that protecting multi-class filters
/// protects exactly the shared pathways.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(int num_classes);

  /// Accumulates one (true label, predicted label) observation.
  void add(int label, int prediction);

  /// Accumulates argmax predictions of a logits batch.
  void add_batch(const Tensor& logits, const std::vector<int>& labels);

  int num_classes() const { return num_classes_; }
  /// Count of samples with true class `label` predicted as `prediction`.
  std::size_t count(int label, int prediction) const;
  /// Samples observed for class `label`.
  std::size_t class_total(int label) const;

  /// Overall top-1 accuracy over everything accumulated.
  double accuracy() const;
  /// Recall of one class (0 when the class was never observed).
  double class_accuracy(int label) const;
  /// Recall per class, index = class id.
  std::vector<double> per_class_accuracy() const;
  /// The `k` classes with the lowest recall (ties by class id).
  std::vector<int> worst_classes(int k) const;

 private:
  int num_classes_;
  std::vector<std::size_t> counts_;  ///< row-major [label][prediction]
};

/// Evaluates `model` over the set and returns the confusion matrix
/// (eval mode, batched; the model's train/eval state is restored).
ConfusionMatrix evaluate_confusion(Module& model, const Tensor& images,
                                   const std::vector<int>& labels, int num_classes,
                                   int batch_size = 100);

}  // namespace cq::nn
