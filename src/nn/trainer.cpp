#include "nn/trainer.h"

#include <algorithm>
#include <memory>

#include "util/logging.h"

namespace cq::nn {

Tensor gather_batch(const Tensor& images, const std::vector<std::size_t>& indices) {
  tensor::Shape shape = images.shape();
  const std::size_t sample_size = images.numel() / static_cast<std::size_t>(shape[0]);
  shape[0] = static_cast<int>(indices.size());
  Tensor out(shape);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const float* src = images.data() + indices[i] * sample_size;
    std::copy(src, src + sample_size, out.data() + i * sample_size);
  }
  return out;
}

std::vector<EpochStats> Trainer::fit(Module& model, const Tensor& images,
                                     const std::vector<int>& labels, Module* teacher) {
  const auto count = static_cast<std::size_t>(images.dim(0));
  util::Rng rng(config_.seed);
  std::unique_ptr<Optimizer> optimizer;
  if (config_.optimizer == OptimizerKind::kAdam) {
    optimizer = std::make_unique<Adam>(model.parameters(), config_.lr, config_.adam_beta1,
                                       config_.adam_beta2, config_.adam_eps,
                                       config_.weight_decay);
  } else {
    optimizer = std::make_unique<Sgd>(model.parameters(), config_.lr, config_.momentum,
                                      config_.weight_decay);
  }
  const StepLrSchedule step_schedule(config_.lr, config_.lr_milestones, config_.lr_decay);
  const CosineLrSchedule cosine_schedule(config_.lr, config_.epochs);
  const auto lr_at = [&](int epoch) {
    return config_.lr_schedule == LrScheduleKind::kCosine ? cosine_schedule.lr_at(epoch)
                                                          : step_schedule.lr_at(epoch);
  };
  SoftmaxCrossEntropy ce;
  KnowledgeDistillLoss kd(config_.kd_alpha);
  if (teacher != nullptr) teacher->set_training(false);

  std::vector<EpochStats> history;
  std::vector<std::size_t> order(count);
  for (std::size_t i = 0; i < count; ++i) order[i] = i;

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    model.set_training(true);
    optimizer->set_lr(lr_at(epoch));
    rng.shuffle(order);

    double loss_sum = 0.0;
    std::size_t correct = 0;
    std::size_t seen = 0;
    for (std::size_t start = 0; start < count; start += static_cast<std::size_t>(config_.batch_size)) {
      const std::size_t stop = std::min(count, start + static_cast<std::size_t>(config_.batch_size));
      const std::vector<std::size_t> idx(order.begin() + static_cast<std::ptrdiff_t>(start),
                                         order.begin() + static_cast<std::ptrdiff_t>(stop));
      Tensor batch = gather_batch(images, idx);
      if (config_.augment) batch = config_.augment(batch, rng);
      std::vector<int> batch_labels(idx.size());
      for (std::size_t i = 0; i < idx.size(); ++i) batch_labels[i] = labels[idx[i]];

      optimizer->zero_grad();
      Tensor logits = model.forward(batch);

      double loss = 0.0;
      Tensor grad;
      if (teacher != nullptr) {
        const Tensor teacher_logits = teacher->forward(batch);
        loss = kd.forward(logits, teacher_logits, batch_labels);
        grad = kd.backward();
      } else {
        loss = ce.forward(logits, batch_labels);
        grad = ce.backward();
      }
      model.backward(grad);
      optimizer->step();

      loss_sum += loss * static_cast<double>(idx.size());
      for (std::size_t i = 0; i < idx.size(); ++i) {
        if (logits.argmax_row(static_cast<int>(i)) == batch_labels[i]) ++correct;
      }
      seen += idx.size();
    }

    EpochStats stats;
    stats.epoch = epoch;
    stats.loss = loss_sum / static_cast<double>(seen);
    stats.train_accuracy = static_cast<double>(correct) / static_cast<double>(seen);
    stats.lr = optimizer->lr();
    history.push_back(stats);
    if (config_.verbose) {
      util::log_info() << "epoch " << epoch << " loss " << stats.loss << " acc "
                       << stats.train_accuracy << " lr " << stats.lr;
    }
  }
  return history;
}

double Trainer::evaluate(Module& model, const Tensor& images, const std::vector<int>& labels,
                         int batch_size) {
  const auto count = static_cast<std::size_t>(images.dim(0));
  if (count == 0) return 0.0;
  const bool was_training = model.training();
  model.set_training(false);
  std::size_t correct = 0;
  for (std::size_t start = 0; start < count; start += static_cast<std::size_t>(batch_size)) {
    const std::size_t stop = std::min(count, start + static_cast<std::size_t>(batch_size));
    std::vector<std::size_t> idx;
    idx.reserve(stop - start);
    for (std::size_t i = start; i < stop; ++i) idx.push_back(i);
    Tensor batch = gather_batch(images, idx);
    const Tensor logits = model.forward(batch);
    for (std::size_t i = 0; i < idx.size(); ++i) {
      if (logits.argmax_row(static_cast<int>(i)) == labels[idx[i]]) ++correct;
    }
  }
  model.set_training(was_training);
  return static_cast<double>(correct) / static_cast<double>(count);
}

}  // namespace cq::nn
