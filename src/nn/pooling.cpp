#include "nn/pooling.h"

#include <limits>
#include <stdexcept>

namespace cq::nn {

MaxPool2d::MaxPool2d(int kernel, int stride)
    : kernel_(kernel), stride_(stride < 0 ? kernel : stride) {}

Tensor MaxPool2d::forward(const Tensor& input) {
  if (input.rank() != 4) throw std::invalid_argument("MaxPool2d: rank-4 input required");
  in_shape_ = input.shape();
  const int batch = input.dim(0);
  const int channels = input.dim(1);
  const int ih = input.dim(2);
  const int iw = input.dim(3);
  const int oh = (ih - kernel_) / stride_ + 1;
  const int ow = (iw - kernel_) / stride_ + 1;

  Tensor out({batch, channels, oh, ow});
  argmax_.assign(out.numel(), 0);
  std::size_t oidx = 0;
  for (int n = 0; n < batch; ++n) {
    for (int c = 0; c < channels; ++c) {
      const std::size_t plane_off =
          (static_cast<std::size_t>(n) * channels + c) * ih * iw;
      const float* plane = input.data() + plane_off;
      for (int y = 0; y < oh; ++y) {
        for (int x = 0; x < ow; ++x, ++oidx) {
          float best = -std::numeric_limits<float>::infinity();
          int best_idx = 0;
          for (int ky = 0; ky < kernel_; ++ky) {
            const int iy = y * stride_ + ky;
            for (int kx = 0; kx < kernel_; ++kx) {
              const int ix = x * stride_ + kx;
              const int idx = iy * iw + ix;
              if (plane[idx] > best) {
                best = plane[idx];
                best_idx = idx;
              }
            }
          }
          out[oidx] = best;
          argmax_[oidx] = static_cast<int>(plane_off) + best_idx;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  Tensor grad_input(in_shape_);
  for (std::size_t o = 0; o < grad_output.numel(); ++o) {
    grad_input[static_cast<std::size_t>(argmax_[o])] += grad_output[o];
  }
  return grad_input;
}

Tensor GlobalAvgPool::forward(const Tensor& input) {
  if (input.rank() != 4) throw std::invalid_argument("GlobalAvgPool: rank-4 input required");
  in_shape_ = input.shape();
  const int batch = input.dim(0);
  const int channels = input.dim(1);
  const int spatial = input.dim(2) * input.dim(3);
  Tensor out({batch, channels});
  const float inv = 1.0f / static_cast<float>(spatial);
  for (int n = 0; n < batch; ++n) {
    for (int c = 0; c < channels; ++c) {
      const float* plane = input.data() + (static_cast<std::size_t>(n) * channels + c) * spatial;
      double acc = 0.0;
      for (int s = 0; s < spatial; ++s) acc += plane[s];
      out.at(n, c) = static_cast<float>(acc) * inv;
    }
  }
  return out;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_output) {
  Tensor grad_input(in_shape_);
  const int batch = in_shape_[0];
  const int channels = in_shape_[1];
  const int spatial = in_shape_[2] * in_shape_[3];
  const float inv = 1.0f / static_cast<float>(spatial);
  for (int n = 0; n < batch; ++n) {
    for (int c = 0; c < channels; ++c) {
      const float g = grad_output.at(n, c) * inv;
      float* plane =
          grad_input.data() + (static_cast<std::size_t>(n) * channels + c) * spatial;
      for (int s = 0; s < spatial; ++s) plane[s] = g;
    }
  }
  return grad_input;
}

}  // namespace cq::nn
