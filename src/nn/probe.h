#pragma once

#include "nn/module.h"

namespace cq::nn {

/// Identity module that records the activation tensor it forwards and
/// the gradient tensor that flows back through it.
///
/// Probes are placed after the ReLU of each scored layer; the CQ
/// importance collector reads `activation()` and `gradient()` to form
/// the per-neuron Taylor scores |a * dPhi/da| (paper Eq. 5). Recording
/// is off by default so training pays no memory cost.
class Probe : public Module {
 public:
  explicit Probe(std::string name = "probe") : name_(std::move(name)) {}

  Tensor forward(const Tensor& input) override {
    if (recording_) activation_ = input;
    return input;
  }

  Tensor backward(const Tensor& grad_output) override {
    if (recording_) gradient_ = grad_output;
    return grad_output;
  }

  std::string name() const override { return name_; }

  void set_recording(bool on) {
    recording_ = on;
    if (!on) {
      activation_ = Tensor();
      gradient_ = Tensor();
    }
  }
  bool recording() const { return recording_; }

  /// Activation captured by the last forward ([N, C, H, W] for conv
  /// layers, [N, F] for fully-connected layers).
  const Tensor& activation() const { return activation_; }
  /// Gradient captured by the last backward (same shape).
  const Tensor& gradient() const { return gradient_; }

 private:
  std::string name_;
  bool recording_ = false;
  Tensor activation_;
  Tensor gradient_;
};

}  // namespace cq::nn
