#include "data/synthetic.h"

#include <cmath>
#include <vector>

namespace cq::data {

namespace {

/// One Gaussian blob of a class prototype.
struct Blob {
  float cx, cy;      ///< center in pixels
  float sigma;       ///< spatial spread
  float amp[3];      ///< per-channel amplitude (first `channels` used)
};

/// Renders `blobs` shifted by (dx, dy) into `image` (C,H,W), additive.
void render_blobs(const std::vector<Blob>& blobs, int channels, int size, float dx,
                  float dy, float gain, float* image) {
  for (const Blob& blob : blobs) {
    const float cx = blob.cx + dx;
    const float cy = blob.cy + dy;
    const float inv2s2 = 1.0f / (2.0f * blob.sigma * blob.sigma);
    for (int c = 0; c < channels; ++c) {
      float* plane = image + static_cast<std::size_t>(c) * size * size;
      const float a = blob.amp[c] * gain;
      for (int y = 0; y < size; ++y) {
        const float ddy = (static_cast<float>(y) - cy);
        for (int x = 0; x < size; ++x) {
          const float ddx = (static_cast<float>(x) - cx);
          plane[y * size + x] += a * std::exp(-(ddx * ddx + ddy * ddy) * inv2s2);
        }
      }
    }
  }
}

Dataset generate_samples(const SyntheticVisionConfig& cfg,
                         const std::vector<std::vector<Blob>>& prototypes,
                         const std::vector<Blob>& shared_base, int per_class,
                         util::Rng& rng) {
  const int n = cfg.num_classes * per_class;
  Dataset out;
  out.images = Tensor({n, cfg.channels, cfg.image_size, cfg.image_size});
  out.labels.resize(static_cast<std::size_t>(n));
  const std::size_t sample_size =
      static_cast<std::size_t>(cfg.channels) * cfg.image_size * cfg.image_size;

  std::size_t i = 0;
  for (int cls = 0; cls < cfg.num_classes; ++cls) {
    for (int s = 0; s < per_class; ++s, ++i) {
      float* image = out.images.data() + i * sample_size;
      const float dx = static_cast<float>(rng.uniform(-cfg.jitter, cfg.jitter));
      const float dy = static_cast<float>(rng.uniform(-cfg.jitter, cfg.jitter));
      const float gain =
          1.0f + static_cast<float>(rng.uniform(-cfg.brightness, cfg.brightness));
      // Class-independent base: dominates the image, jittered per
      // sample, identical across classes — so class evidence is a
      // small additive component the network must dig out.
      render_blobs(shared_base, cfg.channels, cfg.image_size, dx, dy, gain, image);
      render_blobs(prototypes[static_cast<std::size_t>(cls)], cfg.channels,
                   cfg.image_size, dx, dy, gain * cfg.class_separation, image);
      for (std::size_t p = 0; p < sample_size; ++p) {
        image[p] += static_cast<float>(rng.normal(0.0, cfg.noise_stddev));
      }
      out.labels[i] = cls;
    }
  }
  return out;
}

}  // namespace

DataSplit make_synthetic_vision(const SyntheticVisionConfig& cfg) {
  util::Rng rng(cfg.seed);

  // Class prototypes: blob geometry and colors are class-specific.
  std::vector<std::vector<Blob>> prototypes(static_cast<std::size_t>(cfg.num_classes));
  const auto size_f = static_cast<float>(cfg.image_size);
  for (auto& blobs : prototypes) {
    blobs.resize(static_cast<std::size_t>(cfg.blobs_per_class));
    for (Blob& blob : blobs) {
      blob.cx = static_cast<float>(rng.uniform(0.15, 0.85)) * size_f;
      blob.cy = static_cast<float>(rng.uniform(0.15, 0.85)) * size_f;
      blob.sigma = static_cast<float>(rng.uniform(0.06, 0.22)) * size_f;
      for (float& a : blob.amp) a = static_cast<float>(rng.uniform(-1.2, 1.2));
    }
  }
  std::vector<Blob> shared_base(static_cast<std::size_t>(cfg.shared_blobs));
  for (Blob& blob : shared_base) {
    blob.cx = static_cast<float>(rng.uniform(0.1, 0.9)) * size_f;
    blob.cy = static_cast<float>(rng.uniform(0.1, 0.9)) * size_f;
    blob.sigma = static_cast<float>(rng.uniform(0.08, 0.35)) * size_f;
    for (float& a : blob.amp) a = static_cast<float>(rng.uniform(-1.2, 1.2));
  }

  util::Rng train_rng = rng.split();
  util::Rng val_rng = rng.split();
  util::Rng test_rng = rng.split();

  DataSplit split;
  split.train =
      generate_samples(cfg, prototypes, shared_base, cfg.train_per_class, train_rng);
  split.val = generate_samples(cfg, prototypes, shared_base, cfg.val_per_class, val_rng);
  split.test =
      generate_samples(cfg, prototypes, shared_base, cfg.test_per_class, test_rng);
  return split;
}

SyntheticVisionConfig synthetic_cifar10_like() {
  SyntheticVisionConfig cfg;
  cfg.num_classes = 10;
  cfg.train_per_class = 200;
  cfg.val_per_class = 40;
  cfg.test_per_class = 40;
  // Difficulty calibrated so bench-scale CNNs land around 90% FP test
  // accuracy — leaving the headroom the quantization comparisons need.
  cfg.class_separation = 0.16f;
  cfg.noise_stddev = 0.3f;
  cfg.seed = 7;
  return cfg;
}

SyntheticVisionConfig synthetic_cifar100_like() {
  SyntheticVisionConfig cfg;
  cfg.num_classes = 100;
  cfg.train_per_class = 30;
  cfg.val_per_class = 8;
  cfg.test_per_class = 8;
  // 100-way discrimination is much harder; larger separation keeps the
  // task learnable at the reduced per-class sample counts (bench-scale
  // networks land around 50-60% top-1, mirroring the paper's CIFAR-100
  // vs CIFAR-10 gap).
  cfg.class_separation = 0.8f;
  cfg.noise_stddev = 0.25f;
  cfg.seed = 11;
  return cfg;
}

}  // namespace cq::data
