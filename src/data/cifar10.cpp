#include "data/cifar10.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace cq::data {

namespace {

constexpr int kImageBytes = 3 * 32 * 32;
constexpr int kRecordBytes = 1 + kImageBytes;
constexpr float kMean[3] = {0.4914f, 0.4822f, 0.4465f};
constexpr float kStd[3] = {0.2470f, 0.2435f, 0.2616f};

}  // namespace

bool is_cifar10_batch(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) return false;
  return size % kRecordBytes == 0 && size > 0;
}

Dataset load_cifar10_batch(const std::string& path, int max_records) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_cifar10_batch: cannot open " + path);
  in.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  if (file_size % kRecordBytes != 0) {
    throw std::runtime_error("load_cifar10_batch: " + path + " is not a CIFAR-10 batch");
  }
  auto records = static_cast<int>(file_size / kRecordBytes);
  if (max_records >= 0 && max_records < records) records = max_records;

  Dataset out;
  out.images = Tensor({records, 3, 32, 32});
  out.labels.resize(static_cast<std::size_t>(records));
  std::vector<unsigned char> buffer(kRecordBytes);
  for (int r = 0; r < records; ++r) {
    in.read(reinterpret_cast<char*>(buffer.data()), kRecordBytes);
    if (!in) throw std::runtime_error("load_cifar10_batch: truncated record in " + path);
    out.labels[static_cast<std::size_t>(r)] = buffer[0];
    float* image = out.images.data() + static_cast<std::size_t>(r) * kImageBytes;
    for (int c = 0; c < 3; ++c) {
      for (int p = 0; p < 32 * 32; ++p) {
        const float raw = static_cast<float>(buffer[1 + c * 32 * 32 + p]) / 255.0f;
        image[c * 32 * 32 + p] = (raw - kMean[c]) / kStd[c];
      }
    }
  }
  return out;
}

}  // namespace cq::data
