#include "data/dataset.h"

#include <algorithm>

namespace cq::data {

int Dataset::num_classes() const {
  int m = 0;
  for (const int l : labels) m = std::max(m, l + 1);
  return m;
}

std::vector<std::size_t> Dataset::indices_of_class(int cls) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == cls) out.push_back(i);
  }
  return out;
}

Dataset Dataset::subset(const std::vector<std::size_t>& indices) const {
  tensor::Shape shape = images.shape();
  const std::size_t sample_size =
      images.numel() / static_cast<std::size_t>(shape[0] == 0 ? 1 : shape[0]);
  shape[0] = static_cast<int>(indices.size());
  Dataset out;
  out.images = Tensor(shape);
  out.labels.resize(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const float* src = images.data() + indices[i] * sample_size;
    std::copy(src, src + sample_size, out.images.data() + i * sample_size);
    out.labels[i] = labels[indices[i]];
  }
  return out;
}

Dataset Dataset::take(std::size_t n) const {
  n = std::min(n, size());
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  return subset(idx);
}

Dataset Dataset::stratified_take(std::size_t n) const {
  n = std::min(n, size());
  const int classes = num_classes();
  std::vector<std::vector<std::size_t>> per_class(static_cast<std::size_t>(classes));
  for (std::size_t i = 0; i < labels.size(); ++i) {
    per_class[static_cast<std::size_t>(labels[i])].push_back(i);
  }
  std::vector<std::size_t> idx;
  idx.reserve(n);
  for (std::size_t round = 0; idx.size() < n; ++round) {
    bool any = false;
    for (const auto& cls : per_class) {
      if (round < cls.size()) {
        idx.push_back(cls[round]);
        any = true;
        if (idx.size() == n) break;
      }
    }
    if (!any) break;
  }
  return subset(idx);
}

}  // namespace cq::data
