#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace cq::data {

using tensor::Tensor;

/// A labelled sample set: `images` has the sample axis first
/// ([N, C, H, W] for vision data, [N, F] for flat features) and
/// `labels[i]` is the class of sample i.
struct Dataset {
  Tensor images;
  std::vector<int> labels;

  std::size_t size() const { return labels.size(); }
  int num_classes() const;

  /// Indices of all samples with label `cls`.
  std::vector<std::size_t> indices_of_class(int cls) const;

  /// New dataset containing the samples at `indices` (copied).
  Dataset subset(const std::vector<std::size_t>& indices) const;

  /// First `n` samples (or all if fewer).
  Dataset take(std::size_t n) const;

  /// Up to `n` samples drawn round-robin across classes, so the subset
  /// stays class-balanced even when the dataset is stored class-major.
  Dataset stratified_take(std::size_t n) const;
};

/// Train/validation/test split of one generated corpus.
struct DataSplit {
  Dataset train;
  Dataset val;
  Dataset test;
};

}  // namespace cq::data
