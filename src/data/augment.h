#pragma once

#include <functional>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace cq::data {

/// Training-time image augmentation parameters. Defaults are the
/// standard CIFAR recipe (random horizontal flip + 2-pixel-pad random
/// crop); all transforms are label-preserving.
struct AugmentConfig {
  bool hflip = true;
  /// Zero-pad by `pad` pixels on each side, then crop back at a random
  /// offset. 0 disables the crop.
  int pad = 2;
  /// Side length of a randomly placed zeroed square (cutout). 0
  /// disables.
  int cutout = 0;
  /// Stddev of additive per-pixel Gaussian noise. 0 disables.
  float noise_stddev = 0.0f;
};

/// Applies the configured augmentations independently per image of an
/// NCHW batch. Stateless apart from the caller-provided RNG, so the
/// same seed reproduces the same augmented stream.
class Augmenter {
 public:
  explicit Augmenter(AugmentConfig config = {}) : config_(config) {}

  /// Augmented copy of `batch` ([N, C, H, W]).
  tensor::Tensor apply(const tensor::Tensor& batch, util::Rng& rng) const;

  /// Adapter matching nn::TrainConfig::augment.
  std::function<tensor::Tensor(const tensor::Tensor&, util::Rng&)> as_fn() const {
    return [config = config_](const tensor::Tensor& batch, util::Rng& rng) {
      return Augmenter(config).apply(batch, rng);
    };
  }

  const AugmentConfig& config() const { return config_; }

 private:
  AugmentConfig config_;
};

}  // namespace cq::data
