#pragma once

#include "data/dataset.h"
#include "util/rng.h"

namespace cq::data {

/// Parameters of the procedurally generated vision corpus that stands
/// in for CIFAR-10/100 in this reproduction (see DESIGN.md §2).
///
/// Each class owns a prototype image built from a class-specific set
/// of smooth Gaussian blobs; a sample is the prototype under a random
/// sub-pixel translation, brightness scaling and additive pixel noise,
/// blended with a class-independent background texture. The corpus is
/// learnable to high accuracy by the small CNNs of the model zoo while
/// still requiring all layers to contribute — which is what the CQ
/// importance scores need to show class structure.
struct SyntheticVisionConfig {
  int num_classes = 10;
  int channels = 3;
  int image_size = 16;
  int train_per_class = 200;
  int val_per_class = 40;
  int test_per_class = 40;
  int blobs_per_class = 4;    ///< Gaussian blobs per class prototype
  int shared_blobs = 6;       ///< blobs of the class-independent base image
  /// Amplitude of the class-specific component relative to the shared
  /// base — the difficulty knob. Small values make classes overlap
  /// (harder); large values separate them.
  float class_separation = 0.55f;
  float noise_stddev = 0.25f; ///< additive per-pixel noise
  float jitter = 2.0f;        ///< max |translation| in pixels
  float brightness = 0.2f;    ///< max relative brightness change
  std::uint64_t seed = 7;
};

/// Generates the train/val/test split deterministically from the seed.
DataSplit make_synthetic_vision(const SyntheticVisionConfig& config);

/// Convenience presets used across benches and examples.
SyntheticVisionConfig synthetic_cifar10_like();
SyntheticVisionConfig synthetic_cifar100_like();

}  // namespace cq::data
