#pragma once

#include <string>

#include "data/dataset.h"

namespace cq::data {

/// Loader for the CIFAR-10 binary format (data_batch_*.bin /
/// test_batch.bin: 10000 records of [1 label byte][3072 pixel bytes],
/// pixels channel-major R,G,B). Pixels are scaled to [0, 1] and
/// per-channel mean/std normalized with the standard CIFAR statistics.
///
/// The reproduction ships no dataset (see DESIGN.md §2); this loader
/// exists so the experiments can be re-run on real CIFAR when the
/// binaries are placed in a directory and passed via --cifar_dir.
Dataset load_cifar10_batch(const std::string& path, int max_records = -1);

/// True when `path` looks like a CIFAR-10 batch file (size check).
bool is_cifar10_batch(const std::string& path);

}  // namespace cq::data
