#include "data/augment.h"

#include <algorithm>
#include <stdexcept>

namespace cq::data {

namespace {

using tensor::Tensor;

/// In-place horizontal flip of one [C, H, W] image.
void flip_image(float* img, int c, int h, int w) {
  for (int ch = 0; ch < c; ++ch) {
    for (int y = 0; y < h; ++y) {
      float* row = img + (static_cast<std::size_t>(ch) * h + y) * w;
      std::reverse(row, row + w);
    }
  }
}

/// Shifted copy of one image: reads from (y - dy, x - dx), zero where
/// the source falls outside — equivalent to pad-then-crop at offset
/// (pad + dy, pad + dx).
void shift_image(const float* src, float* dst, int c, int h, int w, int dy, int dx) {
  for (int ch = 0; ch < c; ++ch) {
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        const int sy = y - dy;
        const int sx = x - dx;
        const bool inside = sy >= 0 && sy < h && sx >= 0 && sx < w;
        dst[(static_cast<std::size_t>(ch) * h + y) * w + x] =
            inside ? src[(static_cast<std::size_t>(ch) * h + sy) * w + sx] : 0.0f;
      }
    }
  }
}

void cutout_image(float* img, int c, int h, int w, int cy, int cx, int side) {
  const int y0 = std::max(0, cy - side / 2);
  const int y1 = std::min(h, cy - side / 2 + side);
  const int x0 = std::max(0, cx - side / 2);
  const int x1 = std::min(w, cx - side / 2 + side);
  for (int ch = 0; ch < c; ++ch) {
    for (int y = y0; y < y1; ++y) {
      for (int x = x0; x < x1; ++x) {
        img[(static_cast<std::size_t>(ch) * h + y) * w + x] = 0.0f;
      }
    }
  }
}

}  // namespace

Tensor Augmenter::apply(const Tensor& batch, util::Rng& rng) const {
  if (batch.rank() != 4) {
    throw std::invalid_argument("Augmenter::apply: expected an NCHW batch");
  }
  const int n = batch.dim(0);
  const int c = batch.dim(1);
  const int h = batch.dim(2);
  const int w = batch.dim(3);
  const std::size_t image_size = static_cast<std::size_t>(c) * h * w;

  Tensor out = batch;
  std::vector<float> scratch(image_size);
  for (int i = 0; i < n; ++i) {
    float* img = out.data() + static_cast<std::size_t>(i) * image_size;

    if (config_.pad > 0) {
      const int dy = static_cast<int>(rng.uniform_int(-config_.pad, config_.pad));
      const int dx = static_cast<int>(rng.uniform_int(-config_.pad, config_.pad));
      if (dy != 0 || dx != 0) {
        std::copy(img, img + image_size, scratch.data());
        shift_image(scratch.data(), img, c, h, w, dy, dx);
      }
    }
    if (config_.hflip && rng.uniform() < 0.5) {
      flip_image(img, c, h, w);
    }
    if (config_.cutout > 0) {
      const int cy = static_cast<int>(rng.uniform_int(0, h - 1));
      const int cx = static_cast<int>(rng.uniform_int(0, w - 1));
      cutout_image(img, c, h, w, cy, cx, config_.cutout);
    }
    if (config_.noise_stddev > 0.0f) {
      for (std::size_t j = 0; j < image_size; ++j) {
        img[j] += static_cast<float>(rng.normal(0.0, config_.noise_stddev));
      }
    }
  }
  return out;
}

}  // namespace cq::data
