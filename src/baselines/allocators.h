#pragma once

#include "core/importance.h"
#include "core/search.h"

namespace cq::baselines {

/// Ablation: per-filter scores from weight magnitude (mean |w| of the
/// filter, normalized per layer to [0, 1]) instead of the class-based
/// gamma/phi scores. Running the same ThresholdSearch over these
/// scores isolates the contribution of the *score definition* to CQ's
/// results (DESIGN.md ablation A1).
std::vector<core::LayerScores> magnitude_scores(nn::Model& model);

/// Ablation: random per-filter scores (uniform [0, 1]) — the
/// no-information lower bound for score-driven allocation.
std::vector<core::LayerScores> random_scores(nn::Model& model, std::uint64_t seed);

}  // namespace cq::baselines
