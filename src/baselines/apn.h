#pragma once

#include "core/refine.h"
#include "data/dataset.h"
#include "nn/models/model.h"

namespace cq::baselines {

/// Shared report format of the baseline quantizers.
struct BaselineReport {
  double fp_accuracy = 0.0;
  double quant_accuracy_pre_refine = 0.0;
  double quant_accuracy = 0.0;
  double achieved_avg_bits = 0.0;
};

/// Any-Precision-Network-style baseline (paper ref. [12], used in the
/// Figure-4 comparison): *model-wise uniform* quantization — every
/// quantizable filter gets the same bit-width and the activations the
/// same A — refined with knowledge distillation from the FP model.
/// This is exactly the per-bit-width specialisation of APN the paper
/// compares against ("neural networks of APN were set to individual
/// bit-width").
struct ApnConfig {
  int weight_bits = 2;
  int activation_bits = 2;
  core::RefineConfig refine;
};

class ApnQuantizer {
 public:
  explicit ApnQuantizer(ApnConfig config = {}) : config_(config) {}

  /// Quantizes `model` (pre-trained, full precision) in place and
  /// refines it; returns the accuracy report.
  BaselineReport run(nn::Model& model, const data::DataSplit& data) const;

  const ApnConfig& config() const { return config_; }

 private:
  ApnConfig config_;
};

/// Sets `bits` uniformly on every scored layer of the model and
/// returns the resulting arrangement (also used by the layer-uniform
/// allocation ablation).
quant::BitArrangement apply_uniform_bits(nn::Model& model, int bits);

}  // namespace cq::baselines
