#pragma once

#include "baselines/apn.h"

namespace cq::baselines {

/// WrapNet-style baseline (paper ref. [11], Figure-5 comparison):
/// model-wise uniform W/A quantization executed on *low-precision
/// accumulators*. The defining degradation of WrapNet relative to CQ
/// at equal average bit-width is (a) the uniform — not filter-wise —
/// bit allocation and (b) partial sums wrapping in a narrow
/// accumulator.
///
/// The wrap is simulated in the real domain: a signed `acc_bits`
/// accumulator holds multiples of lsb = w_step * a_step, so its
/// overflow wraps the pre-bias layer output modulo
/// 2^acc_bits * lsb. w_step is the layer's own quantization step;
/// a_step is derived from the calibrated activation clip range
/// (DESIGN.md documents this substitution for WrapNet's integer
/// pipeline). Refinement trains through the wrap with STE, standing
/// in for WrapNet's cyclic-activation overflow handling.
struct WnConfig {
  int weight_bits = 1;
  int activation_bits = 3;
  int accumulator_bits = 14;
  core::RefineConfig refine;
};

class WnQuantizer {
 public:
  explicit WnQuantizer(WnConfig config = {}) : config_(config) {}

  BaselineReport run(nn::Model& model, const data::DataSplit& data) const;

  const WnConfig& config() const { return config_; }

 private:
  WnConfig config_;
};

}  // namespace cq::baselines
