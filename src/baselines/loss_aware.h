#pragma once

#include "data/dataset.h"
#include "nn/models/model.h"
#include "quant/bitwidth.h"

namespace cq::baselines {

/// Parameters of the loss-aware iterative allocator.
struct LossAwareConfig {
  int max_bits = 4;
  double desired_avg_bits = 2.0;
  /// Validation samples per loss evaluation.
  int eval_samples = 200;
  /// Fraction of a layer's filters demoted together per move (the
  /// filters with the smallest quantization-error increase). Chunked
  /// moves keep the number of loss evaluations tractable; 1-filter
  /// moves would be the textbook greedy.
  double chunk_fraction = 0.1;
  bool verbose = false;
};

/// Result of the allocation run.
struct LossAwareResult {
  double achieved_avg_bits = 0.0;
  double final_loss = 0.0;
  /// Validation-loss evaluations performed — the efficiency metric the
  /// paper contrasts CQ's one-time back propagation against.
  int evaluations = 0;
  quant::BitArrangement arrangement;
};

/// Loss-based iterative bit allocation in the spirit of the paper's
/// reference [8] (distribution-aware multi-bit quantization): no
/// importance scores — instead, filters are demoted one bit at a time,
/// layer by layer, always taking the move that increases validation
/// loss the least, until the average bit-width reaches the budget.
///
/// Every move costs one forward-pass loss evaluation per candidate
/// layer, so the search is much more expensive than CQ's one-time
/// backprop + threshold sweep — which is exactly the comparison the
/// ablation bench reports (accuracy *and* evaluation count).
///
/// The model is left fake-quantized with the found arrangement.
class LossAwareAllocator {
 public:
  explicit LossAwareAllocator(LossAwareConfig config = {}) : config_(config) {}

  LossAwareResult run(nn::Model& model, const data::Dataset& val) const;

  const LossAwareConfig& config() const { return config_; }

 private:
  LossAwareConfig config_;
};

}  // namespace cq::baselines
