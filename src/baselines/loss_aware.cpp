#include "baselines/loss_aware.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "nn/loss.h"
#include "quant/uniform.h"
#include "util/logging.h"

namespace cq::baselines {

namespace {

struct Candidate {
  std::string name;
  quant::QuantizableLayer* layer = nullptr;
};

/// Increase in the layer's weight quantization MSE when filter `k`
/// drops from `bits` to `bits - 1` — the cheap in-layer proxy that
/// ranks which filters to demote together.
double demotion_error_increase(const quant::QuantizableLayer& layer, int k, int bits,
                               quant::UniformRange range) {
  const std::span<const float> w = layer.filter_weights(k);
  double before = 0.0;
  double after = 0.0;
  for (const float x : w) {
    const float qb = quant::quantize_one(x, range, bits);
    const float qa = quant::quantize_one(x, range, bits - 1);
    before += static_cast<double>(qb - x) * (qb - x);
    after += static_cast<double>(qa - x) * (qa - x);
  }
  return after - before;
}

}  // namespace

LossAwareResult LossAwareAllocator::run(nn::Model& model, const data::Dataset& val) const {
  if (config_.max_bits < 1) {
    throw std::invalid_argument("LossAwareAllocator: max_bits must be >= 1");
  }
  std::vector<Candidate> candidates;
  for (const nn::ScoredLayerRef& ref : model.scored_layers()) {
    int idx = 0;
    for (quant::QuantizableLayer* layer : ref.layers) {
      const std::string name =
          ref.layers.size() > 1 ? ref.name + "#" + std::to_string(idx) : ref.name;
      candidates.push_back({name, layer});
      ++idx;
    }
  }
  if (candidates.empty()) {
    throw std::invalid_argument("LossAwareAllocator: model has no quantizable layers");
  }

  // Everything starts at the highest precision (as in the CQ search).
  for (const Candidate& c : candidates) {
    c.layer->set_filter_bits(
        std::vector<int>(static_cast<std::size_t>(c.layer->num_filters()), config_.max_bits));
  }

  const data::Dataset eval_set =
      val.stratified_take(static_cast<std::size_t>(config_.eval_samples));
  LossAwareResult result;

  const bool was_training = model.training();
  model.set_training(false);
  nn::SoftmaxCrossEntropy ce;
  const auto eval_loss = [&]() {
    ++result.evaluations;
    const tensor::Tensor logits = model.forward(eval_set.images);
    return ce.forward(logits, eval_set.labels);
  };

  const auto avg_bits = [&]() { return model.bit_arrangement().average_bits(); };

  // Greedy demotion rounds: per round, try one chunked demotion in
  // every layer, keep the cheapest in validation loss.
  const std::size_t max_moves = 100000;
  std::size_t moves = 0;
  while (avg_bits() > config_.desired_avg_bits && moves++ < max_moves) {
    double best_loss = 0.0;
    std::size_t best_candidate = candidates.size();
    std::vector<int> best_bits;

    for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
      quant::QuantizableLayer& layer = *candidates[ci].layer;
      const std::vector<int> old_bits = layer.filter_bits();

      // Rank demotable filters by quantization-error increase.
      const quant::UniformRange range{-layer.weight_abs_max(), layer.weight_abs_max()};
      std::vector<std::pair<double, int>> ranked;
      for (int k = 0; k < layer.num_filters(); ++k) {
        const int b = old_bits[static_cast<std::size_t>(k)];
        if (b <= 0) continue;
        ranked.emplace_back(demotion_error_increase(layer, k, b, range), k);
      }
      if (ranked.empty()) continue;  // layer fully pruned already
      std::sort(ranked.begin(), ranked.end());
      const std::size_t chunk = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::llround(
                 config_.chunk_fraction * static_cast<double>(layer.num_filters()))));

      std::vector<int> trial_bits = old_bits;
      for (std::size_t j = 0; j < std::min(chunk, ranked.size()); ++j) {
        --trial_bits[static_cast<std::size_t>(ranked[j].second)];
      }
      layer.set_filter_bits(trial_bits);
      const double loss = eval_loss();
      layer.set_filter_bits(old_bits);

      if (best_candidate == candidates.size() || loss < best_loss) {
        best_loss = loss;
        best_candidate = ci;
        best_bits = std::move(trial_bits);
      }
    }
    if (best_candidate == candidates.size()) break;  // nothing left to demote
    candidates[best_candidate].layer->set_filter_bits(std::move(best_bits));
    if (config_.verbose) {
      util::log_info() << "loss-aware: demoted " << candidates[best_candidate].name
                       << ", loss " << best_loss << ", avg bits " << avg_bits();
    }
  }

  result.final_loss = eval_loss();
  result.achieved_avg_bits = avg_bits();
  result.arrangement = model.bit_arrangement();
  model.set_training(was_training);
  return result;
}

}  // namespace cq::baselines
