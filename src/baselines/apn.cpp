#include "baselines/apn.h"

#include "nn/trainer.h"

namespace cq::baselines {

quant::BitArrangement apply_uniform_bits(nn::Model& model, int bits) {
  quant::BitArrangement arrangement;
  for (const auto& scored : model.scored_layers()) {
    for (quant::QuantizableLayer* layer : scored.layers) {
      std::vector<int> filter_bits(static_cast<std::size_t>(layer->num_filters()), bits);
      layer->set_filter_bits(filter_bits);
      quant::LayerBits lb;
      lb.layer_name = scored.name;
      lb.filter_bits = std::move(filter_bits);
      lb.weights_per_filter = layer->weights_per_filter();
      arrangement.add_layer(std::move(lb));
    }
  }
  return arrangement;
}

BaselineReport ApnQuantizer::run(nn::Model& model, const data::DataSplit& data) const {
  BaselineReport report;
  report.fp_accuracy = nn::Trainer::evaluate(model, data.test.images, data.test.labels);

  std::unique_ptr<nn::Model> teacher = model.clone();
  teacher->set_training(false);

  const quant::BitArrangement arrangement = apply_uniform_bits(model, config_.weight_bits);
  report.achieved_avg_bits = arrangement.average_bits();
  model.calibrate_activations(data.train.images);
  model.set_activation_bits(config_.activation_bits);
  report.quant_accuracy_pre_refine =
      nn::Trainer::evaluate(model, data.test.images, data.test.labels);

  core::Refiner refiner(config_.refine);
  const core::RefineResult refined = refiner.run(model, *teacher, data.train, data.test);
  report.quant_accuracy = refined.accuracy_after;
  return report;
}

}  // namespace cq::baselines
