#include "baselines/allocators.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace cq::baselines {

namespace {

core::LayerScores scores_skeleton(const nn::ScoredLayerRef& scored) {
  core::LayerScores s;
  s.name = scored.name;
  s.is_conv = scored.is_conv;
  s.channels = scored.layers.front()->num_filters();
  s.spatial = 1;
  return s;
}

}  // namespace

std::vector<core::LayerScores> magnitude_scores(nn::Model& model) {
  std::vector<core::LayerScores> all;
  for (const auto& scored : model.scored_layers()) {
    core::LayerScores s = scores_skeleton(scored);
    const quant::QuantizableLayer* layer = scored.layers.front();
    s.filter_phi.resize(static_cast<std::size_t>(s.channels));
    float layer_max = 0.0f;
    for (int k = 0; k < s.channels; ++k) {
      const auto w = layer->filter_weights(k);
      double acc = 0.0;
      for (const float v : w) acc += std::fabs(v);
      const float mean_abs = w.empty() ? 0.0f : static_cast<float>(acc / static_cast<double>(w.size()));
      s.filter_phi[static_cast<std::size_t>(k)] = mean_abs;
      layer_max = std::max(layer_max, mean_abs);
    }
    if (layer_max > 0.0f) {
      for (float& v : s.filter_phi) v /= layer_max;
    }
    s.neuron_gamma = s.filter_phi;
    all.push_back(std::move(s));
  }
  return all;
}

std::vector<core::LayerScores> random_scores(nn::Model& model, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<core::LayerScores> all;
  for (const auto& scored : model.scored_layers()) {
    core::LayerScores s = scores_skeleton(scored);
    s.filter_phi.resize(static_cast<std::size_t>(s.channels));
    for (float& v : s.filter_phi) v = static_cast<float>(rng.uniform());
    s.neuron_gamma = s.filter_phi;
    all.push_back(std::move(s));
  }
  return all;
}

}  // namespace cq::baselines
