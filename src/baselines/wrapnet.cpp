#include "baselines/wrapnet.h"

#include <algorithm>
#include <cmath>

#include "nn/trainer.h"
#include "quant/uniform.h"

namespace cq::baselines {

BaselineReport WnQuantizer::run(nn::Model& model, const data::DataSplit& data) const {
  BaselineReport report;
  report.fp_accuracy = nn::Trainer::evaluate(model, data.test.images, data.test.labels);

  std::unique_ptr<nn::Model> teacher = model.clone();
  teacher->set_training(false);

  const quant::BitArrangement arrangement = apply_uniform_bits(model, config_.weight_bits);
  report.achieved_avg_bits = arrangement.average_bits();
  model.calibrate_activations(data.train.images);
  model.set_activation_bits(config_.activation_bits);

  // Activation quantization step from the calibrated clip ranges; the
  // global maximum is a conservative stand-in for per-layer wiring.
  float act_max = 0.0f;
  for (nn::ActQuant* aq : model.activation_quantizers()) {
    act_max = std::max(act_max, aq->max_activation());
  }
  const float a_step =
      act_max / static_cast<float>(quant::levels_for_bits(config_.activation_bits) - 1);

  for (const auto& scored : model.scored_layers()) {
    for (quant::QuantizableLayer* layer : scored.layers) {
      const float w_max = layer->weight_abs_max();
      const float w_step =
          2.0f * w_max /
          static_cast<float>(quant::levels_for_bits(config_.weight_bits) - 1);
      const float lsb = w_step * a_step;
      const float period = std::ldexp(lsb, config_.accumulator_bits);
      layer->set_accumulator_wrap(period);
    }
  }

  report.quant_accuracy_pre_refine =
      nn::Trainer::evaluate(model, data.test.images, data.test.labels);

  core::Refiner refiner(config_.refine);
  const core::RefineResult refined = refiner.run(model, *teacher, data.train, data.test);
  report.quant_accuracy = refined.accuracy_after;
  return report;
}

}  // namespace cq::baselines
