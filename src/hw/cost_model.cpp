#include "hw/cost_model.h"

#include <stdexcept>

namespace cq::hw {

double EnergyModel::mac_pj(int weight_bits, int act_bits) const {
  if (weight_bits <= 0) return 0.0;
  const double mult = mult_pj_per_bit2 * static_cast<double>(weight_bits) *
                      static_cast<double>(act_bits);
  const double add = add_pj_per_bit * static_cast<double>(accumulator_bits);
  return mult + add;
}

std::int64_t LayerWorkload::active_macs() const {
  std::int64_t macs = 0;
  for (const int b : filter_bits) {
    if (b > 0) macs += macs_per_filter();
  }
  return macs;
}

std::int64_t LayerWorkload::weight_bits_total() const {
  std::int64_t bits = 0;
  for (const int b : filter_bits) {
    bits += static_cast<std::int64_t>(b) * weights_per_filter;
  }
  return bits;
}

std::int64_t ModelCost::total_macs() const {
  std::int64_t v = 0;
  for (const LayerCost& l : layers) v += l.total_macs;
  return v;
}

std::int64_t ModelCost::active_macs() const {
  std::int64_t v = 0;
  for (const LayerCost& l : layers) v += l.active_macs;
  return v;
}

double ModelCost::compute_pj() const {
  double v = 0.0;
  for (const LayerCost& l : layers) v += l.compute_pj;
  return v;
}

double ModelCost::memory_pj() const {
  double v = 0.0;
  for (const LayerCost& l : layers) v += l.weight_sram_pj + l.act_sram_pj + l.dram_pj;
  return v;
}

double ModelCost::total_pj() const {
  double v = 0.0;
  for (const LayerCost& l : layers) v += l.total_pj();
  return v;
}

std::vector<LayerWorkload> trace_workloads(nn::Model& model, const tensor::Tensor& sample,
                                           int act_bits, int unquantized_bits) {
  if (sample.rank() < 1 || sample.dim(0) != 1) {
    throw std::invalid_argument("trace_workloads: sample must be a batch of one");
  }
  const bool was_training = model.training();
  model.set_training(false);
  model.set_recording(true);
  (void)model.forward(sample);

  std::vector<LayerWorkload> workloads;
  for (const nn::ScoredLayerRef& ref : model.scored_layers()) {
    const tensor::Tensor& act = ref.probe->activation();
    if (act.empty()) {
      throw std::logic_error("trace_workloads: probe '" + ref.name +
                             "' recorded no activation");
    }
    // Conv activations are [1, C, H, W]; FC activations are [1, F].
    const std::int64_t positions =
        act.rank() == 4 ? static_cast<std::int64_t>(act.dim(2)) * act.dim(3) : 1;
    int idx = 0;
    for (quant::QuantizableLayer* layer : ref.layers) {
      LayerWorkload w;
      w.name = ref.layers.size() > 1 ? ref.name + "#" + std::to_string(idx) : ref.name;
      w.is_conv = ref.is_conv;
      w.output_positions = positions;
      w.weights_per_filter = static_cast<std::int64_t>(layer->weights_per_filter());
      w.act_bits = act_bits;
      if (layer->filter_bits().empty()) {
        w.filter_bits.assign(static_cast<std::size_t>(layer->num_filters()),
                             unquantized_bits);
      } else {
        w.filter_bits = layer->filter_bits();
      }
      workloads.push_back(std::move(w));
      ++idx;
    }
  }
  model.set_recording(false);
  model.set_training(was_training);
  return workloads;
}

std::vector<LayerWorkload> uniform_workloads(std::vector<LayerWorkload> workloads,
                                             int bits) {
  for (LayerWorkload& w : workloads) {
    for (int& b : w.filter_bits) b = bits;
  }
  return workloads;
}

ModelCost estimate_cost(const std::vector<LayerWorkload>& workloads,
                        const EnergyModel& energy) {
  ModelCost cost;
  for (const LayerWorkload& w : workloads) {
    LayerCost lc;
    lc.name = w.name;
    lc.total_macs = w.total_macs();
    lc.active_macs = w.active_macs();
    for (const int b : w.filter_bits) {
      if (b <= 0) continue;  // pruned filter: no compute, no traffic
      const double macs = static_cast<double>(w.macs_per_filter());
      lc.compute_pj += macs * energy.mac_pj(b, w.act_bits);
      lc.weight_sram_pj += macs * static_cast<double>(b) * energy.sram_pj_per_bit;
      lc.act_sram_pj += macs * static_cast<double>(w.act_bits) * energy.sram_pj_per_bit;
    }
    // Each unpruned filter writes its output map once.
    for (const int b : w.filter_bits) {
      if (b <= 0) continue;
      lc.act_sram_pj += static_cast<double>(w.output_positions) *
                        static_cast<double>(w.act_bits) * energy.sram_pj_per_bit;
    }
    lc.dram_pj =
        static_cast<double>(w.weight_bits_total()) * energy.dram_pj_per_bit;
    cost.layers.push_back(std::move(lc));
  }
  return cost;
}

}  // namespace cq::hw
