#include "hw/pe_array.h"

#include <stdexcept>

namespace cq::hw {

double PeArrayReport::speedup_over(const PeArrayReport& other) const {
  if (total_cycles <= 0) return 0.0;
  return static_cast<double>(other.total_cycles) / static_cast<double>(total_cycles);
}

PeArrayReport simulate_pe_array(const std::vector<LayerWorkload>& workloads,
                                const PeArrayConfig& config) {
  if (config.rows <= 0 || config.cols <= 0 || config.clock_ghz <= 0.0) {
    throw std::invalid_argument("simulate_pe_array: invalid array configuration");
  }
  PeArrayReport report;
  for (const LayerWorkload& w : workloads) {
    LayerTiming t;
    t.name = w.name;
    for (const int b : w.filter_bits) {
      if (b <= 0) continue;  // pruned filter never enters the array
      t.lane_cycles += w.macs_per_filter() * static_cast<std::int64_t>(b);
    }
    t.cycles = (t.lane_cycles + config.lanes() - 1) / config.lanes();
    if (t.lane_cycles > 0) t.cycles += config.layer_overhead_cycles;
    report.total_cycles += t.cycles;
    report.layers.push_back(std::move(t));
  }
  report.seconds = static_cast<double>(report.total_cycles) / (config.clock_ghz * 1e9);
  return report;
}

}  // namespace cq::hw
