#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/models/model.h"
#include "tensor/tensor.h"

namespace cq::hw {

/// Energy constants of a 45nm-class accelerator, in picojoules per
/// operation, following the widely used ISSCC'14 technology survey
/// numbers (8-bit integer multiply 0.2 pJ, 32-bit integer add 0.1 pJ,
/// small-SRAM 32-bit read 5 pJ, DRAM 32-bit read 640 pJ). Multiplier
/// energy scales with the product of the operand widths (array
/// multiplier area/energy is O(bw*ba)); adder and memory energies
/// scale linearly with bit-width.
struct EnergyModel {
  double mult_pj_per_bit2 = 0.2 / 64.0;   ///< 8x8 multiply = 0.2 pJ
  double add_pj_per_bit = 0.1 / 32.0;     ///< 32-bit add = 0.1 pJ
  double sram_pj_per_bit = 5.0 / 32.0;    ///< on-chip buffer read
  double dram_pj_per_bit = 640.0 / 32.0;  ///< off-chip weight fetch
  int accumulator_bits = 32;

  /// Energy of one MAC between a `weight_bits` weight and an
  /// `act_bits` activation. 0-bit weights belong to pruned filters the
  /// hardware skips entirely, so they cost nothing.
  double mac_pj(int weight_bits, int act_bits) const;
};

/// Inference workload of one quantized layer: how many MACs each
/// filter performs and at which precision. Produced by
/// trace_workloads() from a live model; consumed by the energy
/// estimator and the PE-array timing model.
struct LayerWorkload {
  std::string name;
  bool is_conv = true;
  std::int64_t output_positions = 1;   ///< spatial positions per filter (H*W; 1 for FC)
  std::int64_t weights_per_filter = 0;
  std::vector<int> filter_bits;        ///< per-filter weight precision
  int act_bits = 8;                    ///< activation precision feeding the MACs

  std::int64_t macs_per_filter() const { return output_positions * weights_per_filter; }
  /// All MACs of the layer including pruned filters (the dense count).
  std::int64_t total_macs() const {
    return macs_per_filter() * static_cast<std::int64_t>(filter_bits.size());
  }
  /// MACs actually executed (pruned filters skipped).
  std::int64_t active_macs() const;
  /// Weight storage in bits under the mixed arrangement.
  std::int64_t weight_bits_total() const;
};

/// Per-layer cost breakdown in picojoules.
struct LayerCost {
  std::string name;
  std::int64_t total_macs = 0;
  std::int64_t active_macs = 0;
  double compute_pj = 0.0;      ///< multipliers + accumulator adds
  double weight_sram_pj = 0.0;  ///< weight-buffer reads (one per MAC)
  double act_sram_pj = 0.0;     ///< activation reads + output writes
  double dram_pj = 0.0;         ///< packed weights fetched once

  double total_pj() const {
    return compute_pj + weight_sram_pj + act_sram_pj + dram_pj;
  }
};

/// Whole-model cost report of one inference (batch 1).
struct ModelCost {
  std::vector<LayerCost> layers;

  std::int64_t total_macs() const;
  std::int64_t active_macs() const;
  double compute_pj() const;
  double memory_pj() const;
  double total_pj() const;
};

/// Extracts the per-layer workloads of `model` by running one sample
/// through it with probes recording (the probe activation shapes give
/// each conv layer's output resolution). `sample` must be a batch of
/// exactly one input. Layers without an assigned bit arrangement are
/// reported at `unquantized_bits` (32 = fp32 master weights).
/// `act_bits` is the paper's uniform activation precision A.
std::vector<LayerWorkload> trace_workloads(nn::Model& model, const tensor::Tensor& sample,
                                           int act_bits, int unquantized_bits = 32);

/// Copy of `workloads` with every filter forced to `bits` — the
/// layer-uniform reference point benches compare CQ against.
std::vector<LayerWorkload> uniform_workloads(std::vector<LayerWorkload> workloads,
                                             int bits);

/// Energy estimate of one inference under a weight-stationary dataflow:
/// packed weights stream from DRAM once, every MAC reads its weight
/// and activation from SRAM, every output position writes once.
ModelCost estimate_cost(const std::vector<LayerWorkload>& workloads,
                        const EnergyModel& energy = {});

}  // namespace cq::hw
