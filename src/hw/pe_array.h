#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/cost_model.h"

namespace cq::hw {

/// Precision-scalable processing-element array in the bit-serial
/// weight style (Stripes/Loom class): every lane consumes one weight
/// bit per cycle, so a filter quantized to b bits finishes its MACs in
/// b passes and a pruned (0-bit) filter is skipped outright. This is
/// the hardware that turns the paper's *average bit-width* directly
/// into latency.
struct PeArrayConfig {
  int rows = 16;
  int cols = 16;
  double clock_ghz = 1.0;
  /// Pipeline fill/drain overhead charged once per layer, in cycles.
  int layer_overhead_cycles = 64;

  std::int64_t lanes() const { return static_cast<std::int64_t>(rows) * cols; }
};

/// Timing of one layer on the array.
struct LayerTiming {
  std::string name;
  std::int64_t lane_cycles = 0;  ///< serial work: sum of macs * weight bits
  std::int64_t cycles = 0;       ///< ceil(lane_cycles / lanes) + overhead
};

/// Whole-model timing of one inference.
struct PeArrayReport {
  std::vector<LayerTiming> layers;
  std::int64_t total_cycles = 0;
  double seconds = 0.0;

  /// total_cycles of `other` divided by this report's total_cycles
  /// (how much faster this arrangement runs than `other`).
  double speedup_over(const PeArrayReport& other) const;
};

/// Simulates the workloads on the array. Deterministic closed-form
/// arithmetic — the point is the *relative* latency of bit-width
/// arrangements, not cycle-accurate modelling of a specific chip.
PeArrayReport simulate_pe_array(const std::vector<LayerWorkload>& workloads,
                                const PeArrayConfig& config = {});

}  // namespace cq::hw
