#pragma once

#include <cstddef>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "deploy/artifact.h"
#include "deploy/plan.h"
#include "obs/metrics.h"
#include "serve/server.h"

namespace cq::serve {

/// Thrown for registry administration failures: duplicate or unknown
/// names, a model whose resident footprint exceeds its memory budget,
/// malformed artifacts surfacing at load.
class RegistryError : public std::runtime_error {
 public:
  explicit RegistryError(const std::string& what) : std::runtime_error(what) {}
};

/// Per-model serving configuration. The ServerConfig shapes the
/// model's worker pool / batching / backend exactly as for a
/// standalone Server; the two registry-level knobs bound what the
/// model may cost:
struct ModelConfig {
  ServerConfig server;
  /// Hard cap on the model's resident bytes (compiled plan weights and
  /// code matrices + per-context arenas + backend-prepared packed
  /// state), enforced at load/swap time: a version that would exceed
  /// it is refused with RegistryError and — on swap — the previous
  /// version keeps serving. 0 = unlimited.
  std::size_t memory_budget_bytes = 0;
  /// Admission threshold on the scheduler queue depth: submit() sheds
  /// (kShed, never a silent drop) once the model's queue holds this
  /// many requests. 0 = the server's queue_capacity (shed only when
  /// the bounded queue is actually full).
  std::size_t admit_queue_depth = 0;
};

/// One registered model's public facts.
struct ModelInfo {
  std::string name;
  int version = 0;  ///< bumped by every hot-swap, starts at 1
  tensor::Shape sample_shape;
  int num_classes = 0;
  std::size_t resident_bytes = 0;  ///< what the budget is charged for
  std::size_t memory_budget_bytes = 0;
  std::size_t ops = 0;  ///< compiled (and optimized) plan length
  /// Lifetime admission counters (across hot-swaps — the registry-level
  /// view; ServerStats covers only the current version's window).
  std::uint64_t requests_admitted = 0;
  std::uint64_t requests_shed = 0;
};

/// Bytes an ExecutionPlan keeps resident per se: float weights, bias
/// and BN vectors inline in the ops, plus the expanded integer code
/// matrices. Arena and backend-prepared bytes are charged separately
/// (they scale with contexts / backend choice).
std::size_t plan_resident_bytes(const deploy::ExecutionPlan& plan);

/// Multi-model serving host: many named .cqar artifacts, each compiled
/// once (plan shared read-only by the model's server contexts),
/// optimized, verified and served by its own serve::Server with its
/// own obs metrics.
///
/// Hot swap (swap()): the replacement version is fully built — compile,
/// optimize, verify, budget-check — while the old one keeps serving;
/// the cutover is one pointer store, after which new submits land on
/// the new version and the old one drains (every in-flight request
/// finishes on the plan it started on — byte-identity is never broken
/// mid-request). swap() returns after the drain.
///
/// Admission: submit() never blocks and never silently drops. A
/// request is either admitted (future returned), shed with a reason
/// (model over its queue-depth threshold / queue full / draining), or
/// unknown (no such model). Per-model admitted/shed counters live in
/// the model's registry-level obs::Registry (metrics(name)), which
/// survives hot-swaps; the per-version Server keeps its own serving
/// histograms (stats(name) / server_metrics_json(name)).
///
/// All methods are thread-safe; submit() takes one mutex acquisition
/// to resolve the name, then runs on the version's lock-free path.
class ModelRegistry {
 public:
  ModelRegistry() = default;
  ~ModelRegistry();

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Compiles, optimizes (per config.server.opt), verifies and serves
  /// `artifact` under `name` as version 1. Throws RegistryError on a
  /// duplicate name or when the version exceeds its memory budget,
  /// deploy::ArtifactError on malformed artifacts.
  void load(const std::string& name, const deploy::QuantizedArtifact& artifact,
            ModelConfig config = {});

  /// Hot-swaps `name` to a freshly built version of `artifact` (same
  /// ModelConfig as the original load), returns the new version
  /// number. Blocks until the old version has drained. On any failure
  /// (budget, malformed artifact) the old version keeps serving.
  int swap(const std::string& name, const deploy::QuantizedArtifact& artifact);

  /// Removes `name`. In-flight requests drain first (their futures all
  /// complete); subsequent submits report kUnknown.
  void unload(const std::string& name);

  /// Drains and removes every model (the daemon's SIGTERM path).
  void unload_all();

  enum class Outcome { kAdmitted, kShed, kUnknown };
  struct Admission {
    Outcome outcome = Outcome::kUnknown;
    std::string reason;                  ///< set when not admitted
    std::future<tensor::Tensor> result;  ///< set when admitted
  };

  /// Routes one sample to `name`'s current version. Never blocks; the
  /// outcome is always explicit (see class comment).
  Admission submit(const std::string& name, tensor::Tensor sample);

  bool has(const std::string& name) const;
  std::vector<std::string> names() const;
  ModelInfo info(const std::string& name) const;

  /// Serving stats of the model's *current* version (a fresh window
  /// after every swap).
  ServerStats stats(const std::string& name) const;

  /// Registry-level per-model metrics: requests_admitted,
  /// requests_shed, hot_swaps counters + resident_bytes / version
  /// gauges. Survives hot-swaps (counters accumulate across versions).
  const obs::Registry& metrics(const std::string& name) const;

  /// JSON snapshot of the current version's Server metrics (latency
  /// histograms etc.). By value, so it stays valid when a concurrent
  /// swap retires that version.
  std::string server_metrics_json(const std::string& name) const;

 private:
  struct Version {
    int number = 1;
    std::shared_ptr<const deploy::ExecutionPlan> plan;
    std::unique_ptr<Server> server;
    std::size_t resident_bytes = 0;
  };
  struct Entry {
    std::string name;
    ModelConfig config;
    /// Serializes load/swap/unload per model so two swaps can not
    /// interleave; submit() never takes it.
    std::mutex admin_mutex;
    obs::Registry metrics;
    obs::Counter* admitted = nullptr;
    obs::Counter* shed = nullptr;
    obs::Counter* swaps = nullptr;
    obs::Gauge* resident = nullptr;
    obs::Gauge* version = nullptr;
    std::shared_ptr<Version> current;  ///< guarded by map_mutex_
  };

  std::shared_ptr<Entry> find(const std::string& name) const;
  std::shared_ptr<Entry> require(const std::string& name) const;
  std::shared_ptr<Version> current_version(Entry& entry) const;
  /// Compile + optimize + verify + budget-check one artifact version.
  std::shared_ptr<Version> build_version(const std::string& name,
                                         const deploy::QuantizedArtifact& artifact,
                                         const ModelConfig& config, int number) const;

  mutable std::mutex map_mutex_;  ///< guards map_ and Entry::current
  std::map<std::string, std::shared_ptr<Entry>> map_;
};

}  // namespace cq::serve
