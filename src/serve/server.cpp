#include "serve/server.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "util/stats.h"

namespace cq::serve {

namespace {

BatchSchedulerConfig scheduler_config(const ServerConfig& config) {
  BatchSchedulerConfig sched;
  sched.capacity = config.queue_capacity;
  sched.max_batch = config.max_batch;
  sched.max_wait_us = config.max_wait_us;
  return sched;
}

ServerConfig normalized(ServerConfig config) {
  config.workers = std::max(1, config.workers);
  config.intra_threads = std::max(1, config.intra_threads);
  return config;
}

}  // namespace

Server::Server(const deploy::QuantizedArtifact& artifact, ServerConfig config)
    : config_(normalized(config)),
      intra_pool_(config_.intra_threads > 1
                      ? std::make_unique<util::ThreadPool>(config_.intra_threads - 1)
                      : nullptr),
      session_(artifact, config_.workers,
               util::ExecContext{intra_pool_.get(), config_.intra_threads},
               deploy::make_backend(config_.backend)),
      scheduler_(scheduler_config(config_)),
      pool_(config_.workers),
      started_(std::chrono::steady_clock::now()) {
  for (int i = 0; i < pool_.size(); ++i) {
    pool_.submit([this] { worker_loop(); });
  }
}

Server::~Server() { shutdown(); }

std::future<tensor::Tensor> Server::submit(tensor::Tensor sample) {
  Request request;
  request.sample = std::move(sample);
  request.submitted = std::chrono::steady_clock::now();
  std::future<tensor::Tensor> future = request.result.get_future();
  if (!scheduler_.push(request)) {
    request.result.set_exception(std::make_exception_ptr(
        std::runtime_error("serve::Server: submit after shutdown")));
  }
  return future;
}

void Server::shutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  scheduler_.close();
  pool_.wait_idle();  // workers exit once the queue is drained
}

void Server::worker_loop() {
  const tensor::Shape& sample_shape = session_.sample_shape();
  const std::size_t sample_numel = tensor::shape_numel(sample_shape);
  std::vector<Request> batch;

  while (scheduler_.pop_batch(batch)) {
    // Shape problems surface as per-request failures, not batch
    // poison: a bad sample fails only its own promise and the valid
    // remainder still batches. The check is on the exact shape — a
    // transposed sample with the right element count would otherwise
    // be coalesced in the wrong layout and answered with garbage.
    std::vector<Request*> valid;
    valid.reserve(batch.size());
    for (Request& request : batch) {
      if (request.sample.shape() == sample_shape) {
        valid.push_back(&request);
      } else {
        request.result.set_exception(std::make_exception_ptr(std::invalid_argument(
            "serve::Server: sample shape does not match the artifact input " +
            tensor::shape_to_string(sample_shape))));
      }
    }
    if (valid.empty()) continue;
    const int n = static_cast<int>(valid.size());

    tensor::Shape batch_shape;
    batch_shape.reserve(sample_shape.size() + 1);
    batch_shape.push_back(n);
    batch_shape.insert(batch_shape.end(), sample_shape.begin(), sample_shape.end());
    tensor::Tensor coalesced(batch_shape);
    for (int i = 0; i < n; ++i) {
      std::memcpy(coalesced.data() + static_cast<std::size_t>(i) * sample_numel,
                  valid[static_cast<std::size_t>(i)]->sample.data(),
                  sample_numel * sizeof(float));
    }

    tensor::Tensor out;
    try {
      out = session_.run(coalesced);
    } catch (...) {
      const std::exception_ptr error = std::current_exception();
      for (Request* request : valid) request->result.set_exception(error);
      continue;
    }

    // Fan the logits rows back out and record latency at fulfillment.
    const auto now = std::chrono::steady_clock::now();
    const int classes = session_.num_classes();
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++batches_;
      max_batch_seen_ = std::max(max_batch_seen_, static_cast<std::size_t>(n));
      for (const Request* request : valid) {
        const double us =
            std::chrono::duration<double, std::micro>(now - request->submitted)
                .count();
        ++completed_;
        latency_sum_us_ += us;
        latency_max_us_ = std::max(latency_max_us_, us);
        if (latency_window_.size() < kLatencyWindow) {
          latency_window_.push_back(us);
        } else {
          latency_window_[latency_next_] = us;
          latency_next_ = (latency_next_ + 1) % kLatencyWindow;
        }
      }
    }
    for (int i = 0; i < n; ++i) {
      tensor::Tensor row({classes});
      std::memcpy(row.data(), out.data() + static_cast<std::size_t>(i) * classes,
                  static_cast<std::size_t>(classes) * sizeof(float));
      valid[static_cast<std::size_t>(i)]->result.set_value(std::move(row));
    }
  }
}

ServerStats Server::stats() const {
  ServerStats s;
  std::vector<double> window;
  std::chrono::steady_clock::time_point started;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    window = latency_window_;
    s.completed = completed_;
    s.batches = batches_;
    s.max_batch = max_batch_seen_;
    s.mean_us = completed_ == 0 ? 0.0
                                : latency_sum_us_ / static_cast<double>(completed_);
    s.max_us = latency_max_us_;
    started = started_;  // reset_stats() writes it under the same lock
  }
  s.mean_batch = s.batches == 0
                     ? 0.0
                     : static_cast<double>(s.completed) / static_cast<double>(s.batches);
  if (!window.empty()) {
    std::sort(window.begin(), window.end());
    s.p50_us = util::percentile_sorted(window, 50.0);
    s.p95_us = util::percentile_sorted(window, 95.0);
    s.p99_us = util::percentile_sorted(window, 99.0);
  }
  s.elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started).count();
  s.throughput_rps =
      s.elapsed_s > 0.0 ? static_cast<double>(s.completed) / s.elapsed_s : 0.0;
  return s;
}

void Server::reset_stats() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  latency_window_.clear();
  latency_next_ = 0;
  completed_ = 0;
  latency_sum_us_ = 0.0;
  latency_max_us_ = 0.0;
  batches_ = 0;
  max_batch_seen_ = 0;
  started_ = std::chrono::steady_clock::now();
}

}  // namespace cq::serve
