#include "serve/server.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace cq::serve {

namespace {

BatchSchedulerConfig scheduler_config(const ServerConfig& config) {
  BatchSchedulerConfig sched;
  sched.capacity = config.queue_capacity;
  sched.max_batch = config.max_batch;
  sched.max_wait_us = config.max_wait_us;
  return sched;
}

ServerConfig normalized(ServerConfig config) {
  config.workers = std::max(1, config.workers);
  config.intra_threads = std::max(1, config.intra_threads);
  return config;
}

}  // namespace

Server::Server(const deploy::QuantizedArtifact& artifact, ServerConfig config)
    : config_(normalized(config)),
      intra_pool_(config_.intra_threads > 1
                      ? std::make_unique<util::ThreadPool>(config_.intra_threads - 1)
                      : nullptr),
      session_(artifact, config_.workers,
               util::ExecContext{intra_pool_.get(), config_.intra_threads},
               deploy::make_backend(config_.backend), PlanCheck::kNone, config_.opt),
      scheduler_(scheduler_config(config_)),
      pool_(config_.workers),
      submitted_(metrics_.counter("requests_submitted", "requests accepted by submit()")),
      failed_(metrics_.counter("requests_failed",
                               "requests answered with an exception")),
      shed_(metrics_.counter("requests_shed",
                             "requests refused by try_submit (queue at capacity)")),
      latency_us_(metrics_.histogram("latency_us",
                                     "submit to promise fulfillment, microseconds")),
      queue_wait_us_(metrics_.histogram(
          "queue_wait_us", "submit to leaving the scheduler queue, microseconds")),
      execute_us_(metrics_.histogram("execute_us",
                                     "EngineSession::run wall time per batch, "
                                     "microseconds")),
      batch_size_(metrics_.histogram("batch_size", "coalesced micro-batch sizes")),
      queue_depth_(metrics_.gauge("queue_depth", "requests waiting in the scheduler")),
      started_(std::chrono::steady_clock::now()) {
  start_workers();
}

Server::Server(std::shared_ptr<const deploy::ExecutionPlan> plan, ServerConfig config)
    : config_(normalized(config)),
      intra_pool_(config_.intra_threads > 1
                      ? std::make_unique<util::ThreadPool>(config_.intra_threads - 1)
                      : nullptr),
      session_(std::move(plan), config_.workers,
               util::ExecContext{intra_pool_.get(), config_.intra_threads},
               deploy::make_backend(config_.backend), PlanCheck::kNone),
      scheduler_(scheduler_config(config_)),
      pool_(config_.workers),
      submitted_(metrics_.counter("requests_submitted", "requests accepted by submit()")),
      failed_(metrics_.counter("requests_failed",
                               "requests answered with an exception")),
      shed_(metrics_.counter("requests_shed",
                             "requests refused by try_submit (queue at capacity)")),
      latency_us_(metrics_.histogram("latency_us",
                                     "submit to promise fulfillment, microseconds")),
      queue_wait_us_(metrics_.histogram(
          "queue_wait_us", "submit to leaving the scheduler queue, microseconds")),
      execute_us_(metrics_.histogram("execute_us",
                                     "EngineSession::run wall time per batch, "
                                     "microseconds")),
      batch_size_(metrics_.histogram("batch_size", "coalesced micro-batch sizes")),
      queue_depth_(metrics_.gauge("queue_depth", "requests waiting in the scheduler")),
      started_(std::chrono::steady_clock::now()) {
  start_workers();
}

void Server::start_workers() {
  metrics_.gauge("backend_prepared_bytes",
                 "bytes of backend-owned packed state built by prepare()")
      .set(static_cast<double>(session_.backend().prepared_bytes()));
  for (int i = 0; i < pool_.size(); ++i) {
    pool_.submit([this, i] { worker_loop(i); });
  }
}

Server::~Server() { shutdown(); }

std::future<tensor::Tensor> Server::submit(tensor::Tensor sample) {
  Request request;
  request.sample = std::move(sample);
  request.submitted = std::chrono::steady_clock::now();
  request.id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  std::future<tensor::Tensor> future = request.result.get_future();
  submitted_.inc();
  if (!scheduler_.push(request)) {
    failed_.inc();
    request.result.set_exception(std::make_exception_ptr(
        std::runtime_error("serve::Server: submit after shutdown")));
  }
  return future;
}

Server::SubmitResult Server::try_submit(tensor::Tensor& sample,
                                        std::future<tensor::Tensor>& out) {
  Request request;
  request.sample = std::move(sample);
  request.submitted = std::chrono::steady_clock::now();
  request.id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  std::future<tensor::Tensor> future = request.result.get_future();
  switch (scheduler_.try_push(request)) {
    case BatchScheduler::PushResult::kOk:
      submitted_.inc();
      out = std::move(future);
      return SubmitResult::kAdmitted;
    case BatchScheduler::PushResult::kFull:
      shed_.inc();
      sample = std::move(request.sample);  // hand the sample back untouched
      return SubmitResult::kShed;
    case BatchScheduler::PushResult::kClosed:
      // Not a shed: the server is draining, the caller retries against
      // its successor (ModelRegistry mid-swap) or rejects on its own
      // terms.
      sample = std::move(request.sample);
      return SubmitResult::kClosed;
  }
  return SubmitResult::kClosed;  // unreachable
}

std::size_t Server::queue_depth() const { return scheduler_.depth(); }

void Server::shutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  scheduler_.close();
  pool_.wait_idle();  // workers exit once the queue is drained
}

void Server::worker_loop(int worker) {
  const tensor::Shape& sample_shape = session_.sample_shape();
  const std::size_t sample_numel = tensor::shape_numel(sample_shape);
  std::vector<Request> batch;

  while (scheduler_.pop_batch(batch)) {
    // Shape problems surface as per-request failures, not batch
    // poison: a bad sample fails only its own promise and the valid
    // remainder still batches. The check is on the exact shape — a
    // transposed sample with the right element count would otherwise
    // be coalesced in the wrong layout and answered with garbage.
    std::vector<Request*> valid;
    valid.reserve(batch.size());
    for (Request& request : batch) {
      if (request.sample.shape() == sample_shape) {
        valid.push_back(&request);
      } else {
        failed_.inc();
        request.result.set_exception(std::make_exception_ptr(std::invalid_argument(
            "serve::Server: sample shape does not match the artifact input " +
            tensor::shape_to_string(sample_shape))));
      }
    }
    if (valid.empty()) continue;
    const int n = static_cast<int>(valid.size());

    tensor::Shape batch_shape;
    batch_shape.reserve(sample_shape.size() + 1);
    batch_shape.push_back(n);
    batch_shape.insert(batch_shape.end(), sample_shape.begin(), sample_shape.end());
    tensor::Tensor coalesced(batch_shape);
    for (int i = 0; i < n; ++i) {
      std::memcpy(coalesced.data() + static_cast<std::size_t>(i) * sample_numel,
                  valid[static_cast<std::size_t>(i)]->sample.data(),
                  sample_numel * sizeof(float));
    }

    const auto exec_begin = std::chrono::steady_clock::now();
    tensor::Tensor out;
    try {
      out = session_.run(coalesced);
    } catch (...) {
      const std::exception_ptr error = std::current_exception();
      failed_.inc(static_cast<std::uint64_t>(n));
      for (Request* request : valid) request->result.set_exception(error);
      continue;
    }
    const auto exec_end = std::chrono::steady_clock::now();

    // Record the batch before fanning out, under the stats mutex that
    // also serializes reset_stats()/stats() — windows never mix.
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      batch_size_.record(static_cast<double>(n));
      execute_us_.record(
          std::chrono::duration<double, std::micro>(exec_end - exec_begin).count());
      for (const Request* request : valid) {
        latency_us_.record(std::chrono::duration<double, std::micro>(
                               exec_end - request->submitted)
                               .count());
        queue_wait_us_.record(std::chrono::duration<double, std::micro>(
                                  request->popped - request->submitted)
                                  .count());
      }
    }

    const int classes = session_.num_classes();
    for (int i = 0; i < n; ++i) {
      tensor::Tensor row({classes});
      std::memcpy(row.data(), out.data() + static_cast<std::size_t>(i) * classes,
                  static_cast<std::size_t>(classes) * sizeof(float));
      valid[static_cast<std::size_t>(i)]->result.set_value(std::move(row));
    }

    obs::SpanSink* const sink = span_sink_.load(std::memory_order_acquire);
    if (sink != nullptr) {
      const auto done = std::chrono::steady_clock::now();
      for (const Request* request : valid) {
        obs::RequestSpan span;
        span.id = request->id;
        span.submit = request->submitted;
        span.popped = request->popped;
        span.exec_begin = exec_begin;
        span.exec_end = exec_end;
        span.done = done;
        span.batch = n;
        span.worker = worker;
        sink->on_span(span);
      }
    }
  }
}

ServerStats Server::stats() const {
  queue_depth_.set(static_cast<double>(scheduler_.depth()));
  ServerStats s;
  obs::HistogramSnapshot latency;
  obs::HistogramSnapshot queue;
  obs::HistogramSnapshot execute;
  obs::HistogramSnapshot batches;
  std::chrono::steady_clock::time_point started;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    latency = latency_us_.snapshot();
    queue = queue_wait_us_.snapshot();
    execute = execute_us_.snapshot();
    batches = batch_size_.snapshot();
    started = started_;  // reset_stats() writes it under the same lock
  }
  s.completed = latency.count;
  s.failed = failed_.value();
  s.shed = shed_.value();
  s.batches = batches.count;
  s.mean_batch = batches.mean();
  s.max_batch = static_cast<std::size_t>(batches.max);
  s.p50_us = latency.percentile(50.0);
  s.p95_us = latency.percentile(95.0);
  s.p99_us = latency.percentile(99.0);
  s.mean_us = latency.mean();
  s.max_us = latency.max;
  s.mean_queue_us = queue.mean();
  s.p50_queue_us = queue.percentile(50.0);
  s.p95_queue_us = queue.percentile(95.0);
  s.mean_exec_us = execute.mean();
  s.p50_exec_us = execute.percentile(50.0);
  s.p95_exec_us = execute.percentile(95.0);
  s.elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started).count();
  s.throughput_rps =
      s.elapsed_s > 0.0 ? static_cast<double>(s.completed) / s.elapsed_s : 0.0;
  return s;
}

void Server::reset_stats() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  metrics_.reset();
  // Static facts survive the window reset.
  metrics_.gauge("backend_prepared_bytes")
      .set(static_cast<double>(session_.backend().prepared_bytes()));
  started_ = std::chrono::steady_clock::now();
}

const obs::Registry& Server::metrics() const {
  queue_depth_.set(static_cast<double>(scheduler_.depth()));
  return metrics_;
}

}  // namespace cq::serve
