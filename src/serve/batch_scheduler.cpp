#include "serve/batch_scheduler.h"

#include <algorithm>
#include <stdexcept>

namespace cq::serve {

BatchScheduler::BatchScheduler(BatchSchedulerConfig config) : config_(config) {
  if (config_.capacity < 1) {
    throw std::invalid_argument("BatchScheduler: capacity must be >= 1");
  }
  if (config_.max_batch < 1) {
    throw std::invalid_argument("BatchScheduler: max_batch must be >= 1");
  }
  if (config_.max_wait_us < 0) {
    throw std::invalid_argument("BatchScheduler: max_wait_us must be >= 0");
  }
}

bool BatchScheduler::push(Request& request) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [this] { return closed_ || queue_.size() < config_.capacity; });
    if (closed_) return false;
    queue_.push_back(std::move(request));
  }
  not_empty_.notify_one();
  return true;
}

BatchScheduler::PushResult BatchScheduler::try_push(Request& request) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return PushResult::kClosed;
    if (queue_.size() >= config_.capacity) return PushResult::kFull;
    queue_.push_back(std::move(request));
  }
  not_empty_.notify_one();
  return PushResult::kOk;
}

bool BatchScheduler::pop_batch(std::vector<Request>& batch) {
  batch.clear();
  std::unique_lock<std::mutex> lock(mutex_);
  ++waiting_consumers_;
  for (;;) {
    not_empty_.wait(lock, [this] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) {
      --waiting_consumers_;
      return false;  // closed and drained
    }

    // Micro-batch window: the deadline is anchored to the *oldest*
    // queued request's submit time, so batching adds at most
    // max_wait_us of latency to any request regardless of arrival
    // pattern.
    const auto deadline =
        queue_.front().submitted + std::chrono::microseconds(config_.max_wait_us);
    not_empty_.wait_until(lock, deadline, [this] {
      return closed_ || queue_.size() >= static_cast<std::size_t>(config_.max_batch);
    });
    // A concurrent consumer may have drained the queue while this one
    // sat out the batching window; if so, go back to sleep instead of
    // flushing an empty batch.
    if (!queue_.empty()) break;
  }

  // Dynamic batch sizing: greedily draining the queue into one batch
  // would serialize the whole in-flight window behind a single
  // consumer. Take only a fair (ceil) share of the ready requests per
  // *idle* consumer — busy consumers are not counted, so a lone worker
  // still gets everything up to max_batch.
  const std::size_t ready = queue_.size();
  const std::size_t share = (ready + waiting_consumers_ - 1) / waiting_consumers_;
  const std::size_t take =
      std::min(std::max<std::size_t>(share, 1),
               static_cast<std::size_t>(config_.max_batch));
  batch.reserve(take);
  const auto popped = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < take; ++i) {
    queue_.front().popped = popped;  // queue-wait ends here
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  --waiting_consumers_;
  const bool more = !queue_.empty();
  lock.unlock();
  if (more) not_empty_.notify_one();  // let the next idle consumer flush the rest
  not_full_.notify_all();
  return true;
}

void BatchScheduler::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

bool BatchScheduler::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t BatchScheduler::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace cq::serve
