#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <vector>

#include "tensor/tensor.h"

namespace cq::serve {

/// One in-flight inference request: a single input sample, the promise
/// its submitter is waiting on, and the span timestamps the
/// observability layer threads through the pipeline. `submitted` is
/// stamped by Server::submit; `popped` by BatchScheduler::pop_batch
/// when the request leaves the queue, so queue-wait (popped -
/// submitted) is measured where it ends, not inferred later.
struct Request {
  tensor::Tensor sample;
  std::promise<tensor::Tensor> result;
  std::chrono::steady_clock::time_point submitted;
  std::chrono::steady_clock::time_point popped;
  std::uint64_t id = 0;  ///< submit order, for request-span tracing
};

struct BatchSchedulerConfig {
  std::size_t capacity = 1024;  ///< bounded queue depth; push blocks when full
  int max_batch = 16;           ///< flush a micro-batch at this size
  long max_wait_us = 200;       ///< ... or when the oldest request is this old
};

/// Bounded multi-producer/multi-consumer request queue with dynamic
/// micro-batching.
///
/// Producers push single requests; consumers pop *batches*: pop_batch
/// blocks until at least one request is queued, then keeps the batch
/// open until either max_batch requests are available or max_wait_us
/// has passed since the oldest queued request was submitted. The flush
/// then takes a fair share of the ready requests per idle consumer
/// (capped at max_batch), so concurrent workers split a burst instead
/// of serializing it behind one giant batch. Batching is a pure
/// scheduling concern — consumers must produce outputs independent of
/// how requests were coalesced (EngineSession guarantees exactly
/// that).
class BatchScheduler {
 public:
  explicit BatchScheduler(BatchSchedulerConfig config);

  /// Blocks while the queue is full. Returns false (and leaves the
  /// request untouched, promise unfulfilled) when the scheduler is
  /// closed; the caller owns the rejection.
  bool push(Request& request);

  /// Non-blocking admission variant: kOk moves the request into the
  /// queue; kFull (queue at capacity) and kClosed leave it untouched —
  /// the caller owns the shed/reject decision. This is the primitive
  /// load shedding is built on: where push() applies backpressure by
  /// blocking the producer, try_push turns a full queue into an
  /// immediate, explicit signal.
  enum class PushResult { kOk, kFull, kClosed };
  PushResult try_push(Request& request);

  /// Fills `batch` with 1..max_batch requests. Returns false when the
  /// scheduler is closed and fully drained — consumers exit on that.
  bool pop_batch(std::vector<Request>& batch);

  /// Stops accepting new requests and wakes all waiters; queued
  /// requests still drain through pop_batch.
  void close();
  bool closed() const;

  std::size_t depth() const;
  const BatchSchedulerConfig& config() const { return config_; }

 private:
  BatchSchedulerConfig config_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Request> queue_;
  std::size_t waiting_consumers_ = 0;  ///< consumers blocked in pop_batch
  bool closed_ = false;
};

}  // namespace cq::serve
