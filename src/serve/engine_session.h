#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "deploy/artifact.h"
#include "deploy/backend.h"
#include "deploy/plan.h"
#include "obs/trace.h"
#include "tensor/tensor.h"
#include "util/exec_context.h"

namespace cq::serve {

/// Opt-in static verification of the plan a session is built over.
/// kStrict runs deploy::verify_plan at construction and refuses —
/// deploy::ArtifactError listing every finding — to serve a plan that
/// breaks an IR invariant. The artifact constructor compiles its own
/// plan (already debug-verified inside compile_plan); strict mode is
/// the production-build guard for plans that arrive pre-compiled or
/// pass through rewriting stages.
enum class PlanCheck { kNone, kStrict };

/// Whether the artifact constructor runs deploy::optimize_plan over
/// the freshly compiled plan before serving it. kO1 (the default)
/// applies the full pass pipeline — epilogue fusion, quantized-domain
/// propagation, arena re-planning — which is byte-exact, so outputs
/// are identical either way. kO0 serves the plan exactly as
/// deploy::compile_plan emitted it: the escape hatch, and the baseline
/// side of A/B perf comparisons. The pre-compiled-plan constructors
/// never optimize — a handed-over plan's shape belongs to the caller.
enum class PlanOpt { kO0, kO1 };

/// Inference session interpreting a compiled deploy::ExecutionPlan.
///
/// An EngineSession is the servable unit of the deployment story. The
/// artifact constructor compiles the architecture to a flat op program
/// once (deploy::compile_plan); run(batch) is then a loop over typed
/// op records with residual routing and the float-vs-integer path
/// choice fixed at compile time. No nn::Module is instantiated or
/// walked at serving time — and no kernel is called directly either:
/// every op is dispatched through a deploy::Backend (scalar reference
/// by default), so *how* an op executes is swappable per session while
/// the plan fixes *what* it computes. The backend's prepare() hook
/// runs once at construction, against the compiled plan.
///
/// Reentrancy: run() may be called from any number of threads
/// concurrently. Each call borrows one of `contexts` pre-built
/// execution contexts (an arena holding every tensor slot of the plan
/// plus reused code/im2col scratch, so steady-state serving allocates
/// nothing per request beyond the returned tensor); callers beyond the
/// context count block until one frees up. The plan — op records,
/// integer code matrices, float weights — is shared read-only.
///
/// Batching invariant: every op treats batch samples independently
/// with a fixed per-sample reduction order, so outputs are bit-exact
/// identical no matter how requests are coalesced into batches.
/// serve::Server builds on this to make micro-batching a pure
/// scheduling concern.
///
/// Intra-op parallelism: the optional util::ExecContext is handed to
/// every kernel the interpreter drives (encode, integer conv/linear,
/// float GEMM/im2col), parallelizing *within* one forward. Kernels
/// chunk only over independent outputs, so results stay byte-identical
/// to serial execution at any thread count.
class EngineSession {
 public:
  /// Compiles the artifact internally — and, at the default PlanOpt::kO1,
  /// runs the deploy::optimize_plan pass pipeline over the result — and
  /// builds the session with `contexts` concurrent execution contexts
  /// (>= 1), an intra-op execution context (default: serial kernels),
  /// and a kernel backend (default: the scalar reference). Throws
  /// deploy::ArtifactError on malformed artifacts.
  explicit EngineSession(const deploy::QuantizedArtifact& artifact, int contexts = 1,
                         util::ExecContext exec = {},
                         std::unique_ptr<deploy::Backend> backend = nullptr,
                         PlanCheck check = PlanCheck::kNone,
                         PlanOpt opt = PlanOpt::kO1);

  /// Interprets a pre-compiled plan (compile once, build sessions
  /// cheaply — e.g. one per shard of a fleet). PlanCheck::kStrict
  /// re-verifies the handed-over plan before serving it.
  explicit EngineSession(deploy::ExecutionPlan plan, int contexts = 1,
                         util::ExecContext exec = {},
                         std::unique_ptr<deploy::Backend> backend = nullptr,
                         PlanCheck check = PlanCheck::kNone);

  /// Shares one immutable compiled plan across any number of sessions
  /// without copying its weights/code matrices. Throws
  /// std::invalid_argument on a null plan, deploy::ArtifactError when
  /// PlanCheck::kStrict finds invariant violations.
  explicit EngineSession(std::shared_ptr<const deploy::ExecutionPlan> plan,
                         int contexts = 1, util::ExecContext exec = {},
                         std::unique_ptr<deploy::Backend> backend = nullptr,
                         PlanCheck check = PlanCheck::kNone);
  ~EngineSession();

  EngineSession(const EngineSession&) = delete;
  EngineSession& operator=(const EngineSession&) = delete;

  /// Runs a [N, ...sample_shape()] batch through the plan and returns
  /// [N, num_classes()] logits. Thread-safe. The batch is validated up
  /// front — N >= 1, rank, and every per-sample dimension — and any
  /// mismatch throws std::invalid_argument naming the expected
  /// per-sample shape (rather than surfacing as a deep kernel assert).
  tensor::Tensor run(const tensor::Tensor& batch);

  /// The compiled program this session interprets.
  const deploy::ExecutionPlan& plan() const { return *plan_; }

  /// Shape of one input sample (e.g. [C, H, W] for the CNNs, [F] for
  /// the MLP), inferred at plan compile time.
  const tensor::Shape& sample_shape() const { return plan_->sample_shape(); }
  int num_classes() const { return plan_->num_classes(); }
  int contexts() const { return static_cast<int>(contexts_.size()); }
  /// Kernel backend every op is dispatched through (already prepared
  /// against plan()).
  const deploy::Backend& backend() const { return *backend_; }
  /// Intra-op context the kernels run under (serial by default).
  const util::ExecContext& exec_context() const { return exec_; }
  /// Number of quantized layers executing on the integer path.
  std::size_t integer_layer_count() const { return plan_->integer_layers().size(); }

  /// Opt-in per-op tracing: when a sink is set, the interpreter loop
  /// times every PlanOp dispatch and reports it (see obs::OpEvent);
  /// with the default null sink the loop is exactly the untraced one —
  /// no clock reads, no virtual calls, no atomics. The sink is
  /// non-owning and must outlive the session (or be cleared first); it
  /// must be thread-safe, since every concurrent context reports into
  /// it (obs::PlanProfiler is). May be set or cleared while serving.
  void set_trace_sink(obs::TraceSink* sink) {
    trace_sink_.store(sink, std::memory_order_release);
  }
  obs::TraceSink* trace_sink() const {
    return trace_sink_.load(std::memory_order_acquire);
  }

 private:
  struct Context;

  Context& acquire_context();
  void release_context(Context& ctx);

  /// Resolves one op record's slot pointers and dispatches it to the
  /// backend against a context's arena for a batch of `batch` samples.
  void execute(Context& ctx, const deploy::PlanOp& op, int batch);

  float* slot_data(Context& ctx, int slot, int batch);

  util::ExecContext exec_;  ///< intra-op context for all kernels
  std::shared_ptr<const deploy::ExecutionPlan> plan_;  ///< shared, read-only
  std::unique_ptr<deploy::Backend> backend_;  ///< kernel dispatch, prepared once
  std::atomic<obs::TraceSink*> trace_sink_{nullptr};  ///< per-op profiling hook
  std::vector<std::unique_ptr<Context>> contexts_;
  std::vector<Context*> free_contexts_;
  std::mutex mutex_;
  std::condition_variable context_available_;
};

}  // namespace cq::serve
