#pragma once

#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "deploy/artifact.h"
#include "deploy/int_engine.h"
#include "tensor/tensor.h"
#include "util/exec_context.h"

namespace cq::nn {
class ActQuant;
class BasicBlock;
class Module;
class Sequential;
}  // namespace cq::nn

namespace cq::serve {

/// Integer-arithmetic inference session over a deployed artifact.
///
/// An EngineSession is the servable unit of the deployment story: it
/// loads a QuantizedArtifact once, expands every packed layer into an
/// IntegerLayer (deploy::build_integer_layer), and then answers
/// run(batch) calls by driving encode_activations +
/// integer_conv_forward / integer_linear_forward through the whole
/// network — the execution an integer NPU would perform, end to end
/// rather than one layer at a time. Unquantized modules (first/output
/// layers, batch-norm, pooling) run their regular float forward.
///
/// Reentrancy: run() may be called from any number of threads
/// concurrently. Each call borrows one of `contexts` pre-built
/// execution contexts (its own instantiated module chain plus a reused
/// activation-code buffer, so steady-state serving does not allocate
/// codes per request); callers beyond the context count block until
/// one frees up. The integer code matrices are shared read-only.
///
/// Batching invariant: every operator in the executed graph treats
/// batch samples independently with a fixed per-sample reduction
/// order, so outputs are bit-exact identical no matter how requests
/// are coalesced into batches. serve::Server builds on this to make
/// micro-batching a pure scheduling concern.
///
/// Intra-op parallelism: the optional util::ExecContext is handed to
/// every kernel of the executed graph (encode, integer conv/linear,
/// and the float layers' GEMMs), parallelizing *within* one forward.
/// Kernels chunk only over independent outputs, so results stay
/// byte-identical to serial execution at any thread count. Concurrent
/// run() calls may share the context's pool; its chunk cursor keeps
/// every caller making progress.
class EngineSession {
 public:
  /// Builds the session with `contexts` concurrent execution contexts
  /// (>= 1) and an intra-op execution context (default: serial
  /// kernels). Throws deploy::ArtifactError on malformed artifacts.
  explicit EngineSession(const deploy::QuantizedArtifact& artifact, int contexts = 1,
                         util::ExecContext exec = {});
  ~EngineSession();

  EngineSession(const EngineSession&) = delete;
  EngineSession& operator=(const EngineSession&) = delete;

  /// Runs a [N, ...sample_shape()] batch through the integer pipeline
  /// and returns [N, num_classes()] logits. Thread-safe.
  tensor::Tensor run(const tensor::Tensor& batch);

  /// Shape of one input sample (e.g. [C, H, W] for the CNNs, [F] for
  /// the MLP), derived from the artifact's architecture descriptor.
  const tensor::Shape& sample_shape() const { return sample_shape_; }
  int num_classes() const { return num_classes_; }
  int contexts() const { return static_cast<int>(contexts_.size()); }
  /// Intra-op context the kernels run under (serial by default).
  const util::ExecContext& exec_context() const { return exec_; }
  /// Number of quantized layers executing on the integer path.
  std::size_t integer_layer_count() const { return layers_.size(); }

 private:
  struct Context;

  /// Activation-code grid the current tensor lives on: set right after
  /// an ActQuant, preserved through value-preserving modules (max
  /// pooling, flatten, probes), consumed by the next quantized layer.
  struct Grid {
    float hi = 0.0f;
    int bits = 0;
    bool valid = false;
  };

  /// Grid the quantizer's outputs sit on — the single definition of
  /// when an activation tensor is integer-encodable
  /// (encode_activations' domain: bits in [1, 16], positive clip).
  static Grid grid_after(const nn::ActQuant& aq);

  Context& acquire_context();
  void release_context(Context& ctx);

  tensor::Tensor exec_sequential(Context& ctx, nn::Sequential& chain, tensor::Tensor x,
                                 Grid& grid);
  tensor::Tensor exec_module(Context& ctx, nn::Module& module, tensor::Tensor x,
                             Grid& grid);
  tensor::Tensor exec_block(Context& ctx, nn::BasicBlock& block, tensor::Tensor x,
                            Grid& grid);
  /// Integer path for a quantized Conv2d/Linear when the input sits on
  /// a valid activation grid; float fake-quant forward otherwise.
  tensor::Tensor exec_quantized(Context& ctx, nn::Module& module, tensor::Tensor x,
                                const Grid& grid);

  util::ExecContext exec_;  ///< intra-op context for all kernels
  std::vector<deploy::IntegerLayer> layers_;  ///< shared, read-only after init
  std::vector<std::unique_ptr<Context>> contexts_;
  std::vector<Context*> free_contexts_;
  std::mutex mutex_;
  std::condition_variable context_available_;

  tensor::Shape sample_shape_;
  int num_classes_ = 0;
};

}  // namespace cq::serve
