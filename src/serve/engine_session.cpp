#include "serve/engine_session.h"

#include <cstring>
#include <limits>
#include <stdexcept>
#include <utility>

#include "deploy/int_engine.h"
#include "quant/uniform.h"
#include "tensor/ops.h"

namespace cq::serve {

/// One concurrent execution lane: the slot arena (every tensor of the
/// plan, laid out by the compile-time buffer planner and scaled by the
/// batch size) plus the reused activation-code and im2col scratch. The
/// arena grows to the largest batch seen, then serving is
/// allocation-free per request.
struct EngineSession::Context {
  std::vector<float> arena;
  deploy::ActCodes codes;
  std::vector<std::int32_t> int_cols;
  std::vector<float> float_cols;
};

namespace {

/// Shared fail-fast validation: the artifact constructor runs it
/// *before* paying for the plan compile.
int required_contexts(int contexts) {
  if (contexts < 1) {
    throw std::invalid_argument("EngineSession: contexts must be >= 1");
  }
  return contexts;
}

}  // namespace

EngineSession::EngineSession(const deploy::QuantizedArtifact& artifact, int contexts,
                             util::ExecContext exec)
    : EngineSession((required_contexts(contexts),
                     std::make_shared<const deploy::ExecutionPlan>(
                         deploy::compile_plan(artifact))),
                    contexts, exec) {}

EngineSession::EngineSession(deploy::ExecutionPlan plan, int contexts,
                             util::ExecContext exec)
    : EngineSession(std::make_shared<const deploy::ExecutionPlan>(std::move(plan)),
                    contexts, exec) {}

EngineSession::EngineSession(std::shared_ptr<const deploy::ExecutionPlan> plan,
                             int contexts, util::ExecContext exec)
    : exec_(exec), plan_(std::move(plan)) {
  if (plan_ == nullptr) {
    throw std::invalid_argument("EngineSession: plan must not be null");
  }
  required_contexts(contexts);
  for (int i = 0; i < contexts; ++i) {
    auto ctx = std::make_unique<Context>();
    // im2col scratch is per image, so its compile-time maximum is
    // batch-independent; sizing it here keeps the hot path clean.
    ctx->float_cols.resize(plan_->max_float_cols());
    ctx->int_cols.reserve(plan_->max_int_cols());
    contexts_.push_back(std::move(ctx));
    free_contexts_.push_back(contexts_.back().get());
  }
}

EngineSession::~EngineSession() = default;

EngineSession::Context& EngineSession::acquire_context() {
  std::unique_lock<std::mutex> lock(mutex_);
  context_available_.wait(lock, [this] { return !free_contexts_.empty(); });
  Context* ctx = free_contexts_.back();
  free_contexts_.pop_back();
  return *ctx;
}

void EngineSession::release_context(Context& ctx) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    free_contexts_.push_back(&ctx);
  }
  context_available_.notify_one();
}

float* EngineSession::slot_data(Context& ctx, int slot, int batch) {
  return ctx.arena.data() + plan_->slots()[static_cast<std::size_t>(slot)].offset *
                                static_cast<std::size_t>(batch);
}

tensor::Tensor EngineSession::run(const tensor::Tensor& batch) {
  const tensor::Shape& sample = plan_->sample_shape();
  if (batch.rank() != sample.size() + 1 || batch.dim(0) < 1) {
    throw std::invalid_argument("EngineSession::run: batch must be [N, " +
                                tensor::shape_to_string(sample).substr(1));
  }
  for (std::size_t d = 0; d < sample.size(); ++d) {
    if (batch.dim(d + 1) != sample[d]) {
      throw std::invalid_argument("EngineSession::run: sample shape mismatch, want " +
                                  tensor::shape_to_string(sample));
    }
  }
  const int n = batch.dim(0);

  Context& ctx = acquire_context();
  struct Releaser {
    EngineSession* session;
    Context* ctx;
    ~Releaser() { session->release_context(*ctx); }
  } releaser{this, &ctx};

  const std::size_t arena_floats = plan_->arena_floats() * static_cast<std::size_t>(n);
  if (ctx.arena.size() < arena_floats) ctx.arena.resize(arena_floats);
  ctx.codes.codes.reserve(plan_->max_encode_floats() * static_cast<std::size_t>(n));

  std::memcpy(slot_data(ctx, plan_->input_slot(), n), batch.data(),
              batch.numel() * sizeof(float));
  for (const deploy::PlanOp& op : plan_->ops()) execute(ctx, op, n);

  tensor::Tensor out({n, plan_->num_classes()});
  std::memcpy(out.data(), slot_data(ctx, plan_->output_slot(), n),
              out.numel() * sizeof(float));
  return out;
}

void EngineSession::execute(Context& ctx, const deploy::PlanOp& op, int batch) {
  const std::vector<deploy::PlanSlot>& slots = plan_->slots();
  const std::size_t out_numel =
      slots[static_cast<std::size_t>(op.out)].numel * static_cast<std::size_t>(batch);
  const float* in0 = slot_data(ctx, op.in0, batch);
  float* out = slot_data(ctx, op.out, batch);

  // Every case reproduces the float arithmetic of the module it was
  // lowered from, expression for expression — the plan-vs-module
  // byte-identity property test pins this down.
  switch (op.kind) {
    case deploy::OpKind::EncodeAct: {
      const quant::UniformRange range{0.0f, op.act_hi};
      quant::quantize_span({in0, out_numel}, {out, out_numel}, range, op.act_bits);
      return;
    }
    case deploy::OpKind::Relu: {
      for (std::size_t i = 0; i < out_numel; ++i) {
        out[i] = in0[i] > 0.0f ? in0[i] : 0.0f;
      }
      return;
    }
    case deploy::OpKind::Flatten: {
      // Pure reshape; free when the planner aliased the slots.
      if (out != in0) std::memcpy(out, in0, out_numel * sizeof(float));
      return;
    }
    case deploy::OpKind::Add: {
      const float* in1 = slot_data(ctx, op.in1, batch);
      for (std::size_t i = 0; i < out_numel; ++i) out[i] = in0[i] + in1[i];
      return;
    }
    case deploy::OpKind::BatchNorm: {
      const int spatial = op.in_h * op.in_w;
      for (int c = 0; c < op.in_c; ++c) {
        const auto ci = static_cast<std::size_t>(c);
        const float mean = op.bn_mean[ci];
        const float inv_std = op.bn_inv_std[ci];
        const float g = op.bn_gamma[ci];
        const float b = op.bn_beta[ci];
        for (int n = 0; n < batch; ++n) {
          const std::size_t off =
              (static_cast<std::size_t>(n) * op.in_c + ci) * spatial;
          const float* src = in0 + off;
          float* dst = out + off;
          for (int s = 0; s < spatial; ++s) {
            const float xh = (src[s] - mean) * inv_std;
            dst[s] = g * xh + b;
          }
        }
      }
      return;
    }
    case deploy::OpKind::MaxPool: {
      std::size_t oidx = 0;
      for (int n = 0; n < batch; ++n) {
        for (int c = 0; c < op.in_c; ++c) {
          const float* plane =
              in0 + (static_cast<std::size_t>(n) * op.in_c + c) * op.in_h * op.in_w;
          for (int y = 0; y < op.out_h; ++y) {
            for (int x = 0; x < op.out_w; ++x, ++oidx) {
              float best = -std::numeric_limits<float>::infinity();
              for (int ky = 0; ky < op.kernel; ++ky) {
                const int iy = y * op.stride + ky;
                for (int kx = 0; kx < op.kernel; ++kx) {
                  const int ix = x * op.stride + kx;
                  const float v = plane[iy * op.in_w + ix];
                  if (v > best) best = v;
                }
              }
              out[oidx] = best;
            }
          }
        }
      }
      return;
    }
    case deploy::OpKind::AvgPool: {
      const int spatial = op.in_h * op.in_w;
      const float inv = 1.0f / static_cast<float>(spatial);
      for (int n = 0; n < batch; ++n) {
        for (int c = 0; c < op.in_c; ++c) {
          const float* plane =
              in0 + (static_cast<std::size_t>(n) * op.in_c + c) * spatial;
          double acc = 0.0;
          for (int s = 0; s < spatial; ++s) acc += plane[s];
          out[static_cast<std::size_t>(n) * op.in_c + c] =
              static_cast<float>(acc) * inv;
        }
      }
      return;
    }
    case deploy::OpKind::FloatConv: {
      tensor::ConvGeometry g;
      g.in_c = op.in_c;
      g.in_h = op.in_h;
      g.in_w = op.in_w;
      g.kernel = op.kernel;
      g.stride = op.stride;
      g.pad = op.pad;
      const int spatial = op.out_h * op.out_w;
      const std::size_t in_stride =
          static_cast<std::size_t>(op.in_c) * op.in_h * op.in_w;
      const std::size_t out_stride = static_cast<std::size_t>(op.out_c) * spatial;
      for (int n = 0; n < batch; ++n) {
        tensor::im2col(in0 + static_cast<std::size_t>(n) * in_stride, g,
                       ctx.float_cols.data(), exec_);
        float* out_n = out + static_cast<std::size_t>(n) * out_stride;
        tensor::gemm(op.weight.data(), ctx.float_cols.data(), out_n, op.out_c,
                     g.patch_size(), spatial, /*accumulate=*/false, exec_);
        for (int c = 0; c < op.out_c; ++c) {
          const float b = op.bias[static_cast<std::size_t>(c)];
          if (b == 0.0f) continue;
          float* plane = out_n + static_cast<std::size_t>(c) * spatial;
          for (int s = 0; s < spatial; ++s) plane[s] += b;
        }
      }
      return;
    }
    case deploy::OpKind::FloatLinear: {
      tensor::gemm_a_bt(in0, op.weight.data(), out, batch, op.in_features,
                        op.out_features, /*accumulate=*/false, exec_);
      for (int n = 0; n < batch; ++n) {
        float* row = out + static_cast<std::size_t>(n) * op.out_features;
        for (int k = 0; k < op.out_features; ++k) {
          row[k] += op.bias[static_cast<std::size_t>(k)];
        }
      }
      return;
    }
    case deploy::OpKind::IntConv: {
      deploy::encode_activations_into(
          in0, slots[static_cast<std::size_t>(op.in0)].numel *
                   static_cast<std::size_t>(batch),
          op.act_hi, op.act_bits, ctx.codes, exec_);
      deploy::integer_conv_forward_into(
          plan_->integer_layers()[static_cast<std::size_t>(op.layer)], ctx.codes,
          batch, op.in_c, op.in_h, op.in_w, op.kernel, op.stride, op.pad, out,
          ctx.int_cols, exec_);
      return;
    }
    case deploy::OpKind::IntLinear: {
      deploy::encode_activations_into(
          in0, static_cast<std::size_t>(op.in_features) * static_cast<std::size_t>(batch),
          op.act_hi, op.act_bits, ctx.codes, exec_);
      deploy::integer_linear_forward_into(
          plan_->integer_layers()[static_cast<std::size_t>(op.layer)], ctx.codes,
          batch, op.in_features, out, exec_);
      return;
    }
  }
}

}  // namespace cq::serve
