#include "serve/engine_session.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "nn/act_quant.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/models/model.h"
#include "nn/models/resnet20.h"
#include "nn/pooling.h"
#include "nn/probe.h"

namespace cq::serve {

namespace {

void relu_inplace(tensor::Tensor& t) {
  for (float& v : t.span()) v = std::max(0.0f, v);
}

/// Bias vector of a quantizable layer (the integer kernels add it per
/// output; pruned filters suppress it inside the kernel).
std::vector<float> bias_of(quant::QuantizableLayer& layer) {
  nn::Parameter* bias = nullptr;
  if (auto* conv = dynamic_cast<nn::Conv2d*>(&layer)) {
    bias = &conv->bias();
  } else if (auto* fc = dynamic_cast<nn::Linear*>(&layer)) {
    bias = &fc->bias();
  } else {
    throw deploy::ArtifactError(
        "EngineSession: quantizable layer is neither Conv2d nor Linear");
  }
  const std::span<const float> values = bias->value.span();
  return {values.begin(), values.end()};
}

const nn::Module* as_module(quant::QuantizableLayer* layer) {
  auto* module = dynamic_cast<nn::Module*>(layer);
  if (module == nullptr) {
    throw deploy::ArtifactError("EngineSession: quantizable layer is not a module");
  }
  return module;
}

}  // namespace

/// One concurrent execution lane: its own instantiated module chain
/// (module forward() calls cache state, so a chain must never be shared
/// between in-flight requests) plus the reused activation-code buffer.
struct EngineSession::Context {
  std::unique_ptr<nn::Model> model;
  std::unordered_map<const nn::Module*, std::size_t> integer_index;
  deploy::ActCodes scratch;
};

EngineSession::EngineSession(const deploy::QuantizedArtifact& artifact, int contexts,
                             util::ExecContext exec)
    : exec_(exec) {
  if (contexts < 1) {
    throw std::invalid_argument("EngineSession: contexts must be >= 1");
  }
  num_classes_ = artifact.arch.int_param("num_classes");
  if (artifact.arch.params.count("in_features") != 0) {
    sample_shape_ = {artifact.arch.int_param("in_features")};
  } else {
    const int channels = artifact.arch.int_param("in_channels");
    const int size = artifact.arch.int_param("image_size");
    sample_shape_ = {channels, size, size};
  }

  for (int i = 0; i < contexts; ++i) {
    auto ctx = std::make_unique<Context>();
    ctx->model = deploy::instantiate(artifact);
    // Float-path layers (stem/output) run the same intra-op context as
    // the integer kernels.
    ctx->model->set_exec_context(exec_);
    contexts_.push_back(std::move(ctx));
  }

  // Expand every packed layer into its integer code matrix once; the
  // scored-layer traversal is the exact order export_model packed them
  // in (instantiate() already validated the counts line up).
  std::size_t next = 0;
  for (const nn::ScoredLayerRef& ref : contexts_.front()->model->scored_layers()) {
    for (quant::QuantizableLayer* layer : ref.layers) {
      layers_.push_back(
          deploy::build_integer_layer(artifact.packed_layers[next], bias_of(*layer)));
      ++next;
    }
  }

  for (auto& ctx : contexts_) {
    std::size_t index = 0;
    for (const nn::ScoredLayerRef& ref : ctx->model->scored_layers()) {
      for (quant::QuantizableLayer* layer : ref.layers) {
        ctx->integer_index.emplace(as_module(layer), index++);
      }
    }
    free_contexts_.push_back(ctx.get());
  }
}

EngineSession::~EngineSession() = default;

EngineSession::Grid EngineSession::grid_after(const nn::ActQuant& aq) {
  Grid grid;
  grid.hi = aq.max_activation();
  grid.bits = aq.bits();
  grid.valid = grid.bits >= 1 && grid.bits <= 16 && grid.hi > 0.0f;
  return grid;
}

EngineSession::Context& EngineSession::acquire_context() {
  std::unique_lock<std::mutex> lock(mutex_);
  context_available_.wait(lock, [this] { return !free_contexts_.empty(); });
  Context* ctx = free_contexts_.back();
  free_contexts_.pop_back();
  return *ctx;
}

void EngineSession::release_context(Context& ctx) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    free_contexts_.push_back(&ctx);
  }
  context_available_.notify_one();
}

tensor::Tensor EngineSession::run(const tensor::Tensor& batch) {
  if (batch.rank() != sample_shape_.size() + 1 || batch.dim(0) < 1) {
    throw std::invalid_argument("EngineSession::run: batch must be [N, " +
                                tensor::shape_to_string(sample_shape_).substr(1));
  }
  for (std::size_t d = 0; d < sample_shape_.size(); ++d) {
    if (batch.dim(d + 1) != sample_shape_[d]) {
      throw std::invalid_argument("EngineSession::run: sample shape mismatch, want " +
                                  tensor::shape_to_string(sample_shape_));
    }
  }

  Context& ctx = acquire_context();
  struct Releaser {
    EngineSession* session;
    Context* ctx;
    ~Releaser() { session->release_context(*ctx); }
  } releaser{this, &ctx};

  Grid grid;
  return exec_sequential(ctx, ctx.model->body(), batch, grid);
}

tensor::Tensor EngineSession::exec_sequential(Context& ctx, nn::Sequential& chain,
                                              tensor::Tensor x, Grid& grid) {
  for (std::size_t i = 0; i < chain.size(); ++i) {
    x = exec_module(ctx, *chain.at(i), std::move(x), grid);
  }
  return x;
}

tensor::Tensor EngineSession::exec_module(Context& ctx, nn::Module& module,
                                          tensor::Tensor x, Grid& grid) {
  if (auto* block = dynamic_cast<nn::BasicBlock*>(&module)) {
    return exec_block(ctx, *block, std::move(x), grid);
  }
  if (auto* chain = dynamic_cast<nn::Sequential*>(&module)) {
    return exec_sequential(ctx, *chain, std::move(x), grid);
  }
  if (auto* aq = dynamic_cast<nn::ActQuant*>(&module)) {
    tensor::Tensor out = aq->forward(x);
    grid = grid_after(*aq);
    return out;
  }
  if (dynamic_cast<nn::Conv2d*>(&module) != nullptr ||
      dynamic_cast<nn::Linear*>(&module) != nullptr) {
    tensor::Tensor out = exec_quantized(ctx, module, std::move(x), grid);
    grid.valid = false;
    return out;
  }
  if (dynamic_cast<nn::MaxPool2d*>(&module) != nullptr ||
      dynamic_cast<nn::Flatten*>(&module) != nullptr ||
      dynamic_cast<nn::Probe*>(&module) != nullptr) {
    // Value-preserving modules: the outputs still sit on the same
    // activation-code grid (a max over grid points is a grid point).
    return module.forward(x);
  }
  grid.valid = false;
  return module.forward(x);
}

tensor::Tensor EngineSession::exec_quantized(Context& ctx, nn::Module& module,
                                             tensor::Tensor x, const Grid& grid) {
  const auto it = ctx.integer_index.find(&module);
  if (it == ctx.integer_index.end() || !grid.valid) {
    // Unquantized layer (first/output), or activations are not on an
    // integer grid (activation quantization disabled): float forward.
    return module.forward(x);
  }
  const deploy::IntegerLayer& layer = layers_[it->second];
  deploy::encode_activations_into(x, grid.hi, grid.bits, ctx.scratch, exec_);
  const int batch = x.dim(0);
  if (auto* conv = dynamic_cast<nn::Conv2d*>(&module)) {
    return deploy::integer_conv_forward(layer, ctx.scratch, batch, conv->in_channels(),
                                        x.dim(2), x.dim(3), conv->kernel(),
                                        conv->stride(), conv->pad(), exec_);
  }
  auto& fc = dynamic_cast<nn::Linear&>(module);
  return deploy::integer_linear_forward(layer, ctx.scratch, batch, fc.in_features(),
                                        exec_);
}

tensor::Tensor EngineSession::exec_block(Context& ctx, nn::BasicBlock& block,
                                         tensor::Tensor x, Grid& grid) {
  const Grid entry_grid = grid;  // both conv1 and the projection read it

  // Main branch: conv1 -> bn1 -> relu -> probe1 -> aq1 -> conv2 -> bn2.
  tensor::Tensor h = exec_quantized(ctx, *block.conv1(), x, entry_grid);
  h = block.bn1()->forward(h);
  relu_inplace(h);
  h = block.probe1()->forward(h);
  h = block.act_quant1()->forward(h);
  const Grid mid_grid = grid_after(*block.act_quant1());
  tensor::Tensor main = exec_quantized(ctx, *block.conv2(), std::move(h), mid_grid);
  main = block.bn2()->forward(main);

  // Shortcut: identity or 1x1 projection (same add order as
  // BasicBlock::forward so float results match bit-for-bit).
  if (block.downsample_conv() != nullptr) {
    tensor::Tensor shortcut = exec_quantized(ctx, *block.downsample_conv(),
                                             std::move(x), entry_grid);
    shortcut = block.downsample_bn()->forward(shortcut);
    main += shortcut;
  } else {
    main += x;
  }

  relu_inplace(main);
  main = block.probe2()->forward(main);
  tensor::Tensor out = block.act_quant2()->forward(main);
  grid = grid_after(*block.act_quant2());
  return out;
}

}  // namespace cq::serve
