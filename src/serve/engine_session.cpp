#include "serve/engine_session.h"

#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "deploy/passes/passes.h"
#include "deploy/verify.h"
#include "tensor/ops.h"

namespace cq::serve {

/// One concurrent execution lane: the slot arena (every tensor of the
/// plan, laid out by the compile-time buffer planner and scaled by the
/// batch size) plus the backend scratch (reused activation-code and
/// im2col buffers). The arena grows to the largest batch seen, then
/// serving is allocation-free per request.
struct EngineSession::Context {
  std::vector<float> arena;
  deploy::BackendScratch scratch;
};

namespace {

/// Shared fail-fast validation: the artifact constructor runs it
/// *before* paying for the plan compile.
int required_contexts(int contexts) {
  if (contexts < 1) {
    throw std::invalid_argument("EngineSession: contexts must be >= 1");
  }
  return contexts;
}

/// Compile, then (at kO1) run the optimizer pass pipeline. Every pass
/// is byte-exact and re-verified, so the session's outputs are
/// independent of the opt level.
deploy::ExecutionPlan compile_session_plan(const deploy::QuantizedArtifact& artifact,
                                           PlanOpt opt) {
  deploy::ExecutionPlan plan = deploy::compile_plan(artifact);
  if (opt == PlanOpt::kO1) deploy::optimize_plan(plan);
  return plan;
}

}  // namespace

EngineSession::EngineSession(const deploy::QuantizedArtifact& artifact, int contexts,
                             util::ExecContext exec,
                             std::unique_ptr<deploy::Backend> backend,
                             PlanCheck check, PlanOpt opt)
    : EngineSession((required_contexts(contexts),
                     std::make_shared<const deploy::ExecutionPlan>(
                         compile_session_plan(artifact, opt))),
                    contexts, exec, std::move(backend), check) {}

EngineSession::EngineSession(deploy::ExecutionPlan plan, int contexts,
                             util::ExecContext exec,
                             std::unique_ptr<deploy::Backend> backend,
                             PlanCheck check)
    : EngineSession(std::make_shared<const deploy::ExecutionPlan>(std::move(plan)),
                    contexts, exec, std::move(backend), check) {}

EngineSession::EngineSession(std::shared_ptr<const deploy::ExecutionPlan> plan,
                             int contexts, util::ExecContext exec,
                             std::unique_ptr<deploy::Backend> backend,
                             PlanCheck check)
    : exec_(exec), plan_(std::move(plan)), backend_(std::move(backend)) {
  if (plan_ == nullptr) {
    throw std::invalid_argument("EngineSession: plan must not be null");
  }
  required_contexts(contexts);
  if (check == PlanCheck::kStrict) {
    // The interpreter and backends below assume every IR invariant the
    // verifier proves (slot lifetimes, aliasing legality, overflow
    // bounds); strict sessions refuse to serve a plan that breaks one.
    const deploy::VerifyReport report = deploy::verify_plan(*plan_);
    if (!report.clean()) {
      throw deploy::ArtifactError("EngineSession: plan fails verification:\n" +
                                  deploy::format_diagnostics(report));
    }
  }
  if (backend_ == nullptr) backend_ = deploy::make_backend(deploy::BackendKind::Scalar);
  // The one-time hook: backends build packed/retiled weight layouts
  // here, before any context can run an op.
  backend_->prepare(*plan_);
  for (int i = 0; i < contexts; ++i) {
    auto ctx = std::make_unique<Context>();
    // im2col scratch is per image, so its compile-time maximum is
    // batch-independent; sizing it here keeps the hot path clean.
    ctx->scratch.float_cols.resize(plan_->max_float_cols());
    ctx->scratch.int_cols.reserve(plan_->max_int_cols());
    contexts_.push_back(std::move(ctx));
    free_contexts_.push_back(contexts_.back().get());
  }
}

EngineSession::~EngineSession() = default;

EngineSession::Context& EngineSession::acquire_context() {
  std::unique_lock<std::mutex> lock(mutex_);
  context_available_.wait(lock, [this] { return !free_contexts_.empty(); });
  Context* ctx = free_contexts_.back();
  free_contexts_.pop_back();
  return *ctx;
}

void EngineSession::release_context(Context& ctx) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    free_contexts_.push_back(&ctx);
  }
  context_available_.notify_one();
}

float* EngineSession::slot_data(Context& ctx, int slot, int batch) {
  return ctx.arena.data() + plan_->slots()[static_cast<std::size_t>(slot)].offset *
                                static_cast<std::size_t>(batch);
}

tensor::Tensor EngineSession::run(const tensor::Tensor& batch) {
  const tensor::Shape& sample = plan_->sample_shape();
  const auto want = [&sample] {
    return tensor::shape_to_string(sample) + " (" +
           std::to_string(tensor::shape_numel(sample)) + " floats/sample)";
  };
  if (batch.rank() != sample.size() + 1) {
    throw std::invalid_argument(
        "EngineSession::run: input must be [N, ...] with per-sample shape " + want() +
        "; got " + tensor::shape_to_string(batch.shape()));
  }
  if (batch.dim(0) < 1) {
    throw std::invalid_argument(
        "EngineSession::run: batch must be >= 1 sample of shape " + want() + "; got " +
        tensor::shape_to_string(batch.shape()));
  }
  for (std::size_t d = 0; d < sample.size(); ++d) {
    if (batch.dim(d + 1) != sample[d]) {
      throw std::invalid_argument(
          "EngineSession::run: per-sample shape mismatch; want " + want() + ", got " +
          tensor::shape_to_string(batch.shape()));
    }
  }
  const int n = batch.dim(0);

  Context& ctx = acquire_context();
  struct Releaser {
    EngineSession* session;
    Context* ctx;
    ~Releaser() { session->release_context(*ctx); }
  } releaser{this, &ctx};

  const std::size_t arena_floats = plan_->arena_floats() * static_cast<std::size_t>(n);
  if (ctx.arena.size() < arena_floats) ctx.arena.resize(arena_floats);
  ctx.scratch.codes.codes.reserve(plan_->max_encode_floats() *
                                  static_cast<std::size_t>(n));

  std::memcpy(slot_data(ctx, plan_->input_slot(), n), batch.data(),
              batch.numel() * sizeof(float));
  obs::TraceSink* const sink = trace_sink_.load(std::memory_order_acquire);
  if (sink == nullptr) {
    // The default path stays exactly the untraced interpreter loop —
    // profiling must be zero-cost when off.
    for (const deploy::PlanOp& op : plan_->ops()) execute(ctx, op, n);
  } else {
    const std::vector<deploy::PlanOp>& ops = plan_->ops();
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const auto begin = std::chrono::steady_clock::now();
      execute(ctx, ops[i], n);
      const auto end = std::chrono::steady_clock::now();
      obs::OpEvent event;
      event.op = static_cast<int>(i);
      event.batch = n;
      event.ns = std::chrono::duration<double, std::nano>(end - begin).count();
      sink->on_op(event);
    }
  }

  tensor::Tensor out({n, plan_->num_classes()});
  std::memcpy(out.data(), slot_data(ctx, plan_->output_slot(), n),
              out.numel() * sizeof(float));
  return out;
}

void EngineSession::execute(Context& ctx, const deploy::PlanOp& op, int batch) {
  deploy::BackendIo io;
  io.in0 = slot_data(ctx, op.in0, batch);
  io.in1 = op.in1 >= 0 ? slot_data(ctx, op.in1, batch) : nullptr;
  io.out = slot_data(ctx, op.out, batch);
  io.batch = batch;
  backend_->run(op, *plan_, io, ctx.scratch, exec_);
}

}  // namespace cq::serve
