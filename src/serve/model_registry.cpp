#include "serve/model_registry.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "deploy/passes/passes.h"
#include "deploy/verify.h"
#include "util/logging.h"

namespace cq::serve {

namespace {

std::string bytes_human(std::size_t bytes) {
  char buf[32];
  if (bytes >= (std::size_t{1} << 20)) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB",
                  static_cast<double>(bytes) / static_cast<double>(1 << 20));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f KiB",
                  static_cast<double>(bytes) / static_cast<double>(1 << 10));
  }
  return buf;
}

}  // namespace

std::size_t plan_resident_bytes(const deploy::ExecutionPlan& plan) {
  std::size_t bytes = 0;
  for (const deploy::PlanOp& op : plan.ops()) {
    bytes += op.weight.numel() * sizeof(float);
    bytes += (op.bias.size() + op.bn_mean.size() + op.bn_inv_std.size() +
              op.bn_gamma.size() + op.bn_beta.size()) *
             sizeof(float);
  }
  for (const deploy::IntegerLayer& layer : plan.integer_layers()) {
    bytes += layer.codes.size() * sizeof(std::int32_t);
    bytes += layer.filter_bits.size();
    bytes += layer.bias.size() * sizeof(float);
  }
  return bytes;
}

ModelRegistry::~ModelRegistry() { unload_all(); }

std::shared_ptr<ModelRegistry::Entry> ModelRegistry::find(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(map_mutex_);
  const auto it = map_.find(name);
  return it == map_.end() ? nullptr : it->second;
}

std::shared_ptr<ModelRegistry::Entry> ModelRegistry::require(
    const std::string& name) const {
  std::shared_ptr<Entry> entry = find(name);
  if (entry == nullptr) {
    throw RegistryError("ModelRegistry: unknown model '" + name + "'");
  }
  return entry;
}

std::shared_ptr<ModelRegistry::Version> ModelRegistry::current_version(
    Entry& entry) const {
  std::lock_guard<std::mutex> lock(map_mutex_);
  return entry.current;
}

std::shared_ptr<ModelRegistry::Version> ModelRegistry::build_version(
    const std::string& name, const deploy::QuantizedArtifact& artifact,
    const ModelConfig& config, int number) const {
  auto plan = std::make_shared<deploy::ExecutionPlan>(deploy::compile_plan(artifact));
  if (config.server.opt == PlanOpt::kO1) {
    deploy::optimize_plan(*plan);
  }
  // The registry is the IR boundary for plans it builds itself: verify
  // before serving, exactly like a strict session would, but with the
  // registry naming the model in the refusal.
  const deploy::VerifyReport report = deploy::verify_plan(*plan);
  if (!report.clean()) {
    throw RegistryError("ModelRegistry: model '" + name + "' failed plan verify: " +
                        report.diagnostics.front().message);
  }

  auto version = std::make_shared<Version>();
  version->number = number;
  version->plan = plan;

  // First budget gate: the plan-level footprint (weights + codes +
  // per-context arenas) is known before any worker thread spins up, so
  // a hopeless load is refused cheaply.
  const int contexts = std::max(1, config.server.workers);
  const std::size_t plan_bytes =
      plan_resident_bytes(*plan) +
      plan->arena_bytes() * static_cast<std::size_t>(contexts);
  if (config.memory_budget_bytes != 0 && plan_bytes > config.memory_budget_bytes) {
    throw RegistryError("ModelRegistry: model '" + name + "' version " +
                        std::to_string(number) + " needs " + bytes_human(plan_bytes) +
                        " (plan + " + std::to_string(contexts) +
                        " arenas), over its " +
                        bytes_human(config.memory_budget_bytes) + " budget");
  }

  version->server = std::make_unique<Server>(plan, config.server);

  // Second gate, same load: backend-prepared packed state only exists
  // after prepare() ran. Enforcing it here keeps the budget honest for
  // backends that build large layouts.
  version->resident_bytes =
      plan_bytes + version->server->session().backend().prepared_bytes();
  if (config.memory_budget_bytes != 0 &&
      version->resident_bytes > config.memory_budget_bytes) {
    version->server->shutdown();
    throw RegistryError(
        "ModelRegistry: model '" + name + "' version " + std::to_string(number) +
        " needs " + bytes_human(version->resident_bytes) +
        " with backend-prepared state, over its " +
        bytes_human(config.memory_budget_bytes) + " budget");
  }
  return version;
}

void ModelRegistry::load(const std::string& name,
                         const deploy::QuantizedArtifact& artifact,
                         ModelConfig config) {
  if (name.empty() || name.size() > 256) {
    throw RegistryError("ModelRegistry: model name must be 1..256 bytes");
  }
  auto entry = std::make_shared<Entry>();
  entry->name = name;
  entry->config = config;
  entry->admitted = &entry->metrics.counter(
      "requests_admitted", "requests routed into the model's server");
  entry->shed = &entry->metrics.counter(
      "requests_shed", "requests answered BUSY by admission control");
  entry->swaps = &entry->metrics.counter("hot_swaps", "completed version swaps");
  entry->resident = &entry->metrics.gauge(
      "resident_bytes", "plan + arenas + backend-prepared footprint");
  entry->version = &entry->metrics.gauge("version", "artifact version serving");

  {
    // Reserve the name first so two concurrent loads cannot both build.
    std::lock_guard<std::mutex> lock(map_mutex_);
    if (map_.count(name) != 0) {
      throw RegistryError("ModelRegistry: model '" + name + "' is already loaded");
    }
    map_.emplace(name, entry);
  }
  try {
    std::lock_guard<std::mutex> admin(entry->admin_mutex);
    std::shared_ptr<Version> version = build_version(name, artifact, config, 1);
    entry->resident->set(static_cast<double>(version->resident_bytes));
    entry->version->set(1.0);
    std::lock_guard<std::mutex> lock(map_mutex_);
    entry->current = std::move(version);
  } catch (...) {
    std::lock_guard<std::mutex> lock(map_mutex_);
    map_.erase(name);
    throw;
  }
  util::log_info() << "ModelRegistry: loaded '" << name << "' v1";
}

int ModelRegistry::swap(const std::string& name,
                        const deploy::QuantizedArtifact& artifact) {
  std::shared_ptr<Entry> entry = require(name);
  std::lock_guard<std::mutex> admin(entry->admin_mutex);

  std::shared_ptr<Version> old = current_version(*entry);
  if (old == nullptr) {
    throw RegistryError("ModelRegistry: model '" + name + "' is unloading");
  }
  // Build the successor completely before touching the serving path;
  // any throw here leaves the old version serving untouched.
  std::shared_ptr<Version> next =
      build_version(name, artifact, entry->config, old->number + 1);

  {  // Atomic cutover: one pointer store under the map mutex.
    std::lock_guard<std::mutex> lock(map_mutex_);
    entry->current = next;
  }
  entry->swaps->inc();
  entry->resident->set(static_cast<double>(next->resident_bytes));
  entry->version->set(static_cast<double>(next->number));

  // Drain: requests admitted to the old version before the cutover
  // finish on the plan they started on (shutdown() completes the
  // queue); stragglers that raced the cutover get kClosed from the old
  // scheduler and are retried by submit() against `next`.
  old->server->shutdown();
  util::log_info() << "ModelRegistry: swapped '" << name << "' to v" << next->number;
  return next->number;
}

void ModelRegistry::unload(const std::string& name) {
  std::shared_ptr<Entry> entry = require(name);
  std::lock_guard<std::mutex> admin(entry->admin_mutex);
  std::shared_ptr<Version> old;
  {
    std::lock_guard<std::mutex> lock(map_mutex_);
    old = entry->current;
    entry->current.reset();
    map_.erase(name);
  }
  if (old != nullptr) old->server->shutdown();  // drain before the name vanishes
}

void ModelRegistry::unload_all() {
  std::vector<std::string> all = names();
  for (const std::string& name : all) {
    try {
      unload(name);
    } catch (const RegistryError&) {
      // Raced another unload; the name is already gone.
    }
  }
}

ModelRegistry::Admission ModelRegistry::submit(const std::string& name,
                                               tensor::Tensor sample) {
  Admission admission;
  std::shared_ptr<Entry> entry = find(name);
  if (entry == nullptr) {
    admission.outcome = Outcome::kUnknown;
    admission.reason = "unknown model '" + name + "'";
    return admission;
  }

  // Two attempts: a kClosed means the version drained between the
  // pointer read and the push (mid-swap race); the retry lands on the
  // successor. Two closed versions back to back means the model is
  // being unloaded.
  for (int attempt = 0; attempt < 2; ++attempt) {
    std::shared_ptr<Version> version = current_version(*entry);
    if (version == nullptr) {
      admission.outcome = Outcome::kUnknown;
      admission.reason = "model '" + name + "' is unloading";
      return admission;
    }

    // Admission control keyed on queue depth: shed before the bounded
    // queue is full when the operator configured a tighter threshold.
    const std::size_t cap = entry->config.admit_queue_depth != 0
                                ? entry->config.admit_queue_depth
                                : entry->config.server.queue_capacity;
    const std::size_t depth = version->server->queue_depth();
    if (depth >= cap) {
      entry->shed->inc();
      admission.outcome = Outcome::kShed;
      admission.reason = "model '" + name + "' over capacity (queue depth " +
                         std::to_string(depth) + " >= " + std::to_string(cap) + ")";
      return admission;
    }

    std::future<tensor::Tensor> future;
    switch (version->server->try_submit(sample, future)) {
      case Server::SubmitResult::kAdmitted:
        entry->admitted->inc();
        admission.outcome = Outcome::kAdmitted;
        admission.result = std::move(future);
        return admission;
      case Server::SubmitResult::kShed:
        entry->shed->inc();
        admission.outcome = Outcome::kShed;
        admission.reason = "model '" + name + "' queue is full";
        return admission;
      case Server::SubmitResult::kClosed:
        continue;  // raced a swap; retry on the successor version
    }
  }
  entry->shed->inc();
  admission.outcome = Outcome::kShed;
  admission.reason = "model '" + name + "' is draining";
  return admission;
}

bool ModelRegistry::has(const std::string& name) const { return find(name) != nullptr; }

std::vector<std::string> ModelRegistry::names() const {
  std::lock_guard<std::mutex> lock(map_mutex_);
  std::vector<std::string> out;
  out.reserve(map_.size());
  for (const auto& [name, entry] : map_) out.push_back(name);
  return out;
}

ModelInfo ModelRegistry::info(const std::string& name) const {
  std::shared_ptr<Entry> entry = require(name);
  std::shared_ptr<Version> version = current_version(*entry);
  if (version == nullptr) {
    throw RegistryError("ModelRegistry: model '" + name + "' is unloading");
  }
  ModelInfo info;
  info.name = name;
  info.version = version->number;
  info.sample_shape = version->plan->sample_shape();
  info.num_classes = version->plan->num_classes();
  info.resident_bytes = version->resident_bytes;
  info.memory_budget_bytes = entry->config.memory_budget_bytes;
  info.ops = version->plan->ops().size();
  info.requests_admitted = entry->admitted->value();
  info.requests_shed = entry->shed->value();
  return info;
}

ServerStats ModelRegistry::stats(const std::string& name) const {
  std::shared_ptr<Entry> entry = require(name);
  std::shared_ptr<Version> version = current_version(*entry);
  if (version == nullptr) {
    throw RegistryError("ModelRegistry: model '" + name + "' is unloading");
  }
  return version->server->stats();
}

const obs::Registry& ModelRegistry::metrics(const std::string& name) const {
  return require(name)->metrics;
}

std::string ModelRegistry::server_metrics_json(const std::string& name) const {
  std::shared_ptr<Entry> entry = require(name);
  std::shared_ptr<Version> version = current_version(*entry);
  if (version == nullptr) {
    throw RegistryError("ModelRegistry: model '" + name + "' is unloading");
  }
  return version->server->metrics().to_json();
}

}  // namespace cq::serve
