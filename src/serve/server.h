#pragma once

#include <chrono>
#include <cstddef>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "deploy/artifact.h"
#include "deploy/backend.h"
#include "serve/batch_scheduler.h"
#include "serve/engine_session.h"
#include "util/thread_pool.h"

namespace cq::serve {

struct ServerConfig {
  int workers = 1;              ///< batch workers (= engine contexts); < 1 becomes 1
  /// Threads one forward pass may occupy (intra-op parallelism); < 2
  /// keeps the kernels serial. The server owns one shared intra-op
  /// pool of (intra_threads - 1) helpers, so total CPU demand is about
  /// workers + intra_threads - 1; size workers * intra_threads toward
  /// the core count (inter-op scales with concurrent load, intra-op
  /// cuts single-request latency).
  int intra_threads = 1;
  /// Kernel backend the engine dispatches every plan op through
  /// (deploy::make_backend): the scalar reference or the
  /// blocked/packed integer backend. Both are byte-identical, so this
  /// only trades execution speed.
  deploy::BackendKind backend = deploy::BackendKind::Scalar;
  int max_batch = 16;           ///< micro-batch flush size
  long max_wait_us = 200;       ///< micro-batch flush age
  std::size_t queue_capacity = 1024;  ///< bounded request queue depth
};

/// Aggregate serving statistics since the server started (or the last
/// reset_stats()). Latencies cover submit() to promise fulfillment, in
/// microseconds; counts/mean/max span every completed request, while
/// the percentiles are computed over a sliding window of the most
/// recent requests so memory stays bounded under sustained traffic.
struct ServerStats {
  std::size_t completed = 0;      ///< requests answered
  std::size_t batches = 0;        ///< micro-batches executed
  double mean_batch = 0.0;        ///< average coalesced batch size
  std::size_t max_batch = 0;      ///< largest coalesced batch seen
  double p50_us = 0.0;            ///< percentiles: recent-window
  double p95_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;           ///< mean/max: all completed requests
  double max_us = 0.0;
  double elapsed_s = 0.0;         ///< wall time since start/reset
  double throughput_rps = 0.0;    ///< completed / elapsed_s
};

/// Batched multi-threaded inference server over a deployed artifact.
///
/// submit() enqueues one sample into the BatchScheduler and returns a
/// future; `workers` pool threads pop micro-batches, coalesce them into
/// a single tensor, run the EngineSession integer pipeline once, and
/// fan the rows back out to the per-request promises. Because
/// EngineSession::run is bit-exact under any coalescing, the same
/// inputs produce byte-identical outputs whatever batches the
/// scheduler happens to form.
class Server {
 public:
  explicit Server(const deploy::QuantizedArtifact& artifact, ServerConfig config = {});
  /// Shuts down (drains queued requests) and joins the workers.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Submits one sample (shape must equal session().sample_shape()
  /// exactly — a layout mismatch with the right element count would
  /// silently produce wrong logits) and returns a future for its
  /// [num_classes] logits row. Thread-safe. Shape mismatches and
  /// submits after shutdown() surface as exceptions on the future.
  std::future<tensor::Tensor> submit(tensor::Tensor sample);

  /// Stops accepting requests, drains the queue and joins the workers.
  /// Idempotent; the destructor calls it.
  void shutdown();

  /// Snapshot of latency/throughput counters. Thread-safe.
  ServerStats stats() const;

  /// Zeroes all counters and restarts the stats clock — call after a
  /// warmup phase so it does not pollute the reported numbers.
  void reset_stats();

  const EngineSession& session() const { return session_; }
  const ServerConfig& config() const { return config_; }

 private:
  void worker_loop();

  ServerConfig config_;
  /// Shared intra-op helper pool (workers participate in their own
  /// parallel_for, so it holds intra_threads - 1 helpers); declared
  /// before session_ so it outlives every kernel that chunks over it.
  std::unique_ptr<util::ThreadPool> intra_pool_;
  EngineSession session_;
  BatchScheduler scheduler_;
  util::ThreadPool pool_;
  bool shut_down_ = false;
  std::mutex shutdown_mutex_;

  /// Percentiles come from a fixed-size ring of recent latencies, so a
  /// long-lived server's stats memory stays constant.
  static constexpr std::size_t kLatencyWindow = 16384;

  mutable std::mutex stats_mutex_;
  std::vector<double> latency_window_;  ///< ring buffer, kLatencyWindow cap
  std::size_t latency_next_ = 0;        ///< ring write cursor
  std::size_t completed_ = 0;
  double latency_sum_us_ = 0.0;
  double latency_max_us_ = 0.0;
  std::size_t batches_ = 0;
  std::size_t max_batch_seen_ = 0;
  std::chrono::steady_clock::time_point started_;
};

}  // namespace cq::serve
