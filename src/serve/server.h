#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "deploy/artifact.h"
#include "deploy/backend.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/batch_scheduler.h"
#include "serve/engine_session.h"
#include "util/thread_pool.h"

namespace cq::serve {

struct ServerConfig {
  int workers = 1;              ///< batch workers (= engine contexts); < 1 becomes 1
  /// Threads one forward pass may occupy (intra-op parallelism); < 2
  /// keeps the kernels serial. The server owns one shared intra-op
  /// pool of (intra_threads - 1) helpers, so total CPU demand is about
  /// workers + intra_threads - 1; size workers * intra_threads toward
  /// the core count (inter-op scales with concurrent load, intra-op
  /// cuts single-request latency).
  int intra_threads = 1;
  /// Kernel backend the engine dispatches every plan op through
  /// (deploy::make_backend): the scalar reference or the
  /// blocked/packed integer backend. Both are byte-identical, so this
  /// only trades execution speed.
  deploy::BackendKind backend = deploy::BackendKind::Scalar;
  /// Plan optimization level for the compiled artifact: PlanOpt::kO1
  /// (default) runs the deploy::optimize_plan pipeline — byte-exact, so
  /// it only trades execution speed; PlanOpt::kO0 serves the plan as
  /// compiled (escape hatch / A-B baseline).
  PlanOpt opt = PlanOpt::kO1;
  int max_batch = 16;           ///< micro-batch flush size
  long max_wait_us = 200;       ///< micro-batch flush age
  std::size_t queue_capacity = 1024;  ///< bounded request queue depth
};

/// Aggregate serving statistics since the server started (or the last
/// reset_stats()). Latencies cover submit() to promise fulfillment, in
/// microseconds. All distributions — end-to-end latency, queue-wait,
/// and per-batch execute time — come from log-bucketed
/// obs::LatencyHistogram instruments covering *every* request in the
/// window (percentile error is bounded by the ~3% bucket width, and
/// nothing is forgotten under sustained traffic the way the old
/// sliding-window percentiles were).
struct ServerStats {
  std::size_t completed = 0;      ///< requests answered
  std::size_t failed = 0;         ///< requests answered with an exception
  /// Requests refused by try_submit() because the bounded queue was at
  /// capacity (the load-shedding path — the caller answered BUSY, the
  /// engine never saw the sample). Distinct from `failed`: a shed
  /// request is an explicit, retryable rejection, not an error.
  std::size_t shed = 0;
  std::size_t batches = 0;        ///< micro-batches executed
  double mean_batch = 0.0;        ///< average coalesced batch size
  std::size_t max_batch = 0;      ///< largest coalesced batch seen
  double p50_us = 0.0;            ///< end-to-end latency percentiles
  double p95_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
  double max_us = 0.0;
  /// Queue-wait vs execute breakdown: queue-wait is submit() to
  /// leaving the scheduler queue (per request); execute is the
  /// EngineSession::run wall time of the batch the request rode in
  /// (per batch). Together they show whether latency is queueing or
  /// compute.
  double mean_queue_us = 0.0;
  double p50_queue_us = 0.0;
  double p95_queue_us = 0.0;
  double mean_exec_us = 0.0;
  double p50_exec_us = 0.0;
  double p95_exec_us = 0.0;
  double elapsed_s = 0.0;         ///< wall time since start/reset
  double throughput_rps = 0.0;    ///< completed / elapsed_s
};

/// Batched multi-threaded inference server over a deployed artifact.
///
/// submit() enqueues one sample into the BatchScheduler and returns a
/// future; `workers` pool threads pop micro-batches, coalesce them into
/// a single tensor, run the EngineSession integer pipeline once, and
/// fan the rows back out to the per-request promises. Because
/// EngineSession::run is bit-exact under any coalescing, the same
/// inputs produce byte-identical outputs whatever batches the
/// scheduler happens to form.
///
/// Observability: metrics() exposes the obs::Registry behind stats()
/// (JSON / Prometheus export); set_span_sink() streams a
/// submit->queue->batch-form->execute->complete obs::RequestSpan per
/// request (e.g. into an obs::ChromeTraceWriter for a
/// chrome://tracing timeline); set_op_trace() forwards a per-op
/// TraceSink to the engine interpreter (obs::PlanProfiler). All three
/// are inert until opted into.
class Server {
 public:
  explicit Server(const deploy::QuantizedArtifact& artifact, ServerConfig config = {});

  /// Serves a pre-compiled (and pre-optimized, if the caller ran the
  /// pass pipeline) plan shared read-only with any number of other
  /// servers/sessions — serve::ModelRegistry compiles each artifact
  /// version once and builds the server on the shared plan, so a
  /// hot-swap never recompiles what the registry already has.
  /// ServerConfig::opt does not apply here: a handed-over plan's shape
  /// belongs to the caller. Throws std::invalid_argument on null.
  Server(std::shared_ptr<const deploy::ExecutionPlan> plan, ServerConfig config = {});

  /// Shuts down (drains queued requests) and joins the workers.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Submits one sample (shape must equal session().sample_shape()
  /// exactly — a layout mismatch with the right element count would
  /// silently produce wrong logits) and returns a future for its
  /// [num_classes] logits row. Thread-safe. Shape mismatches and
  /// submits after shutdown() surface as exceptions on the future.
  /// Blocks while the queue is full (backpressure); callers that must
  /// not block use try_submit.
  std::future<tensor::Tensor> submit(tensor::Tensor sample);

  /// Non-blocking admission: kAdmitted moves the sample in and sets
  /// `out`; kShed (bounded queue at capacity — counted in
  /// ServerStats::shed and the requests_shed metric) and kClosed
  /// (shutdown in progress; the ModelRegistry retries on the successor
  /// version mid-swap) leave `sample` intact and `out` untouched.
  /// Never blocks and never silently drops: every non-admitted sample
  /// is reported to the caller, which owes the client an explicit BUSY.
  enum class SubmitResult { kAdmitted, kShed, kClosed };
  SubmitResult try_submit(tensor::Tensor& sample, std::future<tensor::Tensor>& out);

  /// Requests currently waiting in the scheduler queue — the signal
  /// admission control keys on.
  std::size_t queue_depth() const;

  /// Stops accepting requests, drains the queue and joins the workers.
  /// Idempotent; the destructor calls it.
  void shutdown();

  /// Snapshot of latency/throughput counters. Thread-safe.
  ServerStats stats() const;

  /// Zeroes all counters and restarts the stats clock — call after a
  /// warmup phase so it does not pollute the reported numbers. Safe
  /// while workers are in flight: recording, reset and snapshot are
  /// serialized, so a snapshot never mixes windows (a request that
  /// completes after the reset counts — fully — in the new window).
  void reset_stats();

  /// The registry behind stats(): counters (requests_submitted,
  /// requests_failed), gauges (queue_depth, backend_prepared_bytes)
  /// and latency/queue/execute/batch-size histograms, exportable via
  /// obs::Registry::to_json / to_prometheus.
  const obs::Registry& metrics() const;

  /// Streams one obs::RequestSpan per completed request into `sink`
  /// (non-owning; must outlive the server or be cleared with nullptr;
  /// must be thread-safe). Null (the default) costs nothing.
  void set_span_sink(obs::SpanSink* sink) {
    span_sink_.store(sink, std::memory_order_release);
  }

  /// Forwards a per-op trace sink to the engine interpreter — see
  /// EngineSession::set_trace_sink for the contract. Build the sink
  /// against session().plan() / session().backend().
  void set_op_trace(obs::TraceSink* sink) { session_.set_trace_sink(sink); }

  const EngineSession& session() const { return session_; }
  const ServerConfig& config() const { return config_; }

 private:
  void start_workers();
  void worker_loop(int worker);

  ServerConfig config_;
  /// Shared intra-op helper pool (workers participate in their own
  /// parallel_for, so it holds intra_threads - 1 helpers); declared
  /// before session_ so it outlives every kernel that chunks over it.
  std::unique_ptr<util::ThreadPool> intra_pool_;
  EngineSession session_;
  BatchScheduler scheduler_;
  util::ThreadPool pool_;
  bool shut_down_ = false;
  std::mutex shutdown_mutex_;

  std::atomic<obs::SpanSink*> span_sink_{nullptr};
  std::atomic<std::uint64_t> next_request_id_{0};

  /// All serving metrics live in the registry; the references below
  /// are the hot-path handles. Recording happens once per batch /
  /// request under stats_mutex_ (same locking cost the pre-registry
  /// stats paid), which is also what makes reset_stats() a crisp
  /// window boundary: recording, reset and snapshot all serialize on
  /// this mutex, so no snapshot can observe a half-reset window.
  obs::Registry metrics_;
  obs::Counter& submitted_;
  obs::Counter& failed_;
  obs::Counter& shed_;
  obs::LatencyHistogram& latency_us_;
  obs::LatencyHistogram& queue_wait_us_;
  obs::LatencyHistogram& execute_us_;
  obs::LatencyHistogram& batch_size_;
  obs::Gauge& queue_depth_;

  mutable std::mutex stats_mutex_;
  std::chrono::steady_clock::time_point started_;
};

}  // namespace cq::serve
