#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace cq::util {

namespace {

template <typename T>
Summary summarize_impl(std::span<const T> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  double sum = 0.0;
  double lo = values[0];
  double hi = values[0];
  for (const T v : values) {
    sum += static_cast<double>(v);
    lo = std::min(lo, static_cast<double>(v));
    hi = std::max(hi, static_cast<double>(v));
  }
  s.mean = sum / static_cast<double>(values.size());
  double var = 0.0;
  for (const T v : values) {
    const double d = static_cast<double>(v) - s.mean;
    var += d * d;
  }
  s.stddev = std::sqrt(var / static_cast<double>(values.size()));
  s.min = lo;
  s.max = hi;
  return s;
}

}  // namespace

Summary summarize(std::span<const float> values) { return summarize_impl(values); }
Summary summarize(std::span<const double> values) { return summarize_impl(values); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins == 0 ? 1 : bins, 0) {}

void Histogram::add(double value) {
  const double span = hi_ - lo_;
  std::size_t bin = 0;
  if (span > 0.0) {
    const double t = (value - lo_) / span;
    const auto raw = static_cast<long long>(t * static_cast<double>(counts_.size()));
    bin = static_cast<std::size_t>(std::clamp<long long>(
        raw, 0, static_cast<long long>(counts_.size()) - 1));
  }
  ++counts_[bin];
  ++total_;
}

void Histogram::add_all(std::span<const float> values) {
  for (const float v : values) add(v);
}

double Histogram::bin_center(std::size_t bin) const {
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(bin) + 0.5) * w;
}

std::string Histogram::render(std::size_t width) const {
  const std::size_t peak = *std::max_element(counts_.begin(), counts_.end());
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::size_t bar =
        peak == 0 ? 0 : (counts_[b] * width + peak - 1) / peak;
    char label[64];
    std::snprintf(label, sizeof(label), "%8.2f | ", bin_center(b));
    os << label << std::string(bar, '#') << " " << counts_[b] << "\n";
  }
  return os.str();
}

double percentile(std::span<const double> values, double q) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return percentile_sorted(sorted, q);
}

double percentile(std::span<const float> values, double q) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return percentile_sorted(sorted, q);
}

double percentile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double clamped = std::clamp(q, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

std::vector<std::size_t> argsort(std::span<const float> values) {
  std::vector<std::size_t> idx(values.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::stable_sort(idx.begin(), idx.end(),
                   [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
  return idx;
}

std::vector<std::size_t> argsort_desc(std::span<const float> values) {
  std::vector<std::size_t> idx(values.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::stable_sort(idx.begin(), idx.end(),
                   [&](std::size_t a, std::size_t b) { return values[a] > values[b]; });
  return idx;
}

namespace {

/// Tie-averaged ranks of `values` (rank 1 = smallest).
std::vector<double> tied_ranks(std::span<const double> values) {
  std::vector<std::size_t> idx(values.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::stable_sort(idx.begin(), idx.end(),
                   [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(values.size(), 0.0);
  std::size_t i = 0;
  while (i < idx.size()) {
    std::size_t j = i;
    while (j + 1 < idx.size() && values[idx[j + 1]] == values[idx[i]]) ++j;
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[idx[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double spearman(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size() || a.size() < 2) return 0.0;
  const std::vector<double> ra = tied_ranks(a);
  const std::vector<double> rb = tied_ranks(b);
  const auto n = static_cast<double>(a.size());
  double mean = (n + 1.0) / 2.0;
  double cov = 0.0;
  double var_a = 0.0;
  double var_b = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    cov += (ra[i] - mean) * (rb[i] - mean);
    var_a += (ra[i] - mean) * (ra[i] - mean);
    var_b += (rb[i] - mean) * (rb[i] - mean);
  }
  if (var_a <= 0.0 || var_b <= 0.0) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

}  // namespace cq::util
