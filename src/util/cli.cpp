#include "util/cli.h"

#include <cstdlib>

namespace cq::util {

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg] = "true";
    } else {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
}

bool Cli::has(const std::string& key) const { return values_.count(key) != 0; }

std::string Cli::get(const std::string& key, const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

long Cli::get_int(const std::string& key, long fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::strtol(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

bool Cli::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace cq::util
