#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>

#include "util/thread_pool.h"

namespace cq::util {

/// Execution context threaded through the compute kernels: which
/// thread pool (if any) a single forward may parallelize over, and how
/// many threads it may occupy.
///
/// This is the single seam between the serving configuration and the
/// numeric kernels. serve::Server owns one intra-op pool shared by its
/// workers and hands each EngineSession an ExecContext; the session
/// passes it down through deploy:: into tensor::ops. A
/// default-constructed context (no pool) means strictly serial
/// execution, so every pre-existing call site keeps its exact old
/// behaviour without changes.
///
/// Determinism contract: parallel_for() only changes *which thread*
/// computes a chunk of outputs, never the reduction order within one
/// output element, so kernels written against it stay bit-identical to
/// their serial execution at any thread count.
struct ExecContext {
  ThreadPool* pool = nullptr;  ///< intra-op helper pool; nullptr = serial
  int max_threads = 0;  ///< cap on participating threads; <= 0 = pool size + 1

  /// Effective number of threads a parallel_for may occupy (>= 1; the
  /// calling thread always participates and is included in the count).
  int threads() const {
    if (pool == nullptr || pool->size() == 0) return 1;
    const int available = pool->size() + 1;
    return max_threads <= 0 ? available : std::min(max_threads, available);
  }

  bool serial() const { return threads() <= 1; }

  /// Runs body(lo, hi) over half-open chunks covering [begin, end),
  /// using at most threads() participants (chunks are sized so the
  /// participant cap holds even when the pool is larger). Serial
  /// contexts invoke body(begin, end) directly with zero overhead.
  /// Exceptions propagate to the caller (see util::parallel_for).
  template <typename Body>
  void parallel_for(std::int64_t begin, std::int64_t end, Body&& body) const {
    const std::int64_t n = end - begin;
    if (n <= 0) return;
    const std::int64_t want = std::min<std::int64_t>(threads(), n);
    if (want <= 1) {
      body(begin, end);
      return;
    }
    // ceil(n / want) chunks of equal size bound the participants (the
    // caller plus at most chunks - 1 pool helpers) to `want`.
    const std::int64_t grain = (n + want - 1) / want;
    util::parallel_for(*pool, begin, end, grain,
                       std::function<void(std::int64_t, std::int64_t)>(
                           std::forward<Body>(body)));
  }
};

}  // namespace cq::util
