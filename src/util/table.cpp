#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace cq::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

std::string Table::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string Table::render() const {
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  std::vector<std::size_t> width(cols, 0);
  auto measure = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  };
  measure(header_);
  for (const auto& r : rows_) measure(r);

  auto line = [&] {
    std::string s = "+";
    for (std::size_t c = 0; c < cols; ++c) s += std::string(width[c] + 2, '-') + "+";
    return s + "\n";
  };
  auto emit = [&](const std::vector<std::string>& row) {
    std::string s = "|";
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string cell = c < row.size() ? row[c] : "";
      s += " " + cell + std::string(width[c] - cell.size(), ' ') + " |";
    }
    return s + "\n";
  };

  std::ostringstream os;
  os << line() << emit(header_) << line();
  for (const auto& r : rows_) os << emit(r);
  os << line();
  return os.str();
}

std::string ascii_bar(double value, double max_value, std::size_t width) {
  if (max_value <= 0.0) return "";
  const double t = std::clamp(value / max_value, 0.0, 1.0);
  return std::string(static_cast<std::size_t>(t * static_cast<double>(width) + 0.5), '#');
}

}  // namespace cq::util
