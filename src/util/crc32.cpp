#include "util/crc32.h"

#include <array>

namespace cq::util {
namespace {

std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& table() {
  static const std::array<std::uint32_t, 256> t = make_table();
  return t;
}

}  // namespace

void Crc32::update(std::span<const std::byte> bytes) {
  std::uint32_t c = state_;
  for (std::byte b : bytes) {
    c = table()[(c ^ static_cast<std::uint32_t>(b)) & 0xFFu] ^ (c >> 8);
  }
  state_ = c;
}

void Crc32::update(const void* data, std::size_t size) {
  update(std::span<const std::byte>(static_cast<const std::byte*>(data), size));
}

std::uint32_t crc32(const void* data, std::size_t size) {
  Crc32 c;
  c.update(data, size);
  return c.value();
}

}  // namespace cq::util
