#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cq::util {

/// Fixed-size worker pool executing submitted jobs in FIFO order.
///
/// This is the shared concurrency primitive of the repository: the
/// serving subsystem runs its batch workers on it, and the hot-path
/// kernels can parallelize over it via parallel_for() without every
/// call site reinventing thread lifecycle management.
///
/// A pool of size 0 is a valid degenerate pool: submit() runs the job
/// inline on the calling thread, which keeps single-threaded baselines
/// and tests free of special cases.
class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 0; 0 means inline execution).
  explicit ThreadPool(int threads);
  /// Waits for all queued and running jobs, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `job` for execution. Jobs must not throw out of their
  /// call operator (wrap and capture instead); an escaping exception
  /// terminates, as with std::thread.
  void submit(std::function<void()> job);

  /// Blocks until every job submitted so far has finished. Must not be
  /// called from inside a pool job (it would wait on itself).
  void wait_idle();

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t in_flight_ = 0;  ///< queued + currently running jobs
  bool stopping_ = false;
};

/// Runs body(lo, hi) over half-open chunks covering [begin, end),
/// splitting the work between the calling thread and the pool.
///
/// `grain` is the chunk length (<= 0 picks ~4 chunks per worker). The
/// caller participates in the work, so a 0-thread pool degrades to a
/// plain serial loop. The first exception thrown by `body` is captured
/// and rethrown on the calling thread after all chunks finish. Do not
/// call from inside a job of the same pool: the helper jobs it submits
/// could then starve behind the caller itself.
void parallel_for(ThreadPool& pool, std::int64_t begin, std::int64_t end,
                  std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& body);

}  // namespace cq::util
