#pragma once

#include <map>
#include <string>

namespace cq::util {

/// Minimal `--key=value` / `--flag` parser for the benches and
/// examples. Unknown keys are kept (callers may query freely); values
/// are returned through typed getters with defaults.
class Cli {
 public:
  Cli(int argc, char** argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  long get_int(const std::string& key, long fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace cq::util
