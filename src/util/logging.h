#pragma once

#include <sstream>
#include <string>

namespace cq::util {

/// Severity level for the library logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);

/// Current global threshold. Defaults to kInfo; the CQ_LOG_LEVEL
/// environment variable ("debug" | "info" | "warn" | "error",
/// case-insensitive) overrides the default on first use — so e.g.
/// CQ_LOG_LEVEL=debug ships profiler/trace debug lines without
/// recompiling, while default runs stay quiet.
LogLevel log_level();

/// Parses a level name ("debug" | "info" | "warn" | "error", any
/// case). Returns false — leaving `out` untouched — on anything else.
bool parse_log_level(const std::string& text, LogLevel& out);

/// Re-reads CQ_LOG_LEVEL and applies it (no-op when unset or
/// unparsable, with a one-line warning for the latter). Startup does
/// this automatically; exposed for tests and long-lived embedders.
void refresh_log_level_from_env();

/// Emits one formatted line (`[LEVEL] message`) to stderr if `level`
/// passes the threshold.
void log_line(LogLevel level, const std::string& message);

namespace detail {

/// Stream-style single-line logger; flushes on destruction.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() { log_line(level_, os_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail

inline detail::LogStream log_debug() { return detail::LogStream(LogLevel::kDebug); }
inline detail::LogStream log_info() { return detail::LogStream(LogLevel::kInfo); }
inline detail::LogStream log_warn() { return detail::LogStream(LogLevel::kWarn); }
inline detail::LogStream log_error() { return detail::LogStream(LogLevel::kError); }

}  // namespace cq::util
