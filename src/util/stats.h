#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace cq::util {

/// Summary statistics of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< population standard deviation
  double min = 0.0;
  double max = 0.0;
};

/// Computes count/mean/stddev/min/max of `values` (empty -> zeros).
Summary summarize(std::span<const float> values);
Summary summarize(std::span<const double> values);

/// Fixed-width histogram over [lo, hi] with `bins` buckets.
/// Values outside the range are clamped into the edge buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value);
  void add_all(std::span<const float> values);

  std::size_t bins() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_[bin]; }
  std::size_t total() const { return total_; }
  /// Center of bucket `bin`.
  double bin_center(std::size_t bin) const;
  double lo() const { return lo_; }
  double hi() const { return hi_; }

  /// Renders an ASCII bar chart, one bucket per line, bars scaled to
  /// `width` characters. Used by the figure benches.
  std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// q-th percentile (q in [0, 100]) of `values` with linear
/// interpolation between order statistics. Returns 0 for an empty
/// sample. The exact reference the obs::LatencyHistogram snapshot
/// percentiles are tested against (same rank convention).
double percentile(std::span<const double> values, double q);
double percentile(std::span<const float> values, double q);

/// Same, over an already ascending-sorted sample — callers extracting
/// several percentiles sort once and use this to avoid re-sorting.
double percentile_sorted(std::span<const double> sorted, double q);

/// Returns the indices that sort `values` ascending (stable).
std::vector<std::size_t> argsort(std::span<const float> values);

/// Returns the indices that sort `values` descending (stable).
std::vector<std::size_t> argsort_desc(std::span<const float> values);

/// Spearman rank correlation of paired samples (tie-averaged ranks).
/// Returns 0 for fewer than two pairs or when either side has zero
/// rank variance.
double spearman(std::span<const double> a, std::span<const double> b);

}  // namespace cq::util
