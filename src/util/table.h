#pragma once

#include <string>
#include <vector>

namespace cq::util {

/// Minimal ASCII table renderer used by the benches to print
/// paper-style result rows (Figure 4/5 style comparisons).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; missing cells render empty, extra cells are kept.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with `precision` decimals.
  static std::string num(double value, int precision = 2);

  /// Renders with column alignment and +---+ separators.
  std::string render() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders a horizontal ASCII bar of `value` relative to `max_value`,
/// `width` characters wide; used for bar-chart style figures.
std::string ascii_bar(double value, double max_value, std::size_t width = 40);

}  // namespace cq::util
