#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <stdexcept>

namespace cq::util {

ThreadPool::ThreadPool(int threads) {
  if (threads < 0) {
    throw std::invalid_argument("ThreadPool: thread count must be >= 0");
  }
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> job) {
  if (workers_.empty()) {
    job();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      throw std::runtime_error("ThreadPool: submit after shutdown");
    }
    queue_.push_back(std::move(job));
    ++in_flight_;
  }
  work_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) idle_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::int64_t begin, std::int64_t end,
                  std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& body) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  const int workers = pool.size();
  std::int64_t chunk = grain;
  if (chunk <= 0) {
    chunk = std::max<std::int64_t>(1, n / (4 * std::max(workers, 1)));
  }
  if (workers == 0 || n <= chunk) {
    body(begin, end);
    return;
  }

  // Shared chunk cursor: the caller and the helper jobs all pull the
  // next unclaimed [lo, lo+chunk) range until the cursor passes `end`.
  struct Shared {
    std::atomic<std::int64_t> next{0};
    std::mutex mutex;
    std::condition_variable done;
    int pending = 0;
    std::exception_ptr error;
  };
  auto shared = std::make_shared<Shared>();
  shared->next.store(begin, std::memory_order_relaxed);

  const auto run_chunks = [shared, &body, end, chunk] {
    for (;;) {
      const std::int64_t lo = shared->next.fetch_add(chunk, std::memory_order_relaxed);
      if (lo >= end) return;
      try {
        body(lo, std::min(end, lo + chunk));
      } catch (...) {
        std::lock_guard<std::mutex> lock(shared->mutex);
        if (!shared->error) shared->error = std::current_exception();
      }
    }
  };

  const std::int64_t chunks = (n + chunk - 1) / chunk;
  const int helpers =
      static_cast<int>(std::min<std::int64_t>(workers, chunks - 1));
  shared->pending = helpers;
  for (int i = 0; i < helpers; ++i) {
    pool.submit([shared, run_chunks] {
      run_chunks();
      std::lock_guard<std::mutex> lock(shared->mutex);
      if (--shared->pending == 0) shared->done.notify_all();
    });
  }

  run_chunks();
  std::unique_lock<std::mutex> lock(shared->mutex);
  shared->done.wait(lock, [&shared] { return shared->pending == 0; });
  if (shared->error) std::rethrow_exception(shared->error);
}

}  // namespace cq::util
