#pragma once

#include <cstdint>
#include <vector>

namespace cq::util {

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// Every stochastic component in the library (weight init, data
/// generation, shuffling, noise injection) draws from an explicitly
/// seeded Rng so that experiments are bit-reproducible on a single
/// machine. The generator is cheap to copy; `split()` derives an
/// independent stream for a sub-component.
class Rng {
 public:
  /// Constructs a generator whose stream is fully determined by `seed`.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal variate (Box-Muller, cached spare).
  double normal();

  /// Normal variate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent generator; advances this one.
  Rng split();

 private:
  std::uint64_t state_[4];
  double spare_ = 0.0;
  bool has_spare_ = false;
};

/// Fills `v` with a random permutation of [0, n).
std::vector<std::size_t> random_permutation(std::size_t n, Rng& rng);

}  // namespace cq::util
