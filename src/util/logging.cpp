#include "util/logging.h"

#include <atomic>
#include <cstdio>

namespace cq::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::fprintf(stderr, "[%s] %s\n", level_tag(level), message.c_str());
}

}  // namespace cq::util
