#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace cq::util {

namespace {

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

LogLevel initial_level() {
  LogLevel level = LogLevel::kInfo;
  const char* env = std::getenv("CQ_LOG_LEVEL");
  if (env != nullptr && !parse_log_level(env, level)) {
    std::fprintf(stderr, "[WARN] CQ_LOG_LEVEL='%s' not one of debug|info|warn|error\n",
                 env);
  }
  return level;
}

/// Meyers singleton so the threshold is usable (and env-initialized)
/// from any static initializer, regardless of TU order.
std::atomic<LogLevel>& level_ref() {
  static std::atomic<LogLevel> level{initial_level()};
  return level;
}

}  // namespace

void set_log_level(LogLevel level) { level_ref().store(level); }

LogLevel log_level() { return level_ref().load(); }

bool parse_log_level(const std::string& text, LogLevel& out) {
  std::string lower;
  lower.reserve(text.size());
  for (const char c : text) {
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug") {
    out = LogLevel::kDebug;
  } else if (lower == "info") {
    out = LogLevel::kInfo;
  } else if (lower == "warn" || lower == "warning") {
    out = LogLevel::kWarn;
  } else if (lower == "error") {
    out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

void refresh_log_level_from_env() {
  const char* env = std::getenv("CQ_LOG_LEVEL");
  if (env == nullptr) return;
  LogLevel level = log_level();
  if (parse_log_level(env, level)) {
    set_log_level(level);
  } else {
    std::fprintf(stderr, "[WARN] CQ_LOG_LEVEL='%s' not one of debug|info|warn|error\n",
                 env);
  }
}

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::fprintf(stderr, "[%s] %s\n", level_tag(level), message.c_str());
}

}  // namespace cq::util
