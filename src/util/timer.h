#pragma once

#include <chrono>

namespace cq::util {

/// Wall-clock stopwatch used for coarse experiment timing.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cq::util
