#include "util/csv.h"

#include <stdexcept>

namespace cq::util {

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  write_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& row) {
  write_row(row);
  ++rows_;
}

void CsvWriter::write_row(const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(row[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (const char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace cq::util
