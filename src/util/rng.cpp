#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace cq::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// SplitMix64: used to expand the single seed into the xoshiro state.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_ = mag * std::sin(2.0 * std::numbers::pi * u2);
  has_spare_ = true;
  return mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

Rng Rng::split() { return Rng(next_u64()); }

std::vector<std::size_t> random_permutation(std::size_t n, Rng& rng) {
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  rng.shuffle(perm);
  return perm;
}

}  // namespace cq::util
