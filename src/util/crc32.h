#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace cq::util {

/// Incremental CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant).
/// Used to detect corruption of deployment artifacts before any of
/// their contents are interpreted.
class Crc32 {
 public:
  /// Folds `bytes` into the running checksum.
  void update(std::span<const std::byte> bytes);
  void update(const void* data, std::size_t size);

  /// Finalized checksum of everything updated so far. The object can
  /// keep accumulating afterwards; value() is side-effect free.
  std::uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }

  void reset() { state_ = 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

/// One-shot convenience wrapper.
std::uint32_t crc32(const void* data, std::size_t size);

}  // namespace cq::util
