#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace cq::util {

/// Small CSV writer for persisting experiment series (one file per
/// figure). Escaping handles commas/quotes/newlines per RFC 4180.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits `header` as the first row.
  /// Throws std::runtime_error when the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void add_row(const std::vector<std::string>& row);

  /// Number of data rows written so far (excluding the header).
  std::size_t rows() const { return rows_; }

 private:
  void write_row(const std::vector<std::string>& row);
  static std::string escape(const std::string& cell);

  std::ofstream out_;
  std::size_t rows_ = 0;
};

}  // namespace cq::util
