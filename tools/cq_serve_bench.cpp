// cq_serve_bench — closed-loop load generator, local or remote.
//
// Local mode spins up a serve::Server over a .cqar artifact and drives
// it with `threads` synchronous submitters (each waits for its
// response before sending the next request), then reports throughput,
// latency percentiles, the queue-wait vs execute breakdown and
// micro-batch shape. The serving-side counterpart of cqar_info: where
// cqar_info inspects the deployed bytes, this measures the deployed
// behaviour under concurrent traffic.
//
// Remote mode (--connect=host:port --model=NAME) drives a running
// cq_serve daemon over the CQN1 protocol instead: one net::Client per
// submitter thread, client-side latency histograms, and explicit
// admitted/shed accounting — a kBusy reply counts as shed, records its
// round-trip in a separate histogram (overload must answer *fast*),
// and the loop moves on (optionally after --busy_backoff_us). The
// --assert_* flags turn the run into a CI gate: offered load beyond
// capacity must shed, not collapse.
//
// Usage: cq_serve_bench <model.cqar> [options]
//        cq_serve_bench --connect=host:port --model=NAME [options]
//   --requests=N      total requests across all submitters (default 512)
//   --threads=N       closed-loop submitter threads (default 8)
//   --workers=N       server batch workers / engine contexts (default 4)
//   --intra_threads=N threads one forward pass may occupy (default 1)
//   --backend=NAME    kernel backend: scalar | blocked | simd (default scalar)
//   --max_batch=N     micro-batch flush size (default 16)
//   --max_wait_us=N   micro-batch flush age in microseconds (default 200)
//   --queue=N         bounded request queue depth (default 1024)
//   --warmup=N        untimed warmup requests (default 64)
//   --seed=N          input generator seed (default 1)
//   --json=PATH       machine-readable result, same schema as
//                     bench/serve_throughput --json (one sweep row), so
//                     trajectory tooling ingests both
//   --profile         attach obs::PlanProfiler to the engine: prints the
//                     per-op-kind breakdown and embeds the full per-op
//                     report in --json output
//   --trace=PATH      stream one span pair per request into a
//                     Chrome-trace JSON (load in chrome://tracing)
//   --metrics         dump the server's metrics registry in Prometheus
//                     text format after the run
//
// Remote-mode options:
//   --connect=H:P     drive a cq_serve daemon at host H, port P
//   --model=NAME      served model to target (required with --connect)
//   --duration_s=X    run for X seconds instead of a fixed request count
//   --busy_backoff_us=N  sleep N us after a kBusy reply (default 0)
//   --assert_admitted_min=N   fail unless >= N requests were admitted
//   --assert_shed_min=N       fail unless >= N requests were shed BUSY
//   --assert_p99_ms=X         fail unless admitted client p99 <= X ms
//   --assert_busy_p99_ms=X    fail unless BUSY round-trip p99 <= X ms
//   --json gains "admitted"/"shed" fields in both modes.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "deploy/artifact.h"
#include "net/client.h"
#include "obs/chrome_trace.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "serve/server.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace cq;

/// --connect mode: closed-loop load against a cq_serve daemon, one
/// net::Client per submitter, explicit admitted/shed accounting and
/// client-side latency histograms. Returns the process exit status.
int run_remote(const util::Cli& cli) {
  const std::string connect = cli.get("connect", "");
  const auto colon = connect.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "cq_serve_bench: --connect expects host:port\n");
    return 2;
  }
  const std::string host = connect.substr(0, colon);
  const auto port = static_cast<std::uint16_t>(
      std::strtol(connect.c_str() + colon + 1, nullptr, 10));
  const std::string model = cli.get("model", "");
  if (model.empty()) {
    std::fprintf(stderr, "cq_serve_bench: --connect requires --model=NAME\n");
    return 2;
  }
  const long requests = cli.get_int("requests", 512);
  const long threads = cli.get_int("threads", 8);
  const long warmup = cli.get_int("warmup", 32);
  const double duration_s = cli.get_double("duration_s", 0.0);
  const long busy_backoff_us = cli.get_int("busy_backoff_us", 0);
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const std::string json_path = cli.get("json", "");
  if (requests < 1 || threads < 1 || warmup < 0) {
    std::fprintf(stderr, "cq_serve_bench: requests/threads must be >= 1, warmup >= 0\n");
    return 2;
  }

  try {
    net::Client probe(host, port);
    const net::Client::ModelInfo info = probe.info(model);
    std::printf("%s @ %s: input %s, %d classes, serving v%d\n", model.c_str(),
                connect.c_str(), tensor::shape_to_string(info.sample_shape).c_str(),
                info.num_classes, info.version);
    std::printf("%ld closed-loop submitters, %s, busy backoff %ld us\n", threads,
                duration_s > 0.0
                    ? (std::to_string(duration_s) + " s").c_str()
                    : (std::to_string(requests) + " attempts").c_str(),
                busy_backoff_us);

    {  // untimed warmup over the probe connection
      util::Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
      for (long i = 0; i < warmup; ++i) {
        probe.infer(model,
                    tensor::Tensor::rand_uniform(info.sample_shape, rng, 0.0f, 1.0f));
      }
    }

    obs::LatencyHistogram ok_us;    // admitted round trips
    obs::LatencyHistogram busy_us;  // shed round trips: BUSY must be fast
    std::atomic<long> admitted{0};
    std::atomic<long> shed{0};
    std::atomic<long> failed{0};
    util::Timer timer;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(duration_s));

    std::vector<std::thread> submitters;
    submitters.reserve(static_cast<std::size_t>(threads));
    for (long t = 0; t < threads; ++t) {
      const long share = requests / threads + (t < requests % threads ? 1 : 0);
      submitters.emplace_back([&, share, t] {
        try {
          net::Client client(host, port);
          util::Rng rng(seed + static_cast<std::uint64_t>(t) * 1000003ULL);
          for (long i = 0;; ++i) {
            if (duration_s > 0.0) {
              if (std::chrono::steady_clock::now() >= deadline) break;
            } else if (i >= share) {
              break;
            }
            const tensor::Tensor sample =
                tensor::Tensor::rand_uniform(info.sample_shape, rng, 0.0f, 1.0f);
            const auto begin = std::chrono::steady_clock::now();
            const net::Client::InferResult result = client.infer(model, sample);
            const double us = std::chrono::duration<double, std::micro>(
                                  std::chrono::steady_clock::now() - begin)
                                  .count();
            if (result.admitted) {
              ok_us.record(us);
              admitted.fetch_add(1, std::memory_order_relaxed);
            } else {
              busy_us.record(us);
              shed.fetch_add(1, std::memory_order_relaxed);
              if (busy_backoff_us > 0) {
                std::this_thread::sleep_for(std::chrono::microseconds(busy_backoff_us));
              }
            }
          }
        } catch (const std::exception& e) {
          if (failed.fetch_add(1) == 0) {
            std::fprintf(stderr, "cq_serve_bench: submitter failed: %s\n", e.what());
          }
        }
      });
    }
    for (std::thread& submitter : submitters) submitter.join();
    const double elapsed = timer.seconds();

    const obs::HistogramSnapshot ok = ok_us.snapshot();
    const obs::HistogramSnapshot busy = busy_us.snapshot();
    const long total = admitted.load() + shed.load();
    std::printf("\n%ld attempts in %.3f s: %ld admitted (%.1f req/s), %ld shed, "
                "%ld submitters failed\n",
                total, elapsed, admitted.load(),
                static_cast<double>(admitted.load()) / elapsed, shed.load(),
                failed.load());
    std::printf("admitted latency  p50 %.0f us   p95 %.0f us   p99 %.0f us   "
                "mean %.0f us   max %.0f us\n",
                ok.percentile(50.0), ok.percentile(95.0), ok.percentile(99.0),
                ok.mean(), ok.max);
    if (busy.count > 0) {
      std::printf("busy round trip   p50 %.0f us   p99 %.0f us   max %.0f us\n",
                  busy.percentile(50.0), busy.percentile(99.0), busy.max);
    }

    if (!json_path.empty()) {
      std::FILE* f = std::fopen(json_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cq_serve_bench: cannot write %s\n", json_path.c_str());
        return 1;
      }
      std::fprintf(
          f,
          "{\n  \"hardware_threads\": %u,\n  \"connect\": \"%s\",\n"
          "  \"model\": \"%s\",\n  \"model_version\": %d,\n"
          "  \"submitters\": %ld,\n  \"elapsed_s\": %.3f,\n"
          "  \"requests\": %ld,\n  \"admitted\": %ld,\n  \"shed\": %ld,\n"
          "  \"failed\": %ld,\n  \"rps\": %.1f,\n"
          "  \"p50_us\": %.0f,\n  \"p95_us\": %.0f,\n  \"p99_us\": %.0f,\n"
          "  \"mean_us\": %.0f,\n  \"busy_p50_us\": %.0f,\n  \"busy_p99_us\": %.0f\n"
          "}\n",
          std::thread::hardware_concurrency(), connect.c_str(), model.c_str(),
          info.version, threads, elapsed, total, admitted.load(), shed.load(),
          failed.load(), static_cast<double>(admitted.load()) / elapsed,
          ok.percentile(50.0), ok.percentile(95.0), ok.percentile(99.0), ok.mean(),
          busy.percentile(50.0), busy.percentile(99.0));
      std::fclose(f);
      std::printf("wrote %s\n", json_path.c_str());
    }

    // CI gates: overload must shed explicitly and stay responsive, not
    // collapse into queueing or errors.
    bool ok_gates = true;
    if (failed.load() != 0) {
      std::fprintf(stderr, "cq_serve_bench: %ld submitter(s) errored\n", failed.load());
      ok_gates = false;
    }
    const long admitted_min = cli.get_int("assert_admitted_min", 0);
    if (admitted.load() < admitted_min) {
      std::fprintf(stderr, "cq_serve_bench: FAIL admitted %ld < %ld\n",
                   admitted.load(), admitted_min);
      ok_gates = false;
    }
    const long shed_min = cli.get_int("assert_shed_min", 0);
    if (shed.load() < shed_min) {
      std::fprintf(stderr, "cq_serve_bench: FAIL shed %ld < %ld\n", shed.load(),
                   shed_min);
      ok_gates = false;
    }
    const double p99_ms = cli.get_double("assert_p99_ms", 0.0);
    if (p99_ms > 0.0 && ok.percentile(99.0) > p99_ms * 1000.0) {
      std::fprintf(stderr, "cq_serve_bench: FAIL admitted p99 %.0f us > %.0f ms\n",
                   ok.percentile(99.0), p99_ms);
      ok_gates = false;
    }
    const double busy_p99_ms = cli.get_double("assert_busy_p99_ms", 0.0);
    if (busy_p99_ms > 0.0 && busy.percentile(99.0) > busy_p99_ms * 1000.0) {
      std::fprintf(stderr, "cq_serve_bench: FAIL busy p99 %.0f us > %.0f ms\n",
                   busy.percentile(99.0), busy_p99_ms);
      ok_gates = false;
    }
    return ok_gates ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cq_serve_bench: %s\n", e.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cq;
  {
    const util::Cli cli(argc, argv);
    if (cli.has("connect")) return run_remote(cli);
  }
  if (argc < 2 || argv[1][0] == '-') {
    std::fprintf(stderr,
                 "usage: cq_serve_bench <model.cqar> [--requests=512] [--threads=8] "
                 "[--workers=4] [--intra_threads=1] [--backend=scalar|blocked|simd] "
                 "[--max_batch=16] [--max_wait_us=200] [--queue=1024] [--warmup=64] "
                 "[--seed=1] [--json=PATH] [--profile] [--trace=PATH] [--metrics]\n"
                 "       cq_serve_bench --connect=host:port --model=NAME "
                 "[--requests=512] [--threads=8] [--duration_s=X] "
                 "[--busy_backoff_us=N] [--assert_admitted_min=N] "
                 "[--assert_shed_min=N] [--assert_p99_ms=X] "
                 "[--assert_busy_p99_ms=X] [--json=PATH]\n");
    return 2;
  }
  const std::string path = argv[1];
  const util::Cli cli(argc, argv);
  const long requests = cli.get_int("requests", 512);
  const long threads = cli.get_int("threads", 8);
  const long warmup = cli.get_int("warmup", 64);
  if (requests < 1 || threads < 1 || warmup < 0) {
    std::fprintf(stderr, "cq_serve_bench: requests/threads must be >= 1, warmup >= 0\n");
    return 2;
  }

  serve::ServerConfig config;
  config.workers = static_cast<int>(cli.get_int("workers", 4));
  config.intra_threads = static_cast<int>(cli.get_int("intra_threads", 1));
  try {
    config.backend = deploy::parse_backend_kind(cli.get("backend", "scalar"));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cq_serve_bench: %s\n", e.what());
    return 2;
  }
  config.max_batch = static_cast<int>(cli.get_int("max_batch", 16));
  config.max_wait_us = cli.get_int("max_wait_us", 200);
  config.queue_capacity = static_cast<std::size_t>(cli.get_int("queue", 1024));
  const std::string json_path = cli.get("json", "");
  const std::string trace_path = cli.get("trace", "");
  const bool profile = cli.get_bool("profile", false);
  const bool metrics = cli.get_bool("metrics", false);

  deploy::QuantizedArtifact artifact;
  try {
    artifact = deploy::load_artifact(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cq_serve_bench: %s\n", e.what());
    return 1;
  }

  try {
    serve::Server server(artifact, config);
    const tensor::Shape& sample_shape = server.session().sample_shape();
    std::printf("%s: %s, input %s, %d classes, %zu integer layers\n", path.c_str(),
                artifact.arch.kind.c_str(),
                tensor::shape_to_string(sample_shape).c_str(),
                server.session().num_classes(),
                server.session().integer_layer_count());
    std::printf("workers %d, intra %d, backend %s, max_batch %d, max_wait %ld us, "
                "queue %zu, %ld closed-loop submitters, %ld requests, %u hw threads\n",
                config.workers, config.intra_threads,
                server.session().backend().name(), config.max_batch,
                config.max_wait_us, config.queue_capacity, threads, requests,
                std::thread::hardware_concurrency());

    // Deterministic per-thread request streams.
    const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
    const auto make_sample = [&sample_shape](util::Rng& rng) {
      return tensor::Tensor::rand_uniform(sample_shape, rng, 0.0f, 1.0f);
    };

    {  // untimed warmup: fills caches and exercises every context once
      util::Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
      std::vector<std::future<tensor::Tensor>> inflight;
      for (long i = 0; i < warmup; ++i) inflight.push_back(server.submit(make_sample(rng)));
      for (auto& f : inflight) f.get();
    }
    server.reset_stats();  // the open-loop warmup must not skew the report

    // Observability hooks attach after warmup so they cover exactly the
    // measured window.
    std::unique_ptr<obs::PlanProfiler> profiler;
    if (profile) {
      profiler = std::make_unique<obs::PlanProfiler>(server.session().plan(),
                                                     &server.session().backend());
      server.set_op_trace(profiler.get());
    }
    std::unique_ptr<obs::ChromeTraceWriter> tracer;
    if (!trace_path.empty()) {
      tracer = std::make_unique<obs::ChromeTraceWriter>();
      server.set_span_sink(tracer.get());
    }
    util::Timer timer;

    std::vector<std::thread> submitters;
    submitters.reserve(static_cast<std::size_t>(threads));
    std::atomic<long> failed{0};
    for (long t = 0; t < threads; ++t) {
      const long share = requests / threads + (t < requests % threads ? 1 : 0);
      submitters.emplace_back([&server, &make_sample, &failed, share, seed, t] {
        util::Rng rng(seed + static_cast<std::uint64_t>(t) * 1000003ULL);
        for (long i = 0; i < share; ++i) {
          try {
            server.submit(make_sample(rng)).get();  // closed loop
          } catch (const std::exception& e) {
            // An escaping exception would std::terminate the whole
            // process from this thread; report and count instead.
            if (failed.fetch_add(1) == 0) {
              std::fprintf(stderr, "cq_serve_bench: request failed: %s\n", e.what());
            }
          }
        }
      });
    }
    for (std::thread& submitter : submitters) submitter.join();
    const double elapsed = timer.seconds();
    if (failed.load() != 0) {
      std::fprintf(stderr, "cq_serve_bench: %ld/%ld requests failed\n", failed.load(),
                   requests);
      return 1;
    }

    const serve::ServerStats stats = server.stats();
    server.set_op_trace(nullptr);
    server.set_span_sink(nullptr);
    std::printf("\n%zu requests in %.3f s  ->  %.1f req/s\n", stats.completed, elapsed,
                static_cast<double>(stats.completed) / elapsed);
    std::printf("latency  p50 %.0f us   p95 %.0f us   p99 %.0f us   mean %.0f us   "
                "max %.0f us\n",
                stats.p50_us, stats.p95_us, stats.p99_us, stats.mean_us, stats.max_us);
    std::printf("queue    p50 %.0f us   p95 %.0f us   mean %.0f us   |   execute "
                "p50 %.0f us   p95 %.0f us   mean %.0f us\n",
                stats.p50_queue_us, stats.p95_queue_us, stats.mean_queue_us,
                stats.p50_exec_us, stats.p95_exec_us, stats.mean_exec_us);
    std::printf("batching %zu batches, %.2f mean size, %zu max size\n", stats.batches,
                stats.mean_batch, stats.max_batch);

    obs::ProfileReport report;
    if (profiler != nullptr) {
      report = profiler->report();
      util::Table kinds({"op kind", "calls", "total ms", "share"});
      for (const obs::ProfileAggregate& agg : report.by_kind) {
        kinds.add_row({agg.key, std::to_string(agg.calls),
                       util::Table::num(agg.total_ms, 3),
                       util::Table::num(100.0 * agg.share, 1) + "%"});
      }
      std::printf("\nper-op-kind profile (%.3f ms attributed)\n%s\n", report.total_ms,
                  kinds.render().c_str());
    }

    if (tracer != nullptr) {
      if (!tracer->write(trace_path)) return 1;
      std::printf("wrote %s (%zu trace events — load in chrome://tracing)\n",
                  trace_path.c_str(), tracer->size());
    }

    if (metrics) {
      std::printf("\n%s", server.metrics().to_prometheus().c_str());
    }

    if (!json_path.empty()) {
      std::FILE* f = std::fopen(json_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cq_serve_bench: cannot write %s\n", json_path.c_str());
        return 1;
      }
      // Same shape as bench/serve_throughput --json: one sweep row for
      // the single configuration this run measured.
      std::fprintf(f,
                   "{\n  \"hardware_threads\": %u,\n  \"requests\": %ld,\n"
                   "  \"submitters\": %ld,\n  \"backend\": \"%s\",\n"
                   "  \"admitted\": %zu,\n  \"shed\": %zu,\n  \"sweep\": [\n",
                   std::thread::hardware_concurrency(), requests, threads,
                   deploy::backend_kind_name(config.backend), stats.completed,
                   stats.shed);
      std::fprintf(f,
                   "    {\"workers\": %d, \"intra_threads\": %d, \"rps\": %.1f, "
                   "\"p50_us\": %.0f, \"p95_us\": %.0f, \"p99_us\": %.0f, "
                   "\"mean_batch\": %.2f, \"p50_queue_us\": %.0f, "
                   "\"p95_queue_us\": %.0f, \"p50_exec_us\": %.0f, "
                   "\"p95_exec_us\": %.0f}\n",
                   config.workers, config.intra_threads,
                   static_cast<double>(stats.completed) / elapsed, stats.p50_us,
                   stats.p95_us, stats.p99_us, stats.mean_batch, stats.p50_queue_us,
                   stats.p95_queue_us, stats.p50_exec_us, stats.p95_exec_us);
      std::fprintf(f, "  ]");
      if (profiler != nullptr) {
        std::fprintf(f, ",\n  \"profile\": %s", report.to_json().c_str());
      }
      std::fprintf(f, "\n}\n");
      std::fclose(f);
      std::printf("wrote %s\n", json_path.c_str());
    }
    server.shutdown();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cq_serve_bench: %s\n", e.what());
    return 1;
  }
  return 0;
}
