// cq_serve_bench — closed-loop load generator against a .cqar artifact.
//
// Spins up a serve::Server over the artifact and drives it with
// `threads` synchronous submitters (each waits for its response before
// sending the next request), then reports throughput, latency
// percentiles and micro-batch shape. The serving-side counterpart of
// cqar_info: where cqar_info inspects the deployed bytes, this measures
// the deployed behaviour under concurrent traffic.
//
// Usage: cq_serve_bench <model.cqar> [options]
//   --requests=N     total requests across all submitters (default 512)
//   --threads=N      closed-loop submitter threads (default 8)
//   --workers=N      server batch workers / engine contexts (default 4)
//   --backend=NAME   kernel backend: scalar | blocked (default scalar)
//   --max_batch=N    micro-batch flush size (default 16)
//   --max_wait_us=N  micro-batch flush age in microseconds (default 200)
//   --queue=N        bounded request queue depth (default 1024)
//   --warmup=N       untimed warmup requests (default 64)
//   --seed=N         input generator seed (default 1)

#include <atomic>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "deploy/artifact.h"
#include "serve/server.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace cq;
  if (argc < 2 || argv[1][0] == '-') {
    std::fprintf(stderr,
                 "usage: cq_serve_bench <model.cqar> [--requests=512] [--threads=8] "
                 "[--workers=4] [--backend=scalar|blocked] [--max_batch=16] "
                 "[--max_wait_us=200] [--queue=1024] [--warmup=64] [--seed=1]\n");
    return 2;
  }
  const std::string path = argv[1];
  const util::Cli cli(argc, argv);
  const long requests = cli.get_int("requests", 512);
  const long threads = cli.get_int("threads", 8);
  const long warmup = cli.get_int("warmup", 64);
  if (requests < 1 || threads < 1 || warmup < 0) {
    std::fprintf(stderr, "cq_serve_bench: requests/threads must be >= 1, warmup >= 0\n");
    return 2;
  }

  serve::ServerConfig config;
  config.workers = static_cast<int>(cli.get_int("workers", 4));
  try {
    config.backend = deploy::parse_backend_kind(cli.get("backend", "scalar"));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cq_serve_bench: %s\n", e.what());
    return 2;
  }
  config.max_batch = static_cast<int>(cli.get_int("max_batch", 16));
  config.max_wait_us = cli.get_int("max_wait_us", 200);
  config.queue_capacity = static_cast<std::size_t>(cli.get_int("queue", 1024));

  deploy::QuantizedArtifact artifact;
  try {
    artifact = deploy::load_artifact(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cq_serve_bench: %s\n", e.what());
    return 1;
  }

  try {
    serve::Server server(artifact, config);
    const tensor::Shape& sample_shape = server.session().sample_shape();
    std::printf("%s: %s, input %s, %d classes, %zu integer layers\n", path.c_str(),
                artifact.arch.kind.c_str(),
                tensor::shape_to_string(sample_shape).c_str(),
                server.session().num_classes(),
                server.session().integer_layer_count());
    std::printf("workers %d, backend %s, max_batch %d, max_wait %ld us, queue %zu, "
                "%ld closed-loop submitters, %ld requests, %u hw threads\n",
                config.workers, server.session().backend().name(), config.max_batch,
                config.max_wait_us, config.queue_capacity, threads, requests,
                std::thread::hardware_concurrency());

    // Deterministic per-thread request streams.
    const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
    const auto make_sample = [&sample_shape](util::Rng& rng) {
      return tensor::Tensor::rand_uniform(sample_shape, rng, 0.0f, 1.0f);
    };

    {  // untimed warmup: fills caches and exercises every context once
      util::Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
      std::vector<std::future<tensor::Tensor>> inflight;
      for (long i = 0; i < warmup; ++i) inflight.push_back(server.submit(make_sample(rng)));
      for (auto& f : inflight) f.get();
    }
    server.reset_stats();  // the open-loop warmup must not skew the report
    util::Timer timer;

    std::vector<std::thread> submitters;
    submitters.reserve(static_cast<std::size_t>(threads));
    std::atomic<long> failed{0};
    for (long t = 0; t < threads; ++t) {
      const long share = requests / threads + (t < requests % threads ? 1 : 0);
      submitters.emplace_back([&server, &make_sample, &failed, share, seed, t] {
        util::Rng rng(seed + static_cast<std::uint64_t>(t) * 1000003ULL);
        for (long i = 0; i < share; ++i) {
          try {
            server.submit(make_sample(rng)).get();  // closed loop
          } catch (const std::exception& e) {
            // An escaping exception would std::terminate the whole
            // process from this thread; report and count instead.
            if (failed.fetch_add(1) == 0) {
              std::fprintf(stderr, "cq_serve_bench: request failed: %s\n", e.what());
            }
          }
        }
      });
    }
    for (std::thread& submitter : submitters) submitter.join();
    const double elapsed = timer.seconds();
    if (failed.load() != 0) {
      std::fprintf(stderr, "cq_serve_bench: %ld/%ld requests failed\n", failed.load(),
                   requests);
      return 1;
    }

    const serve::ServerStats stats = server.stats();
    std::printf("\n%zu requests in %.3f s  ->  %.1f req/s\n", stats.completed, elapsed,
                static_cast<double>(stats.completed) / elapsed);
    std::printf("latency  p50 %.0f us   p95 %.0f us   p99 %.0f us   mean %.0f us   "
                "max %.0f us\n",
                stats.p50_us, stats.p95_us, stats.p99_us, stats.mean_us, stats.max_us);
    std::printf("batching %zu batches, %.2f mean size, %zu max size\n", stats.batches,
                stats.mean_batch, stats.max_batch);
    server.shutdown();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cq_serve_bench: %s\n", e.what());
    return 1;
  }
  return 0;
}
