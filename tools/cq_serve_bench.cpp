// cq_serve_bench — closed-loop load generator against a .cqar artifact.
//
// Spins up a serve::Server over the artifact and drives it with
// `threads` synchronous submitters (each waits for its response before
// sending the next request), then reports throughput, latency
// percentiles, the queue-wait vs execute breakdown and micro-batch
// shape. The serving-side counterpart of cqar_info: where cqar_info
// inspects the deployed bytes, this measures the deployed behaviour
// under concurrent traffic.
//
// Usage: cq_serve_bench <model.cqar> [options]
//   --requests=N      total requests across all submitters (default 512)
//   --threads=N       closed-loop submitter threads (default 8)
//   --workers=N       server batch workers / engine contexts (default 4)
//   --intra_threads=N threads one forward pass may occupy (default 1)
//   --backend=NAME    kernel backend: scalar | blocked (default scalar)
//   --max_batch=N     micro-batch flush size (default 16)
//   --max_wait_us=N   micro-batch flush age in microseconds (default 200)
//   --queue=N         bounded request queue depth (default 1024)
//   --warmup=N        untimed warmup requests (default 64)
//   --seed=N          input generator seed (default 1)
//   --json=PATH       machine-readable result, same schema as
//                     bench/serve_throughput --json (one sweep row), so
//                     trajectory tooling ingests both
//   --profile         attach obs::PlanProfiler to the engine: prints the
//                     per-op-kind breakdown and embeds the full per-op
//                     report in --json output
//   --trace=PATH      stream one span pair per request into a
//                     Chrome-trace JSON (load in chrome://tracing)
//   --metrics         dump the server's metrics registry in Prometheus
//                     text format after the run

#include <atomic>
#include <cstdio>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "deploy/artifact.h"
#include "obs/chrome_trace.h"
#include "obs/profiler.h"
#include "serve/server.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace cq;
  if (argc < 2 || argv[1][0] == '-') {
    std::fprintf(stderr,
                 "usage: cq_serve_bench <model.cqar> [--requests=512] [--threads=8] "
                 "[--workers=4] [--intra_threads=1] [--backend=scalar|blocked] "
                 "[--max_batch=16] [--max_wait_us=200] [--queue=1024] [--warmup=64] "
                 "[--seed=1] [--json=PATH] [--profile] [--trace=PATH] [--metrics]\n");
    return 2;
  }
  const std::string path = argv[1];
  const util::Cli cli(argc, argv);
  const long requests = cli.get_int("requests", 512);
  const long threads = cli.get_int("threads", 8);
  const long warmup = cli.get_int("warmup", 64);
  if (requests < 1 || threads < 1 || warmup < 0) {
    std::fprintf(stderr, "cq_serve_bench: requests/threads must be >= 1, warmup >= 0\n");
    return 2;
  }

  serve::ServerConfig config;
  config.workers = static_cast<int>(cli.get_int("workers", 4));
  config.intra_threads = static_cast<int>(cli.get_int("intra_threads", 1));
  try {
    config.backend = deploy::parse_backend_kind(cli.get("backend", "scalar"));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cq_serve_bench: %s\n", e.what());
    return 2;
  }
  config.max_batch = static_cast<int>(cli.get_int("max_batch", 16));
  config.max_wait_us = cli.get_int("max_wait_us", 200);
  config.queue_capacity = static_cast<std::size_t>(cli.get_int("queue", 1024));
  const std::string json_path = cli.get("json", "");
  const std::string trace_path = cli.get("trace", "");
  const bool profile = cli.get_bool("profile", false);
  const bool metrics = cli.get_bool("metrics", false);

  deploy::QuantizedArtifact artifact;
  try {
    artifact = deploy::load_artifact(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cq_serve_bench: %s\n", e.what());
    return 1;
  }

  try {
    serve::Server server(artifact, config);
    const tensor::Shape& sample_shape = server.session().sample_shape();
    std::printf("%s: %s, input %s, %d classes, %zu integer layers\n", path.c_str(),
                artifact.arch.kind.c_str(),
                tensor::shape_to_string(sample_shape).c_str(),
                server.session().num_classes(),
                server.session().integer_layer_count());
    std::printf("workers %d, intra %d, backend %s, max_batch %d, max_wait %ld us, "
                "queue %zu, %ld closed-loop submitters, %ld requests, %u hw threads\n",
                config.workers, config.intra_threads,
                server.session().backend().name(), config.max_batch,
                config.max_wait_us, config.queue_capacity, threads, requests,
                std::thread::hardware_concurrency());

    // Deterministic per-thread request streams.
    const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
    const auto make_sample = [&sample_shape](util::Rng& rng) {
      return tensor::Tensor::rand_uniform(sample_shape, rng, 0.0f, 1.0f);
    };

    {  // untimed warmup: fills caches and exercises every context once
      util::Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
      std::vector<std::future<tensor::Tensor>> inflight;
      for (long i = 0; i < warmup; ++i) inflight.push_back(server.submit(make_sample(rng)));
      for (auto& f : inflight) f.get();
    }
    server.reset_stats();  // the open-loop warmup must not skew the report

    // Observability hooks attach after warmup so they cover exactly the
    // measured window.
    std::unique_ptr<obs::PlanProfiler> profiler;
    if (profile) {
      profiler = std::make_unique<obs::PlanProfiler>(server.session().plan(),
                                                     &server.session().backend());
      server.set_op_trace(profiler.get());
    }
    std::unique_ptr<obs::ChromeTraceWriter> tracer;
    if (!trace_path.empty()) {
      tracer = std::make_unique<obs::ChromeTraceWriter>();
      server.set_span_sink(tracer.get());
    }
    util::Timer timer;

    std::vector<std::thread> submitters;
    submitters.reserve(static_cast<std::size_t>(threads));
    std::atomic<long> failed{0};
    for (long t = 0; t < threads; ++t) {
      const long share = requests / threads + (t < requests % threads ? 1 : 0);
      submitters.emplace_back([&server, &make_sample, &failed, share, seed, t] {
        util::Rng rng(seed + static_cast<std::uint64_t>(t) * 1000003ULL);
        for (long i = 0; i < share; ++i) {
          try {
            server.submit(make_sample(rng)).get();  // closed loop
          } catch (const std::exception& e) {
            // An escaping exception would std::terminate the whole
            // process from this thread; report and count instead.
            if (failed.fetch_add(1) == 0) {
              std::fprintf(stderr, "cq_serve_bench: request failed: %s\n", e.what());
            }
          }
        }
      });
    }
    for (std::thread& submitter : submitters) submitter.join();
    const double elapsed = timer.seconds();
    if (failed.load() != 0) {
      std::fprintf(stderr, "cq_serve_bench: %ld/%ld requests failed\n", failed.load(),
                   requests);
      return 1;
    }

    const serve::ServerStats stats = server.stats();
    server.set_op_trace(nullptr);
    server.set_span_sink(nullptr);
    std::printf("\n%zu requests in %.3f s  ->  %.1f req/s\n", stats.completed, elapsed,
                static_cast<double>(stats.completed) / elapsed);
    std::printf("latency  p50 %.0f us   p95 %.0f us   p99 %.0f us   mean %.0f us   "
                "max %.0f us\n",
                stats.p50_us, stats.p95_us, stats.p99_us, stats.mean_us, stats.max_us);
    std::printf("queue    p50 %.0f us   p95 %.0f us   mean %.0f us   |   execute "
                "p50 %.0f us   p95 %.0f us   mean %.0f us\n",
                stats.p50_queue_us, stats.p95_queue_us, stats.mean_queue_us,
                stats.p50_exec_us, stats.p95_exec_us, stats.mean_exec_us);
    std::printf("batching %zu batches, %.2f mean size, %zu max size\n", stats.batches,
                stats.mean_batch, stats.max_batch);

    obs::ProfileReport report;
    if (profiler != nullptr) {
      report = profiler->report();
      util::Table kinds({"op kind", "calls", "total ms", "share"});
      for (const obs::ProfileAggregate& agg : report.by_kind) {
        kinds.add_row({agg.key, std::to_string(agg.calls),
                       util::Table::num(agg.total_ms, 3),
                       util::Table::num(100.0 * agg.share, 1) + "%"});
      }
      std::printf("\nper-op-kind profile (%.3f ms attributed)\n%s\n", report.total_ms,
                  kinds.render().c_str());
    }

    if (tracer != nullptr) {
      if (!tracer->write(trace_path)) return 1;
      std::printf("wrote %s (%zu trace events — load in chrome://tracing)\n",
                  trace_path.c_str(), tracer->size());
    }

    if (metrics) {
      std::printf("\n%s", server.metrics().to_prometheus().c_str());
    }

    if (!json_path.empty()) {
      std::FILE* f = std::fopen(json_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cq_serve_bench: cannot write %s\n", json_path.c_str());
        return 1;
      }
      // Same shape as bench/serve_throughput --json: one sweep row for
      // the single configuration this run measured.
      std::fprintf(f,
                   "{\n  \"hardware_threads\": %u,\n  \"requests\": %ld,\n"
                   "  \"submitters\": %ld,\n  \"backend\": \"%s\",\n  \"sweep\": [\n",
                   std::thread::hardware_concurrency(), requests, threads,
                   deploy::backend_kind_name(config.backend));
      std::fprintf(f,
                   "    {\"workers\": %d, \"intra_threads\": %d, \"rps\": %.1f, "
                   "\"p50_us\": %.0f, \"p95_us\": %.0f, \"p99_us\": %.0f, "
                   "\"mean_batch\": %.2f, \"p50_queue_us\": %.0f, "
                   "\"p95_queue_us\": %.0f, \"p50_exec_us\": %.0f, "
                   "\"p95_exec_us\": %.0f}\n",
                   config.workers, config.intra_threads,
                   static_cast<double>(stats.completed) / elapsed, stats.p50_us,
                   stats.p95_us, stats.p99_us, stats.mean_batch, stats.p50_queue_us,
                   stats.p95_queue_us, stats.p50_exec_us, stats.p95_exec_us);
      std::fprintf(f, "  ]");
      if (profiler != nullptr) {
        std::fprintf(f, ",\n  \"profile\": %s", report.to_json().c_str());
      }
      std::fprintf(f, "\n}\n");
      std::fclose(f);
      std::printf("wrote %s\n", json_path.c_str());
    }
    server.shutdown();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cq_serve_bench: %s\n", e.what());
    return 1;
  }
  return 0;
}
