// cqar_info — inspect a .cqar deployment artifact without loading the
// model: architecture, per-layer bit histograms, size breakdown and
// integrity status. The deployment-side counterpart of
// examples/export_and_deploy.
//
// Usage: cqar_info <model.cqar> [--verify]
//   --verify   additionally instantiate the model (full structural check)

#include <cstdio>
#include <map>

#include "deploy/artifact.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cq;
  if (argc < 2 || argv[1][0] == '-') {
    std::fprintf(stderr, "usage: cqar_info <model.cqar> [--verify]\n");
    return 2;
  }
  const std::string path = argv[1];
  const util::Cli cli(argc, argv);

  deploy::QuantizedArtifact artifact;
  try {
    artifact = deploy::load_artifact(path);
  } catch (const deploy::ArtifactError& e) {
    std::fprintf(stderr, "cqar_info: %s\n", e.what());
    return 1;
  }

  std::printf("%s\n", path.c_str());
  std::printf("architecture : %s\n", artifact.arch.kind.c_str());
  for (const auto& [key, value] : artifact.arch.params) {
    std::printf("  %-14s %g\n", key.c_str(), value);
  }
  std::printf("activation quantizers: %zu", artifact.act_quants.size());
  if (!artifact.act_quants.empty()) {
    std::printf(" (bits:");
    for (const deploy::ActQuantState& aq : artifact.act_quants) {
      std::printf(" %d", aq.bits);
    }
    std::printf(")");
  }
  std::printf("\n\n");

  util::Table table({"layer", "filters", "w/filter", "bits/weight", "0-bit", "range",
                     "payload B"});
  for (const deploy::PackedLayer& layer : artifact.packed_layers) {
    int pruned = 0;
    for (const std::uint8_t b : layer.filter_bits) pruned += (b == 0);
    table.add_row({layer.name, std::to_string(layer.num_filters),
                   std::to_string(layer.weights_per_filter),
                   util::Table::num(layer.bits_per_weight(), 3), std::to_string(pruned),
                   util::Table::num(layer.range_hi, 4),
                   std::to_string(layer.codes.size())});
  }
  std::printf("%s\n", table.render().c_str());

  const deploy::SizeReport size = deploy::size_report(artifact);
  std::printf("packed codes %zu B + metadata %zu B + dense fp32 %zu B = %zu B total "
              "(%.2fx vs fp32)\n",
              size.packed_code_bytes, size.packed_meta_bytes, size.dense_bytes,
              size.total_bytes(), size.compression_ratio());

  if (cli.get_bool("verify", false)) {
    try {
      auto model = deploy::instantiate(artifact);
      std::printf("verify       : OK — model instantiates (%s)\n",
                  model->name().c_str());
    } catch (const std::exception& e) {
      std::printf("verify       : FAILED — %s\n", e.what());
      return 1;
    }
  }
  return 0;
}
