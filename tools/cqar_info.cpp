// cqar_info — inspect a .cqar deployment artifact without loading the
// model: architecture, per-layer bit histograms, activation-quantizer
// calibration, size breakdown and integrity status. The
// deployment-side counterpart of examples/export_and_deploy.
//
// Usage: cqar_info <model.cqar> [--verify] [--plan] [--profile]
//                               [--optimize=0|1] [--backend=NAME]
//                               [--runs=N] [--batch=N]
//   --verify   additionally instantiate the model (full structural
//              check), compile the ExecutionPlan, and run the static
//              plan verifier (deploy/verify.h) over both the compiled
//              and the optimized plan — any invariant finding prints
//              as a diagnostic table and fails the run
//   --plan     compile the deployment ExecutionPlan and print its op
//              listing (kind, shapes, bits, slots, arena offsets,
//              fused epilogue stages, and which kernel implementation
//              the selected backend dispatches each op to) plus the
//              planned arena size. With --optimize (the default) the
//              deploy::optimize_plan pass pipeline runs first and the
//              per-pass log + op-count/arena deltas print after the
//              listing; --optimize=0 shows the plan as compiled
//   --profile  compile the plan, run `runs` random batches of `batch`
//              samples through a profiled serving session
//              (obs::PlanProfiler) and print where the wall time goes:
//              per op, per op kind, per layer, plus the fraction of
//              end-to-end time the profiler attributes to ops
//   --backend  backend --plan's dispatch column reflects and --profile
//              executes on: scalar | blocked | simd (default scalar)
//   --runs     profiled runs for --profile (default 16)
//   --batch    samples per profiled run (default 8)
//
// Exit status: 0 on success, 1 for any unreadable/truncated/corrupted
// artifact (with a one-line diagnostic on stderr), 2 for usage errors.

#include <cstdio>
#include <map>
#include <vector>

#include "deploy/artifact.h"
#include "deploy/backend.h"
#include "deploy/passes/passes.h"
#include "deploy/plan.h"
#include "deploy/verify.h"
#include "nn/models/model.h"
#include "obs/profiler.h"
#include "serve/engine_session.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

/// Index into artifact.act_quants for each packed layer (the
/// quantizer on that layer's post-ReLU output), recovered by
/// instantiating the architecture skeleton and walking its scored
/// layers in export order. -1 when the mapping cannot be formed.
std::vector<int> act_quant_of_packed_layer(const cq::deploy::QuantizedArtifact& artifact) {
  std::vector<int> map;
  try {
    auto model = cq::deploy::instantiate_model(artifact.arch);
    const auto quantizers = model->activation_quantizers();
    for (const cq::nn::ScoredLayerRef& ref : model->scored_layers()) {
      int index = -1;
      for (std::size_t i = 0; i < quantizers.size(); ++i) {
        if (quantizers[i] == ref.act_quant) {
          index = static_cast<int>(i);
          break;
        }
      }
      // Multi-layer refs (projection shortcuts) pack one entry each.
      for (std::size_t l = 0; l < ref.layers.size(); ++l) map.push_back(index);
    }
  } catch (const std::exception&) {
    map.clear();  // unknown architecture: print the table without the mapping
  }
  if (map.size() != artifact.packed_layers.size()) {
    map.assign(artifact.packed_layers.size(), -1);
  }
  return map;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cq;
  if (argc < 2 || argv[1][0] == '-') {
    std::fprintf(stderr,
                 "usage: cqar_info <model.cqar> [--verify] [--plan] [--profile] "
                 "[--optimize=0|1] [--backend=scalar|blocked|simd] [--runs=16] "
                 "[--batch=8]\n");
    return 2;
  }
  const std::string path = argv[1];
  const util::Cli cli(argc, argv);

  deploy::QuantizedArtifact artifact;
  try {
    artifact = deploy::load_artifact(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cqar_info: %s\n", e.what());
    return 1;
  }

  std::printf("%s\n", path.c_str());
  std::printf("architecture : %s\n", artifact.arch.kind.c_str());
  for (const auto& [key, value] : artifact.arch.params) {
    std::printf("  %-14s %g\n", key.c_str(), value);
  }
  std::printf("activation quantizers: %zu", artifact.act_quants.size());
  if (!artifact.act_quants.empty()) {
    std::printf(" (bits:");
    for (const deploy::ActQuantState& aq : artifact.act_quants) {
      std::printf(" %d", aq.bits);
    }
    std::printf(")");
  }
  std::printf("\n\n");

  const std::vector<int> act_of = act_quant_of_packed_layer(artifact);
  util::Table table({"layer", "filters", "w/filter", "bits/weight", "0-bit", "range",
                     "payload B", "act bits", "act clip"});
  for (std::size_t i = 0; i < artifact.packed_layers.size(); ++i) {
    const deploy::PackedLayer& layer = artifact.packed_layers[i];
    int pruned = 0;
    for (const std::uint8_t b : layer.filter_bits) pruned += (b == 0);
    std::string act_bits = "-";
    std::string act_clip = "-";
    const int aq = act_of[i];
    if (aq >= 0 && aq < static_cast<int>(artifact.act_quants.size())) {
      act_bits = std::to_string(artifact.act_quants[static_cast<std::size_t>(aq)].bits);
      act_clip = util::Table::num(
          artifact.act_quants[static_cast<std::size_t>(aq)].max_activation, 4);
    }
    table.add_row({layer.name, std::to_string(layer.num_filters),
                   std::to_string(layer.weights_per_filter),
                   util::Table::num(layer.bits_per_weight(), 3), std::to_string(pruned),
                   util::Table::num(layer.range_hi, 4),
                   std::to_string(layer.codes.size()), act_bits, act_clip});
  }
  std::printf("%s\n", table.render().c_str());

  const deploy::SizeReport size = deploy::size_report(artifact);
  std::printf("packed codes %zu B + metadata %zu B + dense fp32 %zu B = %zu B total "
              "(%.2fx vs fp32)\n",
              size.packed_code_bytes, size.packed_meta_bytes, size.dense_bytes,
              size.total_bytes(), size.compression_ratio());

  deploy::BackendKind backend_kind;
  try {
    backend_kind = deploy::parse_backend_kind(cli.get("backend", "scalar"));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cqar_info: %s\n", e.what());
    return 2;  // usage error, not a corrupted artifact
  }

  const bool optimize = cli.get_bool("optimize", true);

  if (cli.get_bool("plan", false)) {
    try {
      deploy::ExecutionPlan plan = deploy::compile_plan(artifact);
      const std::size_t ops_compiled = plan.ops().size();
      const std::size_t arena_compiled = plan.arena_bytes();
      deploy::OptimizeReport opt;
      if (optimize) opt = deploy::optimize_plan(plan);
      const auto backend = deploy::make_backend(backend_kind);
      backend->prepare(plan);
      util::Table ops({"#", "op", "layer", "slots", "out shape", "bits",
                       "epilogue", "arena off", "backend"});
      for (std::size_t i = 0; i < plan.ops().size(); ++i) {
        const deploy::PlanOp& op = plan.ops()[i];
        const deploy::PlanSlot& out = plan.slots()[static_cast<std::size_t>(op.out)];
        std::string slots = std::to_string(op.in0);
        if (op.in1 >= 0) slots += "," + std::to_string(op.in1);
        slots += " -> " + std::to_string(op.out);
        const bool has_bits = op.kind == deploy::OpKind::EncodeAct ||
                              op.kind == deploy::OpKind::IntConv ||
                              op.kind == deploy::OpKind::IntLinear;
        // Fused epilogue stages plus the input domain: "codes>" marks
        // an op adopting pre-encoded grid codes from its producer.
        std::string fused = deploy::epilogue_suffix(op);
        if (op.in_codes) fused = "codes>" + fused;
        ops.add_row({std::to_string(i), deploy::op_kind_name(op.kind),
                     op.label.empty() ? "-" : op.label, slots,
                     cq::tensor::shape_to_string(out.shape),
                     has_bits ? std::to_string(op.act_bits) : "-",
                     fused.empty() ? "-" : fused, std::to_string(out.offset),
                     backend->dispatch(op)});
      }
      std::printf("\nexecution plan (backend %s, %s)\n%s\n", backend->name(),
                  optimize ? "optimized" : "as compiled", ops.render().c_str());
      if (optimize) {
        util::Table passes({"pass", "ops", "arena floats/sample", "changes"});
        for (const deploy::PassResult& p : opt.passes) {
          passes.add_row({p.name,
                          std::to_string(p.ops_before) + " -> " +
                              std::to_string(p.ops_after),
                          std::to_string(p.arena_before) + " -> " +
                              std::to_string(p.arena_after),
                          std::to_string(p.changes)});
        }
        std::printf("optimizer passes\n%s\n", passes.render().c_str());
        std::printf("optimizer    : %zu -> %zu ops (%zu removed), arena "
                    "%zu -> %zu B/sample\n",
                    ops_compiled, plan.ops().size(), opt.ops_removed(),
                    arena_compiled, plan.arena_bytes());
      }
      std::printf("plan         : %zu ops, %d slots, %zu integer layers, "
                  "arena %zu B/sample\n",
                  plan.ops().size(), plan.slot_count(), plan.integer_layers().size(),
                  plan.arena_bytes());
      // What the dispatch column's simd/* labels resolved against on
      // this machine (runtime CPUID + CQ_SIMD override).
      std::printf("cpu          : %s\n", deploy::cpu_features_json().c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "cqar_info: plan compilation failed — %s\n", e.what());
      return 1;
    }
  }

  if (cli.get_bool("profile", false)) {
    const int runs = static_cast<int>(cli.get_int("runs", 16));
    const int batch = static_cast<int>(cli.get_int("batch", 8));
    if (runs < 1 || batch < 1) {
      std::fprintf(stderr, "cqar_info: --runs/--batch must be >= 1\n");
      return 2;
    }
    try {
      serve::EngineSession session(artifact, 1, {},
                                   deploy::make_backend(backend_kind));
      const tensor::Shape& sample = session.sample_shape();
      tensor::Shape batch_shape;
      batch_shape.push_back(batch);
      batch_shape.insert(batch_shape.end(), sample.begin(), sample.end());
      util::Rng rng(1);
      const tensor::Tensor input =
          tensor::Tensor::rand_uniform(batch_shape, rng, 0.0f, 1.0f);
      session.run(input);  // warm: arena growth stays out of the window

      obs::PlanProfiler profiler(session.plan(), &session.backend());
      session.set_trace_sink(&profiler);
      util::Timer timer;
      for (int r = 0; r < runs; ++r) session.run(input);
      const double wall_ms = timer.millis();
      session.set_trace_sink(nullptr);
      const obs::ProfileReport report = profiler.report();

      util::Table ops({"#", "op", "layer", "dispatch", "calls", "total ms",
                       "mean us", "KB/call", "share"});
      for (const obs::OpProfileRow& row : report.ops) {
        const double kb_per_call =
            row.calls > 0 ? static_cast<double>(row.bytes) / 1024.0 /
                                static_cast<double>(row.calls)
                          : 0.0;
        ops.add_row({std::to_string(row.op), row.kind, row.label, row.dispatch,
                     std::to_string(row.calls), util::Table::num(row.total_ms, 3),
                     util::Table::num(row.mean_us, 1),
                     util::Table::num(kb_per_call, 1),
                     util::Table::num(100.0 * row.share, 1) + "%"});
      }
      std::printf("\nper-op profile (backend %s, %d runs x batch %d)\n%s\n",
                  session.backend().name(), runs, batch, ops.render().c_str());

      util::Table kinds({"op kind", "calls", "total ms", "share"});
      for (const obs::ProfileAggregate& agg : report.by_kind) {
        kinds.add_row({agg.key, std::to_string(agg.calls),
                       util::Table::num(agg.total_ms, 3),
                       util::Table::num(100.0 * agg.share, 1) + "%"});
      }
      std::printf("by op kind\n%s\n", kinds.render().c_str());

      util::Table layers({"layer", "calls", "total ms", "share"});
      for (const obs::ProfileAggregate& agg : report.by_layer) {
        layers.add_row({agg.key, std::to_string(agg.calls),
                        util::Table::num(agg.total_ms, 3),
                        util::Table::num(100.0 * agg.share, 1) + "%"});
      }
      std::printf("by layer\n%s\n", layers.render().c_str());

      std::printf("profile      : %.3f ms attributed of %.3f ms wall "
                  "(%.1f%% coverage)\n",
                  report.total_ms, wall_ms,
                  wall_ms > 0.0 ? 100.0 * report.total_ms / wall_ms : 0.0);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "cqar_info: profiling failed — %s\n", e.what());
      return 1;
    }
  }

  if (cli.get_bool("verify", false)) {
    try {
      auto model = deploy::instantiate(artifact);
      std::printf("verify       : OK — model instantiates (%s)\n",
                  model->name().c_str());
    } catch (const std::exception& e) {
      std::printf("verify       : FAILED — %s\n", e.what());
      return 1;
    }
    // Static plan verification: compile the IR and prove the invariant
    // catalog (dataflow, shapes, arena lifetimes, overflow bounds) —
    // over the plan as compiled and again after the optimizer pass
    // pipeline, since serving defaults to the optimized plan.
    try {
      deploy::ExecutionPlan plan = deploy::compile_plan(artifact);
      const auto verify_one = [](const char* which,
                                 const deploy::ExecutionPlan& p) -> bool {
        const deploy::VerifyReport report = deploy::verify_plan(p);
        if (!report.clean()) {
          util::Table findings({"op", "rule", "slot", "message"});
          for (const deploy::PlanDiagnostic& d : report.diagnostics) {
            findings.add_row({d.op >= 0 ? std::to_string(d.op) : "-",
                              deploy::verify_rule_name(d.rule),
                              d.slot >= 0 ? std::to_string(d.slot) : "-", d.message});
          }
          std::printf("plan verify  : FAILED (%s) — %zu finding(s)\n%s\n", which,
                      report.diagnostics.size(), findings.render().c_str());
          return false;
        }
        int narrow = 0;
        for (const deploy::IntOpCertificate& cert : report.certificates) {
          narrow += cert.int32_fast_path ? 1 : 0;
        }
        std::printf("plan verify  : OK (%s) — %zu rules checked, %zu integer "
                    "ops certified (int32 fast path on %d)\n",
                    which, deploy::all_verify_rules().size(),
                    report.certificates.size(), narrow);
        return true;
      };
      if (!verify_one("as compiled", plan)) return 1;
      deploy::optimize_plan(plan);
      if (!verify_one("optimized", plan)) return 1;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "cqar_info: plan verification failed — %s\n", e.what());
      return 1;
    }
  }
  return 0;
}
