# Regression check for cqar_info's corrupted-input behaviour: a
# truncated artifact must produce a nonzero exit and a one-line
# "cqar_info: ..." diagnostic on stderr — not a crash or a zero exit.
#
# Driven as: cmake -DTOOL=<cqar_info> -DARTIFACT=<x.cqar> -DOUT=<tmp> -P <this>

foreach(var TOOL ARTIFACT OUT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "truncated_info_test: -D${var}=... is required")
  endif()
endforeach()

file(SIZE "${ARTIFACT}" full_size)
if(full_size LESS 100)
  message(FATAL_ERROR "truncated_info_test: artifact implausibly small (${full_size} B)")
endif()
math(EXPR keep "${full_size} * 6 / 10")

execute_process(
  COMMAND head -c ${keep} "${ARTIFACT}"
  OUTPUT_FILE "${OUT}"
  RESULT_VARIABLE head_result)
if(NOT head_result EQUAL 0)
  message(FATAL_ERROR "truncated_info_test: could not truncate the artifact")
endif()

execute_process(
  COMMAND "${TOOL}" "${OUT}"
  RESULT_VARIABLE tool_result
  OUTPUT_VARIABLE tool_stdout
  ERROR_VARIABLE tool_stderr)

if(tool_result EQUAL 0)
  message(FATAL_ERROR "cqar_info accepted a truncated artifact (stdout: ${tool_stdout})")
endif()
if(NOT tool_stderr MATCHES "cqar_info: ")
  message(FATAL_ERROR
    "cqar_info exited ${tool_result} without a clean diagnostic (stderr: ${tool_stderr})")
endif()
message(STATUS "cqar_info rejected the truncated artifact: ${tool_stderr}")
