// cq_serve — multi-model network serving daemon.
//
// Hosts any number of .cqar artifacts in one serve::ModelRegistry
// (each compiled once, optimized, statically verified and budget
// checked at load) behind the cq::net socket front end: a poll()
// event loop speaking the length-prefixed CQN1 protocol on localhost
// (or all interfaces with --all_interfaces). Overload never blocks
// and never silently drops: a request past the per-model queue-depth
// threshold or the global in-flight cap is answered kBusy.
//
// Models come from a manifest (--manifest=serve.txt), lines of
//
//   <name> <artifact.cqar> [key=value ...]   # per-model overrides
//
// with keys workers, intra_threads, backend (scalar|blocked|simd),
// max_batch, max_wait_us, queue_capacity, admit_depth, budget_mb,
// opt (0|1); '#' starts a comment. Positional name=path arguments
// load additional models with the flag-level defaults, and --zoo
// fabricates the three default-size zoo models (vgg_small, mlp,
// resnet20) in process — no artifact files needed, handy for load
// tests and CI.
//
// SIGTERM/SIGINT drain gracefully: stop accepting, finish every
// admitted request on the version it started on, flush all replies,
// then exit 0. --smoke runs an in-process self-test over localhost
// (info + inference round trips, byte-identity against a fresh
// EngineSession on the same artifact, byte-identity across a hot-swap
// to the identical artifact) and then triggers exactly that SIGTERM
// path; exit status reports the verdict.
//
// Usage: cq_serve [--manifest=FILE] [name=path...] [--zoo] [--port=N]
//                 [--workers=N] [--intra_threads=N] [--backend=scalar|blocked|simd]
//                 [--max_batch=N] [--max_wait_us=N] [--queue_capacity=N]
//                 [--admit_depth=N] [--budget_mb=N] [--opt=0|1]
//                 [--max_inflight=N] [--responders=N] [--max_connections=N]
//                 [--all_interfaces] [--smoke]

#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "deploy/artifact.h"
#include "net/client.h"
#include "net/front_end.h"
#include "serve/engine_session.h"
#include "serve/model_registry.h"
#include "serve_fixtures.h"
#include "util/cli.h"
#include "util/rng.h"

namespace {

using namespace cq;

int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
  const char byte = 's';
  if (::write(g_signal_pipe[1], &byte, 1) < 0) {
    // Pipe full: a shutdown is already pending.
  }
}

struct LoadedModel {
  std::string name;
  deploy::QuantizedArtifact artifact;
  serve::ModelConfig config;
};

serve::ModelConfig config_from_flags(const util::Cli& cli) {
  serve::ModelConfig config;
  config.server.workers = static_cast<int>(cli.get_int("workers", 2));
  config.server.intra_threads = static_cast<int>(cli.get_int("intra_threads", 1));
  config.server.backend = deploy::parse_backend_kind(cli.get("backend", "blocked"));
  config.server.max_batch = static_cast<int>(cli.get_int("max_batch", 16));
  config.server.max_wait_us = cli.get_int("max_wait_us", 200);
  config.server.queue_capacity =
      static_cast<std::size_t>(cli.get_int("queue_capacity", 256));
  config.server.opt = cli.get_int("opt", 1) == 0 ? serve::PlanOpt::kO0 : serve::PlanOpt::kO1;
  config.admit_queue_depth = static_cast<std::size_t>(cli.get_int("admit_depth", 0));
  config.memory_budget_bytes =
      static_cast<std::size_t>(cli.get_int("budget_mb", 0)) << 20;
  return config;
}

/// Applies one "key=value" manifest token onto a model's config.
bool apply_override(serve::ModelConfig& config, const std::string& key,
                    const std::string& value) {
  const long n = std::strtol(value.c_str(), nullptr, 10);
  if (key == "workers") {
    config.server.workers = static_cast<int>(n);
  } else if (key == "intra_threads") {
    config.server.intra_threads = static_cast<int>(n);
  } else if (key == "backend") {
    config.server.backend = deploy::parse_backend_kind(value);
  } else if (key == "max_batch") {
    config.server.max_batch = static_cast<int>(n);
  } else if (key == "max_wait_us") {
    config.server.max_wait_us = n;
  } else if (key == "queue_capacity") {
    config.server.queue_capacity = static_cast<std::size_t>(n);
  } else if (key == "admit_depth") {
    config.admit_queue_depth = static_cast<std::size_t>(n);
  } else if (key == "budget_mb") {
    config.memory_budget_bytes = static_cast<std::size_t>(n) << 20;
  } else if (key == "opt") {
    config.server.opt = n == 0 ? serve::PlanOpt::kO0 : serve::PlanOpt::kO1;
  } else {
    return false;
  }
  return true;
}

/// Parses "name path [key=value ...]" manifest lines; '#' comments.
std::vector<LoadedModel> parse_manifest(const std::string& path,
                                        const serve::ModelConfig& defaults) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cq_serve: cannot open manifest " + path);
  std::vector<LoadedModel> models;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream tokens(line);
    std::string name;
    std::string artifact_path;
    if (!(tokens >> name)) continue;  // blank / comment-only line
    if (!(tokens >> artifact_path)) {
      throw std::runtime_error("cq_serve: manifest line " + std::to_string(lineno) +
                               ": expected '<name> <artifact.cqar>'");
    }
    LoadedModel model;
    model.name = name;
    model.config = defaults;
    std::string token;
    while (tokens >> token) {
      const auto eq = token.find('=');
      if (eq == std::string::npos ||
          !apply_override(model.config, token.substr(0, eq), token.substr(eq + 1))) {
        throw std::runtime_error("cq_serve: manifest line " + std::to_string(lineno) +
                                 ": unknown override '" + token + "'");
      }
    }
    model.artifact = deploy::load_artifact(artifact_path);
    models.push_back(std::move(model));
  }
  return models;
}

std::vector<LoadedModel> zoo_models(const serve::ModelConfig& defaults) {
  std::vector<LoadedModel> models;
  {
    const nn::VggSmallConfig cfg;
    nn::VggSmall vgg(cfg);
    models.push_back({"vgg_small",
                      serve::fabricate_artifact(
                          vgg, {cfg.in_channels, cfg.image_size, cfg.image_size}, 3, 5),
                      defaults});
  }
  {
    const nn::MlpConfig cfg;
    nn::Mlp mlp(cfg);
    models.push_back(
        {"mlp", serve::fabricate_artifact(mlp, {cfg.in_features}, 3, 3), defaults});
  }
  {
    const nn::ResNet20Config cfg;
    nn::ResNet20 resnet(cfg);
    models.push_back({"resnet20",
                      serve::fabricate_artifact(
                          resnet, {cfg.in_channels, cfg.image_size, cfg.image_size}, 3,
                          7),
                      defaults});
  }
  return models;
}

/// One deterministic sample for a model's input contract.
tensor::Tensor smoke_sample(const tensor::Shape& shape, std::uint64_t seed) {
  util::Rng rng(seed);
  return tensor::Tensor::rand_uniform(shape, rng, -0.2f, 1.2f);
}

bool tensors_identical(const tensor::Tensor& a, const tensor::Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(), a.numel() * sizeof(float)) == 0;
}

/// Localhost self-test: for every model, info + round trip, byte
/// compare against a fresh in-process EngineSession on the identical
/// artifact, hot-swap to the same artifact under way, round trip
/// again and require the exact same bytes.
bool run_smoke(std::uint16_t port, serve::ModelRegistry& registry,
               const std::vector<LoadedModel>& models) {
  try {
    for (const LoadedModel& model : models) {
      net::Client client("localhost", port);
      const net::Client::ModelInfo info = client.info(model.name);
      const tensor::Tensor sample = smoke_sample(info.sample_shape, 101);

      net::Client::InferResult first = client.infer(model.name, sample);
      if (!first.admitted) {
        std::fprintf(stderr, "cq_serve smoke: '%s' shed the smoke request: %s\n",
                     model.name.c_str(), first.reason.c_str());
        return false;
      }

      // The remote answer must be byte-identical to running the same
      // artifact in process (same compile + optimize pipeline).
      serve::EngineSession session(model.artifact, 1, {}, nullptr,
                                   serve::PlanCheck::kNone, model.config.server.opt);
      tensor::Shape batch_shape;
      batch_shape.push_back(1);
      batch_shape.insert(batch_shape.end(), info.sample_shape.begin(),
                         info.sample_shape.end());
      tensor::Tensor batch(batch_shape);
      std::memcpy(batch.data(), sample.data(), sample.numel() * sizeof(float));
      const tensor::Tensor local = session.run(batch);
      tensor::Tensor local_row({info.num_classes});
      std::memcpy(local_row.data(), local.data(),
                  static_cast<std::size_t>(info.num_classes) * sizeof(float));
      if (!tensors_identical(first.logits, local_row)) {
        std::fprintf(stderr,
                     "cq_serve smoke: '%s' remote logits differ from in-process "
                     "EngineSession\n",
                     model.name.c_str());
        return false;
      }

      // Hot-swap to the identical artifact; answers must not change by
      // a byte, and the version must bump.
      const int version = registry.swap(model.name, model.artifact);
      const net::Client::InferResult after = client.infer(model.name, sample);
      if (!after.admitted || !tensors_identical(after.logits, first.logits)) {
        std::fprintf(stderr,
                     "cq_serve smoke: '%s' answer changed across hot-swap to v%d\n",
                     model.name.c_str(), version);
        return false;
      }
      if (client.info(model.name).version != version) {
        std::fprintf(stderr, "cq_serve smoke: '%s' version did not bump\n",
                     model.name.c_str());
        return false;
      }
      std::printf("cq_serve smoke: %-10s OK (round trip, in-process byte match, "
                  "hot-swap to v%d byte-stable)\n",
                  model.name.c_str(), version);
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "cq_serve smoke: %s\n", error.what());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const serve::ModelConfig defaults = config_from_flags(cli);

  std::vector<LoadedModel> models;
  try {
    if (cli.has("manifest")) {
      models = parse_manifest(cli.get("manifest", ""), defaults);
    }
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) continue;
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "cq_serve: expected name=path, got '%s'\n", arg.c_str());
        return 2;
      }
      LoadedModel model;
      model.name = arg.substr(0, eq);
      model.config = defaults;
      model.artifact = deploy::load_artifact(arg.substr(eq + 1));
      models.push_back(std::move(model));
    }
    if (cli.get_bool("zoo", false)) {
      std::vector<LoadedModel> zoo = zoo_models(defaults);
      for (LoadedModel& model : zoo) models.push_back(std::move(model));
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "%s\n", error.what());
    return 2;
  }
  if (models.empty()) {
    std::fprintf(stderr,
                 "cq_serve: nothing to serve — pass --manifest=FILE, name=path or "
                 "--zoo\n");
    return 2;
  }

  serve::ModelRegistry registry;
  try {
    for (const LoadedModel& model : models) {
      registry.load(model.name, model.artifact, model.config);
      const serve::ModelInfo info = registry.info(model.name);
      std::printf("cq_serve: loaded %-10s v%d  %zu ops, %.1f MiB resident\n",
                  model.name.c_str(), info.version, info.ops,
                  static_cast<double>(info.resident_bytes) / (1 << 20));
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "%s\n", error.what());
    return 1;
  }

  net::FrontEndConfig net_config;
  net_config.port = static_cast<std::uint16_t>(cli.get_int("port", 7411));
  net_config.loopback_only = !cli.get_bool("all_interfaces", false);
  net_config.max_connections = static_cast<int>(cli.get_int("max_connections", 64));
  net_config.max_inflight = static_cast<std::size_t>(cli.get_int("max_inflight", 1024));
  net_config.responders = static_cast<int>(cli.get_int("responders", 2));

  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "cq_serve: pipe: %s\n", std::strerror(errno));
    return 1;
  }
  struct sigaction action {};
  action.sa_handler = on_signal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);

  try {
    net::FrontEnd front(registry, net_config);
    std::printf("cq_serve: listening on 127.0.0.1:%u (%zu models)\n", front.port(),
                models.size());
    std::fflush(stdout);

    bool smoke_ok = true;
    std::thread smoke;
    if (cli.get_bool("smoke", false)) {
      // The self-test ends by triggering the same SIGTERM drain a real
      // deployment exercises.
      smoke = std::thread([&, port = front.port()] {
        smoke_ok = run_smoke(port, registry, models);
        std::raise(SIGTERM);
      });
    }

    char byte = 0;
    while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
    }
    std::printf("cq_serve: draining...\n");
    std::fflush(stdout);
    front.stop();
    if (smoke.joinable()) smoke.join();

    const net::FrontEndStats fstats = front.stats();
    for (const std::string& name : registry.names()) {
      const serve::ServerStats s = registry.stats(name);
      const serve::ModelInfo info = registry.info(name);
      std::printf("cq_serve: %-10s v%-2d completed=%zu failed=%zu shed=%llu "
                  "p50=%.0fus p99=%.0fus\n",
                  name.c_str(), info.version, s.completed, s.failed,
                  static_cast<unsigned long long>(info.requests_shed), s.p50_us,
                  s.p99_us);
    }
    std::printf("cq_serve: connections=%zu replies: result=%zu busy=%zu error=%zu "
                "protocol_errors=%zu\n",
                fstats.connections_accepted, fstats.replies_result,
                fstats.replies_busy, fstats.replies_error, fstats.protocol_errors);
    registry.unload_all();
    return smoke_ok ? 0 : 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "cq_serve: %s\n", error.what());
    return 1;
  }
}
