# End-to-end daemon smoke: writes a two-entry manifest over the
# exported smoke artifact (same model under two names, one with a
# tight admission threshold), launches cq_serve on an ephemeral port
# with --smoke — which round-trips every model over localhost, byte
# compares the remote logits against a fresh in-process EngineSession,
# hot-swaps each model to the identical artifact mid-traffic, then
# drains through the SIGTERM path — and requires a zero exit.
#
# Driven as: cmake -DTOOL=<cq_serve> -DARTIFACT=<x.cqar> -DMANIFEST=<tmp> -P <this>

foreach(var TOOL ARTIFACT MANIFEST)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "serve_smoke_test: -D${var}=... is required")
  endif()
endforeach()

file(WRITE "${MANIFEST}" "# cq_serve smoke manifest
smoke      ${ARTIFACT} workers=2 max_batch=8
smoke_tight ${ARTIFACT} workers=1 queue_capacity=64 admit_depth=32
")

execute_process(
  COMMAND "${TOOL}" --manifest=${MANIFEST} --port=0 --smoke
  RESULT_VARIABLE tool_result
  OUTPUT_VARIABLE tool_stdout
  ERROR_VARIABLE tool_stderr
  TIMEOUT 120)

if(NOT tool_result EQUAL 0)
  message(FATAL_ERROR
    "cq_serve --smoke failed (exit ${tool_result})\nstdout: ${tool_stdout}\nstderr: ${tool_stderr}")
endif()
if(NOT tool_stdout MATCHES "cq_serve: draining")
  message(FATAL_ERROR
    "cq_serve --smoke exited 0 without the SIGTERM drain path (stdout: ${tool_stdout})")
endif()
message(STATUS "cq_serve smoke passed:\n${tool_stdout}")
