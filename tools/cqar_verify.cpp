// cqar_verify — static plan verification as a CI gate.
//
// Compiles each artifact's deployment ExecutionPlan and proves the IR
// invariant catalog over it (deploy/verify.h): dataflow
// well-formedness, shape consistency, arena lifetime safety at every
// batch size, and the integer-path overflow certification the blocked
// backend's int32 fast path rests on. Any finding is printed as a
// diagnostic table and turns the exit status nonzero, so CI can gate
// the model zoo on "plans verify clean" the same way it gates tests.
//
// Usage: cqar_verify [--zoo] [--certs] [--optimize] [<model.cqar>...]
//   --zoo       also verify the three built-in zoo models (VggSmall,
//               Mlp, ResNet20 — fabricated in process, the same fixtures
//               the plan/backend test suites pin byte-identity against)
//   --certs     print the per-integer-op overflow certificates (bound,
//               narrowest certified accumulator: int8 = the SIMD
//               backend's maddubs path, int32 = the blocked fast path)
//   --optimize  additionally run the deploy::optimize_plan pass
//               pipeline over each plan and verify the optimized plan
//               too (shown as "<name> +opt") — the shape serving
//               actually defaults to
//
// Exit status: 0 when every plan verifies clean, 1 on any finding or
// unloadable/uncompilable artifact, 2 for usage errors.

#include <cstdio>
#include <string>
#include <vector>

#include "deploy/artifact.h"
#include "deploy/passes/passes.h"
#include "deploy/plan.h"
#include "deploy/verify.h"
#include "serve_fixtures.h"
#include "util/cli.h"
#include "util/table.h"

namespace {

using namespace cq;

/// Verifies one compiled plan under a display name; returns true when
/// it is clean. Findings render as the diagnostic table.
bool verify_one(const std::string& name, const deploy::ExecutionPlan& plan,
                bool print_certs) {
  const deploy::VerifyReport report = deploy::verify_plan(plan);
  if (report.clean()) {
    int narrow = 0;
    for (const deploy::IntOpCertificate& cert : report.certificates) {
      narrow += cert.int32_fast_path ? 1 : 0;
    }
    std::printf("%-16s OK — %zu ops, %d slots, %zu rules checked, "
                "%zu integer ops certified (int32 fast path on %d)\n",
                name.c_str(), plan.ops().size(), plan.slot_count(),
                deploy::all_verify_rules().size(), report.certificates.size(),
                narrow);
  } else {
    std::printf("%-16s FAILED — %zu finding(s)\n", name.c_str(),
                report.diagnostics.size());
    util::Table findings({"op", "rule", "slot", "message"});
    for (const deploy::PlanDiagnostic& d : report.diagnostics) {
      findings.add_row({d.op >= 0 ? std::to_string(d.op) : "-",
                        deploy::verify_rule_name(d.rule),
                        d.slot >= 0 ? std::to_string(d.slot) : "-", d.message});
    }
    std::printf("%s\n", findings.render().c_str());
  }
  if (print_certs && !report.certificates.empty()) {
    util::Table certs({"op", "layer", "max|w|", "terms", "bound", "acc"});
    for (const deploy::IntOpCertificate& cert : report.certificates) {
      // Narrowest certified accumulator: int8 is the SIMD backend's
      // maddubs path (implies int32), int32 the blocked fast path.
      const char* acc = cert.int8_fast_path    ? "int8"
                        : cert.int32_fast_path ? "int32"
                                               : "int64";
      certs.add_row({std::to_string(cert.op), std::to_string(cert.layer),
                     std::to_string(cert.max_abs_weight),
                     std::to_string(cert.terms), std::to_string(cert.bound),
                     acc});
    }
    std::printf("%s\n", certs.render().c_str());
  }
  return report.clean();
}

/// Verifies the compiled plan and, when `optimize` is set, runs the
/// optimizer pass pipeline on it and verifies the result as
/// "<name> +opt". Returns true only when every verified shape is
/// clean; an optimizer throw (a pass left the plan failing
/// verification) counts as a failure, not a crash.
bool verify_plan_shapes(const std::string& name, deploy::ExecutionPlan plan,
                        bool print_certs, bool optimize) {
  bool clean = verify_one(name, plan, print_certs);
  if (!optimize) return clean;
  try {
    deploy::optimize_plan(plan);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cqar_verify: %s: optimizer failed — %s\n", name.c_str(),
                 e.what());
    return false;
  }
  return verify_one(name + " +opt", plan, print_certs) && clean;
}

bool verify_artifact(const std::string& path, bool print_certs, bool optimize) {
  deploy::QuantizedArtifact artifact;
  try {
    artifact = deploy::load_artifact(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cqar_verify: %s\n", e.what());
    return false;
  }
  try {
    return verify_plan_shapes(path, deploy::compile_plan(artifact), print_certs,
                              optimize);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cqar_verify: %s: plan compilation failed — %s\n",
                 path.c_str(), e.what());
    return false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool zoo = cli.get_bool("zoo", false);
  const bool certs = cli.get_bool("certs", false);
  const bool optimize = cli.get_bool("optimize", false);

  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) continue;  // flags handled by Cli
    paths.push_back(arg);
  }
  if (paths.empty() && !zoo) {
    std::fprintf(stderr,
                 "usage: cqar_verify [--zoo] [--certs] [--optimize] "
                 "[<model.cqar>...]\n");
    return 2;
  }

  bool all_clean = true;
  for (const std::string& path : paths) {
    all_clean = verify_artifact(path, certs, optimize) && all_clean;
  }
  if (zoo) {
    // The same fabricated zoo the plan/backend byte-identity suites
    // run; a compiler change that breaks an invariant for any of the
    // three architectures fails here without needing artifact files.
    all_clean = verify_plan_shapes("zoo:vgg_small",
                                   deploy::compile_plan(serve::tiny_vgg_artifact()),
                                   certs, optimize) &&
                all_clean;
    all_clean = verify_plan_shapes("zoo:mlp",
                                   deploy::compile_plan(serve::tiny_mlp_artifact()),
                                   certs, optimize) &&
                all_clean;
    all_clean = verify_plan_shapes("zoo:resnet20",
                                   deploy::compile_plan(serve::tiny_resnet_artifact()),
                                   certs, optimize) &&
                all_clean;
  }
  return all_clean ? 0 : 1;
}
