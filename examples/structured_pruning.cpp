// Structured pruning through 0-bit quantization (paper Section I:
// "if weights are quantized to 0-bit, it means those weights are
// pruned"). Runs the CQ search with a 1-bit range so every filter is
// either kept (1 bit, binary weights) or pruned (0 bit), sweeping the
// average-bit budget to trace a pruning-rate/accuracy curve.
//
// Run: ./structured_pruning [--model=resnet|vgg]

#include <cstdio>

#include "core/pipeline.h"
#include "data/synthetic.h"
#include "nn/models/resnet20.h"
#include "nn/models/vgg_small.h"
#include "nn/trainer.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cq;
  const util::Cli cli(argc, argv);
  const bool use_resnet = cli.get("model", "resnet") == "resnet";

  data::SyntheticVisionConfig data_cfg = data::synthetic_cifar10_like();
  data_cfg.train_per_class = 100;
  const data::DataSplit data = data::make_synthetic_vision(data_cfg);

  std::unique_ptr<nn::Model> fp_model;
  if (use_resnet) {
    nn::ResNet20Config cfg;
    cfg.base_width = 2;
    fp_model = std::make_unique<nn::ResNet20>(cfg);
  } else {
    fp_model = std::make_unique<nn::VggSmall>(nn::VggSmallConfig{});
  }

  nn::TrainConfig tc;
  tc.epochs = 4;
  tc.batch_size = 50;
  tc.lr = use_resnet ? 0.05 : 0.02;
  nn::Trainer trainer(tc);
  trainer.fit(*fp_model, data.train.images, data.train.labels);
  const double fp_acc =
      nn::Trainer::evaluate(*fp_model, data.test.images, data.test.labels);
  std::printf("FP accuracy: %.4f\n", fp_acc);

  util::Table table({"bit budget", "kept filters", "pruned filters", "prune rate",
                     "accuracy"});
  for (const double budget : {0.9, 0.7, 0.5, 0.3}) {
    auto model = fp_model->clone();
    core::CqConfig cfg;
    cfg.search.max_bits = 1;  // 0-bit = pruned, 1-bit = kept (binary)
    cfg.search.desired_avg_bits = budget;
    cfg.search.t1 = 0.4;
    cfg.refine.epochs = 3;
    cfg.refine.lr = 0.02;
    cfg.activation_bits = 8;  // pruning study: keep activations precise
    core::CqPipeline pipeline(cfg);
    const core::CqReport report = pipeline.run(*model, data);

    const std::size_t pruned = report.arrangement.filters_with_bits(0);
    const std::size_t kept = report.arrangement.filters_with_bits(1);
    table.add_row({util::Table::num(budget, 1), std::to_string(kept),
                   std::to_string(pruned),
                   util::Table::num(100.0 * static_cast<double>(pruned) /
                                        static_cast<double>(kept + pruned), 1) + "%",
                   util::Table::num(report.quant_accuracy, 4)});
    std::printf("budget %.1f: pruned %zu/%zu filters, acc %.4f\n", budget, pruned,
                kept + pruned, report.quant_accuracy);
  }
  std::printf("\n=== structured pruning via 0-bit quantization (%s) ===\n%s",
              use_resnet ? "ResNet-20" : "VGG-small", table.render().c_str());
  return 0;
}
