// Quickstart: the complete class-based quantization flow in ~60 lines.
//
//   1. generate a small labelled image set (CIFAR-10 stand-in),
//   2. train a full-precision VGG-small,
//   3. run the CQ pipeline (importance scores -> bit-width search ->
//      knowledge-distillation refinement) at 2.0/2.0 bits,
//   4. print the resulting accuracy and bit-width arrangement.
//
// Run: ./quickstart [--bits=2.0] [--epochs=4]

#include <cstdio>

#include "core/pipeline.h"
#include "data/synthetic.h"
#include "nn/metrics.h"
#include "nn/models/vgg_small.h"
#include "nn/trainer.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace cq;
  const util::Cli cli(argc, argv);
  const double bits = cli.get_double("bits", 2.0);
  const int epochs = static_cast<int>(cli.get_int("epochs", 4));

  // 1. Data: a synthetic 10-class image corpus (3x16x16).
  data::SyntheticVisionConfig data_cfg = data::synthetic_cifar10_like();
  data_cfg.train_per_class = 100;
  const data::DataSplit data = data::make_synthetic_vision(data_cfg);
  std::printf("dataset: %zu train / %zu val / %zu test images\n", data.train.size(),
              data.val.size(), data.test.size());

  // 2. Full-precision training.
  nn::VggSmall model({});
  nn::TrainConfig train_cfg;
  train_cfg.epochs = epochs;
  train_cfg.batch_size = 50;
  train_cfg.lr = 0.02;
  train_cfg.lr_milestones = {(3 * epochs) / 4};
  nn::Trainer trainer(train_cfg);
  trainer.fit(model, data.train.images, data.train.labels);
  std::printf("full-precision test accuracy: %.4f\n",
              nn::Trainer::evaluate(model, data.test.images, data.test.labels));

  // 3. Class-based quantization to an average of `bits` weight bits and
  //    `bits` activation bits.
  core::CqConfig cq_cfg;
  cq_cfg.search.desired_avg_bits = bits;
  cq_cfg.search.t1 = 0.5;                // paper Section III-C
  cq_cfg.refine.epochs = 2;
  cq_cfg.activation_bits = static_cast<int>(bits);
  core::CqPipeline pipeline(cq_cfg);
  const core::CqReport report = pipeline.run(model, data);

  // 4. Report.
  std::printf("\n--- CQ report ---\n");
  std::printf("average weight bits : %.3f (target %.1f)\n", report.achieved_avg_bits, bits);
  std::printf("accuracy fp         : %.4f\n", report.fp_accuracy);
  std::printf("accuracy quantized  : %.4f (before refinement %.4f)\n",
              report.quant_accuracy, report.quant_accuracy_pre_refine);
  std::printf("thresholds          :");
  for (const double p : report.thresholds) std::printf(" %.2f", p);
  std::printf("\nper-layer bits      :\n");
  for (const auto& layer : report.arrangement.layers()) {
    int pruned = 0;
    for (const int b : layer.filter_bits) pruned += (b == 0);
    std::printf("  %-8s %3zu filters, %2d pruned (0-bit)\n", layer.layer_name.c_str(),
                layer.filter_bits.size(), pruned);
  }

  // Class-resolved damage: quantization rarely hurts uniformly.
  const nn::ConfusionMatrix cm = nn::evaluate_confusion(
      model, data.test.images, data.test.labels, data_cfg.num_classes);
  std::printf("per-class accuracy  :");
  for (const double acc : cm.per_class_accuracy()) std::printf(" %.2f", acc);
  std::printf("\n");
  return 0;
}
