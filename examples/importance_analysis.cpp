// Importance-score analysis (the paper's Figure-1 concept made
// runnable): which neurons matter for which classes?
//
// Trains a network, collects the class-based scores, and prints
//  - per-layer distribution of "how many classes does a filter serve",
//  - the prunable filters (score ~ 0, paper: 0-bit candidates),
//  - the universal filters (score ~ M, needed by every class).
//
// Works on real CIFAR-10 binaries when --cifar_dir points at a
// directory with data_batch_1.bin / test_batch.bin; falls back to the
// synthetic corpus otherwise.
//
// Run: ./importance_analysis [--cifar_dir=/path/to/cifar-10-batches-bin]

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "core/importance.h"
#include "data/cifar10.h"
#include "data/synthetic.h"
#include "nn/models/vgg_small.h"
#include "nn/trainer.h"
#include "util/cli.h"
#include "util/stats.h"

namespace {

cq::data::DataSplit load_data(const cq::util::Cli& cli, int* image_size) {
  using namespace cq;
  const std::string dir = cli.get("cifar_dir", "");
  if (!dir.empty()) {
    const std::string train_path = dir + "/data_batch_1.bin";
    const std::string test_path = dir + "/test_batch.bin";
    if (std::filesystem::exists(train_path) && data::is_cifar10_batch(train_path)) {
      std::printf("loading real CIFAR-10 from %s\n", dir.c_str());
      data::DataSplit split;
      split.train = data::load_cifar10_batch(train_path, 2000);
      const data::Dataset test = data::load_cifar10_batch(test_path, 1000);
      split.val = test.stratified_take(400);
      split.test = test;
      *image_size = 32;
      return split;
    }
    std::printf("no CIFAR-10 batches under %s, using the synthetic corpus\n", dir.c_str());
  }
  data::SyntheticVisionConfig cfg = data::synthetic_cifar10_like();
  cfg.train_per_class = 100;
  *image_size = cfg.image_size;
  return data::make_synthetic_vision(cfg);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cq;
  const util::Cli cli(argc, argv);
  int image_size = 16;
  const data::DataSplit data = load_data(cli, &image_size);
  const int classes = data.train.num_classes();

  nn::VggSmallConfig model_cfg;
  model_cfg.image_size = image_size;
  model_cfg.num_classes = classes;
  nn::VggSmall model(model_cfg);

  nn::TrainConfig tc;
  tc.epochs = static_cast<int>(cli.get_int("epochs", 4));
  tc.batch_size = 50;
  tc.lr = 0.02;
  nn::Trainer trainer(tc);
  trainer.fit(model, data.train.images, data.train.labels);
  std::printf("test accuracy: %.4f\n\n",
              nn::Trainer::evaluate(model, data.test.images, data.test.labels));

  core::ImportanceCollector collector({1e-50, 20});
  const auto scores = collector.collect(model, data.val);

  std::printf("=== class-based importance (scores in [0, %d]) ===\n", classes);
  for (const auto& layer : scores) {
    const auto summary = util::summarize(
        std::span<const float>(layer.filter_phi.data(), layer.filter_phi.size()));
    int prunable = 0;
    int universal = 0;
    for (const float phi : layer.filter_phi) {
      if (phi < 0.5f) ++prunable;
      if (phi > 0.9f * static_cast<float>(classes)) ++universal;
    }
    std::printf("%-8s %4d filters | mean %5.2f | prunable(<0.5) %3d | universal(>90%% M) %3d\n",
                layer.name.c_str(), layer.channels, summary.mean, prunable, universal);
  }

  // The filters a pruning pass (0-bit) would remove first.
  std::printf("\nleast important filters (prune candidates):\n");
  for (const auto& layer : scores) {
    const auto order = util::argsort(
        std::span<const float>(layer.filter_phi.data(), layer.filter_phi.size()));
    std::printf("  %-8s:", layer.name.c_str());
    for (std::size_t i = 0; i < std::min<std::size_t>(5, order.size()); ++i) {
      std::printf(" #%zu(%.2f)", order[i], layer.filter_phi[order[i]]);
    }
    std::printf("\n");
  }
  return 0;
}
