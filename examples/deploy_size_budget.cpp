// Deployment scenario from the paper's introduction: a model must fit
// a mobile-class weight-storage budget. This example sweeps the
// average bit-width B, reports the accuracy/size trade-off curve, and
// selects the smallest model above a user accuracy floor.
//
// Run: ./deploy_size_budget [--min_acc=0.85] [--model=vgg|resnet]

#include <algorithm>
#include <cstdio>

#include "core/pipeline.h"
#include "data/synthetic.h"
#include "nn/models/resnet20.h"
#include "nn/models/vgg_small.h"
#include "nn/trainer.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cq;
  const util::Cli cli(argc, argv);
  const double min_acc = cli.get_double("min_acc", 0.85);
  const bool use_resnet = cli.get("model", "vgg") == "resnet";

  data::SyntheticVisionConfig data_cfg = data::synthetic_cifar10_like();
  data_cfg.train_per_class = 100;
  const data::DataSplit data = data::make_synthetic_vision(data_cfg);

  std::unique_ptr<nn::Model> fp_model;
  if (use_resnet) {
    nn::ResNet20Config cfg;
    cfg.base_width = 2;
    fp_model = std::make_unique<nn::ResNet20>(cfg);
  } else {
    fp_model = std::make_unique<nn::VggSmall>(nn::VggSmallConfig{});
  }

  nn::TrainConfig train_cfg;
  train_cfg.epochs = 4;
  train_cfg.batch_size = 50;
  train_cfg.lr = use_resnet ? 0.05 : 0.02;
  train_cfg.lr_milestones = {3};
  nn::Trainer trainer(train_cfg);
  trainer.fit(*fp_model, data.train.images, data.train.labels);
  const double fp_acc =
      nn::Trainer::evaluate(*fp_model, data.test.images, data.test.labels);

  util::Table table({"avg bits", "weight KiB", "accuracy", "acc drop"});
  struct Row {
    double bits, kib, acc;
  };
  std::vector<Row> rows;
  for (const double bits : {4.0, 3.0, 2.0, 1.0}) {
    auto model = fp_model->clone();
    core::CqConfig cfg;
    cfg.search.desired_avg_bits = bits;
    cfg.refine.epochs = 2;
    cfg.activation_bits = 4;
    core::CqPipeline pipeline(cfg);
    const core::CqReport report = pipeline.run(*model, data);
    // Pruned filters cost one mask bit per weight (conservative).
    const double kib = report.arrangement.storage_bytes(/*pruned_bits=*/1) / 1024.0;
    rows.push_back({report.achieved_avg_bits, kib, report.quant_accuracy});
    table.add_row({util::Table::num(report.achieved_avg_bits, 2),
                   util::Table::num(kib, 1),
                   util::Table::num(report.quant_accuracy, 4),
                   util::Table::num(fp_acc - report.quant_accuracy, 4)});
    std::printf("B=%.1f done (acc %.4f, %.1f KiB)\n", bits, report.quant_accuracy, kib);
  }

  std::printf("\n=== Accuracy / size trade-off (%s, FP acc %.4f) ===\n%s",
              use_resnet ? "ResNet-20" : "VGG-small", fp_acc, table.render().c_str());

  const auto pick = std::min_element(rows.begin(), rows.end(), [&](const Row& a, const Row& b) {
    const bool a_ok = a.acc >= min_acc;
    const bool b_ok = b.acc >= min_acc;
    if (a_ok != b_ok) return a_ok;
    return a_ok ? a.kib < b.kib : a.acc > b.acc;
  });
  if (pick != rows.end() && pick->acc >= min_acc) {
    std::printf("smallest deployment above %.0f%% accuracy: %.2f avg bits (%.1f KiB, %.4f)\n",
                min_acc * 100, pick->bits, pick->kib, pick->acc);
  } else {
    std::printf("no configuration reaches the %.0f%% accuracy floor; best is %.4f\n",
                min_acc * 100,
                std::max_element(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
                  return a.acc < b.acc;
                })->acc);
  }
  return 0;
}
