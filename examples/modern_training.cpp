// Modern training recipe: the library outside the paper's exact setup.
//
// The reproduction benches train with the paper's SGD + step-LR
// recipe; this example shows the alternative training surface —
//   - Adam with cosine learning-rate annealing,
//   - CIFAR-style augmentation (random flip + pad-crop + cutout),
// and then runs the same CQ quantization on the result, demonstrating
// that the method is agnostic to how the full-precision model was
// obtained.
//
// Run: ./modern_training [--bits=3.0] [--epochs=6]

#include <cstdio>

#include "core/pipeline.h"
#include "data/augment.h"
#include "data/synthetic.h"
#include "nn/models/resnet20.h"
#include "nn/trainer.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace cq;
  const util::Cli cli(argc, argv);
  const double bits = cli.get_double("bits", 3.0);
  const int epochs = static_cast<int>(cli.get_int("epochs", 6));

  data::SyntheticVisionConfig data_cfg = data::synthetic_cifar10_like();
  data_cfg.train_per_class = 100;
  const data::DataSplit data = data::make_synthetic_vision(data_cfg);

  nn::ResNet20 model({});

  data::AugmentConfig aug_cfg;
  aug_cfg.hflip = true;
  aug_cfg.pad = 2;
  aug_cfg.cutout = 3;

  nn::TrainConfig train_cfg;
  train_cfg.epochs = epochs;
  train_cfg.batch_size = 50;
  train_cfg.lr = 0.005;
  train_cfg.optimizer = nn::OptimizerKind::kAdam;
  train_cfg.lr_schedule = nn::LrScheduleKind::kCosine;
  train_cfg.weight_decay = 1e-4;
  train_cfg.augment = data::Augmenter(aug_cfg).as_fn();

  const auto history = nn::Trainer(train_cfg).fit(model, data.train.images,
                                                  data.train.labels);
  for (const nn::EpochStats& e : history) {
    std::printf("epoch %2d  loss %.4f  train acc %.3f  lr %.5f\n", e.epoch, e.loss,
                e.train_accuracy, e.lr);
  }
  const double fp_acc =
      nn::Trainer::evaluate(model, data.test.images, data.test.labels);
  std::printf("full-precision test accuracy: %.4f\n\n", fp_acc);

  core::CqConfig cq_cfg;
  cq_cfg.search.desired_avg_bits = bits;
  cq_cfg.refine.epochs = 2;
  cq_cfg.activation_bits = static_cast<int>(bits);
  const core::CqReport report = core::CqPipeline(cq_cfg).run(model, data);
  std::printf("CQ at %.1f/%.0f: accuracy %.4f (fp %.4f), achieved %.3f avg bits\n", bits,
              static_cast<double>(cq_cfg.activation_bits), report.quant_accuracy,
              report.fp_accuracy, report.achieved_avg_bits);
  return 0;
}
