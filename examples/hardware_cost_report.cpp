// Hardware cost walkthrough: per-layer energy and latency of a
// CQ-quantized network on accelerator hardware.
//
//   1. train VGG-small, quantize with CQ at --bits,
//   2. trace the per-layer MAC workloads from the live model,
//   3. print the per-layer energy split (compute / weight SRAM /
//      activation SRAM / DRAM) and bit-serial PE-array cycles,
//   4. compare the totals against int8 and fp32 uniform references.
//
// Run: ./hardware_cost_report [--bits=2.0] [--epochs=3]

#include <cstdio>

#include "core/pipeline.h"
#include "data/synthetic.h"
#include "hw/cost_model.h"
#include "hw/pe_array.h"
#include "nn/models/vgg_small.h"
#include "nn/trainer.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cq;
  const util::Cli cli(argc, argv);
  const double bits = cli.get_double("bits", 2.0);
  const int epochs = static_cast<int>(cli.get_int("epochs", 3));

  data::SyntheticVisionConfig data_cfg = data::synthetic_cifar10_like();
  data_cfg.train_per_class = 100;
  const data::DataSplit data = data::make_synthetic_vision(data_cfg);

  nn::VggSmall model({});
  nn::TrainConfig train_cfg;
  train_cfg.epochs = epochs;
  train_cfg.batch_size = 50;
  train_cfg.lr = 0.02;
  nn::Trainer(train_cfg).fit(model, data.train.images, data.train.labels);

  core::CqConfig cq_cfg;
  cq_cfg.search.desired_avg_bits = bits;
  cq_cfg.refine.epochs = 1;
  cq_cfg.activation_bits = static_cast<int>(bits);
  const core::CqReport report = core::CqPipeline(cq_cfg).run(model, data);
  std::printf("CQ accuracy %.4f at %.3f avg weight bits\n\n", report.quant_accuracy,
              report.achieved_avg_bits);

  // Per-layer workloads of the quantized model.
  tensor::Tensor sample({1, 3, data_cfg.image_size, data_cfg.image_size});
  for (std::size_t i = 0; i < sample.numel(); ++i) sample[i] = data.test.images[i];
  const auto workloads = hw::trace_workloads(model, sample, cq_cfg.activation_bits);

  const hw::EnergyModel energy;
  const hw::ModelCost cost = hw::estimate_cost(workloads, energy);
  const hw::PeArrayReport timing = hw::simulate_pe_array(workloads);

  util::Table table({"layer", "MACs", "active", "compute pJ", "w-SRAM pJ", "a-SRAM pJ",
                     "DRAM pJ", "cycles"});
  for (std::size_t i = 0; i < cost.layers.size(); ++i) {
    const hw::LayerCost& l = cost.layers[i];
    table.add_row({l.name, std::to_string(l.total_macs), std::to_string(l.active_macs),
                   util::Table::num(l.compute_pj, 0), util::Table::num(l.weight_sram_pj, 0),
                   util::Table::num(l.act_sram_pj, 0), util::Table::num(l.dram_pj, 0),
                   std::to_string(timing.layers[i].cycles)});
  }
  std::printf("%s", table.render().c_str());

  // Uniform reference points.
  for (const int ref_bits : {8, 32}) {
    const auto ref = hw::uniform_workloads(workloads, ref_bits);
    const hw::ModelCost ref_cost = hw::estimate_cost(ref, energy);
    const hw::PeArrayReport ref_timing = hw::simulate_pe_array(ref);
    std::printf("\nvs uniform %2d-bit: %.2fx energy, %.2fx latency", ref_bits,
                ref_cost.total_pj() / cost.total_pj(),
                static_cast<double>(ref_timing.total_cycles) /
                    static_cast<double>(timing.total_cycles));
  }
  std::printf("\n\ntotal: %.2f uJ, %lld cycles (%.2f us at 1 GHz)\n",
              cost.total_pj() / 1e6, static_cast<long long>(timing.total_cycles),
              timing.seconds * 1e6);
  return 0;
}
