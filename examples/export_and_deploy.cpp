// Export & deploy: what happens after the paper's method finishes.
//
//   1. train a full-precision VGG-small on the synthetic corpus,
//   2. run class-based quantization at the requested average bit-width,
//   3. export the quantized model into a deployment artifact whose
//      weights are stored as packed sub-byte quantizer codes,
//   4. save it, print the byte-level size breakdown vs fp32,
//   5. load the artifact back as a fresh model ("the device side") and
//      verify it reproduces the training-side accuracy bit-for-bit.
//
// Run: ./export_and_deploy [--bits=2.0] [--epochs=3] [--out=model.cqar]

#include <cstdio>

#include "core/pipeline.h"
#include "data/synthetic.h"
#include "deploy/artifact.h"
#include "nn/models/vgg_small.h"
#include "nn/trainer.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace cq;
  const util::Cli cli(argc, argv);
  const double bits = cli.get_double("bits", 2.0);
  const int epochs = static_cast<int>(cli.get_int("epochs", 3));
  const std::string out = cli.get("out", "model.cqar");

  // 1. Data + full-precision training.
  data::SyntheticVisionConfig data_cfg = data::synthetic_cifar10_like();
  data_cfg.train_per_class = 100;
  const data::DataSplit data = data::make_synthetic_vision(data_cfg);

  nn::VggSmall model({});
  nn::TrainConfig train_cfg;
  train_cfg.epochs = epochs;
  train_cfg.batch_size = 50;
  train_cfg.lr = 0.02;
  nn::Trainer trainer(train_cfg);
  trainer.fit(model, data.train.images, data.train.labels);

  // 2. Class-based quantization.
  core::CqConfig cq_cfg;
  cq_cfg.search.desired_avg_bits = bits;
  cq_cfg.refine.epochs = 1;
  cq_cfg.activation_bits = static_cast<int>(bits);
  const core::CqReport report = core::CqPipeline(cq_cfg).run(model, data);
  std::printf("quantized accuracy (training side): %.4f at %.3f avg bits\n",
              report.quant_accuracy, report.achieved_avg_bits);

  // 3.-4. Export, save, size accounting.
  const deploy::QuantizedArtifact artifact = deploy::export_model(model);
  deploy::save_artifact(out, artifact);
  const deploy::SizeReport size = deploy::size_report(artifact);
  std::printf("\n--- artifact '%s' ---\n", out.c_str());
  std::printf("packed weight codes : %8zu bytes\n", size.packed_code_bytes);
  std::printf("packing metadata    : %8zu bytes\n", size.packed_meta_bytes);
  std::printf("dense fp32 residue  : %8zu bytes (first/output layers, biases, BN)\n",
              size.dense_bytes);
  std::printf("same weights as fp32: %8zu bytes\n", size.fp32_weight_bytes);
  std::printf("total artifact      : %8zu bytes  (%.2fx smaller than fp32)\n",
              size.total_bytes(), size.compression_ratio());
  for (const deploy::PackedLayer& layer : artifact.packed_layers) {
    std::printf("  %-10s %5d filters  %6.3f bits/weight  %7zu payload bytes\n",
                layer.name.c_str(), layer.num_filters, layer.bits_per_weight(),
                layer.codes.size());
  }

  // 5. Device side: load and verify.
  const deploy::QuantizedArtifact loaded = deploy::load_artifact(out);
  auto device_model = deploy::instantiate(loaded);
  const double device_acc =
      nn::Trainer::evaluate(*device_model, data.test.images, data.test.labels);
  const double training_acc =
      nn::Trainer::evaluate(model, data.test.images, data.test.labels);
  std::printf("\naccuracy training side: %.4f\n", training_acc);
  std::printf("accuracy device side  : %.4f\n", device_acc);
  std::printf("bit-exact             : %s\n", device_acc == training_acc ? "yes" : "NO");
  return device_acc == training_acc ? 0 : 1;
}
