// Reproduces Figure 7: the number of weights per bit-width bucket
// (0..6 bits in the paper's axis; {0..4} is the search range) for all
// four networks at the 2.0/2.0, 3.0/3.0 and 4.0/4.0 settings.
//
// Paper shape to reproduce: VGG-small puts many weights at 0-bit
// (mostly FC layers); the ResNets keep more weights at 1-2 bits
// instead of pruning; 4.0/4.0 keeps most weights at high bit-width.

#include <cstdio>
#include <functional>

#include "core/pipeline.h"
#include "harness.h"
#include "util/csv.h"
#include "util/table.h"

namespace {

struct NetworkCase {
  std::string label;
  std::string checkpoint;
  std::function<std::unique_ptr<cq::nn::Model>()> make;
  const cq::data::DataSplit* split;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace cq;
  const util::Cli cli(argc, argv);
  const bench::BenchScale scale = bench::BenchScale::from_cli(cli);
  const std::string only = cli.get("only", "");

  const data::DataSplit c10 = bench::dataset_c10(scale);
  const data::DataSplit c100 = bench::dataset_c100(scale);
  const std::vector<NetworkCase> cases = {
      {"VGG-small CIFAR10", "vgg_c10", [] { return bench::make_vgg_small(10); }, &c10},
      {"VGG-small CIFAR100", "vgg_c100", [] { return bench::make_vgg_small(100); },
       &c100},
      {"ResNet-20-x1 CIFAR10", "resnet_x1_c10",
       [] { return bench::make_resnet20(10, 1); }, &c10},
      {"ResNet-20-x5 CIFAR100", "resnet_x5_c100",
       [] { return bench::make_resnet20(100, 5); }, &c100},
  };
  const std::vector<double> settings = {2.0, 3.0, 4.0};

  std::printf("=== Figure 7: weight counts per bit-width ===\n\n");
  util::Table table({"network", "setting", "0-bit", "1-bit", "2-bit", "3-bit", "4-bit",
                     "avg"});
  util::CsvWriter csv(cli.get("csv", "fig7_bitwidth_distribution.csv"),
                      {"network", "setting", "bits", "weights"});

  for (const auto& net : cases) {
    if (!only.empty() && net.checkpoint.find(only) == std::string::npos) continue;
    auto fp_model = net.make();
    bench::train_fp_cached(*fp_model, *net.split, net.checkpoint, scale);

    for (const double bits : settings) {
      auto model = fp_model->clone();
      core::CqConfig cfg = bench::make_cq_config(bits, static_cast<int>(bits), scale);
      cfg.refine.epochs = 0;  // the figure shows arrangements, not accuracy
      core::CqPipeline pipeline(cfg);
      const core::CqReport report = pipeline.run(*model, *net.split);

      const std::string setting =
          util::Table::num(bits, 1) + "/" + util::Table::num(bits, 1);
      std::vector<std::string> row = {net.label, setting};
      for (int b = 0; b <= 4; ++b) {
        const std::size_t count = report.arrangement.weights_with_bits(b);
        row.push_back(std::to_string(count));
        csv.add_row({net.label, setting, std::to_string(b), std::to_string(count)});
      }
      row.push_back(util::Table::num(report.achieved_avg_bits, 2));
      table.add_row(std::move(row));
      std::printf("[%s %s] avg %.2f bits over %zu weights\n", net.label.c_str(),
                  setting.c_str(), report.achieved_avg_bits,
                  report.arrangement.total_weights());
    }
  }
  std::printf("\n%s", table.render().c_str());
  return 0;
}
