// plan_compile — measures deploy::compile_plan cost, deploy::verify_plan
// cost, deploy::optimize_plan cost, and the plan footprint at both opt
// settings (as compiled and after the optimizer pass pipeline) for the
// three zoo models, so plan-compile regressions (time or arena bytes),
// verifier slowdowns, and optimizer coverage losses (op-count deltas)
// are visible in the perf-smoke CI lane's JSON artifact alongside
// kernel_scaling. Any verifier finding on a zoo plan — at either opt
// setting — fails the bench.
//
// Usage: plan_compile [--repeat=N] [--json=path]
//   --repeat   timed compiles/verifies/optimizes per model, best-of
//              reported (default 5)
//   --json     machine-readable output for the CI artifact

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "deploy/artifact.h"
#include "deploy/passes/passes.h"
#include "deploy/plan.h"
#include "deploy/verify.h"
#include "nn/models/mlp.h"
#include "nn/models/resnet20.h"
#include "nn/models/vgg_small.h"
#include "serve_fixtures.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace cq;

struct Result {
  std::string name;
  double best_ms = 0.0;
  double verify_ms = 0.0;  ///< best-of verify_plan over the compiled plan
  bool verify_clean = false;
  std::size_t ops = 0;
  int slots = 0;
  std::size_t arena_bytes = 0;
  std::size_t no_reuse_bytes = 0;  ///< one fresh buffer per op output
  std::size_t integer_layers = 0;
  /// Optimizer pass pipeline: best-of optimize_plan cost over a fresh
  /// compile each iteration, and the optimized plan's footprint.
  double optimize_ms = 0.0;
  bool opt_verify_clean = false;
  std::size_t opt_ops = 0;
  int opt_slots = 0;
  std::size_t opt_arena_bytes = 0;
};

Result measure(const std::string& name, const deploy::QuantizedArtifact& artifact,
               int repeat) {
  Result r;
  r.name = name;
  const deploy::ExecutionPlan plan = deploy::compile_plan(artifact);  // warm
  for (int i = 0; i < repeat; ++i) {
    util::Timer timer;
    const deploy::ExecutionPlan timed = deploy::compile_plan(artifact);
    const double ms = timer.millis();
    (void)timed;
    if (i == 0 || ms < r.best_ms) r.best_ms = ms;
  }
  for (int i = 0; i < repeat; ++i) {
    util::Timer timer;
    const deploy::VerifyReport report = deploy::verify_plan(plan);
    const double ms = timer.millis();
    if (i == 0 || ms < r.verify_ms) r.verify_ms = ms;
    r.verify_clean = report.clean();
  }
  r.ops = plan.ops().size();
  r.slots = plan.slot_count();
  r.arena_bytes = plan.arena_bytes();
  r.integer_layers = plan.integer_layers().size();
  for (const deploy::PlanOp& op : plan.ops()) {
    r.no_reuse_bytes +=
        plan.slots()[static_cast<std::size_t>(op.out)].numel * sizeof(float);
  }
  // optimize_plan mutates its input, so every timed iteration starts
  // from a fresh compile (done outside the timer).
  for (int i = 0; i < repeat; ++i) {
    deploy::ExecutionPlan fresh = deploy::compile_plan(artifact);
    util::Timer timer;
    deploy::optimize_plan(fresh);
    const double ms = timer.millis();
    if (i == 0 || ms < r.optimize_ms) r.optimize_ms = ms;
    if (i == 0) {
      r.opt_verify_clean = deploy::verify_plan(fresh).clean();
      r.opt_ops = fresh.ops().size();
      r.opt_slots = fresh.slot_count();
      r.opt_arena_bytes = fresh.arena_bytes();
    }
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int repeat = static_cast<int>(cli.get_int("repeat", 5));
  const std::string json_path = cli.get("json", "");

  // Default-size zoo models (larger than the tiny_* test fixtures, so
  // the compile cost is representative), fabricated with the shared
  // fixture helper; input shapes derive from each config.
  std::vector<Result> results;
  {
    const nn::MlpConfig cfg;
    nn::Mlp mlp(cfg);
    results.push_back(
        measure("Mlp", serve::fabricate_artifact(mlp, {cfg.in_features}, 3, 3), repeat));
  }
  {
    const nn::VggSmallConfig cfg;
    nn::VggSmall vgg(cfg);
    results.push_back(measure(
        "VggSmall",
        serve::fabricate_artifact(
            vgg, {cfg.in_channels, cfg.image_size, cfg.image_size}, 3, 5),
        repeat));
  }
  {
    const nn::ResNet20Config cfg;
    nn::ResNet20 resnet(cfg);
    results.push_back(measure(
        "ResNet20",
        serve::fabricate_artifact(
            resnet, {cfg.in_channels, cfg.image_size, cfg.image_size}, 3, 7),
        repeat));
  }

  util::Table table({"model", "compile ms", "verify ms", "verify", "ops", "slots",
                     "arena B/sample", "no-reuse B", "int layers"});
  bool all_clean = true;
  for (const Result& r : results) {
    table.add_row({r.name, util::Table::num(r.best_ms, 3),
                   util::Table::num(r.verify_ms, 3), r.verify_clean ? "clean" : "FAIL",
                   std::to_string(r.ops), std::to_string(r.slots),
                   std::to_string(r.arena_bytes), std::to_string(r.no_reuse_bytes),
                   std::to_string(r.integer_layers)});
    all_clean = all_clean && r.verify_clean;
  }
  std::printf("compile_plan/verify_plan cost and plan footprint (best of %d)\n%s\n",
              repeat, table.render().c_str());

  util::Table opt({"model", "optimize ms", "ops", "ops removed", "arena B/sample",
                   "verify"});
  for (const Result& r : results) {
    const double removed_pct =
        r.ops > 0 ? 100.0 * static_cast<double>(r.ops - r.opt_ops) /
                        static_cast<double>(r.ops)
                  : 0.0;
    opt.add_row({r.name, util::Table::num(r.optimize_ms, 3),
                 std::to_string(r.ops) + " -> " + std::to_string(r.opt_ops),
                 std::to_string(r.ops - r.opt_ops) + " (" +
                     util::Table::num(removed_pct, 1) + "%)",
                 std::to_string(r.arena_bytes) + " -> " +
                     std::to_string(r.opt_arena_bytes),
                 r.opt_verify_clean ? "clean" : "FAIL"});
    all_clean = all_clean && r.opt_verify_clean;
  }
  std::printf("optimize_plan cost and op-count/arena deltas (best of %d)\n%s\n",
              repeat, opt.render().c_str());
  if (!all_clean) {
    std::fprintf(stderr, "plan_compile: a zoo plan failed static verification\n");
    return 1;
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "plan_compile: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"repeat\": %d,\n  \"models\": [\n", repeat);
    for (std::size_t i = 0; i < results.size(); ++i) {
      const Result& r = results[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"compile_ms\": %.4f, "
                   "\"verify_ms\": %.4f, \"ops\": %zu, "
                   "\"slots\": %d, \"arena_bytes\": %zu, "
                   "\"no_reuse_bytes\": %zu, \"integer_layers\": %zu, "
                   "\"optimize_ms\": %.4f, \"opt_ops\": %zu, "
                   "\"opt_slots\": %d, \"opt_arena_bytes\": %zu}%s\n",
                   r.name.c_str(), r.best_ms, r.verify_ms, r.ops, r.slots,
                   r.arena_bytes, r.no_reuse_bytes, r.integer_layers, r.optimize_ms,
                   r.opt_ops, r.opt_slots, r.opt_arena_bytes,
                   i + 1 == results.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
