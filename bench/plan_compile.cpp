// plan_compile — measures deploy::compile_plan cost, deploy::verify_plan
// cost, and the compiled plan's footprint for the three zoo models, so
// plan-compile regressions (time or arena bytes) and verifier slowdowns
// are visible in the perf-smoke CI lane's JSON artifact alongside
// kernel_scaling. Any verifier finding on a zoo plan fails the bench.
//
// Usage: plan_compile [--repeat=N] [--json=path]
//   --repeat   timed compiles/verifies per model, best-of reported
//              (default 5)
//   --json     machine-readable output for the CI artifact

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "deploy/artifact.h"
#include "deploy/plan.h"
#include "deploy/verify.h"
#include "nn/models/mlp.h"
#include "nn/models/resnet20.h"
#include "nn/models/vgg_small.h"
#include "serve_fixtures.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace cq;

struct Result {
  std::string name;
  double best_ms = 0.0;
  double verify_ms = 0.0;  ///< best-of verify_plan over the compiled plan
  bool verify_clean = false;
  std::size_t ops = 0;
  int slots = 0;
  std::size_t arena_bytes = 0;
  std::size_t no_reuse_bytes = 0;  ///< one fresh buffer per op output
  std::size_t integer_layers = 0;
};

Result measure(const std::string& name, const deploy::QuantizedArtifact& artifact,
               int repeat) {
  Result r;
  r.name = name;
  const deploy::ExecutionPlan plan = deploy::compile_plan(artifact);  // warm
  for (int i = 0; i < repeat; ++i) {
    util::Timer timer;
    const deploy::ExecutionPlan timed = deploy::compile_plan(artifact);
    const double ms = timer.millis();
    (void)timed;
    if (i == 0 || ms < r.best_ms) r.best_ms = ms;
  }
  for (int i = 0; i < repeat; ++i) {
    util::Timer timer;
    const deploy::VerifyReport report = deploy::verify_plan(plan);
    const double ms = timer.millis();
    if (i == 0 || ms < r.verify_ms) r.verify_ms = ms;
    r.verify_clean = report.clean();
  }
  r.ops = plan.ops().size();
  r.slots = plan.slot_count();
  r.arena_bytes = plan.arena_bytes();
  r.integer_layers = plan.integer_layers().size();
  for (const deploy::PlanOp& op : plan.ops()) {
    r.no_reuse_bytes +=
        plan.slots()[static_cast<std::size_t>(op.out)].numel * sizeof(float);
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int repeat = static_cast<int>(cli.get_int("repeat", 5));
  const std::string json_path = cli.get("json", "");

  // Default-size zoo models (larger than the tiny_* test fixtures, so
  // the compile cost is representative), fabricated with the shared
  // fixture helper; input shapes derive from each config.
  std::vector<Result> results;
  {
    const nn::MlpConfig cfg;
    nn::Mlp mlp(cfg);
    results.push_back(
        measure("Mlp", serve::fabricate_artifact(mlp, {cfg.in_features}, 3, 3), repeat));
  }
  {
    const nn::VggSmallConfig cfg;
    nn::VggSmall vgg(cfg);
    results.push_back(measure(
        "VggSmall",
        serve::fabricate_artifact(
            vgg, {cfg.in_channels, cfg.image_size, cfg.image_size}, 3, 5),
        repeat));
  }
  {
    const nn::ResNet20Config cfg;
    nn::ResNet20 resnet(cfg);
    results.push_back(measure(
        "ResNet20",
        serve::fabricate_artifact(
            resnet, {cfg.in_channels, cfg.image_size, cfg.image_size}, 3, 7),
        repeat));
  }

  util::Table table({"model", "compile ms", "verify ms", "verify", "ops", "slots",
                     "arena B/sample", "no-reuse B", "int layers"});
  bool all_clean = true;
  for (const Result& r : results) {
    table.add_row({r.name, util::Table::num(r.best_ms, 3),
                   util::Table::num(r.verify_ms, 3), r.verify_clean ? "clean" : "FAIL",
                   std::to_string(r.ops), std::to_string(r.slots),
                   std::to_string(r.arena_bytes), std::to_string(r.no_reuse_bytes),
                   std::to_string(r.integer_layers)});
    all_clean = all_clean && r.verify_clean;
  }
  std::printf("compile_plan/verify_plan cost and plan footprint (best of %d)\n%s\n",
              repeat, table.render().c_str());
  if (!all_clean) {
    std::fprintf(stderr, "plan_compile: a zoo plan failed static verification\n");
    return 1;
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "plan_compile: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"repeat\": %d,\n  \"models\": [\n", repeat);
    for (std::size_t i = 0; i < results.size(); ++i) {
      const Result& r = results[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"compile_ms\": %.4f, "
                   "\"verify_ms\": %.4f, \"ops\": %zu, "
                   "\"slots\": %d, \"arena_bytes\": %zu, "
                   "\"no_reuse_bytes\": %zu, \"integer_layers\": %zu}%s\n",
                   r.name.c_str(), r.best_ms, r.verify_ms, r.ops, r.slots,
                   r.arena_bytes, r.no_reuse_bytes, r.integer_layers,
                   i + 1 == results.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
