// Micro-benchmarks (google-benchmark) of the numerical kernels that
// dominate the experiment runtimes: GEMM, im2col, the uniform
// quantizer, the integer wrap GEMM, and whole-layer forward/backward.

#include <benchmark/benchmark.h>

#include <memory>

#include "nn/conv2d.h"
#include "deploy/backend.h"
#include "deploy/int_engine.h"
#include "deploy/packing.h"
#include "nn/linear.h"
#include "quant/integer_gemm.h"
#include "quant/uniform.h"
#include "tensor/ops.h"
#include "util/exec_context.h"
#include "util/thread_pool.h"

namespace {

using namespace cq;

void BM_Gemm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(1);
  const tensor::Tensor a = tensor::Tensor::randn({n, n}, rng);
  const tensor::Tensor b = tensor::Tensor::randn({n, n}, rng);
  tensor::Tensor c({n, n});
  for (auto _ : state) {
    tensor::gemm(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128);

void BM_GemmABt(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(2);
  const tensor::Tensor a = tensor::Tensor::randn({n, n}, rng);
  const tensor::Tensor b = tensor::Tensor::randn({n, n}, rng);
  tensor::Tensor c({n, n});
  for (auto _ : state) {
    tensor::gemm_a_bt(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_GemmABt)->Arg(64);

void BM_Im2col(benchmark::State& state) {
  const int size = static_cast<int>(state.range(0));
  util::Rng rng(3);
  tensor::ConvGeometry g;
  g.in_c = 16;
  g.in_h = size;
  g.in_w = size;
  const tensor::Tensor input = tensor::Tensor::randn({g.in_c, size, size}, rng);
  std::vector<float> cols(static_cast<std::size_t>(g.patch_size()) * g.out_h() * g.out_w());
  for (auto _ : state) {
    tensor::im2col(input.data(), g, cols.data());
    benchmark::DoNotOptimize(cols.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long long>(cols.size()));
}
BENCHMARK(BM_Im2col)->Arg(16)->Arg(32);

void BM_QuantizeSpan(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  util::Rng rng(4);
  const tensor::Tensor src = tensor::Tensor::randn({1 << 16}, rng);
  tensor::Tensor dst({1 << 16});
  const quant::UniformRange r{-1.0f, 1.0f};
  for (auto _ : state) {
    quant::quantize_span(src.span(), dst.span(), r, bits);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetItemsProcessed(state.iterations() * (1LL << 16));
}
BENCHMARK(BM_QuantizeSpan)->Arg(1)->Arg(4)->Arg(8);

void BM_IntegerGemmWrap(benchmark::State& state) {
  const int n = 64;
  const int acc_bits = static_cast<int>(state.range(0));
  std::vector<std::int32_t> a(static_cast<std::size_t>(n) * n);
  std::vector<std::int32_t> b(static_cast<std::size_t>(n) * n);
  std::vector<std::int64_t> c(static_cast<std::size_t>(n) * n);
  util::Rng rng(5);
  for (auto& v : a) v = static_cast<std::int32_t>(rng.uniform_int(-7, 7));
  for (auto& v : b) v = static_cast<std::int32_t>(rng.uniform_int(-7, 7));
  for (auto _ : state) {
    quant::integer_gemm(a.data(), b.data(), c.data(), n, n, n, acc_bits);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_IntegerGemmWrap)->Arg(0)->Arg(8);

void BM_Conv2dForward(benchmark::State& state) {
  const bool quantized = state.range(0) != 0;
  util::Rng rng(6);
  nn::Conv2d conv(16, 32, 3, 1, 1, rng);
  if (quantized) conv.set_filter_bits(std::vector<int>(32, 2));
  const tensor::Tensor x = tensor::Tensor::randn({4, 16, 16, 16}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(x).data());
  }
}
BENCHMARK(BM_Conv2dForward)->Arg(0)->Arg(1);

void BM_Conv2dBackward(benchmark::State& state) {
  util::Rng rng(7);
  nn::Conv2d conv(16, 32, 3, 1, 1, rng);
  const tensor::Tensor x = tensor::Tensor::randn({4, 16, 16, 16}, rng);
  const tensor::Tensor y = conv.forward(x);
  const tensor::Tensor g = tensor::Tensor::randn(y.shape(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.backward(g).data());
  }
}
BENCHMARK(BM_Conv2dBackward);

void BM_IntegerLinearForward(benchmark::State& state) {
  // The deployment engine's integer MAC path (per-filter bit-widths)
  // against the float fake-quant forward of BM_LinearForward.
  const int bits = static_cast<int>(state.range(0));
  util::Rng rng(9);
  nn::Linear fc(512, 256, rng);
  fc.set_filter_bits(std::vector<int>(256, bits));
  const deploy::PackedLayer packed = deploy::pack_layer(fc, "fc");
  const deploy::IntegerLayer integer =
      deploy::build_integer_layer(packed, std::vector<float>(256, 0.0f));
  const tensor::Tensor x = tensor::Tensor::rand_uniform({32, 512}, rng, 0.0f, 1.0f);
  const deploy::ActCodes codes = deploy::encode_activations(x, 1.0f, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        deploy::integer_linear_forward(integer, codes, 32, 512).data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * 32 * 512 * 256);
}
BENCHMARK(BM_IntegerLinearForward)->Arg(2)->Arg(4)->Arg(8);

void BM_LinearForward(benchmark::State& state) {
  util::Rng rng(8);
  nn::Linear fc(512, 256, rng);
  const tensor::Tensor x = tensor::Tensor::randn({32, 512}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fc.forward(x).data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * 32 * 512 * 256);
}
BENCHMARK(BM_LinearForward);

// --- Threaded kernel variants (intra-op ExecContext) -----------------
// Arg(0) is the thread count (caller included); 1 = serial path. The
// pool lives outside the timing loop, so these measure steady-state
// chunking cost, not thread spawn. On a single-core host the >1-thread
// rows measure pure overhead; real scaling numbers come from the CI
// perf-smoke lane (bench/kernel_scaling).

/// Pool sized for `threads` participants (caller + helpers).
std::unique_ptr<util::ThreadPool> pool_for(int threads) {
  return threads > 1 ? std::make_unique<util::ThreadPool>(threads - 1) : nullptr;
}

void BM_GemmThreaded(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const int n = 256;
  const auto pool = pool_for(threads);
  const util::ExecContext exec{pool.get(), threads};
  util::Rng rng(10);
  const tensor::Tensor a = tensor::Tensor::randn({n, n}, rng);
  const tensor::Tensor b = tensor::Tensor::randn({n, n}, rng);
  tensor::Tensor c({n, n});
  for (auto _ : state) {
    tensor::gemm(a.data(), b.data(), c.data(), n, n, n, /*accumulate=*/false, exec);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_GemmThreaded)->Arg(1)->Arg(2)->Arg(4);

void BM_IntegerConvForwardThreaded(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const auto pool = pool_for(threads);
  const util::ExecContext exec{pool.get(), threads};
  util::Rng rng(11);
  nn::Conv2d conv(16, 32, 3, 1, 1, rng);
  conv.set_filter_bits(std::vector<int>(32, 3));
  const deploy::PackedLayer packed = deploy::pack_layer(conv, "conv");
  const deploy::IntegerLayer integer =
      deploy::build_integer_layer(packed, std::vector<float>(32, 0.0f));
  const tensor::Tensor x = tensor::Tensor::rand_uniform({4, 16, 16, 16}, rng, 0.0f, 1.0f);
  const deploy::ActCodes codes = deploy::encode_activations(x, 1.0f, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        deploy::integer_conv_forward(integer, codes, 4, 16, 16, 16, 3, 1, 1, exec)
            .data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * 4 * 32 * (16 * 9) * 16 * 16);
}
BENCHMARK(BM_IntegerConvForwardThreaded)->Arg(1)->Arg(2)->Arg(4);

void BM_IntegerLinearForwardThreaded(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const auto pool = pool_for(threads);
  const util::ExecContext exec{pool.get(), threads};
  util::Rng rng(12);
  nn::Linear fc(512, 256, rng);
  fc.set_filter_bits(std::vector<int>(256, 4));
  const deploy::PackedLayer packed = deploy::pack_layer(fc, "fc");
  const deploy::IntegerLayer integer =
      deploy::build_integer_layer(packed, std::vector<float>(256, 0.0f));
  const tensor::Tensor x = tensor::Tensor::rand_uniform({32, 512}, rng, 0.0f, 1.0f);
  const deploy::ActCodes codes = deploy::encode_activations(x, 1.0f, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        deploy::integer_linear_forward(integer, codes, 32, 512, exec).data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * 32 * 512 * 256);
}
BENCHMARK(BM_IntegerLinearForwardThreaded)->Arg(1)->Arg(2)->Arg(4);

// --- Blocked backend variants ----------------------------------------
// The deploy::blocked packed/tiled kernels against the scalar rows
// above (same layers, same codes); Arg(0) is again the thread count.

void BM_BlockedConvForwardThreaded(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const auto pool = pool_for(threads);
  const util::ExecContext exec{pool.get(), threads};
  util::Rng rng(11);  // same seed/shape as BM_IntegerConvForwardThreaded
  nn::Conv2d conv(16, 32, 3, 1, 1, rng);
  conv.set_filter_bits(std::vector<int>(32, 3));
  const deploy::PackedLayer packed = deploy::pack_layer(conv, "conv");
  const deploy::IntegerLayer integer =
      deploy::build_integer_layer(packed, std::vector<float>(32, 0.0f));
  const deploy::blocked::PackedCodes codes_panel = deploy::blocked::pack_codes(integer);
  const tensor::Tensor x = tensor::Tensor::rand_uniform({4, 16, 16, 16}, rng, 0.0f, 1.0f);
  const deploy::ActCodes codes = deploy::encode_activations(x, 1.0f, 3);
  std::vector<float> out(static_cast<std::size_t>(4) * 32 * 16 * 16);
  std::vector<std::int32_t> cols;
  for (auto _ : state) {
    deploy::blocked::conv_forward_into(codes_panel, codes, 4, 16, 16, 16, 3, 1, 1,
                                       out.data(), cols, exec);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * 4 * 32 * (16 * 9) * 16 * 16);
}
BENCHMARK(BM_BlockedConvForwardThreaded)->Arg(1)->Arg(2)->Arg(4);

void BM_BlockedLinearForwardThreaded(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const auto pool = pool_for(threads);
  const util::ExecContext exec{pool.get(), threads};
  util::Rng rng(12);  // same seed/shape as BM_IntegerLinearForwardThreaded
  nn::Linear fc(512, 256, rng);
  fc.set_filter_bits(std::vector<int>(256, 4));
  const deploy::PackedLayer packed = deploy::pack_layer(fc, "fc");
  const deploy::IntegerLayer integer =
      deploy::build_integer_layer(packed, std::vector<float>(256, 0.0f));
  const deploy::blocked::PackedCodes codes_panel = deploy::blocked::pack_codes(integer);
  const tensor::Tensor x = tensor::Tensor::rand_uniform({32, 512}, rng, 0.0f, 1.0f);
  const deploy::ActCodes codes = deploy::encode_activations(x, 1.0f, 4);
  std::vector<float> out(static_cast<std::size_t>(32) * 256);
  for (auto _ : state) {
    deploy::blocked::linear_forward_into(codes_panel, codes, 32, 512, out.data(), exec);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * 32 * 512 * 256);
}
BENCHMARK(BM_BlockedLinearForwardThreaded)->Arg(1)->Arg(2)->Arg(4);

// --- SIMD backend variants -------------------------------------------
// The deploy::simd explicit kernels (same layers/codes as the blocked
// rows) at the tier this machine resolves — avx2 where CPUID allows,
// portable elsewhere. Skipped under CQ_SIMD=off, where the tier would
// only throw.

void BM_SimdConvForwardThreaded(benchmark::State& state) {
  const deploy::SimdTier tier = deploy::resolve_simd_tier();
  if (tier == deploy::SimdTier::kScalar) {
    state.SkipWithError("resolved SIMD tier is 'scalar' (CQ_SIMD=off?)");
    return;
  }
  const int threads = static_cast<int>(state.range(0));
  const auto pool = pool_for(threads);
  const util::ExecContext exec{pool.get(), threads};
  util::Rng rng(11);  // same seed/shape as BM_BlockedConvForwardThreaded
  nn::Conv2d conv(16, 32, 3, 1, 1, rng);
  conv.set_filter_bits(std::vector<int>(32, 3));
  const deploy::PackedLayer packed = deploy::pack_layer(conv, "conv");
  const deploy::IntegerLayer integer =
      deploy::build_integer_layer(packed, std::vector<float>(32, 0.0f));
  const deploy::simd::PackedSimd panels = deploy::simd::pack_simd(integer);
  const tensor::Tensor x = tensor::Tensor::rand_uniform({4, 16, 16, 16}, rng, 0.0f, 1.0f);
  const deploy::ActCodes codes = deploy::encode_activations(x, 1.0f, 3);
  std::vector<float> out(static_cast<std::size_t>(4) * 32 * 16 * 16);
  std::vector<std::int32_t> cols;
  std::vector<std::int16_t> cols16;
  std::vector<std::uint8_t> cols8;
  for (auto _ : state) {
    deploy::simd::conv_forward_into(tier, panels, codes, 4, 16, 16, 16, 3, 1, 1,
                                    out.data(), cols, cols16, cols8, exec);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * 4 * 32 * (16 * 9) * 16 * 16);
}
BENCHMARK(BM_SimdConvForwardThreaded)->Arg(1)->Arg(2)->Arg(4);

void BM_SimdLinearForwardThreaded(benchmark::State& state) {
  const deploy::SimdTier tier = deploy::resolve_simd_tier();
  if (tier == deploy::SimdTier::kScalar) {
    state.SkipWithError("resolved SIMD tier is 'scalar' (CQ_SIMD=off?)");
    return;
  }
  const int threads = static_cast<int>(state.range(0));
  const auto pool = pool_for(threads);
  const util::ExecContext exec{pool.get(), threads};
  util::Rng rng(12);  // same seed/shape as BM_BlockedLinearForwardThreaded
  nn::Linear fc(512, 256, rng);
  fc.set_filter_bits(std::vector<int>(256, 4));
  const deploy::PackedLayer packed = deploy::pack_layer(fc, "fc");
  const deploy::IntegerLayer integer =
      deploy::build_integer_layer(packed, std::vector<float>(256, 0.0f));
  const deploy::simd::PackedSimd panels = deploy::simd::pack_simd(integer);
  const tensor::Tensor x = tensor::Tensor::rand_uniform({32, 512}, rng, 0.0f, 1.0f);
  const deploy::ActCodes codes = deploy::encode_activations(x, 1.0f, 4);
  std::vector<float> out(static_cast<std::size_t>(32) * 256);
  std::vector<std::int16_t> acts16;
  std::vector<std::uint8_t> acts8;
  for (auto _ : state) {
    deploy::simd::linear_forward_into(tier, panels, codes, 32, 512, out.data(),
                                      acts16, acts8, exec);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * 32 * 512 * 256);
}
BENCHMARK(BM_SimdLinearForwardThreaded)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
