// Ablation A5 (DESIGN.md): sensitivity of the threshold search
// (Section III-C) to its own hyper-parameters. One full-precision
// VGG-small is trained once; the search then runs over a sweep of
//   - the step size D (as a fraction of the maximum score),
//   - the first accuracy target T1,
//   - the decay factor R of Eq. (9),
// each at the default of the other two, all targeting B = 2.0. The
// paper fixes D implicitly and uses T1 = 50%, R = 0.8; this bench
// shows how robust the result is around that operating point and how
// the search's evaluation count scales with D.

#include <cstdio>

#include "core/pipeline.h"
#include "harness.h"
#include "util/csv.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cq;
  const util::Cli cli(argc, argv);
  const bench::BenchScale scale = bench::BenchScale::from_cli(cli);
  const double bits = cli.get_double("bits", 2.0);
  const int abits = static_cast<int>(bits);

  const data::DataSplit split = bench::dataset_c10(scale);
  auto fp_model = bench::make_vgg_small(10);
  const double fp_acc = bench::train_fp_cached(*fp_model, split, "vgg_c10", scale);

  // Scores are collected once — the sweep varies only the search.
  auto scoring_model = fp_model->clone();
  core::ImportanceCollector collector({1e-50, scale.importance_samples});
  const std::vector<core::LayerScores> scores =
      collector.collect(*scoring_model, split.val);

  util::Table table({"parameter", "value", "avg bits", "accuracy", "evals"});
  util::CsvWriter csv(cli.get("csv", "ablation_search_params.csv"),
                      {"parameter", "value", "avg_bits", "accuracy", "evaluations"});

  const auto run = [&](const std::string& parameter, const std::string& value,
                       const core::SearchConfig& cfg) {
    auto model = fp_model->clone();
    model->calibrate_activations(split.train.images);
    model->set_activation_bits(abits);
    const core::SearchResult result =
        core::ThresholdSearch(cfg).run(*model, scores, split.val);
    const double acc =
        nn::Trainer::evaluate(*model, split.test.images, split.test.labels);
    table.add_row({parameter, value, util::Table::num(result.achieved_avg_bits, 2),
                   util::Table::num(acc * 100, 2), std::to_string(result.evaluations)});
    csv.add_row({parameter, value, util::Table::num(result.achieved_avg_bits, 3),
                 util::Table::num(acc, 4), std::to_string(result.evaluations)});
    std::printf("[%s=%s] avg %.2f bits, acc %.3f, %d evals\n", parameter.c_str(),
                value.c_str(), result.achieved_avg_bits, acc, result.evaluations);
  };

  const auto base_config = [&]() {
    core::SearchConfig cfg;
    cfg.max_bits = 4;
    cfg.desired_avg_bits = bits;
    cfg.t1 = 0.5;
    cfg.decay = 0.8;
    cfg.step_fraction = 0.0625;
    cfg.eval_samples = scale.eval_samples;
    return cfg;
  };

  for (const double step_fraction : {0.25, 0.125, 0.0625, 0.03125}) {
    core::SearchConfig cfg = base_config();
    cfg.step_fraction = step_fraction;
    run("step D", util::Table::num(step_fraction, 4), cfg);
  }
  for (const double t1 : {0.7, 0.5, 0.3, 0.1}) {
    core::SearchConfig cfg = base_config();
    cfg.t1 = t1;
    run("target T1", util::Table::num(t1, 2), cfg);
  }
  for (const double decay : {0.95, 0.8, 0.5, 0.2}) {
    core::SearchConfig cfg = base_config();
    cfg.decay = decay;
    run("decay R", util::Table::num(decay, 2), cfg);
  }

  std::printf("\n=== Ablation A5: search hyper-parameters, VGG-small B=%.1f ===\n", bits);
  std::printf("FP accuracy %.2f%% (accuracies below are pre-refinement)\n%s",
              fp_acc * 100, table.render().c_str());
  return 0;
}
