// Serving throughput bench: how the cq::serve stack scales with batch
// size and worker count on one deployed artifact.
//
// Section 1 measures the raw EngineSession integer pipeline (single
// context, no scheduler) at growing batch sizes — the per-sample cost
// floor batching amortizes fixed overheads against. Section 2 runs the
// full Server under closed-loop concurrent load at 1/2/4 workers and
// reports throughput, speedup over 1 worker, latency percentiles and
// the micro-batch sizes the scheduler actually formed. Section 3
// sweeps inter-op workers x intra-op threads-per-forward — the two
// levers trade against each other on a fixed core budget (workers help
// throughput under concurrency, intra-op threads cut single-request
// latency).
//
// No training is needed: serving cost depends only on the architecture
// and the bit arrangement, so the model gets a mixed 0..4-bit
// arrangement and a forward-pass activation calibration before export.
//
// Run: ./serve_throughput [--fast] [--requests=N] [--threads=N]
//                         [--backend=scalar|blocked|simd]  (kernel backend, all sections)
//                         [--json=sweep.json]   (section 3, machine-readable;
//                          records the backend so artifacts from different
//                          backends stay distinguishable in the trajectory.
//                          Each sweep row carries the queue-wait vs execute
//                          breakdown, and the file embeds a "profile" object —
//                          the obs::PlanProfiler per-op report for this model
//                          on the selected backend)

#include <atomic>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "deploy/artifact.h"
#include "harness.h"
#include "nn/models/model.h"
#include "obs/profiler.h"
#include "serve/server.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace cq;

/// Mixed per-filter arrangement (the shape real CQ outputs have: a few
/// pruned filters, mostly low bits, occasional high-bit outliers).
void assign_mixed_bits(nn::Model& model) {
  const int pattern[8] = {2, 3, 2, 1, 4, 2, 0, 2};
  int i = 0;
  for (const nn::ScoredLayerRef& ref : model.scored_layers()) {
    for (quant::QuantizableLayer* layer : ref.layers) {
      std::vector<int> bits(static_cast<std::size_t>(layer->num_filters()));
      for (int& b : bits) b = pattern[i++ % 8];
      layer->set_filter_bits(std::move(bits));
    }
  }
}

deploy::QuantizedArtifact make_artifact(util::Rng& rng) {
  auto model = bench::make_vgg_small(10);
  const tensor::Tensor calib =
      tensor::Tensor::rand_uniform({64, 3, 16, 16}, rng, 0.0f, 1.0f);
  model->calibrate_activations(calib);
  model->set_activation_bits(3);
  assign_mixed_bits(*model);
  return deploy::export_model(*model);
}

struct LoadResult {
  double rps = 0.0;
  serve::ServerStats stats;
};

/// Closed-loop load: `threads` submitters issue `requests` requests
/// total and block on each future. Returns -1 rps on request failure.
LoadResult run_load(const deploy::QuantizedArtifact& artifact,
                    const serve::ServerConfig& config, long requests, long threads) {
  serve::Server server(artifact, config);
  std::vector<std::thread> submitters;
  std::atomic<long> failed{0};
  util::Timer timer;
  for (long t = 0; t < threads; ++t) {
    const long share = requests / threads + (t < requests % threads ? 1 : 0);
    submitters.emplace_back([&server, &failed, share, t] {
      util::Rng thread_rng(100 + static_cast<std::uint64_t>(t));
      for (long i = 0; i < share; ++i) {
        try {
          server.submit(tensor::Tensor::rand_uniform({3, 16, 16}, thread_rng, 0.0f,
                                                     1.0f))
              .get();
        } catch (const std::exception&) {
          failed.fetch_add(1);  // escaping would std::terminate the bench
        }
      }
    });
  }
  for (std::thread& submitter : submitters) submitter.join();
  LoadResult result;
  result.rps = failed.load() == 0
                   ? static_cast<double>(requests) / timer.seconds()
                   : -1.0;
  result.stats = server.stats();
  server.shutdown();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool fast = cli.get_bool("fast", false);
  const long requests = cli.get_int("requests", fast ? 96 : 512);
  const long threads = cli.get_int("threads", 8);
  const deploy::BackendKind backend =
      deploy::parse_backend_kind(cli.get("backend", "scalar"));

  util::Rng rng(7);
  const deploy::QuantizedArtifact artifact = make_artifact(rng);
  std::printf("kernel backend: %s\n\n", deploy::backend_kind_name(backend));

  // --- Section 1: raw integer pipeline vs batch size -----------------
  {
    serve::EngineSession session(artifact, 1, {}, deploy::make_backend(backend));
    util::Table table({"batch", "runs", "total ms", "us/sample"});
    for (const int batch : {1, 8, 32}) {
      const int runs = fast ? 4 : 16;
      const tensor::Tensor input = tensor::Tensor::rand_uniform(
          {batch, 3, 16, 16}, rng, 0.0f, 1.0f);
      session.run(input);  // warm
      util::Timer timer;
      for (int r = 0; r < runs; ++r) session.run(input);
      const double ms = timer.millis();
      table.add_row({std::to_string(batch), std::to_string(runs),
                     util::Table::num(ms, 2),
                     util::Table::num(ms * 1000.0 / (runs * batch), 1)});
    }
    std::printf("EngineSession integer pipeline (single context)\n%s\n",
                table.render().c_str());
  }

  // --- Section 2: full server, closed-loop load ----------------------
  util::Table table({"workers", "req/s", "speedup", "p50 us", "p95 us", "p99 us",
                     "p50 queue", "p50 exec", "mean batch"});
  double base_rps = 0.0;
  for (const int workers : {1, 2, 4}) {
    serve::ServerConfig config;
    config.workers = workers;
    config.backend = backend;
    config.max_batch = 16;
    config.max_wait_us = 200;
    const LoadResult r = run_load(artifact, config, requests, threads);
    if (r.rps < 0.0) {
      std::fprintf(stderr, "serve_throughput: requests failed\n");
      return 1;
    }
    if (workers == 1) base_rps = r.rps;
    table.add_row({std::to_string(workers), util::Table::num(r.rps, 1),
                   util::Table::num(r.rps / base_rps, 2),
                   util::Table::num(r.stats.p50_us, 0),
                   util::Table::num(r.stats.p95_us, 0),
                   util::Table::num(r.stats.p99_us, 0),
                   util::Table::num(r.stats.p50_queue_us, 0),
                   util::Table::num(r.stats.p50_exec_us, 0),
                   util::Table::num(r.stats.mean_batch, 2)});
  }
  std::printf("Server throughput, %ld closed-loop submitters, %ld requests, "
              "%u hw threads\n%s\n",
              threads, requests, std::thread::hardware_concurrency(),
              table.render().c_str());
  std::printf("(worker scaling needs >= as many hardware threads as workers; "
              "on fewer cores the speedup column measures scheduling overhead "
              "only)\n");

  // --- Section 3: inter-op workers x intra-op threads sweep ----------
  struct Combo {
    int workers;
    int intra;
  };
  const Combo combos[] = {{1, 1}, {1, 2}, {1, 4}, {2, 1}, {2, 2}, {4, 1}};
  util::Table sweep({"workers", "intra", "req/s", "speedup", "p50 us", "p95 us",
                     "mean batch"});
  struct SweepRow {
    Combo combo;
    LoadResult r;
  };
  std::vector<SweepRow> sweep_rows;
  double sweep_base = 0.0;
  for (const Combo& combo : combos) {
    serve::ServerConfig config;
    config.workers = combo.workers;
    config.intra_threads = combo.intra;
    config.backend = backend;
    config.max_batch = 16;
    config.max_wait_us = 200;
    const LoadResult r = run_load(artifact, config, requests, threads);
    if (r.rps < 0.0) {
      std::fprintf(stderr, "serve_throughput: sweep requests failed\n");
      return 1;
    }
    if (sweep_base == 0.0) sweep_base = r.rps;
    sweep_rows.push_back({combo, r});
    sweep.add_row({std::to_string(combo.workers), std::to_string(combo.intra),
                   util::Table::num(r.rps, 1), util::Table::num(r.rps / sweep_base, 2),
                   util::Table::num(r.stats.p50_us, 0),
                   util::Table::num(r.stats.p95_us, 0),
                   util::Table::num(r.stats.mean_batch, 2)});
  }
  std::printf("Inter-op x intra-op sweep (speedup vs 1 worker / 1 thread)\n%s\n",
              sweep.render().c_str());

  const std::string json_path = cli.get("json", "");
  if (!json_path.empty()) {
    // Per-op profile for the artifact on this backend (single context,
    // steady batch) — rides along in the artifact so a kernel-level
    // regression is attributable to an op kind, not just a p95 shift.
    serve::EngineSession session(artifact, 1, {}, deploy::make_backend(backend));
    const tensor::Tensor input =
        tensor::Tensor::rand_uniform({8, 3, 16, 16}, rng, 0.0f, 1.0f);
    session.run(input);  // warm
    obs::PlanProfiler profiler(session.plan(), &session.backend());
    session.set_trace_sink(&profiler);
    for (int r = 0; r < (fast ? 4 : 16); ++r) session.run(input);
    session.set_trace_sink(nullptr);
    const obs::ProfileReport profile = profiler.report();

    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "serve_throughput: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"hardware_threads\": %u,\n  \"requests\": %ld,\n"
                 "  \"submitters\": %ld,\n  \"backend\": \"%s\",\n"
                 "  \"cpu\": %s,\n  \"sweep\": [\n",
                 std::thread::hardware_concurrency(), requests, threads,
                 deploy::backend_kind_name(backend),
                 deploy::cpu_features_json().c_str());
    for (std::size_t i = 0; i < sweep_rows.size(); ++i) {
      const SweepRow& row = sweep_rows[i];
      std::fprintf(f,
                   "    {\"workers\": %d, \"intra_threads\": %d, \"rps\": %.1f, "
                   "\"p50_us\": %.0f, \"p95_us\": %.0f, \"p99_us\": %.0f, "
                   "\"mean_batch\": %.2f, \"p50_queue_us\": %.0f, "
                   "\"p95_queue_us\": %.0f, \"p50_exec_us\": %.0f, "
                   "\"p95_exec_us\": %.0f, \"failed\": %zu, \"shed\": %zu}%s\n",
                   row.combo.workers, row.combo.intra, row.r.rps, row.r.stats.p50_us,
                   row.r.stats.p95_us, row.r.stats.p99_us, row.r.stats.mean_batch,
                   row.r.stats.p50_queue_us, row.r.stats.p95_queue_us,
                   row.r.stats.p50_exec_us, row.r.stats.p95_exec_us,
                   row.r.stats.failed, row.r.stats.shed,
                   i + 1 == sweep_rows.size() ? "" : ",");
    }
    std::fprintf(f, "  ],\n  \"profile\": %s\n}\n", profile.to_json().c_str());
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
