// Reproduces Figure 3: the threshold-search process on VGG-small /
// CIFAR-10 with the paper's parameters (bit range {0..4}, T1 = 50%,
// R = 0.8, target average bit-width 2.0).
//
// Paper shape to reproduce: thresholds p1 < p2 < ... are determined one
// after another, each stopping when validation accuracy falls below the
// decaying target T_k; the trace prints each stop with its accuracy.

#include <cstdio>

#include "core/importance.h"
#include "core/search.h"
#include "harness.h"
#include "util/csv.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cq;
  const util::Cli cli(argc, argv);
  const bench::BenchScale scale = bench::BenchScale::from_cli(cli);
  const double target_bits = cli.get_double("bits", 2.0);

  const data::DataSplit split = bench::dataset_c10(scale);
  auto model = bench::make_vgg_small(10);
  const double fp_acc = bench::train_fp_cached(*model, split, "vgg_c10", scale);

  core::ImportanceCollector collector({1e-50, scale.importance_samples});
  const auto scores = collector.collect(*model, split.val);

  // Activations at the desired bits during search, as in Section IV.
  model->calibrate_activations(split.train.images);
  model->set_activation_bits(static_cast<int>(target_bits));

  core::SearchConfig cfg;
  cfg.max_bits = 4;
  cfg.desired_avg_bits = target_bits;
  cfg.t1 = 0.5;
  cfg.decay = 0.8;
  cfg.step_fraction = 0.0625;
  cfg.eval_samples = scale.eval_samples;
  core::ThresholdSearch search(cfg);
  const core::SearchResult result = search.run(*model, scores, split.val);

  std::printf("=== Figure 3: bit-width search process, VGG-small / CIFAR-10-like ===\n");
  std::printf("FP acc %.4f | B = %.1f | T1 = 0.5, R = 0.8, bits in {0..4}\n\n", fp_acc,
              target_bits);

  // Sorted per-layer score curves (the blue curves of the figure).
  std::printf("Sorted filter scores per layer (decile samples):\n");
  for (const auto& layer : scores) {
    auto sorted = layer.filter_phi;
    std::sort(sorted.begin(), sorted.end());
    std::printf("  %-8s:", layer.name.c_str());
    for (int d = 0; d <= 10; ++d) {
      const std::size_t idx = std::min(sorted.size() - 1, d * sorted.size() / 10);
      std::printf(" %5.2f", sorted[idx]);
    }
    std::printf("\n");
  }

  util::Table table({"threshold", "stopped_at", "val_acc", "target_Tk", "avg_bits",
                     "phase"});
  util::CsvWriter csv(cli.get("csv", "fig3_search_process.csv"),
                      {"k", "threshold", "accuracy", "target", "avg_bits", "fallback"});
  for (const auto& stop : result.trace) {
    table.add_row({"p" + std::to_string(stop.k), util::Table::num(stop.threshold, 3),
                   stop.accuracy < 0 ? "-" : util::Table::num(stop.accuracy, 3),
                   stop.target < 0 ? "-" : util::Table::num(stop.target, 3),
                   util::Table::num(stop.avg_bits, 3),
                   stop.fallback ? "fallback" : "search"});
    csv.add_row({std::to_string(stop.k), util::Table::num(stop.threshold, 5),
                 util::Table::num(stop.accuracy, 5), util::Table::num(stop.target, 5),
                 util::Table::num(stop.avg_bits, 5), stop.fallback ? "1" : "0"});
  }
  std::printf("\n%s", table.render().c_str());
  std::printf("final: avg_bits=%.3f val_acc=%.4f evaluations=%d\n",
              result.achieved_avg_bits, result.final_accuracy, result.evaluations);
  return 0;
}
