// Ablation A2 (DESIGN.md): contribution of the knowledge-distillation
// refinement (paper Section III-D, Eq. 10). Sweeps the mixing factor
// alpha — alpha = 1 is plain cross-entropy (no distillation term),
// alpha = 0.3 is the paper's setting — plus a no-refinement row.

#include <cstdio>

#include "core/pipeline.h"
#include "harness.h"
#include "util/csv.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cq;
  const util::Cli cli(argc, argv);
  const bench::BenchScale scale = bench::BenchScale::from_cli(cli);
  const double bits = cli.get_double("bits", 2.0);

  const data::DataSplit split = bench::dataset_c10(scale);
  auto fp_model = bench::make_vgg_small(10);
  const double fp_acc = bench::train_fp_cached(*fp_model, split, "vgg_c10", scale);

  // One search, shared by all alpha settings: quantize a model copy,
  // remember the thresholds, re-apply to fresh copies per run.
  auto search_model = fp_model->clone();
  core::CqConfig cfg = bench::make_cq_config(bits, static_cast<int>(bits), scale);
  cfg.refine.epochs = 0;
  core::CqPipeline pipeline(cfg);
  const core::CqReport base = pipeline.run(*search_model, split);

  util::Table table({"refinement", "acc (%)"});
  util::CsvWriter csv(cli.get("csv", "ablation_kd_refine.csv"), {"alpha", "accuracy"});
  table.add_row({"none", util::Table::num(base.quant_accuracy_pre_refine * 100, 2)});
  csv.add_row({"none", util::Table::num(base.quant_accuracy_pre_refine, 4)});

  for (const double alpha : {1.0, 0.7, 0.3, 0.0}) {
    auto model = fp_model->clone();
    auto teacher = fp_model->clone();
    model->calibrate_activations(split.train.images);
    model->set_activation_bits(static_cast<int>(bits));
    core::ThresholdSearch::apply_thresholds(*model, base.scores, base.thresholds);

    core::RefineConfig rc = bench::make_refine_config(scale);
    rc.alpha = alpha;
    core::Refiner refiner(rc);
    const core::RefineResult result = refiner.run(*model, *teacher, split.train, split.test);
    const std::string label = "alpha=" + util::Table::num(alpha, 1) +
                              (alpha == 1.0 ? " (CE only)" : alpha == 0.3 ? " (paper)" : "");
    table.add_row({label, util::Table::num(result.accuracy_after * 100, 2)});
    csv.add_row({util::Table::num(alpha, 2), util::Table::num(result.accuracy_after, 4)});
    std::printf("[alpha=%.1f] refined acc %.3f\n", alpha, result.accuracy_after);
  }

  std::printf("\n=== Ablation A2: KD refinement, VGG-small %.1f/%.1f (FP %.2f%%, avg %.2f bits) ===\n",
              bits, bits, fp_acc * 100, base.achieved_avg_bits);
  std::printf("%s", table.render().c_str());
  return 0;
}
