// plan_optimize — end-to-end A/B of the deploy::optimize_plan pass
// pipeline: for each integer zoo model, serve the same batches through
// two EngineSessions built from the same artifact — one at PlanOpt::kO0
// (plan as compiled) and one at PlanOpt::kO1 (epilogue fusion +
// quantized-domain propagation + arena re-planning) — verify the
// outputs are byte-identical (the passes' exactness contract), and
// time both.
//
// This is the perf-smoke CI lane's optimizer gate, in the
// kernel_scaling mold: the dev container is single-core, so CI runs
// this binary on a multi-core runner and asserts the end-to-end win it
// observes, e.g.
//
//   plan_optimize --json=plan_optimize.json --assert-case=ResNet20
//                 --assert-speedup=1.15
//
// Exit codes: 0 ok, 1 assertion failed, 2 optimized output not
// byte-identical to the unoptimized plan's.
//
// Other knobs: --backend=scalar|blocked|simd (kernel backend for both
// sessions), --threads=N (intra-op threads), --batch=N (samples per
// run), --repeat=N (timed runs per session; best-of reported).

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "deploy/backend.h"
#include "nn/models/mlp.h"
#include "nn/models/resnet20.h"
#include "nn/models/vgg_small.h"
#include "serve_fixtures.h"
#include "serve/engine_session.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace cq;

struct Result {
  std::string name;
  std::size_t ops_o0 = 0;
  std::size_t ops_o1 = 0;
  double o0_ms = 0.0;  ///< best-of run time, plan as compiled
  double o1_ms = 0.0;  ///< best-of run time, optimized plan
  double speedup() const { return o1_ms > 0.0 ? o0_ms / o1_ms : 0.0; }
};

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int repeat = static_cast<int>(cli.get_int("repeat", 20));
  const int batch = static_cast<int>(cli.get_int("batch", 4));
  const int threads = static_cast<int>(cli.get_int("threads", 1));
  const std::string json_path = cli.get("json", "");
  const std::string assert_case = cli.get("assert-case", "");
  const double assert_speedup = cli.get_double("assert-speedup", 0.0);
  deploy::BackendKind backend_kind;
  try {
    backend_kind = deploy::parse_backend_kind(cli.get("backend", "scalar"));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "plan_optimize: %s\n", e.what());
    return 1;
  }
  if (repeat < 1 || batch < 1 || threads < 1) {
    std::fprintf(stderr, "plan_optimize: --repeat/--batch/--threads must be >= 1\n");
    return 1;
  }

  // The caller participates in its own parallel_for, so a pool of
  // threads - 1 helpers gives `threads` intra-op threads.
  std::unique_ptr<util::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<util::ThreadPool>(threads - 1);
  const util::ExecContext exec{pool.get(), threads};

  // Default-size zoo models (same fabrication as bench/plan_compile),
  // so the A/B covers representative integer layer shapes.
  struct Model {
    std::string name;
    deploy::QuantizedArtifact artifact;
    tensor::Shape sample;
  };
  std::vector<Model> models;
  {
    const nn::MlpConfig cfg;
    nn::Mlp mlp(cfg);
    models.push_back({"Mlp", serve::fabricate_artifact(mlp, {cfg.in_features}, 3, 3),
                      {cfg.in_features}});
  }
  {
    const nn::VggSmallConfig cfg;
    nn::VggSmall vgg(cfg);
    const tensor::Shape in = {cfg.in_channels, cfg.image_size, cfg.image_size};
    models.push_back({"VggSmall", serve::fabricate_artifact(vgg, in, 3, 5), in});
  }
  {
    const nn::ResNet20Config cfg;
    nn::ResNet20 resnet(cfg);
    const tensor::Shape in = {cfg.in_channels, cfg.image_size, cfg.image_size};
    models.push_back({"ResNet20", serve::fabricate_artifact(resnet, in, 3, 7), in});
  }

  std::vector<Result> results;
  for (const Model& m : models) {
    serve::EngineSession o0(m.artifact, 1, exec, deploy::make_backend(backend_kind),
                            serve::PlanCheck::kNone, serve::PlanOpt::kO0);
    serve::EngineSession o1(m.artifact, 1, exec, deploy::make_backend(backend_kind),
                            serve::PlanCheck::kNone, serve::PlanOpt::kO1);
    const tensor::Tensor input = serve::random_batch(m.sample, batch, 23);

    // Warm both sessions (arena growth stays out of the timed window)
    // and prove the passes' exactness contract on this input.
    const tensor::Tensor ref = o0.run(input);
    const tensor::Tensor opt = o1.run(input);
    if (ref.numel() != opt.numel() ||
        std::memcmp(ref.data(), opt.data(), ref.numel() * sizeof(float)) != 0) {
      std::fprintf(stderr,
                   "plan_optimize: %s optimized output is NOT byte-identical "
                   "to the unoptimized plan\n",
                   m.name.c_str());
      return 2;
    }

    Result r;
    r.name = m.name;
    r.ops_o0 = o0.plan().ops().size();
    r.ops_o1 = o1.plan().ops().size();
    for (int i = 0; i < repeat; ++i) {
      util::Timer timer;
      o0.run(input);
      const double ms = timer.millis();
      if (i == 0 || ms < r.o0_ms) r.o0_ms = ms;
    }
    for (int i = 0; i < repeat; ++i) {
      util::Timer timer;
      o1.run(input);
      const double ms = timer.millis();
      if (i == 0 || ms < r.o1_ms) r.o1_ms = ms;
    }
    results.push_back(std::move(r));
  }

  util::Table table({"model", "ops", "O0 ms", "O1 ms", "speedup"});
  for (const Result& r : results) {
    table.add_row({r.name, std::to_string(r.ops_o0) + " -> " + std::to_string(r.ops_o1),
                   util::Table::num(r.o0_ms, 3), util::Table::num(r.o1_ms, 3),
                   util::Table::num(r.speedup(), 2)});
  }
  std::printf("optimized vs unoptimized end-to-end (backend %s, batch %d, "
              "%d threads, best of %d)\n%s\n",
              deploy::backend_kind_name(backend_kind), batch, threads, repeat,
              table.render().c_str());

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "plan_optimize: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"backend\": \"%s\",\n  \"batch\": %d,\n  \"threads\": %d,\n"
                 "  \"repeat\": %d,\n  \"models\": [\n",
                 deploy::backend_kind_name(backend_kind), batch, threads, repeat);
    for (std::size_t i = 0; i < results.size(); ++i) {
      const Result& r = results[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"ops_o0\": %zu, \"ops_o1\": %zu, "
                   "\"o0_ms\": %.4f, \"o1_ms\": %.4f, \"speedup\": %.3f}%s\n",
                   r.name.c_str(), r.ops_o0, r.ops_o1, r.o0_ms, r.o1_ms, r.speedup(),
                   i + 1 == results.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (assert_speedup > 0.0) {
    bool measured = false;
    bool failed = false;
    for (const Result& r : results) {
      if (r.name != assert_case) continue;
      measured = true;
      const bool ok = r.speedup() >= assert_speedup;
      std::fprintf(stderr,
                   "assert: %s optimized vs unoptimized: %.2fx (need >= %.2fx) "
                   "— %s\n",
                   assert_case.c_str(), r.speedup(), assert_speedup,
                   ok ? "PASS" : "FAIL");
      failed = failed || !ok;
    }
    if (!measured) {
      std::fprintf(stderr, "assert: case '%s' not measured\n", assert_case.c_str());
      failed = true;
    }
    if (failed) return 1;
  }
  return 0;
}
