// Ablation A8 (DESIGN.md): the class-level validation of the paper's
// hypothesis. CQ's premise is that a filter's score counts the classes
// whose critical pathway it carries; if that is true, quantization
// damage should land on the classes whose filters lost their bits.
// The bench quantizes VGG-small at B=2.0 *without* refinement (so the
// damage is not trained away), then prints per class: the share of its
// importance mass the arrangement retained, its FP and quantized
// accuracy, and the Spearman rank correlation between retained mass
// and accuracy kept.

#include <cstdio>

#include "core/class_damage.h"
#include "core/pipeline.h"
#include "harness.h"
#include "util/csv.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cq;
  const util::Cli cli(argc, argv);
  const bench::BenchScale scale = bench::BenchScale::from_cli(cli);
  const double bits = cli.get_double("bits", 2.0);
  const int abits = static_cast<int>(bits);

  const data::DataSplit split = bench::dataset_c10(scale);
  auto fp_model = bench::make_vgg_small(10);
  const double fp_acc = bench::train_fp_cached(*fp_model, split, "vgg_c10", scale);

  // Scores with the per-class matrices kept.
  auto scoring_model = fp_model->clone();
  core::ImportanceConfig icfg;
  icfg.epsilon = 1e-50;
  icfg.samples_per_class = scale.importance_samples;
  icfg.keep_class_scores = true;
  const auto scores = core::ImportanceCollector(icfg).collect(*scoring_model, split.val);

  // Quantize (search only — refinement would retrain the damage away).
  auto quant_model = fp_model->clone();
  quant_model->calibrate_activations(split.train.images);
  quant_model->set_activation_bits(abits);
  core::SearchConfig cfg;
  cfg.max_bits = 4;
  cfg.desired_avg_bits = bits;
  cfg.t1 = 0.5;
  cfg.decay = 0.8;
  cfg.step_fraction = 0.0625;
  cfg.eval_samples = scale.eval_samples;
  const core::SearchResult result =
      core::ThresholdSearch(cfg).run(*quant_model, scores, split.val);

  const core::ClassDamageReport report =
      core::analyze_class_damage(*fp_model, *quant_model, scores, split.test);

  util::Table table({"class", "retained importance", "fp acc", "quant acc", "drop"});
  util::CsvWriter csv(cli.get("csv", "ablation_class_damage.csv"),
                      {"class", "retained", "fp_acc", "quant_acc", "drop"});
  for (std::size_t m = 0; m < report.retained_importance.size(); ++m) {
    table.add_row({std::to_string(m), util::Table::num(report.retained_importance[m], 3),
                   util::Table::num(report.fp_accuracy[m] * 100, 1),
                   util::Table::num(report.quant_accuracy[m] * 100, 1),
                   util::Table::num(report.accuracy_drop[m] * 100, 1)});
    csv.add_row({std::to_string(m), util::Table::num(report.retained_importance[m], 4),
                 util::Table::num(report.fp_accuracy[m], 4),
                 util::Table::num(report.quant_accuracy[m], 4),
                 util::Table::num(report.accuracy_drop[m], 4)});
  }

  std::printf("=== Ablation A8: per-class damage, VGG-small %.1f/%.1f (no refine) ===\n",
              bits, bits);
  std::printf("FP accuracy %.2f%%, quantized (pre-refine) avg bits %.2f\n%s", fp_acc * 100,
              result.achieved_avg_bits, table.render().c_str());
  std::printf(
      "\nSpearman(retained importance, accuracy kept) = %.3f\n"
      "(positive: classes whose filters kept their bits kept their accuracy)\n",
      report.rank_correlation);
  return 0;
}
