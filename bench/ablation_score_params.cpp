// Ablation A6 (DESIGN.md): sensitivity of the class-based importance
// scores (Section III-A/B) to their two knobs:
//   - epsilon, the critical-pathway threshold of Eq. (6). The paper
//     uses 1e-50 ("any nonzero contribution counts"); raising it
//     demands a larger Taylor term before a neuron counts for a class.
//   - N_s, the validation images per class. Fewer samples make beta
//     (and hence gamma/phi) noisier.
// Each scoring variant feeds the identical search at B = 2.0; the
// bench reports both the score statistics and the end accuracy.

#include <cstdio>

#include "core/pipeline.h"
#include "harness.h"
#include "util/csv.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cq;
  const util::Cli cli(argc, argv);
  const bench::BenchScale scale = bench::BenchScale::from_cli(cli);
  const double bits = cli.get_double("bits", 2.0);
  const int abits = static_cast<int>(bits);

  const data::DataSplit split = bench::dataset_c10(scale);
  auto fp_model = bench::make_vgg_small(10);
  const double fp_acc = bench::train_fp_cached(*fp_model, split, "vgg_c10", scale);

  util::Table table(
      {"parameter", "value", "mean phi", "max phi", "zero phi", "avg bits", "accuracy"});
  util::CsvWriter csv(cli.get("csv", "ablation_score_params.csv"),
                      {"parameter", "value", "mean_phi", "max_phi", "zero_fraction",
                       "avg_bits", "accuracy"});

  const auto run = [&](const std::string& parameter, const std::string& value,
                       const core::ImportanceConfig& icfg) {
    auto scoring_model = fp_model->clone();
    const std::vector<core::LayerScores> scores =
        core::ImportanceCollector(icfg).collect(*scoring_model, split.val);

    // Score statistics over all filters.
    double sum = 0.0;
    double max_phi = 0.0;
    std::size_t zero = 0;
    std::size_t count = 0;
    for (const core::LayerScores& layer : scores) {
      for (const float phi : layer.filter_phi) {
        sum += phi;
        max_phi = std::max(max_phi, static_cast<double>(phi));
        zero += phi == 0.0f;
        ++count;
      }
    }

    auto model = fp_model->clone();
    model->calibrate_activations(split.train.images);
    model->set_activation_bits(abits);
    core::SearchConfig cfg;
    cfg.max_bits = 4;
    cfg.desired_avg_bits = bits;
    cfg.t1 = 0.5;
    cfg.decay = 0.8;
    cfg.step_fraction = 0.0625;
    cfg.eval_samples = scale.eval_samples;
    const core::SearchResult result =
        core::ThresholdSearch(cfg).run(*model, scores, split.val);
    const double acc =
        nn::Trainer::evaluate(*model, split.test.images, split.test.labels);

    const double mean_phi = sum / static_cast<double>(count);
    const double zero_fraction = static_cast<double>(zero) / static_cast<double>(count);
    table.add_row({parameter, value, util::Table::num(mean_phi, 2),
                   util::Table::num(max_phi, 2), util::Table::num(zero_fraction * 100, 1),
                   util::Table::num(result.achieved_avg_bits, 2),
                   util::Table::num(acc * 100, 2)});
    csv.add_row({parameter, value, util::Table::num(mean_phi, 4),
                 util::Table::num(max_phi, 4), util::Table::num(zero_fraction, 4),
                 util::Table::num(result.achieved_avg_bits, 3),
                 util::Table::num(acc, 4)});
    std::printf("[%s=%s] mean phi %.2f, %.0f%% zero, avg %.2f bits, acc %.3f\n",
                parameter.c_str(), value.c_str(), mean_phi, zero_fraction * 100,
                result.achieved_avg_bits, acc);
  };

  for (const double epsilon : {1e-50, 1e-8, 1e-4, 1e-2, 1e-1}) {
    core::ImportanceConfig icfg;
    icfg.epsilon = epsilon;
    icfg.samples_per_class = scale.importance_samples;
    char value[32];
    std::snprintf(value, sizeof value, "%g", epsilon);
    run("epsilon", value, icfg);
  }
  for (const int samples : {2, 5, 10, 20}) {
    core::ImportanceConfig icfg;
    icfg.epsilon = 1e-50;
    icfg.samples_per_class = samples;
    run("Ns", std::to_string(samples), icfg);
  }

  std::printf("\n=== Ablation A6: score hyper-parameters, VGG-small B=%.1f ===\n", bits);
  std::printf("FP accuracy %.2f%% (accuracies below are pre-refinement)\n%s",
              fp_acc * 100, table.render().c_str());
  return 0;
}
