// Reproduces Figure 2: histograms of the number of filters versus the
// class-based importance scores, per layer, for a floating-point
// VGG-small trained on (synthetic) CIFAR-10.
//
// Paper shape to reproduce: different layers have visibly different
// score distributions — some layers skew left (most filters matter to
// few classes), some skew right (filters matter to almost all
// classes); scores span [0, 10].

#include <cstdio>

#include "core/importance.h"
#include "harness.h"
#include "util/csv.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cq;
  const util::Cli cli(argc, argv);
  const bench::BenchScale scale = bench::BenchScale::from_cli(cli);

  const data::DataSplit split = bench::dataset_c10(scale);
  auto model = bench::make_vgg_small(10);
  const double fp_acc = bench::train_fp_cached(*model, split, "vgg_c10", scale);

  core::ImportanceCollector collector({1e-50, scale.importance_samples});
  const auto scores = collector.collect(*model, split.val);

  std::printf("=== Figure 2: filter importance histograms, VGG-small / CIFAR-10-like ===\n");
  std::printf("FP test accuracy: %.4f | classes M = 10 (scores lie in [0, 10])\n\n", fp_acc);

  util::CsvWriter csv(cli.get("csv", "fig2_importance_histograms.csv"),
                      {"layer", "bin_center", "filters"});
  for (std::size_t l = 0; l < scores.size(); ++l) {
    const auto& layer = scores[l];
    util::Histogram hist(0.0, 10.0, 10);
    hist.add_all(layer.filter_phi);
    const auto summary = util::summarize(
        std::span<const float>(layer.filter_phi.data(), layer.filter_phi.size()));
    std::printf("Layer-%zu (%s, %d filters) mean=%.2f min=%.2f max=%.2f\n", l + 1,
                layer.name.c_str(), layer.channels, summary.mean, summary.min,
                summary.max);
    std::printf("%s\n", hist.render(36).c_str());
    for (std::size_t b = 0; b < hist.bins(); ++b) {
      csv.add_row({layer.name, util::Table::num(hist.bin_center(b), 2),
                   std::to_string(hist.count(b))});
    }
  }
  std::printf("CSV written to %s\n", cli.get("csv", "fig2_importance_histograms.csv").c_str());
  return 0;
}
