// Reproduces Figure 5: accuracy of CQ versus WrapNet (WN) [11] on
// ResNet-20-x1 / CIFAR-10 at the asymmetric W/A settings 1.0/3.0,
// 1.0/7.0, 2.0/4.0 and 2.0/7.0.
//
// Paper shape to reproduce: CQ > WN at every setting, and CQ is more
// stable at low activation bit-widths.

#include <cstdio>

#include "baselines/wrapnet.h"
#include "harness.h"
#include "util/csv.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace cq;
  const util::Cli cli(argc, argv);
  const bench::BenchScale scale = bench::BenchScale::from_cli(cli);
  const int acc_bits = static_cast<int>(cli.get_int("acc_bits", 14));

  const data::DataSplit split = bench::dataset_c10(scale);
  auto fp_model = bench::make_resnet20(10, 1);
  const double fp_acc = bench::train_fp_cached(*fp_model, split, "resnet_x1_c10", scale);

  const std::vector<std::pair<double, int>> settings = {
      {1.0, 3}, {1.0, 7}, {2.0, 4}, {2.0, 7}};

  std::printf("=== Figure 5: CQ vs WN, ResNet-20-x1 / CIFAR-10-like ===\n");
  std::printf("FP accuracy %.4f | WN accumulator: %d bits\n\n", fp_acc, acc_bits);

  util::Table table({"setting (W/A)", "FP", "CQ", "WN", "CQ-WN"});
  util::CsvWriter csv(cli.get("csv", "fig5_cq_vs_wn.csv"),
                      {"setting", "fp_acc", "cq_acc", "wn_acc"});

  for (const auto& [wbits, abits] : settings) {
    util::Timer timer;
    auto cq_model = fp_model->clone();
    core::CqPipeline pipeline(bench::make_cq_config(wbits, abits, scale));
    const core::CqReport cq_report = pipeline.run(*cq_model, split);

    auto wn_model = fp_model->clone();
    baselines::WnConfig wn_cfg;
    wn_cfg.weight_bits = static_cast<int>(wbits);
    wn_cfg.activation_bits = abits;
    wn_cfg.accumulator_bits = acc_bits;
    wn_cfg.refine = bench::make_refine_config(scale);
    const baselines::BaselineReport wn_report =
        baselines::WnQuantizer(wn_cfg).run(*wn_model, split);

    const std::string setting =
        util::Table::num(wbits, 1) + "/" + util::Table::num(abits, 1);
    table.add_row({setting, util::Table::num(fp_acc * 100, 2),
                   util::Table::num(cq_report.quant_accuracy * 100, 2),
                   util::Table::num(wn_report.quant_accuracy * 100, 2),
                   util::Table::num(
                       (cq_report.quant_accuracy - wn_report.quant_accuracy) * 100, 2)});
    csv.add_row({setting, util::Table::num(fp_acc, 4),
                 util::Table::num(cq_report.quant_accuracy, 4),
                 util::Table::num(wn_report.quant_accuracy, 4)});
    std::printf("[%s] done in %.1fs\n", setting.c_str(), timer.seconds());
  }

  std::printf("\n%s(accuracies in %%)\n", table.render().c_str());
  return 0;
}
