// Ablation A3: does the class-based importance score agree with
// directly measured quantization sensitivity? Profiles each layer
// (quantize only that layer, everything else FP) and compares the
// per-layer accuracy drop against the layer's mean CQ score.
//
// Expected shape: layers whose filters score high (important to many
// classes) suffer larger drops when forced to low bit-width — the
// correlation that justifies protecting high-score filters.

#include <cstdio>

#include "core/importance.h"
#include "core/sensitivity.h"
#include "harness.h"
#include "util/csv.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cq;
  const util::Cli cli(argc, argv);
  const bench::BenchScale scale = bench::BenchScale::from_cli(cli);

  const data::DataSplit split = bench::dataset_c10(scale);
  auto model = bench::make_vgg_small(10);
  const double fp_acc = bench::train_fp_cached(*model, split, "vgg_c10", scale);

  core::ImportanceCollector collector({1e-50, scale.importance_samples});
  const auto scores = collector.collect(*model, split.val);

  core::SensitivityProfiler profiler({1, 2, 4}, scale.eval_samples);
  const auto profile = profiler.profile(*model, split.val);

  std::printf("=== Ablation A3: CQ scores vs measured sensitivity (VGG-small, FP %.3f) ===\n\n",
              fp_acc);
  util::Table table({"layer", "mean score", "drop@1bit", "drop@2bit", "drop@4bit"});
  util::CsvWriter csv(cli.get("csv", "ablation_sensitivity.csv"),
                      {"layer", "mean_score", "drop1", "drop2", "drop4"});

  std::vector<double> mean_scores;
  std::vector<double> drops1;
  for (std::size_t l = 0; l < profile.size(); ++l) {
    const auto summary = util::summarize(std::span<const float>(
        scores[l].filter_phi.data(), scores[l].filter_phi.size()));
    const double d1 = profile[l].drop_at(1, fp_acc);
    const double d2 = profile[l].drop_at(2, fp_acc);
    const double d4 = profile[l].drop_at(4, fp_acc);
    mean_scores.push_back(summary.mean);
    drops1.push_back(d1);
    table.add_row({profile[l].name, util::Table::num(summary.mean, 2),
                   util::Table::num(d1, 3), util::Table::num(d2, 3),
                   util::Table::num(d4, 3)});
    csv.add_row({profile[l].name, util::Table::num(summary.mean, 4),
                 util::Table::num(d1, 4), util::Table::num(d2, 4),
                 util::Table::num(d4, 4)});
  }
  std::printf("%s", table.render().c_str());

  // Rank correlation (Spearman via rank vectors) between mean score
  // and 1-bit drop across layers.
  auto ranks = [](const std::vector<double>& v) {
    std::vector<double> r(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) {
      for (std::size_t j = 0; j < v.size(); ++j) {
        if (v[j] < v[i]) r[i] += 1.0;
      }
    }
    return r;
  };
  const auto ra = ranks(mean_scores);
  const auto rb = ranks(drops1);
  double num = 0.0;
  const auto n = static_cast<double>(ra.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    const double d = ra[i] - rb[i];
    num += d * d;
  }
  const double rho = 1.0 - 6.0 * num / (n * (n * n - 1.0));
  std::printf("Spearman rank correlation (mean score vs 1-bit drop): %.3f\n", rho);
  return 0;
}
