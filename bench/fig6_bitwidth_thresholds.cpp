// Reproduces Figure 6: the sorted filter importance-score curves of
// VGG-small (2.0/2.0 on CIFAR-10) with the final bit-width thresholds
// drawn across them, plus the resulting per-layer bit bands.
//
// Paper shape to reproduce: one global set of thresholds partitions
// every layer's sorted curve into 0/1/2/3/4-bit bands; fully-connected
// layers lose many neurons to 0-bit; the layer closest to the output
// keeps everything at >= 2 bits.

#include <cstdio>

#include "core/pipeline.h"
#include "harness.h"
#include "util/csv.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cq;
  const util::Cli cli(argc, argv);
  const bench::BenchScale scale = bench::BenchScale::from_cli(cli);
  const double bits = cli.get_double("bits", 2.0);

  const data::DataSplit split = bench::dataset_c10(scale);
  auto model = bench::make_vgg_small(10);
  const double fp_acc = bench::train_fp_cached(*model, split, "vgg_c10", scale);

  core::CqConfig cfg = bench::make_cq_config(bits, static_cast<int>(bits), scale);
  cfg.refine.epochs = 0;  // Figure 6 shows the arrangement, not refinement
  core::CqPipeline pipeline(cfg);
  const core::CqReport report = pipeline.run(*model, split);

  std::printf("=== Figure 6: bit-width thresholds, VGG-small %.1f/%.1f CIFAR-10-like ===\n",
              bits, bits);
  std::printf("FP acc %.4f | achieved avg bits %.3f\n\nThresholds (0/1, 1/2, 2/3, 3/4):",
              fp_acc, report.achieved_avg_bits);
  for (const double p : report.thresholds) std::printf(" %.2f", p);
  std::printf("\n\n");

  util::CsvWriter csv(cli.get("csv", "fig6_bitwidth_thresholds.csv"),
                      {"layer", "sorted_index", "score", "bits"});
  util::Table table({"layer", "filters", "0-bit", "1-bit", "2-bit", "3-bit", "4-bit"});
  for (std::size_t l = 0; l < report.scores.size(); ++l) {
    const auto& layer = report.scores[l];
    auto sorted = layer.filter_phi;
    std::sort(sorted.begin(), sorted.end());
    int counts[5] = {0, 0, 0, 0, 0};
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      const int b = core::ThresholdSearch::bits_for_score(sorted[i], report.thresholds);
      ++counts[b];
      csv.add_row({layer.name, std::to_string(i), util::Table::num(sorted[i], 4),
                   std::to_string(b)});
    }
    table.add_row({layer.name, std::to_string(sorted.size()), std::to_string(counts[0]),
                   std::to_string(counts[1]), std::to_string(counts[2]),
                   std::to_string(counts[3]), std::to_string(counts[4])});
    // ASCII rendition of the sorted curve with bit bands.
    std::printf("Layer-%zu %-8s |", l + 1, layer.name.c_str());
    for (std::size_t i = 0; i < sorted.size();
         i += std::max<std::size_t>(1, sorted.size() / 32)) {
      std::printf("%d", core::ThresholdSearch::bits_for_score(sorted[i],
                                                              report.thresholds));
    }
    std::printf("| (score %.2f..%.2f)\n", sorted.front(), sorted.back());
  }
  std::printf("\n%s", table.render().c_str());
  std::printf("(digits above: bit-width along each layer's sorted score curve)\n");
  return 0;
}
