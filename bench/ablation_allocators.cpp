// Ablation A1 (DESIGN.md): how much of CQ's result comes from the
// class-based score definition? The same threshold search is run with
// (a) class-based scores (CQ), (b) per-filter weight-magnitude scores,
// (c) random scores, and (d) layer-uniform allocation (no search), all
// at the same average bit budget and with identical refinement.

#include <cstdio>

#include "baselines/allocators.h"
#include "baselines/apn.h"
#include "baselines/loss_aware.h"
#include "core/pipeline.h"
#include "harness.h"
#include "util/csv.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cq;
  const util::Cli cli(argc, argv);
  const bench::BenchScale scale = bench::BenchScale::from_cli(cli);
  const double bits = cli.get_double("bits", 2.0);
  const int abits = static_cast<int>(bits);

  const data::DataSplit split = bench::dataset_c10(scale);
  auto fp_model = bench::make_vgg_small(10);
  const double fp_acc = bench::train_fp_cached(*fp_model, split, "vgg_c10", scale);

  util::Table table({"allocator", "avg bits", "acc pre-refine", "acc refined"});
  util::CsvWriter csv(cli.get("csv", "ablation_allocators.csv"),
                      {"allocator", "avg_bits", "acc_pre", "acc_post"});

  auto run_with_scores = [&](const std::string& label,
                             const std::vector<core::LayerScores>& scores) {
    auto model = fp_model->clone();
    auto teacher = model->clone();
    model->calibrate_activations(split.train.images);
    model->set_activation_bits(abits);

    core::SearchConfig cfg;
    cfg.max_bits = 4;
    cfg.desired_avg_bits = bits;
    cfg.t1 = 0.5;
    cfg.decay = 0.8;
    cfg.step_fraction = 0.0625;
    cfg.eval_samples = scale.eval_samples;
    core::ThresholdSearch search(cfg);
    const core::SearchResult result = search.run(*model, scores, split.val);
    const double pre = nn::Trainer::evaluate(*model, split.test.images, split.test.labels);

    core::Refiner refiner(bench::make_refine_config(scale));
    const core::RefineResult refined = refiner.run(*model, *teacher, split.train, split.test);

    table.add_row({label, util::Table::num(result.achieved_avg_bits, 2),
                   util::Table::num(pre * 100, 2),
                   util::Table::num(refined.accuracy_after * 100, 2)});
    csv.add_row({label, util::Table::num(result.achieved_avg_bits, 3),
                 util::Table::num(pre, 4), util::Table::num(refined.accuracy_after, 4)});
    std::printf("[%s] avg %.2f bits, refined acc %.3f\n", label.c_str(),
                result.achieved_avg_bits, refined.accuracy_after);
  };

  // (a) Class-based scores.
  {
    auto scoring_model = fp_model->clone();
    core::ImportanceCollector collector({1e-50, scale.importance_samples});
    run_with_scores("class-based (CQ)", collector.collect(*scoring_model, split.val));
  }
  // (b) Weight magnitude.
  {
    auto scoring_model = fp_model->clone();
    run_with_scores("weight magnitude", baselines::magnitude_scores(*scoring_model));
  }
  // (c) Random scores.
  {
    auto scoring_model = fp_model->clone();
    run_with_scores("random", baselines::random_scores(*scoring_model, 77));
  }
  // (d) Layer-uniform (APN-style) at the same budget.
  {
    auto model = fp_model->clone();
    baselines::ApnConfig cfg;
    cfg.weight_bits = static_cast<int>(bits);
    cfg.activation_bits = abits;
    cfg.refine = bench::make_refine_config(scale);
    const baselines::BaselineReport report = baselines::ApnQuantizer(cfg).run(*model, split);
    table.add_row({"layer-uniform", util::Table::num(report.achieved_avg_bits, 2),
                   util::Table::num(report.quant_accuracy_pre_refine * 100, 2),
                   util::Table::num(report.quant_accuracy * 100, 2)});
    csv.add_row({"layer-uniform", util::Table::num(report.achieved_avg_bits, 3),
                 util::Table::num(report.quant_accuracy_pre_refine, 4),
                 util::Table::num(report.quant_accuracy, 4)});
  }
  // (e) Loss-aware iterative demotion (paper reference [8] style):
  // no scores, many validation-loss evaluations instead of CQ's
  // one-time backprop. The evaluation count is part of the story.
  {
    auto model = fp_model->clone();
    auto teacher = model->clone();
    model->calibrate_activations(split.train.images);
    model->set_activation_bits(abits);

    baselines::LossAwareConfig cfg;
    cfg.max_bits = 4;
    cfg.desired_avg_bits = bits;
    cfg.eval_samples = scale.eval_samples;
    const baselines::LossAwareResult result =
        baselines::LossAwareAllocator(cfg).run(*model, split.val);
    const double pre = nn::Trainer::evaluate(*model, split.test.images, split.test.labels);
    core::Refiner refiner(bench::make_refine_config(scale));
    const core::RefineResult refined =
        refiner.run(*model, *teacher, split.train, split.test);

    table.add_row({"loss-aware iter.", util::Table::num(result.achieved_avg_bits, 2),
                   util::Table::num(pre * 100, 2),
                   util::Table::num(refined.accuracy_after * 100, 2)});
    csv.add_row({"loss-aware", util::Table::num(result.achieved_avg_bits, 3),
                 util::Table::num(pre, 4), util::Table::num(refined.accuracy_after, 4)});
    std::printf("[loss-aware] avg %.2f bits, refined acc %.3f, %d loss evaluations\n",
                result.achieved_avg_bits, refined.accuracy_after, result.evaluations);
  }

  std::printf("\n=== Ablation A1: score definition, VGG-small %.1f/%.1f ===\n", bits, bits);
  std::printf("FP accuracy %.2f%%\n%s", fp_acc * 100, table.render().c_str());
  return 0;
}
