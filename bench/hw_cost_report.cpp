// Hardware cost report (DESIGN.md ablation A4): what the paper's
// average-bit-width reduction buys on accelerator hardware. For each
// W/A setting, the CQ arrangement is compared against layer-uniform
// quantization at the same nominal bits and against an int8 uniform
// reference, under
//   - the 45nm-class energy model (multipliers, SRAM, DRAM), and
//   - a bit-serial precision-scalable PE array (latency in cycles).
// Also prints the deployment artifact size from the packed exporter.

#include <cstdio>

#include "core/pipeline.h"
#include "deploy/artifact.h"
#include "harness.h"
#include "hw/cost_model.h"
#include "hw/pe_array.h"
#include "util/csv.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cq;
  const util::Cli cli(argc, argv);
  const bench::BenchScale scale = bench::BenchScale::from_cli(cli);

  const data::DataSplit split = bench::dataset_c10(scale);
  auto fp_model = bench::make_vgg_small(10);
  const double fp_acc = bench::train_fp_cached(*fp_model, split, "vgg_c10", scale);
  std::printf("[INFO] fp accuracy %.4f\n", fp_acc);

  // One sample image for workload tracing.
  tensor::Tensor sample({1, split.train.images.dim(1), split.train.images.dim(2),
                         split.train.images.dim(3)});
  for (std::size_t i = 0; i < sample.numel(); ++i) sample[i] = split.train.images[i];

  const hw::EnergyModel energy;
  const hw::PeArrayConfig pe;

  util::Table table({"config", "avg bits", "accuracy", "energy uJ", "cycles", "speedup",
                     "artifact KB"});
  util::CsvWriter csv(cli.get("csv", "hw_cost_report.csv"),
                      {"config", "avg_bits", "accuracy", "energy_uj", "cycles",
                       "speedup_vs_int8", "artifact_kb"});

  // int8 layer-uniform reference everything is normalized against.
  auto ref_model = fp_model->clone();
  const auto ref_workloads =
      hw::uniform_workloads(hw::trace_workloads(*ref_model, sample, 8), 8);
  const hw::PeArrayReport ref_timing = hw::simulate_pe_array(ref_workloads, pe);
  const hw::ModelCost ref_cost = hw::estimate_cost(ref_workloads, energy);
  const double ref_acc = nn::Trainer::evaluate(*fp_model, split.test.images, split.test.labels);
  table.add_row({"uniform int8", "8.00", util::Table::num(ref_acc * 100, 2),
                 util::Table::num(ref_cost.total_pj() / 1e6, 2),
                 std::to_string(ref_timing.total_cycles), "1.00", "-"});
  csv.add_row({"uniform_int8", "8.0", util::Table::num(ref_acc, 4),
               util::Table::num(ref_cost.total_pj() / 1e6, 3),
               std::to_string(ref_timing.total_cycles), "1.000", ""});

  for (const double bits : {2.0, 3.0, 4.0}) {
    const int abits = static_cast<int>(bits);

    // CQ at the desired average bit-width.
    auto cq_model = fp_model->clone();
    const core::CqConfig cq_cfg = bench::make_cq_config(bits, abits, scale);
    const core::CqReport report = core::CqPipeline(cq_cfg).run(*cq_model, split);
    const auto cq_workloads = hw::trace_workloads(*cq_model, sample, abits);
    const hw::ModelCost cq_cost = hw::estimate_cost(cq_workloads, energy);
    const hw::PeArrayReport cq_timing = hw::simulate_pe_array(cq_workloads, pe);
    const deploy::SizeReport size = deploy::size_report(deploy::export_model(*cq_model));

    char label[64];
    std::snprintf(label, sizeof label, "CQ %.1f/%.1f", bits, bits);
    table.add_row({label, util::Table::num(report.achieved_avg_bits, 2),
                   util::Table::num(report.quant_accuracy * 100, 2),
                   util::Table::num(cq_cost.total_pj() / 1e6, 2),
                   std::to_string(cq_timing.total_cycles),
                   util::Table::num(cq_timing.speedup_over(ref_timing), 2),
                   util::Table::num(static_cast<double>(size.total_bytes()) / 1024.0, 1)});
    csv.add_row({label, util::Table::num(report.achieved_avg_bits, 3),
                 util::Table::num(report.quant_accuracy, 4),
                 util::Table::num(cq_cost.total_pj() / 1e6, 3),
                 std::to_string(cq_timing.total_cycles),
                 util::Table::num(cq_timing.speedup_over(ref_timing), 3),
                 util::Table::num(static_cast<double>(size.total_bytes()) / 1024.0, 2)});
    std::printf("[INFO] CQ %.1f: acc %.3f, %.2f uJ, %lld cycles (%.2fx vs int8)\n", bits,
                report.quant_accuracy, cq_cost.total_pj() / 1e6,
                static_cast<long long>(cq_timing.total_cycles),
                cq_timing.speedup_over(ref_timing));

    // Layer-uniform at the same nominal bits (no search, no pruning).
    auto uni_model = fp_model->clone();
    const auto uni_workloads =
        hw::uniform_workloads(hw::trace_workloads(*uni_model, sample, abits), abits);
    const hw::ModelCost uni_cost = hw::estimate_cost(uni_workloads, energy);
    const hw::PeArrayReport uni_timing = hw::simulate_pe_array(uni_workloads, pe);
    std::snprintf(label, sizeof label, "uniform %d-bit", abits);
    table.add_row({label, util::Table::num(bits, 2), "-",
                   util::Table::num(uni_cost.total_pj() / 1e6, 2),
                   std::to_string(uni_timing.total_cycles),
                   util::Table::num(uni_timing.speedup_over(ref_timing), 2), "-"});
    csv.add_row({label, util::Table::num(bits, 3), "",
                 util::Table::num(uni_cost.total_pj() / 1e6, 3),
                 std::to_string(uni_timing.total_cycles),
                 util::Table::num(uni_timing.speedup_over(ref_timing), 3), ""});
  }

  std::printf("\n%s", table.render().c_str());
  std::printf(
      "\nEnergy: 45nm-class constants (8x8 MAC 0.3 pJ, SRAM %.3f pJ/bit, DRAM %.1f "
      "pJ/bit); latency: %dx%d bit-serial PE array.\n",
      energy.sram_pj_per_bit, energy.dram_pj_per_bit, pe.rows, pe.cols);
  return 0;
}
