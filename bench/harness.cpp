#include "harness.h"

#include <filesystem>

#include "nn/models/checkpoint.h"
#include "util/logging.h"
#include "util/timer.h"

namespace cq::bench {

namespace {

constexpr const char* kCheckpointDir = "bench_checkpoints";

}  // namespace

BenchScale BenchScale::from_cli(const util::Cli& cli) {
  BenchScale s;
  if (cli.get_bool("fast", false)) {
    s.train_per_class_c10 = 60;
    s.val_per_class_c10 = 20;
    s.test_per_class_c10 = 20;
    s.train_per_class_c100 = 8;
    s.val_per_class_c100 = 5;
    s.test_per_class_c100 = 4;
    s.fp_epochs = 2;
    s.refine_epochs = 1;
    s.eval_samples = 60;
    s.importance_samples = 8;
  }
  s.train_per_class_c10 =
      static_cast<int>(cli.get_int("train_per_class", s.train_per_class_c10));
  s.fp_epochs = static_cast<int>(cli.get_int("fp_epochs", s.fp_epochs));
  s.refine_epochs = static_cast<int>(cli.get_int("refine_epochs", s.refine_epochs));
  s.eval_samples = static_cast<int>(cli.get_int("eval_samples", s.eval_samples));
  s.importance_samples =
      static_cast<int>(cli.get_int("importance_samples", s.importance_samples));
  return s;
}

data::DataSplit dataset_c10(const BenchScale& scale) {
  data::SyntheticVisionConfig cfg = data::synthetic_cifar10_like();
  cfg.train_per_class = scale.train_per_class_c10;
  cfg.val_per_class = scale.val_per_class_c10;
  cfg.test_per_class = scale.test_per_class_c10;
  return data::make_synthetic_vision(cfg);
}

data::DataSplit dataset_c100(const BenchScale& scale) {
  data::SyntheticVisionConfig cfg = data::synthetic_cifar100_like();
  cfg.train_per_class = scale.train_per_class_c100;
  cfg.val_per_class = scale.val_per_class_c100;
  cfg.test_per_class = scale.test_per_class_c100;
  return data::make_synthetic_vision(cfg);
}

std::unique_ptr<nn::Model> make_vgg_small(int num_classes, std::uint64_t seed) {
  nn::VggSmallConfig cfg;
  cfg.num_classes = num_classes;
  cfg.seed = seed;
  return std::make_unique<nn::VggSmall>(cfg);
}

std::unique_ptr<nn::Model> make_resnet20(int num_classes, int expand, std::uint64_t seed) {
  nn::ResNet20Config cfg;
  cfg.num_classes = num_classes;
  cfg.base_width = 2;
  cfg.expand = expand;
  cfg.seed = seed;
  return std::make_unique<nn::ResNet20>(cfg);
}

double train_fp_cached(nn::Model& model, const data::DataSplit& split,
                       const std::string& name, const BenchScale& scale) {
  namespace fs = std::filesystem;
  fs::create_directories(kCheckpointDir);
  const std::string path = std::string(kCheckpointDir) + "/" + name + "_e" +
                           std::to_string(scale.fp_epochs) + "_n" +
                           std::to_string(split.train.size()) + ".cqt";
  if (fs::exists(path)) {
    try {
      if (nn::load_checkpoint(path, model)) {
        const double acc =
            nn::Trainer::evaluate(model, split.test.images, split.test.labels);
        util::log_info() << name << ": loaded checkpoint " << path << " (acc "
                         << acc << ")";
        return acc;
      }
      util::log_warn() << name << ": checkpoint shape mismatch, retraining";
    } catch (const std::exception& e) {
      util::log_warn() << name << ": checkpoint unreadable (" << e.what()
                       << "), retraining";
    }
  }

  nn::TrainConfig tc;
  tc.batch_size = 50;
  // Paper recipe scaled down: VGG lr 0.02, ResNet lr 0.1; milestones
  // proportional to the shortened schedule. The thin ResNets underfit
  // on one pass, so they train twice as long as the VGGs.
  const bool is_vgg = model.name() == "VggSmall";
  tc.epochs = is_vgg ? scale.fp_epochs : 2 * scale.fp_epochs;
  tc.lr = is_vgg ? 0.02 : 0.1;
  tc.weight_decay = is_vgg ? 5e-4 : 1e-4;
  tc.momentum = 0.9;
  tc.lr_milestones = {(3 * tc.epochs) / 4};
  tc.seed = 17;
  nn::Trainer trainer(tc);
  util::Timer timer;
  trainer.fit(model, split.train.images, split.train.labels);
  const double acc = nn::Trainer::evaluate(model, split.test.images, split.test.labels);
  util::log_info() << name << ": trained " << scale.fp_epochs << " epochs in "
                   << timer.seconds() << "s (acc " << acc << ")";
  nn::save_checkpoint(path, model);
  return acc;
}

core::CqConfig make_cq_config(double weight_bits, int act_bits, const BenchScale& scale) {
  core::CqConfig cfg;
  cfg.importance.samples_per_class = scale.importance_samples;
  cfg.search.max_bits = 4;
  cfg.search.desired_avg_bits = weight_bits;
  cfg.search.t1 = 0.5;   // paper Section III-C example
  cfg.search.decay = 0.8;
  cfg.search.step_fraction = 0.0625;
  cfg.search.eval_samples = scale.eval_samples;
  cfg.refine = make_refine_config(scale);
  cfg.activation_bits = act_bits;
  return cfg;
}

core::RefineConfig make_refine_config(const BenchScale& scale) {
  core::RefineConfig rc;
  rc.epochs = scale.refine_epochs;
  rc.batch_size = 50;
  rc.lr = 0.01;
  rc.momentum = 0.9;
  rc.weight_decay = 1e-4;
  rc.alpha = 0.3;  // paper Section IV
  rc.seed = 23;
  return rc;
}

}  // namespace cq::bench
