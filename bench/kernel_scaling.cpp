// Intra-op kernel scaling harness: times the threaded integer/float
// kernels at a list of thread counts — for each backend in
// --backends — verifies every timed run is byte-identical to the
// scalar serial reference, and emits machine-readable JSON for the CI
// perf lane.
//
// This is the repository's only *measured* perf check: the dev
// container is single-core, so the perf-smoke CI job runs this binary
// on a multi-core runner and asserts the speedups it observes, e.g.
//
//   kernel_scaling --json=kernel_scaling.json --assert-case=integer_conv_large
//                  --assert-threads=4 --assert-speedup=1.5
//                  --assert-backend-speedup=1.2
//
// --assert-speedup gates thread scaling of the named scalar case;
// --assert-backend-speedup gates the blocked backend's win over the
// scalar kernels on the same case at --assert-threads (requires both
// backends in the sweep). --assert-simd-speedup /
// --assert-simd-portable-speedup gate the simd backend's win over
// *blocked* on the same case: the binary applies the first on runners
// whose resolved SIMD tier is avx2 and the second elsewhere, so one CI
// command line gates every runner at the bar its ISA can meet. Exit
// codes: 0 ok, 1 assertion failed, 2 output mismatch vs the scalar
// reference.
//
// Other knobs: --threads=1,2,4 (thread counts), --repeat=N (timed runs
// per point; best-of is reported to shed scheduler noise),
// --backends=scalar,blocked,simd (kernel backends to sweep; blocked /
// simd cases are named <case>@blocked / <case>@simd and always
// verified byte-identical against scalar before timing). The JSON
// carries a "cpu" object (CPUID features + the resolved SIMD tier) so
// perf artifacts say what machine produced them.

#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "deploy/backend.h"
#include "deploy/int_engine.h"
#include "tensor/ops.h"
#include "util/cli.h"
#include "util/exec_context.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace cq;

/// One timed kernel under test: run() executes the kernel under the
/// given context and returns the output bytes for the byte-identity
/// check. `ref` (when set) produces the reference those bytes must
/// equal — blocked cases point it at the scalar kernel, so every
/// blocked measurement doubles as a cross-backend identity check;
/// scalar cases default to their own serial run.
struct Case {
  std::string name;
  std::string desc;
  std::string backend = "scalar";
  long long work_macs = 0;
  std::function<std::vector<float>(const util::ExecContext&)> run;
  std::function<std::vector<float>()> ref;
};

/// Synthetic IntegerLayer with a mixed bit pattern (pruned filters
/// included) and dense random codes — the shape CQ deployments have.
deploy::IntegerLayer fabricate_integer_layer(int num_filters, std::int64_t per_filter,
                                             util::Rng& rng) {
  deploy::IntegerLayer layer;
  layer.num_filters = num_filters;
  layer.weights_per_filter = per_filter;
  layer.range_hi = 0.9f;
  const int pattern[8] = {2, 3, 2, 1, 4, 2, 0, 2};
  layer.filter_bits.resize(static_cast<std::size_t>(num_filters));
  layer.codes.assign(static_cast<std::size_t>(num_filters) * per_filter, 0);
  layer.bias.resize(static_cast<std::size_t>(num_filters));
  for (int k = 0; k < num_filters; ++k) {
    const int b = pattern[k % 8];
    layer.filter_bits[static_cast<std::size_t>(k)] = static_cast<std::uint8_t>(b);
    layer.bias[static_cast<std::size_t>(k)] =
        static_cast<float>(rng.uniform(-0.5, 0.5));
    if (b == 0) continue;
    const int levels = 1 << b;
    std::int32_t* row = layer.codes.data() + static_cast<std::size_t>(k) * per_filter;
    for (std::int64_t j = 0; j < per_filter; ++j) {
      row[j] = static_cast<std::int32_t>(rng.uniform_int(0, levels - 1));
    }
  }
  return layer;
}

deploy::ActCodes fabricate_act_codes(std::size_t count, int bits, util::Rng& rng) {
  deploy::ActCodes acts;
  acts.bits = bits;
  const int levels = 1 << bits;
  acts.scale = 1.0f / static_cast<float>(levels - 1);
  acts.codes.resize(count);
  for (std::int32_t& c : acts.codes) {
    c = static_cast<std::int32_t>(rng.uniform_int(0, levels - 1));
  }
  return acts;
}

std::vector<std::string> parse_list(const std::string& list) {
  std::vector<std::string> out;
  std::string token;
  for (const char c : list + ",") {
    if (c == ',') {
      if (!token.empty()) out.push_back(token);
      token.clear();
    } else {
      token += c;
    }
  }
  return out;
}

bool contains(const std::vector<std::string>& list, const std::string& value) {
  for (const std::string& v : list) {
    if (v == value) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  std::vector<int> thread_counts;
  for (const std::string& t : parse_list(cli.get("threads", "1,2,4"))) {
    thread_counts.push_back(std::stoi(t));
  }
  const std::vector<std::string> backends =
      parse_list(cli.get("backends", "scalar,blocked"));
  for (const std::string& b : backends) {
    deploy::parse_backend_kind(b);  // fail fast on typos, naming the options
  }
  const int repeat = static_cast<int>(cli.get_int("repeat", 5));
  const std::string json_path = cli.get("json", "");
  const std::string assert_case = cli.get("assert-case", "");
  const int assert_threads = static_cast<int>(cli.get_int("assert-threads", 4));
  const double assert_speedup = cli.get_double("assert-speedup", 0.0);
  const double assert_backend_speedup = cli.get_double("assert-backend-speedup", 0.0);
  const double assert_simd_speedup = cli.get_double("assert-simd-speedup", 0.0);
  const double assert_simd_portable_speedup =
      cli.get_double("assert-simd-portable-speedup", 0.0);
  const bool want_scalar = contains(backends, "scalar");
  const bool want_blocked = contains(backends, "blocked");
  // The simd cases run at the tier this machine resolves (CPUID +
  // CQ_SIMD); tier scalar means the explicit kernels are disabled, so
  // the cases would only throw — skip them and say so.
  const deploy::SimdTier simd_tier = deploy::resolve_simd_tier();
  const bool want_simd =
      contains(backends, "simd") && simd_tier != deploy::SimdTier::kScalar;
  if (contains(backends, "simd") && !want_simd) {
    std::fprintf(stderr,
                 "kernel_scaling: simd backend requested but the resolved tier "
                 "is 'scalar' (CQ_SIMD=off?) — skipping @simd cases\n");
  }

  util::Rng rng(42);
  std::vector<Case> cases;

  /// Registers a scalar integer case plus (per --backends) its blocked
  /// and simd twins running the packed kernels over the same layer and
  /// codes; both twins are byte-verified against the scalar serial run
  /// before any timing.
  const auto add_integer_case =
      [&](const std::string& name, const std::string& desc, long long macs,
          std::function<std::vector<float>(const util::ExecContext&)> scalar_run,
          std::function<std::vector<float>(const util::ExecContext&)> blocked_run,
          std::function<std::vector<float>(const util::ExecContext&)> simd_run) {
        if (want_scalar) cases.push_back({name, desc, "scalar", macs, scalar_run, {}});
        if (want_blocked) {
          cases.push_back({name + "@blocked", desc + " (blocked backend)", "blocked",
                           macs, blocked_run,
                           [scalar_run] { return scalar_run({}); }});
        }
        if (want_simd) {
          cases.push_back({name + "@simd",
                           desc + " (simd backend, " +
                               std::string(deploy::simd_tier_name(simd_tier)) +
                               " tier)",
                           "simd", macs, simd_run,
                           [scalar_run] { return scalar_run({}); }});
        }
      };

  // The "large-layer case" of the perf-smoke assertions: one image
  // through a VGG-middle-sized conv, ~75M MACs.
  {
    const int in_c = 64, hw = 32, filters = 128, kernel = 3, batch = 1;
    const std::int64_t per_filter = static_cast<std::int64_t>(in_c) * kernel * kernel;
    auto layer = std::make_shared<deploy::IntegerLayer>(
        fabricate_integer_layer(filters, per_filter, rng));
    auto packed = std::make_shared<deploy::blocked::PackedCodes>(
        deploy::blocked::pack_codes(*layer));
    auto spacked = std::make_shared<deploy::simd::PackedSimd>(
        deploy::simd::pack_simd(*layer));
    auto acts = std::make_shared<deploy::ActCodes>(fabricate_act_codes(
        static_cast<std::size_t>(batch) * in_c * hw * hw, 3, rng));
    add_integer_case(
        "integer_conv_large", "integer conv 64x32x32 -> 128 filters, 3x3",
        2LL * batch * filters * per_filter * hw * hw,
        [=](const util::ExecContext& exec) {
          tensor::Tensor out = deploy::integer_conv_forward(
              *layer, *acts, batch, in_c, hw, hw, kernel, 1, 1, exec);
          return std::vector<float>(out.data(), out.data() + out.numel());
        },
        [=](const util::ExecContext& exec) {
          std::vector<float> out(static_cast<std::size_t>(batch) * filters * hw * hw);
          std::vector<std::int32_t> cols;
          deploy::blocked::conv_forward_into(*packed, *acts, batch, in_c, hw, hw,
                                             kernel, 1, 1, out.data(), cols, exec);
          return out;
        },
        [=](const util::ExecContext& exec) {
          std::vector<float> out(static_cast<std::size_t>(batch) * filters * hw * hw);
          std::vector<std::int32_t> cols;
          std::vector<std::int16_t> cols16;
          std::vector<std::uint8_t> cols8;
          deploy::simd::conv_forward_into(simd_tier, *spacked, *acts, batch, in_c,
                                          hw, hw, kernel, 1, 1, out.data(), cols,
                                          cols16, cols8, exec);
          return out;
        });
  }

  // Small conv: shows where threading/tiling overhead eats the win.
  {
    const int in_c = 8, hw = 16, filters = 16, kernel = 3, batch = 1;
    const std::int64_t per_filter = static_cast<std::int64_t>(in_c) * kernel * kernel;
    auto layer = std::make_shared<deploy::IntegerLayer>(
        fabricate_integer_layer(filters, per_filter, rng));
    auto packed = std::make_shared<deploy::blocked::PackedCodes>(
        deploy::blocked::pack_codes(*layer));
    auto spacked = std::make_shared<deploy::simd::PackedSimd>(
        deploy::simd::pack_simd(*layer));
    auto acts = std::make_shared<deploy::ActCodes>(fabricate_act_codes(
        static_cast<std::size_t>(batch) * in_c * hw * hw, 3, rng));
    add_integer_case(
        "integer_conv_small", "integer conv 8x16x16 -> 16 filters, 3x3",
        2LL * batch * filters * per_filter * hw * hw,
        [=](const util::ExecContext& exec) {
          tensor::Tensor out = deploy::integer_conv_forward(
              *layer, *acts, batch, in_c, hw, hw, kernel, 1, 1, exec);
          return std::vector<float>(out.data(), out.data() + out.numel());
        },
        [=](const util::ExecContext& exec) {
          std::vector<float> out(static_cast<std::size_t>(batch) * filters * hw * hw);
          std::vector<std::int32_t> cols;
          deploy::blocked::conv_forward_into(*packed, *acts, batch, in_c, hw, hw,
                                             kernel, 1, 1, out.data(), cols, exec);
          return out;
        },
        [=](const util::ExecContext& exec) {
          std::vector<float> out(static_cast<std::size_t>(batch) * filters * hw * hw);
          std::vector<std::int32_t> cols;
          std::vector<std::int16_t> cols16;
          std::vector<std::uint8_t> cols8;
          deploy::simd::conv_forward_into(simd_tier, *spacked, *acts, batch, in_c,
                                          hw, hw, kernel, 1, 1, out.data(), cols,
                                          cols16, cols8, exec);
          return out;
        });
  }

  // Integer FC layer, chunked over output rows / filter tiles.
  {
    const int in_features = 1024, filters = 1024, batch = 16;
    auto layer = std::make_shared<deploy::IntegerLayer>(
        fabricate_integer_layer(filters, in_features, rng));
    auto packed = std::make_shared<deploy::blocked::PackedCodes>(
        deploy::blocked::pack_codes(*layer));
    auto spacked = std::make_shared<deploy::simd::PackedSimd>(
        deploy::simd::pack_simd(*layer));
    auto acts = std::make_shared<deploy::ActCodes>(fabricate_act_codes(
        static_cast<std::size_t>(batch) * in_features, 4, rng));
    add_integer_case(
        "integer_linear_large", "integer linear 16x1024 -> 1024",
        2LL * batch * in_features * filters,
        [=](const util::ExecContext& exec) {
          tensor::Tensor out =
              deploy::integer_linear_forward(*layer, *acts, batch, in_features, exec);
          return std::vector<float>(out.data(), out.data() + out.numel());
        },
        [=](const util::ExecContext& exec) {
          std::vector<float> out(static_cast<std::size_t>(batch) * filters);
          deploy::blocked::linear_forward_into(*packed, *acts, batch, in_features,
                                               out.data(), exec);
          return out;
        },
        [=](const util::ExecContext& exec) {
          std::vector<float> out(static_cast<std::size_t>(batch) * filters);
          std::vector<std::int16_t> acts16;
          std::vector<std::uint8_t> acts8;
          deploy::simd::linear_forward_into(simd_tier, *spacked, *acts, batch,
                                            in_features, out.data(), acts16, acts8,
                                            exec);
          return out;
        });
  }

  // Float GEMM — the training-side im2col+GEMM path (backends only
  // differ on integer ops, so this is scalar-only).
  if (want_scalar) {
    const int m = 256, k = 256, n = 256;
    util::Rng gemm_rng(7);
    auto a = std::make_shared<tensor::Tensor>(
        tensor::Tensor::randn({m, k}, gemm_rng));
    auto b = std::make_shared<tensor::Tensor>(
        tensor::Tensor::randn({k, n}, gemm_rng));
    cases.push_back({"gemm_float_256", "tensor::gemm 256x256x256", "scalar",
                     2LL * m * k * n,
                     [=](const util::ExecContext& exec) {
                       std::vector<float> c(static_cast<std::size_t>(m) * n);
                       tensor::gemm(a->data(), b->data(), c.data(), m, k, n,
                                    /*accumulate=*/false, exec);
                       return c;
                     },
                     {}});
  }

  struct Point {
    int threads = 0;
    double best_ms = 0.0;
    double speedup = 1.0;
  };
  struct CaseResult {
    const Case* c = nullptr;
    std::vector<Point> points;
  };
  std::vector<CaseResult> results;

  for (const Case& c : cases) {
    CaseResult result;
    result.c = &c;
    // Identity reference: the case's own serial run, or — for blocked
    // cases — the scalar kernel's serial run (the byte-identity
    // contract every backend is held to).
    const std::vector<float> reference = c.ref ? c.ref() : c.run({});
    // The speedup baseline is always the strictly serial run, whatever
    // --threads lists — otherwise omitting 1 would silently rebase the
    // asserted speedup on a threaded time. Scalar cases are already
    // warm from the reference run; blocked cases warm their own kernel.
    if (c.ref) c.run({});
    double base_ms = 0.0;
    for (int r = 0; r < repeat; ++r) {
      util::Timer timer;
      c.run({});
      const double ms = timer.millis();
      if (r == 0 || ms < base_ms) base_ms = ms;
    }
    for (const int t : thread_counts) {
      // The caller participates, so a pool of t-1 helpers gives t
      // threads; t=1 is the strictly serial path (no pool at all).
      std::unique_ptr<util::ThreadPool> pool;
      if (t > 1) pool = std::make_unique<util::ThreadPool>(t - 1);
      const util::ExecContext exec{pool.get(), t};

      const std::vector<float> warm = c.run(exec);  // warm + verify
      if (warm.size() != reference.size() ||
          std::memcmp(warm.data(), reference.data(),
                      reference.size() * sizeof(float)) != 0) {
        std::fprintf(stderr,
                     "kernel_scaling: %s at %d threads is NOT byte-identical "
                     "to the scalar serial reference\n",
                     c.name.c_str(), t);
        return 2;
      }

      double best = 0.0;
      for (int r = 0; r < repeat; ++r) {
        util::Timer timer;
        c.run(exec);
        const double ms = timer.millis();
        if (r == 0 || ms < best) best = ms;
      }
      result.points.push_back({t, best, base_ms > 0.0 ? base_ms / best : 1.0});
    }
    results.push_back(std::move(result));
  }

  // Human-readable report.
  for (const CaseResult& r : results) {
    util::Table table({"threads", "best ms", "speedup", "GMAC/s"});
    for (const Point& p : r.points) {
      table.add_row({std::to_string(p.threads), util::Table::num(p.best_ms, 3),
                     util::Table::num(p.speedup, 2),
                     util::Table::num(static_cast<double>(r.c->work_macs) /
                                          (p.best_ms * 1e6),
                                      2)});
    }
    std::printf("%s — %s\n%s\n", r.c->name.c_str(), r.c->desc.c_str(),
                table.render().c_str());
  }
  std::printf("hardware threads: %u, repeat: %d (best-of)\n",
              std::thread::hardware_concurrency(), repeat);

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "kernel_scaling: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"hardware_threads\": %u,\n  \"repeat\": %d,\n"
                 "  \"cpu\": %s,\n  \"cases\": [\n",
                 std::thread::hardware_concurrency(), repeat,
                 deploy::cpu_features_json().c_str());
    for (std::size_t i = 0; i < results.size(); ++i) {
      const CaseResult& r = results[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"desc\": \"%s\", \"backend\": \"%s\", "
                   "\"work_macs\": %lld,\n"
                   "     \"results\": [",
                   r.c->name.c_str(), r.c->desc.c_str(), r.c->backend.c_str(),
                   r.c->work_macs);
      for (std::size_t j = 0; j < r.points.size(); ++j) {
        const Point& p = r.points[j];
        std::fprintf(f, "%s{\"threads\": %d, \"best_ms\": %.4f, \"speedup\": %.3f}",
                     j == 0 ? "" : ", ", p.threads, p.best_ms, p.speedup);
      }
      std::fprintf(f, "]}%s\n", i + 1 == results.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  const auto best_ms_at = [&results](const std::string& name, int threads,
                                     double* out) {
    for (const CaseResult& r : results) {
      if (r.c->name != name) continue;
      for (const Point& p : r.points) {
        if (p.threads != threads) continue;
        *out = p.best_ms;
        return true;
      }
    }
    return false;
  };

  bool failed = false;
  if (assert_speedup > 0.0) {
    bool measured = false;
    for (const CaseResult& r : results) {
      if (r.c->name != assert_case) continue;
      for (const Point& p : r.points) {
        if (p.threads != assert_threads) continue;
        measured = true;
        const bool ok = p.speedup >= assert_speedup;
        std::fprintf(stderr, "assert: %s at %d threads: %.2fx (need >= %.2fx) — %s\n",
                     assert_case.c_str(), assert_threads, p.speedup, assert_speedup,
                     ok ? "PASS" : "FAIL");
        failed = failed || !ok;
      }
    }
    if (!measured) {
      std::fprintf(stderr, "assert: case '%s' with %d threads not measured\n",
                   assert_case.c_str(), assert_threads);
      failed = true;
    }
  }
  if (assert_backend_speedup > 0.0) {
    double scalar_ms = 0.0, blocked_ms = 0.0;
    if (!best_ms_at(assert_case, assert_threads, &scalar_ms) ||
        !best_ms_at(assert_case + "@blocked", assert_threads, &blocked_ms)) {
      std::fprintf(stderr,
                   "assert: backend comparison needs '%s' under both backends at "
                   "%d threads (run with --backends=scalar,blocked)\n",
                   assert_case.c_str(), assert_threads);
      failed = true;
    } else {
      const double ratio = blocked_ms > 0.0 ? scalar_ms / blocked_ms : 0.0;
      const bool ok = ratio >= assert_backend_speedup;
      std::fprintf(stderr,
                   "assert: %s blocked vs scalar at %d threads: %.2fx "
                   "(need >= %.2fx) — %s\n",
                   assert_case.c_str(), assert_threads, ratio, assert_backend_speedup,
                   ok ? "PASS" : "FAIL");
      failed = failed || !ok;
    }
  }
  if (assert_simd_speedup > 0.0 || assert_simd_portable_speedup > 0.0) {
    // One command line, every runner: the avx2 gate applies where the
    // intrinsic kernels resolved, the (lower) portable gate elsewhere.
    // A gate of 0 for the resolved tier means "not asserted here".
    const bool avx2 = simd_tier == deploy::SimdTier::kAvx2;
    const double need = avx2 ? assert_simd_speedup : assert_simd_portable_speedup;
    double blocked_ms = 0.0, simd_ms = 0.0;
    if (need <= 0.0) {
      std::fprintf(stderr, "assert: no simd gate configured for tier '%s' — skipped\n",
                   deploy::simd_tier_name(simd_tier));
    } else if (!best_ms_at(assert_case + "@blocked", assert_threads, &blocked_ms) ||
               !best_ms_at(assert_case + "@simd", assert_threads, &simd_ms)) {
      std::fprintf(stderr,
                   "assert: simd comparison needs '%s' under blocked and simd at "
                   "%d threads (run with --backends=scalar,blocked,simd)\n",
                   assert_case.c_str(), assert_threads);
      failed = true;
    } else {
      const double ratio = simd_ms > 0.0 ? blocked_ms / simd_ms : 0.0;
      const bool ok = ratio >= need;
      std::fprintf(stderr,
                   "assert: %s simd (%s tier) vs blocked at %d threads: %.2fx "
                   "(need >= %.2fx) — %s\n",
                   assert_case.c_str(), deploy::simd_tier_name(simd_tier),
                   assert_threads, ratio, need, ok ? "PASS" : "FAIL");
      failed = failed || !ok;
    }
  }
  return failed ? 1 : 0;
}
