// Ablation A7 (DESIGN.md §6, extension): the paper sets every
// activation quantizer to the same A. Does spending the same average
// activation budget *non-uniformly* — per-layer bits proportional to
// the layer's class-based importance — help at low A? Both variants
// share one FP model, one weight-bit search and identical refinement;
// only the activation assignment differs.

#include <cstdio>

#include "core/act_search.h"
#include "core/pipeline.h"
#include "harness.h"
#include "util/csv.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cq;
  const util::Cli cli(argc, argv);
  const bench::BenchScale scale = bench::BenchScale::from_cli(cli);
  const double bits = cli.get_double("bits", 2.0);

  const data::DataSplit split = bench::dataset_c10(scale);
  auto fp_model = bench::make_vgg_small(10);
  const double fp_acc = bench::train_fp_cached(*fp_model, split, "vgg_c10", scale);

  auto scoring_model = fp_model->clone();
  core::ImportanceCollector collector({1e-50, scale.importance_samples});
  const std::vector<core::LayerScores> scores =
      collector.collect(*scoring_model, split.val);

  util::Table table({"activations", "A", "avg w bits", "acc pre", "acc refined"});
  util::CsvWriter csv(cli.get("csv", "ablation_act_allocation.csv"),
                      {"activations", "avg_a", "avg_w_bits", "acc_pre", "acc_post"});

  const auto run = [&](const std::string& label, int avg_a, bool class_based) {
    auto model = fp_model->clone();
    auto teacher = model->clone();
    model->calibrate_activations(split.train.images);
    model->set_activation_bits(avg_a);
    if (class_based) {
      core::ActBitsConfig act_cfg;
      act_cfg.avg_bits = avg_a;
      act_cfg.min_bits = 1;
      act_cfg.max_bits = 2 * avg_a;
      const core::ActBitsResult assignment = allocate_activation_bits(scores, act_cfg);
      apply_activation_bits(*model, assignment);
      std::printf("[%s A=%d] per-layer bits:", label.c_str(), avg_a);
      for (const int b : assignment.bits) std::printf(" %d", b);
      std::printf(" (mean %.2f)\n", assignment.achieved_avg);
    }

    core::SearchConfig cfg;
    cfg.max_bits = 4;
    cfg.desired_avg_bits = bits;
    cfg.t1 = 0.5;
    cfg.decay = 0.8;
    cfg.step_fraction = 0.0625;
    cfg.eval_samples = scale.eval_samples;
    const core::SearchResult result =
        core::ThresholdSearch(cfg).run(*model, scores, split.val);
    const double pre = nn::Trainer::evaluate(*model, split.test.images, split.test.labels);
    core::Refiner refiner(bench::make_refine_config(scale));
    const core::RefineResult refined =
        refiner.run(*model, *teacher, split.train, split.test);

    table.add_row({label, std::to_string(avg_a),
                   util::Table::num(result.achieved_avg_bits, 2),
                   util::Table::num(pre * 100, 2),
                   util::Table::num(refined.accuracy_after * 100, 2)});
    csv.add_row({label, std::to_string(avg_a),
                 util::Table::num(result.achieved_avg_bits, 3),
                 util::Table::num(pre, 4), util::Table::num(refined.accuracy_after, 4)});
  };

  for (const int avg_a : {2, 3, 4}) {
    run("uniform", avg_a, false);
    run("class-based", avg_a, true);
  }

  std::printf("\n=== Ablation A7: activation bit allocation, VGG-small W=%.1f ===\n", bits);
  std::printf("FP accuracy %.2f%%\n%s", fp_acc * 100, table.render().c_str());
  return 0;
}
