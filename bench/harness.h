#pragma once

#include <memory>
#include <string>

#include "core/pipeline.h"
#include "data/synthetic.h"
#include "nn/models/resnet20.h"
#include "nn/models/vgg_small.h"
#include "nn/trainer.h"
#include "util/cli.h"

namespace cq::bench {

/// Workload scale of a figure bench. Defaults regenerate the paper's
/// figures at single-CPU size; `--fast` quarters the work for smoke
/// runs and `--train_per_class/--fp_epochs/...` override individual
/// knobs.
struct BenchScale {
  int train_per_class_c10 = 150;
  int val_per_class_c10 = 40;
  int test_per_class_c10 = 40;
  int train_per_class_c100 = 25;
  int val_per_class_c100 = 10;
  int test_per_class_c100 = 8;
  int fp_epochs = 5;
  int refine_epochs = 2;
  int eval_samples = 100;
  int importance_samples = 20;

  static BenchScale from_cli(const util::Cli& cli);
};

/// Synthetic CIFAR-10/100 stand-ins at bench scale (see DESIGN.md §2).
data::DataSplit dataset_c10(const BenchScale& scale);
data::DataSplit dataset_c100(const BenchScale& scale);

/// Bench-sized models matching the paper's four network configs.
std::unique_ptr<nn::Model> make_vgg_small(int num_classes, std::uint64_t seed = 1);
std::unique_ptr<nn::Model> make_resnet20(int num_classes, int expand,
                                         std::uint64_t seed = 1);

/// Trains `model` to full precision with the paper's optimizer recipe,
/// caching the weights under bench_checkpoints/<name>.cqt so the
/// figure benches share one training run per network/dataset pair.
/// Returns the FP test accuracy.
double train_fp_cached(nn::Model& model, const data::DataSplit& split,
                       const std::string& name, const BenchScale& scale);

/// CQ pipeline config for a W/A setting at bench scale (paper Section
/// IV: bit range {0..4}, T1 = 50%, R = 0.8, alpha = 0.3).
core::CqConfig make_cq_config(double weight_bits, int act_bits, const BenchScale& scale);

/// Refine config shared by the APN/WN baselines (equal conditions).
core::RefineConfig make_refine_config(const BenchScale& scale);

}  // namespace cq::bench
