// Reproduces Figure 4: accuracy of CQ versus APN [12] and the
// full-precision baseline at 2.0/2.0, 3.0/3.0 and 4.0/4.0 (W/A) on the
// paper's four network/dataset pairs: VGG-small on CIFAR-10 and
// CIFAR-100, ResNet-20-x1 on CIFAR-10, ResNet-20-x5 on CIFAR-100.
//
// Paper shape to reproduce: CQ >= APN at every setting; both approach
// the FP accuracy at 4.0/4.0; the gap widens at 2.0/2.0.

#include <cstdio>
#include <functional>

#include "baselines/apn.h"
#include "harness.h"
#include "util/csv.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

struct NetworkCase {
  std::string label;
  std::string checkpoint;
  std::function<std::unique_ptr<cq::nn::Model>()> make;
  const cq::data::DataSplit* split;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace cq;
  const util::Cli cli(argc, argv);
  const bench::BenchScale scale = bench::BenchScale::from_cli(cli);
  const std::string only = cli.get("only", "");

  const data::DataSplit c10 = bench::dataset_c10(scale);
  const data::DataSplit c100 = bench::dataset_c100(scale);

  const std::vector<NetworkCase> cases = {
      {"VGG-small CIFAR10", "vgg_c10", [] { return bench::make_vgg_small(10); }, &c10},
      {"VGG-small CIFAR100", "vgg_c100", [] { return bench::make_vgg_small(100); },
       &c100},
      {"ResNet-20-x1 CIFAR10", "resnet_x1_c10",
       [] { return bench::make_resnet20(10, 1); }, &c10},
      {"ResNet-20-x5 CIFAR100", "resnet_x5_c100",
       [] { return bench::make_resnet20(100, 5); }, &c100},
  };
  const std::vector<double> settings = {2.0, 3.0, 4.0};

  std::printf("=== Figure 4: CQ vs APN vs FP (weight/activation bit settings) ===\n\n");
  util::Table table({"network", "setting", "FP", "CQ", "APN", "CQ-APN", "CQ avg bits"});
  util::CsvWriter csv(cli.get("csv", "fig4_cq_vs_apn.csv"),
                      {"network", "setting", "fp_acc", "cq_acc", "apn_acc",
                       "cq_avg_bits", "apn_avg_bits"});

  for (const auto& net : cases) {
    if (!only.empty() && net.checkpoint.find(only) == std::string::npos) continue;
    // One FP training run shared by all settings and both methods.
    auto fp_model = net.make();
    const double fp_acc =
        bench::train_fp_cached(*fp_model, *net.split, net.checkpoint, scale);

    for (const double bits : settings) {
      util::Timer timer;
      // CQ starts from a fresh copy of the trained FP weights.
      auto cq_model = fp_model->clone();
      core::CqPipeline pipeline(
          bench::make_cq_config(bits, static_cast<int>(bits), scale));
      const core::CqReport cq_report = pipeline.run(*cq_model, *net.split);

      auto apn_model = fp_model->clone();
      baselines::ApnConfig apn_cfg;
      apn_cfg.weight_bits = static_cast<int>(bits);
      apn_cfg.activation_bits = static_cast<int>(bits);
      apn_cfg.refine = bench::make_refine_config(scale);
      const baselines::BaselineReport apn_report =
          baselines::ApnQuantizer(apn_cfg).run(*apn_model, *net.split);

      const std::string setting = util::Table::num(bits, 1) + "/" +
                                  util::Table::num(bits, 1);
      table.add_row({net.label, setting, util::Table::num(fp_acc * 100, 2),
                     util::Table::num(cq_report.quant_accuracy * 100, 2),
                     util::Table::num(apn_report.quant_accuracy * 100, 2),
                     util::Table::num(
                         (cq_report.quant_accuracy - apn_report.quant_accuracy) * 100, 2),
                     util::Table::num(cq_report.achieved_avg_bits, 2)});
      csv.add_row({net.label, setting, util::Table::num(fp_acc, 4),
                   util::Table::num(cq_report.quant_accuracy, 4),
                   util::Table::num(apn_report.quant_accuracy, 4),
                   util::Table::num(cq_report.achieved_avg_bits, 3),
                   util::Table::num(apn_report.achieved_avg_bits, 3)});
      std::printf("[%s %s] done in %.1fs (CQ %.3f vs APN %.3f, FP %.3f)\n",
                  net.label.c_str(), setting.c_str(), timer.seconds(),
                  cq_report.quant_accuracy, apn_report.quant_accuracy, fp_acc);
    }
  }

  std::printf("\n%s", table.render().c_str());
  std::printf("(accuracies in %%; CQ avg bits is the achieved average weight bit-width)\n");
  return 0;
}
