// plan_profile — per-op execution profiles for the three zoo models on
// every kernel backend, via obs::PlanProfiler attached to a serving
// EngineSession. Reports where the interpreter's wall time goes (per
// op kind and per layer) and how much of the end-to-end run the
// profiler attributes to ops — the coverage figure the perf-smoke CI
// lane gates on, so a hole in the interpreter's tracing (an op that
// stops being timed) fails the build rather than silently skewing
// every profile after it.
//
// Usage: plan_profile [--fast] [--repeat=N] [--batch=N]
//                     [--json=path] [--assert_coverage=F]
//   --repeat           profiled runs per model x backend (default 16,
//                      --fast drops it to 4)
//   --batch            samples per run (default 8)
//   --json             machine-readable per-op profiles for the CI artifact
//   --assert_coverage  fail (exit 1) when attributed_ms / wall_ms falls
//                      below F for any model x backend (e.g. 0.9)

#include <cstdio>
#include <string>
#include <vector>

#include "deploy/artifact.h"
#include "deploy/backend.h"
#include "nn/models/mlp.h"
#include "nn/models/resnet20.h"
#include "nn/models/vgg_small.h"
#include "obs/profiler.h"
#include "serve/engine_session.h"
#include "serve_fixtures.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace cq;

struct Result {
  std::string model;
  std::string backend;
  double wall_ms = 0.0;        ///< end-to-end run() wall time, summed
  double attributed_ms = 0.0;  ///< profiler total across all ops
  double coverage = 0.0;       ///< attributed_ms / wall_ms
  obs::ProfileReport report;
};

Result profile(const std::string& model, const deploy::QuantizedArtifact& artifact,
               deploy::BackendKind kind, int repeat, int batch) {
  Result r;
  r.model = model;
  r.backend = deploy::backend_kind_name(kind);
  serve::EngineSession session(artifact, 1, {}, deploy::make_backend(kind));
  const tensor::Tensor input = serve::random_batch(session.sample_shape(), batch, 29);
  session.run(input);  // warm: arena growth + caches stay out of the window

  obs::PlanProfiler profiler(session.plan(), &session.backend());
  session.set_trace_sink(&profiler);
  util::Timer timer;
  for (int i = 0; i < repeat; ++i) session.run(input);
  r.wall_ms = timer.millis();
  session.set_trace_sink(nullptr);

  r.report = profiler.report();
  r.attributed_ms = r.report.total_ms;
  r.coverage = r.wall_ms > 0.0 ? r.attributed_ms / r.wall_ms : 0.0;
  return r;
}

/// Kind aggregate with the largest time share ("where does it go").
const obs::ProfileAggregate* top_kind(const obs::ProfileReport& report) {
  const obs::ProfileAggregate* top = nullptr;
  for (const obs::ProfileAggregate& agg : report.by_kind) {
    if (top == nullptr || agg.total_ms > top->total_ms) top = &agg;
  }
  return top;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool fast = cli.get_bool("fast", false);
  const int repeat = static_cast<int>(cli.get_int("repeat", fast ? 4 : 16));
  const int batch = static_cast<int>(cli.get_int("batch", 8));
  const double min_coverage = cli.get_double("assert_coverage", 0.0);
  if (repeat < 1 || batch < 1) {
    std::fprintf(stderr, "plan_profile: repeat/batch must be >= 1\n");
    return 2;
  }

  // Default-size zoo models (same fabrication as bench/plan_compile):
  // ops run tens of microseconds and up, so the two steady_clock reads
  // the tracing loop adds per op are noise next to the work they time.
  struct Zoo {
    std::string name;
    deploy::QuantizedArtifact artifact;
  };
  std::vector<Zoo> zoo;
  {
    const nn::MlpConfig cfg;
    nn::Mlp mlp(cfg);
    zoo.push_back({"Mlp", serve::fabricate_artifact(mlp, {cfg.in_features}, 3, 3)});
  }
  {
    const nn::VggSmallConfig cfg;
    nn::VggSmall vgg(cfg);
    zoo.push_back({"VggSmall",
                   serve::fabricate_artifact(
                       vgg, {cfg.in_channels, cfg.image_size, cfg.image_size}, 3, 5)});
  }
  {
    const nn::ResNet20Config cfg;
    nn::ResNet20 resnet(cfg);
    zoo.push_back(
        {"ResNet20",
         serve::fabricate_artifact(
             resnet, {cfg.in_channels, cfg.image_size, cfg.image_size}, 3, 7)});
  }

  std::vector<Result> results;
  for (const Zoo& entry : zoo) {
    for (const deploy::BackendKind kind : deploy::all_backend_kinds()) {
      results.push_back(profile(entry.name, entry.artifact, kind, repeat, batch));
    }
  }

  util::Table table({"model", "backend", "wall ms", "attributed ms", "coverage",
                     "top kind", "kind share"});
  bool covered = true;
  for (const Result& r : results) {
    const obs::ProfileAggregate* top = top_kind(r.report);
    table.add_row({r.model, r.backend, util::Table::num(r.wall_ms, 2),
                   util::Table::num(r.attributed_ms, 2),
                   util::Table::num(100.0 * r.coverage, 1) + "%",
                   top != nullptr ? top->key : "-",
                   top != nullptr ? util::Table::num(100.0 * top->share, 1) + "%"
                                  : "-"});
    covered = covered && (min_coverage <= 0.0 || r.coverage >= min_coverage);
  }
  std::printf("per-op plan profiles, batch %d, %d runs per cell\n%s\n", batch, repeat,
              table.render().c_str());

  const std::string json_path = cli.get("json", "");
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "plan_profile: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"batch\": %d,\n  \"runs\": %d,\n  \"profiles\": [\n", batch,
                 repeat);
    for (std::size_t i = 0; i < results.size(); ++i) {
      const Result& r = results[i];
      std::fprintf(f,
                   "    {\"model\": \"%s\", \"backend\": \"%s\", \"wall_ms\": %.4f, "
                   "\"attributed_ms\": %.4f, \"coverage\": %.4f, \"profile\": %s}%s\n",
                   r.model.c_str(), r.backend.c_str(), r.wall_ms, r.attributed_ms,
                   r.coverage, r.report.to_json().c_str(),
                   i + 1 == results.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!covered) {
    std::fprintf(stderr,
                 "plan_profile: profiler coverage fell below %.2f for at least one "
                 "model x backend (see table) — the interpreter is executing ops "
                 "outside the traced loop\n",
                 min_coverage);
    return 1;
  }
  return 0;
}
