#include <gtest/gtest.h>

#include "../bench/harness.h"

namespace cq::bench {
namespace {

TEST(BenchScale, DefaultsAreFullScale) {
  const char* argv[] = {"prog"};
  const util::Cli cli(1, const_cast<char**>(argv));
  const BenchScale s = BenchScale::from_cli(cli);
  EXPECT_EQ(s.train_per_class_c10, 150);
  EXPECT_EQ(s.fp_epochs, 5);
  EXPECT_EQ(s.refine_epochs, 2);
}

TEST(BenchScale, FastShrinksEverything) {
  const char* argv[] = {"prog", "--fast"};
  const util::Cli cli(2, const_cast<char**>(argv));
  const BenchScale s = BenchScale::from_cli(cli);
  EXPECT_LT(s.train_per_class_c10, 150);
  EXPECT_LT(s.fp_epochs, 5);
  EXPECT_LT(s.importance_samples, 20);
}

TEST(BenchScale, ExplicitOverridesBeatFast) {
  const char* argv[] = {"prog", "--fast", "--fp_epochs=9"};
  const util::Cli cli(3, const_cast<char**>(argv));
  const BenchScale s = BenchScale::from_cli(cli);
  EXPECT_EQ(s.fp_epochs, 9);
}

TEST(BenchDatasets, ClassCountsMatchPaper) {
  const char* argv[] = {"prog", "--fast"};
  const util::Cli cli(2, const_cast<char**>(argv));
  const BenchScale s = BenchScale::from_cli(cli);
  const data::DataSplit c10 = dataset_c10(s);
  EXPECT_EQ(c10.train.num_classes(), 10);
  const data::DataSplit c100 = dataset_c100(s);
  EXPECT_EQ(c100.train.num_classes(), 100);
}

TEST(BenchModels, MatchPaperConfigs) {
  auto vgg = make_vgg_small(10);
  EXPECT_EQ(vgg->scored_layers().size(), 7u);
  auto x1 = make_resnet20(10, 1);
  auto x5 = make_resnet20(100, 5);
  // x5 filters are exactly 5x the x1 widths, as in the paper.
  EXPECT_EQ(x5->scored_layers().front().layers.front()->num_filters(),
            5 * x1->scored_layers().front().layers.front()->num_filters());
}

TEST(BenchConfigs, CqConfigCarriesPaperParameters) {
  const char* argv[] = {"prog"};
  const util::Cli cli(1, const_cast<char**>(argv));
  const BenchScale s = BenchScale::from_cli(cli);
  const core::CqConfig cfg = make_cq_config(2.0, 2, s);
  EXPECT_DOUBLE_EQ(cfg.search.desired_avg_bits, 2.0);
  EXPECT_DOUBLE_EQ(cfg.search.t1, 0.5);    // paper Section III-C
  EXPECT_DOUBLE_EQ(cfg.search.decay, 0.8); // paper Section III-C
  EXPECT_EQ(cfg.search.max_bits, 4);       // paper bit range {0..4}
  EXPECT_DOUBLE_EQ(cfg.refine.alpha, 0.3); // paper Section IV
  EXPECT_EQ(cfg.activation_bits, 2);
}

}  // namespace
}  // namespace cq::bench
