// serve::ModelRegistry tests: multi-model hosting, memory-budget
// enforcement at load/swap with rollback, admission control (depth
// gate + queue-full shed, both explicit), versioned hot-swap that
// stays byte-identical under concurrent traffic, and the per-model
// observability counters that survive swaps.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "serve/engine_session.h"
#include "serve/model_registry.h"
#include "serve_fixtures.h"
#include "util/rng.h"

namespace cq {
namespace {

tensor::Tensor sample_of(const tensor::Shape& shape, std::uint64_t seed) {
  util::Rng rng(seed);
  return tensor::Tensor::rand_uniform(shape, rng, -0.2f, 1.2f);
}

tensor::Tensor reference_logits(serve::EngineSession& session,
                                const tensor::Tensor& sample) {
  tensor::Shape batch_shape;
  batch_shape.push_back(1);
  batch_shape.insert(batch_shape.end(), sample.shape().begin(), sample.shape().end());
  tensor::Tensor batch(batch_shape);
  std::memcpy(batch.data(), sample.data(), sample.numel() * sizeof(float));
  return session.run(batch);
}

TEST(ModelRegistry, HostsMultipleModels) {
  serve::ModelRegistry registry;
  registry.load("vgg", serve::tiny_vgg_artifact());
  registry.load("mlp", serve::tiny_mlp_artifact());
  registry.load("resnet", serve::tiny_resnet_artifact());

  EXPECT_EQ(registry.names().size(), 3u);
  EXPECT_TRUE(registry.has("mlp"));
  EXPECT_FALSE(registry.has("nope"));

  const serve::ModelInfo info = registry.info("mlp");
  EXPECT_EQ(info.version, 1);
  EXPECT_EQ(info.sample_shape, tensor::Shape({12}));
  EXPECT_EQ(info.num_classes, 5);
  EXPECT_GT(info.resident_bytes, 0u);
  EXPECT_GT(info.ops, 0u);

  // Each model routes to its own server.
  auto admission = registry.submit("vgg", sample_of({3, 8, 8}, 1));
  ASSERT_EQ(admission.outcome, serve::ModelRegistry::Outcome::kAdmitted);
  EXPECT_EQ(admission.result.get().shape(), tensor::Shape({4}));
  admission = registry.submit("mlp", sample_of({12}, 2));
  ASSERT_EQ(admission.outcome, serve::ModelRegistry::Outcome::kAdmitted);
  EXPECT_EQ(admission.result.get().shape(), tensor::Shape({5}));
}

TEST(ModelRegistry, RejectsDuplicateAndUnknownNames) {
  serve::ModelRegistry registry;
  registry.load("m", serve::tiny_mlp_artifact());
  EXPECT_THROW(registry.load("m", serve::tiny_mlp_artifact()), serve::RegistryError);
  EXPECT_THROW(registry.info("ghost"), serve::RegistryError);
  EXPECT_THROW(registry.swap("ghost", serve::tiny_mlp_artifact()),
               serve::RegistryError);
  EXPECT_THROW(registry.unload("ghost"), serve::RegistryError);

  const auto admission = registry.submit("ghost", sample_of({12}, 1));
  EXPECT_EQ(admission.outcome, serve::ModelRegistry::Outcome::kUnknown);
  EXPECT_FALSE(admission.reason.empty());
}

TEST(ModelRegistry, MemoryBudgetRefusesLoadAndRollsBack) {
  serve::ModelRegistry registry;
  serve::ModelConfig config;
  config.memory_budget_bytes = 1;  // nothing fits in one byte
  EXPECT_THROW(registry.load("m", serve::tiny_mlp_artifact(), config),
               serve::RegistryError);
  // The refused load must not leave a half-registered name behind.
  EXPECT_FALSE(registry.has("m"));
  registry.load("m", serve::tiny_mlp_artifact());  // name is free again
  EXPECT_EQ(registry.info("m").version, 1);
}

TEST(ModelRegistry, BudgetAdmitsWhenLargeEnough) {
  serve::ModelRegistry registry;
  serve::ModelConfig config;
  config.memory_budget_bytes = 64u << 20;
  registry.load("m", serve::tiny_mlp_artifact(), config);
  const serve::ModelInfo info = registry.info("m");
  EXPECT_LE(info.resident_bytes, info.memory_budget_bytes);
}

// Budget for exactly the tiny MLP: load it unconstrained once to read
// its footprint, then use (footprint + slack) as the cap.
std::size_t mlp_budget() {
  serve::ModelRegistry probe;
  probe.load("m", serve::tiny_mlp_artifact());
  return probe.info("m").resident_bytes + 1024;
}

TEST(ModelRegistry, SwapFailureKeepsOldVersionAndSwapSucceedsLater) {
  serve::ModelRegistry registry;
  serve::ModelConfig config;
  config.memory_budget_bytes = mlp_budget();
  registry.load("m", serve::tiny_mlp_artifact(), config);

  // A malformed replacement (default-constructed artifact) must throw
  // without touching the serving version.
  EXPECT_ANY_THROW(registry.swap("m", deploy::QuantizedArtifact{}));
  // An over-budget replacement likewise: the VGG blows the MLP budget.
  EXPECT_THROW(registry.swap("m", serve::tiny_vgg_artifact()), serve::RegistryError);

  EXPECT_EQ(registry.info("m").version, 1);
  auto admission = registry.submit("m", sample_of({12}, 3));
  ASSERT_EQ(admission.outcome, serve::ModelRegistry::Outcome::kAdmitted);
  EXPECT_EQ(admission.result.get().shape(), tensor::Shape({5}));

  // A well-formed in-budget swap then succeeds and bumps the version.
  EXPECT_EQ(registry.swap("m", serve::tiny_mlp_artifact()), 2);
  EXPECT_EQ(registry.info("m").version, 2);
}

TEST(ModelRegistry, UnloadDrainsAndForgets) {
  serve::ModelRegistry registry;
  registry.load("m", serve::tiny_mlp_artifact());
  auto admission = registry.submit("m", sample_of({12}, 4));
  ASSERT_EQ(admission.outcome, serve::ModelRegistry::Outcome::kAdmitted);
  registry.unload("m");
  // The in-flight future completed during the drain.
  EXPECT_EQ(admission.result.get().shape(), tensor::Shape({5}));
  EXPECT_FALSE(registry.has("m"));
  EXPECT_EQ(registry.submit("m", sample_of({12}, 5)).outcome,
            serve::ModelRegistry::Outcome::kUnknown);
}

// The queue-full shed path: one worker held busy by a long batch
// window, a 2-deep queue, and more submits than fit must produce
// explicit kShed outcomes plus matching counters — never a block,
// never a silent drop.
TEST(ModelRegistry, ShedsWhenQueueIsFull) {
  serve::ModelRegistry registry;
  serve::ModelConfig config;
  config.server.workers = 1;
  config.server.max_batch = 64;
  config.server.max_wait_us = 100000;  // hold requests in the queue
  config.server.queue_capacity = 2;
  registry.load("m", serve::tiny_mlp_artifact(), config);

  std::vector<serve::ModelRegistry::Admission> admitted;
  std::size_t shed = 0;
  for (int i = 0; i < 12; ++i) {
    auto admission = registry.submit("m", sample_of({12}, 10 + i));
    if (admission.outcome == serve::ModelRegistry::Outcome::kAdmitted) {
      admitted.push_back(std::move(admission));
    } else {
      ASSERT_EQ(admission.outcome, serve::ModelRegistry::Outcome::kShed);
      EXPECT_FALSE(admission.reason.empty());
      ++shed;
    }
  }
  EXPECT_GT(shed, 0u);
  EXPECT_GT(admitted.size(), 0u);
  for (auto& a : admitted) {
    EXPECT_EQ(a.result.get().shape(), tensor::Shape({5}));
  }
  const serve::ModelInfo info = registry.info("m");
  EXPECT_EQ(info.requests_admitted, admitted.size());
  EXPECT_EQ(info.requests_shed, shed);
}

// A tighter admit_queue_depth must shed before the bounded queue is
// full (depth gate, not queue-full).
TEST(ModelRegistry, AdmitDepthGatesBeforeQueueCapacity) {
  serve::ModelRegistry registry;
  serve::ModelConfig config;
  config.server.workers = 1;
  config.server.max_batch = 64;
  config.server.max_wait_us = 100000;
  config.server.queue_capacity = 64;  // plenty of queue...
  config.admit_queue_depth = 2;       // ...but a tight admission gate
  registry.load("m", serve::tiny_mlp_artifact(), config);

  std::size_t shed = 0;
  std::vector<serve::ModelRegistry::Admission> admitted;
  for (int i = 0; i < 12; ++i) {
    auto admission = registry.submit("m", sample_of({12}, 20 + i));
    if (admission.outcome == serve::ModelRegistry::Outcome::kShed) {
      EXPECT_NE(admission.reason.find("over capacity"), std::string::npos)
          << admission.reason;
      ++shed;
    } else {
      ASSERT_EQ(admission.outcome, serve::ModelRegistry::Outcome::kAdmitted);
      admitted.push_back(std::move(admission));
    }
  }
  EXPECT_GT(shed, 0u);
  // Far fewer than queue_capacity requests were admitted: the depth
  // gate fired long before the queue filled.
  EXPECT_LE(admitted.size(), 12u);
  for (auto& a : admitted) a.result.get();
}

// The acceptance-critical property: hot-swapping under concurrent
// traffic never produces a wrong answer. Every admitted request —
// whether it rode the old version, the new one, or raced the cutover —
// must return logits byte-identical to a reference EngineSession over
// the same artifact.
TEST(ModelRegistry, HotSwapUnderTrafficStaysByteIdentical) {
  const deploy::QuantizedArtifact artifact = serve::tiny_mlp_artifact();
  serve::ModelRegistry registry;
  serve::ModelConfig config;
  config.server.workers = 2;
  registry.load("m", artifact, config);

  // Precompute reference logits for the sample pool.
  serve::EngineSession reference(artifact);
  constexpr int kPool = 16;
  std::vector<tensor::Tensor> samples;
  std::vector<tensor::Tensor> expected;
  for (int i = 0; i < kPool; ++i) {
    samples.push_back(sample_of({12}, 100 + i));
    expected.push_back(reference_logits(reference, samples.back()));
  }

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> verified{0};
  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&, t] {
      util::Rng rng(500 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const auto idx =
            static_cast<std::size_t>(rng.uniform_int(0, kPool - 1));
        auto admission = registry.submit("m", samples[idx]);
        if (admission.outcome != serve::ModelRegistry::Outcome::kAdmitted) {
          continue;  // transient shed mid-drain is legal; wrongness is not
        }
        const tensor::Tensor logits = admission.result.get();
        if (logits.shape() != tensor::Shape({5}) ||
            std::memcmp(logits.data(), expected[idx].data(), 5 * sizeof(float)) != 0) {
          mismatches.fetch_add(1);
        }
        verified.fetch_add(1);
      }
    });
  }

  // Five hot-swaps to the identical artifact while traffic flows.
  for (int s = 0; s < 5; ++s) {
    EXPECT_EQ(registry.swap("m", artifact), s + 2);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true);
  for (std::thread& t : submitters) t.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_GT(verified.load(), 0u);
  const serve::ModelInfo info = registry.info("m");
  EXPECT_EQ(info.version, 6);
  EXPECT_GE(info.requests_admitted, verified.load());
}

TEST(ModelRegistry, PerModelMetricsSurviveSwaps) {
  serve::ModelRegistry registry;
  registry.load("m", serve::tiny_mlp_artifact());
  auto a = registry.submit("m", sample_of({12}, 7));
  ASSERT_EQ(a.outcome, serve::ModelRegistry::Outcome::kAdmitted);
  a.result.get();

  registry.swap("m", serve::tiny_mlp_artifact());

  // The registry-level counter kept the pre-swap admission...
  EXPECT_GE(registry.info("m").requests_admitted, 1u);
  const std::string json = registry.metrics("m").to_json();
  EXPECT_NE(json.find("requests_admitted"), std::string::npos);
  EXPECT_NE(json.find("hot_swaps"), std::string::npos);
  // ...while the per-version server stats window restarted.
  EXPECT_EQ(registry.stats("m").completed, 0u);
  const std::string server_json = registry.server_metrics_json("m");
  EXPECT_FALSE(server_json.empty());
}

}  // namespace
}  // namespace cq
