// Tests for the deploy::optimize_plan pass pipeline: op-count budgets,
// pass-log structure, byte-equivalence of optimized vs. as-compiled
// plans across the zoo x batch x threads x backends, and the edge
// cases the passes must decline (int->float boundaries, inexact grid
// composition, single-layer plans).

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "deploy/backend.h"
#include "deploy/passes/passes.h"
#include "deploy/plan.h"
#include "deploy/verify.h"
#include "nn/models/mlp.h"
#include "serve/engine_session.h"
#include "serve_fixtures.h"
#include "util/exec_context.h"
#include "util/thread_pool.h"

namespace cq::deploy {
namespace {

struct ZooEntry {
  std::string name;
  QuantizedArtifact artifact;
  tensor::Shape sample;
};

std::vector<ZooEntry> zoo() {
  std::vector<ZooEntry> entries;
  entries.push_back({"vgg", serve::tiny_vgg_artifact(), {3, 8, 8}});
  entries.push_back({"mlp", serve::tiny_mlp_artifact(), {12}});
  entries.push_back({"resnet", serve::tiny_resnet_artifact(), {3, 8, 8}});
  return entries;
}

testing::AssertionResult verifies_clean(const ExecutionPlan& plan) {
  const VerifyReport report = verify_plan(plan);
  if (report.clean()) return testing::AssertionSuccess();
  return testing::AssertionFailure() << format_diagnostics(report);
}

// ISSUE acceptance: the pipeline deletes >= 25% of ResNet20's ops
// (every BN, most Relus, and the inter-layer encode round-trips fold
// away). The tiny fixture has the same op mix as the default size.
TEST(PlanOptimize, ResNetOpReductionMeetsBudget) {
  ExecutionPlan plan = compile_plan(serve::tiny_resnet_artifact());
  const std::size_t before = plan.ops().size();
  const OptimizeReport report = optimize_plan(plan);
  const std::size_t after = plan.ops().size();
  EXPECT_EQ(report.ops_removed(), before - after);
  EXPECT_LE(after * 4, before * 3) << "expected >= 25% op deletion, got " << before
                                   << " -> " << after;
  EXPECT_TRUE(verifies_clean(plan));
}

// The pass log is structured: one entry per enabled pass, in pipeline
// order, with before/after totals that chain, and a summary() that
// round-trips every pass name and its unit-of-work count.
TEST(PlanOptimize, PassLogStructureAndSummaryRoundTrip) {
  for (const ZooEntry& entry : zoo()) {
    ExecutionPlan plan = compile_plan(entry.artifact);
    const std::size_t compiled_ops = plan.ops().size();
    const OptimizeReport report = optimize_plan(plan);
    ASSERT_EQ(report.passes.size(), 3u) << entry.name;
    EXPECT_EQ(report.passes[0].name, "fuse-epilogue");
    EXPECT_EQ(report.passes[1].name, "propagate-codes");
    EXPECT_EQ(report.passes[2].name, "replan-arena");
    EXPECT_EQ(report.passes.front().ops_before, compiled_ops) << entry.name;
    EXPECT_EQ(report.passes.back().ops_after, plan.ops().size()) << entry.name;
    for (std::size_t i = 1; i < report.passes.size(); ++i) {
      EXPECT_EQ(report.passes[i].ops_before, report.passes[i - 1].ops_after)
          << entry.name << " pass " << i;
    }
    const std::string summary = report.summary();
    for (const PassResult& pass : report.passes) {
      EXPECT_NE(summary.find(pass.name), std::string::npos) << summary;
      EXPECT_NE(summary.find(std::to_string(pass.changes) + " changes"),
                std::string::npos)
          << summary;
    }
    EXPECT_TRUE(verifies_clean(plan)) << entry.name;
  }
}

// The exactness contract end-to-end: an optimized session is
// byte-identical to the as-compiled session on every zoo model, at
// several batch sizes and intra-op thread counts, on both backends.
TEST(PlanOptimize, ByteIdenticalAcrossZooBatchThreadsBackends) {
  for (const ZooEntry& entry : zoo()) {
    for (const BackendKind kind : all_backend_kinds()) {
      for (const int threads : {1, 2, 8}) {
        std::unique_ptr<util::ThreadPool> pool;
        if (threads > 1) pool = std::make_unique<util::ThreadPool>(threads - 1);
        const util::ExecContext exec{pool.get(), threads};
        serve::EngineSession o0(entry.artifact, 1, exec, make_backend(kind),
                                serve::PlanCheck::kNone, serve::PlanOpt::kO0);
        serve::EngineSession o1(entry.artifact, 1, exec, make_backend(kind),
                                serve::PlanCheck::kNone, serve::PlanOpt::kO1);
        for (const int batch : {1, 3, 8}) {
          const tensor::Tensor input = serve::random_batch(entry.sample, batch, 29);
          const tensor::Tensor ref = o0.run(input);
          const tensor::Tensor opt = o1.run(input);
          ASSERT_EQ(ref.numel(), opt.numel());
          EXPECT_EQ(std::memcmp(ref.data(), opt.data(), ref.numel() * sizeof(float)),
                    0)
              << entry.name << " backend=" << backend_kind_name(kind)
              << " threads=" << threads << " batch=" << batch;
        }
      }
    }
  }
}

// A residual Add whose shortcut operand crosses the fused region must
// still fuse: ResNet's block pattern produces compute ops carrying
// ep_add with a live in1 slot.
TEST(PlanOptimize, ResidualAddCrossesFusedRegion) {
  ExecutionPlan plan = compile_plan(serve::tiny_resnet_artifact());
  optimize_plan(plan);
  bool fused_residual = false;
  for (const PlanOp& op : plan.ops()) {
    if (op.ep_add) {
      EXPECT_TRUE(is_compute_op(op.kind));
      EXPECT_GE(op.in1, 0);
      fused_residual = true;
    }
  }
  EXPECT_TRUE(fused_residual) << "no residual Add was fused on ResNet";
  EXPECT_EQ(std::count_if(plan.ops().begin(), plan.ops().end(),
                          [](const PlanOp& op) { return op.kind == OpKind::Add; }),
            0)
      << "standalone residual Adds survived fusion";
}

// Codes never propagate across the int->float boundary: in_codes may
// only appear on integer ops, and the float head keeps consuming plain
// activations (VggSmall/Mlp end in FloatLinear heads).
TEST(PlanOptimize, NoCodePropagationIntoFloatOps) {
  for (const ZooEntry& entry : zoo()) {
    ExecutionPlan plan = compile_plan(entry.artifact);
    optimize_plan(plan);
    for (std::size_t i = 0; i < plan.ops().size(); ++i) {
      const PlanOp& op = plan.ops()[i];
      if (op.in_codes) {
        EXPECT_TRUE(op.kind == OpKind::IntConv || op.kind == OpKind::IntLinear)
            << entry.name << " op " << i << " (" << op_kind_name(op.kind)
            << ") adopted codes";
      }
      // Float ops may *produce* codes for an integer consumer
      // (ep_encode on the stem), but never consume them: a float
      // kernel reading raw code values would be arithmetic nonsense.
      if (op.kind == OpKind::FloatConv || op.kind == OpKind::FloatLinear) {
        EXPECT_FALSE(op.in_codes) << entry.name << " op " << i;
      }
    }
    // The int->float boundary specifically: the FloatLinear head still
    // consumes plain activations, so the decode stays explicit there.
    const PlanOp& head = plan.ops().back();
    EXPECT_EQ(head.kind, OpKind::FloatLinear) << entry.name;
    EXPECT_FALSE(head.in_codes) << entry.name;
    for (const PlanOp& op : plan.ops()) {
      if (op.out == head.in0 && is_compute_op(op.kind)) {
        EXPECT_FALSE(op.ep_encode)
            << entry.name << ": producer feeding the float head emits codes";
      }
    }
  }
}

// Inexact grid composition falls back to the explicit EncodeAct: when
// an encoder's grid no longer matches its consumer's, the round-trip
// is NOT redundant, so the pass must keep the op (and must not mark
// the upstream producer ep_encode). The mutated plan still optimizes
// to a byte-identical program.
TEST(PlanOptimize, InexactCompositionKeepsEncodeAct) {
  ExecutionPlan plan = compile_plan(serve::tiny_mlp_artifact());
  int encode = -1;
  for (std::size_t i = 0; i < plan.ops().size(); ++i) {
    if (plan.ops()[i].kind == OpKind::EncodeAct) encode = static_cast<int>(i);
  }
  ASSERT_GE(encode, 0);
  const float sentinel_hi = plan.ops()[static_cast<std::size_t>(encode)].act_hi * 1.5f;
  {
    PlanRewriter rw(plan);
    rw.ops()[static_cast<std::size_t>(encode)].act_hi = sentinel_hi;
  }
  ASSERT_TRUE(verifies_clean(plan));

  ExecutionPlan optimized = plan;
  const OptimizeReport report = optimize_plan(optimized);
  (void)report;
  EXPECT_TRUE(verifies_clean(optimized));

  // The mismatched encoder survives, and nothing upstream claims to
  // emit codes on its behalf.
  bool kept = false;
  for (const PlanOp& op : optimized.ops()) {
    if (op.kind == OpKind::EncodeAct && op.act_hi == sentinel_hi) kept = true;
  }
  EXPECT_TRUE(kept) << "grid-mismatched EncodeAct was deleted";

  // Byte-equivalence holds on the mutated semantics too.
  serve::EngineSession o0(plan, 1, {}, nullptr, serve::PlanCheck::kStrict);
  serve::EngineSession o1(std::move(optimized), 1, {}, nullptr,
                          serve::PlanCheck::kStrict);
  const tensor::Tensor input = serve::random_batch({12}, 5, 31);
  const tensor::Tensor ref = o0.run(input);
  const tensor::Tensor opt = o1.run(input);
  ASSERT_EQ(ref.numel(), opt.numel());
  EXPECT_EQ(std::memcmp(ref.data(), opt.data(), ref.numel() * sizeof(float)), 0);
}

// Degenerate single-layer plan (head-only MLP): nothing to fuse or
// propagate, and the pipeline must hand the plan back unchanged and
// clean instead of tripping on empty producer/consumer sets.
TEST(PlanOptimize, SingleLayerPlanPassesThrough) {
  nn::MlpConfig cfg;
  cfg.in_features = 6;
  cfg.hidden = {};
  cfg.num_classes = 3;
  nn::Mlp model(cfg);
  ExecutionPlan plan =
      compile_plan(serve::fabricate_artifact(model, {cfg.in_features}, 3, 19));
  const std::size_t before = plan.ops().size();
  const OptimizeReport report = optimize_plan(plan);
  EXPECT_EQ(plan.ops().size(), before);
  EXPECT_EQ(report.ops_removed(), 0u);
  EXPECT_TRUE(verifies_clean(plan));

  serve::EngineSession session(plan, 1, {}, nullptr, serve::PlanCheck::kStrict);
  const tensor::Tensor out = session.run(serve::random_batch({6}, 2, 37));
  EXPECT_EQ(out.shape(), (tensor::Shape{2, 3}));
}

// The pipeline is idempotent: a second run finds nothing left to do.
TEST(PlanOptimize, SecondRunIsNoOp) {
  ExecutionPlan plan = compile_plan(serve::tiny_resnet_artifact());
  optimize_plan(plan);
  const std::size_t ops = plan.ops().size();
  const std::size_t arena = plan.arena_floats();
  const OptimizeReport again = optimize_plan(plan);
  EXPECT_EQ(again.ops_removed(), 0u);
  for (const PassResult& pass : again.passes) {
    EXPECT_EQ(pass.changes, 0u) << pass.name;
  }
  EXPECT_EQ(plan.ops().size(), ops);
  EXPECT_EQ(plan.arena_floats(), arena);
  EXPECT_TRUE(verifies_clean(plan));
}

// OptimizeOptions gates every pass: all-off runs nothing and touches
// nothing.
TEST(PlanOptimize, AllOptionsOffLeavesPlanUntouched) {
  ExecutionPlan plan = compile_plan(serve::tiny_vgg_artifact());
  const std::size_t ops = plan.ops().size();
  const std::size_t arena = plan.arena_floats();
  OptimizeOptions off;
  off.fuse_epilogue = false;
  off.propagate_codes = false;
  off.replan_arena = false;
  const OptimizeReport report = optimize_plan(plan, off);
  EXPECT_TRUE(report.passes.empty());
  EXPECT_EQ(report.ops_removed(), 0u);
  EXPECT_EQ(plan.ops().size(), ops);
  EXPECT_EQ(plan.arena_floats(), arena);
  for (const PlanOp& op : plan.ops()) {
    EXPECT_FALSE(op.ep_bn || op.ep_add || op.ep_relu || op.ep_encode || op.in_codes);
  }
}

}  // namespace
}  // namespace cq::deploy
