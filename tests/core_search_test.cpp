#include <gtest/gtest.h>
#include <cmath>

#include "core/search.h"
#include "data/synthetic.h"
#include "nn/models/mlp.h"
#include "nn/trainer.h"

namespace cq::core {
namespace {

TEST(BitsForScore, CountingRule) {
  const std::vector<double> p = {1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(ThresholdSearch::bits_for_score(0.5f, p), 0);   // below p1 -> pruned
  EXPECT_EQ(ThresholdSearch::bits_for_score(1.5f, p), 1);
  EXPECT_EQ(ThresholdSearch::bits_for_score(2.0f, p), 2);   // inclusive at p_k
  EXPECT_EQ(ThresholdSearch::bits_for_score(3.9f, p), 3);
  EXPECT_EQ(ThresholdSearch::bits_for_score(9.0f, p), 4);   // above pN -> N
}

TEST(BitsForScore, AllZeroThresholdsGiveMaxBits) {
  const std::vector<double> p = {0.0, 0.0, 0.0};
  EXPECT_EQ(ThresholdSearch::bits_for_score(0.0f, p), 3);
}

/// Builds an MLP with two scored layers and hand-made scores.
struct SearchFixture {
  SearchFixture() : model({4, {10, 8, 6}, 3, 1}) {
    auto scored = model.scored_layers();
    // Layer fc1: 8 neurons, scores 0..7; layer fc2: 6 neurons, 0..5.
    LayerScores s1;
    s1.name = scored[0].name;
    s1.is_conv = false;
    s1.channels = 8;
    for (int i = 0; i < 8; ++i) s1.filter_phi.push_back(static_cast<float>(i));
    s1.neuron_gamma = s1.filter_phi;
    LayerScores s2;
    s2.name = scored[1].name;
    s2.is_conv = false;
    s2.channels = 6;
    for (int i = 0; i < 6; ++i) s2.filter_phi.push_back(static_cast<float>(i));
    s2.neuron_gamma = s2.filter_phi;
    scores = {s1, s2};
  }

  nn::Mlp model;
  std::vector<LayerScores> scores;
};

data::Dataset random_val(int n, util::Rng& rng) {
  data::Dataset d;
  d.images = nn::Tensor::randn({n, 4}, rng);
  d.labels.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) d.labels[static_cast<std::size_t>(i)] = i % 3;
  return d;
}

TEST(ApplyThresholds, SetsBitsByCountingRule) {
  SearchFixture fx;
  const std::vector<double> p = {1.0, 3.0, 5.0, 7.0};
  const quant::BitArrangement arr =
      ThresholdSearch::apply_thresholds(fx.model, fx.scores, p);
  ASSERT_EQ(arr.layers().size(), 2u);
  // fc1 scores 0..7 -> bits 0,1,1,2,2,3,3,4.
  EXPECT_EQ(arr.layers()[0].filter_bits, (std::vector<int>{0, 1, 1, 2, 2, 3, 3, 4}));
  // fc2 scores 0..5 -> bits 0,1,1,2,2,3.
  EXPECT_EQ(arr.layers()[1].filter_bits, (std::vector<int>{0, 1, 1, 2, 2, 3}));
  // The model's layers received exactly these bits.
  EXPECT_EQ(fx.model.scored_layers()[0].layers.front()->filter_bits(),
            arr.layers()[0].filter_bits);
}

TEST(Search, ReachesRequestedBudget) {
  SearchFixture fx;
  util::Rng rng(2);
  const data::Dataset val = random_val(30, rng);
  SearchConfig cfg;
  cfg.max_bits = 4;
  cfg.desired_avg_bits = 2.0;
  cfg.t1 = 0.0;  // never limited by accuracy on this random data
  cfg.eval_samples = 30;
  ThresholdSearch search(cfg);
  const SearchResult result = search.run(fx.model, fx.scores, val);
  EXPECT_LE(result.achieved_avg_bits, 2.0 + 1e-9);
  EXPECT_GT(result.achieved_avg_bits, 0.0);
  EXPECT_EQ(result.thresholds.size(), 4u);
}

TEST(Search, ThresholdsAreMonotone) {
  SearchFixture fx;
  util::Rng rng(3);
  const data::Dataset val = random_val(30, rng);
  SearchConfig cfg;
  cfg.max_bits = 4;
  cfg.desired_avg_bits = 1.0;
  cfg.t1 = 0.9;  // high target forces early threshold stops
  cfg.eval_samples = 30;
  ThresholdSearch search(cfg);
  const SearchResult result = search.run(fx.model, fx.scores, val);
  for (std::size_t k = 1; k < result.thresholds.size(); ++k) {
    EXPECT_GE(result.thresholds[k], result.thresholds[k - 1]);
  }
}

TEST(Search, TargetsDecayByR) {
  SearchFixture fx;
  util::Rng rng(4);
  const data::Dataset val = random_val(30, rng);
  SearchConfig cfg;
  cfg.max_bits = 3;
  cfg.desired_avg_bits = 0.1;  // force all thresholds to be searched
  cfg.t1 = 0.8;
  cfg.decay = 0.5;
  cfg.eval_samples = 30;
  ThresholdSearch search(cfg);
  const SearchResult result = search.run(fx.model, fx.scores, val);
  // Non-fallback trace entries carry T_k = T1 * R^(k-1).
  for (const auto& stop : result.trace) {
    if (stop.fallback) continue;
    EXPECT_NEAR(stop.target, 0.8 * std::pow(0.5, stop.k - 1), 1e-12);
  }
}

TEST(Search, FallbackSweepReachesTinyBudget) {
  SearchFixture fx;
  util::Rng rng(5);
  const data::Dataset val = random_val(30, rng);
  SearchConfig cfg;
  cfg.max_bits = 4;
  cfg.desired_avg_bits = 0.5;
  // An unreachable accuracy target stops every phase-1 threshold at its
  // first step, leaving the budget unmet — the paper's fallback case.
  cfg.t1 = 1.1;
  cfg.eval_samples = 30;
  ThresholdSearch search(cfg);
  const SearchResult result = search.run(fx.model, fx.scores, val);
  EXPECT_LE(result.achieved_avg_bits, 0.5 + 1e-9);
  bool has_fallback = false;
  for (const auto& stop : result.trace) has_fallback |= stop.fallback;
  EXPECT_TRUE(has_fallback);
}

TEST(Search, LargeBudgetKeepsEverythingHighBit) {
  SearchFixture fx;
  util::Rng rng(6);
  const data::Dataset val = random_val(30, rng);
  SearchConfig cfg;
  cfg.max_bits = 4;
  cfg.desired_avg_bits = 4.0;  // already satisfied at init
  cfg.t1 = 0.99;
  cfg.eval_samples = 30;
  ThresholdSearch search(cfg);
  const SearchResult result = search.run(fx.model, fx.scores, val);
  EXPECT_NEAR(result.achieved_avg_bits, 4.0, 1e-9);
  for (const auto& layer : result.arrangement.layers()) {
    for (const int b : layer.filter_bits) EXPECT_EQ(b, 4);
  }
}

TEST(Search, ArrangementMatchesModelState) {
  SearchFixture fx;
  util::Rng rng(7);
  const data::Dataset val = random_val(30, rng);
  SearchConfig cfg;
  cfg.max_bits = 4;
  cfg.desired_avg_bits = 2.0;
  cfg.t1 = 0.0;
  cfg.eval_samples = 30;
  ThresholdSearch search(cfg);
  const SearchResult result = search.run(fx.model, fx.scores, val);
  const auto scored = fx.model.scored_layers();
  ASSERT_EQ(result.arrangement.layers().size(), scored.size());
  for (std::size_t l = 0; l < scored.size(); ++l) {
    EXPECT_EQ(scored[l].layers.front()->filter_bits(),
              result.arrangement.layers()[l].filter_bits);
  }
}

TEST(Search, HigherScoresNeverGetFewerBits) {
  SearchFixture fx;
  util::Rng rng(8);
  const data::Dataset val = random_val(30, rng);
  SearchConfig cfg;
  cfg.max_bits = 4;
  cfg.desired_avg_bits = 1.5;
  cfg.t1 = 0.3;
  cfg.eval_samples = 30;
  ThresholdSearch search(cfg);
  const SearchResult result = search.run(fx.model, fx.scores, val);
  for (std::size_t l = 0; l < fx.scores.size(); ++l) {
    const auto& phi = fx.scores[l].filter_phi;
    const auto& bits = result.arrangement.layers()[l].filter_bits;
    for (std::size_t a = 0; a < phi.size(); ++a) {
      for (std::size_t b = 0; b < phi.size(); ++b) {
        if (phi[a] > phi[b]) { EXPECT_GE(bits[a], bits[b]) << "layer " << l; }
      }
    }
  }
}

TEST(Search, CountsEvaluations) {
  SearchFixture fx;
  util::Rng rng(9);
  const data::Dataset val = random_val(30, rng);
  SearchConfig cfg;
  cfg.max_bits = 4;
  cfg.desired_avg_bits = 2.0;
  cfg.t1 = 0.0;
  cfg.eval_samples = 30;
  ThresholdSearch search(cfg);
  const SearchResult result = search.run(fx.model, fx.scores, val);
  EXPECT_GT(result.evaluations, 0);
  // The skip-unchanged optimization keeps evals far below step count.
  EXPECT_LT(result.evaluations, 200);
}

class BudgetSweep : public testing::TestWithParam<double> {};

TEST_P(BudgetSweep, AchievedBitsRespectBudget) {
  SearchFixture fx;
  util::Rng rng(10);
  const data::Dataset val = random_val(30, rng);
  SearchConfig cfg;
  cfg.max_bits = 4;
  cfg.desired_avg_bits = GetParam();
  cfg.t1 = 0.0;
  cfg.eval_samples = 30;
  ThresholdSearch search(cfg);
  const SearchResult result = search.run(fx.model, fx.scores, val);
  EXPECT_LE(result.achieved_avg_bits, GetParam() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Budgets, BudgetSweep, testing::Values(0.5, 1.0, 1.5, 2.0, 3.0, 3.5));

}  // namespace
}  // namespace cq::core
