#include <gtest/gtest.h>

#include <cmath>

#include "quant/bitwidth.h"
#include "quant/integer_gemm.h"
#include "quant/uniform.h"

namespace cq::quant {
namespace {

TEST(Uniform, LevelsForBits) {
  EXPECT_EQ(levels_for_bits(0), 1);
  EXPECT_EQ(levels_for_bits(1), 2);
  EXPECT_EQ(levels_for_bits(4), 16);
  EXPECT_EQ(levels_for_bits(-3), 1);
}

TEST(Uniform, ZeroBitsPrunesToZero) {
  const UniformRange r{-1.0f, 1.0f};
  EXPECT_EQ(quantize_one(0.73f, r, 0), 0.0f);
}

TEST(Uniform, OneBitIsBinary) {
  const UniformRange r{-2.0f, 2.0f};
  EXPECT_FLOAT_EQ(quantize_one(0.5f, r, 1), 2.0f);   // rounds up to hi
  EXPECT_FLOAT_EQ(quantize_one(-0.5f, r, 1), -2.0f); // rounds down to lo
  EXPECT_FLOAT_EQ(quantize_one(1.9f, r, 1), 2.0f);
}

TEST(Uniform, ClipsOutOfRange) {
  const UniformRange r{-1.0f, 1.0f};
  EXPECT_FLOAT_EQ(quantize_one(5.0f, r, 4), 1.0f);
  EXPECT_FLOAT_EQ(quantize_one(-5.0f, r, 4), -1.0f);
}

TEST(Uniform, EndpointsAreExactlyRepresentable) {
  const UniformRange r{-1.5f, 1.5f};
  for (int bits = 1; bits <= 8; ++bits) {
    EXPECT_FLOAT_EQ(quantize_one(r.lo, r, bits), r.lo) << "bits=" << bits;
    EXPECT_FLOAT_EQ(quantize_one(r.hi, r, bits), r.hi) << "bits=" << bits;
  }
}

TEST(Uniform, QuantizationIsIdempotent) {
  const UniformRange r{-1.0f, 1.0f};
  for (int bits = 1; bits <= 6; ++bits) {
    const float q = quantize_one(0.3777f, r, bits);
    EXPECT_FLOAT_EQ(quantize_one(q, r, bits), q) << "bits=" << bits;
  }
}

TEST(Uniform, ErrorBoundedByHalfStep) {
  const UniformRange r{-1.0f, 1.0f};
  for (int bits = 2; bits <= 8; ++bits) {
    const float bound = max_quantization_error(r, bits) + 1e-6f;
    for (float x = -1.0f; x <= 1.0f; x += 0.01f) {
      const float q = quantize_one(x, r, bits);
      EXPECT_LE(std::fabs(q - x), bound) << "bits=" << bits << " x=" << x;
    }
  }
}

TEST(Uniform, ErrorBoundShrinksWithBits) {
  // Per-value error is not monotone in bits (grids do not nest), but
  // the worst-case bound halves with every added bit.
  const UniformRange r{-1.0f, 1.0f};
  float prev = max_quantization_error(r, 1);
  for (int bits = 2; bits <= 8; ++bits) {
    const float bound = max_quantization_error(r, bits);
    EXPECT_LT(bound, prev) << "bits=" << bits;
    prev = bound;
  }
}

TEST(Uniform, QuantizeSpanMatchesScalar) {
  const UniformRange r{-2.0f, 2.0f};
  const std::vector<float> src = {-3.0f, -1.2f, 0.0f, 0.7f, 2.5f};
  std::vector<float> dst(src.size());
  quantize_span(src, dst, r, 3);
  for (std::size_t i = 0; i < src.size(); ++i) {
    EXPECT_FLOAT_EQ(dst[i], quantize_one(src[i], r, 3));
  }
}

TEST(Uniform, QuantizeSpanZeroBitsZeroes) {
  const std::vector<float> src = {1.0f, -2.0f};
  std::vector<float> dst(2, 99.0f);
  quantize_span(src, dst, UniformRange{-2.0f, 2.0f}, 0);
  EXPECT_EQ(dst[0], 0.0f);
  EXPECT_EQ(dst[1], 0.0f);
}

TEST(Uniform, SymmetricRange) {
  const std::vector<float> w = {0.5f, -1.25f, 0.3f};
  const UniformRange r = symmetric_range(w);
  EXPECT_FLOAT_EQ(r.lo, -1.25f);
  EXPECT_FLOAT_EQ(r.hi, 1.25f);
  EXPECT_TRUE(r.valid());
  const UniformRange zero = symmetric_range(std::vector<float>{0.0f, 0.0f});
  EXPECT_FALSE(zero.valid());
}

TEST(Uniform, EncodeDecodeRoundTrip) {
  const UniformRange r{-1.0f, 1.0f};
  for (int bits = 1; bits <= 8; ++bits) {
    const int levels = levels_for_bits(bits);
    for (int q = 0; q < levels; ++q) {
      const float x = decode(q, r, bits);
      EXPECT_EQ(encode(x, r, bits), q) << "bits=" << bits << " q=" << q;
    }
  }
}

TEST(Uniform, EncodeMatchesQuantize) {
  const UniformRange r{0.0f, 4.0f};
  for (float x = 0.0f; x <= 4.0f; x += 0.37f) {
    const float via_codes = decode(encode(x, r, 3), r, 3);
    EXPECT_NEAR(via_codes, quantize_one(x, r, 3), 1e-5f);
  }
}

TEST(BitArrangement, AverageBitsWeighted) {
  BitArrangement arr;
  // Layer A: 2 filters x 10 weights at 4 and 0 bits.
  arr.add_layer({"a", {4, 0}, 10});
  // Layer B: 1 filter x 20 weights at 2 bits.
  arr.add_layer({"b", {2}, 20});
  // (4*10 + 0*10 + 2*20) / 40 = 2.0
  EXPECT_DOUBLE_EQ(arr.average_bits(), 2.0);
  EXPECT_EQ(arr.total_weights(), 40u);
}

TEST(BitArrangement, CountsByBits) {
  BitArrangement arr;
  arr.add_layer({"a", {4, 0, 4}, 5});
  EXPECT_EQ(arr.weights_with_bits(4), 10u);
  EXPECT_EQ(arr.weights_with_bits(0), 5u);
  EXPECT_EQ(arr.weights_with_bits(2), 0u);
  EXPECT_EQ(arr.filters_with_bits(4), 2u);
  EXPECT_EQ(arr.max_bits(), 4);
}

TEST(BitArrangement, EmptyIsZero) {
  const BitArrangement arr;
  EXPECT_DOUBLE_EQ(arr.average_bits(), 0.0);
  EXPECT_EQ(arr.total_weights(), 0u);
  EXPECT_EQ(arr.max_bits(), 0);
}

TEST(WrapAccumulator, NoWrapWhenDisabled) {
  EXPECT_EQ(wrap_accumulator(123456789, 0), 123456789);
  EXPECT_EQ(wrap_accumulator(-5, 64), -5);
}

TEST(WrapAccumulator, WrapsLikeTwosComplement) {
  // 8-bit accumulator: range [-128, 127].
  EXPECT_EQ(wrap_accumulator(127, 8), 127);
  EXPECT_EQ(wrap_accumulator(128, 8), -128);
  EXPECT_EQ(wrap_accumulator(255, 8), -1);
  EXPECT_EQ(wrap_accumulator(256, 8), 0);
  EXPECT_EQ(wrap_accumulator(-129, 8), 127);
}

TEST(WrapAccumulator, IdentityInsideRange) {
  for (int v = -128; v <= 127; ++v) EXPECT_EQ(wrap_accumulator(v, 8), v);
}

TEST(IntegerGemm, MatchesFloatGemmWhenWide) {
  const std::int32_t a[] = {1, 2, 3, 4};
  const std::int32_t b[] = {5, 6, 7, 8};
  std::int64_t c[4];
  integer_gemm(a, b, c, 2, 2, 2, /*acc_bits=*/32);
  EXPECT_EQ(c[0], 19);
  EXPECT_EQ(c[1], 22);
  EXPECT_EQ(c[2], 43);
  EXPECT_EQ(c[3], 50);
}

TEST(IntegerGemm, NarrowAccumulatorWraps) {
  // 1x1 gemm computing 100*2 = 200, wrapped in 8 bits -> -56.
  const std::int32_t a[] = {100};
  const std::int32_t b[] = {2};
  std::int64_t c[1];
  integer_gemm(a, b, c, 1, 1, 1, 8);
  EXPECT_EQ(c[0], wrap_accumulator(200, 8));
  EXPECT_EQ(c[0], -56);
}

class QuantBitsSweep : public testing::TestWithParam<int> {};

TEST_P(QuantBitsSweep, ValuesLandOnGrid) {
  const int bits = GetParam();
  const UniformRange r{-1.0f, 1.0f};
  const int levels = levels_for_bits(bits);
  const float step = (r.hi - r.lo) / static_cast<float>(levels - 1);
  for (float x = -1.3f; x <= 1.3f; x += 0.071f) {
    const float q = quantize_one(x, r, bits);
    const float k = (q - r.lo) / step;
    EXPECT_NEAR(k, std::round(k), 1e-4f) << "bits=" << bits << " x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBitWidths, QuantBitsSweep, testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace cq::quant
