#include <gtest/gtest.h>

#include <cmath>

#include "deploy/bitstream.h"
#include "quant/uniform.h"
#include "util/rng.h"

namespace cq::deploy {
namespace {

/// The contract the whole deployment path rests on:
/// decode(encode(x)) must equal quantize_one(x) bit-for-bit, for any
/// input, range and bit-width. (uniform.cpp repeats the quantizer's
/// float operations inside encode/decode for exactly this reason.)
class EncodeDecodeContract : public ::testing::TestWithParam<int> {};

TEST_P(EncodeDecodeContract, DecodeOfEncodeEqualsFakeQuantExactly) {
  const int bits = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(bits) * 31 + 1);
  for (int trial = 0; trial < 200; ++trial) {
    const float hi = static_cast<float>(rng.uniform(1e-3, 10.0));
    const quant::UniformRange range{-hi, hi};
    // Mix of in-range, out-of-range and boundary inputs.
    float x = static_cast<float>(rng.uniform(-2.0 * hi, 2.0 * hi));
    if (trial % 17 == 0) x = hi;
    if (trial % 23 == 0) x = -hi;
    if (trial % 29 == 0) x = 0.0f;

    const int code = quant::encode(x, range, bits);
    EXPECT_GE(code, 0);
    EXPECT_LT(code, quant::levels_for_bits(bits));
    const float decoded = quant::decode(code, range, bits);
    const float fake_quant = quant::quantize_one(x, range, bits);
    EXPECT_EQ(decoded, fake_quant) << "bits=" << bits << " x=" << x << " hi=" << hi;
  }
}

TEST_P(EncodeDecodeContract, EncodeIsIdempotentOnDecodedValues) {
  const int bits = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(bits) * 57 + 5);
  for (int trial = 0; trial < 100; ++trial) {
    const float hi = static_cast<float>(rng.uniform(1e-3, 5.0));
    const quant::UniformRange range{-hi, hi};
    const float x = static_cast<float>(rng.uniform(-hi, hi));
    const int code = quant::encode(x, range, bits);
    const float decoded = quant::decode(code, range, bits);
    EXPECT_EQ(quant::encode(decoded, range, bits), code)
        << "bits=" << bits << " x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(Bits1To16, EncodeDecodeContract,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 12, 16));

/// Bitstream survives adversarial code patterns (all-zeros, all-ones,
/// alternating) at every width — the payload layer of the contract.
class BitstreamPatterns : public ::testing::TestWithParam<int> {};

TEST_P(BitstreamPatterns, ExtremalCodesRoundTrip) {
  const int bits = GetParam();
  const std::uint32_t max_code = bits >= 32 ? 0xFFFFFFFFu : ((1u << bits) - 1u);
  const std::uint32_t patterns[] = {0u, max_code, max_code & 0x55555555u,
                                    max_code & 0xAAAAAAAAu};
  BitWriter w;
  for (int rep = 0; rep < 64; ++rep) {
    for (const std::uint32_t p : patterns) w.append(p, bits);
  }
  BitReader r(w.bytes());
  for (int rep = 0; rep < 64; ++rep) {
    for (const std::uint32_t p : patterns) {
      ASSERT_EQ(r.read(bits), p) << "bits=" << bits << " rep=" << rep;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitstreamPatterns,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32));

}  // namespace
}  // namespace cq::deploy
