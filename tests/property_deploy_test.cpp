#include <gtest/gtest.h>

#include <cmath>

#include "deploy/bitstream.h"
#include "deploy/int_engine.h"
#include "quant/uniform.h"
#include "util/rng.h"

namespace cq::deploy {
namespace {

/// The contract the whole deployment path rests on:
/// decode(encode(x)) must equal quantize_one(x) bit-for-bit, for any
/// input, range and bit-width. (uniform.cpp repeats the quantizer's
/// float operations inside encode/decode for exactly this reason.)
class EncodeDecodeContract : public ::testing::TestWithParam<int> {};

TEST_P(EncodeDecodeContract, DecodeOfEncodeEqualsFakeQuantExactly) {
  const int bits = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(bits) * 31 + 1);
  for (int trial = 0; trial < 200; ++trial) {
    const float hi = static_cast<float>(rng.uniform(1e-3, 10.0));
    const quant::UniformRange range{-hi, hi};
    // Mix of in-range, out-of-range and boundary inputs.
    float x = static_cast<float>(rng.uniform(-2.0 * hi, 2.0 * hi));
    if (trial % 17 == 0) x = hi;
    if (trial % 23 == 0) x = -hi;
    if (trial % 29 == 0) x = 0.0f;

    const int code = quant::encode(x, range, bits);
    EXPECT_GE(code, 0);
    EXPECT_LT(code, quant::levels_for_bits(bits));
    const float decoded = quant::decode(code, range, bits);
    const float fake_quant = quant::quantize_one(x, range, bits);
    EXPECT_EQ(decoded, fake_quant) << "bits=" << bits << " x=" << x << " hi=" << hi;
  }
}

TEST_P(EncodeDecodeContract, EncodeIsIdempotentOnDecodedValues) {
  const int bits = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(bits) * 57 + 5);
  for (int trial = 0; trial < 100; ++trial) {
    const float hi = static_cast<float>(rng.uniform(1e-3, 5.0));
    const quant::UniformRange range{-hi, hi};
    const float x = static_cast<float>(rng.uniform(-hi, hi));
    const int code = quant::encode(x, range, bits);
    const float decoded = quant::decode(code, range, bits);
    EXPECT_EQ(quant::encode(decoded, range, bits), code)
        << "bits=" << bits << " x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(Bits1To16, EncodeDecodeContract,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 12, 16));

/// Bitstream survives adversarial code patterns (all-zeros, all-ones,
/// alternating) at every width — the payload layer of the contract.
class BitstreamPatterns : public ::testing::TestWithParam<int> {};

TEST_P(BitstreamPatterns, ExtremalCodesRoundTrip) {
  const int bits = GetParam();
  const std::uint32_t max_code = bits >= 32 ? 0xFFFFFFFFu : ((1u << bits) - 1u);
  const std::uint32_t patterns[] = {0u, max_code, max_code & 0x55555555u,
                                    max_code & 0xAAAAAAAAu};
  BitWriter w;
  for (int rep = 0; rep < 64; ++rep) {
    for (const std::uint32_t p : patterns) w.append(p, bits);
  }
  BitReader r(w.bytes());
  for (int rep = 0; rep < 64; ++rep) {
    for (const std::uint32_t p : patterns) {
      ASSERT_EQ(r.read(bits), p) << "bits=" << bits << " rep=" << rep;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitstreamPatterns,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32));

/// The activation-encoding contract the serving engine stands on:
/// codes always fit the bit-width, and within the clip range the
/// rescaled code is a faithful rounding (error at most half a step).
class EncodeActivationsProperty : public ::testing::TestWithParam<int> {};

TEST_P(EncodeActivationsProperty, CodesInRangeAndFaithfulWithinClip) {
  const int bits = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(bits) * 101 + 7);
  for (int trial = 0; trial < 50; ++trial) {
    const float hi = static_cast<float>(rng.uniform(1e-3, 8.0));
    // Inputs straddle the clip range on both sides, plus exact bounds.
    tensor::Tensor acts =
        tensor::Tensor::rand_uniform({4, 9}, rng, -0.5f * hi, 1.5f * hi);
    acts[0] = 0.0f;
    acts[1] = hi;
    const ActCodes codes = encode_activations(acts, hi, bits);

    EXPECT_EQ(codes.bits, bits);
    const int levels = quant::levels_for_bits(bits);
    EXPECT_FLOAT_EQ(codes.scale, hi / static_cast<float>(levels - 1));
    for (std::size_t i = 0; i < acts.numel(); ++i) {
      ASSERT_GE(codes.codes[i], 0) << "bits=" << bits << " a=" << acts[i];
      ASSERT_LE(codes.codes[i], levels - 1) << "bits=" << bits << " a=" << acts[i];
      const float a = acts[i];
      if (a >= 0.0f && a <= hi) {
        const float rescaled = codes.scale * static_cast<float>(codes.codes[i]);
        // Half a quantization step, padded by float rounding slack.
        const float half_step = codes.scale / 2.0f + 1e-5f * hi;
        ASSERT_LE(std::abs(a - rescaled), half_step)
            << "bits=" << bits << " hi=" << hi << " a=" << a;
      }
    }
  }
}

TEST_P(EncodeActivationsProperty, ReusedBufferMatchesFreshEncoding) {
  const int bits = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(bits) * 211 + 3);
  ActCodes reused;
  reused.codes.assign(4096, -1);  // stale garbage from a "previous request"
  for (int trial = 0; trial < 10; ++trial) {
    const float hi = static_cast<float>(rng.uniform(0.1, 4.0));
    tensor::Tensor acts = tensor::Tensor::rand_uniform({3, 17}, rng, -hi, 2.0f * hi);
    encode_activations_into(acts, hi, bits, reused);
    const ActCodes fresh = encode_activations(acts, hi, bits);
    ASSERT_EQ(reused.codes, fresh.codes) << "bits=" << bits << " trial=" << trial;
    ASSERT_EQ(reused.scale, fresh.scale);
    ASSERT_EQ(reused.bits, fresh.bits);
  }
}

INSTANTIATE_TEST_SUITE_P(Bits, EncodeActivationsProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 12, 16));

}  // namespace
}  // namespace cq::deploy
