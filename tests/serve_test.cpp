#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "deploy/artifact.h"
#include "obs/profiler.h"
#include "serve/batch_scheduler.h"
#include "serve/engine_session.h"
#include "serve/server.h"
#include "serve_fixtures.h"
#include "util/rng.h"

namespace cq::serve {
namespace {

using tensor::Tensor;

TEST(EngineSession, DerivesShapesFromTheArchitecture) {
  EngineSession vgg(tiny_vgg_artifact());
  EXPECT_EQ(vgg.sample_shape(), (tensor::Shape{3, 8, 8}));
  EXPECT_EQ(vgg.num_classes(), 4);
  EXPECT_EQ(vgg.integer_layer_count(), 7u);  // conv1-4 + fc5-7

  EngineSession mlp(tiny_mlp_artifact());
  EXPECT_EQ(mlp.sample_shape(), (tensor::Shape{12}));
  EXPECT_EQ(mlp.num_classes(), 5);
  EXPECT_EQ(mlp.integer_layer_count(), 2u);  // hidden layers 1..2
}

TEST(EngineSession, RejectsBadBatchShapes) {
  EngineSession session(tiny_vgg_artifact());
  EXPECT_THROW(session.run(Tensor({3, 8, 8})), std::invalid_argument);      // no N
  EXPECT_THROW(session.run(Tensor({1, 3, 8, 4})), std::invalid_argument);   // bad W
  EXPECT_THROW(session.run(Tensor({2, 1, 8, 8})), std::invalid_argument);   // bad C
  EXPECT_THROW(EngineSession(tiny_vgg_artifact(), 0), std::invalid_argument);
}

/// The integer pipeline must reproduce the instantiated model's
/// fake-quant forward within float-accumulation tolerance — this is
/// the end-to-end composition of the per-layer int_engine contracts.
class EngineMatchesModel : public ::testing::TestWithParam<int> {};

TEST_P(EngineMatchesModel, VggMlpAndResNet) {
  const int which = GetParam();
  const deploy::QuantizedArtifact artifact =
      which == 0 ? tiny_vgg_artifact()
                 : which == 1 ? tiny_mlp_artifact() : tiny_resnet_artifact();
  EngineSession session(artifact);
  auto reference = deploy::instantiate(artifact);

  const Tensor batch = random_batch(session.sample_shape(), 5, 23);
  const Tensor ours = session.run(batch);
  const Tensor expected = reference->forward(batch);
  ASSERT_EQ(ours.shape(), expected.shape());
  for (std::size_t i = 0; i < ours.numel(); ++i) {
    EXPECT_NEAR(ours[i], expected[i], 5e-3f) << "model " << which << " output " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Architectures, EngineMatchesModel, ::testing::Values(0, 1, 2));

/// The serving invariant: batching is a pure scheduling concern.
/// Running samples one at a time must produce byte-identical outputs
/// to any coalescing of the same samples.
class BatchingBitExact : public ::testing::TestWithParam<int> {};

TEST_P(BatchingBitExact, OneAtATimeEqualsCoalesced) {
  const int which = GetParam();
  const deploy::QuantizedArtifact artifact =
      which == 0 ? tiny_vgg_artifact()
                 : which == 1 ? tiny_mlp_artifact() : tiny_resnet_artifact();
  EngineSession session(artifact);
  const int n = 9;
  const Tensor batch = random_batch(session.sample_shape(), n, 31);
  const std::size_t sample_numel = tensor::shape_numel(session.sample_shape());

  const Tensor coalesced = session.run(batch);

  tensor::Shape one_shape;
  one_shape.push_back(1);
  one_shape.insert(one_shape.end(), session.sample_shape().begin(),
                   session.sample_shape().end());
  for (int i = 0; i < n; ++i) {
    Tensor one(one_shape);
    for (std::size_t j = 0; j < sample_numel; ++j) {
      one[j] = batch[static_cast<std::size_t>(i) * sample_numel + j];
    }
    const Tensor single = session.run(one);
    ASSERT_EQ(single.numel(), static_cast<std::size_t>(session.num_classes()));
    for (int c = 0; c < session.num_classes(); ++c) {
      ASSERT_EQ(single[static_cast<std::size_t>(c)],
                coalesced[static_cast<std::size_t>(i * session.num_classes() + c)])
          << "model " << which << " sample " << i << " class " << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Architectures, BatchingBitExact, ::testing::Values(0, 1, 2));

TEST(EngineSession, ConcurrentRunsOnMultipleContextsMatchSerial) {
  const deploy::QuantizedArtifact artifact = tiny_vgg_artifact();
  EngineSession serial(artifact, 1);
  EngineSession concurrent(artifact, 4);

  constexpr int kThreads = 8;
  constexpr int kRepeats = 4;
  std::vector<Tensor> inputs;
  std::vector<Tensor> expected;
  for (int t = 0; t < kThreads; ++t) {
    inputs.push_back(random_batch(serial.sample_shape(), 2, 100 + t));
    expected.push_back(serial.run(inputs.back()));
  }

  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRepeats; ++r) {
        const Tensor out = concurrent.run(inputs[static_cast<std::size_t>(t)]);
        const Tensor& want = expected[static_cast<std::size_t>(t)];
        if (out.shape() != want.shape()) {
          mismatches.fetch_add(1);
          continue;
        }
        for (std::size_t i = 0; i < out.numel(); ++i) {
          if (out[i] != want[i]) {
            mismatches.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(BatchScheduler, FlushesWhenMaxBatchIsReached) {
  BatchSchedulerConfig cfg;
  cfg.max_batch = 4;
  cfg.max_wait_us = 50000;  // large enough that only the size trigger fires
  BatchScheduler scheduler(cfg);
  for (int i = 0; i < 6; ++i) {
    Request request;
    request.sample = Tensor({1});
    request.submitted = std::chrono::steady_clock::now();
    ASSERT_TRUE(scheduler.push(request));
  }
  std::vector<Request> batch;
  ASSERT_TRUE(scheduler.pop_batch(batch));
  EXPECT_EQ(batch.size(), 4u);  // capped at max_batch
  ASSERT_TRUE(scheduler.pop_batch(batch));
  EXPECT_EQ(batch.size(), 2u);  // remainder after the oldest's window
}

TEST(BatchScheduler, FlushesAPartialBatchAfterMaxWait) {
  BatchSchedulerConfig cfg;
  cfg.max_batch = 64;
  cfg.max_wait_us = 2000;
  BatchScheduler scheduler(cfg);
  Request request;
  request.sample = Tensor({1});
  request.submitted = std::chrono::steady_clock::now();
  ASSERT_TRUE(scheduler.push(request));

  std::vector<Request> batch;
  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(scheduler.pop_batch(batch));
  const auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(batch.size(), 1u);
  // The pop must not hang anywhere near the 64-request fill level; it
  // returns once the oldest request's window expires.
  EXPECT_LT(std::chrono::duration<double>(waited).count(), 1.0);
}

TEST(BatchScheduler, CloseRejectsPushesAndDrainsTheQueue) {
  BatchScheduler scheduler({});
  Request queued;
  queued.sample = Tensor({1});
  queued.submitted = std::chrono::steady_clock::now();
  ASSERT_TRUE(scheduler.push(queued));
  scheduler.close();
  EXPECT_TRUE(scheduler.closed());

  Request rejected;
  rejected.sample = Tensor({1});
  EXPECT_FALSE(scheduler.push(rejected));

  std::vector<Request> batch;
  EXPECT_TRUE(scheduler.pop_batch(batch));  // drains the queued request
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_FALSE(scheduler.pop_batch(batch));  // closed and empty
}

/// The headline serving test: the same inputs submitted by 8
/// concurrent threads — coalesced into whatever micro-batches the
/// scheduler forms — must produce byte-identical outputs to the
/// one-at-a-time EngineSession reference.
TEST(Server, CoalescedOutputsAreByteIdenticalUnderConcurrentLoad) {
  const deploy::QuantizedArtifact artifact = tiny_vgg_artifact();

  EngineSession reference(artifact, 1);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 12;
  std::vector<std::vector<Tensor>> inputs(kThreads);
  std::vector<std::vector<Tensor>> expected(kThreads);
  tensor::Shape one_shape{1, 3, 8, 8};
  for (int t = 0; t < kThreads; ++t) {
    util::Rng rng(500 + static_cast<std::uint64_t>(t));
    for (int i = 0; i < kPerThread; ++i) {
      inputs[static_cast<std::size_t>(t)].push_back(
          Tensor::rand_uniform({3, 8, 8}, rng, 0.0f, 1.0f));
      const Tensor& sample = inputs[static_cast<std::size_t>(t)].back();
      Tensor one(one_shape);
      for (std::size_t j = 0; j < sample.numel(); ++j) one[j] = sample[j];
      expected[static_cast<std::size_t>(t)].push_back(reference.run(one));
    }
  }

  ServerConfig config;
  config.workers = 4;
  config.max_batch = 8;
  config.max_wait_us = 500;
  Server server(artifact, config);

  std::vector<std::thread> submitters;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const Tensor out =
            server.submit(inputs[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)])
                .get();
        const Tensor& want =
            expected[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)];
        // want is [1, classes]; out is [classes].
        if (out.numel() != want.numel()) {
          mismatches.fetch_add(1);
          continue;
        }
        for (std::size_t j = 0; j < out.numel(); ++j) {
          if (out[j] != want[j]) {
            mismatches.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (std::thread& submitter : submitters) submitter.join();
  EXPECT_EQ(mismatches.load(), 0);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_GE(stats.batches, 1u);
  EXPECT_GT(stats.p50_us, 0.0);
  EXPECT_GE(stats.p99_us, stats.p50_us);
  EXPECT_GT(stats.throughput_rps, 0.0);
}

TEST(Server, ShapeMismatchFailsOnlyThatRequest) {
  Server server(tiny_mlp_artifact(), {});
  auto bad = server.submit(Tensor({7}));  // MLP wants 12 features
  EXPECT_THROW(bad.get(), std::invalid_argument);
  util::Rng rng(3);
  auto good = server.submit(Tensor::rand_uniform({12}, rng, 0.0f, 1.0f));
  EXPECT_EQ(good.get().numel(), 5u);
}

TEST(Server, RejectsLayoutMismatchWithMatchingElementCount) {
  // [8, 8, 3] has the same numel as the artifact's [3, 8, 8] input; a
  // coalesce-by-numel would answer it with silently transposed data.
  Server server(tiny_vgg_artifact(), {});
  util::Rng rng(9);
  auto transposed = server.submit(Tensor::rand_uniform({8, 8, 3}, rng, 0.0f, 1.0f));
  EXPECT_THROW(transposed.get(), std::invalid_argument);
  auto good = server.submit(Tensor::rand_uniform({3, 8, 8}, rng, 0.0f, 1.0f));
  EXPECT_EQ(good.get().numel(), 4u);
}

TEST(Server, ResetStatsZeroesCountersAfterWarmup) {
  Server server(tiny_mlp_artifact(), {});
  util::Rng rng(21);
  for (int i = 0; i < 5; ++i) {
    server.submit(Tensor::rand_uniform({12}, rng, 0.0f, 1.0f)).get();
  }
  EXPECT_EQ(server.stats().completed, 5u);
  server.reset_stats();
  const ServerStats cleared = server.stats();
  EXPECT_EQ(cleared.completed, 0u);
  EXPECT_EQ(cleared.batches, 0u);
  EXPECT_EQ(cleared.p99_us, 0.0);
  server.submit(Tensor::rand_uniform({12}, rng, 0.0f, 1.0f)).get();
  const ServerStats after = server.stats();
  EXPECT_EQ(after.completed, 1u);
  EXPECT_GT(after.p50_us, 0.0);
}

/// The reset/snapshot window contract: resetting while submitters and
/// workers are in full flight must never surface an inconsistent
/// snapshot — no negative throughput, no percentile below min or above
/// max, no completed count the latency histogram did not see.
TEST(Server, ResetStatsWhileInFlightNeverMixesWindows) {
  ServerConfig config;
  config.workers = 2;
  config.max_batch = 4;
  config.max_wait_us = 100;
  Server server(tiny_mlp_artifact(), config);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 60;
  std::atomic<bool> stop{false};
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&server, t] {
      util::Rng rng(700 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kPerThread; ++i) {
        server.submit(Tensor::rand_uniform({12}, rng, 0.0f, 1.0f)).get();
      }
    });
  }
  std::thread resetter([&server, &stop] {
    while (!stop.load()) {
      server.reset_stats();
      const ServerStats s = server.stats();
      EXPECT_GE(s.throughput_rps, 0.0);
      EXPECT_GE(s.elapsed_s, 0.0);
      EXPECT_LE(s.p50_us, s.p95_us);
      EXPECT_LE(s.p95_us, s.p99_us);
      EXPECT_LE(s.p99_us, s.max_us);
      EXPECT_LE(s.p50_queue_us, s.p95_queue_us);
      EXPECT_LE(s.p50_exec_us, s.p95_exec_us);
      if (s.completed > 0) {
        EXPECT_GT(s.p50_us, 0.0);
        EXPECT_GT(s.mean_us, 0.0);
      } else {
        EXPECT_EQ(s.p99_us, 0.0);
        EXPECT_EQ(s.batches, 0u);
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  for (std::thread& submitter : submitters) submitter.join();
  stop.store(true);
  resetter.join();

  // A quiet window after the storm must still account crisply.
  server.reset_stats();
  util::Rng rng(31);
  for (int i = 0; i < 3; ++i) {
    server.submit(Tensor::rand_uniform({12}, rng, 0.0f, 1.0f)).get();
  }
  const ServerStats s = server.stats();
  EXPECT_EQ(s.completed, 3u);
  EXPECT_GE(s.batches, 1u);
}

TEST(Server, StatsBreakDownLatencyIntoQueueWaitAndExecute) {
  ServerConfig config;
  config.workers = 1;
  config.max_batch = 4;
  Server server(tiny_mlp_artifact(), config);
  util::Rng rng(13);
  std::vector<std::future<Tensor>> inflight;
  for (int i = 0; i < 16; ++i) {
    inflight.push_back(server.submit(Tensor::rand_uniform({12}, rng, 0.0f, 1.0f)));
  }
  for (auto& f : inflight) f.get();
  const ServerStats s = server.stats();
  EXPECT_EQ(s.completed, 16u);
  // Every request waited in the queue and rode an executed batch, so
  // both component distributions are populated and each component is
  // bounded by the end-to-end latency it is part of.
  EXPECT_GT(s.mean_exec_us, 0.0);
  EXPECT_GE(s.mean_queue_us, 0.0);
  EXPECT_LE(s.p50_queue_us, s.max_us);
  EXPECT_LE(s.p50_exec_us, s.max_us);
}

TEST(Server, MetricsRegistryExportsTheServingInstruments) {
  Server server(tiny_mlp_artifact(), {});
  util::Rng rng(17);
  server.submit(Tensor::rand_uniform({12}, rng, 0.0f, 1.0f)).get();
  auto bad = server.submit(Tensor({5}));
  EXPECT_THROW(bad.get(), std::invalid_argument);

  const std::string json = server.metrics().to_json();
  EXPECT_NE(json.find("\"requests_submitted\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"requests_failed\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"latency_us\""), std::string::npos);
  EXPECT_NE(json.find("\"queue_wait_us\""), std::string::npos);
  EXPECT_NE(json.find("\"execute_us\""), std::string::npos);
  EXPECT_NE(json.find("\"backend_prepared_bytes\""), std::string::npos);
  const std::string prom = server.metrics().to_prometheus();
  EXPECT_NE(prom.find("requests_submitted_total 2"), std::string::npos) << prom;
  EXPECT_NE(prom.find("latency_us_count 1"), std::string::npos) << prom;
}

/// A span sink must see every request with causally ordered timestamps:
/// submit <= popped <= exec_begin <= exec_end <= done, and batch/worker
/// fields that make sense for the serving configuration.
TEST(Server, SpanSinkSeesOrderedTimestampsForEveryRequest) {
  class CollectingSink : public obs::SpanSink {
   public:
    void on_span(const obs::RequestSpan& span) override {
      std::lock_guard<std::mutex> lock(mutex_);
      spans_.push_back(span);
    }
    std::vector<obs::RequestSpan> take() {
      std::lock_guard<std::mutex> lock(mutex_);
      return spans_;
    }

   private:
    std::mutex mutex_;
    std::vector<obs::RequestSpan> spans_;
  };

  ServerConfig config;
  config.workers = 2;
  config.max_batch = 4;
  CollectingSink sink;
  Server server(tiny_mlp_artifact(), config);
  server.set_span_sink(&sink);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 8;
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&server, t] {
      util::Rng rng(900 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kPerThread; ++i) {
        server.submit(Tensor::rand_uniform({12}, rng, 0.0f, 1.0f)).get();
      }
    });
  }
  for (std::thread& submitter : submitters) submitter.join();
  server.shutdown();  // workers are done: every span has been emitted
  server.set_span_sink(nullptr);

  const std::vector<obs::RequestSpan> spans = sink.take();
  ASSERT_EQ(spans.size(), static_cast<std::size_t>(kThreads * kPerThread));
  std::vector<std::uint64_t> ids;
  for (const obs::RequestSpan& span : spans) {
    EXPECT_LE(span.submit, span.popped);
    EXPECT_LE(span.popped, span.exec_begin);
    EXPECT_LE(span.exec_begin, span.exec_end);
    EXPECT_LE(span.exec_end, span.done);
    EXPECT_GE(span.batch, 1);
    EXPECT_LE(span.batch, config.max_batch);
    EXPECT_GE(span.worker, 0);
    EXPECT_LT(span.worker, config.workers);
    ids.push_back(span.id);
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());  // ids are distinct
}

/// Per-op tracing through the full server: the profiler must attribute
/// every op of every executed batch, while outputs stay byte-identical
/// to the untraced engine (tracing is observation, not interference).
TEST(Server, OpTraceProfilesServedBatchesWithoutChangingOutputs) {
  const deploy::QuantizedArtifact artifact = tiny_mlp_artifact();
  EngineSession reference(artifact, 1);
  ServerConfig config;
  config.workers = 2;
  Server server(artifact, config);
  obs::PlanProfiler profiler(server.session().plan(), &server.session().backend());
  server.set_op_trace(&profiler);

  util::Rng rng(47);
  for (int i = 0; i < 10; ++i) {
    const Tensor sample = Tensor::rand_uniform({12}, rng, 0.0f, 1.0f);
    Tensor one({1, 12});
    for (std::size_t j = 0; j < sample.numel(); ++j) one[j] = sample[j];
    const Tensor expected = reference.run(one);
    const Tensor out = server.submit(sample).get();
    ASSERT_EQ(out.numel(), expected.numel());
    for (std::size_t j = 0; j < out.numel(); ++j) EXPECT_EQ(out[j], expected[j]);
  }
  server.shutdown();
  server.set_op_trace(nullptr);

  const obs::ProfileReport report = profiler.report();
  ASSERT_EQ(report.ops.size(), server.session().plan().ops().size());
  for (const obs::OpProfileRow& row : report.ops) {
    EXPECT_GE(row.calls, 1u);
    EXPECT_EQ(row.samples, 10u);  // every sample flowed through every op
  }
  EXPECT_GT(report.total_ms, 0.0);
}

TEST(Server, SubmitAfterShutdownFailsTheFuture) {
  Server server(tiny_mlp_artifact(), {});
  util::Rng rng(5);
  auto before = server.submit(Tensor::rand_uniform({12}, rng, 0.0f, 1.0f));
  EXPECT_EQ(before.get().numel(), 5u);
  server.shutdown();
  server.shutdown();  // idempotent
  auto after = server.submit(Tensor::rand_uniform({12}, rng, 0.0f, 1.0f));
  EXPECT_THROW(after.get(), std::runtime_error);
}

}  // namespace
}  // namespace cq::serve
